package dsmpm2

import (
	"fmt"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/protocols"
	"dsmpm2/internal/sim"
	"dsmpm2/internal/trace"
)

// Re-exported building blocks, so applications need only this package.
type (
	// Addr is a shared virtual address.
	Addr = core.Addr
	// Page identifies a shared page.
	Page = core.Page
	// ProtoID identifies a registered protocol.
	ProtoID = core.ProtoID
	// Attr carries per-allocation attributes (protocol, home node).
	Attr = core.Attr
	// ObjRef references a shared object.
	ObjRef = core.ObjRef
	// Stats aggregates DSM activity counters.
	Stats = core.Stats
	// FaultTiming decomposes a fault like the paper's Tables 3 and 4.
	FaultTiming = core.FaultTiming
	// Histogram is a fixed-grid per-operation latency histogram with
	// deterministic quantiles (see System.OpHist).
	Histogram = core.Histogram
	// HistSummary is the standard digest of one Histogram: grid-valued
	// quantiles plus exact mean and max.
	HistSummary = core.HistSummary
	// NetworkProfile is a calibrated interconnect cost model.
	NetworkProfile = madeleine.Profile
	// Topology resolves per-(src,dst) link cost profiles; see
	// UniformTopology, HierarchicalTopology and LinkMatrixTopology.
	Topology = madeleine.Topology
	// LinkMatrix is the arbitrary per-pair topology, for asymmetric
	// scenarios; build one with LinkMatrixTopology and SetLink/SetDuplex.
	LinkMatrix = madeleine.LinkMatrix
	// LinkSummary aggregates fault costs per link class.
	LinkSummary = core.LinkSummary
	// PageClass is the sharing pattern the access profiler assigns a page.
	PageClass = core.PageClass
	// EpochProfile is one profiler epoch's classification histogram.
	EpochProfile = core.EpochProfile
	// ProfilerConfig parameterizes the access profiler and its home-
	// migration decision engine.
	ProfilerConfig = core.ProfilerConfig
	// Time is virtual time.
	Time = sim.Time
	// Duration is virtual duration.
	Duration = sim.Duration
)

// UniformTopology wraps a single profile as a topology: every node pair uses
// the same calibrated cost model, bit-for-bit equivalent to Config.Network.
func UniformTopology(p *NetworkProfile) Topology { return madeleine.NewUniform(p) }

// HierarchicalTopology builds a multi-cluster topology from a node->cluster
// assignment: same-cluster pairs use intra, cross-cluster pairs inter. Use
// EvenClusters for the common equal-block assignment.
func HierarchicalTopology(clusterOf []int, intra, inter *NetworkProfile) Topology {
	return madeleine.NewHierarchical(clusterOf, intra, inter)
}

// LinkMatrixTopology builds an arbitrary per-pair topology whose unset links
// use def.
func LinkMatrixTopology(def *NetworkProfile) *LinkMatrix { return madeleine.NewLinkMatrix(def) }

// EvenClusters assigns nodes to clusters in contiguous blocks as equal as
// possible.
var EvenClusters = madeleine.EvenClusters

// ResolveProfile finds a network profile by canonical name, case-insensitive
// name, or common alias ("TCP/Ethernet", "SCI", ...); nil if unknown.
var ResolveProfile = madeleine.ResolveProfile

// The four cluster networks evaluated in the paper.
var (
	BIPMyrinet      = madeleine.BIPMyrinet
	TCPMyrinet      = madeleine.TCPMyrinet
	TCPFastEthernet = madeleine.TCPFastEthernet
	SISCISCI        = madeleine.SISCISCI
	Networks        = madeleine.Profiles
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// PageSize is the shared page size (4 KiB, as in the paper's measurements).
const PageSize = core.PageSize

// Config describes a simulated DSM-PM2 cluster.
type Config struct {
	// Nodes is the number of cluster nodes (default 2).
	Nodes int
	// CPUsPerNode models processors per node (default 1, like the
	// paper's Pentium II nodes).
	CPUsPerNode int
	// Network selects the uniform interconnect cost profile (default
	// BIPMyrinet); it is the single-cluster shorthand for Topology.
	Network *NetworkProfile
	// Topology, when set, overrides Network and resolves costs per
	// (src,dst) link: heterogeneous clusters (HierarchicalTopology) or
	// arbitrary per-pair profiles (LinkMatrixTopology).
	Topology Topology
	// LinkContention enables FIFO bandwidth occupancy per directed link:
	// concurrent transfers on one link queue in virtual time instead of
	// overlapping for free. Off by default, matching the paper's
	// single-message calibration.
	LinkContention bool
	// UnbatchedComm disables the batched communication path: release-time
	// invalidations and diffs go out one envelope per operation (the
	// historical wire pattern) instead of one multi-part envelope per
	// destination, and barriers carry no write notices. Off by default;
	// keep it selectable for A/B comparison (`dsmbench -exp comm`).
	UnbatchedComm bool
	// AdaptiveHomes enables the online sharing-pattern profiler AND its
	// home-migration decision engine: page accesses are counted per
	// (page, node), folded into epochs at cluster-wide barriers, and pages
	// are re-homed onto their dominant writers (`dsmbench -exp adapt`).
	// Off by default — placement then stays exactly as allocated.
	AdaptiveHomes bool
	// Shards selects the simulation kernel's parallelism: the event loop is
	// partitioned into that many conservatively-synchronized shards (one
	// per topology cluster when a Hierarchical topology matches the count,
	// contiguous node blocks otherwise), each running on its own host core.
	// The DSM layer is shard-aware end-to-end — per-shard counters and
	// buffer pools, a range-partitioned directory, and combining-tree
	// barriers — and a sharded run is deterministic: same seed, same
	// observable DSM state, whatever the host interleaving. 0 or 1 keeps
	// the single-loop kernel (bit-for-bit the historical behavior).
	// Incompatible with fault injection/recovery, whose death bookkeeping
	// is single-loop machinery.
	Shards int
	// Protocol names the default consistency protocol (default
	// "li_hudak"); see ProtocolNames for the list.
	Protocol string
	// Seed drives the deterministic simulation (default 1).
	Seed int64
	// Recovery tunes the bounded protocol waits (FetchPage retries and
	// friends) of fault-injected runs: base timeout, exponential backoff and
	// seeded jitter. The zero value keeps the historical flat 5 ms timeout.
	// FaultOptions fields, when set, override these per injection.
	Recovery RecoveryTuning
	// Trace enables post-mortem span recording.
	Trace bool
	// TunedPrior, when set, feeds a what-if auto-tuner recommendation
	// (internal/tune) back into the platform: it fills the unset Protocol,
	// switches on UnbatchedComm/AdaptiveHomes when the sweep's winner used
	// them (it only ever turns features on — explicit Config fields win),
	// and installs the page-policy prior the adaptive protocol consults
	// when it has no live evidence about a page.
	TunedPrior *TunedPrior
}

// TunedPrior is the auto-tuner's winning configuration, fed back into a
// Config. Fields use the tuner's grid vocabulary: Placement is "static",
// "misplaced" or "adaptive"; Comm is "batched" or "unbatched".
type TunedPrior struct {
	Protocol  string `json:"protocol"`
	Placement string `json:"placement"`
	Comm      string `json:"comm"`
	// Workload names the recording the sweep re-simulated, so a prior is
	// traceable to the run that produced it.
	Workload string `json:"workload,omitempty"`
}

// System is a running DSM-PM2 platform instance: a PM2 machine, a DSM with
// all built-in protocols registered, and (optionally) a trace log.
type System struct {
	rt  *pm2.Runtime
	dsm *core.DSM
	ids protocols.IDs
	tr  *trace.Log

	// cfg is the defaulted configuration the system was built from, retained
	// so a checkpoint can serialize it (see checkpoint.go).
	cfg Config

	// cursor is the resumable fault-plan cursor (nil under the legacy
	// up-front injection); Run re-arms it so fault events parked across a
	// drained safe point fire in the next run chunk. plan/opts are retained
	// for checkpointing.
	cursor    *sim.FaultCursor
	faultPlan *FaultPlan
	faultOpts FaultOptions
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	if cfg.Nodes == 0 {
		// A topology bound to a node count implies the cluster size.
		if s, ok := cfg.Topology.(madeleine.Sizer); ok {
			cfg.Nodes = s.Nodes()
		} else {
			cfg.Nodes = 2
		}
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("dsmpm2: invalid node count %d", cfg.Nodes)
	}
	if cfg.Network == nil {
		cfg.Network = BIPMyrinet
	}
	if p := cfg.TunedPrior; p != nil {
		// The prior fills gaps and turns features on; explicit fields win.
		if cfg.Protocol == "" {
			cfg.Protocol = p.Protocol
		}
		if p.Comm == "unbatched" {
			cfg.UnbatchedComm = true
		}
		if p.Placement == "adaptive" {
			cfg.AdaptiveHomes = true
		}
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "li_hudak"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if s, ok := cfg.Topology.(madeleine.Sizer); ok && s.Nodes() != cfg.Nodes {
		return nil, fmt.Errorf("dsmpm2: topology %s is built for %d nodes, config has %d",
			cfg.Topology.Name(), s.Nodes(), cfg.Nodes)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("dsmpm2: invalid shard count %d", cfg.Shards)
	}
	rt := pm2.NewRuntime(pm2.Config{
		Nodes:          cfg.Nodes,
		CPUsPerNode:    cfg.CPUsPerNode,
		Network:        cfg.Network,
		Topology:       cfg.Topology,
		LinkContention: cfg.LinkContention,
		Seed:           cfg.Seed,
		Shards:         cfg.Shards,
	})
	reg, ids := protocols.NewRegistry()
	d := core.New(rt, reg, core.DefaultCosts())
	d.SetBatching(!cfg.UnbatchedComm)
	s := &System{rt: rt, dsm: d, ids: ids, cfg: cfg}
	if cfg.Trace {
		if rt.Sharded() {
			// Each kernel shard records into its own span slice (shard
			// goroutines may not share one append target); reads merge them
			// in canonical virtual-time order.
			s.tr = trace.NewShardedLog(rt.Shards())
		} else {
			s.tr = trace.NewLog()
		}
	}
	if err := s.SetDefaultProtocol(cfg.Protocol); err != nil {
		return nil, err
	}
	if cfg.AdaptiveHomes {
		d.EnableProfiler(core.ProfilerConfig{Migrate: true})
	}
	if p := cfg.TunedPrior; p != nil && p.Placement != "" {
		// The sweep evaluated every cell on the page policy's placement
		// grid and this prior's cell won: tell the adaptive protocol the
		// page policy is the trusted default when it has no live evidence.
		d.SetTunedPagePrior(true)
	}
	return s, nil
}

// MustNew is New panicking on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ProtocolNames lists the registered protocol names.
func (s *System) ProtocolNames() []string { return s.dsm.Registry().Names() }

// Protocol resolves a protocol name to its id.
func (s *System) Protocol(name string) (ProtoID, bool) {
	return s.dsm.Registry().Lookup(name)
}

// SetDefaultProtocol selects the protocol used by allocations without an
// explicit attribute (pm2_dsm_set_default_protocol).
func (s *System) SetDefaultProtocol(name string) error {
	id, ok := s.Protocol(name)
	if !ok {
		return fmt.Errorf("dsmpm2: unknown protocol %q (have %v)", name, s.ProtocolNames())
	}
	s.dsm.SetDefaultProtocol(id)
	return nil
}

// CreateProtocol registers a user-defined protocol built from 8 hook
// routines and returns its id (dsm_create_protocol).
func (s *System) CreateProtocol(h *core.Hooks) ProtoID { return s.dsm.CreateProtocol(h) }

// Malloc allocates shared memory on node (dsm_malloc). attr selects the
// managing protocol and home; nil uses the defaults.
func (s *System) Malloc(node, size int, attr *Attr) (Addr, error) {
	return s.dsm.Malloc(node, size, attr)
}

// MustMalloc is Malloc panicking on error.
func (s *System) MustMalloc(node, size int, attr *Attr) Addr {
	return s.dsm.MustMalloc(node, size, attr)
}

// NewObject allocates a shared object of nFields 8-byte fields homed on
// node, managed by protocol proto (-1 = default).
func (s *System) NewObject(node, nFields int, proto ProtoID) (ObjRef, error) {
	return s.dsm.NewObject(node, nFields, proto)
}

// MustNewObject is NewObject panicking on error.
func (s *System) MustNewObject(node, nFields int, proto ProtoID) ObjRef {
	return s.dsm.MustNewObject(node, nFields, proto)
}

// NewLock creates a cluster-wide lock managed by node home.
func (s *System) NewLock(home int) int { return s.dsm.NewLock(home) }

// NewBarrier creates a cluster-wide barrier for n participants.
func (s *System) NewBarrier(n int) int { return s.dsm.NewBarrier(n) }

// NewCond creates a cluster-wide condition variable tied to a DSM lock.
func (s *System) NewCond(lock int) int { return s.dsm.NewCond(lock) }

// BindLock associates a shared area with a lock for entry-consistency
// protocols (entry_mw): the area is kept consistent only across
// acquire/release of that lock.
func (s *System) BindLock(lock int, base Addr, size int) { s.dsm.BindLock(lock, base, size) }

// Spawn starts fn in a new application thread on node.
func (s *System) Spawn(node int, name string, fn func(t *Thread)) *Thread {
	var wrapped *Thread
	th := s.rt.CreateThread(node, name, func(inner *pm2.Thread) {
		fn(wrapped)
	})
	wrapped = &Thread{sys: s, th: th}
	return wrapped
}

// SpawnStack is Spawn with an explicit stack size (drives migration cost).
func (s *System) SpawnStack(node int, name string, stack int, fn func(t *Thread)) *Thread {
	var wrapped *Thread
	th := s.rt.CreateThreadStack(node, name, stack, func(inner *pm2.Thread) {
		fn(wrapped)
	})
	wrapped = &Thread{sys: s, th: th}
	return wrapped
}

// Run drives the simulation until all application threads finish. It
// returns an error if the system deadlocks. A resumable fault plan
// (InjectFaultsResumable) is re-armed first, so fault events that parked
// across a drained safe point fire in this run chunk.
func (s *System) Run() error {
	if s.cursor != nil && !s.cursor.Done() {
		s.cursor.Arm()
	}
	return s.rt.Run()
}

// Now returns the current virtual time.
func (s *System) Now() Time { return s.rt.Now() }

// Stats returns the DSM activity counters.
func (s *System) Stats() Stats { return s.dsm.Stats() }

// Timings exposes the recorded fault timings (Tables 3/4 style records).
func (s *System) Timings() *core.TimingLog { return s.dsm.Timings() }

// OpHist returns the per-operation latency histogram registered under kind
// ("get", "put", ...), creating it on first use. Applications record each
// operation's virtual-time latency on the completion path; the histogram's
// fixed log-spaced buckets make p50/p95/p99 deterministic, snapshot-safe and
// bit-identical across replays of one seed.
func (s *System) OpHist(kind string) *Histogram { return s.dsm.OpHist(kind) }

// OpKinds lists the registered operation-histogram kinds in sorted order.
func (s *System) OpKinds() []string { return s.dsm.OpKinds() }

// EnableProfiler switches on the access-pattern profiler with an explicit
// configuration (Config.AdaptiveHomes is the common shorthand for
// ProfilerConfig{Migrate: true}). Call before Run.
func (s *System) EnableProfiler(cfg ProfilerConfig) { s.dsm.EnableProfiler(cfg) }

// ProfileEpochs returns the profiler's per-epoch classification histograms
// (nil when the profiler is off).
func (s *System) ProfileEpochs() []EpochProfile { return s.dsm.ProfileEpochs() }

// Trace returns the post-mortem span log (nil unless Config.Trace was set).
func (s *System) Trace() *trace.Log { return s.tr }

// Nodes reports the cluster size.
func (s *System) Nodes() int { return s.rt.Nodes() }

// Network returns the uniform interconnect profile in use, or nil when the
// system runs over a heterogeneous topology (use Topology or Link instead).
func (s *System) Network() *NetworkProfile { return s.rt.Profile() }

// Topology returns the interconnect topology in use.
func (s *System) Topology() Topology { return s.rt.Topology() }

// Link returns the cost profile governing messages from src to dst.
func (s *System) Link(src, dst int) *NetworkProfile { return s.rt.Link(src, dst) }

// DSM exposes the underlying core instance for advanced use (tests, tools).
func (s *System) DSM() *core.DSM { return s.dsm }

// Runtime exposes the underlying PM2 machine for advanced use.
func (s *System) Runtime() *pm2.Runtime { return s.rt }
