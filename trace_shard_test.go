package dsmpm2_test

// Sharded-trace regression tests. trace.Log.Add used to append every span to
// one shared slice; with Config.Trace and Shards > 1 each shard's event-loop
// goroutine raced on that append (caught by -race, corrupting the log
// otherwise). Spans now go to per-shard logs merged canonically at read time
// — these tests pin both halves: no race under a 2-shard traced jacobi, and
// a merged view that is deterministic across replays and complete against
// the single-loop recording.

import (
	"reflect"
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/trace"
)

// tracedJacobi runs the pinned traced workload at the given shard count and
// returns the merged span log.
func tracedJacobi(t *testing.T, shards int) *trace.Log {
	t.Helper()
	res, err := jacobi.Run(jacobi.Config{
		N: 16, Iterations: 3, Nodes: 4,
		Network: dsmpm2.BIPMyrinet, Protocol: "hbrc_mw", Seed: 1,
		Shards: shards, Trace: true,
	})
	if err != nil {
		t.Fatalf("jacobi shards=%d: %v", shards, err)
	}
	lg := res.System.Trace()
	if lg == nil || lg.Len() == 0 {
		t.Fatalf("jacobi shards=%d: no spans recorded", shards)
	}
	return lg
}

// TestShardedTraceRecording: the 2-shard traced run must be data-race free
// (this test runs under -race in CI), its merged span log must replay
// bit-identically, and every elementary operation the single-loop run
// recorded must appear the same number of times — sharding changes virtual
// message paths, never the application's operation sequence.
func TestShardedTraceRecording(t *testing.T) {
	sharded := tracedJacobi(t, 2)
	again := tracedJacobi(t, 2)
	if !reflect.DeepEqual(sharded.All(), again.All()) {
		t.Error("2-shard traced replay produced a different merged span log")
	}

	counts := func(l *trace.Log) map[string]int {
		out := make(map[string]int)
		for _, st := range l.Breakdown() {
			out[st.Name] = st.Count
		}
		return out
	}
	single := tracedJacobi(t, 1)
	if got, want := counts(sharded), counts(single); !reflect.DeepEqual(got, want) {
		t.Errorf("per-function span counts diverge: sharded %v, single-loop %v", got, want)
	}
	if sharded.Len() != single.Len() {
		t.Errorf("span count %d (2 shards) != %d (single-loop)", sharded.Len(), single.Len())
	}
}

// TestShardedTraceMergeOrder: the merged view must come out sorted by
// virtual start time whatever slice each span landed in.
func TestShardedTraceMergeOrder(t *testing.T) {
	spans := tracedJacobi(t, 2).All()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("span %d starts at %d, before its predecessor at %d",
				i, spans[i].Start, spans[i-1].Start)
		}
	}
}
