package dsmpm2

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Checkpoint/restore of full simulation state. A Checkpoint is taken at a
// safe point — between Run chunks, when the event queue is drained and no
// protocol action is mid-flight — and records everything the deterministic
// replay depends on: the kernel's clock/sequence/RNG position, the DSM's
// pages, page tables, synchronization managers and protocol state, the
// network's occupancy clocks and fault views, the PM2 runtime's counters,
// and the fault-plan cursor. Restoring it into a fresh System and running to
// completion is bit-identical to never having stopped: same TimingLog
// fingerprint, same stats, same final clock.
//
// Three consumers ride on this:
//
//   - crash-restart experiments, where a restarted node's OnRestart hook
//     warm-starts from the last recorded checkpoint instead of redoing the
//     whole run (see DSM.RecordCheckpoint / LastCheckpoint);
//   - warm-started benchmarks, which restore a post-ramp-up snapshot
//     instead of replaying the ramp-up;
//   - divergence bisection (`dsmbench -exp bisect`), which binary-searches
//     the first run step whose fingerprint diverges from a golden ledger.

// CheckpointVersion is the current snapshot format version. Decoders reject
// other versions with an error (never a panic), so stale snapshot files fail
// loudly instead of misrestoring.
const CheckpointVersion = 1

// TopologyState serializes a topology by profile names. Only uniform and
// hierarchical topologies round-trip — a LinkMatrix holds arbitrary
// profiles with no registry to resolve them from, and is rejected at
// capture.
type TopologyState struct {
	Kind      string `json:"kind"` // "uniform" or "hier"
	Profile   string `json:"profile,omitempty"`
	ClusterOf []int  `json:"cluster_of,omitempty"`
	Intra     string `json:"intra,omitempty"`
	Inter     string `json:"inter,omitempty"`
}

// ConfigState is the serializable form of Config.
type ConfigState struct {
	Nodes          int            `json:"nodes"`
	CPUsPerNode    int            `json:"cpus_per_node,omitempty"`
	Network        string         `json:"network,omitempty"`
	Topology       *TopologyState `json:"topology,omitempty"`
	LinkContention bool           `json:"link_contention,omitempty"`
	UnbatchedComm  bool           `json:"unbatched_comm,omitempty"`
	Protocol       string         `json:"protocol"`
	Seed           int64          `json:"seed"`
	Shards         int            `json:"shards,omitempty"`
}

// CursorState is the fault-plan cursor's resumable position.
type CursorState struct {
	Next int        `json:"next"`
	Base Time       `json:"base"`
	Plan *FaultPlan `json:"plan"`
}

// Checkpoint is a full simulation snapshot. Build one with
// System.Checkpoint, persist with Save/Encode, rebuild a System with
// Restore.
type Checkpoint struct {
	Config ConfigState  `json:"config"`
	Kernel sim.Snapshot `json:"kernel"`
	// KernelShards holds one kernel snapshot per shard on a sharded machine
	// (Kernel then mirrors shard 0's, for single-snapshot readers). Absent —
	// and the wire form unchanged — for single-loop systems.
	KernelShards []sim.Snapshot      `json:"kernel_shards,omitempty"`
	Core         *core.CoreState     `json:"core"`
	Net          *madeleine.NetState `json:"net"`
	Runtime      *pm2.RuntimeState   `json:"runtime"`
	Cursor       *CursorState        `json:"cursor,omitempty"`
	Partition    int                 `json:"partition,omitempty"`
	App          json.RawMessage     `json:"app,omitempty"`
	Fingerprint  string              `json:"fingerprint"`
}

// Fingerprint hashes the system's observable trace — final clock, every
// recorded fault timing, the DSM stats — into a hex digest. Two runs of the
// same workload under the same seed produce identical fingerprints; a
// restored run's fingerprint at completion equals the unbroken run's. (The
// bench package's TraceFingerprint is this same digest.)
func (s *System) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "now=%d\n", s.Now())
	for _, ft := range s.Timings().All() {
		fmt.Fprintf(h, "%s|%v|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
			ft.Protocol, ft.Write, ft.Link, ft.Start,
			ft.Detect, ft.Request, ft.Server, ft.Transfer, ft.Install,
			ft.Migration, ft.Overhead, ft.Total)
	}
	st := s.Stats()
	fmt.Fprintf(h, "stats=%+v\n", st)
	return hex.EncodeToString(h.Sum(nil))
}

// configState serializes the system's retained configuration, resolving the
// topology to registry profile names.
func (s *System) configState() (ConfigState, error) {
	cs := ConfigState{
		Nodes:          s.cfg.Nodes,
		CPUsPerNode:    s.cfg.CPUsPerNode,
		LinkContention: s.cfg.LinkContention,
		UnbatchedComm:  s.cfg.UnbatchedComm,
		Protocol:       s.cfg.Protocol,
		Seed:           s.cfg.Seed,
		Shards:         s.cfg.Shards,
	}
	profName := func(p *NetworkProfile) (string, error) {
		if p == nil {
			return "", fmt.Errorf("dsmpm2: checkpoint of a nil network profile")
		}
		if madeleine.ByName(p.Name) == nil {
			return "", fmt.Errorf("dsmpm2: network profile %q is not in the registry; checkpoints only serialize registered profiles", p.Name)
		}
		return p.Name, nil
	}
	switch topo := s.cfg.Topology.(type) {
	case nil:
		name, err := profName(s.cfg.Network)
		if err != nil {
			return ConfigState{}, err
		}
		cs.Network = name
	case *madeleine.Uniform:
		name, err := profName(topo.P)
		if err != nil {
			return ConfigState{}, err
		}
		cs.Topology = &TopologyState{Kind: "uniform", Profile: name}
	case *madeleine.Hierarchical:
		intra, err := profName(topo.Intra)
		if err != nil {
			return ConfigState{}, err
		}
		inter, err := profName(topo.Inter)
		if err != nil {
			return ConfigState{}, err
		}
		ts := &TopologyState{Kind: "hier", Intra: intra, Inter: inter}
		for n := 0; n < topo.Nodes(); n++ {
			ts.ClusterOf = append(ts.ClusterOf, topo.ClusterOf(n))
		}
		cs.Topology = ts
	default:
		return ConfigState{}, fmt.Errorf("dsmpm2: topology %s is not checkpoint-serializable (only uniform and hierarchical topologies round-trip)", topo.Name())
	}
	return cs, nil
}

// toConfig rebuilds a Config from its serialized form.
func (cs ConfigState) toConfig() (Config, error) {
	cfg := Config{
		Nodes:          cs.Nodes,
		CPUsPerNode:    cs.CPUsPerNode,
		LinkContention: cs.LinkContention,
		UnbatchedComm:  cs.UnbatchedComm,
		Protocol:       cs.Protocol,
		Seed:           cs.Seed,
		Shards:         cs.Shards,
	}
	resolve := func(name string) (*NetworkProfile, error) {
		p := madeleine.ByName(name)
		if p == nil {
			return nil, fmt.Errorf("dsmpm2: checkpoint references unknown network profile %q", name)
		}
		return p, nil
	}
	if ts := cs.Topology; ts != nil {
		switch ts.Kind {
		case "uniform":
			p, err := resolve(ts.Profile)
			if err != nil {
				return Config{}, err
			}
			cfg.Topology = madeleine.NewUniform(p)
		case "hier":
			intra, err := resolve(ts.Intra)
			if err != nil {
				return Config{}, err
			}
			inter, err := resolve(ts.Inter)
			if err != nil {
				return Config{}, err
			}
			cfg.Topology = madeleine.NewHierarchical(ts.ClusterOf, intra, inter)
		default:
			return Config{}, fmt.Errorf("dsmpm2: checkpoint has unknown topology kind %q", ts.Kind)
		}
	} else {
		p, err := resolve(cs.Network)
		if err != nil {
			return Config{}, err
		}
		cfg.Network = p
	}
	return cfg, nil
}

// Checkpoint captures the full simulation state at a safe point. app is the
// application layer's own serialized progress (thread positions, iteration
// counters — whatever it needs to rebuild its workers), carried opaquely.
// The call fails with a descriptive error — and never mutates the system —
// when the moment is not a safe point: events still queued, threads alive, a
// lock held, a fetch pending, a twin outstanding, messages parked on a
// partitioned link.
func (s *System) Checkpoint(app []byte) (*Checkpoint, error) {
	cfgState, err := s.configState()
	if err != nil {
		return nil, err
	}
	var kernel sim.Snapshot
	var kernelShards []sim.Snapshot
	if s.rt.Sharded() {
		kernelShards, err = s.rt.ShardedEngine().Capture()
		if err != nil {
			return nil, err
		}
		kernel = kernelShards[0]
	} else {
		kernel, err = s.rt.Engine().Capture()
		if err != nil {
			return nil, err
		}
	}
	coreState, err := s.dsm.CaptureState()
	if err != nil {
		return nil, err
	}
	netState, err := s.rt.Network().CaptureState()
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		Config:       cfgState,
		KernelShards: kernelShards,
		Kernel:       kernel,
		Core:         coreState,
		Net:          netState,
		Runtime:      s.rt.CaptureState(),
		App:          append([]byte(nil), app...),
		Fingerprint:  s.Fingerprint(),
	}
	if s.cursor != nil {
		next, base := s.cursor.Pos()
		ck.Cursor = &CursorState{Next: next, Base: base, Plan: s.faultPlan}
		ck.Partition = int(s.faultOpts.Partition)
	}
	return ck, nil
}

// RestoreOptions tunes Restore.
type RestoreOptions struct {
	// OnRestart re-attaches the application's node-restart hook (hooks do
	// not serialize); required when the checkpoint's fault plan has restart
	// events still pending.
	OnRestart func(node int)
}

// Restore builds a fresh System from a checkpoint. The returned system is at
// the captured virtual time with the captured state installed; the caller
// rebuilds its application threads from ck.App and calls Run to continue.
// Running a restored system to completion is bit-identical to the unbroken
// run.
func Restore(ck *Checkpoint, opts RestoreOptions) (*System, error) {
	if ck == nil || ck.Core == nil || ck.Net == nil || ck.Runtime == nil {
		return nil, fmt.Errorf("dsmpm2: restore of an incomplete checkpoint")
	}
	cfg, err := ck.Config.toConfig()
	if err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// The profiler must come up before the drain below: enabling it registers
	// the migrate services, whose dispatcher spawn wakes must be consumed
	// while the queue is still allowed to hold events.
	if p := ck.Core.Profiler; p != nil {
		s.EnableProfiler(ProfilerConfig{Migrate: p.Migrate, Stability: p.Stability, Window: p.Window})
	}
	// Drain the construction-time spawn wakes (RPC dispatchers parking on
	// their queues); afterwards the engine is quiesced and restorable.
	if err := s.rt.Run(); err != nil {
		return nil, fmt.Errorf("dsmpm2: restore drain: %w", err)
	}
	// Fault layers come back before any node can be killed: the network kill
	// path requires the fault layer, and core.RestoreState re-enables
	// recovery with the captured parameters (preserving the hook installed
	// here, since hooks do not serialize).
	hasFaults := false
	for _, sh := range ck.Net.Shards {
		if sh.Faults != nil {
			hasFaults = true
		}
	}
	if hasFaults {
		seed := int64(1)
		if ck.Cursor != nil && ck.Cursor.Plan != nil {
			seed = ck.Cursor.Plan.Seed
		}
		s.rt.EnableFaults(seed, PartitionPolicy(ck.Partition))
	}
	if ck.Core.Recovery != nil {
		s.dsm.EnableRecovery(core.RecoveryConfig{OnRestart: opts.OnRestart})
	}
	// Nodes dead at capture die again here, so the runtime and network tear
	// down their dispatchers and queues exactly as the original crash did;
	// the counters those kills perturb are stomped back by the restores.
	for n, ns := range ck.Runtime.Nodes {
		if ns.Dead {
			s.rt.KillNode(n)
		}
	}
	if err := s.dsm.RestoreState(ck.Core); err != nil {
		return nil, err
	}
	if err := s.rt.Network().RestoreState(ck.Net); err != nil {
		return nil, err
	}
	if err := s.rt.RestoreState(ck.Runtime); err != nil {
		return nil, err
	}
	if len(ck.KernelShards) > 0 {
		if !s.rt.Sharded() {
			return nil, fmt.Errorf("dsmpm2: checkpoint holds %d kernel shard(s) but the rebuilt system is single-loop (config shards=%d)", len(ck.KernelShards), ck.Config.Shards)
		}
		if err := s.rt.ShardedEngine().Restore(ck.KernelShards); err != nil {
			return nil, err
		}
	} else if s.rt.Sharded() {
		return nil, fmt.Errorf("dsmpm2: sharded system restored from a checkpoint with no per-shard kernels")
	} else if err := s.rt.Engine().Restore(ck.Kernel); err != nil {
		return nil, err
	}
	if ck.Cursor != nil {
		s.faultPlan = ck.Cursor.Plan
		s.faultOpts = FaultOptions{Partition: PartitionPolicy(ck.Partition), OnRestart: opts.OnRestart}
		s.cursor = s.rt.Engine().NewFaultCursor(ck.Cursor.Plan, s.applyFault)
		if err := s.cursor.SetPos(ck.Cursor.Next, ck.Cursor.Base); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// envelope is the self-describing on-disk form of a checkpoint: a format
// version, the body, and its hash. The hash turns truncation or corruption
// into a clean decode error instead of a misrestore.
type envelope struct {
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Body    json.RawMessage `json:"body"`
}

// Encode serializes the checkpoint into its versioned, integrity-checked
// wire form.
func (ck *Checkpoint) Encode() ([]byte, error) {
	body, err := json.Marshal(ck)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(body)
	return json.Marshal(envelope{
		Version: CheckpointVersion,
		SHA256:  hex.EncodeToString(sum[:]),
		Body:    body,
	})
}

// DecodeCheckpoint parses a checkpoint produced by Encode, rejecting unknown
// versions, truncated payloads and hash mismatches with descriptive errors
// (never a panic).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("dsmpm2: checkpoint envelope unreadable (truncated or not a checkpoint): %w", err)
	}
	if env.Version != CheckpointVersion {
		return nil, fmt.Errorf("dsmpm2: checkpoint format version %d not supported (this build reads version %d)", env.Version, CheckpointVersion)
	}
	if len(env.Body) == 0 {
		return nil, fmt.Errorf("dsmpm2: checkpoint envelope has no body")
	}
	sum := sha256.Sum256(env.Body)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return nil, fmt.Errorf("dsmpm2: checkpoint body hash mismatch (file corrupted or truncated): have %s, recorded %s", got, env.SHA256)
	}
	ck := new(Checkpoint)
	if err := json.Unmarshal(env.Body, ck); err != nil {
		return nil, fmt.Errorf("dsmpm2: checkpoint body unreadable: %w", err)
	}
	return ck, nil
}

// Save writes the checkpoint to a file in its Encode form.
func (ck *Checkpoint) Save(path string) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCheckpoint reads a checkpoint file written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

// RecordCheckpoint notes that node committed an application-level checkpoint
// covering work units up to and including unit; a later restart's OnRestart
// hook reads it back through LastCheckpoint to warm-start. No-op when
// recovery is off.
func (s *System) RecordCheckpoint(node, unit int) { s.dsm.RecordCheckpoint(node, unit) }

// LastCheckpoint reports the last work unit node committed a checkpoint for
// (-1 when none).
func (s *System) LastCheckpoint(node int) int { return s.dsm.LastCheckpoint(node) }

// AddRedoneUnits accumulates application-reported redone work units into the
// recovery stats.
func (s *System) AddRedoneUnits(n int) { s.dsm.AddRedoneUnits(n) }

// NoteWarmRestart counts a restart that resumed from a recorded checkpoint.
func (s *System) NoteWarmRestart() { s.dsm.NoteWarmRestart() }
