package dsmpm2_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 4). Times are virtual: each benchmark reports the simulated
// microseconds or milliseconds of the measured operation via ReportMetric,
// alongside the usual wall-clock numbers for the simulator itself.
//
//	BenchmarkMicroRPC            Section 2.1  null RPC latency
//	BenchmarkMicroMigration      Section 2.1  thread migration latency
//	BenchmarkTable3ReadFaultPage Table 3      read fault, page policy
//	BenchmarkTable4ReadFaultMig  Table 4      read fault, migration policy
//	BenchmarkFigure4TSP          Figure 4     TSP protocol comparison
//	BenchmarkFigure5MapColoring  Figure 5     java_ic vs java_pf
//	BenchmarkAblation*           DESIGN.md    design-choice ablations

import (
	"fmt"
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/lu"
	"dsmpm2/internal/apps/mapcolor"
	"dsmpm2/internal/apps/matmul"
	"dsmpm2/internal/apps/tsp"
	"dsmpm2/internal/bench"
)

// BenchmarkMicroRPC measures the null RPC round trip on each network
// (paper: 8us BIP/Myrinet, 6us SISCI/SCI).
func BenchmarkMicroRPC(b *testing.B) {
	for _, prof := range dsmpm2.Networks {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = bench.NullRPC(prof)
			}
			b.ReportMetric(us, "virtual-us/op")
		})
	}
}

// BenchmarkMicroMigration measures minimal-thread migration on each network
// (paper: 75us BIP/Myrinet, 62us SISCI/SCI).
func BenchmarkMicroMigration(b *testing.B) {
	for _, prof := range dsmpm2.Networks {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = bench.Migration(prof)
			}
			b.ReportMetric(us, "virtual-us/op")
		})
	}
}

// BenchmarkTable3ReadFaultPage measures the full remote read fault under the
// page-migration policy (li_hudak) and reports the paper's breakdown.
func BenchmarkTable3ReadFaultPage(b *testing.B) {
	for _, prof := range dsmpm2.Networks {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var ft *dsmpm2.FaultTiming
			for i := 0; i < b.N; i++ {
				ft = bench.ReadFaultPage(prof)
			}
			b.ReportMetric(ft.Detect.Microseconds(), "fault-us")
			b.ReportMetric(ft.Request.Microseconds(), "request-us")
			b.ReportMetric(ft.Transfer.Microseconds(), "transfer-us")
			b.ReportMetric(ft.ProtocolOverhead().Microseconds(), "overhead-us")
			b.ReportMetric(ft.Total.Microseconds(), "total-us")
		})
	}
}

// BenchmarkTable4ReadFaultMig measures the remote read fault under the
// thread-migration policy (migrate_thread).
func BenchmarkTable4ReadFaultMig(b *testing.B) {
	for _, prof := range dsmpm2.Networks {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var ft *dsmpm2.FaultTiming
			for i := 0; i < b.N; i++ {
				ft = bench.ReadFaultMigrate(prof)
			}
			b.ReportMetric(ft.Detect.Microseconds(), "fault-us")
			b.ReportMetric(ft.Migration.Microseconds(), "migration-us")
			b.ReportMetric(ft.Overhead.Microseconds(), "overhead-us")
			b.ReportMetric(ft.Total.Microseconds(), "total-us")
		})
	}
}

// BenchmarkFigure4TSP runs the TSP comparison of Figure 4: four protocols,
// one thread per node, BIP/Myrinet. The reported virtual-ms is the
// application run time; the page-based protocols should beat migrate_thread.
func BenchmarkFigure4TSP(b *testing.B) {
	const cities = 10
	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw", "migrate_thread"} {
		for _, nodes := range []int{2, 4} {
			name := fmt.Sprintf("%s/nodes=%d", proto, nodes)
			proto, nodes := proto, nodes
			b.Run(name, func(b *testing.B) {
				var elapsed dsmpm2.Time
				for i := 0; i < b.N; i++ {
					res, err := tsp.Run(tsp.Config{
						Cities: cities, Seed: 42, Nodes: nodes,
						Network: dsmpm2.BIPMyrinet, Protocol: proto,
					})
					if err != nil {
						b.Fatal(err)
					}
					elapsed = res.Elapsed
				}
				b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
			})
		}
	}
}

// BenchmarkFigure5MapColoring runs the Java consistency comparison of
// Figure 5: map coloring on 4 SISCI/SCI nodes, java_ic vs java_pf.
func BenchmarkFigure5MapColoring(b *testing.B) {
	for _, proto := range []string{"java_ic", "java_pf"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var elapsed dsmpm2.Time
			for i := 0; i < b.N; i++ {
				res, err := mapcolor.Run(mapcolor.Config{
					Nodes: 4, ThreadsPerNode: 1,
					Network: dsmpm2.SISCISCI, Protocol: proto, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkKernelEventStorm measures the simulator's own wall-clock
// throughput (events per host second) on the scheduling-path storm: procs
// in a ring alternating virtual-time steps with token passes. This is the
// simulator-efficiency benchmark behind BENCH_kernel.json, distinct from
// the virtual-latency benchmarks above.
func BenchmarkKernelEventStorm(b *testing.B) {
	var r bench.KernelResult
	for i := 0; i < b.N; i++ {
		r = bench.EventStorm(64, 500)
	}
	b.ReportAllocs()
	b.ReportMetric(r.EventsPerSec, "events/sec")
	b.ReportMetric(r.AllocsPerEvent, "allocs/event")
}

// BenchmarkKernelEventStormSharded measures the parallel (sharded) kernel on
// the same storm, one sub-benchmark per shard count of the host-scaling
// matrix. The virtual schedule is identical at every shard count; only the
// host-core spread changes. The CI smoke (`go test -bench
// KernelEventStormSharded -benchtime=1x`) uses this to prove the sharded
// kernel stays runnable, not to gate on wall-clock numbers.
func BenchmarkKernelEventStormSharded(b *testing.B) {
	for _, shards := range bench.ScalingShards(0) {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var r bench.KernelResult
			for i := 0; i < b.N; i++ {
				r = bench.EventStormSharded(256, 200, shards)
			}
			b.ReportAllocs()
			b.ReportMetric(r.EventsPerSec, "events/sec")
			b.ReportMetric(r.AllocsPerEvent, "allocs/event")
		})
	}
}

// BenchmarkKernelApps measures the wall-clock cost of the cluster-scale
// application scenarios of the kernel suite (one iteration each; use
// dsmbench -exp kernel for the full comparison table).
func BenchmarkKernelApps(b *testing.B) {
	scenarios := []struct {
		name string
		run  func() bench.KernelResult
	}{
		{"jacobi16", func() bench.KernelResult { return bench.JacobiStorm(16, 32, 2) }},
		{"matmul16", func() bench.KernelResult { return bench.MatmulStorm(16, 16) }},
		{"tsp16", func() bench.KernelResult { return bench.TSPStorm(16, 9) }},
	}
	for _, sc := range scenarios {
		run := sc.run
		b.Run(sc.name, func(b *testing.B) {
			var r bench.KernelResult
			for i := 0; i < b.N; i++ {
				r = run()
			}
			b.ReportMetric(r.EventsPerSec, "events/sec")
			b.ReportMetric(r.AllocsPerEvent, "allocs/event")
		})
	}
}

// BenchmarkCommJacobi64 runs the comm experiment's headline pair — the
// 64-node jacobi on both communication paths — and reports the wire
// accounting: total and barrier-phase envelope counts plus the batched-path
// reduction factors. Everything is virtual-time exact, so the metrics are
// identical on every machine; the CI smoke (`go test -bench Comm
// -benchtime=1x`) uses this to catch an envelope-count regression.
func BenchmarkCommJacobi64(b *testing.B) {
	var batched, unbatched bench.CommResult
	for i := 0; i < b.N; i++ {
		batched, unbatched = bench.CommJacobi64()
	}
	if batched.SyncEnvelopes <= 0 || unbatched.SyncEnvelopes <= 0 {
		b.Fatalf("degenerate sync envelope counts: batched %d, unbatched %d",
			batched.SyncEnvelopes, unbatched.SyncEnvelopes)
	}
	ratio := float64(unbatched.SyncEnvelopes) / float64(batched.SyncEnvelopes)
	if ratio < 2 {
		b.Fatalf("barrier-phase envelope reduction %.2fx < 2x (unbatched %d, batched %d)",
			ratio, unbatched.SyncEnvelopes, batched.SyncEnvelopes)
	}
	b.ReportMetric(float64(batched.Envelopes), "envelopes-batched")
	b.ReportMetric(float64(unbatched.Envelopes), "envelopes-unbatched")
	b.ReportMetric(ratio, "sync-envelope-reduction-x")
	b.ReportMetric(batched.VirtualMS, "virtual-ms-batched")
}

// BenchmarkAdaptJacobi64 runs the adapt experiment's headline pair — the
// 64-node jacobi from misplaced homes, static vs profiler-driven home
// migration — and reports the placement accounting. Everything is
// virtual-time exact, so the metrics are identical on every machine; the CI
// smoke (`go test -bench Adapt -benchtime=1x`) uses this to catch a
// regression where migration stops reducing jacobi's remote fetches.
func BenchmarkAdaptJacobi64(b *testing.B) {
	var static, adaptive bench.AdaptResult
	for i := 0; i < b.N; i++ {
		static, adaptive = bench.AdaptJacobi64()
	}
	if static.RemoteFetches <= 0 || adaptive.RemoteFetches <= 0 {
		b.Fatalf("degenerate remote fetch counts: static %d, adaptive %d",
			static.RemoteFetches, adaptive.RemoteFetches)
	}
	if adaptive.HomeMigrations == 0 {
		b.Fatal("the decision engine migrated nothing")
	}
	ratio := float64(static.RemoteFetches) / float64(adaptive.RemoteFetches)
	if ratio < 1.5 {
		b.Fatalf("remote-fetch reduction %.2fx < 1.5x (static %d, adaptive %d)",
			ratio, static.RemoteFetches, adaptive.RemoteFetches)
	}
	b.ReportMetric(float64(static.RemoteFetches), "remote-fetches-static")
	b.ReportMetric(float64(adaptive.RemoteFetches), "remote-fetches-adaptive")
	b.ReportMetric(ratio, "remote-fetch-reduction-x")
	b.ReportMetric(float64(adaptive.HomeMigrations), "home-migrations")
	b.ReportMetric(adaptive.VirtualMS, "virtual-ms-adaptive")
}

// BenchmarkAblationJacobi compares sequential vs release consistency on the
// barrier-phased stencil, the ablation DESIGN.md calls out for the hbrc_mw
// twin/diff design.
func BenchmarkAblationJacobi(b *testing.B) {
	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var elapsed dsmpm2.Time
			for i := 0; i < b.N; i++ {
				res, err := jacobi.Run(jacobi.Config{
					N: 16, Iterations: 4, Nodes: 4,
					Network: dsmpm2.BIPMyrinet, Protocol: proto, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkAblationMatmul measures pure read-sharing replication cost across
// protocols (no write sharing at all).
func BenchmarkAblationMatmul(b *testing.B) {
	for _, proto := range []string{"li_hudak", "hbrc_mw", "migrate_thread"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var elapsed dsmpm2.Time
			for i := 0; i < b.N; i++ {
				res, err := matmul.Run(matmul.Config{
					N: 12, Nodes: 4,
					Network: dsmpm2.BIPMyrinet, Protocol: proto, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkAblationLU measures the pivot-broadcast sharing pattern of the
// blocked LU kernel across protocols: one freshly written row is read by
// every node at each elimination step.
func BenchmarkAblationLU(b *testing.B) {
	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var elapsed dsmpm2.Time
			for i := 0; i < b.N; i++ {
				res, err := lu.Run(lu.Config{
					N: 12, Nodes: 4,
					Network: dsmpm2.BIPMyrinet, Protocol: proto, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkAblationStackSize shows the Section 4 caveat: migration cost (and
// with it migrate_thread's fault cost) grows with thread stack size.
func BenchmarkAblationStackSize(b *testing.B) {
	for _, stack := range []int{1 << 10, 16 << 10, 64 << 10} {
		stack := stack
		b.Run(fmt.Sprintf("stack=%dKiB", stack/1024), func(b *testing.B) {
			var took dsmpm2.Duration
			for i := 0; i < b.N; i++ {
				sys := dsmpm2.MustNew(dsmpm2.Config{
					Nodes: 2, Network: dsmpm2.BIPMyrinet, Protocol: "migrate_thread",
				})
				data := sys.MustMalloc(1, 8, nil)
				sys.SpawnStack(0, "w", stack, func(t *dsmpm2.Thread) {
					start := t.Now()
					t.WriteUint64(data, 1)
					took = t.Now().Sub(start)
				})
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(took.Microseconds(), "virtual-us")
		})
	}
}

// BenchmarkProtocolRegistry exercises protocol creation/selection overhead
// (Table 2's registry path).
func BenchmarkProtocolRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 1})
		if len(sys.ProtocolNames()) < 6 {
			b.Fatal("built-ins missing")
		}
	}
}

// BenchmarkAblationFalseSharing measures the MRMW payoff: per-node counters
// that share one page, under per-node locks. Single-writer protocols
// ping-pong the page; hbrc_mw merges diffs at the home.
func BenchmarkAblationFalseSharing(b *testing.B) {
	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var elapsed dsmpm2.Time
			for i := 0; i < b.N; i++ {
				sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Protocol: proto})
				base := sys.MustMalloc(0, dsmpm2.PageSize, nil)
				locks := make([]int, 4)
				for n := range locks {
					locks[n] = sys.NewLock(0)
				}
				for n := 0; n < 4; n++ {
					n := n
					addr := base + dsmpm2.Addr(64*n)
					sys.Spawn(n, "w", func(t *dsmpm2.Thread) {
						for k := 0; k < 10; k++ {
							t.Acquire(locks[n])
							t.WriteUint64(addr, t.ReadUint64(addr)+1)
							t.Release(locks[n])
						}
					})
				}
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
				elapsed = sys.Now()
			}
			b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkAblationManagerStrategy compares the Li & Hudak manager schemes
// on a rotating-writer workload where the owner keeps moving: probable-owner
// chains (li_hudak) vs manager indirection (li_fixed, li_central).
func BenchmarkAblationManagerStrategy(b *testing.B) {
	for _, proto := range []string{"li_hudak", "li_fixed", "li_central"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var elapsed dsmpm2.Time
			for i := 0; i < b.N; i++ {
				sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Protocol: proto})
				base := sys.MustMalloc(0, 8, nil)
				lock := sys.NewLock(0)
				for n := 0; n < 4; n++ {
					n := n
					sys.Spawn(n, "w", func(t *dsmpm2.Thread) {
						for k := 0; k < 10; k++ {
							t.Acquire(lock)
							t.WriteUint64(base, t.ReadUint64(base)+1)
							t.Release(lock)
						}
					})
				}
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
				elapsed = sys.Now()
			}
			b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkAblationEntryVsRC measures entry consistency's reduced
// synchronization scope: two independently-locked areas, with entry_mw
// annotating the lock-data association and hbrc_mw synchronizing everything
// at every release.
func BenchmarkAblationEntryVsRC(b *testing.B) {
	run := func(proto string, bind bool) dsmpm2.Time {
		sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 3, Protocol: proto})
		areaA := sys.MustMalloc(0, 8, nil)
		areaB := sys.MustMalloc(0, dsmpm2.PageSize, nil)
		lockA := sys.NewLock(0)
		lockB := sys.NewLock(0)
		if bind {
			sys.BindLock(lockA, areaA, 8)
			sys.BindLock(lockB, areaB, dsmpm2.PageSize)
		}
		for n := 1; n < 3; n++ {
			sys.Spawn(n, "w", func(t *dsmpm2.Thread) {
				for k := 0; k < 8; k++ {
					t.Acquire(lockA)
					t.WriteUint64(areaA, t.ReadUint64(areaA)+1)
					t.Release(lockA)
					t.Acquire(lockB)
					t.WriteUint64(areaB, t.ReadUint64(areaB)+1)
					t.Release(lockB)
				}
			})
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		return sys.Now()
	}
	b.Run("entry_mw", func(b *testing.B) {
		var elapsed dsmpm2.Time
		for i := 0; i < b.N; i++ {
			elapsed = run("entry_mw", true)
		}
		b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
	})
	b.Run("hbrc_mw", func(b *testing.B) {
		var elapsed dsmpm2.Time
		for i := 0; i < b.N; i++ {
			elapsed = run("hbrc_mw", false)
		}
		b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
	})
}

// BenchmarkLoadBalancer measures the dynamic load balancer (Section 2.1's
// motivating use of preemptive migration) on an imbalanced compute load.
func BenchmarkLoadBalancer(b *testing.B) {
	for _, balance := range []bool{false, true} {
		name := "off"
		if balance {
			name = "on"
		}
		balance := balance
		b.Run(name, func(b *testing.B) {
			var elapsed dsmpm2.Time
			for i := 0; i < b.N; i++ {
				sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4})
				for w := 0; w < 8; w++ {
					t := sys.Spawn(0, "w", func(t *dsmpm2.Thread) {
						for c := 0; c < 20; c++ {
							t.Compute(dsmpm2.Millisecond)
						}
					})
					t.PM2().SetMigratable(true)
				}
				if balance {
					sys.Runtime().StartBalancer(500 * dsmpm2.Microsecond)
				}
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
				elapsed = sys.Now()
			}
			b.ReportMetric(float64(elapsed)/1e6, "virtual-ms")
		})
	}
}
