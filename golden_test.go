package dsmpm2_test

// Golden-trace determinism tests: the kernel overhaul (typed events,
// calendar buckets, direct goroutine handoff, pooled pages and messages)
// must not move a single virtual-time timestamp. The fingerprint below was
// captured by running this exact workload on the pre-overhaul kernel
// (container/heap of *event, double switch per wake, unpooled buffers);
// the rewritten kernel must reproduce it bit for bit.

import (
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/bench"
)

// goldenJacobiConfig is the pinned golden workload: a full jacobi run with
// enough nodes and iterations to exercise faults, diffs, barriers and
// multi-phase Run calls.
func goldenJacobiConfig() jacobi.Config {
	return jacobi.Config{
		N: 24, Iterations: 4, Nodes: 8,
		Network: dsmpm2.BIPMyrinet, Protocol: "hbrc_mw", Seed: 7,
	}
}

const (
	// goldenJacobiFingerprint hashes every FaultTiming field of the run's
	// TimingLog plus the final clock and stats. Re-pinned once when the
	// batched communication path became the default (multi-part envelopes,
	// barrier write notices): the pre-batching values were
	// b707c106e00ee96209ee79d9528198c20e8e315212d4918c868ee9c8ed7fd8f2 at
	// 1329800 ns — batching cut this run's virtual time by ~6.2% (see
	// EXPERIMENTS.md, "Communication batching"). Re-pinned again when
	// core.Stats gained the placement counters (RemoteFetches,
	// MisplacedFetches, HomeMigrations): the digest covers the stats
	// struct's rendered form, so new fields change the hash even at zero.
	// The previous digest was
	// d6e7cd418ca5960af807a11e8865b3e7e67d535c00ee5559666b9a5d5fa505a3;
	// the elapsed pin below is unchanged — with the profiler off, not one
	// virtual timestamp moved.
	goldenJacobiFingerprint = "17ff59c2123a7ca166e8666ef280cb9a58fd76c7be87a58975aef784672aac64"
	// goldenJacobiElapsed is the run's total virtual time, pinned
	// separately so a mismatch gives an immediately readable signal.
	goldenJacobiElapsed = dsmpm2.Time(1247233)
)

// TestGoldenJacobiTrace replays the golden workload and requires the exact
// pre-overhaul fault timings.
func TestGoldenJacobiTrace(t *testing.T) {
	res, err := jacobi.Run(goldenJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := jacobi.SolveSerial(24, 4); res.Checksum != want {
		t.Fatalf("checksum %v, want %v", res.Checksum, want)
	}
	if res.Elapsed != goldenJacobiElapsed {
		t.Errorf("virtual elapsed = %d, want %d (kernel changed virtual timing)",
			res.Elapsed, goldenJacobiElapsed)
	}
	if fp := bench.TraceFingerprint(res.System); fp != goldenJacobiFingerprint {
		t.Errorf("trace fingerprint = %s,\nwant %s\n(fault timings diverged from the golden trace)",
			fp, goldenJacobiFingerprint)
	}
}

// TestGoldenJacobiReplayIdentical runs the workload twice in one process:
// same seed, bit-identical TimingLog.
func TestGoldenJacobiReplayIdentical(t *testing.T) {
	a, err := jacobi.Run(goldenJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := jacobi.Run(goldenJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := bench.TraceFingerprint(a.System), bench.TraceFingerprint(b.System); fa != fb {
		t.Fatalf("same-seed replays diverged:\n%s\n%s", fa, fb)
	}
}

// TestDeadlockReportDeterministic: a deadlocking DSM workload produces the
// identical report on every replay (the sorted blocked-proc list the kernel
// builds is part of the determinism contract).
func TestDeadlockReportDeterministic(t *testing.T) {
	run := func() string {
		sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Seed: 3})
		lock := sys.NewLock(0)
		sys.Spawn(0, "holder", func(th *dsmpm2.Thread) {
			th.Acquire(lock) // never released
		})
		sys.Spawn(1, "blocked-a", func(th *dsmpm2.Thread) { th.Acquire(lock) })
		sys.Spawn(1, "blocked-b", func(th *dsmpm2.Thread) { th.Acquire(lock) })
		err := sys.Run()
		if err == nil {
			t.Fatal("deadlocked workload ran to completion")
		}
		return err.Error()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("deadlock reports diverged:\n%s\n%s", a, b)
	}
}
