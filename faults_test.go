package dsmpm2_test

// Fault-injection tests: crash/restart plans on the restart-aware jacobi
// kernel must complete with sequentially-correct results, and the same
// seed + plan must replay bit-identically (the golden-trace property
// extended to faulty runs).

import (
	"math/rand"
	"strings"
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/bench"
)

// at converts a duration offset into a fault-plan timestamp.
func at(d dsmpm2.Duration) dsmpm2.Time { return dsmpm2.Time(d) }

// faultyJacobiConfig is the pinned faulty workload of the acceptance
// scenario: 16 nodes on a hierarchical topology, two mid-run crashes with
// staggered restarts, plus a transient inter-cluster partition.
func faultyJacobiConfig(protocol string) jacobi.Config {
	plan := dsmpm2.NewFaultPlan(11)
	plan.Crash(at(2*dsmpm2.Millisecond), 5).Restart(at(9*dsmpm2.Millisecond), 5)
	plan.Crash(at(4*dsmpm2.Millisecond), 11).Restart(at(12*dsmpm2.Millisecond), 11)
	plan.Partition(at(6*dsmpm2.Millisecond), 2, 9).Heal(at(8*dsmpm2.Millisecond), 2, 9)
	return jacobi.Config{
		N: 24, Iterations: 8, Nodes: 16,
		Topology: dsmpm2.HierarchicalTopology(
			dsmpm2.EvenClusters(16, 2), dsmpm2.BIPMyrinet, dsmpm2.TCPFastEthernet),
		Protocol: protocol, Seed: 7,
		FaultPlan: plan,
	}
}

const (
	// goldenFaultyJacobiFingerprint pins the hbrc_mw faulty run's TimingLog
	// the same way golden_test.go pins the fault-free one: a kernel or
	// recovery change that moves any virtual timestamp of the faulty replay
	// shows up here immediately. Re-pinned once when the batched
	// communication path became the default; the pre-batching values were
	// db46952256e2284f165f41bed80b505917bc0761f33df0edca4deabe671b89ad at
	// 21463006 ns (see EXPERIMENTS.md, "Communication batching"). Re-pinned
	// again when the profiler PR landed: core.Stats gained the placement
	// counters (the digest covers the rendered stats struct), and the
	// recovery sweep was hardened against the dead regime's in-flight
	// messages (promoted homes re-run InitPage, pending fetches are
	// retired at the sweep, invalidations from since-crashed senders are
	// ignored — see recovery.go/comm.go). Previous digest
	// 492301af9adf179b3533f13da272b75db51e27e01dad4ac666c36a720132ee28;
	// elapsed below is unchanged — no virtual timestamp moved.
	goldenFaultyJacobiFingerprint = "7ed8e7f14bdf6d5642ab15e4ff3c4a6322e6b289e09779fd9794c64fcc52f99a"
	// Elapsed is the computation's end (last worker finish), not the
	// drain time of trailing fault-plan events.
	goldenFaultyJacobiElapsed = dsmpm2.Time(20924104)
)

// TestGoldenFaultyJacobiTrace replays the pinned faulty workload and
// requires the exact recorded fault timings and final clock.
func TestGoldenFaultyJacobiTrace(t *testing.T) {
	res, err := jacobi.Run(faultyJacobiConfig("hbrc_mw"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != goldenFaultyJacobiElapsed {
		t.Errorf("virtual elapsed = %d, want %d (fault replay timing changed)",
			res.Elapsed, goldenFaultyJacobiElapsed)
	}
	if fp := bench.TraceFingerprint(res.System); fp != goldenFaultyJacobiFingerprint {
		t.Errorf("trace fingerprint = %s,\nwant %s\n(faulty-trace replay diverged from the golden trace)",
			fp, goldenFaultyJacobiFingerprint)
	}
}

// TestFaultyJacobiCorrectAndReplayable: the acceptance criterion. A
// crash/restart plan on jacobi (16 nodes, hierarchical topology) completes
// with sequentially-correct results under at least two protocols, and
// replaying the same seed + plan yields an identical TimingLog fingerprint.
func TestFaultyJacobiCorrectAndReplayable(t *testing.T) {
	want := jacobi.SolveSerial(24, 8)
	for _, proto := range []string{"hbrc_mw", "entry_mw"} {
		a, err := jacobi.Run(faultyJacobiConfig(proto))
		if err != nil {
			t.Fatalf("[%s] %v", proto, err)
		}
		if a.Checksum != want {
			t.Errorf("[%s] checksum = %v, want %v (recovery: %+v)",
				proto, a.Checksum, want, a.Recovery)
		}
		if a.Faults.Crashes != 2 || a.Faults.Restarts != 2 {
			t.Errorf("[%s] fault counters %+v, want 2 crashes / 2 restarts", proto, a.Faults)
		}
		b, err := jacobi.Run(faultyJacobiConfig(proto))
		if err != nil {
			t.Fatalf("[%s] replay: %v", proto, err)
		}
		if fa, fb := bench.TraceFingerprint(a.System), bench.TraceFingerprint(b.System); fa != fb {
			t.Errorf("[%s] same seed + plan diverged:\n%s\n%s", proto, fa, fb)
		}
		if a.Elapsed != b.Elapsed {
			t.Errorf("[%s] elapsed %d vs %d on replay", proto, a.Elapsed, b.Elapsed)
		}
	}
}

// TestFaultPlanOrderIrrelevant: shuffling the order fault events were added
// to the plan must not change the replay — events are applied in a canonical
// total order, not insertion order.
func TestFaultPlanOrderIrrelevant(t *testing.T) {
	run := func(shuffleSeed int64) string {
		cfg := faultyJacobiConfig("hbrc_mw")
		if shuffleSeed != 0 {
			rng := rand.New(rand.NewSource(shuffleSeed))
			evs := cfg.FaultPlan.Events
			rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
		}
		res, err := jacobi.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return bench.TraceFingerprint(res.System)
	}
	base := run(0)
	for seed := int64(1); seed <= 3; seed++ {
		if got := run(seed); got != base {
			t.Fatalf("shuffle(seed=%d) changed the replay:\n%s\n%s", seed, got, base)
		}
	}
}

// TestFaultPartitionOnly: a pure partition (queue policy) delays but never
// corrupts — no recovery machinery beyond the held-message queue is needed,
// and the held messages' extra latency shows up in the fault stats.
func TestFaultPartitionOnly(t *testing.T) {
	plan := dsmpm2.NewFaultPlan(3)
	plan.Partition(at(1*dsmpm2.Millisecond), 0, 1)
	plan.Heal(at(3*dsmpm2.Millisecond), 0, 1)
	cfg := jacobi.Config{
		N: 16, Iterations: 4, Nodes: 4,
		Network: dsmpm2.TCPFastEthernet, Protocol: "hbrc_mw", Seed: 5,
		FaultPlan: plan,
	}
	res, err := jacobi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := jacobi.SolveSerial(16, 4); res.Checksum != want {
		t.Fatalf("checksum = %v, want %v", res.Checksum, want)
	}
	if res.Recovery.Crashes != 0 {
		t.Errorf("partition-only run recorded %d crashes", res.Recovery.Crashes)
	}
	if res.Faults.Held == 0 || res.Faults.HeldTime == 0 {
		t.Errorf("no messages were held on the partitioned link: %+v", res.Faults)
	}
}

// TestFaultLossyDiffLink: message loss on the links carrying the DSM data
// plane — page requests and transfers, release diffs, invalidations and
// their acks — must not wedge the protocol (the recovery waits re-send on
// timeout, and diffs/invalidations apply idempotently) and must not corrupt
// the result. Loss is configured on the writer<->home pair only: the
// synchronization manager (node 0) keeps reliable links, per the documented
// fault model.
func TestFaultLossyDiffLink(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 3, Protocol: "hbrc_mw", Seed: 5})
	plan := dsmpm2.NewFaultPlan(21)
	plan.Loss(at(0), 2, 1, 0.4, 0) // writer 2 -> home 1: drop 40%
	plan.Loss(at(0), 1, 2, 0.4, 0) // home 1 -> writer 2: drop 40%
	if err := sys.InjectFaults(plan, dsmpm2.FaultOptions{}); err != nil {
		t.Fatal(err)
	}

	base := sys.MustMalloc(1, dsmpm2.PageSize, &dsmpm2.Attr{Protocol: -1, Home: 1})
	lock := sys.NewLock(0)
	const rounds = 20
	sys.Spawn(2, "writer", func(th *dsmpm2.Thread) {
		for i := 0; i < rounds; i++ {
			th.Acquire(lock)
			th.WriteUint64(base+dsmpm2.Addr(8*(i%8)), uint64(i+1))
			th.Release(lock) // flushes the diff home over the lossy link
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var got [8]uint64
	sys.Spawn(0, "reader", func(th *dsmpm2.Thread) {
		th.Acquire(lock)
		for s := 0; s < 8; s++ {
			got[s] = th.ReadUint64(base + dsmpm2.Addr(8*s))
		}
		th.Release(lock)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		// Slot s was last written in round i where i%8 == s, i < rounds.
		want := uint64(rounds - 8 + (s+8-rounds%8)%8 + 1)
		if got[s] != want {
			t.Fatalf("slot %d = %d, want %d (faults %+v)", s, got[s], want, sys.FaultStats())
		}
	}
	if sys.FaultStats().Dropped == 0 {
		t.Fatalf("lossy link dropped nothing: %+v", sys.FaultStats())
	}
}

// TestMTBFPlanDeterministic: the exponential-failure plan generator is a
// pure function of its arguments.
func TestMTBFPlanDeterministic(t *testing.T) {
	gen := func() *dsmpm2.FaultPlan {
		return dsmpm2.GenerateMTBFPlan(42, 8, dsmpm2.Time(50*dsmpm2.Millisecond),
			20*dsmpm2.Millisecond, 5*dsmpm2.Millisecond, 0)
	}
	a, b := gen(), gen()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	for _, ev := range a.Events {
		if ev.Node == 0 {
			t.Fatalf("protected node 0 appears in plan: %+v", ev)
		}
	}
}

// TestInjectFaultsShardedRejected: fault injection on a sharded kernel must
// surface as a descriptive error — never a panic — and must not arm any
// fault layer; the single-shard path is unchanged. (The name carries "Shard"
// so CI's race step exercises it too.)
func TestInjectFaultsShardedRejected(t *testing.T) {
	plan := dsmpm2.NewFaultPlan(3)
	plan.Crash(at(dsmpm2.Millisecond), 1).Restart(at(2*dsmpm2.Millisecond), 1)

	sharded := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Protocol: "hbrc_mw", Seed: 1, Shards: 2})
	if err := sharded.InjectFaults(plan, dsmpm2.FaultOptions{}); err == nil {
		t.Fatal("InjectFaults on a 2-shard system returned nil, want an error")
	} else if !strings.Contains(err.Error(), "Shards <= 1") {
		t.Fatalf("InjectFaults error %q does not name the Shards <= 1 constraint", err)
	}
	if err := sharded.InjectFaultsResumable(plan, dsmpm2.FaultOptions{}); err == nil {
		t.Fatal("InjectFaultsResumable on a 2-shard system returned nil, want an error")
	}
	if got := sharded.FaultStats(); got != (dsmpm2.FaultStats{}) {
		t.Fatalf("rejected injection armed the fault layer anyway: %+v", got)
	}
	if err := sharded.Run(); err != nil {
		t.Fatalf("system unusable after rejected injection: %v", err)
	}

	single := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Protocol: "hbrc_mw", Seed: 1})
	if err := single.InjectFaults(plan, dsmpm2.FaultOptions{}); err != nil {
		t.Fatalf("single-shard InjectFaults: %v", err)
	}
	if err := single.InjectFaults(nil, dsmpm2.FaultOptions{}); err != nil {
		t.Fatalf("nil plan must stay a no-op: %v", err)
	}
}
