package dsmpm2_test

import (
	"testing"

	"dsmpm2"
)

func TestFacadeConditionVariables(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Protocol: "li_hudak"})
	flag := sys.MustMalloc(0, 8, nil)
	lock := sys.NewLock(0)
	cond := sys.NewCond(lock)
	var got uint64
	sys.Spawn(1, "waiter", func(th *dsmpm2.Thread) {
		th.Acquire(lock)
		for th.ReadUint64(flag) == 0 {
			th.CondWait(cond)
		}
		got = th.ReadUint64(flag)
		th.Release(lock)
	})
	sys.Spawn(0, "setter", func(th *dsmpm2.Thread) {
		th.Sleep(5 * dsmpm2.Millisecond)
		th.Acquire(lock)
		th.WriteUint64(flag, 9)
		th.CondBroadcast(cond)
		th.Release(lock)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("waiter saw %d, want 9", got)
	}
}

func TestFacadeEntryConsistency(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 3, Protocol: "entry_mw"})
	area := sys.MustMalloc(0, 8, nil)
	lock := sys.NewLock(0)
	sys.BindLock(lock, area, 8)
	for n := 0; n < 3; n++ {
		sys.Spawn(n, "w", func(th *dsmpm2.Thread) {
			for i := 0; i < 5; i++ {
				th.Acquire(lock)
				th.WriteUint64(area, th.ReadUint64(area)+1)
				th.Release(lock)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	sys.Spawn(2, "r", func(th *dsmpm2.Thread) {
		th.Acquire(lock)
		got = th.ReadUint64(area)
		th.Release(lock)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("entry-consistent counter = %d, want 15", got)
	}
}

func TestFacadeSwitchProtocol(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Protocol: "li_hudak"})
	area := sys.MustMalloc(0, 8, nil)
	lock := sys.NewLock(0)
	sys.Spawn(0, "switcher", func(th *dsmpm2.Thread) {
		th.Acquire(lock)
		th.WriteUint64(area, 5)
		th.Release(lock)
		if err := th.SwitchProtocol(area, 8, "hbrc_mw"); err != nil {
			t.Errorf("switch: %v", err)
		}
		if err := th.SwitchProtocol(area, 8, "no_such_proto"); err == nil {
			t.Error("unknown protocol accepted")
		}
		th.Acquire(lock)
		th.WriteUint64(area, th.ReadUint64(area)+1)
		th.Release(lock)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	sys.Spawn(1, "r", func(th *dsmpm2.Thread) {
		th.Acquire(lock)
		got = th.ReadUint64(area)
		th.Release(lock)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("value after switch = %d, want 6", got)
	}
}

func TestFacadeLoadBalancerIntegration(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4})
	var workers []*dsmpm2.Thread
	for i := 0; i < 8; i++ {
		w := sys.Spawn(0, "w", func(th *dsmpm2.Thread) {
			for c := 0; c < 20; c++ {
				th.Compute(dsmpm2.Millisecond)
			}
		})
		w.PM2().SetMigratable(true)
		workers = append(workers, w)
	}
	b := sys.Runtime().StartBalancer(500 * dsmpm2.Microsecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Moves == 0 {
		t.Fatal("balancer idle on an 8:0:0:0 load")
	}
	spread := map[int]bool{}
	for _, w := range workers {
		spread[w.Node()] = true
	}
	if len(spread) < 3 {
		t.Fatalf("workers ended on %d nodes only", len(spread))
	}
}

func TestAppDeterministicReplay(t *testing.T) {
	run := func() (int64, int64) {
		sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 3, Protocol: "hbrc_mw", Seed: 99})
		base := sys.MustMalloc(0, 64, nil)
		lock := sys.NewLock(0)
		for n := 0; n < 3; n++ {
			sys.Spawn(n, "w", func(th *dsmpm2.Thread) {
				for i := 0; i < 15; i++ {
					th.Acquire(lock)
					a := base + dsmpm2.Addr(8*(i%8))
					th.WriteUint64(a, th.ReadUint64(a)+1)
					th.Release(lock)
				}
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		st := sys.Stats()
		return int64(sys.Now()), st.PageSends + st.DiffsSent
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", t1, m1, t2, m2)
	}
}
