// Package freelist provides the one-slice object freelist used by every
// recycling pool in the simulator (network messages, RPC request envelopes,
// event buckets, page frames and page buffers). Centralizing it keeps the
// recycling invariant — popped slots are zeroed so the list never pins dead
// objects — in one place. The simulation kernel is single-threaded (one
// goroutine holds the token at a time), so there is no locking.
package freelist

// List is a LIFO freelist. The zero value is ready to use.
type List[T any] struct {
	free []T
}

// Get pops a recycled object, reporting false when the list is empty (the
// caller then allocates a fresh one). Resetting the object's state is the
// caller's contract: pools that hand out dirty objects document it.
func (l *List[T]) Get() (T, bool) {
	n := len(l.free)
	if n == 0 {
		var zero T
		return zero, false
	}
	v := l.free[n-1]
	var zero T
	l.free[n-1] = zero
	l.free = l.free[:n-1]
	return v, true
}

// Put pushes v for reuse.
func (l *List[T]) Put(v T) {
	l.free = append(l.free, v)
}

// Len reports the number of pooled objects.
func (l *List[T]) Len() int { return len(l.free) }
