package mapcolor

import (
	"testing"
)

func TestAdjacencySymmetric(t *testing.T) {
	if len(adjacency) != len(States) {
		t.Fatalf("adjacency has %d entries for %d states", len(adjacency), len(States))
	}
	for s, nbs := range adjacency {
		for _, nb := range nbs {
			if nb == s {
				t.Fatalf("%s adjacent to itself", States[s])
			}
			found := false
			for _, back := range adjacency[nb] {
				if back == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %s -> %s but not back", States[s], States[nb])
			}
		}
	}
}

func TestTwentyNineStates(t *testing.T) {
	if len(States) != 29 {
		t.Fatalf("have %d states, the paper colors 29", len(States))
	}
}

func TestSerialSolverFindsValidOptimum(t *testing.T) {
	best := SolveSerial()
	// Lower bound: every state costs at least the cheapest color.
	if best < len(States)*ColorCosts[0] {
		t.Fatalf("optimum %d below trivial lower bound", best)
	}
	// Upper bound: every state at the most expensive color.
	if best > len(States)*ColorCosts[NumColors-1] {
		t.Fatalf("optimum %d above trivial upper bound", best)
	}
}

func TestParallelMatchesSerialBothJavaProtocols(t *testing.T) {
	want := SolveSerial()
	for _, proto := range []string{"java_ic", "java_pf"} {
		res, err := Run(Config{Nodes: 4, ThreadsPerNode: 1, Protocol: proto, Seed: 5})
		if err != nil {
			t.Fatalf("[%s] %v", proto, err)
		}
		if res.BestCost != want {
			t.Errorf("[%s] best = %d, want %d", proto, res.BestCost, want)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	// Figure 5: java_pf outperforms java_ic, because every get and put
	// pays a locality check under java_ic while local accesses are free
	// under java_pf.
	pf, err := Run(Config{Nodes: 4, ThreadsPerNode: 1, Protocol: "java_pf", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := Run(Config{Nodes: 4, ThreadsPerNode: 1, Protocol: "java_ic", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Elapsed >= ic.Elapsed {
		t.Fatalf("java_pf (%v) not faster than java_ic (%v); Figure 5 shape broken",
			pf.Elapsed, ic.Elapsed)
	}
	// And the reason: ic paid zero faults but pf fetched via rare faults.
	if ic.Stats.ReadFaults+ic.Stats.WriteFaults != 0 {
		t.Errorf("java_ic took %d page faults, want 0",
			ic.Stats.ReadFaults+ic.Stats.WriteFaults)
	}
	if pf.Stats.ObjFetches != 0 {
		t.Errorf("java_pf did %d inline-check fetches, want 0", pf.Stats.ObjFetches)
	}
}

func TestMapcolorWorksUnderNonObjectProtocol(t *testing.T) {
	// The object API falls back to the paged path, so the same program
	// runs under li_hudak too.
	want := SolveSerial()
	res, err := Run(Config{Nodes: 2, ThreadsPerNode: 1, Protocol: "li_hudak", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != want {
		t.Fatalf("li_hudak mapcolor best = %d, want %d", res.BestCost, want)
	}
}

func TestMapcolorBadConfig(t *testing.T) {
	if _, err := Run(Config{Nodes: 0}); err == nil {
		t.Error("0-node run accepted")
	}
	if _, err := Run(Config{Nodes: 1, Protocol: "nope"}); err == nil {
		t.Error("unknown protocol accepted")
	}
}
