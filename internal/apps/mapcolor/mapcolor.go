// Package mapcolor implements the paper's Figure 5 workload: a multithreaded
// branch-and-bound solution to the minimal-cost map-coloring problem,
// coloring the twenty-nine eastern-most states in the USA using four colors
// with different costs (the Hyperion-compiled Java program of Section 4).
//
// The program is object-intensive in exactly the way the paper describes:
// each thread keeps its working assignment in an object homed on its own
// node and reads neighbour colors through the get primitive on every
// conflict check, while the shared best bound object on node 0 is touched
// rarely. Under java_ic every one of those local get/put operations pays an
// inline locality check; under java_pf they pay nothing and only the rare
// remote accesses fault — which is why java_pf outperforms java_ic in
// Figure 5.
package mapcolor

import (
	"fmt"
	"sort"

	"dsmpm2"
)

// States lists the 29 eastern-most US states.
var States = []string{
	"ME", "NH", "VT", "MA", "RI", "CT", "NY", "NJ", "PA", "DE",
	"MD", "VA", "WV", "NC", "SC", "GA", "FL", "OH", "KY", "TN",
	"AL", "MS", "MI", "IN", "IL", "WI", "AR", "LA", "MO",
}

// adjacency lists state borders by index into States.
var adjacency = [][]int{
	{1},                                  // ME: NH
	{0, 2, 3},                            // NH: ME VT MA
	{1, 3, 6},                            // VT: NH MA NY
	{1, 2, 4, 5, 6},                      // MA: NH VT RI CT NY
	{3, 5},                               // RI: MA CT
	{3, 4, 6},                            // CT: MA RI NY
	{2, 3, 5, 7, 8},                      // NY: VT MA CT NJ PA
	{6, 8, 9},                            // NJ: NY PA DE
	{6, 7, 9, 10, 12, 17},                // PA: NY NJ DE MD WV OH
	{7, 8, 10},                           // DE: NJ PA MD
	{8, 9, 11, 12},                       // MD: PA DE VA WV
	{10, 12, 13, 18, 19},                 // VA: MD WV NC KY TN
	{8, 10, 11, 17, 18},                  // WV: PA MD VA OH KY
	{11, 14, 15, 19},                     // NC: VA SC GA TN
	{13, 15},                             // SC: NC GA
	{13, 14, 16, 19, 20},                 // GA: NC SC FL TN AL
	{15, 20},                             // FL: GA AL
	{8, 12, 18, 22, 23},                  // OH: PA WV KY MI IN
	{11, 12, 17, 19, 23, 24, 28},         // KY: VA WV OH TN IN IL MO
	{11, 13, 15, 18, 20, 21, 24, 26, 28}, // TN: VA NC GA KY AL MS IL AR MO
	{15, 16, 19, 21},                     // AL: GA FL TN MS
	{19, 20, 26, 27},                     // MS: TN AL AR LA
	{17, 23, 25},                         // MI: OH IN WI
	{17, 18, 22, 24},                     // IN: OH KY MI IL
	{18, 19, 23, 25, 26, 28},             // IL: KY TN IN WI AR MO
	{22, 24},                             // WI: MI IL
	{19, 21, 24, 27, 28},                 // AR: TN MS IL LA MO
	{21, 26},                             // LA: MS AR
	{18, 19, 24, 26},                     // MO: KY TN IL AR
}

// NumColors colors are available; using color c for a state costs
// ColorCosts[c], and the objective is the minimal total cost.
const NumColors = 4

// ColorCosts are the per-color costs.
var ColorCosts = [NumColors]int{1, 2, 3, 4}

// unassigned marks an uncolored state in assignment arrays.
const unassigned = -1

// searchOrder returns the state indices ordered by degree descending (most
// constrained first), which shrinks the branch-and-bound tree by orders of
// magnitude without changing the optimum.
func searchOrder() []int {
	order := make([]int, len(States))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(adjacency[order[a]]) > len(adjacency[order[b]])
	})
	return order
}

// lowerBound sums, for every state from position p on, the cheapest color
// that does not conflict with the already-colored neighbours in colors.
// It is admissible: relaxing the constraint between two uncolored states can
// only lower the cost.
func lowerBound(order []int, colors []int, p int) int {
	sum := 0
	for q := p; q < len(order); q++ {
		s := order[q]
		m := ColorCosts[NumColors-1]
		for c := 0; c < NumColors; c++ {
			ok := true
			for _, nb := range adjacency[s] {
				if colors[nb] == c {
					ok = false
					break
				}
			}
			if ok {
				m = ColorCosts[c]
				break
			}
		}
		sum += m
	}
	return sum
}

// SolveSerial computes the optimal coloring cost sequentially (the reference
// for correctness tests).
func SolveSerial() int {
	order := searchOrder()
	colors := make([]int, len(States))
	for i := range colors {
		colors[i] = unassigned
	}
	best := 1 << 30
	var dfs func(p, cost int)
	dfs = func(p, cost int) {
		if p == len(order) {
			if cost < best {
				best = cost
			}
			return
		}
		if cost+lowerBound(order, colors, p) >= best {
			return
		}
		s := order[p]
		for c := 0; c < NumColors; c++ {
			if hasConflict(colors, s, c) {
				continue
			}
			colors[s] = c
			dfs(p+1, cost+ColorCosts[c])
			colors[s] = unassigned
		}
	}
	dfs(0, 0)
	return best
}

// hasConflict reports whether giving state s color c clashes with a colored
// neighbour.
func hasConflict(colors []int, s, c int) bool {
	for _, nb := range adjacency[s] {
		if colors[nb] == c {
			return true
		}
	}
	return false
}

// Config parameterizes a run.
type Config struct {
	// Nodes is the cluster size (the paper uses a four-node SCI cluster).
	Nodes int
	// ThreadsPerNode sets the application thread count per node.
	ThreadsPerNode int
	// Network selects the interconnect (default SISCI/SCI, as in Fig. 5).
	Network *dsmpm2.NetworkProfile
	// Protocol is "java_ic" or "java_pf" (any protocol works; these two
	// are the Figure 5 pair).
	Protocol string
	// Seed drives the simulation.
	Seed int64
	// ExpandCost is the CPU cost charged per assignment step.
	ExpandCost dsmpm2.Duration
	// Trace enables post-mortem span recording.
	Trace bool
}

// Result reports a run's outcome.
type Result struct {
	BestCost int
	Elapsed  dsmpm2.Time
	Stats    dsmpm2.Stats
	System   *dsmpm2.System
}

// Run executes the distributed branch and bound and returns the result.
func Run(cfg Config) (Result, error) {
	if cfg.Nodes < 1 {
		return Result{}, fmt.Errorf("mapcolor: need at least 1 node")
	}
	if cfg.ThreadsPerNode < 1 {
		cfg.ThreadsPerNode = 1
	}
	if cfg.Network == nil {
		cfg.Network = dsmpm2.SISCISCI
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "java_pf"
	}
	if cfg.ExpandCost == 0 {
		cfg.ExpandCost = 1 * dsmpm2.Microsecond
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:    cfg.Nodes,
		Network:  cfg.Network,
		Protocol: cfg.Protocol,
		Seed:     cfg.Seed,
		Trace:    cfg.Trace,
	})
	if err != nil {
		return Result{}, err
	}
	pid, ok := sys.Protocol(cfg.Protocol)
	if !ok {
		return Result{}, fmt.Errorf("mapcolor: unknown protocol %q", cfg.Protocol)
	}
	order := searchOrder()
	n := len(States)

	// Shared best-bound object on node 0, guarded by a monitor.
	bound := sys.MustNewObject(0, 1, pid)
	monitor := sys.NewLock(0)
	sys.Spawn(0, "init", func(t *dsmpm2.Thread) { t.PutField(bound, 0, 1<<30) })
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	// Work units: the color choices of the first two states in search
	// order, distributed round-robin over all threads.
	type unit struct{ c0, c1 int }
	var units []unit
	for c0 := 0; c0 < NumColors; c0++ {
		for c1 := 0; c1 < NumColors; c1++ {
			units = append(units, unit{c0, c1})
		}
	}

	nthreads := cfg.Nodes * cfg.ThreadsPerNode
	for ti := 0; ti < nthreads; ti++ {
		ti := ti
		node := ti % cfg.Nodes
		// Each thread's working assignment lives in an object homed on
		// its own node: "local objects are intensively used".
		work := sys.MustNewObject(node, n, pid)
		sys.Spawn(node, fmt.Sprintf("color%d", ti), func(t *dsmpm2.Thread) {
			// The thread keeps a private mirror of its assignment for
			// the bound computation (a Hyperion-style optimization:
			// bound arithmetic needs no coherence), while assignments
			// and conflict checks go through the object primitives.
			colors := make([]int, n)
			for i := 0; i < n; i++ {
				colors[i] = unassigned
				t.PutField(work, i, ^uint64(0))
			}
			assign := func(s, c int) {
				colors[s] = c
				t.PutField(work, s, uint64(c))
			}
			unassign := func(s int) {
				colors[s] = unassigned
				t.PutField(work, s, ^uint64(0))
			}
			conflictShared := func(s, c int) bool {
				for _, nb := range adjacency[s] {
					if t.GetField(work, nb) == uint64(c) {
						return true
					}
				}
				return false
			}
			cachedBound := 1 << 30
			sinceCheck := 0
			pending := 0
			flush := func() {
				if pending > 0 {
					t.Compute(dsmpm2.Duration(pending) * cfg.ExpandCost)
					pending = 0
				}
			}
			var dfs func(p, cost int)
			dfs = func(p, cost int) {
				pending++
				if pending >= 32 {
					flush()
				}
				if sinceCheck++; sinceCheck >= 64 {
					sinceCheck = 0
					flush()
					cachedBound = int(t.GetField(bound, 0))
				}
				if p == n {
					flush()
					t.Acquire(monitor)
					if uint64(cost) < t.GetField(bound, 0) {
						t.PutField(bound, 0, uint64(cost))
					}
					cachedBound = int(t.GetField(bound, 0))
					t.Release(monitor)
					return
				}
				if cost+lowerBound(order, colors, p) >= cachedBound {
					return
				}
				s := order[p]
				for c := 0; c < NumColors; c++ {
					if conflictShared(s, c) {
						continue
					}
					assign(s, c)
					dfs(p+1, cost+ColorCosts[c])
					unassign(s)
				}
			}
			for ui := ti; ui < len(units); ui += nthreads {
				u := units[ui]
				s0, s1 := order[0], order[1]
				if neighbours(s0, s1) && u.c0 == u.c1 {
					continue
				}
				assign(s0, u.c0)
				assign(s1, u.c1)
				dfs(2, ColorCosts[u.c0]+ColorCosts[u.c1])
				unassign(s1)
				unassign(s0)
			}
			flush()
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	res := Result{Elapsed: sys.Now(), Stats: sys.Stats(), System: sys}
	sys.Spawn(0, "collect", func(t *dsmpm2.Thread) {
		res.BestCost = int(t.GetField(bound, 0))
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// neighbours reports whether states a and b border each other.
func neighbours(a, b int) bool {
	for _, nb := range adjacency[a] {
		if nb == b {
			return true
		}
	}
	return false
}
