// Package tsp implements the paper's Figure 4 workload: a branch-and-bound
// Traveling Salesman solver for cities placed at random inter-city
// distances, run with one application thread per node. The only intensively
// accessed shared variable is the current shortest path (the bound), updates
// to which are lock protected; bound reads at prune points go through the
// DSM read primitive.
//
// This access pattern is exactly what separates the protocols in Figure 4:
// under the page-based protocols the bound page is replicated to the readers
// and invalidated on each improvement, while under migrate_thread every
// thread touching the bound migrates to the node holding it — and stays
// there, overloading that node's CPU.
package tsp

import (
	"fmt"
	"math/rand"

	"dsmpm2"
)

// Config parameterizes a TSP run.
type Config struct {
	// Cities is the problem size (the paper uses 14; tests use fewer).
	Cities int
	// Seed drives city distances and the simulation.
	Seed int64
	// Nodes is the cluster size; one application thread runs per node.
	Nodes int
	// Network selects the interconnect (default BIP/Myrinet, as in Fig. 4).
	Network *dsmpm2.NetworkProfile
	// Protocol is the consistency protocol under test.
	Protocol string
	// ExpandCost is the CPU cost charged per search-tree node expansion.
	ExpandCost dsmpm2.Duration
	// Trace enables post-mortem span recording.
	Trace bool
	// Shards is forwarded to dsmpm2.Config.Shards: 0 and 1 are the
	// single-loop engine (bit-identical traces), >1 is rejected by the DSM
	// layer (sharded execution is a pm2/bench kernel feature).
	Shards int
}

// Result reports a run's outcome.
type Result struct {
	BestCost   int
	Elapsed    dsmpm2.Time
	Expansions int64
	Stats      dsmpm2.Stats
	System     *dsmpm2.System
}

// Distances builds the symmetric random distance matrix for a seed.
func Distances(cities int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	d := make([][]int, cities)
	for i := range d {
		d[i] = make([]int, cities)
	}
	for i := 0; i < cities; i++ {
		for j := i + 1; j < cities; j++ {
			w := 1 + rng.Intn(99)
			d[i][j], d[j][i] = w, w
		}
	}
	return d
}

// SolveSerial computes the optimal tour cost sequentially (the reference for
// correctness tests).
func SolveSerial(dist [][]int) int {
	n := len(dist)
	best := 1 << 30
	visited := make([]bool, n)
	visited[0] = true
	minOut := minOutgoing(dist)
	var dfs func(city, depth, cost int)
	dfs = func(city, depth, cost int) {
		if cost+lowerBound(visited, minOut) >= best {
			return
		}
		if depth == n {
			total := cost + dist[city][0]
			if total < best {
				best = total
			}
			return
		}
		for next := 1; next < n; next++ {
			if visited[next] {
				continue
			}
			visited[next] = true
			dfs(next, depth+1, cost+dist[city][next])
			visited[next] = false
		}
	}
	dfs(0, 1, 0)
	return best
}

// minOutgoing returns each city's cheapest outgoing edge, used as an
// admissible lower bound term.
func minOutgoing(dist [][]int) []int {
	n := len(dist)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		m := 1 << 30
		for j := 0; j < n; j++ {
			if i != j && dist[i][j] < m {
				m = dist[i][j]
			}
		}
		out[i] = m
	}
	return out
}

// lowerBound sums the cheapest outgoing edges of the unvisited cities.
func lowerBound(visited []bool, minOut []int) int {
	lb := 0
	for c, v := range visited {
		if !v {
			lb += minOut[c]
		}
	}
	return lb
}

// computeBatch is how many expansions are charged to the CPU in one go, to
// bound simulation event counts without changing total work.
const computeBatch = 16

// Run executes the distributed branch-and-bound solve and returns the
// result. The returned best cost always equals the serial optimum — every
// protocol must preserve correctness; only the runtime differs.
func Run(cfg Config) (Result, error) {
	if cfg.Cities < 3 {
		return Result{}, fmt.Errorf("tsp: need at least 3 cities")
	}
	if cfg.Nodes < 1 {
		return Result{}, fmt.Errorf("tsp: need at least 1 node")
	}
	if cfg.ExpandCost == 0 {
		cfg.ExpandCost = 2 * dsmpm2.Microsecond
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:    cfg.Nodes,
		Network:  cfg.Network,
		Protocol: cfg.Protocol,
		Seed:     cfg.Seed,
		Trace:    cfg.Trace,
		Shards:   cfg.Shards,
	})
	if err != nil {
		return Result{}, err
	}
	dist := Distances(cfg.Cities, cfg.Seed)
	minOut := minOutgoing(dist)
	n := cfg.Cities

	// The shared bound lives on node 0; updates are lock protected.
	boundAddr := sys.MustMalloc(0, 8, nil)
	lock := sys.NewLock(0)
	const inf = 1 << 30
	// Initialize from a setup thread on the home node.
	sys.Spawn(0, "init", func(t *dsmpm2.Thread) { t.WriteUint64(boundAddr, inf) })
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	var totalExpansions int64
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("tsp%d", node), func(t *dsmpm2.Thread) {
			visited := make([]bool, n)
			visited[0] = true
			pendingCompute := 0
			expansions := int64(0)
			flush := func() {
				if pendingCompute > 0 {
					t.Compute(dsmpm2.Duration(pendingCompute) * cfg.ExpandCost)
					pendingCompute = 0
				}
			}
			readBound := func() int {
				flush()
				return int(t.ReadUint64(boundAddr))
			}
			var dfs func(city, depth, cost int)
			dfs = func(city, depth, cost int) {
				expansions++
				pendingCompute++
				if pendingCompute >= computeBatch {
					flush()
				}
				if cost+lowerBound(visited, minOut) >= readBound() {
					return
				}
				if depth == n {
					total := cost + dist[city][0]
					flush()
					t.Acquire(lock)
					if uint64(total) < t.ReadUint64(boundAddr) {
						t.WriteUint64(boundAddr, uint64(total))
					}
					t.Release(lock)
					return
				}
				for next := 1; next < n; next++ {
					if visited[next] {
						continue
					}
					visited[next] = true
					dfs(next, depth+1, cost+dist[city][next])
					visited[next] = false
				}
			}
			// Static first-branch distribution, round-robin over nodes.
			for first := 1; first < n; first++ {
				if (first-1)%cfg.Nodes != node {
					continue
				}
				visited[first] = true
				dfs(first, 2, dist[0][first])
				visited[first] = false
			}
			flush()
			totalExpansions += expansions
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	res := Result{
		Elapsed:    sys.Now(),
		Expansions: totalExpansions,
		Stats:      sys.Stats(),
		System:     sys,
	}
	sys.Spawn(0, "collect", func(t *dsmpm2.Thread) {
		res.BestCost = int(t.ReadUint64(boundAddr))
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}
