package tsp

import (
	"testing"

	"dsmpm2"
)

func TestSerialSolverSane(t *testing.T) {
	// Triangle with known optimum.
	dist := [][]int{{0, 1, 2}, {1, 0, 3}, {2, 3, 0}}
	if got := SolveSerial(dist); got != 6 {
		t.Fatalf("triangle tour = %d, want 6", got)
	}
}

func TestDistancesSymmetricDeterministic(t *testing.T) {
	d1 := Distances(8, 5)
	d2 := Distances(8, 5)
	for i := range d1 {
		for j := range d1[i] {
			if d1[i][j] != d2[i][j] {
				t.Fatal("distances not deterministic")
			}
			if d1[i][j] != d1[j][i] {
				t.Fatal("distances not symmetric")
			}
			if i != j && d1[i][j] <= 0 {
				t.Fatal("non-positive distance")
			}
		}
	}
}

func TestParallelMatchesSerialAllProtocols(t *testing.T) {
	const cities, seed = 9, 11
	want := SolveSerial(Distances(cities, seed))
	for _, proto := range []string{"li_hudak", "migrate_thread", "erc_sw", "hbrc_mw", "hybrid"} {
		res, err := Run(Config{
			Cities:   cities,
			Seed:     seed,
			Nodes:    4,
			Protocol: proto,
		})
		if err != nil {
			t.Fatalf("[%s] %v", proto, err)
		}
		if res.BestCost != want {
			t.Errorf("[%s] best = %d, want %d", proto, res.BestCost, want)
		}
		if res.Expansions == 0 {
			t.Errorf("[%s] no expansions recorded", proto)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	// Figure 4: "all protocols based on page migration perform better than
	// the protocol using thread migration", because the computing threads
	// pile up on the node holding the shared bound.
	const cities, seed, nodes = 9, 11, 4
	times := map[string]dsmpm2.Time{}
	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw", "migrate_thread"} {
		res, err := Run(Config{Cities: cities, Seed: seed, Nodes: nodes, Protocol: proto})
		if err != nil {
			t.Fatalf("[%s] %v", proto, err)
		}
		times[proto] = res.Elapsed
	}
	for _, pageProto := range []string{"li_hudak", "erc_sw", "hbrc_mw"} {
		if times[pageProto] >= times["migrate_thread"] {
			t.Errorf("%s (%v) not faster than migrate_thread (%v); Figure 4 shape broken",
				pageProto, times[pageProto], times["migrate_thread"])
		}
	}
}

func TestMigrateThreadOverloadsBoundOwner(t *testing.T) {
	res, err := Run(Config{Cities: 8, Seed: 3, Nodes: 4, Protocol: "migrate_thread"})
	if err != nil {
		t.Fatal(err)
	}
	rt := res.System.Runtime()
	if rt.Node(0).MigrationsIn == 0 {
		t.Fatal("no threads migrated to the bound's owner node")
	}
}

func TestTSPBadConfig(t *testing.T) {
	if _, err := Run(Config{Cities: 2, Nodes: 1}); err == nil {
		t.Error("2-city run accepted")
	}
	if _, err := Run(Config{Cities: 5, Nodes: 0}); err == nil {
		t.Error("0-node run accepted")
	}
}
