// Package matmul implements a blocked matrix-multiply kernel in the SPLASH-2
// style (Section 5's planned evaluation class): C = A x B with A and B
// shared read-only (replicated on demand by the protocol) and C's row blocks
// homed on the nodes that compute them. It exercises the read-replication
// path of the protocols with no write sharing at all.
package matmul

import (
	"fmt"
	"math"
	"math/rand"

	"dsmpm2"
)

// Config parameterizes a run.
type Config struct {
	// N is the matrix dimension.
	N int
	// Nodes is the cluster size; C's rows are block-partitioned.
	Nodes int
	// Network selects the interconnect; Topology overrides it per-link.
	Network  *dsmpm2.NetworkProfile
	Topology dsmpm2.Topology
	// Protocol is the consistency protocol under test.
	Protocol string
	// Seed drives matrix contents and the simulation.
	Seed int64
	// MACCost is the CPU cost charged per multiply-accumulate.
	MACCost dsmpm2.Duration
	// Unbatched selects the one-envelope-per-operation communication path
	// (A/B baseline for the comm experiment).
	Unbatched bool
	// MisplaceHomes homes C's rows on node 0 instead of on their computing
	// nodes (the adapt experiment's bad static placement). With no barriers
	// in the kernel the profiler never folds an epoch, so this doubles as
	// the adapt experiment's no-op control.
	MisplaceHomes bool
	// Shards is forwarded to dsmpm2.Config.Shards: 0 and 1 are the
	// single-loop engine (bit-identical traces), >1 is rejected by the DSM
	// layer (sharded execution is a pm2/bench kernel feature).
	Shards int
	// AdaptiveHomes enables the access-pattern profiler and dynamic home
	// migration.
	AdaptiveHomes bool
}

// Result reports a run's outcome.
type Result struct {
	Checksum float64
	Elapsed  dsmpm2.Time
	Stats    dsmpm2.Stats
	System   *dsmpm2.System
}

// Matrices builds the deterministic random input matrices for a seed.
func Matrices(n int, seed int64) (a, b [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	a = make([][]float64, n)
	b = make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = float64(rng.Intn(10))
			b[i][j] = float64(rng.Intn(10))
		}
	}
	return a, b
}

// SolveSerial computes the reference checksum of C = A x B.
func SolveSerial(n int, seed int64) float64 {
	a, b := Matrices(n, seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := 0.0
			for k := 0; k < n; k++ {
				c += a[i][k] * b[k][j]
			}
			sum += c
		}
	}
	return sum
}

// Run executes the distributed multiply and returns the result.
func Run(cfg Config) (Result, error) {
	if cfg.N < 1 || cfg.Nodes < 1 {
		return Result{}, fmt.Errorf("matmul: invalid config %+v", cfg)
	}
	if cfg.MACCost == 0 {
		cfg.MACCost = 10 // 0.01us per multiply-accumulate
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:         cfg.Nodes,
		Network:       cfg.Network,
		Topology:      cfg.Topology,
		Protocol:      cfg.Protocol,
		Seed:          cfg.Seed,
		UnbatchedComm: cfg.Unbatched,
		AdaptiveHomes: cfg.AdaptiveHomes,
		Shards:        cfg.Shards,
	})
	if err != nil {
		return Result{}, err
	}
	n := cfg.N
	rowBytes := n * 8

	// A and B are homed on node 0 and replicated to readers on demand; C's
	// rows are homed on their computing nodes (or misplaced onto node 0).
	var cAttr *dsmpm2.Attr
	if cfg.MisplaceHomes {
		cAttr = &dsmpm2.Attr{Protocol: -1, Home: 0}
	}
	aRows := make([]dsmpm2.Addr, n)
	bRows := make([]dsmpm2.Addr, n)
	cRows := make([]dsmpm2.Addr, n)
	ownerOf := func(row int) int { return row * cfg.Nodes / n }
	for i := 0; i < n; i++ {
		aRows[i] = sys.MustMalloc(0, rowBytes, nil)
		bRows[i] = sys.MustMalloc(0, rowBytes, nil)
		cRows[i] = sys.MustMalloc(ownerOf(i), rowBytes, cAttr)
	}
	av, bv := Matrices(n, cfg.Seed)
	sys.Spawn(0, "init", func(t *dsmpm2.Thread) {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				t.WriteUint64(aRows[i]+dsmpm2.Addr(8*j), math.Float64bits(av[i][j]))
				t.WriteUint64(bRows[i]+dsmpm2.Addr(8*j), math.Float64bits(bv[i][j]))
			}
		}
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("mm%d", node), func(t *dsmpm2.Thread) {
			for i := 0; i < n; i++ {
				if ownerOf(i) != node {
					continue
				}
				for j := 0; j < n; j++ {
					c := 0.0
					for k := 0; k < n; k++ {
						a := math.Float64frombits(t.ReadUint64(aRows[i] + dsmpm2.Addr(8*k)))
						b := math.Float64frombits(t.ReadUint64(bRows[k] + dsmpm2.Addr(8*j)))
						c += a * b
					}
					t.WriteUint64(cRows[i]+dsmpm2.Addr(8*j), math.Float64bits(c))
				}
				t.Compute(dsmpm2.Duration(n*n) * cfg.MACCost)
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	res := Result{Elapsed: sys.Now(), Stats: sys.Stats(), System: sys}
	sys.Spawn(0, "checksum", func(t *dsmpm2.Thread) {
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum += math.Float64frombits(t.ReadUint64(cRows[i] + dsmpm2.Addr(8*j)))
			}
		}
		res.Checksum = sum
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}
