package matmul

import (
	"math"
	"testing"
)

func TestSerialDeterministic(t *testing.T) {
	if SolveSerial(6, 3) != SolveSerial(6, 3) {
		t.Fatal("serial checksum not deterministic")
	}
	if SolveSerial(6, 3) == SolveSerial(6, 4) {
		t.Fatal("different seeds gave identical checksums")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	const n, seed = 8, 3
	want := SolveSerial(n, seed)
	for _, proto := range []string{"li_hudak", "hbrc_mw"} {
		res, err := Run(Config{N: n, Nodes: 2, Protocol: proto, Seed: seed})
		if err != nil {
			t.Fatalf("[%s] %v", proto, err)
		}
		if math.Abs(res.Checksum-want) > 1e-9 {
			t.Errorf("[%s] checksum = %v, want %v", proto, res.Checksum, want)
		}
	}
}

func TestReadSharingReplicatesNotPingPongs(t *testing.T) {
	// A and B are read-only: after the initial replication, no
	// invalidations should occur under li_hudak.
	res, err := Run(Config{N: 8, Nodes: 4, Protocol: "li_hudak", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Invalidations != 0 {
		t.Fatalf("read-only workload caused %d invalidations", res.Stats.Invalidations)
	}
}

func TestMatmulBadConfig(t *testing.T) {
	if _, err := Run(Config{N: 0, Nodes: 1}); err == nil {
		t.Error("empty matrix accepted")
	}
}
