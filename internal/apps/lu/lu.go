// Package lu implements a blocked, unpivoted LU decomposition kernel in the
// SPLASH-2 style (the benchmark family Section 5 names for the paper's
// planned evaluation). Its sharing pattern differs from the other kernels:
// at every elimination step k, the pivot row k — owned by one node — is
// read by every node still holding rows below k, so each step broadcasts a
// freshly written row through the DSM, and the set of readers shrinks as
// the factorization proceeds. Barriers separate the steps.
package lu

import (
	"fmt"
	"math"
	"math/rand"

	"dsmpm2"
)

// Config parameterizes a run.
type Config struct {
	// N is the matrix dimension.
	N int
	// Nodes is the cluster size; rows are dealt round-robin so every node
	// participates until the end of the factorization.
	Nodes int
	// Network selects the interconnect.
	Network *dsmpm2.NetworkProfile
	// Protocol is the consistency protocol under test.
	Protocol string
	// Seed drives matrix contents and the simulation.
	Seed int64
	// OpCost is the CPU cost charged per row update.
	OpCost dsmpm2.Duration
	// Unbatched selects the one-envelope-per-operation communication path
	// (A/B baseline for the comm experiment).
	Unbatched bool
	// MisplaceHomes homes every matrix row on node 0 instead of on its
	// round-robin owner (the adapt experiment's bad static placement).
	MisplaceHomes bool
	// AdaptiveHomes enables the access-pattern profiler and dynamic home
	// migration.
	AdaptiveHomes bool
}

// Result reports a run's outcome.
type Result struct {
	Checksum float64
	Elapsed  dsmpm2.Time
	Stats    dsmpm2.Stats
	System   *dsmpm2.System
}

// Matrix builds the deterministic random input matrix for a seed. It is
// diagonally dominant so the unpivoted factorization stays stable.
func Matrix(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = float64(rng.Intn(9) + 1)
		}
		a[i][i] += float64(10 * n) // dominance
	}
	return a
}

// SolveSerial factorizes the matrix in place (plain Go) and returns the
// checksum of the combined LU factors, as the reference for tests.
func SolveSerial(n int, seed int64) float64 {
	a := Matrix(n, seed)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			m := a[i][k] / a[k][k]
			a[i][k] = m
			for j := k + 1; j < n; j++ {
				a[i][j] -= m * a[k][j]
			}
		}
	}
	return checksum(a)
}

func checksum(a [][]float64) float64 {
	sum := 0.0
	for i := range a {
		for j := range a[i] {
			sum += a[i][j] * float64(1+((i*31+j)%7))
		}
	}
	return sum
}

// Run executes the distributed factorization and returns the result.
func Run(cfg Config) (Result, error) {
	if cfg.N < 2 || cfg.Nodes < 1 {
		return Result{}, fmt.Errorf("lu: invalid config %+v", cfg)
	}
	if cfg.OpCost == 0 {
		cfg.OpCost = 500 * dsmpm2.Nanosecond
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:         cfg.Nodes,
		Network:       cfg.Network,
		Protocol:      cfg.Protocol,
		Seed:          cfg.Seed,
		UnbatchedComm: cfg.Unbatched,
		AdaptiveHomes: cfg.AdaptiveHomes,
	})
	if err != nil {
		return Result{}, err
	}
	n := cfg.N
	rowBytes := n * 8
	ownerOf := func(row int) int { return row % cfg.Nodes } // round-robin deal

	var attr *dsmpm2.Attr
	if cfg.MisplaceHomes {
		attr = &dsmpm2.Attr{Protocol: -1, Home: 0}
	}
	rows := make([]dsmpm2.Addr, n)
	for i := 0; i < n; i++ {
		rows[i] = sys.MustMalloc(ownerOf(i), rowBytes, attr)
	}
	a := Matrix(n, cfg.Seed)
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("init%d", node), func(t *dsmpm2.Thread) {
			for i := 0; i < n; i++ {
				if ownerOf(i) != node {
					continue
				}
				for j := 0; j < n; j++ {
					t.WriteUint64(rows[i]+dsmpm2.Addr(8*j), math.Float64bits(a[i][j]))
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	bar := sys.NewBarrier(cfg.Nodes)
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("lu%d", node), func(t *dsmpm2.Thread) {
			readRow := func(addr dsmpm2.Addr, j int) float64 {
				return math.Float64frombits(t.ReadUint64(addr + dsmpm2.Addr(8*j)))
			}
			writeRow := func(addr dsmpm2.Addr, j int, v float64) {
				t.WriteUint64(addr+dsmpm2.Addr(8*j), math.Float64bits(v))
			}
			for k := 0; k < n; k++ {
				// Every node reads the pivot row (a broadcast through
				// the DSM), then updates its own rows below k.
				pivot := rows[k]
				pkk := readRow(pivot, k)
				for i := k + 1; i < n; i++ {
					if ownerOf(i) != node {
						continue
					}
					m := readRow(rows[i], k) / pkk
					writeRow(rows[i], k, m)
					for j := k + 1; j < n; j++ {
						writeRow(rows[i], j, readRow(rows[i], j)-m*readRow(pivot, j))
					}
					t.Compute(dsmpm2.Duration(n-k) * cfg.OpCost)
				}
				t.Barrier(bar)
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	res := Result{Elapsed: sys.Now(), Stats: sys.Stats(), System: sys}
	sys.Spawn(0, "checksum", func(t *dsmpm2.Thread) {
		out := make([][]float64, n)
		for i := 0; i < n; i++ {
			out[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				out[i][j] = math.Float64frombits(t.ReadUint64(rows[i] + dsmpm2.Addr(8*j)))
			}
		}
		res.Checksum = checksum(out)
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}
