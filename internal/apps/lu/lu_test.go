package lu

import (
	"math"
	"testing"
)

func TestSerialStable(t *testing.T) {
	c1 := SolveSerial(8, 3)
	c2 := SolveSerial(8, 3)
	if c1 != c2 {
		t.Fatal("serial checksum not deterministic")
	}
	if math.IsNaN(c1) || math.IsInf(c1, 0) {
		t.Fatalf("factorization unstable: %v", c1)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	const n, seed = 8, 3
	want := SolveSerial(n, seed)
	for _, proto := range []string{"li_hudak", "hbrc_mw", "erc_sw"} {
		res, err := Run(Config{N: n, Nodes: 2, Protocol: proto, Seed: seed})
		if err != nil {
			t.Fatalf("[%s] %v", proto, err)
		}
		if math.Abs(res.Checksum-want) > 1e-6*math.Abs(want) {
			t.Errorf("[%s] checksum = %v, want %v", proto, res.Checksum, want)
		}
	}
}

func TestParallelFourNodes(t *testing.T) {
	const n, seed = 12, 7
	want := SolveSerial(n, seed)
	res, err := Run(Config{N: n, Nodes: 4, Protocol: "hbrc_mw", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Checksum-want) > 1e-6*math.Abs(want) {
		t.Fatalf("checksum = %v, want %v", res.Checksum, want)
	}
}

func TestPivotBroadcastGeneratesSharing(t *testing.T) {
	res, err := Run(Config{N: 8, Nodes: 4, Protocol: "li_hudak", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every elimination step broadcasts a pivot row to the other nodes:
	// there must be substantially more page transfers than pages.
	if res.Stats.PageSends < int64(8) {
		t.Fatalf("page sends = %d; pivot broadcast pattern missing", res.Stats.PageSends)
	}
}

func TestLUBadConfig(t *testing.T) {
	if _, err := Run(Config{N: 1, Nodes: 1}); err == nil {
		t.Error("1x1 factorization accepted")
	}
	if _, err := Run(Config{N: 8, Nodes: 0}); err == nil {
		t.Error("0-node run accepted")
	}
}
