// Package kvstore implements a serving-scale key/value store over DSM-PM2:
// a hash table sharded over isomalloc pages (one bucket per page, guarded by
// a per-bucket entry-consistency lock), driven by an open-loop deterministic
// traffic generator — seeded Poisson arrivals, Zipf-skewed keys, a
// configurable read/write mix, and time-varying hot-key churn phases.
//
// Unlike the barrier-phased SPLASH-style kernels (jacobi, lu, matmul), the
// interesting output here is not a checksum but the latency *distribution*:
// every operation's completion time relative to its scheduled arrival is
// recorded into the core's fixed-grid histograms (System.OpHist), so p50/p95
// and p99 per operation kind are deterministic, snapshot-safe, and
// bit-identical across replays of one seed. The generator is open-loop on
// purpose: arrivals do not wait for completions, so a placement that slows
// the servers shows up as queueing delay in the tail — exactly the signal
// the static-vs-adaptive home-placement experiment (`dsmbench -exp serve`)
// is after.
package kvstore

import (
	"fmt"
	"math/rand"
	"sort"

	"dsmpm2"
	"dsmpm2/internal/sim"
)

// slotsPerBucket is how many 8-byte values fit in one bucket page.
const slotsPerBucket = dsmpm2.PageSize / 8

// Config parameterizes a run.
type Config struct {
	// Nodes is the cluster size; bucket b is served by node b % Nodes.
	Nodes int
	// Buckets is the hash-table width: one shared page (and one
	// entry-consistency lock) per bucket. Key k lives in bucket
	// k % Buckets, slot k / Buckets.
	Buckets int
	// Keys is the key-space size; at most Buckets * 512 (one page of
	// 8-byte slots per bucket).
	Keys int
	// Requests is the total operation count of the trace.
	Requests int
	// Epochs divides the trace into barrier-separated segments: after each
	// segment all servers and the generator meet at a cluster-wide
	// barrier, which is where the profiler folds its evidence and (with
	// AdaptiveHomes) re-homes pages.
	Epochs int
	// Phases is the number of hot-key churn phases: each phase remaps the
	// Zipf ranks onto keys with a fresh seeded permutation, so the hot set
	// moves mid-run and placement must adapt.
	Phases int
	// ReadFraction is the probability a request is a get (default 0.9).
	ReadFraction float64
	// ZipfS is the Zipf skew parameter (> 1; default 1.3).
	ZipfS float64
	// MeanInterarrival is the mean of the exponential inter-arrival time
	// (open-loop Poisson process). The default 100us puts a misplaced
	// static placement at the queueing knee (remote serves cost ~200us)
	// while locally-homed buckets (~20us) stay comfortable.
	MeanInterarrival dsmpm2.Duration
	// ServeCost is the CPU cost charged per served operation.
	ServeCost dsmpm2.Duration
	// Deadline, when non-zero, drops requests that are already older than
	// this when dequeued: their queue wait is recorded under the "drop"
	// kind instead of being served. The serial checksum oracle assumes
	// Deadline == 0 (every put applied).
	Deadline dsmpm2.Duration
	// IdleTick is the server's receive timeout while idle (default 200us);
	// it bounds how long a server sleeps between polls and exercises the
	// timed-wait path at volume.
	IdleTick dsmpm2.Duration
	// TopN is how many hot keys to report (default 5).
	TopN int

	// Network selects the interconnect; Topology overrides it per-link.
	Network  *dsmpm2.NetworkProfile
	Topology dsmpm2.Topology
	// Protocol is the consistency protocol (default entry_mw — the store
	// is built around per-bucket lock binding).
	Protocol string
	// Seed drives both the trace generator and the simulation.
	Seed int64
	// Unbatched selects the one-envelope-per-operation communication path.
	Unbatched bool
	// MisplaceHomes homes every bucket page on node 0 instead of on its
	// serving node — the deliberately bad static placement the serve
	// experiment starts from.
	MisplaceHomes bool
	// AdaptiveHomes enables the access-pattern profiler and dynamic home
	// migration: misplaced buckets move onto their servers at the epoch
	// barriers.
	AdaptiveHomes bool
	// Shards is forwarded to dsmpm2.Config.Shards.
	Shards int
}

// withDefaults returns cfg with zero fields defaulted and validates it.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	if cfg.Keys == 0 {
		cfg.Keys = 512
	}
	if cfg.Requests == 0 {
		cfg.Requests = 1200
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 8
	}
	if cfg.Phases == 0 {
		cfg.Phases = 2
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.9
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.3
	}
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 100 * dsmpm2.Microsecond
	}
	if cfg.ServeCost == 0 {
		cfg.ServeCost = 5 * dsmpm2.Microsecond
	}
	if cfg.IdleTick == 0 {
		cfg.IdleTick = 200 * dsmpm2.Microsecond
	}
	if cfg.TopN == 0 {
		cfg.TopN = 5
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "entry_mw"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	switch {
	case cfg.Nodes < 1:
		return cfg, fmt.Errorf("kvstore: invalid node count %d", cfg.Nodes)
	case cfg.Buckets < 1:
		return cfg, fmt.Errorf("kvstore: invalid bucket count %d", cfg.Buckets)
	case cfg.Keys < 1 || cfg.Keys > cfg.Buckets*slotsPerBucket:
		return cfg, fmt.Errorf("kvstore: key space %d outside [1, %d] for %d buckets",
			cfg.Keys, cfg.Buckets*slotsPerBucket, cfg.Buckets)
	case cfg.Requests < 1:
		return cfg, fmt.Errorf("kvstore: invalid request count %d", cfg.Requests)
	case cfg.Epochs < 1 || cfg.Phases < 1:
		return cfg, fmt.Errorf("kvstore: epochs (%d) and phases (%d) must be positive",
			cfg.Epochs, cfg.Phases)
	case cfg.ZipfS <= 1:
		return cfg, fmt.Errorf("kvstore: Zipf skew %v must exceed 1", cfg.ZipfS)
	case cfg.ReadFraction < 0 || cfg.ReadFraction > 1:
		return cfg, fmt.Errorf("kvstore: read fraction %v outside [0, 1]", cfg.ReadFraction)
	}
	return cfg, nil
}

// request is one traced operation. Offsets are relative to the start of the
// serving run; the generator converts them to absolute virtual times.
type request struct {
	off dsmpm2.Duration // scheduled arrival, offset from run start
	key int
	put bool
	val uint64
	at  dsmpm2.Time // absolute arrival, stamped by the generator
}

// epochMark tells a server to meet the cluster at the epoch barrier.
type epochMark struct{}

// stopMark tells a server the trace is over.
type stopMark struct{}

// trace is the fully precomputed workload: requests in arrival order plus
// the per-key request tally (the hot-key report's input). It is a pure
// function of the Config, computed in plain Go before the simulation starts,
// so every run of one seed serves the identical operation sequence.
type trace struct {
	reqs   []request
	perKey []int64
}

// genTrace builds the trace: Poisson arrivals (exponential inter-arrival
// gaps), Zipf-ranked keys remapped through a fresh permutation each churn
// phase, and a seeded read/write mix.
func genTrace(cfg Config) trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	tr := trace{
		reqs:   make([]request, 0, cfg.Requests),
		perKey: make([]int64, cfg.Keys),
	}
	perm := rng.Perm(cfg.Keys)
	phase := 0
	var at dsmpm2.Duration
	for i := 0; i < cfg.Requests; i++ {
		if p := i * cfg.Phases / cfg.Requests; p != phase {
			phase = p
			perm = rng.Perm(cfg.Keys)
		}
		at += dsmpm2.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		key := perm[zipf.Uint64()]
		tr.perKey[key]++
		tr.reqs = append(tr.reqs, request{
			off: at,
			key: key,
			put: rng.Float64() >= cfg.ReadFraction,
			val: rng.Uint64(),
		})
	}
	return tr
}

// bucketOf and slotOf place key k: bucket k % Buckets, slot k / Buckets.
func bucketOf(k, buckets int) int { return k % buckets }
func slotOf(k, buckets int) int   { return k / buckets }

// mixChecksum folds the final key/value table into one order-independent
// checksum (shared by the DSM run and the serial oracle).
func mixChecksum(sum uint64, key int, val uint64) uint64 {
	return sum + (val^uint64(key)*0x9E3779B97F4A7C15)*2654435761
}

// HotKey is one entry of the hot-key report.
type HotKey struct {
	Key   int   `json:"key"`
	Count int64 `json:"count"`
}

// topKeys returns the n busiest keys by request count (ties to the lower
// key, so the report is canonical).
func topKeys(perKey []int64, n int) []HotKey {
	hot := make([]HotKey, 0, len(perKey))
	for k, c := range perKey {
		if c > 0 {
			hot = append(hot, HotKey{Key: k, Count: c})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Count != hot[j].Count {
			return hot[i].Count > hot[j].Count
		}
		return hot[i].Key < hot[j].Key
	})
	if len(hot) > n {
		hot = hot[:n]
	}
	return hot
}

// OpSummary is the per-operation-kind latency digest extracted from the
// core histograms: deterministic grid-valued quantiles plus exact mean/max.
type OpSummary struct {
	Kind  string          `json:"kind"`
	Count int64           `json:"count"`
	P50   dsmpm2.Duration `json:"p50_ns"`
	P95   dsmpm2.Duration `json:"p95_ns"`
	P99   dsmpm2.Duration `json:"p99_ns"`
	Mean  dsmpm2.Duration `json:"mean_ns"`
	Max   dsmpm2.Duration `json:"max_ns"`
}

// KeyLatency is the served-latency digest of one hot key. Count is the
// number of served (not dropped) requests for the key, so under a deadline
// it can fall short of the trace's request tally for that key.
type KeyLatency struct {
	Key int `json:"key"`
	dsmpm2.HistSummary
}

// Result reports a run's outcome.
type Result struct {
	// Checksum folds the final key/value table; it must match ServeSerial
	// when Deadline is zero.
	Checksum uint64
	Elapsed  dsmpm2.Time
	Stats    dsmpm2.Stats
	System   *dsmpm2.System
	// Ops summarizes the per-kind latency histograms in sorted kind order
	// ("get", "put", and "drop" when a deadline is set).
	Ops []OpSummary
	// HotKeys are the TopN busiest keys of the trace.
	HotKeys []HotKey
	// PerKey is the served-latency digest of each hot key, in HotKeys order.
	PerKey []KeyLatency
	// Served and Dropped count completed and deadline-dropped requests;
	// IdleTicks counts server receive timeouts (idle polls).
	Served    int64
	Dropped   int64
	IdleTicks int64
}

// Op returns the summary for kind (zero OpSummary if absent).
func (r Result) Op(kind string) OpSummary {
	for _, o := range r.Ops {
		if o.Kind == kind {
			return o
		}
	}
	return OpSummary{}
}

// ServeSerial replays the trace in plain Go and returns the oracle checksum
// and hot-key report. Valid for Deadline == 0 configs: the store serializes
// all requests for a key through one bucket lock on one server's FIFO
// queue, so the final table state is the trace's last-put-wins fold.
func ServeSerial(cfg Config) (uint64, []HotKey, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return 0, nil, err
	}
	tr := genTrace(cfg)
	table := make([]uint64, cfg.Keys)
	for _, r := range tr.reqs {
		if r.put {
			table[r.key] = r.val
		}
	}
	var sum uint64
	for k, v := range table {
		sum = mixChecksum(sum, k, v)
	}
	return sum, topKeys(tr.perKey, cfg.TopN), nil
}

// Run executes the store under simulation and returns the result.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:         cfg.Nodes,
		Network:       cfg.Network,
		Topology:      cfg.Topology,
		Protocol:      cfg.Protocol,
		Seed:          cfg.Seed,
		UnbatchedComm: cfg.Unbatched,
		AdaptiveHomes: cfg.AdaptiveHomes,
		Shards:        cfg.Shards,
	})
	if err != nil {
		return Result{}, err
	}
	tr := genTrace(cfg)

	// One page and one bound lock per bucket. The lock is always managed by
	// the serving node; the page is homed there too unless MisplaceHomes
	// parks it on node 0 (the static placement the adapt experiment fixes).
	pages := make([]dsmpm2.Addr, cfg.Buckets)
	locks := make([]int, cfg.Buckets)
	for b := 0; b < cfg.Buckets; b++ {
		server := b % cfg.Nodes
		attr := &dsmpm2.Attr{Protocol: -1, Home: server}
		if cfg.MisplaceHomes {
			attr.Home = 0
		}
		pages[b] = sys.MustMalloc(server, dsmpm2.PageSize, attr)
		locks[b] = sys.NewLock(server)
		sys.BindLock(locks[b], pages[b], dsmpm2.PageSize)
	}

	// Request routing: per-server FIFO queues, an epoch barrier spanning
	// the servers plus the generator (one participant per node, so the
	// profiler folds and migrates at each epoch boundary).
	queues := make([]*sim.Chan, cfg.Nodes)
	for i := range queues {
		queues[i] = new(sim.Chan)
	}
	bar := sys.NewBarrier(cfg.Nodes + 1)

	// On a sharded machine the generator may not touch a remote server's
	// queue directly: the queue (and any receiver parked on it) belongs to
	// the shard that owns the serving node. Cross-shard dispatch goes
	// through the kernel's mailbox instead, delayed by a uniform dispatch
	// latency — the largest inter-shard lookahead, so the delivery time is
	// admissible for every destination and arrival skew between a
	// generator-local and a remote server is placement-independent. The
	// single-loop path is untouched (direct zero-latency push).
	rt := sys.Runtime()
	var dispatchLat dsmpm2.Duration
	if rt.Sharded() {
		se := rt.ShardedEngine()
		for i := 0; i < se.Shards(); i++ {
			for j := 0; j < se.Shards(); j++ {
				if i != j && se.Lookahead(i, j) > dispatchLat {
					dispatchLat = se.Lookahead(i, j)
				}
			}
		}
	}

	res := Result{System: sys}
	// Per-node tallies: server threads on different shards run on different
	// host goroutines, so they may not share a counter. Each server owns a
	// slot; the slots are summed into the result after the run. (The latency
	// histograms need no such treatment — Histogram.Record is an atomic,
	// commutative add, shard-safe by construction.)
	served := make([]int64, cfg.Nodes)
	dropped := make([]int64, cfg.Nodes)
	idleTicks := make([]int64, cfg.Nodes)
	// Per-key latency for the trace's hot set. The hot keys are a pure
	// function of the trace, so the set is known before the run; each server
	// records into its own per-key histograms (per-node tallies, like the
	// counters above) and the parts merge into one digest per key afterwards.
	hot := topKeys(tr.perKey, cfg.TopN)
	hotIdx := make(map[int]int, len(hot))
	for i, hk := range hot {
		hotIdx[hk.Key] = i
	}
	keyHists := make([][]*dsmpm2.Histogram, cfg.Nodes)
	for n := range keyHists {
		keyHists[n] = make([]*dsmpm2.Histogram, len(hot))
		for i := range keyHists[n] {
			keyHists[n][i] = new(dsmpm2.Histogram)
		}
	}
	getHist := sys.OpHist("get")
	putHist := sys.OpHist("put")
	var dropHist *dsmpm2.Histogram
	if cfg.Deadline > 0 {
		dropHist = sys.OpHist("drop")
	}

	// The open-loop generator: sleep to each scheduled arrival, stamp the
	// absolute time, and push to the serving node's queue. Epoch marks are
	// emitted every Requests/Epochs operations and at the end of the trace.
	sys.Spawn(0, "loadgen", func(t *dsmpm2.Thread) {
		send := func(node int, v interface{}) {
			if !rt.Sharded() {
				queues[node].Push(v)
				return
			}
			eng := t.PM2().Proc().Engine()
			eng.SchedulePushShard(rt.ShardOf(node), t.Now().Add(dispatchLat), queues[node], v)
		}
		start := t.Now()
		nextMark := 1
		for i, r := range tr.reqs {
			due := start.Add(r.off)
			if d := due.Sub(t.Now()); d > 0 {
				t.Sleep(d)
			}
			r.at = due
			send(bucketOf(r.key, cfg.Buckets)%cfg.Nodes, r)
			if (i+1)*cfg.Epochs >= nextMark*cfg.Requests {
				for n := range queues {
					send(n, epochMark{})
				}
				t.Barrier(bar)
				nextMark++
			}
		}
		for n := range queues {
			send(n, stopMark{})
		}
	})

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("server%d", node), func(t *dsmpm2.Thread) {
			proc := t.PM2().Proc()
			q := queues[node]
			for {
				v, ok := q.RecvTimeout(proc, sim.Duration(cfg.IdleTick))
				if !ok {
					idleTicks[node]++ // idle poll
					continue
				}
				switch m := v.(type) {
				case stopMark:
					return
				case epochMark:
					t.Barrier(bar)
				case request:
					if cfg.Deadline > 0 && t.Now().Sub(m.at) > cfg.Deadline {
						dropHist.Record(t.Now().Sub(m.at))
						dropped[node]++
						continue
					}
					b := bucketOf(m.key, cfg.Buckets)
					addr := pages[b] + dsmpm2.Addr(8*slotOf(m.key, cfg.Buckets))
					t.Acquire(locks[b])
					if m.put {
						t.WriteUint64(addr, m.val)
					} else {
						t.ReadUint64(addr)
					}
					t.Compute(cfg.ServeCost)
					t.Release(locks[b])
					if m.put {
						putHist.Record(t.Now().Sub(m.at))
					} else {
						getHist.Record(t.Now().Sub(m.at))
					}
					if hi, ok := hotIdx[m.key]; ok {
						keyHists[node][hi].Record(t.Now().Sub(m.at))
					}
					served[node]++
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	res.Elapsed = sys.Now()
	for node := 0; node < cfg.Nodes; node++ {
		res.Served += served[node]
		res.Dropped += dropped[node]
		res.IdleTicks += idleTicks[node]
	}

	// Read the final table back through the DSM from node 0, under the
	// bucket locks, and fold the oracle checksum.
	sys.Spawn(0, "checksum", func(t *dsmpm2.Thread) {
		var sum uint64
		for k := 0; k < cfg.Keys; k++ {
			b := bucketOf(k, cfg.Buckets)
			t.Acquire(locks[b])
			v := t.ReadUint64(pages[b] + dsmpm2.Addr(8*slotOf(k, cfg.Buckets)))
			t.Release(locks[b])
			sum = mixChecksum(sum, k, v)
		}
		res.Checksum = sum
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	res.Stats = sys.Stats()
	res.HotKeys = hot
	for _, kind := range sys.OpKinds() {
		h := sys.OpHist(kind).Snapshot()
		s := h.Summarize()
		res.Ops = append(res.Ops, OpSummary{
			Kind:  kind,
			Count: s.Count,
			P50:   s.P50,
			P95:   s.P95,
			P99:   s.P99,
			Mean:  s.Mean,
			Max:   s.Max,
		})
	}
	for i, hk := range hot {
		merged := new(dsmpm2.Histogram)
		for n := 0; n < cfg.Nodes; n++ {
			merged.Merge(keyHists[n][i])
		}
		res.PerKey = append(res.PerKey, KeyLatency{Key: hk.Key, HistSummary: merged.Summarize()})
	}
	return res, nil
}
