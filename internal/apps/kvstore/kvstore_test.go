package kvstore

import (
	"testing"

	"dsmpm2"
)

// testConfig is a small trace that still spans several epochs and a hot-key
// churn, kept cheap enough for -short CI runs.
func testConfig() Config {
	return Config{
		Nodes:    4,
		Buckets:  16,
		Keys:     256,
		Requests: 600,
		Epochs:   6,
		Phases:   2,
		Seed:     7,
	}
}

// TestChecksumMatchesSerialOracle: the DSM store's final table must fold to
// the serial last-put-wins oracle, under every placement variant — per-key
// requests serialize through one bucket lock on one server's FIFO queue.
func TestChecksumMatchesSerialOracle(t *testing.T) {
	want, hot, err := ServeSerial(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"natural", func(c *Config) {}},
		{"static-misplaced", func(c *Config) { c.MisplaceHomes = true }},
		{"adaptive", func(c *Config) { c.MisplaceHomes = true; c.AdaptiveHomes = true }},
		{"unbatched", func(c *Config) { c.Unbatched = true }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := testConfig()
			v.mut(&cfg)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Checksum != want {
				t.Errorf("checksum = %#x, want serial oracle %#x", res.Checksum, want)
			}
			if res.Served != int64(cfg.Requests) || res.Dropped != 0 {
				t.Errorf("served %d dropped %d, want %d/0", res.Served, res.Dropped, cfg.Requests)
			}
			if len(res.HotKeys) != cfg.TopN && len(res.HotKeys) != 5 {
				t.Errorf("hot-key report has %d entries", len(res.HotKeys))
			}
			for i, h := range res.HotKeys {
				if h != hot[i] {
					t.Errorf("hot key %d = %+v, want %+v", i, h, hot[i])
				}
			}
			if got := res.Op("get").Count + res.Op("put").Count; got != int64(cfg.Requests) {
				t.Errorf("histogram counts sum to %d, want %d", got, cfg.Requests)
			}
			if len(res.PerKey) != len(res.HotKeys) {
				t.Fatalf("per-key digests: %d entries for %d hot keys", len(res.PerKey), len(res.HotKeys))
			}
			for i, kl := range res.PerKey {
				// No deadline → every request for a hot key was served, so
				// the per-key histogram count equals the trace's tally.
				if kl.Key != res.HotKeys[i].Key || kl.Count != res.HotKeys[i].Count {
					t.Errorf("per-key digest %d = key %d count %d, want key %d count %d",
						i, kl.Key, kl.Count, res.HotKeys[i].Key, res.HotKeys[i].Count)
				}
				if kl.P50 <= 0 || kl.P99 < kl.P50 || kl.Max < kl.Mean {
					t.Errorf("per-key digest %d implausible: %+v", i, kl)
				}
			}
		})
	}
}

// TestReplayBitIdentical: two runs of one seed must produce bit-identical
// latency histograms (struct equality over every bucket), the property the
// serve experiment's replay check rests on.
func TestReplayBitIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.MisplaceHomes = true
	cfg.AdaptiveHomes = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Checksum != b.Checksum {
		t.Fatalf("replay diverged: elapsed %v vs %v, checksum %#x vs %#x",
			a.Elapsed, b.Elapsed, a.Checksum, b.Checksum)
	}
	for _, kind := range a.System.OpKinds() {
		ha, hb := a.System.OpHist(kind).Snapshot(), b.System.OpHist(kind).Snapshot()
		if ha != hb {
			t.Errorf("%q histogram not bit-identical across replays", kind)
		}
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op summaries differ in length: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Errorf("op summary %q differs across replays: %+v vs %+v",
				a.Ops[i].Kind, a.Ops[i], b.Ops[i])
		}
	}
	if len(a.PerKey) != len(b.PerKey) {
		t.Fatalf("per-key digests differ in length: %d vs %d", len(a.PerKey), len(b.PerKey))
	}
	for i := range a.PerKey {
		if a.PerKey[i] != b.PerKey[i] {
			t.Errorf("per-key digest for key %d differs across replays: %+v vs %+v",
				a.PerKey[i].Key, a.PerKey[i], b.PerKey[i])
		}
	}
}

// TestAdaptiveBeatsStaticTail is the headline property of the serve
// experiment: same trace, misplaced homes — enabling home migration must
// cut the p99 get latency, because the profiler re-homes each hot bucket
// onto its server while static placement pays a remote fetch per acquire.
func TestAdaptiveBeatsStaticTail(t *testing.T) {
	cfg := testConfig()
	cfg.MisplaceHomes = true
	static, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AdaptiveHomes = true
	adaptive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp99, ap99 := static.Op("get").P99, adaptive.Op("get").P99
	if ap99 >= sp99 {
		t.Errorf("adaptive p99 %v not below static p99 %v", ap99, sp99)
	}
	if adaptive.Stats.HomeMigrations == 0 {
		t.Error("adaptive run performed no home migrations")
	}
}

// TestDeadlineDrops: with a deadline set, stale requests are dropped into
// the "drop" histogram instead of served, and the books balance.
func TestDeadlineDrops(t *testing.T) {
	cfg := testConfig()
	cfg.MisplaceHomes = true // slow placement, so queues actually back up
	cfg.ReadFraction = 1     // drops must not change the table
	cfg.MeanInterarrival = 2 * dsmpm2.Microsecond
	cfg.Deadline = 50 * dsmpm2.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("overloaded run with a 50us deadline dropped nothing")
	}
	if res.Served+res.Dropped != int64(cfg.Requests) {
		t.Fatalf("served %d + dropped %d != %d requests", res.Served, res.Dropped, cfg.Requests)
	}
	if res.Op("drop").Count != res.Dropped {
		t.Fatalf("drop histogram count %d != dropped %d", res.Op("drop").Count, res.Dropped)
	}
	want, _, err := ServeSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != want {
		t.Errorf("read-only run changed the table: checksum %#x, want %#x", res.Checksum, want)
	}
}

// TestConfigValidation pins the rejection edges.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = -1 },
		func(c *Config) { c.Keys = 17 * slotsPerBucket; c.Buckets = 16 },
		func(c *Config) { c.ZipfS = 0.5 },
		func(c *Config) { c.ReadFraction = 1.5 },
		func(c *Config) { c.Requests = -3 },
		func(c *Config) { c.Epochs = -1 },
	}
	for i, mut := range bad {
		cfg := testConfig()
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
