// Package jacobi implements a barrier-phased Jacobi stencil kernel in the
// SPLASH-2 style — the application class the paper names as the next step of
// its evaluation (Section 5). Each node owns a block of rows homed on it;
// every iteration reads the neighbouring blocks' boundary rows and writes
// its own block, with a cluster-wide barrier between iterations.
//
// The sharing pattern (mostly-local writes, narrow read sharing at block
// boundaries) is where home-based release consistency (hbrc_mw) shines
// against sequential consistency's page ping-pong, making this the natural
// ablation workload for the protocol comparison.
package jacobi

import (
	"fmt"
	"math"

	"dsmpm2"
)

// Config parameterizes a run.
type Config struct {
	// N is the grid dimension (N x N interior points plus fixed borders).
	N int
	// Iterations is the number of Jacobi sweeps.
	Iterations int
	// Nodes is the cluster size; rows are block-partitioned over nodes.
	Nodes int
	// Network selects the interconnect.
	Network *dsmpm2.NetworkProfile
	// Topology, when set, overrides Network with per-link cost profiles
	// (hierarchical clusters, arbitrary matrices).
	Topology dsmpm2.Topology
	// Protocol is the consistency protocol under test.
	Protocol string
	// Seed drives the simulation.
	Seed int64
	// CellCost is the CPU cost charged per cell update.
	CellCost dsmpm2.Duration
	// Unbatched selects the one-envelope-per-operation communication path
	// (A/B baseline for the comm experiment).
	Unbatched bool
	// MisplaceHomes homes every grid row on node 0 instead of on the node
	// that writes it — the deliberately bad static placement the adapt
	// experiment starts from.
	MisplaceHomes bool
	// Recovery tunes the retry timing of fault-injected runs (base timeout,
	// exponential backoff, seeded jitter); forwarded to
	// dsmpm2.Config.Recovery.
	Recovery dsmpm2.RecoveryTuning
	// AdaptiveHomes enables the access-pattern profiler and dynamic home
	// migration: misplaced rows move onto their writers at barrier epochs.
	AdaptiveHomes bool
	// Trace enables post-mortem span recording (dsmpm2.Config.Trace); the
	// auto-tuner's recording run and the sharded-trace regression test use it.
	Trace bool

	// Shards is forwarded to dsmpm2.Config.Shards: 0 and 1 are the
	// single-loop engine (bit-identical traces), >1 is rejected by the DSM
	// layer (sharded execution is a pm2/bench kernel feature).
	Shards int

	// FaultPlan, when set, selects the restart-aware variant of the
	// kernel: all grid pages are homed on node 0 (a home-based protocol
	// then keeps committed iterations on a protected node), workers
	// checkpoint a local iteration counter after flushing their diffs,
	// and a crashed node's worker is respawned on restart, redoing at
	// most one iteration. Plans must protect node 0 (it is the barrier
	// manager and the reliable home). Event times are offsets from the
	// start of the compute phase.
	FaultPlan *dsmpm2.FaultPlan
}

// Result reports a run's outcome.
type Result struct {
	Checksum float64
	Elapsed  dsmpm2.Time
	Stats    dsmpm2.Stats
	System   *dsmpm2.System
	// Faults and Recovery are the fault-injection counters (zero when no
	// FaultPlan was configured).
	Faults   dsmpm2.FaultStats
	Recovery dsmpm2.RecoveryStats
}

// boundary returns the fixed boundary value for grid edge cells.
func boundary(i, j, n int) float64 {
	if i == 0 {
		return 100 // hot top edge
	}
	if i == n+1 || j == 0 || j == n+1 {
		return 0
	}
	return 0
}

// SolveSerial runs the same computation in plain Go and returns the
// checksum, as the reference for correctness tests.
func SolveSerial(n, iterations int) float64 {
	cur := makeGrid(n)
	next := makeGrid(n)
	for it := 0; it < iterations; it++ {
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				next[i][j] = 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])
			}
		}
		cur, next = next, cur
	}
	return checksum(cur, n)
}

func makeGrid(n int) [][]float64 {
	g := make([][]float64, n+2)
	for i := range g {
		g[i] = make([]float64, n+2)
		for j := range g[i] {
			g[i][j] = boundary(i, j, n)
		}
	}
	return g
}

func checksum(g [][]float64, n int) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			sum += g[i][j]
		}
	}
	return sum
}

// Run executes the distributed kernel and returns the result.
func Run(cfg Config) (Result, error) {
	if cfg.N < 2 || cfg.Nodes < 1 || cfg.Iterations < 1 {
		return Result{}, fmt.Errorf("jacobi: invalid config %+v", cfg)
	}
	if cfg.CellCost == 0 {
		cfg.CellCost = 100 // 0.1us per cell
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:         cfg.Nodes,
		Network:       cfg.Network,
		Topology:      cfg.Topology,
		Protocol:      cfg.Protocol,
		Seed:          cfg.Seed,
		UnbatchedComm: cfg.Unbatched,
		AdaptiveHomes: cfg.AdaptiveHomes,
		Recovery:      cfg.Recovery,
		Shards:        cfg.Shards,
		Trace:         cfg.Trace,
	})
	if err != nil {
		return Result{}, err
	}
	if cfg.FaultPlan != nil {
		return runRecoverable(cfg, sys)
	}
	n := cfg.N
	rowBytes := (n + 2) * 8

	// Two grids, each distributed row-block by row-block so every block is
	// homed on the node that writes it — unless MisplaceHomes parks
	// everything on node 0 for the adapt experiment.
	var attr *dsmpm2.Attr
	if cfg.MisplaceHomes {
		attr = &dsmpm2.Attr{Protocol: -1, Home: 0}
	}
	grids := [2][]dsmpm2.Addr{make([]dsmpm2.Addr, n+2), make([]dsmpm2.Addr, n+2)}
	ownerOf := func(row int) int {
		if row == 0 {
			return 0
		}
		if row == n+1 {
			return cfg.Nodes - 1
		}
		return (row - 1) * cfg.Nodes / n
	}
	for g := 0; g < 2; g++ {
		for row := 0; row <= n+1; row++ {
			grids[g][row] = sys.MustMalloc(ownerOf(row), rowBytes, attr)
		}
	}

	// Initialize both grids with boundary values from their owner nodes.
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("init%d", node), func(t *dsmpm2.Thread) {
			for g := 0; g < 2; g++ {
				for row := 0; row <= n+1; row++ {
					if ownerOf(row) != node {
						continue
					}
					for j := 0; j <= n+1; j++ {
						v := boundary(row, j, n)
						t.WriteUint64(grids[g][row]+dsmpm2.Addr(8*j), math.Float64bits(v))
					}
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	bar := sys.NewBarrier(cfg.Nodes)
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("jacobi%d", node), func(t *dsmpm2.Thread) {
			cur, next := 0, 1
			for it := 0; it < cfg.Iterations; it++ {
				for row := 1; row <= n; row++ {
					if ownerOf(row) != node {
						continue
					}
					up, down := grids[cur][row-1], grids[cur][row+1]
					mid := grids[cur][row]
					dst := grids[next][row]
					for j := 1; j <= n; j++ {
						a := math.Float64frombits(t.ReadUint64(up + dsmpm2.Addr(8*j)))
						b := math.Float64frombits(t.ReadUint64(down + dsmpm2.Addr(8*j)))
						c := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j-1))))
						d := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j+1))))
						t.WriteUint64(dst+dsmpm2.Addr(8*j), math.Float64bits(0.25*(a+b+c+d)))
					}
					t.Compute(dsmpm2.Duration(n) * cfg.CellCost)
				}
				t.Barrier(bar)
				cur, next = next, cur
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	// Collect the checksum from node 0, reading through the DSM.
	final := cfg.Iterations % 2
	res := Result{Elapsed: sys.Now(), Stats: sys.Stats(), System: sys}
	sys.Spawn(0, "checksum", func(t *dsmpm2.Thread) {
		sum := 0.0
		for row := 1; row <= n; row++ {
			for j := 1; j <= n; j++ {
				sum += math.Float64frombits(t.ReadUint64(grids[final][row] + dsmpm2.Addr(8*j)))
			}
		}
		res.Checksum = sum
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// runRecoverable is the restart-aware variant of the kernel, used when a
// FaultPlan is configured. Structural differences from the plain kernel:
//
//   - every grid row is homed on node 0, the protected node, so a
//     home-based protocol (hbrc_mw, entry_mw) keeps all committed
//     iterations on a node the plan never kills;
//   - init and each sweep are numbered work units separated by identified
//     barrier generations (BarrierAs), so a restarted worker can rejoin at
//     exactly the generation the cluster is in;
//   - before checkpointing a completed unit, the worker flushes its diffs
//     home (Thread.Flush): the checkpoint never claims work whose
//     modifications would die with the node. A crash therefore costs at
//     most one redone unit, and redone units are idempotent — they
//     recompute the same values from the same committed inputs.
func runRecoverable(cfg Config, sys *dsmpm2.System) (Result, error) {
	n := cfg.N
	rowBytes := (n + 2) * 8
	home0 := &dsmpm2.Attr{Protocol: -1, Home: 0}

	grids := [2][]dsmpm2.Addr{make([]dsmpm2.Addr, n+2), make([]dsmpm2.Addr, n+2)}
	ownerOf := func(row int) int {
		if row == 0 {
			return 0
		}
		if row == n+1 {
			return cfg.Nodes - 1
		}
		return (row - 1) * cfg.Nodes / n
	}
	for g := 0; g < 2; g++ {
		for row := 0; row <= n+1; row++ {
			grids[g][row] = sys.MustMalloc(0, rowBytes, home0)
		}
	}

	// lastDone[node] is the node's local checkpoint: the highest work unit
	// whose modifications are committed at the home. Unit 0 is grid
	// initialization; unit k is sweep k-1. In a real system this counter
	// would sit in the node's stable storage.
	lastDone := make([]int, cfg.Nodes)
	for i := range lastDone {
		lastDone[i] = -1
	}
	units := cfg.Iterations + 1
	bar := sys.NewBarrier(cfg.Nodes)

	// finishedAt is the computation's true end: the latest instant a worker
	// completed its final unit. sys.Now() after Run would instead report
	// when the event queue drained, which a fault plan with events past the
	// workload's end (an MTBF horizon, a late heal) inflates arbitrarily.
	var finishedAt dsmpm2.Time
	runWorker := func(t *dsmpm2.Thread, node, startUnit int) {
		for unit := startUnit; unit < units; unit++ {
			if unit == 0 {
				// Init: boundary values into both grids' own rows.
				for g := 0; g < 2; g++ {
					for row := 0; row <= n+1; row++ {
						if ownerOf(row) != node {
							continue
						}
						for j := 0; j <= n+1; j++ {
							v := boundary(row, j, n)
							t.WriteUint64(grids[g][row]+dsmpm2.Addr(8*j), math.Float64bits(v))
						}
					}
				}
			} else {
				it := unit - 1
				cur, next := it%2, (it+1)%2
				for row := 1; row <= n; row++ {
					if ownerOf(row) != node {
						continue
					}
					up, down := grids[cur][row-1], grids[cur][row+1]
					mid := grids[cur][row]
					dst := grids[next][row]
					for j := 1; j <= n; j++ {
						a := math.Float64frombits(t.ReadUint64(up + dsmpm2.Addr(8*j)))
						b := math.Float64frombits(t.ReadUint64(down + dsmpm2.Addr(8*j)))
						c := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j-1))))
						d := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j+1))))
						t.WriteUint64(dst+dsmpm2.Addr(8*j), math.Float64bits(0.25*(a+b+c+d)))
					}
					t.Compute(dsmpm2.Duration(n) * cfg.CellCost)
				}
			}
			t.Flush() // commit home before the checkpoint claims the unit
			lastDone[node] = unit
			t.BarrierAs(bar, node, unit)
		}
		if now := t.Now(); now > finishedAt {
			finishedAt = now
		}
	}

	if err := sys.InjectFaults(cfg.FaultPlan, dsmpm2.FaultOptions{
		OnRestart: func(node int) {
			done := lastDone[node]
			sys.Spawn(node, fmt.Sprintf("jacobi%d.r", node), func(t *dsmpm2.Thread) {
				if done >= 0 {
					// The crash may have hit between the checkpoint and
					// the barrier: re-arrive for the checkpointed
					// generation (idempotent — a duplicate arrival just
					// takes over the dead predecessor's slot).
					t.BarrierAs(bar, node, done)
				}
				runWorker(t, node, done+1)
			})
		},
	}); err != nil {
		return Result{}, err
	}

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("jacobi%d", node), func(t *dsmpm2.Thread) {
			runWorker(t, node, 0)
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	final := cfg.Iterations % 2
	res := Result{Elapsed: finishedAt, Stats: sys.Stats(), System: sys,
		Faults: sys.FaultStats(), Recovery: sys.RecoveryStats()}
	sys.Spawn(0, "checksum", func(t *dsmpm2.Thread) {
		sum := 0.0
		for row := 1; row <= n; row++ {
			for j := 1; j <= n; j++ {
				sum += math.Float64frombits(t.ReadUint64(grids[final][row] + dsmpm2.Addr(8*j)))
			}
		}
		res.Checksum = sum
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}
