// Package jacobi implements a barrier-phased Jacobi stencil kernel in the
// SPLASH-2 style — the application class the paper names as the next step of
// its evaluation (Section 5). Each node owns a block of rows homed on it;
// every iteration reads the neighbouring blocks' boundary rows and writes
// its own block, with a cluster-wide barrier between iterations.
//
// The sharing pattern (mostly-local writes, narrow read sharing at block
// boundaries) is where home-based release consistency (hbrc_mw) shines
// against sequential consistency's page ping-pong, making this the natural
// ablation workload for the protocol comparison.
package jacobi

import (
	"fmt"
	"math"

	"dsmpm2"
)

// Config parameterizes a run.
type Config struct {
	// N is the grid dimension (N x N interior points plus fixed borders).
	N int
	// Iterations is the number of Jacobi sweeps.
	Iterations int
	// Nodes is the cluster size; rows are block-partitioned over nodes.
	Nodes int
	// Network selects the interconnect.
	Network *dsmpm2.NetworkProfile
	// Protocol is the consistency protocol under test.
	Protocol string
	// Seed drives the simulation.
	Seed int64
	// CellCost is the CPU cost charged per cell update.
	CellCost dsmpm2.Duration
}

// Result reports a run's outcome.
type Result struct {
	Checksum float64
	Elapsed  dsmpm2.Time
	Stats    dsmpm2.Stats
	System   *dsmpm2.System
}

// boundary returns the fixed boundary value for grid edge cells.
func boundary(i, j, n int) float64 {
	if i == 0 {
		return 100 // hot top edge
	}
	if i == n+1 || j == 0 || j == n+1 {
		return 0
	}
	return 0
}

// SolveSerial runs the same computation in plain Go and returns the
// checksum, as the reference for correctness tests.
func SolveSerial(n, iterations int) float64 {
	cur := makeGrid(n)
	next := makeGrid(n)
	for it := 0; it < iterations; it++ {
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				next[i][j] = 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])
			}
		}
		cur, next = next, cur
	}
	return checksum(cur, n)
}

func makeGrid(n int) [][]float64 {
	g := make([][]float64, n+2)
	for i := range g {
		g[i] = make([]float64, n+2)
		for j := range g[i] {
			g[i][j] = boundary(i, j, n)
		}
	}
	return g
}

func checksum(g [][]float64, n int) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			sum += g[i][j]
		}
	}
	return sum
}

// Run executes the distributed kernel and returns the result.
func Run(cfg Config) (Result, error) {
	if cfg.N < 2 || cfg.Nodes < 1 || cfg.Iterations < 1 {
		return Result{}, fmt.Errorf("jacobi: invalid config %+v", cfg)
	}
	if cfg.CellCost == 0 {
		cfg.CellCost = 100 // 0.1us per cell
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:    cfg.Nodes,
		Network:  cfg.Network,
		Protocol: cfg.Protocol,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	n := cfg.N
	rowBytes := (n + 2) * 8

	// Two grids, each distributed row-block by row-block so every block is
	// homed on the node that writes it.
	grids := [2][]dsmpm2.Addr{make([]dsmpm2.Addr, n+2), make([]dsmpm2.Addr, n+2)}
	ownerOf := func(row int) int {
		if row == 0 {
			return 0
		}
		if row == n+1 {
			return cfg.Nodes - 1
		}
		return (row - 1) * cfg.Nodes / n
	}
	for g := 0; g < 2; g++ {
		for row := 0; row <= n+1; row++ {
			grids[g][row] = sys.MustMalloc(ownerOf(row), rowBytes, nil)
		}
	}

	// Initialize both grids with boundary values from their owner nodes.
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("init%d", node), func(t *dsmpm2.Thread) {
			for g := 0; g < 2; g++ {
				for row := 0; row <= n+1; row++ {
					if ownerOf(row) != node {
						continue
					}
					for j := 0; j <= n+1; j++ {
						v := boundary(row, j, n)
						t.WriteUint64(grids[g][row]+dsmpm2.Addr(8*j), math.Float64bits(v))
					}
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	bar := sys.NewBarrier(cfg.Nodes)
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		sys.Spawn(node, fmt.Sprintf("jacobi%d", node), func(t *dsmpm2.Thread) {
			cur, next := 0, 1
			for it := 0; it < cfg.Iterations; it++ {
				for row := 1; row <= n; row++ {
					if ownerOf(row) != node {
						continue
					}
					up, down := grids[cur][row-1], grids[cur][row+1]
					mid := grids[cur][row]
					dst := grids[next][row]
					for j := 1; j <= n; j++ {
						a := math.Float64frombits(t.ReadUint64(up + dsmpm2.Addr(8*j)))
						b := math.Float64frombits(t.ReadUint64(down + dsmpm2.Addr(8*j)))
						c := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j-1))))
						d := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j+1))))
						t.WriteUint64(dst+dsmpm2.Addr(8*j), math.Float64bits(0.25*(a+b+c+d)))
					}
					t.Compute(dsmpm2.Duration(n) * cfg.CellCost)
				}
				t.Barrier(bar)
				cur, next = next, cur
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	// Collect the checksum from node 0, reading through the DSM.
	final := cfg.Iterations % 2
	res := Result{Elapsed: sys.Now(), Stats: sys.Stats(), System: sys}
	sys.Spawn(0, "checksum", func(t *dsmpm2.Thread) {
		sum := 0.0
		for row := 1; row <= n; row++ {
			for j := 1; j <= n; j++ {
				sum += math.Float64frombits(t.ReadUint64(grids[final][row] + dsmpm2.Addr(8*j)))
			}
		}
		res.Checksum = sum
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}
