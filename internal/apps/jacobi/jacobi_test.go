package jacobi

import (
	"math"
	"testing"
)

func TestSerialConverges(t *testing.T) {
	few := SolveSerial(8, 2)
	many := SolveSerial(8, 50)
	if few <= 0 || many <= 0 {
		t.Fatalf("checksums not positive: %v %v", few, many)
	}
	if many <= few {
		t.Fatalf("heat did not diffuse: %v then %v", few, many)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	const n, iters = 8, 4
	want := SolveSerial(n, iters)
	for _, proto := range []string{"li_hudak", "hbrc_mw", "erc_sw"} {
		res, err := Run(Config{N: n, Iterations: iters, Nodes: 2, Protocol: proto, Seed: 1})
		if err != nil {
			t.Fatalf("[%s] %v", proto, err)
		}
		if math.Abs(res.Checksum-want) > 1e-9 {
			t.Errorf("[%s] checksum = %v, want %v", proto, res.Checksum, want)
		}
	}
}

func TestParallelMatchesSerialFourNodes(t *testing.T) {
	const n, iters = 12, 3
	want := SolveSerial(n, iters)
	res, err := Run(Config{N: n, Iterations: iters, Nodes: 4, Protocol: "hbrc_mw", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Checksum-want) > 1e-9 {
		t.Fatalf("checksum = %v, want %v", res.Checksum, want)
	}
}

func TestHbrcPropagatesAtBarriers(t *testing.T) {
	// Every grid row is homed on the node that writes it, so hbrc_mw's
	// releases (at the barriers) propagate home-side writes to the
	// boundary readers, which then refetch. Heat starts at the top edge
	// and needs about five sweeps to reach the block boundary of an
	// 8-row grid, so run enough iterations for the boundary rows to
	// actually change. On the batched path the propagation vehicle is
	// write notices piggybacked on the barrier (zero invalidation
	// envelopes); unbatched it is eager invalidation messages.
	for _, unbatched := range []bool{false, true} {
		res, err := Run(Config{N: 8, Iterations: 10, Nodes: 2, Protocol: "hbrc_mw",
			Seed: 1, Unbatched: unbatched})
		if err != nil {
			t.Fatal(err)
		}
		if unbatched {
			if res.Stats.Invalidations == 0 {
				t.Fatal("unbatched hbrc_mw jacobi never invalidated boundary copies at a barrier")
			}
		} else {
			if res.Stats.Notices == 0 {
				t.Fatal("batched hbrc_mw jacobi never piggybacked a write notice on a barrier")
			}
			if res.Stats.Invalidations != 0 {
				t.Fatalf("batched hbrc_mw jacobi sent %d eager invalidations; barriers should carry the notices",
					res.Stats.Invalidations)
			}
		}
		if res.Stats.PageSends == 0 {
			t.Fatal("boundary rows never travelled")
		}
	}
}

func TestJacobiBadConfig(t *testing.T) {
	if _, err := Run(Config{N: 1, Iterations: 1, Nodes: 1}); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := Run(Config{N: 8, Iterations: 0, Nodes: 1}); err == nil {
		t.Error("0 iterations accepted")
	}
}
