package jacobi

import (
	"encoding/json"
	"fmt"
	"math"

	"dsmpm2"
)

// Session is the chunked, checkpointable form of the kernel. The same work
// the monolithic Run performs is split into steps that each end at a drained
// safe point, so the full simulation state can be captured between any two
// steps (Checkpoint), restored into a fresh process (ResumeSession) and run
// to completion bit-identically to the unbroken session.
//
// Each work unit (unit 0 is grid initialization, unit k is sweep k-1) is
// two steps:
//
//   - phase A: every node computes its block, flushes its diffs home and
//     records a local checkpoint claiming the unit;
//   - phase B: every node arrives at the cluster barrier for the unit's
//     generation.
//
// Threads cannot survive a safe point (their stacks are not serializable),
// so each step spawns fresh single-phase workers; the cross-step state is
// exactly the Session's few counters, which serialize into the checkpoint's
// application blob. Chunking perturbs thread ids relative to the monolithic
// kernel, so chunked runs are compared against chunked runs.
//
// With a fault plan, the session injects it through the resumable cursor
// (events parked across a safe point fire in the next chunk), homes every
// grid row on protected node 0, and restarted nodes catch up from their
// last recorded checkpoint — or from scratch when ColdRestart is set, the
// A/B knob behind the redone-work comparison in `dsmbench -exp ckpt`.
type Session struct {
	cfg   Config
	sys   *dsmpm2.System
	grids [2][]dsmpm2.Addr
	bar   int
	units int
	step  int   // next step to execute, in [0, Steps()]
	done  []int // per node: last unit whose phase A committed (-1 none)

	// ColdRestart makes restarted nodes ignore the checkpoint registry and
	// redo every unit from scratch (the baseline the warm path is measured
	// against). Set it before the run reaches the plan's restart events.
	ColdRestart bool

	// PerturbStep, when >= 0, injects a deterministic perturbation at the
	// start of that step: an extra thread on node 0 re-reads and rewrites one
	// shared grid word and flushes. The data is unchanged (the word keeps its
	// value) but the protocol traffic is not, so every fingerprint from that
	// step on diverges — the model of a trace-breaking change used by
	// `dsmbench -exp bisect`.
	PerturbStep int

	// curUnit/curPhase locate the step in progress, so a node restarting
	// mid-step knows how far its catch-up worker must go.
	curUnit  int
	curPhase int

	// finishedAt is the latest instant a worker completed a final-unit
	// barrier — the computation's true end, immune to trailing plan events.
	finishedAt dsmpm2.Time
}

// sessionState is the Session's half of a checkpoint: everything the
// application layer needs to rebuild its side of the run, carried opaquely
// in Checkpoint.App.
type sessionState struct {
	N          int             `json:"n"`
	Iterations int             `json:"iterations"`
	CellCost   dsmpm2.Duration `json:"cell_cost"`
	Step       int             `json:"step"`
	Bar        int             `json:"bar"`
	Done       []int           `json:"done"`
	Cold       bool            `json:"cold,omitempty"`
	Grids      [2][]uint64     `json:"grids"`
	FinishedAt dsmpm2.Time     `json:"finished_at"`
}

// NewSession builds a session over a fresh system: shared grids allocated,
// barrier created, fault plan (if any) armed through the resumable cursor.
// No step has run yet.
func NewSession(cfg Config) (*Session, error) {
	if cfg.N < 2 || cfg.Nodes < 1 || cfg.Iterations < 1 {
		return nil, fmt.Errorf("jacobi: invalid config %+v", cfg)
	}
	if cfg.CellCost == 0 {
		cfg.CellCost = 100
	}
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:         cfg.Nodes,
		Network:       cfg.Network,
		Topology:      cfg.Topology,
		Protocol:      cfg.Protocol,
		Seed:          cfg.Seed,
		UnbatchedComm: cfg.Unbatched,
		AdaptiveHomes: cfg.AdaptiveHomes,
		Recovery:      cfg.Recovery,
		Shards:        cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg, sys: sys, units: cfg.Iterations + 1,
		done: make([]int, cfg.Nodes), PerturbStep: -1}
	for i := range s.done {
		s.done[i] = -1
	}
	n := cfg.N
	rowBytes := (n + 2) * 8
	var attr *dsmpm2.Attr
	if cfg.FaultPlan != nil || cfg.MisplaceHomes {
		// Fault plans require the reliable-home layout (all rows on
		// protected node 0), which is also the adapt experiment's
		// deliberately bad placement.
		attr = &dsmpm2.Attr{Protocol: -1, Home: 0}
	}
	s.grids = [2][]dsmpm2.Addr{make([]dsmpm2.Addr, n+2), make([]dsmpm2.Addr, n+2)}
	for g := 0; g < 2; g++ {
		for row := 0; row <= n+1; row++ {
			home := s.ownerOf(row)
			if attr != nil {
				home = 0
			}
			s.grids[g][row] = sys.MustMalloc(home, rowBytes, attr)
		}
	}
	s.bar = sys.NewBarrier(cfg.Nodes)
	// Quiesce the platform daemons New spawned: a session sits at a drained
	// safe point between steps, including before the first.
	if err := sys.Run(); err != nil {
		return nil, err
	}
	if cfg.FaultPlan != nil {
		if err := sys.InjectFaultsResumable(cfg.FaultPlan, dsmpm2.FaultOptions{OnRestart: s.onRestart}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// System exposes the session's platform instance.
func (s *Session) System() *dsmpm2.System { return s.sys }

// Steps reports the session's total step count: two per work unit.
func (s *Session) Steps() int { return 2 * s.units }

// StepsDone reports how many steps have completed.
func (s *Session) StepsDone() int { return s.step }

func (s *Session) ownerOf(row int) int {
	if row == 0 {
		return 0
	}
	if row == s.cfg.N+1 {
		return s.cfg.Nodes - 1
	}
	return (row - 1) * s.cfg.Nodes / s.cfg.N
}

// computeUnit performs one node's share of one work unit: boundary
// initialization for unit 0, one Jacobi sweep otherwise. Units are
// idempotent — they recompute the same values from the same committed
// inputs — which is what makes redoing them after a crash safe.
func (s *Session) computeUnit(t *dsmpm2.Thread, node, unit int) {
	n := s.cfg.N
	if unit == 0 {
		for g := 0; g < 2; g++ {
			for row := 0; row <= n+1; row++ {
				if s.ownerOf(row) != node {
					continue
				}
				for j := 0; j <= n+1; j++ {
					v := boundary(row, j, n)
					t.WriteUint64(s.grids[g][row]+dsmpm2.Addr(8*j), math.Float64bits(v))
				}
			}
		}
		return
	}
	it := unit - 1
	cur, next := it%2, (it+1)%2
	for row := 1; row <= n; row++ {
		if s.ownerOf(row) != node {
			continue
		}
		up, down := s.grids[cur][row-1], s.grids[cur][row+1]
		mid := s.grids[cur][row]
		dst := s.grids[next][row]
		for j := 1; j <= n; j++ {
			a := math.Float64frombits(t.ReadUint64(up + dsmpm2.Addr(8*j)))
			b := math.Float64frombits(t.ReadUint64(down + dsmpm2.Addr(8*j)))
			c := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j-1))))
			d := math.Float64frombits(t.ReadUint64(mid + dsmpm2.Addr(8*(j+1))))
			t.WriteUint64(dst+dsmpm2.Addr(8*j), math.Float64bits(0.25*(a+b+c+d)))
		}
		t.Compute(dsmpm2.Duration(n) * s.cfg.CellCost)
	}
}

// phaseA is one node's commit half of a unit: compute, flush the diffs home
// (the checkpoint must never claim work whose modifications would die with
// the node), then record the local checkpoint.
func (s *Session) phaseA(t *dsmpm2.Thread, node, unit int) {
	s.computeUnit(t, node, unit)
	t.Flush()
	s.sys.RecordCheckpoint(node, unit)
	s.done[node] = unit
}

// catchUp replays full units (commit + barrier arrival) from the node's
// resume point through unit `through`. Arrivals for generations the cluster
// already completed are absorbed idempotently (BarrierAs).
func (s *Session) catchUp(t *dsmpm2.Thread, node, through int) {
	for unit := s.done[node] + 1; unit <= through; unit++ {
		s.phaseA(t, node, unit)
		t.BarrierAs(s.bar, node, unit)
	}
}

// noteFinish records a final-unit completion instant.
func (s *Session) noteFinish(t *dsmpm2.Thread, unit int) {
	if unit != s.units-1 {
		return
	}
	if now := t.Now(); now > s.finishedAt {
		s.finishedAt = now
	}
}

// Step executes the next step and drains the system to a safe point. After
// it returns (nil), Checkpoint may be called.
func (s *Session) Step() error {
	if s.step >= s.Steps() {
		return fmt.Errorf("jacobi: session already ran all %d steps", s.Steps())
	}
	u, ph := s.step/2, s.step%2
	s.curUnit, s.curPhase = u, ph
	if s.step == s.PerturbStep {
		s.sys.Spawn(0, "perturb", func(t *dsmpm2.Thread) {
			addr := s.grids[0][1] + 8
			t.WriteUint64(addr, t.ReadUint64(addr)) // same value, extra traffic
			t.Flush()
		})
	}
	for node := 0; node < s.cfg.Nodes; node++ {
		if s.sys.NodeDead(node) {
			continue // a restart event re-joins it via onRestart
		}
		node := node
		if ph == 0 {
			s.sys.Spawn(node, fmt.Sprintf("jacobi%d.a%d", node, u), func(t *dsmpm2.Thread) {
				s.catchUp(t, node, u-1)
				if s.done[node] < u {
					s.phaseA(t, node, u)
				}
			})
		} else {
			s.sys.Spawn(node, fmt.Sprintf("jacobi%d.b%d", node, u), func(t *dsmpm2.Thread) {
				// A node revived since the last phase-A step may still be
				// behind; bring it to the frontier before arriving.
				s.catchUp(t, node, u-1)
				if s.done[node] < u {
					s.phaseA(t, node, u)
				}
				t.BarrierAs(s.bar, node, u)
				s.noteFinish(t, u)
			})
		}
	}
	s.step++
	return s.sys.Run()
}

// onRestart is the node-restart hook: it accounts the redone work and spawns
// a catch-up worker that brings the revived node to the step in progress —
// including the in-progress barrier generation when the cluster is parked in
// phase B waiting for the dead node's slot.
func (s *Session) onRestart(node int) {
	start := s.sys.LastCheckpoint(node)
	if s.ColdRestart {
		start = -1
	} else if start >= 0 {
		s.sys.NoteWarmRestart()
	}
	if redone := s.curUnit - (start + 1); redone > 0 {
		s.sys.AddRedoneUnits(redone)
	}
	s.done[node] = start
	target, arrive := s.curUnit, s.curPhase == 1
	s.sys.Spawn(node, fmt.Sprintf("jacobi%d.r", node), func(t *dsmpm2.Thread) {
		if d := s.done[node]; d >= 0 {
			// The crash may have hit between a checkpoint and its barrier:
			// re-arrive for the checkpointed generation (idempotent).
			t.BarrierAs(s.bar, node, d)
		}
		s.catchUp(t, node, target-1)
		if s.done[node] < target {
			s.phaseA(t, node, target)
		}
		if arrive {
			t.BarrierAs(s.bar, node, target)
			s.noteFinish(t, target)
		}
	})
}

// RunToEnd executes every remaining step.
func (s *Session) RunToEnd() error {
	for s.step < s.Steps() {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint captures the full simulation state plus the session's own
// counters at the current safe point. Valid between any two steps (and
// before the first or after the last).
func (s *Session) Checkpoint() (*dsmpm2.Checkpoint, error) {
	st := sessionState{
		N:          s.cfg.N,
		Iterations: s.cfg.Iterations,
		CellCost:   s.cfg.CellCost,
		Step:       s.step,
		Bar:        s.bar,
		Done:       append([]int(nil), s.done...),
		Cold:       s.ColdRestart,
		FinishedAt: s.finishedAt,
	}
	for g := 0; g < 2; g++ {
		for _, a := range s.grids[g] {
			st.Grids[g] = append(st.Grids[g], uint64(a))
		}
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	return s.sys.Checkpoint(blob)
}

// ResumeSession rebuilds a session from a checkpoint taken by
// Session.Checkpoint. Running the restored session to completion is
// bit-identical to running the original one without the interruption.
func ResumeSession(ck *dsmpm2.Checkpoint) (*Session, error) {
	var st sessionState
	if err := json.Unmarshal(ck.App, &st); err != nil {
		return nil, fmt.Errorf("jacobi: checkpoint carries no session state: %w", err)
	}
	nodes := len(st.Done)
	if nodes == 0 || st.N < 2 {
		return nil, fmt.Errorf("jacobi: malformed session state in checkpoint")
	}
	s := &Session{
		cfg:         Config{N: st.N, Iterations: st.Iterations, Nodes: nodes, CellCost: st.CellCost},
		units:       st.Iterations + 1,
		step:        st.Step,
		bar:         st.Bar,
		done:        append([]int(nil), st.Done...),
		ColdRestart: st.Cold,
		PerturbStep: -1,
		finishedAt:  st.FinishedAt,
	}
	sys, err := dsmpm2.Restore(ck, dsmpm2.RestoreOptions{OnRestart: s.onRestart})
	if err != nil {
		return nil, err
	}
	s.sys = sys
	for g := 0; g < 2; g++ {
		if len(st.Grids[g]) != st.N+2 {
			return nil, fmt.Errorf("jacobi: session state has %d grid rows, want %d", len(st.Grids[g]), st.N+2)
		}
		s.grids[g] = make([]dsmpm2.Addr, st.N+2)
		for row, a := range st.Grids[g] {
			s.grids[g][row] = dsmpm2.Addr(a)
		}
	}
	return s, nil
}

// Result collects the checksum and final counters. Call after RunToEnd.
func (s *Session) Result() (Result, error) {
	if s.step < s.Steps() {
		return Result{}, fmt.Errorf("jacobi: session has %d steps left", s.Steps()-s.step)
	}
	n := s.cfg.N
	final := s.cfg.Iterations % 2
	res := Result{Elapsed: s.finishedAt, Stats: s.sys.Stats(), System: s.sys,
		Faults: s.sys.FaultStats(), Recovery: s.sys.RecoveryStats()}
	s.sys.Spawn(0, "checksum", func(t *dsmpm2.Thread) {
		sum := 0.0
		for row := 1; row <= n; row++ {
			for j := 1; j <= n; j++ {
				sum += math.Float64frombits(t.ReadUint64(s.grids[final][row] + dsmpm2.Addr(8*j)))
			}
		}
		res.Checksum = sum
	})
	if err := s.sys.Run(); err != nil {
		return Result{}, err
	}
	return res, nil
}
