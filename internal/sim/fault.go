package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
)

// Fault injection: a FaultPlan is a declarative schedule of fault events
// (node crashes and restarts, link partitions and heals, message loss)
// injected into the engine as first-class timed events. The kernel itself
// stays mechanism-agnostic — it fires each event at its virtual time and
// hands it to an applier owned by the layers that know what a node or a
// link is (the network, the PM2 runtime, the DSM core).
//
// Determinism contract: the plan's events are sorted by a total order
// (time, kind, node, from, to) before scheduling, so two plans containing
// the same events in any order replay bit-identically; probabilistic loss
// is driven by a PRNG seeded from the plan, never from the engine's own
// random stream.

// FaultKind enumerates the fault event kinds a plan can schedule.
type FaultKind int

const (
	// FaultNodeCrash fail-stops a node: its threads die, in-flight
	// messages to it are dropped, and pages homed on it are re-homed.
	FaultNodeCrash FaultKind = iota
	// FaultNodeRestart brings a crashed node back with cold memory.
	FaultNodeRestart
	// FaultLinkPartition cuts the directed link From->To; messages queue
	// or drop per the plan's partition policy.
	FaultLinkPartition
	// FaultLinkHeal restores the directed link From->To, releasing any
	// queued messages in FIFO order.
	FaultLinkHeal
	// FaultLinkLoss sets the directed link's message drop and duplicate
	// probabilities (DropRate / DupRate); zero rates clear the lossiness.
	FaultLinkLoss
)

// String returns the kind's canonical spelling (used in plan JSON).
func (k FaultKind) String() string {
	switch k {
	case FaultNodeCrash:
		return "crash"
	case FaultNodeRestart:
		return "restart"
	case FaultLinkPartition:
		return "partition"
	case FaultLinkHeal:
		return "heal"
	case FaultLinkLoss:
		return "loss"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// parseFaultKind is the inverse of FaultKind.String.
func parseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "crash":
		return FaultNodeCrash, nil
	case "restart":
		return FaultNodeRestart, nil
	case "partition":
		return FaultLinkPartition, nil
	case "heal":
		return FaultLinkHeal, nil
	case "loss":
		return FaultLinkLoss, nil
	default:
		return 0, fmt.Errorf("sim: unknown fault kind %q", s)
	}
}

// FaultEvent is one scheduled fault. At is an offset from the moment the
// plan is injected (plans compose with any amount of setup simulation before
// them). Node is used by the node kinds; From/To by the link kinds;
// DropRate/DupRate by FaultLinkLoss.
type FaultEvent struct {
	At   Time
	Kind FaultKind
	Node int
	From int
	To   int
	// DropRate is the probability a message on the link is dropped.
	DropRate float64
	// DupRate is the probability a message on the link is duplicated.
	DupRate float64
}

// faultEventJSON is the wire form of a FaultEvent (kind as string, times in
// nanoseconds of virtual time).
type faultEventJSON struct {
	At   int64   `json:"at"`
	Kind string  `json:"kind"`
	Node int     `json:"node,omitempty"`
	From int     `json:"from,omitempty"`
	To   int     `json:"to,omitempty"`
	Drop float64 `json:"drop_rate,omitempty"`
	Dup  float64 `json:"dup_rate,omitempty"`
}

// FaultPlan is a reproducible schedule of fault events plus the seed for
// any probabilistic decisions (message loss draws).
type FaultPlan struct {
	// Seed drives the fault layer's private PRNG. Zero means 1.
	Seed int64 `json:"seed"`
	// Events is the declarative schedule. Order does not matter: events
	// are sorted by (At, Kind, Node, From, To) before scheduling.
	Events []FaultEvent `json:"events"`
}

// MarshalJSON renders the plan with symbolic kinds.
func (p *FaultPlan) MarshalJSON() ([]byte, error) {
	type wire struct {
		Seed   int64            `json:"seed"`
		Events []faultEventJSON `json:"events"`
	}
	w := wire{Seed: p.Seed}
	for _, ev := range p.Events {
		w.Events = append(w.Events, faultEventJSON{
			At: int64(ev.At), Kind: ev.Kind.String(),
			Node: ev.Node, From: ev.From, To: ev.To,
			Drop: ev.DropRate, Dup: ev.DupRate,
		})
	}
	return json.Marshal(&w)
}

// UnmarshalJSON parses the symbolic-kind wire form.
func (p *FaultPlan) UnmarshalJSON(data []byte) error {
	type wire struct {
		Seed   int64            `json:"seed"`
		Events []faultEventJSON `json:"events"`
	}
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	p.Seed = w.Seed
	p.Events = nil
	for _, ev := range w.Events {
		kind, err := parseFaultKind(ev.Kind)
		if err != nil {
			return err
		}
		p.Events = append(p.Events, FaultEvent{
			At: Time(ev.At), Kind: kind,
			Node: ev.Node, From: ev.From, To: ev.To,
			DropRate: ev.Drop, DupRate: ev.Dup,
		})
	}
	return nil
}

// LoadFaultPlan reads a plan from a JSON file and validates it; malformed
// plans (negative times, restarts of never-crashed nodes, out-of-range loss
// rates) are rejected with a descriptive error instead of misbehaving later.
func LoadFaultPlan(path string) (*FaultPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p FaultPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("sim: fault plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: fault plan %s: %w", path, err)
	}
	return &p, nil
}

// Save writes the plan to a JSON file in the symbolic wire form that
// LoadFaultPlan reads back. The plan is validated first so a bad schedule
// is caught at save time, not on the machine that loads it.
func (p *FaultPlan) Save(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate checks the plan for schedules that cannot mean anything sensible:
// negative times or node ids, unknown kinds, loss rates outside [0,1],
// self-links, restarting a node that is not crashed, or crashing a node
// twice without a restart in between. Events are checked in canonical
// injection order, so the crash/restart pairing reflects what would actually
// be applied.
func (p *FaultPlan) Validate() error {
	crashed := make(map[int]bool)
	for i, ev := range p.sorted() {
		if ev.At < 0 {
			return fmt.Errorf("sim: fault plan event %d (%s): negative time %d", i, ev.Kind, int64(ev.At))
		}
		switch ev.Kind {
		case FaultNodeCrash:
			if ev.Node < 0 {
				return fmt.Errorf("sim: fault plan event %d: crash of negative node %d", i, ev.Node)
			}
			if crashed[ev.Node] {
				return fmt.Errorf("sim: fault plan event %d: node %d crashed at t=%v while already crashed (missing restart)", i, ev.Node, ev.At)
			}
			crashed[ev.Node] = true
		case FaultNodeRestart:
			if ev.Node < 0 {
				return fmt.Errorf("sim: fault plan event %d: restart of negative node %d", i, ev.Node)
			}
			if !crashed[ev.Node] {
				return fmt.Errorf("sim: fault plan event %d: restart of node %d at t=%v before any crash", i, ev.Node, ev.At)
			}
			crashed[ev.Node] = false
		case FaultLinkPartition, FaultLinkHeal:
			if ev.From < 0 || ev.To < 0 {
				return fmt.Errorf("sim: fault plan event %d (%s): negative link endpoint %d->%d", i, ev.Kind, ev.From, ev.To)
			}
			if ev.From == ev.To {
				return fmt.Errorf("sim: fault plan event %d (%s): self-link %d->%d", i, ev.Kind, ev.From, ev.To)
			}
		case FaultLinkLoss:
			if ev.From < 0 || ev.To < 0 {
				return fmt.Errorf("sim: fault plan event %d (loss): negative link endpoint %d->%d", i, ev.From, ev.To)
			}
			if ev.DropRate < 0 || ev.DropRate > 1 {
				return fmt.Errorf("sim: fault plan event %d: drop rate %v outside [0,1]", i, ev.DropRate)
			}
			if ev.DupRate < 0 || ev.DupRate > 1 {
				return fmt.Errorf("sim: fault plan event %d: dup rate %v outside [0,1]", i, ev.DupRate)
			}
		default:
			return fmt.Errorf("sim: fault plan event %d: unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Crash appends a node-crash event and returns the plan for chaining.
func (p *FaultPlan) Crash(at Time, node int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultNodeCrash, Node: node})
	return p
}

// Restart appends a node-restart event.
func (p *FaultPlan) Restart(at Time, node int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultNodeRestart, Node: node})
	return p
}

// Partition appends a bidirectional partition of the (a,b) node pair.
func (p *FaultPlan) Partition(at Time, a, b int) *FaultPlan {
	p.Events = append(p.Events,
		FaultEvent{At: at, Kind: FaultLinkPartition, From: a, To: b},
		FaultEvent{At: at, Kind: FaultLinkPartition, From: b, To: a})
	return p
}

// Heal appends a bidirectional heal of the (a,b) node pair.
func (p *FaultPlan) Heal(at Time, a, b int) *FaultPlan {
	p.Events = append(p.Events,
		FaultEvent{At: at, Kind: FaultLinkHeal, From: a, To: b},
		FaultEvent{At: at, Kind: FaultLinkHeal, From: b, To: a})
	return p
}

// Loss appends a directed-link loss-rate change.
func (p *FaultPlan) Loss(at Time, from, to int, dropRate, dupRate float64) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{
		At: at, Kind: FaultLinkLoss, From: from, To: to,
		DropRate: dropRate, DupRate: dupRate,
	})
	return p
}

// sorted returns the plan's events in the canonical total order. The order
// is what makes replay independent of the order events were added in:
// same-time events apply in (kind, node, from, to) order, restarts after
// crashes, heals after partitions.
func (p *FaultPlan) sorted() []FaultEvent {
	evs := append([]FaultEvent(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return evs
}

// InjectFaults schedules every event of the plan on the engine, in canonical
// order, at now + event.At, handing each to apply at its virtual time. apply
// runs in engine context (no proc holds the token), so it may mutate
// simulation state freely but must not block.
func (e *Engine) InjectFaults(plan *FaultPlan, apply func(FaultEvent)) {
	if plan == nil || apply == nil {
		return
	}
	base := e.now
	for _, ev := range plan.sorted() {
		ev := ev
		e.Schedule(base.Add(Duration(ev.At)), func() { apply(ev) })
	}
}

// GenerateMTBFPlan builds a crash/restart plan from an exponential failure
// model: each non-protected node fails with the given mean time between
// failures over [0, horizon) and restarts after repair. The plan is a pure
// function of its arguments (seeded PRNG), so the same parameters always
// produce the same schedule.
func GenerateMTBFPlan(seed int64, nodes int, horizon Time, mtbf, repair Duration, protected ...int) *FaultPlan {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	prot := make(map[int]bool, len(protected))
	for _, n := range protected {
		prot[n] = true
	}
	plan := &FaultPlan{Seed: seed}
	for n := 0; n < nodes; n++ {
		// Draw every node's failure sequence even for protected nodes, so
		// protecting a node does not shift the other nodes' schedules.
		t := Time(0)
		for {
			gap := Duration(rng.ExpFloat64() * float64(mtbf))
			t = t.Add(gap)
			if t >= horizon {
				break
			}
			if !prot[n] {
				plan.Crash(t, n)
				plan.Restart(t.Add(repair), n)
			}
			t = t.Add(repair)
		}
	}
	return plan
}
