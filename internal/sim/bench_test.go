package sim

import "testing"

// The kernel's hot-path contract: scheduling and firing wake records
// allocates nothing. go test -bench . -benchmem must show 0 allocs/op for
// the three benchmarks below (a handful of warm-up allocations — bucket
// rings, queue growth — amortize to zero over the run).

// BenchmarkAdvanceSelfWake measures the uncontended Advance cycle: the proc
// schedules its own wake, drives the queue, finds its own record and keeps
// running — zero goroutine switches, zero allocations.
func BenchmarkAdvanceSelfWake(b *testing.B) {
	e := NewEngine(1)
	e.Go("w", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWakeHandoff measures the cross-proc wake: two procs ping-pong
// through channels, so every iteration is a park, an unpark wake record and
// a direct goroutine handoff.
func BenchmarkWakeHandoff(b *testing.B) {
	e := NewEngine(1)
	ping, pong := new(Chan), new(Chan)
	token := new(int) // a pointer payload boxes without allocating
	e.Go("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Push(token)
			pong.Recv(p)
		}
	})
	e.Go("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Push(token)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulePush measures the typed message-delivery path the network
// layer uses: a push record per send, drained by a blocked receiver.
func BenchmarkSchedulePush(b *testing.B) {
	e := NewEngine(1)
	ch := new(Chan)
	payload := new(int)
	e.Go("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ch.Recv(p)
		}
	})
	e.Go("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			e.SchedulePush(e.Now().Add(Microsecond), ch, payload)
			p.Advance(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
