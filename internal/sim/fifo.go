package sim

// fifo is a head-indexed FIFO ring: dequeue advances head instead of
// re-slicing, and enqueue compacts the live region back to the front once
// the backing array fills, so a queue at steady state recycles one buffer
// instead of leaking capacity through the `q = q[1:]` idiom. Dequeued and
// compacted-over slots are zeroed so the GC can reclaim what they
// referenced. It backs every queue on the kernel's hot paths: event
// buckets, the wait queues of the synchronization primitives, and Chan.
type fifo[T any] struct {
	q    []T
	head int
}

func (f *fifo[T]) len() int { return len(f.q) - f.head }

func (f *fifo[T]) push(v T) {
	if f.head > 0 && len(f.q) == cap(f.q) {
		var zero T
		n := copy(f.q, f.q[f.head:])
		for i := n; i < len(f.q); i++ {
			f.q[i] = zero
		}
		f.q = f.q[:n]
		f.head = 0
	}
	f.q = append(f.q, v)
}

func (f *fifo[T]) pop() T {
	var zero T
	v := f.q[f.head]
	f.q[f.head] = zero
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	return v
}

// drain pops every element in FIFO order and hands it to fn.
func (f *fifo[T]) drain(fn func(T)) {
	for f.len() > 0 {
		fn(f.pop())
	}
}

// removeFunc deletes the first element matching pred, preserving FIFO order
// of the rest, and reports whether one was removed. It is O(n) — used only
// on the rare timeout/fault paths, never on the kernel's hot paths.
func (f *fifo[T]) removeFunc(pred func(T) bool) bool {
	for i := f.head; i < len(f.q); i++ {
		if !pred(f.q[i]) {
			continue
		}
		copy(f.q[i:], f.q[i+1:])
		var zero T
		f.q[len(f.q)-1] = zero
		f.q = f.q[:len(f.q)-1]
		if f.head == len(f.q) {
			f.q = f.q[:0]
			f.head = 0
		}
		return true
	}
	return false
}
