package sim

import "testing"

// An early signal must retire the deadline record: a timer left in the
// calendar by a wait that was signalled just before its deadline must not
// fire into the proc's next wait on the same condition. With the stale
// record live, the second wait here would return true ("signalled") at the
// first wait's deadline without any signal having been sent.
func TestCondWaitTimeoutEarlySignalRetiresTimer(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := NewCond(&m)
	var firstOK, secondOK bool
	var secondAt Time
	e.Go("waiter", func(p *Proc) {
		m.Lock(p)
		firstOK = c.WaitTimeout(p, 100*Microsecond)
		secondOK = c.WaitTimeout(p, 1000*Microsecond)
		secondAt = p.Now()
		m.Unlock(p)
	})
	e.Go("signaler", func(p *Proc) {
		p.Advance(99 * Microsecond) // just before the first deadline
		m.Lock(p)
		c.Signal()
		m.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !firstOK {
		t.Fatal("first wait reported timeout despite signal before deadline")
	}
	if secondOK {
		t.Fatal("second wait reported a signal that was never sent (stale timer fired)")
	}
	if want := Time(99 * Microsecond).Add(1000 * Microsecond); secondAt != want {
		t.Fatalf("second wait ended at %v, want its own deadline %v", secondAt, want)
	}
}

// A deadline record for a proc killed mid-wait must be inert when it fires:
// it must neither unpark the dead proc nor disturb the rest of the run.
func TestCondWaitTimeoutKilledWaiter(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := NewCond(&m)
	var w *Proc
	returned := false
	e.Go("waiter", func(p *Proc) {
		w = p
		m.Lock(p)
		c.WaitTimeout(p, 100*Microsecond)
		returned = true
	})
	e.Go("killer", func(p *Proc) {
		p.Advance(50 * Microsecond)
		w.Kill()
		p.Advance(100 * Microsecond) // outlive the stale deadline record
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if returned {
		t.Fatal("killed waiter resumed past its timed wait")
	}
}

// A message delivered just before the deadline must not leave a timer that
// later yanks the receiver out of the channel's FIFO. With the stale record
// live, receiver A is removed and re-queued behind B when the old timer
// fires, so the next message is misdelivered to B.
func TestChanRecvTimeoutEarlyDeliveryKeepsFIFO(t *testing.T) {
	e := NewEngine(1)
	var ch Chan
	var aFirst string
	var aSecond, bGot interface{}
	var aOK bool
	var aAt Time
	e.Go("A", func(p *Proc) {
		v, ok := ch.RecvTimeout(p, 100*Microsecond)
		if ok {
			aFirst = v.(string)
		}
		aSecond, aOK = ch.RecvTimeout(p, 1000*Microsecond)
		aAt = p.Now()
	})
	// B queues after A's second receive but before the stale deadline.
	e.Spawn("B", Time(99*Microsecond)+500, func(p *Proc) {
		bGot = ch.Recv(p)
	})
	e.Schedule(Time(99*Microsecond), func() { ch.Push("m1") })
	e.Schedule(Time(200*Microsecond), func() { ch.Push("m2") })
	e.Schedule(Time(300*Microsecond), func() { ch.Push("m3") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if aFirst != "m1" {
		t.Fatalf("A's first receive = %q, want m1", aFirst)
	}
	if !aOK || aSecond != "m2" {
		t.Fatalf("A's second receive = %v, %v; want m2 (FIFO position lost to stale timer)", aSecond, aOK)
	}
	if aAt != Time(200*Microsecond) {
		t.Fatalf("A's second receive completed at %v, want 200us", aAt)
	}
	if bGot != "m3" {
		t.Fatalf("B received %v, want m3", bGot)
	}
}

// Heavy reuse: one waiter re-arms a timed wait hundreds of times while a
// signaler lands each signal just before the deadline, interleaved with
// rounds that genuinely time out. A true return with no signal outstanding
// means a stale deadline record fired into a later wait. Run under -race in
// CI, this also checks the timer callback's accesses are properly serialized.
func TestCondWaitTimeoutHeavyReuse(t *testing.T) {
	e := NewEngine(11)
	var m Mutex
	c := NewCond(&m)
	const rounds = 300
	ready := 0
	badWakes := 0
	timeouts := 0
	e.Go("waiter", func(p *Proc) {
		m.Lock(p)
		for i := 0; i < rounds; i++ {
			if c.WaitTimeout(p, 100*Microsecond) {
				if ready == 0 {
					badWakes++
				} else {
					ready--
				}
			} else {
				timeouts++
			}
		}
		m.Unlock(p)
	})
	e.Go("signaler", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			if i%4 == 3 {
				p.Advance(150 * Microsecond) // let this round time out
				continue
			}
			p.Advance(99 * Microsecond) // just before the waiter's deadline
			m.Lock(p)
			ready++
			c.Signal()
			m.Unlock(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if badWakes != 0 {
		t.Fatalf("%d wakes reported a signal that was never sent", badWakes)
	}
	if timeouts == 0 {
		t.Fatal("expected some rounds to time out; scenario lost its teeth")
	}
}

// Same reuse pressure on the channel side: per-request deadlines where most
// messages arrive just before the deadline. Every reported timeout must land
// exactly at arm-time + d, and message accounting must conserve.
func TestChanRecvTimeoutHeavyReuse(t *testing.T) {
	e := NewEngine(23)
	var ch Chan
	const rounds = 300
	received, timeouts := 0, 0
	e.Go("server", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			start := p.Now()
			_, ok := ch.RecvTimeout(p, 100*Microsecond)
			if ok {
				received++
			} else {
				timeouts++
				if p.Now() != start.Add(100*Microsecond) {
					t.Errorf("round %d: timeout at %v, want %v", i, p.Now(), start.Add(100*Microsecond))
				}
			}
		}
	})
	e.Go("client", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			if i%3 == 2 {
				p.Advance(180 * Microsecond) // skip a beat: server times out
				continue
			}
			p.Advance(99 * Microsecond)
			ch.Push(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if received+timeouts != rounds {
		t.Fatalf("received %d + timeouts %d != %d rounds", received, timeouts, rounds)
	}
	if received == 0 || timeouts == 0 {
		t.Fatalf("degenerate mix: received=%d timeouts=%d", received, timeouts)
	}
}
