package sim

import (
	"encoding/json"
	"testing"
)

// TestFaultPlanCanonicalOrder: plans containing the same events in any
// insertion order schedule identically.
func TestFaultPlanCanonicalOrder(t *testing.T) {
	a := (&FaultPlan{Seed: 1}).Crash(10, 2).Restart(20, 2).Partition(10, 0, 1)
	b := &FaultPlan{Seed: 1}
	b.Partition(10, 0, 1)
	b.Restart(20, 2)
	b.Crash(10, 2)
	fire := func(p *FaultPlan) []FaultEvent {
		eng := NewEngine(1)
		var got []FaultEvent
		eng.InjectFaults(p, func(ev FaultEvent) { got = append(got, ev) })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	ga, gb := fire(a), fire(b)
	if len(ga) != len(gb) {
		t.Fatalf("event counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("event %d: %+v vs %+v", i, ga[i], gb[i])
		}
	}
}

// TestFaultPlanJSONRoundTrip: the wire form preserves every field and the
// symbolic kinds parse back.
func TestFaultPlanJSONRoundTrip(t *testing.T) {
	p := (&FaultPlan{Seed: 9}).Crash(5, 1).Restart(15, 1).
		Partition(7, 0, 2).Heal(9, 0, 2).Loss(11, 2, 0, 0.25, 0.125)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q FaultPlan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Seed != p.Seed || len(q.Events) != len(p.Events) {
		t.Fatalf("round trip lost structure: %+v", q)
	}
	for i := range p.Events {
		if p.Events[i] != q.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, p.Events[i], q.Events[i])
		}
	}
}

// TestKillParkedProc: killing a parked proc ends the run cleanly — its wake
// records are skipped and it no longer counts as live.
func TestKillParkedProc(t *testing.T) {
	eng := NewEngine(1)
	victim := eng.Go("victim", func(p *Proc) {
		p.Park("forever")
		t.Error("killed proc resumed")
	})
	eng.Go("killer", func(p *Proc) {
		p.Advance(10)
		victim.Kill()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run after kill: %v", err)
	}
	if !victim.Dead() {
		t.Fatal("victim not dead")
	}
}

// TestKillReleasesSyncPrimitives: dead procs queued on a mutex, semaphore or
// channel are skipped, so the resource reaches the next live waiter.
func TestKillReleasesSyncPrimitives(t *testing.T) {
	eng := NewEngine(1)
	var mu Mutex
	sem := NewSemaphore(1)
	ch := new(Chan)
	gotLock, gotSem, gotMsg := false, false, false

	eng.Go("holder", func(p *Proc) {
		mu.Lock(p)
		sem.Acquire(p)
		p.Advance(50) // deadMu/deadSem/deadCh queue behind
		mu.Unlock(p)
		sem.Release()
		ch.Push("msg")
	})
	var deadMu, deadSem, deadCh *Proc
	deadMu = eng.Go("deadMu", func(p *Proc) { p.Advance(5); mu.Lock(p); t.Error("dead proc got mutex") })
	deadSem = eng.Go("deadSem", func(p *Proc) { p.Advance(5); sem.Acquire(p); t.Error("dead proc got unit") })
	deadCh = eng.Go("deadCh", func(p *Proc) { p.Advance(5); ch.Recv(p); t.Error("dead proc got message") })

	eng.Go("live", func(p *Proc) {
		p.Advance(20) // queue after the doomed procs
		mu.Lock(p)
		gotLock = true
		mu.Unlock(p)
		sem.Acquire(p)
		gotSem = true
		sem.Release()
		if v := ch.Recv(p); v == "msg" {
			gotMsg = true
		}
	})
	eng.Go("killer", func(p *Proc) {
		p.Advance(30) // after everyone queued, before holder releases
		deadMu.Kill()
		deadSem.Kill()
		deadCh.Kill()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotLock || !gotSem || !gotMsg {
		t.Fatalf("live proc starved: lock=%v sem=%v msg=%v", gotLock, gotSem, gotMsg)
	}
}

// TestCondWaitTimeout: a signalled WaitTimeout reports true; an expired one
// reports false after the deadline.
func TestCondWaitTimeout(t *testing.T) {
	eng := NewEngine(1)
	var mu Mutex
	cond := NewCond(&mu)
	var signalled, expired bool
	var expiredAt Time
	eng.Go("waiter", func(p *Proc) {
		mu.Lock(p)
		signalled = cond.WaitTimeout(p, 100)
		expired = !cond.WaitTimeout(p, 40)
		expiredAt = p.Now()
		mu.Unlock(p)
	})
	eng.Go("signaller", func(p *Proc) {
		p.Advance(10)
		cond.Signal()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !signalled {
		t.Fatal("signalled wait reported timeout")
	}
	if !expired {
		t.Fatal("expired wait reported signal")
	}
	if expiredAt != 50 { // signalled at t=10, second wait expires 40 later
		t.Fatalf("timeout fired at %v, want 50", expiredAt)
	}
}

// TestChanRecvTimeout: delivery within the deadline wins; an empty channel
// times out at the deadline.
func TestChanRecvTimeout(t *testing.T) {
	eng := NewEngine(1)
	ch := new(Chan)
	var v interface{}
	var ok, ok2 bool
	eng.Go("recv", func(p *Proc) {
		v, ok = ch.RecvTimeout(p, 100)
		_, ok2 = ch.RecvTimeout(p, 30)
	})
	eng.Go("send", func(p *Proc) {
		p.Advance(20)
		ch.Push(42)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || v != 42 {
		t.Fatalf("RecvTimeout = (%v, %v), want (42, true)", v, ok)
	}
	if ok2 {
		t.Fatal("empty channel did not time out")
	}
}

// TestMTBFPlanShiftInvariance: protecting a node removes its events without
// shifting any other node's failure schedule.
func TestMTBFPlanShiftInvariance(t *testing.T) {
	full := GenerateMTBFPlan(5, 4, 1_000_000_000, 100_000_000, 10_000_000)
	prot := GenerateMTBFPlan(5, 4, 1_000_000_000, 100_000_000, 10_000_000, 2)
	byNode := func(p *FaultPlan, n int) []FaultEvent {
		var out []FaultEvent
		for _, ev := range p.Events {
			if ev.Node == n {
				out = append(out, ev)
			}
		}
		return out
	}
	for n := 0; n < 4; n++ {
		a, b := byNode(full, n), byNode(prot, n)
		if n == 2 {
			if len(b) != 0 {
				t.Fatalf("protected node 2 has %d events", len(b))
			}
			continue
		}
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d events — protection shifted other nodes", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d event %d shifted: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
}
