package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Sharded execution: a ShardedEngine runs one calendar event loop per
// topology cluster on its own goroutine, synchronized conservatively in the
// Chandy–Misra/Bryant style. The design constraints, in order:
//
//  1. shards=1 is bit-identical to the legacy Engine — a one-shard
//     ShardedEngine holds a plain Engine with no shard controller attached,
//     so every existing golden replays unchanged;
//  2. for a fixed shard count N the schedule is deterministic run-to-run,
//     independent of how the host scheduler interleaves the shard
//     goroutines;
//  3. no cross-shard contention on the hot paths: each shard owns its
//     calendar, bucket freelist, clock, PRNG and proc set, and only the
//     cross-shard mailbox and the synchronization plane are shared.
//
// # Synchronization protocol
//
// Every ordered shard pair (i, j) has a lookahead L[i][j] > 0: a message a
// proc of shard i sends at virtual time t arrives at shard j no earlier
// than t + L[i][j]. In the DSM stack the lookahead is the minimum
// cross-cluster link latency — the slow backbone of a Hierarchical topology
// is exactly the slack a conservative scheme needs.
//
// Each shard i posts a monotone lower bound lb[i]: a promise that every
// event it will ever send to shard j from now on arrives no earlier than
// lb[i] + L[i][j]. From the other shards' promises it derives its input
// horizon
//
//	H(i) = min over j != i of lb[j] + L[j][i]
//
// and may freely execute every event (local or already received) strictly
// below H(i). Between drives it re-posts lb[i] = min(next[i], H(i)), where
// next[i] is its earliest pending event: posting its own horizon when idle
// is the shared-memory equivalent of a CMB null message, and the posts
// ripple through the lb vector until someone's next event falls under their
// horizon.
//
// Null-message creep (horizons advancing in lookahead-sized steps toward a
// far-future event) is cut short by a quiescence grant: when every shard is
// blocked the mutex gives a consistent global snapshot, and the last shard
// to block jumps each lb to min(next[k], min over j != k of next[j] +
// D[j][k]), where D is the all-pairs shortest path over the lookahead
// matrix. At least the globally earliest shard becomes runnable, so the
// system never livelocks; if instead every queue is empty the run is
// complete and shards with live procs report a deadlock exactly like the
// legacy engine. A shard blocked only on a remote horizon is *not* a
// deadlock — it wakes as soon as its neighbours' bounds pass its next
// event.
//
// # Determinism
//
// Remote events never enter the receiving shard's calendar: they would pick
// up local sequence numbers that depend on *when* (in wall-clock terms)
// the mailbox was drained. They sit in a separate pending heap ordered by
// (time, source shard, per-source sequence) and are merged at pop time,
// ties at equal time resolved local-stream-first. Which events are
// *admissible* at a pop is horizon-independent: anything that arrives
// after a horizon was computed is, by the lookahead promise, at or above
// that horizon, so the merged pop order — and therefore every per-shard
// schedule — is a pure function of the simulation, not of host timing.
type ShardedEngine struct {
	shards []*Engine
	look   [][]Duration // direct lookahead, [src][dst]
	dist   [][]Duration // all-pairs min-path lookahead (quiescence grant)

	mu       sync.Mutex
	cond     *sync.Cond
	lb       []Time // per shard: posted send lower bound (monotone)
	next     []Time // per shard: earliest pending event, maxTime if none
	waiting  []bool // per shard: blocked on its horizon
	nwaiting int
	inbox    [][]remoteEvent // per destination shard
	stopping bool
	done     bool
	syncHook func(shard int) // test instrumentation; see SetSyncHook
}

// maxTime is the "no pending event" sentinel.
const maxTime = Time(math.MaxInt64)

// remoteEvent is one cross-shard event in flight: a Chan push or a closure,
// stamped with its virtual fire time and a (source shard, per-source
// sequence) pair that makes the merge order total and deterministic.
type remoteEvent struct {
	t       Time
	src     int
	seq     uint64
	ch      *Chan
	payload interface{}
	fn      func()
}

// shardCtl is the per-shard view of the sharded engine, attached to an
// Engine via its sh field. limit and the pending heap are only touched by
// whichever goroutine holds that shard's simulation token, so they need no
// locking; the shared synchronization plane lives in the ShardedEngine.
type shardCtl struct {
	se      *ShardedEngine
	id      int
	limit   Time          // exclusive bound on admissible event times
	pending []remoteEvent // min-heap by (t, src, seq)
	sendSeq uint64        // monotone per-source stamp for outgoing events
}

// NewShardedEngine creates n shard engines seeded deterministically from
// seed (shard 0 uses seed itself) with a uniform cross-shard lookahead.
// n must be >= 1; lookahead must be > 0 when n > 1. Per-pair lookaheads can
// then be tightened or relaxed with SetLookahead. A one-shard engine is the
// legacy Engine verbatim: no shard controller is attached, so its replay is
// bit-identical to NewEngine(seed).
func NewShardedEngine(seed int64, n int, lookahead Duration) *ShardedEngine {
	if n < 1 {
		panic("sim: sharded engine needs at least 1 shard")
	}
	if n > 1 && lookahead <= 0 {
		panic("sim: sharded engine needs a positive cross-shard lookahead")
	}
	se := &ShardedEngine{
		shards:  make([]*Engine, n),
		look:    make([][]Duration, n),
		lb:      make([]Time, n),
		next:    make([]Time, n),
		waiting: make([]bool, n),
		inbox:   make([][]remoteEvent, n),
	}
	se.cond = sync.NewCond(&se.mu)
	for i := 0; i < n; i++ {
		// Derived seeds: shard 0 replays exactly like NewEngine(seed);
		// the golden-ratio stride decorrelates the other shards' streams.
		e := NewEngine(seed + int64(i)*0x9E3779B9)
		if n > 1 {
			e.sh = &shardCtl{se: se, id: i}
		}
		se.shards[i] = e
		se.look[i] = make([]Duration, n)
		for j := 0; j < n; j++ {
			if i != j {
				se.look[i][j] = lookahead
			}
		}
	}
	return se
}

// SetLookahead sets the promise for the directed shard pair src -> dst:
// every event sent from src at time t arrives at dst no earlier than t + d.
// d must be > 0; src == dst is ignored. Call before Run.
func (se *ShardedEngine) SetLookahead(src, dst int, d Duration) {
	if src == dst {
		return
	}
	if d <= 0 {
		panic(fmt.Sprintf("sim: lookahead %v for shard pair (%d,%d) must be positive", d, src, dst))
	}
	se.look[src][dst] = d
}

// Lookahead reports the direct lookahead for the shard pair src -> dst.
func (se *ShardedEngine) Lookahead(src, dst int) Duration { return se.look[src][dst] }

// Shards reports the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard i's engine. Upper layers schedule each simulated
// node's work on its owning shard's engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Now returns the maximum of the shard clocks — after Run completes, the
// virtual time the whole simulation reached.
func (se *ShardedEngine) Now() Time {
	var t Time
	for _, e := range se.shards {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Events reports the total events fired across all shards.
func (se *ShardedEngine) Events() uint64 {
	var n uint64
	for _, e := range se.shards {
		n += e.nevents
	}
	return n
}

// Stop aborts a sharded run: every shard stops after the events it is
// currently committed to. Unlike the single-threaded engine, shards that
// were concurrently granted a horizon may fire events past the moment of
// the call, so the exact tail of a stopped run is not replay-stable —
// workloads that need bit-stable traces should terminate by draining.
func (se *ShardedEngine) Stop() {
	if len(se.shards) == 1 {
		se.shards[0].Stop()
		return
	}
	se.mu.Lock()
	se.stopping = true
	se.cond.Broadcast()
	se.mu.Unlock()
}

// SetSyncHook installs fn, called by each shard controller (with its shard
// id, outside the synchronization lock) once per synchronization round.
// It exists for the determinism property tests, which inject random
// wall-clock delays to shuffle cross-shard arrival order; production runs
// leave it nil.
func (se *ShardedEngine) SetSyncHook(fn func(shard int)) { se.syncHook = fn }

// InjectFaults schedules every event of the plan on every shard, in
// canonical order, at that shard's now + event.At. Each shard applies the
// event at the same virtual time in its own stream, which is what keeps a
// crash consistent: the owning shard kills the node while the other shards
// stop routing traffic to it from the same virtual instant. apply runs in
// the shard's engine context.
func (se *ShardedEngine) InjectFaults(plan *FaultPlan, apply func(shard int, ev FaultEvent)) {
	if plan == nil || apply == nil {
		return
	}
	for i, e := range se.shards {
		i := i
		e.InjectFaults(plan, func(ev FaultEvent) { apply(i, ev) })
	}
}

// satAdd is t + d saturating at maxTime (idle bounds stay idle).
func satAdd(t Time, d Duration) Time {
	s := t.Add(d)
	if s < t {
		return maxTime
	}
	return s
}

// computeDist closes the lookahead matrix over paths (Floyd–Warshall): a
// chain of cross-shard hops accumulates at least the per-edge lookaheads,
// so the shortest path D[j][i] bounds how soon *any* causal chain starting
// at shard j can deliver to shard i. The quiescence grant uses D to jump
// horizons directly to the globally safe bound instead of creeping there
// one direct-edge lookahead at a time.
func (se *ShardedEngine) computeDist() {
	n := len(se.shards)
	const inf = Duration(math.MaxInt64)
	d := make([][]Duration, n)
	for i := 0; i < n; i++ {
		d[i] = make([]Duration, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				d[i][j] = 0
			case se.look[i][j] > 0:
				d[i][j] = se.look[i][j]
			default:
				d[i][j] = inf
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] == inf {
				continue
			}
			for j := 0; j < n; j++ {
				if d[k][j] == inf {
					continue
				}
				if s := d[i][k] + d[k][j]; s < d[i][j] {
					d[i][j] = s
				}
			}
		}
	}
	se.dist = d
}

// Run drives all shards to completion and aggregates their termination
// state. With one shard it is exactly Engine.Run. With several, each shard
// runs its controller loop on its own goroutine; Run returns nil when every
// non-daemon proc finished (or any shard was stopped), else a
// *DeadlockError listing the blocked procs of every shard, shard-tagged.
func (se *ShardedEngine) Run() error {
	if len(se.shards) == 1 {
		return se.shards[0].Run()
	}
	se.computeDist()
	se.mu.Lock()
	se.done = false
	for i := range se.shards {
		se.next[i] = 0
		// The bounds from the previous phase are stale — a completed Run
		// leaves every lb saturated at maxTime, which would hand each shard
		// an unbounded horizon before its peers post real bounds. Restart
		// the promise protocol from zero; lb=0 is always a safe promise.
		se.lb[i] = 0
		se.waiting[i] = false
	}
	se.nwaiting = 0
	se.mu.Unlock()

	var wg sync.WaitGroup
	for i := range se.shards {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			se.runShard(i)
		}()
	}
	wg.Wait()

	stopped := false
	nlive := 0
	var at Time
	var blocked []string
	for si, e := range se.shards {
		if e.stopped {
			stopped = true
		}
		nlive += e.nlive
		if e.now > at {
			at = e.now
		}
		for p, reason := range e.parked {
			if p.daemon {
				continue
			}
			blocked = append(blocked, fmt.Sprintf("shard%d:%s (%s)", si, p.name, reason))
		}
	}
	if nlive > 0 && !stopped {
		sort.Strings(blocked)
		return &DeadlockError{Now: at, Blocked: blocked}
	}
	return nil
}

// runShard is one shard's controller loop: synchronize (drain mailbox, post
// bounds, compute horizon), then either drive the shard's event loop up to
// the horizon or block until a neighbour's bound moves.
func (se *ShardedEngine) runShard(i int) {
	e := se.shards[i]
	sh := e.sh
	n := len(se.shards)
	se.mu.Lock()
	for {
		if se.done {
			break
		}
		if se.stopping {
			e.stopped = true
		}
		// Drain the mailbox into the pending heap and refresh next[i].
		if in := se.inbox[i]; len(in) > 0 {
			for _, rev := range in {
				sh.pushPending(rev)
			}
			se.inbox[i] = in[:0]
		}
		nxt := maxTime
		if e.nqueued > 0 {
			nxt = e.queue[0].t
		}
		if len(sh.pending) > 0 && sh.pending[0].t < nxt {
			nxt = sh.pending[0].t
		}
		se.next[i] = nxt
		if e.stopped {
			// Propagate the stop so no shard waits on our bound forever.
			se.stopping = true
			se.cond.Broadcast()
			break
		}
		h := se.horizonLocked(i)
		if lb := minTime(nxt, h); lb > se.lb[i] {
			se.lb[i] = lb
			se.cond.Broadcast()
		}
		if nxt < h {
			se.mu.Unlock()
			if se.syncHook != nil {
				se.syncHook(i)
			}
			sh.limit = h
			if e.drive(nil) == driveHanded {
				<-e.park
			}
			se.mu.Lock()
			continue
		}
		// Blocked on the horizon. If everyone else is too, the lock gives a
		// consistent snapshot: either the whole run is complete, or the
		// quiescence grant jumps the bounds past the creep.
		if se.nwaiting == n-1 {
			if se.globalIdleLocked() {
				se.done = true
				se.cond.Broadcast()
				break
			}
			if se.grantLocked() {
				continue // our own bound may have moved; recompute
			}
		}
		se.waiting[i] = true
		se.nwaiting++
		se.cond.Wait()
		se.waiting[i] = false
		se.nwaiting--
	}
	se.mu.Unlock()
}

// horizonLocked computes shard i's input horizon from the posted bounds.
func (se *ShardedEngine) horizonLocked(i int) Time {
	h := maxTime
	for j := range se.shards {
		if j == i {
			continue
		}
		if b := satAdd(se.lb[j], se.look[j][i]); b < h {
			h = b
		}
	}
	return h
}

// globalIdleLocked reports whether the run is complete: every other shard
// blocked (the caller checked), every queue empty and every mailbox
// drained. Mailbox appends lower next[dst], so a non-empty inbox always
// shows as a finite next.
func (se *ShardedEngine) globalIdleLocked() bool {
	for j := range se.shards {
		if se.next[j] != maxTime || len(se.inbox[j]) != 0 {
			return false
		}
	}
	return true
}

// grantLocked performs the quiescence jump on a consistent snapshot (every
// shard blocked, nothing in flight): each shard's bound rises to
// min(next[k], min over j != k of next[j] + D[j][k]) — safe because any
// future event a shard sends is caused by a chain starting at some shard's
// current next event and accumulating at least the path lookahead, and
// sufficient because the globally earliest shard's own next event always
// falls under the granted horizon. Reports whether any bound moved.
func (se *ShardedEngine) grantLocked() bool {
	moved := false
	for k := range se.shards {
		g := se.next[k]
		for j := range se.shards {
			if j == k {
				continue
			}
			if b := satAdd(se.next[j], se.dist[j][k]); b < g {
				g = b
			}
		}
		if g > se.lb[k] {
			se.lb[k] = g
			moved = true
		}
	}
	if moved {
		se.cond.Broadcast()
	}
	return moved
}

// send routes a remote event from shard src to shard dst, validating the
// lookahead promise the synchronization protocol depends on. It runs on
// src's goroutine (whoever holds src's token).
func (se *ShardedEngine) send(src, dst int, rev remoteEvent) {
	e := se.shards[src]
	if min := e.now.Add(se.look[src][dst]); rev.t < min {
		panic(fmt.Sprintf(
			"sim: cross-shard event from shard %d at t=%v to shard %d at t=%v violates lookahead %v",
			src, e.now, dst, rev.t, se.look[src][dst]))
	}
	sh := e.sh
	rev.src = src
	rev.seq = sh.sendSeq
	sh.sendSeq++
	se.mu.Lock()
	se.inbox[dst] = append(se.inbox[dst], rev)
	if rev.t < se.next[dst] {
		// Keep the posted next fresh so the termination check and the
		// quiescence grant see the in-flight event.
		se.next[dst] = rev.t
	}
	if se.nwaiting > 0 {
		se.cond.Broadcast()
	}
	se.mu.Unlock()
}

// pushPending inserts rev into the pending min-heap, ordered by
// (t, src, seq) — the canonical cross-shard tie-break.
func (sh *shardCtl) pushPending(rev remoteEvent) {
	sh.pending = append(sh.pending, rev)
	q := sh.pending
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 1
		if !remoteLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// popPending removes the minimum remote event.
func (sh *shardCtl) popPending() remoteEvent {
	q := sh.pending
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = remoteEvent{}
	sh.pending = q[:n]
	q = sh.pending
	i := 0
	for {
		c := i*2 + 1
		if c >= n {
			break
		}
		if c+1 < n && remoteLess(q[c+1], q[c]) {
			c++
		}
		if !remoteLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return top
}

func remoteLess(a, b remoteEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// nextEvent merges the local calendar and the remote pending heap at pop
// time, bounded by the granted horizon. Equal-time ties go to the local
// stream: remote events never consume local sequence numbers, so the local
// replay prefix is untouched by when remote events physically arrived.
func (sh *shardCtl) nextEvent(e *Engine) (event, bool) {
	limit := sh.limit
	hasLocal := e.nqueued > 0
	var lt Time
	if hasLocal {
		lt = e.queue[0].t
	}
	if len(sh.pending) > 0 {
		if rt := sh.pending[0].t; !hasLocal || rt < lt {
			if rt >= limit {
				return event{}, false
			}
			rev := sh.popPending()
			return event{t: rev.t, ch: rev.ch, payload: rev.payload, fn: rev.fn}, true
		}
	}
	if !hasLocal || lt >= limit {
		return event{}, false
	}
	return e.pop(), true
}

// driveSharded is the sharded twin of the legacy drive loop: identical
// dispatch, but events come from the horizon-bounded two-stream merge and
// an exhausted merge returns the token to the shard controller instead of
// ending the run.
func (e *Engine) driveSharded(self *Proc) driveResult {
	sh := e.sh
	for !e.stopped {
		ev, ok := sh.nextEvent(e)
		if !ok {
			break
		}
		e.now = ev.t
		e.nevents++
		switch {
		case ev.proc != nil:
			p := ev.proc
			if p.dead {
				continue
			}
			e.cur = p
			if p == self {
				return driveSelf
			}
			p.wake <- struct{}{}
			return driveHanded
		case ev.ch != nil:
			ev.ch.Push(ev.payload)
		default:
			ev.fn()
		}
	}
	return driveDrained
}

// ShardID reports which shard of a sharded engine this engine is; a
// standalone engine is shard 0.
func (e *Engine) ShardID() int {
	if e.sh == nil {
		return 0
	}
	return e.sh.id
}

// Sharded reports whether this engine is one shard of a multi-shard
// ShardedEngine.
func (e *Engine) Sharded() bool { return e.sh != nil }

// SchedulePushShard is SchedulePush routed to the shard that owns the
// destination: local destinations (or a standalone engine) take the
// ordinary allocation-free path, remote ones become cross-shard mailbox
// events merged at (t, source shard, source sequence) order. t must respect
// the src->dst lookahead for remote destinations.
func (e *Engine) SchedulePushShard(dst int, t Time, ch *Chan, payload interface{}) {
	if e.sh == nil || dst == e.sh.id {
		e.SchedulePush(t, ch, payload)
		return
	}
	e.sh.se.send(e.sh.id, dst, remoteEvent{t: t, ch: ch, payload: payload})
}

// ScheduleShard is Schedule routed to the shard that owns the destination;
// see SchedulePushShard.
func (e *Engine) ScheduleShard(dst int, t Time, fn func()) {
	if e.sh == nil || dst == e.sh.id {
		e.Schedule(t, fn)
		return
	}
	e.sh.se.send(e.sh.id, dst, remoteEvent{t: t, fn: fn})
}

// Capture snapshots every shard's kernel at a global safe point: between Run
// calls, every shard drained (no token holder, no queued events, no live
// non-daemon procs), no remote events pending in any heap and no mailbox
// undrained. Returns one Snapshot per shard, in shard order; a one-shard
// engine returns exactly its legacy Engine capture.
func (se *ShardedEngine) Capture() ([]Snapshot, error) {
	if len(se.shards) == 1 {
		s, err := se.shards[0].Capture()
		if err != nil {
			return nil, err
		}
		return []Snapshot{s}, nil
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	for i, e := range se.shards {
		if err := e.shardQuiesced("capture", i); err != nil {
			return nil, err
		}
		if n := len(se.inbox[i]); n != 0 {
			return nil, fmt.Errorf("sim: capture: shard %d mailbox holds %d undrained cross-shard event(s)", i, n)
		}
	}
	out := make([]Snapshot, len(se.shards))
	for i, e := range se.shards {
		out[i] = e.snapshotNow()
	}
	return out, nil
}

// Restore stomps every shard's kernel to a captured global safe point. The
// engine must have the same shard count (and therefore the same derived
// seeds) as the captured one, be at a safe point itself, and — per shard —
// must not have consumed more counters or random draws than its snapshot
// records; see Engine.Restore.
func (se *ShardedEngine) Restore(ss []Snapshot) error {
	if len(ss) != len(se.shards) {
		return fmt.Errorf("sim: restore: snapshot has %d shard(s), engine has %d", len(ss), len(se.shards))
	}
	if len(se.shards) == 1 {
		return se.shards[0].Restore(ss[0])
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	for i, e := range se.shards {
		if err := e.shardQuiesced("restore", i); err != nil {
			return err
		}
		if n := len(se.inbox[i]); n != 0 {
			return fmt.Errorf("sim: restore: shard %d mailbox holds %d undrained cross-shard event(s)", i, n)
		}
	}
	for i, e := range se.shards {
		if err := e.restoreSnapshot(ss[i]); err != nil {
			return err
		}
	}
	return nil
}

// shardQuiesced is the per-shard half of the sharded safe-point check: the
// same conditions Engine.quiesced imposes, minus the blanket sharded
// rejection, plus an empty remote-pending heap.
func (e *Engine) shardQuiesced(op string, shard int) error {
	switch {
	case e.cur != nil:
		return fmt.Errorf("sim: %s: shard %d: proc %q holds the simulation token (call between Run phases)", op, shard, e.cur.name)
	case e.nqueued != 0:
		return fmt.Errorf("sim: %s: shard %d: %d event(s) still queued (queue must be drained)", op, shard, e.nqueued)
	case len(e.sh.pending) != 0:
		return fmt.Errorf("sim: %s: shard %d: %d remote event(s) pending", op, shard, len(e.sh.pending))
	case e.nlive != 0:
		return fmt.Errorf("sim: %s: shard %d: %d non-daemon proc(s) still live", op, shard, e.nlive)
	}
	return nil
}

// minTime returns the smaller of two times.
func minTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
