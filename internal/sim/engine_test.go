package sim

import (
	"fmt"
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events fired in order %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	fired := Time(-1)
	e.Schedule(100, func() {
		e.Schedule(50, func() { fired = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past-scheduled event fired at %v, want clamp to 100", fired)
	}
}

func TestAdvanceMovesClock(t *testing.T) {
	e := NewEngine(1)
	var at1, at2 Time
	e.Go("worker", func(p *Proc) {
		p.Advance(10 * Microsecond)
		at1 = p.Now()
		p.Advance(5 * Microsecond)
		at2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != Time(10*Microsecond) || at2 != Time(15*Microsecond) {
		t.Fatalf("advance times = %v, %v; want 10us, 15us", at1, at2)
	}
}

func TestNegativeAdvanceIsZero(t *testing.T) {
	e := NewEngine(1)
	e.Go("w", func(p *Proc) {
		p.Advance(-5)
		if p.Now() != 0 {
			t.Errorf("negative advance moved clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var log []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Go(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
					p.Advance(Duration(p.ID()) * Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Go("stuck", func(p *Proc) {
		p.Park("waiting forever")
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run returned %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("deadlock report lists %d procs, want 1", len(de.Blocked))
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine(1)
	var p1 *Proc
	order := []string{}
	p1 = e.Go("sleeper", func(p *Proc) {
		order = append(order, "park")
		p.Park("test")
		order = append(order, "resumed")
	})
	e.Schedule(50, func() { p1.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[1] != "resumed" {
		t.Fatalf("park/unpark order = %v", order)
	}
}

func TestStopAbortsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Go("looper", func(p *Proc) {
		for {
			count++
			if count == 5 {
				e.Stop()
			}
			p.Advance(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("loop ran %d times after Stop, want 5", count)
	}
}

func TestAdvanceOutsideSimContextPanics(t *testing.T) {
	e := NewEngine(1)
	var p *Proc
	p = e.Go("w", func(pp *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance from outside simulation context did not panic")
		}
	}()
	p.Advance(1)
}

func TestRandDeterministic(t *testing.T) {
	a := NewEngine(7).Rand().Int63()
	b := NewEngine(7).Rand().Int63()
	if a != b {
		t.Fatalf("same-seed engines produced different randoms: %d vs %d", a, b)
	}
	c := NewEngine(8).Rand().Int63()
	if a == c {
		t.Fatalf("different seeds produced identical randoms")
	}
}

func TestIdleHookFeedsWork(t *testing.T) {
	e := NewEngine(1)
	var p *Proc
	p = e.Go("w", func(pp *Proc) { pp.Park("external work") })
	calls := 0
	e.SetIdleHook(func() bool {
		calls++
		p.Unpark()
		return true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("idle hook called %d times, want 1", calls)
	}
}

func TestLiveCount(t *testing.T) {
	e := NewEngine(1)
	e.Go("a", func(p *Proc) { p.Advance(10) })
	e.Go("b", func(p *Proc) { p.Advance(20) })
	if e.Live() != 2 {
		t.Fatalf("Live = %d before run, want 2", e.Live())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d after run, want 0", e.Live())
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine(1)
	var childRan bool
	e.Go("parent", func(p *Proc) {
		p.Advance(5)
		e.Go("child", func(c *Proc) {
			childRan = true
			if c.Now() != 5 {
				t.Errorf("child started at %v, want 5", c.Now())
			}
		})
		p.Advance(5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("nested-spawned child never ran")
	}
}

func TestTimeFormatting(t *testing.T) {
	if got := Time(1500).String(); got != "1.500us" {
		t.Fatalf("Time(1500).String() = %q", got)
	}
	if got := Micros(2.5); got != 2500 {
		t.Fatalf("Micros(2.5) = %d, want 2500", got)
	}
	if d := Time(3000).Sub(Time(1000)); d != 2000 {
		t.Fatalf("Sub = %v", d)
	}
}
