package sim

import "fmt"

// procQueue is a FIFO of parked procs; the shared ring (see fifo) recycles
// its buffer, so at steady state the wait queues of the synchronization
// primitives stop allocating.
type procQueue = fifo[*Proc]

// Mutex is a FIFO mutual-exclusion lock for simulated threads. Unlike
// sync.Mutex it is strictly fair: waiters are granted the lock in arrival
// order, which keeps simulations deterministic. The zero value is unlocked.
type Mutex struct {
	owner   *Proc
	waiters procQueue
}

// Lock acquires m, blocking the calling proc until it is available. Lock is
// handoff-style: an unlocking proc passes ownership directly to the oldest
// waiter.
func (m *Mutex) Lock(p *Proc) {
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic(fmt.Sprintf("sim: proc %q locking mutex it already owns", p.name))
	}
	m.waiters.push(p)
	p.Park("mutex lock")
}

// TryLock acquires m if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner == nil {
		m.owner = p
		return true
	}
	return false
}

// Unlock releases m. It panics if p does not own the mutex. Waiters killed
// while queued are skipped, so a fault cannot strand the lock on a dead proc.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic(fmt.Sprintf("sim: proc %q unlocking mutex owned by %v", p.name, ownerName(m.owner)))
	}
	for m.waiters.len() > 0 {
		next := m.waiters.pop()
		if next.dead {
			continue
		}
		m.owner = next
		next.Unpark()
		return
	}
	m.owner = nil
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

func ownerName(p *Proc) string {
	if p == nil {
		return "<nobody>"
	}
	return p.name
}

// Cond is a condition variable associated with a Mutex, with the usual
// Wait/Signal/Broadcast contract. Waiters are woken in FIFO order.
type Cond struct {
	L       *Mutex
	waiters procQueue
}

// NewCond returns a condition variable that uses l as its lock.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically releases the lock and suspends the proc; on wakeup it
// re-acquires the lock before returning. As with sync.Cond, callers must
// re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters.push(p)
	c.L.Unlock(p)
	p.Park("cond wait")
	c.L.Lock(p)
}

// Signal wakes the oldest live waiter, if any; dead waiters are discarded
// so a signal is never consumed by a killed proc.
func (c *Cond) Signal() {
	for c.waiters.len() > 0 {
		if w := c.waiters.pop(); !w.dead {
			w.Unpark()
			return
		}
	}
}

// Broadcast wakes all live waiters.
func (c *Cond) Broadcast() {
	c.waiters.drain(func(w *Proc) {
		if !w.dead {
			w.Unpark()
		}
	})
}

// WaitTimeout is Wait with a deadline: it re-acquires the lock and returns
// true if the proc was signalled within d, false if the wait timed out.
// Like Wait, callers must re-check their predicate in a loop. A deadline
// record left in the calendar after an early signal is retired via the
// proc's timed-wait generation: when it eventually fires it is inert, so
// repeated timed waits on one condition never see spurious wakes from
// earlier waits.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool {
	timedOut := false
	gen := p.timedGen
	c.waiters.push(p)
	p.eng.After(d, func() {
		if p.timedGen != gen {
			return // wait already completed; stale record is inert
		}
		if c.waiters.removeFunc(func(w *Proc) bool { return w == p }) {
			timedOut = true
			if !p.dead {
				p.Unpark()
			}
		}
	})
	c.L.Unlock(p)
	p.Park("cond wait (timed)")
	// Retire the deadline before re-acquiring the lock: Lock may park the
	// proc on the mutex, and the still-pending record must not fire into
	// that (or any later) park.
	p.timedGen++
	c.L.Lock(p)
	return !timedOut
}

// Semaphore is a counting semaphore with FIFO wakeups. A semaphore with n
// units models a pool of n identical servers (for example the CPUs of a
// node).
type Semaphore struct {
	avail   int
	waiters procQueue
}

// NewSemaphore returns a semaphore holding n units.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one unit, blocking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 && s.waiters.len() == 0 {
		s.avail--
		return
	}
	s.waiters.push(p)
	p.Park("semaphore acquire")
}

// Release returns one unit, waking the oldest live waiter if any. A release
// with waiters present hands the unit directly to the waiter; dead waiters
// are discarded so a fault cannot leak a unit to a killed proc.
func (s *Semaphore) Release() {
	for s.waiters.len() > 0 {
		if w := s.waiters.pop(); !w.dead {
			w.Unpark()
			return
		}
	}
	s.avail++
}

// Available reports the number of free units.
func (s *Semaphore) Available() int { return s.avail }

// Barrier blocks procs until n of them have arrived, then releases them all.
// It is reusable (generation-counted), like a classic sense-reversing
// barrier.
type Barrier struct {
	n       int
	arrived int
	gen     int
	waiters procQueue
}

// NewBarrier returns a barrier for n participants. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier participant count must be >= 1")
	}
	return &Barrier{n: n}
}

// Wait blocks until n procs (including this one) have called Wait in the
// current generation. It returns true for exactly one participant per
// generation (the last arriver), which mirrors the "serial thread" idiom.
func (b *Barrier) Wait(p *Proc) bool {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.waiters.drain(func(w *Proc) { w.Unpark() })
		return true
	}
	b.waiters.push(p)
	p.Park("barrier wait")
	return false
}

// Resource is a FIFO server queue: Use(p, d) occupies the resource for d of
// virtual time, queuing behind earlier users. With capacity k it models k
// identical servers (e.g. a node with k CPUs): the DSM applications charge
// their compute phases against their node's Resource so that piling many
// threads onto one node slows them down, exactly the effect the paper's
// Figure 4 attributes to the thread-migration protocol.
type Resource struct {
	sem *Semaphore
	// busy accumulates total occupied time, for utilization reports.
	busy Duration
}

// NewResource returns a resource with capacity servers.
func NewResource(capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{sem: NewSemaphore(capacity)}
}

// Use occupies one server for d of virtual time.
func (r *Resource) Use(p *Proc, d Duration) {
	r.sem.Acquire(p)
	p.Advance(d)
	r.busy += d
	r.sem.Release()
}

// Busy reports the cumulative time servers were occupied.
func (r *Resource) Busy() Duration { return r.busy }

// Chan is an unbounded FIFO message queue with blocking receive. It is the
// building block for simulated network endpoints: senders (or engine event
// callbacks, e.g. message-delivery events) push without blocking, receivers
// block until a message arrives. The queue is a recycling ring (see fifo),
// so a drained channel reuses its buffer instead of reallocating.
type Chan struct {
	q       fifo[interface{}]
	waiters procQueue
}

// Push appends v and wakes one waiting live receiver. Push may be called
// from any simulation context, including engine event callbacks.
func (c *Chan) Push(v interface{}) {
	c.q.push(v)
	for c.waiters.len() > 0 {
		if w := c.waiters.pop(); !w.dead {
			w.Unpark()
			return
		}
	}
}

// Recv removes and returns the oldest message, blocking while the queue is
// empty.
func (c *Chan) Recv(p *Proc) interface{} {
	for c.q.len() == 0 {
		c.waiters.push(p)
		p.Park("chan recv")
	}
	return c.q.pop()
}

// RecvTimeout is Recv with a deadline: it returns (message, true) when one
// arrives within d of virtual time, or (nil, false) on timeout. The deadline
// record is retired (made inert) when the call returns, so a message arriving
// just before the deadline cannot leave behind a timer that later fires into
// a subsequent wait by the same proc. Safe for repeated per-request deadlines
// on shared channels.
func (c *Chan) RecvTimeout(p *Proc, d Duration) (interface{}, bool) {
	if c.q.len() > 0 {
		return c.q.pop(), true
	}
	timedOut := false
	gen := p.timedGen
	c.waiters.push(p)
	p.eng.After(d, func() {
		if p.timedGen != gen {
			return // receive already completed; stale record is inert
		}
		if c.waiters.removeFunc(func(w *Proc) bool { return w == p }) {
			timedOut = true
			if !p.dead {
				p.Unpark()
			}
		}
	})
	p.Park("chan recv (timed)")
	for c.q.len() == 0 {
		if timedOut {
			p.timedGen++
			return nil, false
		}
		// Woken by a Push whose message another receiver consumed: wait
		// again; the armed timer is still pending and bounds the wait
		// (gen is unchanged across these re-parks, so it stays live).
		c.waiters.push(p)
		p.Park("chan recv (timed)")
	}
	p.timedGen++
	return c.q.pop(), true
}

// TryRecv removes and returns the oldest message without blocking. The
// second result reports whether a message was available.
func (c *Chan) TryRecv() (interface{}, bool) {
	if c.q.len() == 0 {
		return nil, false
	}
	return c.q.pop(), true
}

// Len reports the number of queued messages.
func (c *Chan) Len() int { return c.q.len() }
