package sim

import "fmt"

// Mutex is a FIFO mutual-exclusion lock for simulated threads. Unlike
// sync.Mutex it is strictly fair: waiters are granted the lock in arrival
// order, which keeps simulations deterministic. The zero value is unlocked.
type Mutex struct {
	owner   *Proc
	waiters []*Proc
}

// Lock acquires m, blocking the calling proc until it is available. Lock is
// handoff-style: an unlocking proc passes ownership directly to the oldest
// waiter.
func (m *Mutex) Lock(p *Proc) {
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic(fmt.Sprintf("sim: proc %q locking mutex it already owns", p.name))
	}
	m.waiters = append(m.waiters, p)
	p.Park("mutex lock")
}

// TryLock acquires m if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner == nil {
		m.owner = p
		return true
	}
	return false
}

// Unlock releases m. It panics if p does not own the mutex.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic(fmt.Sprintf("sim: proc %q unlocking mutex owned by %v", p.name, ownerName(m.owner)))
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	next.Unpark()
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

func ownerName(p *Proc) string {
	if p == nil {
		return "<nobody>"
	}
	return p.name
}

// Cond is a condition variable associated with a Mutex, with the usual
// Wait/Signal/Broadcast contract. Waiters are woken in FIFO order.
type Cond struct {
	L       *Mutex
	waiters []*Proc
}

// NewCond returns a condition variable that uses l as its lock.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically releases the lock and suspends the proc; on wakeup it
// re-acquires the lock before returning. As with sync.Cond, callers must
// re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	c.L.Unlock(p)
	p.Park("cond wait")
	c.L.Lock(p)
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.Unpark()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		w.Unpark()
	}
	c.waiters = nil
}

// Semaphore is a counting semaphore with FIFO wakeups. A semaphore with n
// units models a pool of n identical servers (for example the CPUs of a
// node).
type Semaphore struct {
	avail   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore holding n units.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one unit, blocking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 && len(s.waiters) == 0 {
		s.avail--
		return
	}
	s.waiters = append(s.waiters, p)
	p.Park("semaphore acquire")
}

// Release returns one unit, waking the oldest waiter if any. A release with
// waiters present hands the unit directly to the waiter.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.Unpark()
		return
	}
	s.avail++
}

// Available reports the number of free units.
func (s *Semaphore) Available() int { return s.avail }

// Barrier blocks procs until n of them have arrived, then releases them all.
// It is reusable (generation-counted), like a classic sense-reversing
// barrier.
type Barrier struct {
	n       int
	arrived int
	gen     int
	waiters []*Proc
}

// NewBarrier returns a barrier for n participants. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier participant count must be >= 1")
	}
	return &Barrier{n: n}
}

// Wait blocks until n procs (including this one) have called Wait in the
// current generation. It returns true for exactly one participant per
// generation (the last arriver), which mirrors the "serial thread" idiom.
func (b *Barrier) Wait(p *Proc) bool {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			w.Unpark()
		}
		b.waiters = nil
		return true
	}
	b.waiters = append(b.waiters, p)
	p.Park("barrier wait")
	return false
}

// Resource is a FIFO server queue: Use(p, d) occupies the resource for d of
// virtual time, queuing behind earlier users. With capacity k it models k
// identical servers (e.g. a node with k CPUs): the DSM applications charge
// their compute phases against their node's Resource so that piling many
// threads onto one node slows them down, exactly the effect the paper's
// Figure 4 attributes to the thread-migration protocol.
type Resource struct {
	sem *Semaphore
	// busy accumulates total occupied time, for utilization reports.
	busy Duration
}

// NewResource returns a resource with capacity servers.
func NewResource(capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{sem: NewSemaphore(capacity)}
}

// Use occupies one server for d of virtual time.
func (r *Resource) Use(p *Proc, d Duration) {
	r.sem.Acquire(p)
	p.Advance(d)
	r.busy += d
	r.sem.Release()
}

// Busy reports the cumulative time servers were occupied.
func (r *Resource) Busy() Duration { return r.busy }

// Chan is an unbounded FIFO message queue with blocking receive. It is the
// building block for simulated network endpoints: senders (or engine event
// callbacks, e.g. message-delivery events) push without blocking, receivers
// block until a message arrives.
type Chan struct {
	q       []interface{}
	waiters []*Proc
}

// Push appends v and wakes one waiting receiver. Push may be called from any
// simulation context, including engine event callbacks.
func (c *Chan) Push(v interface{}) {
	c.q = append(c.q, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.Unpark()
	}
}

// Recv removes and returns the oldest message, blocking while the queue is
// empty.
func (c *Chan) Recv(p *Proc) interface{} {
	for len(c.q) == 0 {
		c.waiters = append(c.waiters, p)
		p.Park("chan recv")
	}
	v := c.q[0]
	c.q = c.q[1:]
	return v
}

// TryRecv removes and returns the oldest message without blocking. The
// second result reports whether a message was available.
func (c *Chan) TryRecv() (interface{}, bool) {
	if len(c.q) == 0 {
		return nil, false
	}
	v := c.q[0]
	c.q = c.q[1:]
	return v, true
}

// Len reports the number of queued messages.
func (c *Chan) Len() int { return len(c.q) }
