package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestScheduleFiresInTimeSeqOrder is the determinism property test for the
// calendar-bucket event queue: N Schedule calls with randomly ordered
// (heavily duplicated) times must fire in exact (time, scheduling-order)
// sequence — the stable sort of the requests by time. Any queue structure
// that reorders equal-time events, or interleaves buckets wrongly, fails
// this for some seed.
func TestScheduleFiresInTimeSeqOrder(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		e := NewEngine(1)
		n := 300 + rng.Intn(400)
		type req struct {
			t   Time
			idx int
		}
		reqs := make([]req, n)
		got := make([]int, 0, n)
		for i := 0; i < n; i++ {
			// Few distinct times: most events share a bucket. A handful
			// of spread-out times exercises the bucket heap too.
			var tm Time
			if rng.Intn(4) == 0 {
				tm = Time(rng.Intn(10000))
			} else {
				tm = Time(rng.Intn(8))
			}
			reqs[i] = req{tm, i}
			i := i
			e.Schedule(tm, func() { got = append(got, i) })
		}
		want := append([]req(nil), reqs...)
		sort.SliceStable(want, func(a, b int) bool { return want[a].t < want[b].t })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(got), n)
		}
		for i := range want {
			if got[i] != want[i].idx {
				t.Fatalf("trial %d: position %d fired event %d, want %d (t=%v)",
					trial, i, got[i], want[i].idx, want[i].t)
			}
		}
	}
}

// TestNestedScheduleOrdering: events scheduled from inside events land in
// the same total order — a same-time event scheduled during the burst fires
// after the burst's earlier members (larger seq), and past times clamp to
// now without overtaking anything already due.
func TestNestedScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Schedule(10, func() {
		got = append(got, "a")
		e.Schedule(10, func() { got = append(got, "a-nested") }) // same time: after "b"
		e.Schedule(5, func() { got = append(got, "a-past") })    // clamps to 10, after a-nested
	})
	e.Schedule(10, func() { got = append(got, "b") })
	e.Schedule(20, func() { got = append(got, "c") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a-nested", "a-past", "c"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestMixedEventKindsInterleaveDeterministically: wake records, push records
// and closure events scheduled at one time fire strictly in scheduling
// order, regardless of kind.
func TestMixedEventKindsInterleaveDeterministically(t *testing.T) {
	e := NewEngine(1)
	ch := new(Chan)
	var got []string
	var p *Proc
	p = e.Go("w", func(pp *Proc) {
		pp.Park("wait")
		got = append(got, "wake")
		v := ch.Recv(pp)
		got = append(got, v.(string))
	})
	e.Schedule(5, func() {
		got = append(got, "closure1")
		p.Unpark()                                                    // wake record, seq A
		e.SchedulePush(e.Now(), ch, "push")                           // push record, seq B > A
		e.Schedule(e.Now(), func() { got = append(got, "closure2") }) // seq C > B
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Firing order is seq order: wake, push-delivery, closure2, then the
	// receiver's unpark (scheduled by the push) — so the proc observes the
	// pushed value only after closure2 has run.
	want := []string{"closure1", "wake", "closure2", "push"}
	if len(got) != len(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestChanRingReuse: the head-indexed channel queue survives interleaved
// push/pop cycles past its capacity (compaction path) without losing or
// reordering messages.
func TestChanRingReuse(t *testing.T) {
	c := new(Chan)
	next, drained := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			c.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			v, ok := c.TryRecv()
			if !ok || v.(int) != drained {
				t.Fatalf("round %d: got %v (ok=%v), want %d", round, v, ok, drained)
			}
			drained++
		}
	}
	for c.Len() > 0 {
		v, _ := c.TryRecv()
		if v.(int) != drained {
			t.Fatalf("drain: got %v, want %d", v, drained)
		}
		drained++
	}
	if drained != next {
		t.Fatalf("drained %d of %d messages", drained, next)
	}
}
