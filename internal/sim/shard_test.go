package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"
)

// shardRing runs a token ring of procs spread round-robin over the shards
// of se: proc i lives on shard i%shards, receives on its own channel,
// advances, and forwards to proc i+1 — a cross-shard hop whenever the
// neighbour lives elsewhere. It returns a per-shard execution trace
// (deterministic iff the sharded schedule is).
func shardRing(se *ShardedEngine, procs, hops int, lat Duration) ([][]string, error) {
	n := se.Shards()
	chans := make([]*Chan, procs)
	shard := func(i int) int { return i % n }
	for i := range chans {
		chans[i] = new(Chan)
	}
	traces := make([][]string, n)
	for i := 0; i < procs; i++ {
		i := i
		e := se.Shard(shard(i))
		e.Go(fmt.Sprintf("ring%d", i), func(p *Proc) {
			next := (i + 1) % procs
			for h := 0; h < hops; h++ {
				v := chans[i].Recv(p)
				p.Advance(Microsecond)
				s := shard(i)
				traces[s] = append(traces[s], fmt.Sprintf("%d:%d:%v:%v", i, h, v, p.Now()))
				e.SchedulePushShard(shard(next), p.Now().Add(lat), chans[next], i)
			}
		})
	}
	// Seed one token per shard so every shard has work from the start.
	for s := 0; s < n && s < procs; s++ {
		se.Shard(s).SchedulePush(0, chans[s], -1-s)
	}
	err := se.Run()
	return traces, err
}

func fingerprintTraces(traces [][]string) string {
	h := sha256.New()
	for s, tr := range traces {
		fmt.Fprintf(h, "shard%d:%s\n", s, strings.Join(tr, ";"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestShardedRingCompletes drives a cross-shard token ring to completion
// and checks every hop ran.
func TestShardedRingCompletes(t *testing.T) {
	se := NewShardedEngine(1, 4, 10*Microsecond)
	traces, err := shardRing(se, 16, 50, 10*Microsecond)
	if err != nil {
		t.Fatalf("sharded ring: %v", err)
	}
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	if want := 16 * 50; total != want {
		t.Fatalf("ring hops executed = %d, want %d", total, want)
	}
	if se.Events() == 0 {
		t.Fatal("sharded engine reported zero events")
	}
}

// TestShardedDeterministicRepeats runs the same fixed-N workload many times
// and requires bit-identical per-shard traces — the schedule must be a
// function of the simulation, not of the host scheduler.
func TestShardedDeterministicRepeats(t *testing.T) {
	var want string
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		se := NewShardedEngine(7, 3, 25*Microsecond)
		traces, err := shardRing(se, 9, 40, 25*Microsecond)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fp := fingerprintTraces(traces)
		if trial == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("trial %d fingerprint %s != trial 0 %s", trial, fp, want)
		}
	}
}

// TestShardedShuffledArrivalOrder injects random wall-clock delays at every
// shard synchronization point, deliberately shuffling the order in which
// cross-shard events physically arrive and the horizon sequence each shard
// observes. The virtual schedule must not move.
func TestShardedShuffledArrivalOrder(t *testing.T) {
	var want string
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		se := NewShardedEngine(11, 4, 15*Microsecond)
		if trial > 0 {
			rng := rand.New(rand.NewSource(int64(trial)))
			var mu = make(chan struct{}, 1)
			mu <- struct{}{}
			se.SetSyncHook(func(shard int) {
				<-mu
				d := time.Duration(rng.Intn(200)) * time.Microsecond
				mu <- struct{}{}
				if d > 0 {
					time.Sleep(d)
				}
				runtime.Gosched()
			})
		}
		traces, err := shardRing(se, 12, 30, 15*Microsecond)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fp := fingerprintTraces(traces)
		if trial == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("jitter trial %d fingerprint %s != baseline %s", trial, fp, want)
		}
	}
}

// TestOneShardBitIdentical runs the same workload on a legacy Engine and on
// the single shard of a one-shard ShardedEngine and requires identical
// traces, clocks and event counts — the shards=1 compatibility guarantee.
func TestOneShardBitIdentical(t *testing.T) {
	run := func(eng *Engine, runner func() error) (string, uint64, Time) {
		chans := make([]*Chan, 8)
		for i := range chans {
			chans[i] = new(Chan)
		}
		var trace []string
		for i := 0; i < 8; i++ {
			i := i
			eng.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for h := 0; h < 25; h++ {
					v := chans[i].Recv(p)
					p.Advance(Duration(1+i%3) * Microsecond)
					trace = append(trace, fmt.Sprintf("%d:%d:%v:%v:%d", i, h, v, p.Now(), eng.Rand().Intn(100)))
					chans[(i+1)%8].Push(i)
				}
			})
		}
		chans[0].Push(-1)
		chans[4].Push(-2)
		if err := runner(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return strings.Join(trace, ";"), eng.Events(), eng.Now()
	}
	legacy := NewEngine(42)
	lt, lev, lnow := run(legacy, legacy.Run)
	se := NewShardedEngine(42, 1, 0)
	if se.Shard(0).Sharded() {
		t.Fatal("one-shard engine must not carry a shard controller")
	}
	st, sev, snow := run(se.Shard(0), se.Run)
	if lt != st {
		t.Fatalf("one-shard trace diverged from legacy engine:\nlegacy: %s\nshard:  %s", lt, st)
	}
	if lev != sev || lnow != snow {
		t.Fatalf("one-shard (events,now)=(%d,%v), legacy (%d,%v)", sev, snow, lev, lnow)
	}
}

// TestShardBlockedOnHorizonIsNotDeadlock: a shard whose procs are all
// parked waiting for remote traffic must simply wait for its input horizon,
// not report a deadlock, as long as another shard will eventually feed it.
func TestShardBlockedOnHorizonIsNotDeadlock(t *testing.T) {
	se := NewShardedEngine(3, 2, 5*Microsecond)
	got := new(Chan)
	// Shard 1: a single consumer with an empty local calendar — it parks
	// immediately and its shard blocks on the horizon.
	var sum int
	se.Shard(1).Go("consumer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			sum += got.Recv(p).(int)
		}
	})
	// Shard 0: a producer that computes between sends, so shard 1 spends
	// most of the run parked beyond its horizon.
	se.Shard(0).Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(50 * Microsecond)
			p.Engine().SchedulePushShard(1, p.Now().Add(5*Microsecond), got, i)
		}
	})
	if err := se.Run(); err != nil {
		t.Fatalf("horizon-blocked shard misreported: %v", err)
	}
	if sum != 45 {
		t.Fatalf("consumer sum = %d, want 45", sum)
	}
}

// TestShardedGenuineDeadlock: when every shard is globally idle and procs
// remain parked, the run must end with a shard-tagged DeadlockError.
func TestShardedGenuineDeadlock(t *testing.T) {
	se := NewShardedEngine(5, 2, 5*Microsecond)
	orphan := new(Chan)
	se.Shard(0).Go("waiter-a", func(p *Proc) { orphan.Recv(p) })
	se.Shard(1).Go("feeder", func(p *Proc) { p.Advance(Microsecond) })
	err := se.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "shard0:waiter-a") {
		t.Fatalf("blocked = %v, want shard-tagged waiter-a", de.Blocked)
	}
}

// TestShardedStopPropagates: stopping from a proc on one shard ends the
// whole run without a deadlock report.
func TestShardedStopPropagates(t *testing.T) {
	se := NewShardedEngine(9, 3, 5*Microsecond)
	hung := new(Chan)
	se.Shard(1).Go("hung", func(p *Proc) { hung.Recv(p) })
	se.Shard(2).Go("busy", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(Microsecond)
		}
	})
	se.Shard(0).Go("stopper", func(p *Proc) {
		p.Advance(10 * Microsecond)
		se.Stop()
	})
	if err := se.Run(); err != nil {
		t.Fatalf("stopped run must not error: %v", err)
	}
}

// TestShardedLookaheadViolationPanics: a cross-shard event below the
// promised lookahead must fail fast — silently admitting it would break
// the conservative synchronization invariant.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	se := NewShardedEngine(1, 2, 10*Microsecond)
	ch := new(Chan)
	se.Shard(1).Go("sink", func(p *Proc) { ch.Recv(p) })
	se.Shard(0).Go("cheater", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("lookahead violation did not panic")
			}
			se.Stop()
		}()
		p.Engine().SchedulePushShard(1, p.Now().Add(Microsecond), ch, 1)
	})
	_ = se.Run()
}

// TestShardedFaultFanout: InjectFaults delivers every plan event to every
// shard at the same virtual time in each shard's stream.
func TestShardedFaultFanout(t *testing.T) {
	se := NewShardedEngine(1, 3, 5*Microsecond)
	plan := (&FaultPlan{Seed: 1}).
		Crash(20*1000, 1).
		Restart(40*1000, 1)
	type hit struct {
		shard int
		kind  FaultKind
		at    Time
	}
	hits := make([][]hit, 3)
	se.InjectFaults(plan, func(shard int, ev FaultEvent) {
		hits[shard] = append(hits[shard], hit{shard, ev.Kind, se.Shard(shard).Now()})
	})
	for s := 0; s < 3; s++ {
		s := s
		se.Shard(s).Go(fmt.Sprintf("w%d", s), func(p *Proc) { p.Advance(100 * Microsecond) })
	}
	if err := se.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for s := 0; s < 3; s++ {
		if len(hits[s]) != 2 {
			t.Fatalf("shard %d saw %d fault events, want 2", s, len(hits[s]))
		}
		if hits[s][0].kind != FaultNodeCrash || hits[s][0].at != 20*1000 {
			t.Fatalf("shard %d first fault = %+v", s, hits[s][0])
		}
		if hits[s][1].kind != FaultNodeRestart || hits[s][1].at != 40*1000 {
			t.Fatalf("shard %d second fault = %+v", s, hits[s][1])
		}
	}
}

// TestShardedRunOnShardPanics: driving one shard's Engine.Run directly
// would bypass the synchronization protocol.
func TestShardedRunOnShardPanics(t *testing.T) {
	se := NewShardedEngine(1, 2, Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Engine.Run on a shard did not panic")
		}
	}()
	_ = se.Shard(0).Run()
}

// TestShardedQuiescenceJump: procs whose next events sit far beyond the
// lookahead must still make progress quickly (the quiescence grant jumps
// horizons instead of creeping one lookahead at a time). The ring below
// would need ~10^6 creep rounds without the jump; with it, the run is
// near-instant.
func TestShardedQuiescenceJump(t *testing.T) {
	se := NewShardedEngine(2, 4, Microsecond)
	var done [4]bool
	for s := 0; s < 4; s++ {
		s := s
		se.Shard(s).Go(fmt.Sprintf("sleeper%d", s), func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Advance(Duration(s+1) * Second) // far beyond the 1us lookahead
			}
			done[s] = true
		})
	}
	start := time.Now()
	if err := se.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for s, d := range done {
		if !d {
			t.Fatalf("sleeper%d did not finish", s)
		}
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("quiescence jump too slow: %v (horizon creep?)", el)
	}
}
