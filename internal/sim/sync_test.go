package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestMutexExcludes(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 10; j++ {
				m.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Advance(Microsecond)
				inside--
				m.Unlock(p)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("mutex admitted %d procs at once", maxInside)
	}
}

func TestMutexFIFO(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	var order []string
	e.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Advance(100)
		m.Unlock(p)
	})
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		start := Time(10 * (i + 1))
		e.Spawn(name, start, func(p *Proc) {
			m.Lock(p)
			order = append(order, p.Name())
			m.Unlock(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	e.Go("a", func(p *Proc) {
		if !m.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		e.Go("b", func(q *Proc) {
			if m.TryLock(q) {
				t.Error("TryLock on held mutex succeeded")
			}
		})
		p.Advance(10)
		m.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexReentrantLockPanics(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	panicked := false
	e.Go("a", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
				m.Unlock(p)
			}
		}()
		m.Lock(p)
		m.Lock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("re-locking an owned mutex did not panic")
	}
}

func TestMutexWrongUnlockPanics(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	panicked := false
	e.Go("a", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		m.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("unlocking an unowned mutex did not panic")
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := NewCond(&m)
	ready := 0
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			ready++
			c.Wait(p)
			woken++
			m.Unlock(p)
		})
	}
	e.Go("signaler", func(p *Proc) {
		for ready < 3 {
			p.Advance(Microsecond)
		}
		m.Lock(p)
		c.Signal()
		m.Unlock(p)
		p.Advance(Microsecond)
		if woken != 1 {
			t.Errorf("after one Signal, %d woken, want 1", woken)
		}
		m.Lock(p)
		c.Broadcast()
		m.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("after Broadcast, %d woken, want 3", woken)
	}
}

func TestSemaphoreCapacity(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Advance(10 * Microsecond)
			inside--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("semaphore(2) admitted max %d at once", maxInside)
	}
	if s.Available() != 2 {
		t.Fatalf("units leaked: available = %d, want 2", s.Available())
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(3)
	var releaseTimes []Time
	serials := 0
	for i := 0; i < 3; i++ {
		delay := Duration(i*10) * Microsecond
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Advance(delay)
			if b.Wait(p) {
				serials++
			}
			releaseTimes = append(releaseTimes, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rt := range releaseTimes {
		if rt != Time(20*Microsecond) {
			t.Fatalf("release times %v, want all at 20us", releaseTimes)
		}
	}
	if serials != 1 {
		t.Fatalf("%d procs got serial=true, want exactly 1", serials)
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(2)
	phases := [2]int{}
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for phase := 0; phase < 5; phase++ {
				p.Advance(Duration(p.ID()) * Microsecond)
				b.Wait(p)
				phases[p.ID()-1]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if phases[0] != 5 || phases[1] != 5 {
		t.Fatalf("barrier phases completed = %v, want [5 5]", phases)
	}
}

func TestBarrierInvalidCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(1)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, 10*Microsecond)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("single-CPU completion times %v, want %v", done, want)
		}
	}
	if r.Busy() != 30*Microsecond {
		t.Fatalf("busy = %v, want 30us", r.Busy())
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(3)
	var latest Time
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, 10*Microsecond)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if latest != Time(10*Microsecond) {
		t.Fatalf("3 jobs on 3 CPUs finished at %v, want 10us", latest)
	}
}

func TestChanFIFO(t *testing.T) {
	e := NewEngine(1)
	var c Chan
	var got []interface{}
	e.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, c.Recv(p))
		}
	})
	e.Schedule(10, func() { c.Push(1) })
	e.Schedule(20, func() { c.Push(2) })
	e.Schedule(30, func() { c.Push(3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v.(int) != i+1 {
			t.Fatalf("received %v, want [1 2 3]", got)
		}
	}
}

func TestChanTryRecv(t *testing.T) {
	var c Chan
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan reported a message")
	}
	c.Push("x")
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	v, ok := c.TryRecv()
	if !ok || v.(string) != "x" {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
}

func TestChanRecvBeforePush(t *testing.T) {
	e := NewEngine(1)
	var c Chan
	var at Time
	e.Go("recv", func(p *Proc) {
		c.Recv(p)
		at = p.Now()
	})
	e.Schedule(50, func() { c.Push(struct{}{}) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 50 {
		t.Fatalf("blocked receiver resumed at %v, want 50", at)
	}
}

// Property: for any set of jobs on a single-server resource, the total
// completion time equals the sum of the service demands (work conservation).
func TestResourceWorkConservationProperty(t *testing.T) {
	f := func(demands []uint8) bool {
		if len(demands) == 0 || len(demands) > 20 {
			return true
		}
		e := NewEngine(1)
		r := NewResource(1)
		var total Duration
		var last Time
		for i, d := range demands {
			d := Duration(d) * Microsecond
			total += d
			e.Go(fmt.Sprintf("j%d", i), func(p *Proc) {
				r.Use(p, d)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return last == Time(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a mutex-protected counter incremented by arbitrary procs ends at
// exactly the total number of increments.
func TestMutexCounterProperty(t *testing.T) {
	f := func(nProcs, nIncr uint8) bool {
		np := int(nProcs%8) + 1
		ni := int(nIncr%32) + 1
		e := NewEngine(int64(nProcs) + int64(nIncr)<<8)
		var m Mutex
		counter := 0
		for i := 0; i < np; i++ {
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < ni; j++ {
					m.Lock(p)
					v := counter
					p.Advance(Duration(e.Rand().Intn(5)) * Microsecond)
					counter = v + 1
					m.Unlock(p)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return counter == np*ni
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
