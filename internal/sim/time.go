// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate on which the whole DSM-PM2 reproduction runs:
// simulated cluster nodes, network links and user-level threads all advance a
// shared virtual clock instead of wall-clock time. Exactly one simulated
// thread (a Proc) runs at any instant; control is handed between the engine
// goroutine and proc goroutines over unbuffered channels, which makes every
// run with the same seed bit-for-bit reproducible.
package sim

import "fmt"

// Time is a point in virtual time, measured in virtual nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in virtual nanoseconds.
type Duration int64

// Convenient duration units. The paper reports everything in microseconds, so
// Microsecond is the unit used throughout the calibration tables.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Microseconds reports d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Micros builds a Duration from a number of microseconds.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// String formats the time as microseconds, the paper's unit.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

// String formats the duration as microseconds, the paper's unit.
func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Microseconds()) }
