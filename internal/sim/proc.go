package sim

import "fmt"

// Proc is a simulated thread: a goroutine that runs only while it holds the
// simulation token. Procs advance virtual time explicitly with Advance and
// block with Park; the engine resumes them in deterministic event order.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	wake   chan struct{}
	dead   bool
	daemon bool

	// timedGen retires timed-wait deadline records: each armed deadline
	// captures the current value, and the wait bumps it on completion, so a
	// record still sitting in the calendar after its wait has ended is inert
	// when it fires (it can never unpark the proc from a later wait).
	timedGen uint64

	// Local is a free slot for the runtime layered above (PM2 stores the
	// owning thread descriptor here).
	Local interface{}
}

// Spawn creates a new simulated thread named name that will start executing
// fn at virtual time start (>= Now). fn runs in simulation context: it may
// call Advance, Park and the synchronization primitives in this package.
func (e *Engine) Spawn(name string, start Time, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{
		eng:  e,
		id:   e.nextID,
		name: name,
		wake: make(chan struct{}),
	}
	e.nlive++
	go func() {
		<-p.wake // wait for first dispatch
		fn(p)
		p.dead = true
		if !p.daemon {
			e.nlive--
		}
		// Final yield: dispatch the remaining events; if the queue
		// drained here, pass the token back to Run. The goroutine then
		// exits holding no token (its own wake records are skipped as
		// dead, so driveSelf cannot occur).
		e.cur = nil
		if e.drive(nil) == driveDrained {
			e.park <- struct{}{}
		}
	}()
	e.scheduleWake(start, p)
	return p
}

// Go spawns fn at the current virtual time. It is the common case of Spawn.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.Spawn(name, e.now, fn)
}

// MarkDaemon excludes p from run-completion and deadlock accounting. Use it
// for service procs (RPC dispatchers, monitors) that park forever by design:
// a simulation whose only remaining procs are daemons terminates normally.
func (p *Proc) MarkDaemon() {
	if !p.daemon && !p.dead {
		p.daemon = true
		p.eng.nlive--
	}
}

// Daemon reports whether p has been marked as a daemon.
func (p *Proc) Daemon() bool { return p.daemon }

// ID returns the proc's unique id (assigned in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// yield gives up the simulation token and blocks until woken. The yielding
// goroutine itself drives the event loop forward (see Engine.drive) before
// parking, so waking the next proc costs one goroutine switch instead of a
// bounce through a scheduler goroutine — and resuming this same proc (an
// uncontended Advance) costs none at all.
func (p *Proc) yield() {
	e := p.eng
	e.cur = nil
	switch e.drive(p) {
	case driveSelf:
		// Our own wake record was the next event: keep the token and
		// keep running.
	case driveHanded:
		<-p.wake
	case driveDrained:
		// Queue drained with us holding the token: hand it back to Run,
		// then wait (a later Run phase may unpark us).
		e.park <- struct{}{}
		<-p.wake
	}
}

// Advance consumes d of virtual time: the proc is suspended and resumes once
// the clock reaches Now+d. Negative durations are treated as zero.
func (p *Proc) Advance(d Duration) {
	p.checkRunning("Advance")
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.scheduleWake(e.now.Add(d), p)
	p.yield()
}

// Yield gives other same-time events a chance to run before p continues.
func (p *Proc) Yield() { p.Advance(0) }

// Park blocks the proc indefinitely; some other party must call Unpark.
// reason is used in deadlock reports.
func (p *Proc) Park(reason string) {
	p.checkRunning("Park")
	p.eng.parked[p] = reason
	p.yield()
	delete(p.eng.parked, p)
}

// Kill fail-stops the proc: it never runs again. Pending wake records for it
// are skipped by the dispatcher, and the synchronization primitives skip dead
// procs when granting mutexes, semaphore units, signals or messages, so
// killing a parked proc cannot strand a resource on it. Kill must be called
// from engine context or another proc — a proc cannot kill itself (it would
// still hold the simulation token).
//
// The killed proc's goroutine stays parked on its wake channel for the rest
// of the process — a deliberate leak of one small stack per kill. Forcing an
// exit (runtime.Goexit after a final wake) would run the proc's deferred
// calls concurrently with the simulation, without the token, which is far
// worse than the bounded memory cost of a fault experiment's kills.
func (p *Proc) Kill() {
	if p.dead {
		return
	}
	if p.eng.cur == p {
		panic(fmt.Sprintf("sim: proc %q killing itself", p.name))
	}
	p.dead = true
	if !p.daemon {
		p.eng.nlive--
	}
	delete(p.eng.parked, p)
}

// Dead reports whether the proc has finished or been killed.
func (p *Proc) Dead() bool { return p.dead }

// Unpark schedules p to resume at the current virtual time. It may be called
// from any simulation context (another proc or an engine event callback). It
// is an error to unpark a proc that is not parked; the kernel does not check
// this, so the synchronization primitives in this package are careful to
// maintain it.
func (p *Proc) Unpark() {
	e := p.eng
	e.scheduleWake(e.now, p)
}

// checkRunning panics if p is not the proc currently holding the token.
// Blocking operations from outside simulation context would hang the kernel,
// so this fails fast instead.
func (p *Proc) checkRunning(op string) {
	if p.eng.cur != p {
		panic(fmt.Sprintf("sim: %s called on proc %q which is not running (cur=%v)",
			op, p.name, curName(p.eng)))
	}
}

func curName(e *Engine) string {
	if e.cur == nil {
		return "<engine>"
	}
	return e.cur.name
}
