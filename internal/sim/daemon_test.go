package sim

import "testing"

func TestDaemonDoesNotBlockTermination(t *testing.T) {
	e := NewEngine(1)
	d := e.Go("daemon", func(p *Proc) {
		p.Park("service loop")
	})
	d.MarkDaemon()
	e.Go("app", func(p *Proc) { p.Advance(10) })
	if err := e.Run(); err != nil {
		t.Fatalf("run with parked daemon returned %v", err)
	}
}

func TestDaemonExcludedFromDeadlockReport(t *testing.T) {
	e := NewEngine(1)
	d := e.Go("daemon", func(p *Proc) { p.Park("service loop") })
	d.MarkDaemon()
	e.Go("stuck", func(p *Proc) { p.Park("forgotten") })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want deadlock, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("deadlock report = %v; daemon must not appear", de.Blocked)
	}
}

func TestDaemonFlagQueries(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("d", func(p *Proc) { p.Park("x") })
	if p.Daemon() {
		t.Fatal("fresh proc marked daemon")
	}
	p.MarkDaemon()
	if !p.Daemon() {
		t.Fatal("MarkDaemon had no effect")
	}
	if e.Live() != 0 {
		t.Fatalf("daemon counted as live: %d", e.Live())
	}
	p.MarkDaemon() // idempotent
	if e.Live() != 0 {
		t.Fatal("double MarkDaemon corrupted live count")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveCountWithMixedProcs(t *testing.T) {
	e := NewEngine(1)
	d := e.Go("daemon", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(100)
		}
		// Daemon that finishes: must not double-decrement.
	})
	d.MarkDaemon()
	e.Go("app", func(p *Proc) { p.Advance(1000) })
	if e.Live() != 1 {
		t.Fatalf("live = %d, want 1 (daemon excluded)", e.Live())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d after run", e.Live())
	}
}
