package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenPlan is the plan pinned in testdata/faultplan.golden.json: one of
// every event kind, deliberately appended out of time order to prove the
// wire form preserves the author's order (sorting happens at injection).
func goldenPlan() *FaultPlan {
	p := &FaultPlan{Seed: 42}
	p.Crash(Time(10*Microsecond), 3).
		Restart(Time(40*Microsecond), 3).
		Partition(Time(20*Microsecond), 0, 1).
		Heal(Time(30*Microsecond), 0, 1).
		Loss(Time(5*Microsecond), 2, 4, 0.25, 0.125)
	return p
}

// TestFaultPlanValidateErrors pins the validator's rejection of schedules
// that cannot mean anything sensible, each with a descriptive error.
func TestFaultPlanValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		plan *FaultPlan
		want string // substring of the error
	}{
		{"negative time", (&FaultPlan{}).Crash(-1, 0), "negative time"},
		{"negative node", (&FaultPlan{}).Crash(5, -2), "negative node"},
		{"restart before crash", (&FaultPlan{}).Restart(5, 2), "before any crash"},
		{"restart sorted before its crash", (&FaultPlan{}).Crash(10, 2).Restart(5, 2), "before any crash"},
		{"double crash", (&FaultPlan{}).Crash(5, 2).Crash(10, 2), "already crashed"},
		{"self link", (&FaultPlan{}).Partition(5, 3, 3), "self-link"},
		{"negative endpoint", (&FaultPlan{}).Heal(5, -1, 3), "negative link endpoint"},
		{"drop rate above one", (&FaultPlan{}).Loss(5, 0, 1, 1.5, 0), "drop rate"},
		{"negative dup rate", (&FaultPlan{}).Loss(5, 0, 1, 0, -0.5), "dup rate"},
		{"unknown kind", &FaultPlan{Events: []FaultEvent{{At: 5, Kind: FaultKind(99)}}}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if err == nil {
				t.Fatalf("plan validated; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := goldenPlan().Validate(); err != nil {
		t.Fatalf("well-formed plan rejected: %v", err)
	}
	// Crash/restart/crash of the same node is a legal cycle.
	if err := (&FaultPlan{}).Crash(1, 2).Restart(2, 2).Crash(3, 2).Validate(); err != nil {
		t.Fatalf("crash/restart/crash cycle rejected: %v", err)
	}
}

// TestFaultPlanSaveLoadGolden round-trips a plan through Save and
// LoadFaultPlan and pins the on-disk wire form against a checked-in golden
// file, so accidental format changes (which would orphan saved plans) fail
// loudly.
func TestFaultPlanSaveLoadGolden(t *testing.T) {
	golden := filepath.Join("testdata", "faultplan.golden.json")
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := goldenPlan().Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with FaultPlan.Save): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("wire form drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}

	loaded, err := LoadFaultPlan(golden)
	if err != nil {
		t.Fatalf("load golden: %v", err)
	}
	if !reflect.DeepEqual(loaded, goldenPlan()) {
		t.Fatalf("loaded plan differs from source:\ngot  %+v\nwant %+v", loaded, goldenPlan())
	}
}

// TestFaultPlanLoadRejectsMalformed verifies the load path reports symbolic
// and semantic problems descriptively instead of importing a broken plan.
func TestFaultPlanLoadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"unknown kind", `{"seed":1,"events":[{"at":5,"kind":"meteor_strike","node":0}]}`, "meteor_strike"},
		{"negative time", `{"seed":1,"events":[{"at":-5,"kind":"crash","node":0}]}`, "negative time"},
		{"restart before crash", `{"seed":1,"events":[{"at":5,"kind":"restart","node":2}]}`, "before any crash"},
		{"not json", `]]]`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "plan.json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadFaultPlan(path)
			if err == nil {
				t.Fatalf("malformed plan loaded; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFaultPlanSaveRejectsInvalid verifies a bad schedule is caught at save
// time, not on the machine that loads it.
func TestFaultPlanSaveRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	err := (&FaultPlan{}).Restart(5, 2).Save(path)
	if err == nil || !strings.Contains(err.Error(), "before any crash") {
		t.Fatalf("invalid plan saved; err=%v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("rejected save left a file behind")
	}
}
