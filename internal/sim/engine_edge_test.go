package sim

import (
	"strings"
	"testing"
)

// TestIdleHookContinueRepeatedly: the hook may feed work several times; it
// runs once per drain and the run completes when the procs finally finish.
func TestIdleHookContinueRepeatedly(t *testing.T) {
	e := NewEngine(1)
	var p *Proc
	rounds := 0
	p = e.Go("w", func(pp *Proc) {
		for i := 0; i < 3; i++ {
			pp.Park("external work")
		}
	})
	e.SetIdleHook(func() bool {
		rounds++
		p.Unpark()
		return true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("idle hook ran %d times, want 3", rounds)
	}
}

// TestIdleHookStop: returning false stops the run; the still-blocked procs
// are reported as a deadlock, exactly as if no hook were installed.
func TestIdleHookStop(t *testing.T) {
	e := NewEngine(1)
	e.Go("w", func(p *Proc) { p.Park("external work") })
	calls := 0
	e.SetIdleHook(func() bool {
		calls++
		return false
	})
	err := e.Run()
	if calls != 1 {
		t.Fatalf("idle hook ran %d times, want 1", calls)
	}
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run returned %v, want *DeadlockError for the abandoned proc", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "external work") {
		t.Fatalf("blocked list = %v", de.Blocked)
	}
}

// TestIdleHookContinueWithoutWork: a hook that claims to continue but
// schedules nothing must not spin — the run ends with a deadlock report.
func TestIdleHookContinueWithoutWork(t *testing.T) {
	e := NewEngine(1)
	e.Go("w", func(p *Proc) { p.Park("never fed") })
	calls := 0
	e.SetIdleHook(func() bool {
		calls++
		return true // lies: no event scheduled
	})
	err := e.Run()
	if calls != 1 {
		t.Fatalf("idle hook ran %d times, want 1 (no spinning)", calls)
	}
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("Run returned %v, want *DeadlockError", err)
	}
}

// TestStopDiscardsPendingEvents: Stop from engine context mid-run ends the
// simulation after the current event; later events never fire and Run
// returns nil even though procs are still blocked.
func TestStopDiscardsPendingEvents(t *testing.T) {
	e := NewEngine(1)
	e.Go("blocked", func(p *Proc) { p.Park("waits forever") })
	fired := []int{}
	e.Schedule(10, func() { fired = append(fired, 1) })
	e.Schedule(20, func() {
		fired = append(fired, 2)
		e.Stop()
	})
	e.Schedule(30, func() { fired = append(fired, 3) })
	if err := e.Run(); err != nil {
		t.Fatalf("stopped run returned %v, want nil", err)
	}
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("events fired = %v, want [1 2]", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v after Stop, want 20", e.Now())
	}
}

// TestDeadlockErrorFormatting pins the report format: virtual time, count,
// and the sorted "name (reason)" list.
func TestDeadlockErrorFormatting(t *testing.T) {
	de := &DeadlockError{
		Now:     Time(42 * Microsecond),
		Blocked: []string{"alice (lock L)", "bob (page 7)"},
	}
	want := "sim: deadlock at t=42.000us: 2 proc(s) blocked: alice (lock L); bob (page 7)"
	if got := de.Error(); got != want {
		t.Fatalf("DeadlockError.Error() = %q, want %q", got, want)
	}
}

// TestDeadlockReportSortedAndDaemonFree: the generated report lists blocked
// procs sorted by name with their park reasons, and daemons never appear no
// matter how many are parked.
func TestDeadlockReportSortedAndDaemonFree(t *testing.T) {
	e := NewEngine(1)
	e.Go("zeta", func(p *Proc) { p.Park("reason z") })
	e.Go("alpha", func(p *Proc) { p.Park("reason a") })
	for i := 0; i < 3; i++ {
		d := e.Go("svc", func(p *Proc) { p.Park("service loop") })
		d.MarkDaemon()
	}
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run returned %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %v; daemons must be excluded", de.Blocked)
	}
	if de.Blocked[0] != "alpha (reason a)" || de.Blocked[1] != "zeta (reason z)" {
		t.Fatalf("blocked list not sorted with reasons: %v", de.Blocked)
	}
	if !strings.Contains(de.Error(), "2 proc(s) blocked") {
		t.Fatalf("message %q does not carry the non-daemon count", de.Error())
	}
}
