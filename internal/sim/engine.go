package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dsmpm2/internal/freelist"
)

// event is one scheduled occurrence, ordered by (time, seq): events with
// equal times fire in scheduling order, which is what makes the simulation
// deterministic. Events are value-typed and live inline in the engine's
// queue; the discriminant is which reference field is set:
//
//   - proc != nil: a wake record — resume that proc. This is the dominant
//     kind (Advance, Unpark, Spawn, every synchronization wakeup) and
//     scheduling one performs no heap allocation.
//   - ch != nil: a push record — deliver payload into a Chan (simulated
//     message arrivals). Also allocation-free to schedule; payload is
//     usually a pointer, which boxes without allocating.
//   - otherwise: a general closure event (rare: drivers, tests, custom
//     hooks). The closure capture is the only allocation, paid by the
//     caller when it builds the func literal.
type event struct {
	t       Time
	seq     uint64
	proc    *Proc
	ch      *Chan
	payload interface{}
	fn      func()
}

// bucket is a FIFO ring of events sharing one fire time. seq increases
// monotonically across Schedule calls, so arrival order within a bucket IS
// (time, seq) order — dequeuing the ring head is exact, with no per-event
// sifting. Buckets are pooled on a freelist and their rings recycle, so a
// steady-state simulation allocates nothing to queue events.
type bucket struct {
	t Time
	fifo[event]
}

// freeT marks a bucket as sitting on the freelist: no live event time can
// match it (times are clamped to >= Now >= 0), so a stale cache hit on a
// freed bucket is impossible.
const freeT = Time(-1)

// Engine is a sequential discrete-event simulation kernel. It owns the
// virtual clock and the event queue, and multiplexes any number of Procs
// (simulated threads) one at a time.
//
// The event queue is a two-level calendar: a 4-ary min-heap of time buckets
// (one per distinct fire time, ordered by time alone) over FIFO rings of
// value-typed events. Discrete-event workloads burst heavily at identical
// times — every control message costs the same latency, every compute slice
// the same quantum — so the common enqueue/dequeue hits the ring in O(1)
// and only a new distinct time pays a (pointer-sized) heap sift. No
// per-event heap object, no interface boxing, no container/heap indirect
// calls, and (time, seq) pop order is bit-for-bit that of a flat heap.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   []*bucket              // min-heap by t; one bucket per distinct time
	times   map[Time]*bucket       // live buckets by fire time
	nqueued int                    // events across all buckets
	last    *bucket                // most recently pushed-to bucket (cache)
	free    freelist.List[*bucket] // bucket freelist

	cur     *Proc         // proc currently holding the simulation token
	park    chan struct{} // procs signal here when they yield back
	nextID  int
	nlive   int    // procs spawned and not yet finished
	nevents uint64 // events fired since creation

	rng    *rand.Rand
	rngSrc *countingSource // the source under rng, counting draws for Capture
	seed   int64           // the seed rngSrc was created from

	parked  map[*Proc]string // blocked procs -> reason, for deadlock reports
	stopped bool
	onIdle  func() bool // optional hook when queue drains with live procs

	// sh is non-nil when this engine is one shard of a multi-shard
	// ShardedEngine (see shard.go); it carries the shard's horizon bound
	// and the cross-shard pending heap. A standalone engine (and the
	// single shard of a one-shard ShardedEngine) has sh == nil and takes
	// the legacy code paths bit-for-bit.
	sh *shardCtl
}

// NewEngine creates an engine whose random source is seeded with seed, so
// that identical seeds replay identical simulations.
func NewEngine(seed int64) *Engine {
	e := &Engine{
		park:   make(chan struct{}),
		parked: make(map[*Proc]string),
		times:  make(map[Time]*bucket),
		seed:   seed,
		rngSrc: newCountingSource(seed),
	}
	e.rng = rand.New(e.rngSrc)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (engine callbacks or running procs).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// push appends ev, firing at time t, to that time's bucket, creating (and
// heap-inserting) the bucket on first use. The single-entry bucket cache
// makes the dominant case — many events scheduled for the same time — a
// pure ring append.
func (e *Engine) push(ev event) {
	t := ev.t
	e.nqueued++
	b := e.last
	if b == nil || b.t != t {
		b = e.times[t]
		if b == nil {
			var ok bool
			if b, ok = e.free.Get(); !ok {
				b = new(bucket)
			}
			b.t = t
			e.times[t] = b
			e.heapPush(b)
		}
		e.last = b
	}
	b.push(ev)
}

// pop removes and returns the globally minimum event by (time, seq).
func (e *Engine) pop() event {
	b := e.queue[0]
	ev := b.pop()
	e.nqueued--
	if b.len() == 0 {
		e.heapPopRoot()
		delete(e.times, b.t)
		b.t = freeT
		if e.last == b {
			e.last = nil
		}
		e.free.Put(b)
	}
	return ev
}

// heapPush inserts b into the 4-ary min-heap of buckets (sift-up).
func (e *Engine) heapPush(b *bucket) {
	e.queue = append(e.queue, b)
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if q[p].t <= b.t {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = b
}

// heapPopRoot removes the minimum bucket (sift-down with a hole).
func (e *Engine) heapPopRoot() {
	q := e.queue
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n == 0 {
		return
	}
	q = e.queue
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if q[j].t < q[m].t {
				m = j
			}
		}
		if q[m].t >= last.t {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = last
}

// Schedule runs fn at time t (>= Now). fn executes in engine context and
// must not block; to run simulated-thread code use Spawn or Unpark. This is
// the general closure path; the kernel's own hot paths use the typed wake
// and push records instead.
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.push(event{t: t, seq: e.seq, fn: fn})
}

// scheduleWake schedules a typed wake record for p at time t (>= Now)
// without allocating.
func (e *Engine) scheduleWake(t Time, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.push(event{t: t, seq: e.seq, proc: p})
}

// SchedulePush delivers payload into ch at time t (>= Now): the typed,
// allocation-free form of Schedule(t, func() { ch.Push(payload) }) that the
// network layer uses for every message arrival.
func (e *Engine) SchedulePush(t Time, ch *Chan, payload interface{}) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.push(event{t: t, seq: e.seq, ch: ch, payload: payload})
}

// After runs fn d from now, in engine context.
func (e *Engine) After(d Duration, fn func()) { e.Schedule(e.now.Add(d), fn) }

// DeadlockError reports that the event queue drained while simulated threads
// were still blocked.
type DeadlockError struct {
	Now     Time
	Blocked []string // "name (reason)" for each blocked proc
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d proc(s) blocked: %s",
		d.Now, len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// Run drives the simulation until the event queue is empty. It returns nil
// if every spawned proc has finished, or a *DeadlockError if procs remain
// blocked with no pending events. Run must be called from the goroutine that
// owns the engine (typically the test or main goroutine), and only once at a
// time.
//
// The event loop is token-passing: whichever goroutine holds the simulation
// token (initially the Run caller) pops and dispatches events via drive.
// Closure and push events execute inline in the driving goroutine; a wake
// event transfers the token directly to the woken proc, and when that proc
// later yields, *it* becomes the driver and dispatches the next event. One
// goroutine switch per wake instead of the bounce through a central
// scheduler goroutine — at simulation scale the context switches are the
// kernel's largest remaining cost, and this halves them.
func (e *Engine) Run() error {
	if e.sh != nil {
		panic("sim: Run called on one shard of a sharded engine; use ShardedEngine.Run")
	}
	if e.drive(nil) == driveHanded {
		// The token was handed to a proc; wait until the driver that
		// drains the queue passes it back.
		<-e.park
	}
	if e.nlive > 0 && !e.stopped {
		blocked := make([]string, 0, len(e.parked))
		for p, reason := range e.parked {
			if p.daemon {
				continue
			}
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, reason))
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// driveResult reports how a drive call gave up the token.
type driveResult int

const (
	// driveDrained: the queue emptied (or Stop was called) with the
	// calling goroutine still holding the token. A proc caller must pass
	// the token back to Run by signalling park.
	driveDrained driveResult = iota
	// driveHanded: the token was sent to another proc's wake channel. The
	// caller must not touch engine state afterwards — the new driver may
	// already be running.
	driveHanded
	// driveSelf: the next event was the calling proc's own wake record, so
	// the caller keeps the token and simply continues running. This makes
	// an uncontended Advance cost zero goroutine switches.
	driveSelf
)

// drive pops and dispatches events until the token leaves the calling
// goroutine or the queue drains. It runs on whichever goroutine currently
// holds the simulation token, with e.cur == nil (engine context) so that
// dispatched closures observe the same environment as under a central loop.
// self is the calling proc (nil when Run drives), needed to short-circuit
// the proc's own wake record instead of deadlocking on its wake channel.
func (e *Engine) drive(self *Proc) driveResult {
	if e.sh != nil {
		return e.driveSharded(self)
	}
	for !e.stopped {
		if e.nqueued == 0 {
			// Queue drained with procs still live: give the idle hook
			// one chance per drain to feed external work in.
			if e.nlive > 0 && e.onIdle != nil {
				if e.onIdle() && e.nqueued > 0 {
					continue
				}
			}
			break
		}
		ev := e.pop()
		e.now = ev.t
		e.nevents++
		switch {
		case ev.proc != nil:
			p := ev.proc
			if p.dead {
				continue
			}
			e.cur = p
			if p == self {
				return driveSelf
			}
			p.wake <- struct{}{}
			return driveHanded
		case ev.ch != nil:
			ev.ch.Push(ev.payload)
		default:
			ev.fn()
		}
	}
	return driveDrained
}

// Stop aborts the simulation: Run returns after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetIdleHook installs fn, called whenever the queue drains while procs are
// still live. Returning true continues (fn must have scheduled new events);
// returning false stops the run. Used by drivers that feed external work in.
// Idle hooks are a single-loop concept and are not supported on the shards
// of a sharded engine (shard-local quiescence is a synchronization point,
// not the end of the run).
func (e *Engine) SetIdleHook(fn func() bool) {
	if e.sh != nil {
		panic("sim: idle hooks are not supported on sharded engines")
	}
	e.onIdle = fn
}

// Live reports the number of procs that have been spawned and not finished.
func (e *Engine) Live() int { return e.nlive }

// Events reports the number of events fired since the engine was created,
// the simulator's unit of kernel work (wall-clock benchmarks divide by it).
func (e *Engine) Events() uint64 { return e.nevents }

// Cur returns the proc currently running, or nil when in pure engine context.
func (e *Engine) Cur() *Proc { return e.cur }
