package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq breaks ties), which is what makes the simulation deterministic.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a sequential discrete-event simulation kernel. It owns the
// virtual clock and the event queue, and multiplexes any number of Procs
// (simulated threads) one at a time.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap

	cur    *Proc         // proc currently holding the simulation token
	park   chan struct{} // procs signal here when they yield back
	nextID int
	nlive  int // procs spawned and not yet finished

	rng *rand.Rand

	parked  map[*Proc]string // blocked procs -> reason, for deadlock reports
	stopped bool
	onIdle  func() bool // optional hook when queue drains with live procs
}

// NewEngine creates an engine whose random source is seeded with seed, so
// that identical seeds replay identical simulations.
func NewEngine(seed int64) *Engine {
	return &Engine{
		park:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (engine callbacks or running procs).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn at time t (>= Now). fn executes in engine context and
// must not block; to run simulated-thread code use Spawn or Unpark.
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{t: t, seq: e.seq, fn: fn})
}

// After runs fn d from now, in engine context.
func (e *Engine) After(d Duration, fn func()) { e.Schedule(e.now.Add(d), fn) }

// DeadlockError reports that the event queue drained while simulated threads
// were still blocked.
type DeadlockError struct {
	Now     Time
	Blocked []string // "name (reason)" for each blocked proc
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d proc(s) blocked: %s",
		d.Now, len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// Run drives the simulation until the event queue is empty. It returns nil
// if every spawned proc has finished, or a *DeadlockError if procs remain
// blocked with no pending events. Run must be called from the goroutine that
// owns the engine (typically the test or main goroutine), and only once at a
// time.
func (e *Engine) Run() error {
	for e.queue.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.t
		ev.fn()
		if e.queue.Len() == 0 && e.nlive > 0 && e.onIdle != nil {
			if !e.onIdle() {
				break
			}
		}
	}
	if e.nlive > 0 && !e.stopped {
		blocked := make([]string, 0, len(e.parked))
		for p, reason := range e.parked {
			if p.daemon {
				continue
			}
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, reason))
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// Stop aborts the simulation: Run returns after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetIdleHook installs fn, called whenever the queue drains while procs are
// still live. Returning true continues (fn must have scheduled new events);
// returning false stops the run. Used by drivers that feed external work in.
func (e *Engine) SetIdleHook(fn func() bool) { e.onIdle = fn }

// Live reports the number of procs that have been spawned and not finished.
func (e *Engine) Live() int { return e.nlive }

// runProc transfers control to p until it parks or finishes. Only called
// from engine context (inside an event callback).
func (e *Engine) runProc(p *Proc) {
	if p.dead {
		return
	}
	prev := e.cur
	e.cur = p
	p.wake <- struct{}{}
	<-e.park
	e.cur = prev
}

// Cur returns the proc currently running, or nil when in pure engine context.
func (e *Engine) Cur() *Proc { return e.cur }
