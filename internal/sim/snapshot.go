package sim

import (
	"fmt"
	"math/rand"
)

// Kernel checkpoint/restore. The engine's state at a safe point — the queue
// fully drained, no proc holding the token, every non-daemon proc finished —
// reduces to a handful of scalars: the clock, the scheduling sequence
// counter, the proc id allocator, the event count, and the position of the
// deterministic random stream. Snapshot captures exactly those, and Restore
// stomps a freshly built engine (same seed, same daemon set, same drained
// state) to the captured position so that everything scheduled afterwards
// replays bit-identically.
//
// Goroutine stacks are deliberately NOT serialized: checkpoints are only
// legal between Run calls, where the only live procs are daemons parked on
// their receive channels — state that a fresh engine rebuilds structurally.

// countingSource wraps the standard library's seeded source and counts how
// many values have been drawn, so the stream position can be captured and
// re-established by burning the same number of draws.
//
// It must implement BOTH Int63 and Uint64: rand.New special-cases Source64,
// and the wrapped runtime source is one, so implementing only Int63 would
// change which underlying method rand.Rand calls and shift the stream
// relative to rand.New(rand.NewSource(seed)). Each call advances the
// underlying generator by exactly one step regardless of entry point, so a
// single counter suffices.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// burnTo advances the source until draws reaches target. It reports an error
// if the stream is already past target (the restoring engine consumed more
// randomness than the captured one — a config mismatch, not recoverable).
func (c *countingSource) burnTo(target uint64) error {
	if c.draws > target {
		return fmt.Errorf("sim: restore: RNG stream at %d draws, past checkpoint's %d (engine not freshly built, or config mismatch)", c.draws, target)
	}
	for c.draws < target {
		c.Uint64()
	}
	return nil
}

// CountedRand is a seeded *rand.Rand whose stream position is observable
// and re-establishable: the checkpointable form of the private PRNGs other
// layers keep (the fault layer's loss draws, the recovery manager's retry
// jitter). The embedded Rand is used exactly like any other; Draws and
// BurnTo capture and restore the position.
type CountedRand struct {
	*rand.Rand
	src *countingSource
}

// NewCountedRand returns a counted PRNG seeded with seed. The stream is
// bit-identical to rand.New(rand.NewSource(seed)).
func NewCountedRand(seed int64) *CountedRand {
	src := newCountingSource(seed)
	return &CountedRand{Rand: rand.New(src), src: src}
}

// Draws reports how many values have been drawn.
func (c *CountedRand) Draws() uint64 { return c.src.draws }

// BurnTo advances the stream to the given draw count; it fails if the
// stream is already past it.
func (c *CountedRand) BurnTo(n uint64) error { return c.src.burnTo(n) }

// Snapshot is the serializable kernel state at a safe point. It is
// self-describing: Seed identifies the stream RNGDraws indexes into, so a
// restoring engine can verify it was built compatibly.
type Snapshot struct {
	Now      Time   `json:"now"`
	Seq      uint64 `json:"seq"`
	NextID   int    `json:"next_id"`
	NEvents  uint64 `json:"nevents"`
	Seed     int64  `json:"seed"`
	RNGDraws uint64 `json:"rng_draws"`
	// SendSeq is the shard's cross-shard send stamp (see shardCtl): the
	// merge order of in-flight remote events is keyed by it, so a restored
	// shard must resume stamping where the captured one stopped. Always 0
	// for a single-loop engine, and omitted from its wire form.
	SendSeq uint64 `json:"send_seq,omitempty"`
}

// quiesced reports nil when the engine is at a checkpointable safe point.
func (e *Engine) quiesced(op string) error {
	switch {
	case e.sh != nil:
		return fmt.Errorf("sim: %s: sharded engines do not support kernel snapshots", op)
	case e.cur != nil:
		return fmt.Errorf("sim: %s: proc %q holds the simulation token (call between Run phases)", op, e.cur.name)
	case e.nqueued != 0:
		return fmt.Errorf("sim: %s: %d event(s) still queued (queue must be drained)", op, e.nqueued)
	case e.nlive != 0:
		return fmt.Errorf("sim: %s: %d non-daemon proc(s) still live", op, e.nlive)
	}
	return nil
}

// Capture snapshots the kernel at a safe point: between Run calls, with the
// event queue drained and every non-daemon proc finished. Daemons parked on
// their channels are fine — they carry no kernel state beyond their park,
// which a restored engine rebuilds structurally.
func (e *Engine) Capture() (Snapshot, error) {
	if err := e.quiesced("capture"); err != nil {
		return Snapshot{}, err
	}
	return e.snapshotNow(), nil
}

// snapshotNow serializes the kernel scalars without a safe-point check; the
// caller (Capture, or ShardedEngine.Capture after its own global check) has
// already established quiescence.
func (e *Engine) snapshotNow() Snapshot {
	s := Snapshot{
		Now:      e.now,
		Seq:      e.seq,
		NextID:   e.nextID,
		NEvents:  e.nevents,
		Seed:     e.seed,
		RNGDraws: e.rngSrc.draws,
	}
	if e.sh != nil {
		s.SendSeq = e.sh.sendSeq
	}
	return s
}

// Restore stomps the kernel to a captured safe point. The engine must have
// been created with the snapshot's seed, be at a safe point itself (drained,
// no token holder), and must not have consumed more counters or random draws
// than the snapshot records — i.e. it is a freshly built system that has
// only replayed its structural setup (daemon spawns, service registration).
func (e *Engine) Restore(s Snapshot) error {
	if err := e.quiesced("restore"); err != nil {
		return err
	}
	return e.restoreSnapshot(s)
}

// restoreSnapshot stomps the kernel scalars without a safe-point check; see
// Restore for the contract, ShardedEngine.Restore for the sharded caller.
func (e *Engine) restoreSnapshot(s Snapshot) error {
	if e.seed != s.Seed {
		return fmt.Errorf("sim: restore: engine seeded %d, snapshot needs %d", e.seed, s.Seed)
	}
	if e.seq > s.Seq {
		return fmt.Errorf("sim: restore: engine already at seq %d, past checkpoint's %d", e.seq, s.Seq)
	}
	if e.nextID > s.NextID {
		return fmt.Errorf("sim: restore: engine already allocated proc id %d, past checkpoint's %d", e.nextID, s.NextID)
	}
	if err := e.rngSrc.burnTo(s.RNGDraws); err != nil {
		return err
	}
	e.now = s.Now
	e.seq = s.Seq
	e.nextID = s.NextID
	e.nevents = s.NEvents
	if e.sh != nil {
		if e.sh.sendSeq > s.SendSeq {
			return fmt.Errorf("sim: restore: shard %d already stamped %d cross-shard sends, past checkpoint's %d", e.sh.id, e.sh.sendSeq, s.SendSeq)
		}
		e.sh.sendSeq = s.SendSeq
	}
	return nil
}

// RNGDraws reports how many values have been drawn from the engine's random
// source since creation (or the last reseed).
func (e *Engine) RNGDraws() uint64 { return e.rngSrc.draws }

// FaultCursor injects a fault plan one event at a time, instead of
// scheduling the whole plan up front the way InjectFaults does. Only the
// next un-applied event is ever in the queue, which keeps two properties the
// checkpoint subsystem needs:
//
//   - The cursor's position is two scalars (next index, injection base), so
//     a snapshot can record "mid-plan" exactly and a restored run re-arms
//     from the same place.
//   - Run always drains the queue, including future-dated events. Under
//     chunked execution (many short Run phases), an up-front injection
//     would collapse the entire plan into the first chunk. The cursor
//     instead parks when an event fires after all application procs have
//     finished — the fault is NOT applied, and the next Arm re-schedules it
//     so it lands in the first chunk that actually has live work.
//
// Arm must be called before each Run phase (the dsmpm2 facade does this in
// System.Run). All of this is deterministic: the parked fire and the re-arm
// consume engine sequence numbers identically in a reference run and in a
// run restored from any of its checkpoints.
type FaultCursor struct {
	eng    *Engine
	apply  func(FaultEvent)
	events []FaultEvent // canonical (At, Kind, Node, From, To) order
	base   Time         // injection time; events fire at base + At
	next   int          // index of the next un-applied event
	armed  bool         // the next event is currently scheduled
}

// NewFaultCursor creates a cursor over plan with the injection base anchored
// at the current virtual time. A nil plan yields an exhausted cursor.
func (e *Engine) NewFaultCursor(plan *FaultPlan, apply func(FaultEvent)) *FaultCursor {
	c := &FaultCursor{eng: e, apply: apply, base: e.now}
	if plan != nil && apply != nil {
		c.events = plan.sorted()
	}
	return c
}

// Arm schedules the next un-applied event unless it is already scheduled or
// the plan is exhausted. Safe to call repeatedly (idempotent between fires).
func (c *FaultCursor) Arm() {
	if c.armed || c.next >= len(c.events) {
		return
	}
	c.armed = true
	ev := c.events[c.next]
	c.eng.Schedule(c.base.Add(Duration(ev.At)), c.fire)
}

// fire runs in engine context when the armed event's time arrives.
func (c *FaultCursor) fire() {
	c.armed = false
	if c.eng.nlive == 0 {
		// Every application proc has finished: this Run phase is draining.
		// Park without applying; the next Arm re-schedules the event (its
		// time clamps to the then-current clock if already past).
		return
	}
	ev := c.events[c.next]
	c.next++
	c.apply(ev)
	c.Arm()
}

// Done reports whether every event of the plan has been applied.
func (c *FaultCursor) Done() bool { return c.next >= len(c.events) }

// Pos reports the cursor position: the index of the next un-applied event
// and the injection base time. Together with the plan itself these fully
// describe the cursor for a checkpoint.
func (c *FaultCursor) Pos() (next int, base Time) { return c.next, c.base }

// SetPos moves the cursor to a captured position. The caller must Arm
// afterwards (the facade's Run does).
func (c *FaultCursor) SetPos(next int, base Time) error {
	if next < 0 || next > len(c.events) {
		return fmt.Errorf("sim: fault cursor position %d out of range [0,%d]", next, len(c.events))
	}
	c.next = next
	c.base = base
	c.armed = false
	return nil
}
