package core

import (
	"sort"

	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Entry is one node's page-table entry for one shared page: the DSM page
// manager's unit of state (Section 2.2, "Page manager"). The field set
// covers what the built-in protocols need; as in the real system, a field
// may carry different semantics under different protocols, be unused by
// some, and protocols can hang arbitrary private state off ProtoData.
type Entry struct {
	Page Page

	// ProbOwner is the probable-owner hint of the Li-Hudak dynamic
	// distributed manager: requests are forwarded along these hints until
	// they reach the true owner. Fixed-manager protocols keep it equal to
	// Home.
	ProbOwner int

	// Home is the page's fixed home node (fixed distributed managers and
	// home-based protocols).
	Home int

	// Owner reports whether this node currently owns the page.
	Owner bool

	// Copyset records the nodes holding read copies as a run-length
	// interval set (bitmap fallback for fragmented sets), so a 512-node
	// read-shared page costs O(runs) — not O(N) — to sweep, serialize and
	// piggyback. Iteration is always ascending node id, the same
	// deterministic order the earlier sorted-slice representation gave.
	// It is meaningful on the owner (dynamic managers) or home
	// (home-based protocols).
	Copyset NodeSet

	// Pending marks a fetch in flight from this node, so concurrent
	// faulting threads coalesce onto one request instead of each sending
	// their own — the multithreaded adaptation Section 3 describes.
	Pending bool

	// ProtoData is protocol-private per-page state (e.g. the hbrc_mw twin,
	// or erc_sw's written-in-critical-section flag).
	ProtoData interface{}

	// InvalSeq counts invalidations received for this page on this node.
	// It closes the stale-install race: a fast invalidation control
	// message can overtake an in-flight page transfer, so a page copy
	// requested before the invalidation must not be installed after it.
	// The core bumps it on every arriving invalidation; FetchPage
	// snapshots it into pendingSeq; InstallPage discards non-ownership
	// copies whose snapshot is out of date and lets the access refault.
	InvalSeq   uint64
	pendingSeq uint64

	// reqSeq numbers this node's page requests for this page. Responses
	// echo it, and with recovery enabled InstallPage discards responses to
	// superseded requests — a retry after a timeout must not let the
	// original's late response install stale data. Fault-free runs never
	// retry, so the sequence is always current there.
	reqSeq uint64

	// proto caches the managing protocol's id from the directory at entry
	// creation, so the fault/serve hot paths resolve their protocol from
	// node-local state (see protoAt). SwitchProtocol rewrites it on every
	// node's entry alongside the directory.
	proto ProtoID

	mu   sim.Mutex
	cond *sim.Cond
}

// newEntry builds the entry for pg on one node from the allocation metadata.
func newEntry(pg Page, pi pageInfo) *Entry {
	e := &Entry{
		Page:      pg,
		ProbOwner: pi.home,
		Home:      pi.home,
		proto:     pi.proto,
	}
	e.cond = sim.NewCond(&e.mu)
	return e
}

// Entry returns node's page-table entry for pg, creating it from the
// allocation metadata on first touch.
func (d *DSM) Entry(node int, pg Page) *Entry {
	ns := d.state[node]
	if e, ok := ns.table[pg]; ok {
		return e
	}
	pi, ok := d.dir.get(pg)
	if !ok {
		panic("core: page table entry requested for unallocated page")
	}
	e := newEntry(pg, pi)
	ns.table[pg] = e
	// Keep the sorted page list in step (binary insert): PagesOn sweeps
	// run every release, entry creation happens once per (node, page).
	i := sort.Search(len(ns.pages), func(i int) bool { return ns.pages[i] >= pg })
	ns.pages = append(ns.pages, 0)
	copy(ns.pages[i+1:], ns.pages[i:])
	ns.pages[i] = pg
	return e
}

// Lock acquires the entry's mutex. Every protocol action that reads or
// writes entry state must hold it; the toolbox routines document which locks
// they take.
func (e *Entry) Lock(t *pm2.Thread) { e.mu.Lock(t.Proc()) }

// Unlock releases the entry's mutex.
func (e *Entry) Unlock(t *pm2.Thread) { e.mu.Unlock(t.Proc()) }

// Wait blocks on the entry's condition variable (entry lock held), releasing
// the lock while suspended. Used by faulting threads waiting for a page and
// by servers waiting for in-flight ownership.
func (e *Entry) Wait(t *pm2.Thread) { e.cond.Wait(t.Proc()) }

// WaitTimeout is Wait bounded by d of virtual time; it reports false when
// the wait timed out. The recovery paths use it so a fetch whose server died
// wakes up and retries instead of blocking forever.
func (e *Entry) WaitTimeout(t *pm2.Thread, d sim.Duration) bool {
	return e.cond.WaitTimeout(t.Proc(), d)
}

// Broadcast wakes all threads blocked in Wait.
func (e *Entry) Broadcast() { e.cond.Broadcast() }

// InCopyset reports whether node is recorded in the copyset.
func (e *Entry) InCopyset(node int) bool { return e.Copyset.Contains(node) }

// AddCopyset inserts node into the copyset if absent.
func (e *Entry) AddCopyset(node int) { e.Copyset.Add(node) }

// RemoveCopyset deletes node from the copyset.
func (e *Entry) RemoveCopyset(node int) { e.Copyset.Remove(node) }

// TakeCopyset empties the copyset and returns its former contents;
// iteration over the returned set is ascending, the deterministic
// invalidation order the old sorted slice guaranteed.
func (e *Entry) TakeCopyset() NodeSet { return e.Copyset.Take() }

// PagesOn returns the pages node currently has table entries for, sorted.
// Protocol release hooks use it to sweep per-node state deterministically.
// The list is maintained incrementally at entry creation, so this is a copy,
// not a rebuild-and-sort; the copy keeps the sweep safe against entries the
// sweep itself creates.
func (d *DSM) PagesOn(node int) []Page {
	return append([]Page(nil), d.state[node].pages...)
}
