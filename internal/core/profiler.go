package core

import "sort"

// Online sharing-pattern profiler: the measurement half of DSM-PM2's
// "platform for designing and tuning consistency protocols" promise. The
// generic core already sees every access fault, page fetch and diff shipment;
// this file counts them per (page, node), folds the counters into epochs at
// cluster-wide barriers, and classifies each page's sharing pattern from the
// epoch evidence. The decision engine then (optionally) re-homes pages onto
// their dominant writers through the svcMigrateHome handshake in migrate.go.
//
// Hot-path contract: the per-access work is one map lookup plus counter
// increments into slices allocated once per page (at allocation time, the
// PR 2 pooling idiom) — no allocation, no sorting, no branching beyond the
// enabled check. All ordering-sensitive work (classification, decisions)
// happens at barrier boundaries, over counters whose updates commute
// (saturating adds), so the decisions are a pure function of the epoch
// counters and replays stay bit-identical regardless of the order the
// updates arrived in.

// PageClass is the sharing pattern the profiler assigns a page for one epoch.
type PageClass uint8

const (
	// ClassIdle: no recorded activity this epoch.
	ClassIdle PageClass = iota
	// ClassPrivate: one node both reads and writes the page; nobody else
	// touches it. The page belongs on that node.
	ClassPrivate
	// ClassReadShared: read faults only — the page is replicated and stays
	// wherever it is.
	ClassReadShared
	// ClassProducerConsumer: exactly one writer, at least one other reader.
	// The page belongs on the writer; consumers fetch from there.
	ClassProducerConsumer
	// ClassMigratory: several nodes write in turn (no concurrent diffs) —
	// the page bounces with the computation, and thread migration beats
	// page placement (the adaptive protocol's criterion).
	ClassMigratory
	// ClassFalselyShared: several nodes write concurrently (diffs from two
	// or more writers in one epoch under a multiple-writer protocol). The
	// page belongs on its busiest writer, which then pays no diff traffic.
	ClassFalselyShared

	numClasses
)

// String renders the class for reports and histograms.
func (c PageClass) String() string {
	switch c {
	case ClassIdle:
		return "idle"
	case ClassPrivate:
		return "private"
	case ClassReadShared:
		return "read-shared"
	case ClassProducerConsumer:
		return "producer-consumer"
	case ClassMigratory:
		return "migratory"
	case ClassFalselyShared:
		return "falsely-shared"
	}
	return "unknown"
}

// ProfilerConfig parameterizes the profiler and its decision engine.
type ProfilerConfig struct {
	// Migrate enables home migration: at barrier boundaries, pages whose
	// classification names a dominant writer different from their current
	// home are re-homed onto that writer. Off, the profiler only observes.
	Migrate bool
	// Stability is the number of consecutive epochs that must agree on a
	// page's dominant writer before the page is re-homed (hysteresis
	// against ping-pong). Zero selects DefaultStability.
	Stability int
	// Window is the per-page epoch ring size (classification history kept
	// for introspection and the adaptive protocol). Zero selects
	// DefaultWindow; values below Stability are raised to it.
	Window int
}

// DefaultStability is the default re-homing hysteresis, in epochs.
const DefaultStability = 2

// DefaultWindow is the default per-page epoch ring size.
const DefaultWindow = 8

// EpochProfile is one epoch's classification histogram: how many pages fell
// into each sharing class when the epoch's counters were folded, and how many
// home migrations the epoch's decisions triggered.
type EpochProfile struct {
	Epoch            int `json:"epoch"`
	Idle             int `json:"idle"`
	Private          int `json:"private"`
	ReadShared       int `json:"read_shared"`
	ProducerConsumer int `json:"producer_consumer"`
	Migratory        int `json:"migratory"`
	FalselyShared    int `json:"falsely_shared"`
	Migrations       int `json:"migrations"`
}

// bump increments the histogram bucket for class c.
func (ep *EpochProfile) bump(c PageClass) {
	switch c {
	case ClassIdle:
		ep.Idle++
	case ClassPrivate:
		ep.Private++
	case ClassReadShared:
		ep.ReadShared++
	case ClassProducerConsumer:
		ep.ProducerConsumer++
	case ClassMigratory:
		ep.Migratory++
	case ClassFalselyShared:
		ep.FalselyShared++
	}
}

// pageCounters is one node's access evidence for one page within the current
// epoch. Updates commute, so arrival order cannot influence the epoch fold.
type pageCounters struct {
	reads   uint32 // read faults taken on the node
	writes  uint32 // write faults taken on the node
	fetches uint32 // page requests sent by the node
	diffs   uint32 // diffs the node shipped for the page
}

// ringEntry is one epoch's verdict for a page.
type ringEntry struct {
	class  PageClass
	writer int // dominant writer, -1 when the class names none
}

// pageProfile is the profiler's per-page state: live counters (one slot per
// node, allocated once) and the ring of recent epoch verdicts.
type pageProfile struct {
	counts []pageCounters
	ring   []ringEntry
	// pref is the dominant writer of the last folded epoch (-1 none): the
	// page's preferred home. Fetches by pref from elsewhere count as
	// misplaced.
	pref int
	// stable counts consecutive epochs that agreed on pref.
	stable int
}

// profilerState is the DSM's profiler (nil when disabled).
type profilerState struct {
	cfg   ProfilerConfig
	nodes int
	pages map[Page]*pageProfile
	// order mirrors pages' keys in ascending order, maintained by binary
	// insert at track time (the pagetable idiom), so the per-epoch fold
	// sweeps canonically without rebuilding and sorting the page list
	// every barrier generation.
	order  []Page
	epoch  int
	epochs []EpochProfile
	// folding guards against nested epoch folds: the migration handshakes
	// block the folding barrier handler, and another cluster-wide barrier
	// generation completing in that window must not fold concurrently —
	// it skips, and the evidence folds at the next boundary.
	folding bool
}

// EnableProfiler switches the access-pattern profiler on. Call it before
// Run; pages allocated earlier are adopted here, later ones at allocation.
// With cfg.Migrate set, the decision engine re-homes pages at cluster-wide
// barrier boundaries (see migrate.go). Calling it again (e.g. with an
// explicit config after Config.AdaptiveHomes already enabled it) replaces
// the configuration and restarts the evidence from scratch.
func (d *DSM) EnableProfiler(cfg ProfilerConfig) {
	if cfg.Stability <= 0 {
		cfg.Stability = DefaultStability
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Window < cfg.Stability {
		cfg.Window = cfg.Stability
	}
	already := d.prof != nil
	d.prof = &profilerState{
		cfg:   cfg,
		nodes: d.rt.Nodes(),
		pages: make(map[Page]*pageProfile),
	}
	for _, pg := range d.dir.sortedPages() {
		d.prof.track(pg)
	}
	// The migration services spawn per-node dispatcher threads; registering
	// them lazily keeps profiler-off runs bit-identical to builds without
	// the profiler, and exactly once keeps re-enabling from tripping the
	// duplicate-service panic.
	if !already {
		d.registerMigrateServices()
	}
}

// ProfilerEnabled reports whether the profiler is on.
func (d *DSM) ProfilerEnabled() bool { return d.prof != nil }

// SetTunedPagePrior installs (or clears) the auto-tuner's verdict that the
// page policy beats thread migration for this workload. Call before Run,
// like the other configuration setters.
func (d *DSM) SetTunedPagePrior(on bool) { d.tunedPagePrior = on }

// TunedPagePrior reports the installed tuner verdict.
func (d *DSM) TunedPagePrior() bool { return d.tunedPagePrior }

// ProfileEpochs returns the per-epoch classification histograms recorded so
// far (nil when the profiler is off).
func (d *DSM) ProfileEpochs() []EpochProfile {
	if d.prof == nil {
		return nil
	}
	return append([]EpochProfile(nil), d.prof.epochs...)
}

// PageClassOf returns the page's sharing class and dominant writer from the
// last folded epoch (ClassIdle, -1 before the first epoch or when the
// profiler is off). This is the classifier protocols consume — see
// protolib's Classification.
func (d *DSM) PageClassOf(pg Page) (PageClass, int) {
	if d.prof == nil {
		return ClassIdle, -1
	}
	pp := d.prof.pages[pg]
	if pp == nil || d.prof.epoch == 0 {
		return ClassIdle, -1
	}
	last := pp.ring[(d.prof.epoch-1)%len(pp.ring)]
	return last.class, last.writer
}

// track adopts a page into the profiler, allocating its counter slots once.
func (p *profilerState) track(pg Page) {
	if _, ok := p.pages[pg]; ok {
		return
	}
	pp := &pageProfile{
		counts: make([]pageCounters, p.nodes),
		ring:   make([]ringEntry, p.cfg.Window),
		pref:   -1,
	}
	// Unwritten ring slots must honour the "writer -1 when none" contract:
	// a page adopted after the first fold is read through PageClassOf
	// before its slot is ever written, and a zero-valued writer would name
	// node 0 the dominant writer of an idle page.
	for i := range pp.ring {
		pp.ring[i].writer = -1
	}
	p.pages[pg] = pp
	i := sort.Search(len(p.order), func(i int) bool { return p.order[i] >= pg })
	p.order = append(p.order, 0)
	copy(p.order[i+1:], p.order[i:])
	p.order[i] = pg
}

// profFault records a read or write fault taken on node for pg. Allocation
// free: one map lookup, one increment. Like its siblings below, safe to
// call with the profiler off.
func (d *DSM) profFault(node int, pg Page, write bool) {
	if d.prof == nil {
		return
	}
	pp := d.prof.pages[pg]
	if pp == nil {
		return
	}
	if write {
		pp.counts[node].writes++
	} else {
		pp.counts[node].reads++
	}
}

// profFetch records a page request sent by node toward dest and keeps the
// placement counters: every off-node request is a remote fetch, and one sent
// by the page's preferred home (the profiler's dominant writer) while the
// page is homed elsewhere is a misplaced fetch — the traffic home migration
// exists to remove.
func (d *DSM) profFetch(node int, pg Page, dest int) {
	if dest != node {
		d.st(node).RemoteFetches++
	}
	if d.prof == nil {
		return
	}
	pp := d.prof.pages[pg]
	if pp == nil {
		return
	}
	pp.counts[node].fetches++
	if pi, ok := d.dir.get(pg); ok && pp.pref == node && pi.home != node {
		d.st(node).MisplacedFetches++
	}
}

// profDiff records one diff shipped by node for pg.
func (d *DSM) profDiff(node int, pg Page) {
	if d.prof == nil {
		return
	}
	pp := d.prof.pages[pg]
	if pp == nil {
		return
	}
	pp.counts[node].diffs++
}

// classifyCounters is the pure classification function: given one epoch's
// per-node counters, name the sharing pattern and the dominant writer (-1
// when the class has none). Ties on write counts go to the lowest node id,
// keeping the verdict independent of update arrival order.
func classifyCounters(counts []pageCounters) (PageClass, int) {
	writers, readers, diffWriters := 0, 0, 0
	writer, maxWrites := -1, uint32(0)
	onlyNode := -1
	touched := 0
	for n := range counts {
		c := &counts[n]
		if c.reads == 0 && c.writes == 0 && c.fetches == 0 && c.diffs == 0 {
			continue
		}
		touched++
		onlyNode = n
		if c.reads > 0 {
			readers++
		}
		if c.writes > 0 {
			writers++
			if c.writes > maxWrites {
				maxWrites = c.writes
				writer = n
			}
		}
		if c.diffs > 0 {
			diffWriters++
		}
	}
	switch {
	case touched == 0:
		return ClassIdle, -1
	case writers == 0:
		return ClassReadShared, -1
	case touched == 1:
		return ClassPrivate, onlyNode
	case writers == 1:
		return ClassProducerConsumer, writer
	case diffWriters >= 2:
		// Concurrent writers under a multiple-writer protocol: each epoch
		// both shipped diffs for the page. Placement still matters — the
		// busiest writer saves the most diff traffic as home.
		return ClassFalselyShared, writer
	default:
		return ClassMigratory, -1
	}
}

// migratable reports whether a class justifies re-homing onto its dominant
// writer. Migratory pages have no stable writer (thread migration is the
// right mechanism there — the adaptive protocol's business), and read-shared
// pages are served by replication wherever they live.
func migratable(c PageClass) bool {
	return c == ClassPrivate || c == ClassProducerConsumer || c == ClassFalselyShared
}

// migCandidate is one page the epoch fold nominated for re-homing.
type migCandidate struct {
	pg     Page
	writer int
}

// foldEpoch closes the current epoch: classify every page from its counters,
// push the verdict into the page's ring, update preferred-home and stability
// state, reset the counters in place (no allocation), and return the pages
// whose evidence justifies a home migration — in ascending page order, so
// the decision sequence is canonical. The caller (the barrier manager)
// performs the migrations and appends the epoch histogram via closeEpoch.
func (d *DSM) foldEpoch() (EpochProfile, []migCandidate) {
	p := d.prof
	ep := EpochProfile{Epoch: p.epoch}
	var cands []migCandidate
	for _, pg := range p.order {
		pp := p.pages[pg]
		if pp == nil {
			continue
		}
		class, writer := classifyCounters(pp.counts)
		pp.ring[p.epoch%len(pp.ring)] = ringEntry{class: class, writer: writer}
		ep.bump(class)
		switch {
		case writer >= 0 && writer == pp.pref:
			pp.stable++
		case writer >= 0:
			pp.stable = 1
			pp.pref = writer
		case class == ClassMigratory:
			// Several writers with no dominant one: active evidence against
			// the held preference.
			pp.stable = 0
			pp.pref = -1
		default:
			// Idle or read-only epoch: no writer evidence either way. Hold
			// the preference — double-buffered workloads write each buffer
			// every other epoch, and resetting here would keep them from
			// ever looking stable.
		}
		for n := range pp.counts {
			pp.counts[n] = pageCounters{}
		}
		if pi, ok := d.dir.get(pg); ok && p.cfg.Migrate && migratable(class) &&
			writer >= 0 && pp.stable >= p.cfg.Stability && pi.home != writer {
			cands = append(cands, migCandidate{pg: pg, writer: writer})
		}
	}
	p.epoch++
	return ep, cands
}

// closeEpoch records the folded epoch's histogram.
func (d *DSM) closeEpoch(ep EpochProfile) {
	d.prof.epochs = append(d.prof.epochs, ep)
}
