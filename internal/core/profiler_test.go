package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
)

// TestClassifyCounters pins the classification function on hand-built epoch
// evidence: the table is the spec.
func TestClassifyCounters(t *testing.T) {
	c := func(reads, writes, fetches, diffs uint32) pageCounters {
		return pageCounters{reads: reads, writes: writes, fetches: fetches, diffs: diffs}
	}
	cases := []struct {
		name   string
		counts []pageCounters
		class  PageClass
		writer int
	}{
		{"idle", []pageCounters{{}, {}, {}}, ClassIdle, -1},
		{"private-writer", []pageCounters{{}, c(3, 5, 1, 0), {}}, ClassPrivate, 1},
		{"private-reader-only-node", []pageCounters{{}, {}, c(4, 0, 1, 0)}, ClassReadShared, -1},
		{"read-shared", []pageCounters{c(2, 0, 1, 0), {}, c(1, 0, 1, 0)}, ClassReadShared, -1},
		{"producer-consumer", []pageCounters{c(2, 0, 1, 0), c(0, 6, 0, 1), c(3, 0, 2, 0)}, ClassProducerConsumer, 1},
		{"migratory", []pageCounters{c(1, 2, 1, 0), c(1, 3, 1, 0), {}}, ClassMigratory, -1},
		{"falsely-shared", []pageCounters{c(0, 2, 1, 1), c(0, 5, 1, 1), c(1, 0, 1, 0)}, ClassFalselyShared, 1},
		{"falsely-shared-tie-lowest", []pageCounters{c(0, 4, 1, 1), c(0, 4, 1, 1)}, ClassFalselyShared, 0},
		{"fetch-only-node", []pageCounters{{}, c(0, 0, 2, 0)}, ClassReadShared, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			class, writer := classifyCounters(tc.counts)
			if class != tc.class || writer != tc.writer {
				t.Fatalf("classify = (%v, %d), want (%v, %d)", class, writer, tc.class, tc.writer)
			}
		})
	}
}

// profUpdate is one profiler observation, replayable in any order.
type profUpdate struct {
	kind string // "fault", "fetch", "diff"
	node int
	pg   int // page index into the allocated set
	wr   bool
}

// TestProfilerDecisionsOrderIndependent: the epoch fold is a pure function
// of the counters, and counter updates commute — shuffling the order the
// per-node updates arrive in must not change the classification histogram,
// the migration candidates, or their order.
func TestProfilerDecisionsOrderIndependent(t *testing.T) {
	const nodes = 4
	// A fixed observation set: page 0 producer-consumer (writer 2), page 1
	// private to node 3, page 2 migratory, page 3 idle, page 4 falsely
	// shared (writers 1 and 2, diffs from both).
	var updates []profUpdate
	add := func(kind string, node, pg int, wr bool, times int) {
		for i := 0; i < times; i++ {
			updates = append(updates, profUpdate{kind, node, pg, wr})
		}
	}
	add("fault", 2, 0, true, 6)
	add("fault", 0, 0, false, 2)
	add("fault", 1, 0, false, 3)
	add("fetch", 0, 0, false, 2)
	add("fault", 3, 1, true, 4)
	add("fault", 3, 1, false, 2)
	add("fault", 0, 2, true, 2)
	add("fault", 1, 2, true, 2)
	add("fault", 2, 2, true, 1)
	add("fault", 1, 4, true, 3)
	add("diff", 1, 4, false, 1)
	add("fault", 2, 4, true, 5)
	add("diff", 2, 4, false, 1)

	run := func(shuffleSeed int64) (EpochProfile, []migCandidate, []Page) {
		rt := pm2.NewRuntime(pm2.Config{Nodes: nodes, Network: madeleine.BIPMyrinet, Seed: 1})
		reg := NewRegistry()
		d := New(rt, reg, DefaultCosts())
		h, _ := localProto("p")
		id := reg.Register("p", func(*DSM) Protocol { return h })
		d.SetDefaultProtocol(id)
		pages := make([]Page, 5)
		for i := range pages {
			base := d.MustMalloc(1, PageSize, nil) // every page starts homed on node 1
			pages[i] = d.state[0].space.PageOf(base)
		}
		d.EnableProfiler(ProfilerConfig{Migrate: true, Stability: 1})
		ups := append([]profUpdate(nil), updates...)
		if shuffleSeed != 0 {
			rng := rand.New(rand.NewSource(shuffleSeed))
			rng.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
		}
		for _, u := range ups {
			switch u.kind {
			case "fault":
				d.profFault(u.node, pages[u.pg], u.wr)
			case "fetch":
				d.profFetch(u.node, pages[u.pg], 1)
			case "diff":
				d.profDiff(u.node, pages[u.pg])
			}
		}
		ep, cands := d.foldEpoch()
		return ep, cands, pages
	}

	baseEp, baseCands, pages := run(0)
	// Sanity: the evidence must produce the intended classes and decisions.
	want := EpochProfile{ProducerConsumer: 1, Private: 1, Migratory: 1, Idle: 1, FalselyShared: 1}
	if baseEp != want {
		t.Fatalf("histogram %+v, want %+v", baseEp, want)
	}
	wantCands := []migCandidate{{pg: pages[0], writer: 2}, {pg: pages[1], writer: 3}, {pg: pages[4], writer: 2}}
	if fmt.Sprint(baseCands) != fmt.Sprint(wantCands) {
		t.Fatalf("candidates %v, want %v", baseCands, wantCands)
	}
	for seed := int64(1); seed <= 5; seed++ {
		ep, cands, _ := run(seed)
		if ep != baseEp {
			t.Fatalf("shuffle(seed=%d) changed the histogram: %+v vs %+v", seed, ep, baseEp)
		}
		if fmt.Sprint(cands) != fmt.Sprint(baseCands) {
			t.Fatalf("shuffle(seed=%d) changed the decisions: %v vs %v", seed, cands, baseCands)
		}
	}
}

// TestEnableProfilerTwice: re-enabling replaces the configuration without
// re-registering the handshake services (which would panic as duplicates),
// and pages adopted after the first epoch fold honour the writer=-1
// contract for their unwritten ring slots.
func TestEnableProfilerTwice(t *testing.T) {
	rt := pm2.NewRuntime(pm2.Config{Nodes: 2, Network: madeleine.BIPMyrinet, Seed: 1})
	reg := NewRegistry()
	d := New(rt, reg, DefaultCosts())
	h, _ := localProto("p")
	id := reg.Register("p", func(*DSM) Protocol { return h })
	d.SetDefaultProtocol(id)
	d.EnableProfiler(ProfilerConfig{Migrate: true})
	d.EnableProfiler(ProfilerConfig{Migrate: true, Stability: 3})
	if got := d.prof.cfg.Stability; got != 3 {
		t.Fatalf("re-enable kept stability %d, want 3", got)
	}
	d.foldEpoch() // epoch 0 closes with no pages
	base := d.MustMalloc(0, PageSize, nil)
	pg := d.state[0].space.PageOf(base)
	if class, writer := d.PageClassOf(pg); class != ClassIdle || writer != -1 {
		t.Fatalf("late-adopted page classified (%v, %d), want (idle, -1)", class, writer)
	}
}

// TestProfilerStabilityHysteresis: a page must keep one dominant writer for
// Stability consecutive writing epochs before it migrates, read-only epochs
// hold the streak (double-buffered workloads), and a competing writer resets
// it.
func TestProfilerStabilityHysteresis(t *testing.T) {
	rt := pm2.NewRuntime(pm2.Config{Nodes: 3, Network: madeleine.BIPMyrinet, Seed: 1})
	reg := NewRegistry()
	d := New(rt, reg, DefaultCosts())
	h, _ := localProto("p")
	id := reg.Register("p", func(*DSM) Protocol { return h })
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(0, PageSize, nil)
	pg := d.state[0].space.PageOf(base)
	d.EnableProfiler(ProfilerConfig{Migrate: true, Stability: 2})

	fold := func() []migCandidate {
		_, cands := d.foldEpoch()
		return cands
	}
	// Epoch 0: node 1 writes — stable streak 1, no candidate yet.
	d.profFault(1, pg, true)
	if c := fold(); len(c) != 0 {
		t.Fatalf("candidate after one epoch: %v", c)
	}
	// Epoch 1: read-only epoch holds the streak without advancing it.
	d.profFault(2, pg, false)
	if c := fold(); len(c) != 0 {
		t.Fatalf("candidate after read-only epoch: %v", c)
	}
	// Epoch 2: node 1 writes again — streak 2, candidate nominated.
	d.profFault(1, pg, true)
	c := fold()
	if len(c) != 1 || c[0].writer != 1 {
		t.Fatalf("want one candidate for writer 1, got %v", c)
	}
	// Epoch 3: a different writer resets the streak.
	d.profFault(2, pg, true)
	if c := fold(); len(c) != 0 {
		t.Fatalf("candidate right after writer change: %v", c)
	}
	// Epoch 4: same new writer again — streak 2 for node 2.
	d.profFault(2, pg, true)
	c = fold()
	if len(c) != 1 || c[0].writer != 2 {
		t.Fatalf("want one candidate for writer 2, got %v", c)
	}
}

// TestHomeMigrationMovesPage: end-to-end over a live cluster — a page homed
// on node 0 but written every epoch by node 2 migrates there at a barrier,
// the entries agree on the new placement on every node, and the page data
// survives the move.
func TestHomeMigrationMovesPage(t *testing.T) {
	const nodes = 4
	rt := pm2.NewRuntime(pm2.Config{Nodes: nodes, Network: madeleine.BIPMyrinet, Seed: 3})
	reg := NewRegistry()
	d := New(rt, reg, DefaultCosts())
	// A minimal fetch-capable MRSW protocol (li_hudak's shape) built from
	// hooks, so the test stays inside the core package.
	h := &Hooks{
		ProtoName:    "fetcher",
		OnReadFault:  func(f *Fault) { FetchPage(f, false) },
		OnWriteFault: func(f *Fault) { FetchPage(f, true) },
		OnReadServer: func(r *Request) {
			e, owner := ServeWhenOwner(r)
			if !owner {
				ForwardRequest(r, e)
				return
			}
			e.AddCopyset(r.From)
			r.DSM.Space(r.Node).SetAccess(r.Page, memory.ReadOnly)
			SendPage(r, e, r.From, memory.ReadOnly, false, NodeSet{})
			e.Unlock(r.Thread)
		},
		OnWriteServer: func(r *Request) {
			e, owner := ServeWhenOwner(r)
			if !owner {
				ForwardRequest(r, e)
				return
			}
			cs := e.TakeCopyset()
			InvalidateCopies(r.DSM, r.Thread, r.Page, cs, r.From)
			SendPage(r, e, r.From, memory.ReadWrite, true, NodeSet{})
			e.Owner = false
			e.ProbOwner = r.From
			r.DSM.Space(r.Node).Drop(r.Page)
			e.Unlock(r.Thread)
		},
		OnInvalidate:  func(iv *Invalidate) { DropCopy(iv) },
		OnReceivePage: func(pm *PageMsg) { InstallPage(pm) },
	}
	id := reg.Register("fetcher", func(*DSM) Protocol { return h })
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(0, 8, nil) // homed on node 0
	pg := d.state[0].space.PageOf(base)
	d.EnableProfiler(ProfilerConfig{Migrate: true, Stability: 2})

	bar := d.NewBarrier(nodes)
	const rounds = 5
	for n := 0; n < nodes; n++ {
		n := n
		rt.CreateThread(n, fmt.Sprintf("w%d", n), func(th *pm2.Thread) {
			for r := 0; r < rounds; r++ {
				if n == 2 {
					// The producer: every write re-faults because the
					// consumers' read copies revoked its exclusivity.
					d.WriteUint64(th, base, uint64(100+r))
				} else {
					d.ReadUint64(th, base)
				}
				d.Barrier(th, bar)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().HomeMigrations; got != 1 {
		t.Fatalf("HomeMigrations = %d, want 1", got)
	}
	if home, _, _ := d.PageInfo(pg); home != 2 {
		t.Fatalf("page home = %d, want 2", home)
	}
	for n := 0; n < nodes; n++ {
		e := d.Entry(n, pg)
		if e.Home != 2 {
			t.Fatalf("node %d entry home = %d, want 2", n, e.Home)
		}
		if e.Owner != (n == 2) {
			t.Fatalf("node %d owner = %v", n, e.Owner)
		}
	}
	// The data survived the move: read it back from yet another node.
	var got uint64
	rt.CreateThread(3, "reader", func(th *pm2.Thread) { got = d.ReadUint64(th, base) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 100+rounds-1 {
		t.Fatalf("read %d after migration, want %d", got, 100+rounds-1)
	}
	class, writer := d.PageClassOf(pg)
	if writer != 2 {
		t.Fatalf("classified writer = %d (%v), want 2", writer, class)
	}
}

// TestAccessRetriesOnMigratedNode closes the edge access.go only documented:
// a thread may migrate between FetchPage retries, and the retried access
// must run against the thread's NEW node's address space (and charge that
// node's fault counters), not the one it faulted on first.
func TestAccessRetriesOnMigratedNode(t *testing.T) {
	rt := pm2.NewRuntime(pm2.Config{Nodes: 2, Network: madeleine.BIPMyrinet, Seed: 1})
	reg := NewRegistry()
	d := New(rt, reg, DefaultCosts())
	// The migration policy in miniature: never fetch, send the thread to
	// the data instead. The retried access only succeeds if Access
	// re-resolves the node (and its Space) after the handler returns.
	h := &Hooks{
		ProtoName:    "go-to-data",
		OnReadFault:  func(f *Fault) { MigrateToOwner(f) },
		OnWriteFault: func(f *Fault) { MigrateToOwner(f) },
	}
	id := reg.Register("go-to-data", func(*DSM) Protocol { return h })
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(1, 8, nil) // homed (and only accessible) on node 1

	var seed *pm2.Thread
	rt.CreateThread(1, "seed", func(th *pm2.Thread) {
		seed = th
		d.WriteUint64(th, base, 4242)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if seed.Node() != 1 {
		t.Fatalf("seed thread moved to node %d", seed.Node())
	}

	var got uint64
	var endNode int
	var reader *pm2.Thread
	rt.CreateThread(0, "reader", func(th *pm2.Thread) {
		reader = th
		got = d.ReadUint64(th, base)
		endNode = th.Node()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 4242 {
		t.Fatalf("read %d through migrating retry, want 4242", got)
	}
	if endNode != 1 {
		t.Fatalf("reader finished on node %d, want 1 (migrated by the fault handler)", endNode)
	}
	if reader.Migrations() != 1 {
		t.Fatalf("reader migrated %d times, want 1", reader.Migrations())
	}
	// The fault is attributed to the node the thread was on when it
	// faulted; the successful retry on node 1 faults no further.
	if d.FaultsOn(0) != 1 || d.FaultsOn(1) != 0 {
		t.Fatalf("fault attribution = node0:%d node1:%d, want 1/0", d.FaultsOn(0), d.FaultsOn(1))
	}
}
