package core

import (
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Service names used by the DSM communication module. The module provides
// the paper's "limited set of communication routines": sending a page
// request, sending a page, invalidating a page, sending diffs. Everything
// is carried by PM2's RPC mechanism.
const (
	svcRequest = "dsm.request"
	svcPage    = "dsm.page"
	svcInvald  = "dsm.invalidate"
	svcDiff    = "dsm.diff"
	svcLockAcq = "dsm.lock.acquire"
	svcLockRel = "dsm.lock.release"
	svcBarrier = "dsm.barrier"
)

// ctrlBytes is the wire size of a control message.
const ctrlBytes = 64

// reqMsg asks the destination for page access. seq is the requesting
// entry's request sequence number, echoed back with the page so retried
// fetches can discard their predecessors' late responses (recovery mode).
type reqMsg struct {
	page   Page
	from   int // requesting node
	write  bool
	seq    uint64
	timing *FaultTiming
	sentAt sim.Time
}

// pageMsg carries a page copy to a requester.
type pageMsg struct {
	page    Page
	from    int
	data    []byte
	access  memory.Access
	owner   int
	ownship bool
	copyset []int
	seq     uint64 // request sequence this page answers (see reqMsg)
	timing  *FaultTiming
	sentAt  sim.Time
	link    string // profile name of the link carrying the transfer
}

// invMsg asks the destination to invalidate its copy of a page.
type invMsg struct {
	page     Page
	from     int
	newOwner int
	ack      *sim.Chan // nil for unacknowledged invalidations
}

// invAck is the payload of an invalidation acknowledgement: which node
// applied which page's invalidation. Carrying the page matters when one ack
// channel covers several pages (a multi-page flush): a duplicate ack for an
// already-applied page must not stand in for a different, still-unapplied
// one.
type invAck struct {
	node int
	page Page
}

// diffMsgWire carries diffs to a home node. noticed marks diffs whose
// invalidations ride the writer's barrier notices instead of being applied
// eagerly by the home (see DiffMsg.Noticed).
type diffMsgWire struct {
	from    int
	diffs   []*memory.Diff
	noticed bool
	reply   *sim.Chan // signalled once applied, nil for fire-and-forget
}

// registerServices wires the DSM communication module onto every node.
// Request, invalidation and diff servers are threaded so that concurrent
// requests — for the same page or different pages — are processed in
// parallel, the multithreaded behaviour Section 3 calls out; page
// installation is a quick handler, serialized per node like a softirq.
func (d *DSM) registerServices() {
	for i := 0; i < d.rt.Nodes(); i++ {
		node := d.rt.Node(i)

		node.Register(svcRequest, true, func(h *pm2.Thread, arg interface{}) interface{} {
			m := arg.(*reqMsg)
			if d.recovery != nil && d.NodeDead(m.from) {
				// A dead requester must not be granted anything — a write
				// request served now would strand ownership on a corpse.
				return nil
			}
			if m.timing != nil {
				m.timing.Request = h.Now().Sub(m.sentAt)
			}
			r := &Request{
				DSM:    d,
				Thread: h,
				Node:   h.Node(),
				Page:   m.page,
				From:   m.from,
				Write:  m.write,
				Seq:    m.seq,
				Timing: m.timing,
			}
			p := d.protoAt(h.Node(), m.page)
			if m.write {
				p.WriteServer(r)
			} else {
				p.ReadServer(r)
			}
			return nil
		})

		node.Register(svcPage, false, func(h *pm2.Thread, arg interface{}) interface{} {
			m := arg.(*pageMsg)
			if m.timing != nil {
				m.timing.Transfer = h.Now().Sub(m.sentAt)
				m.timing.Link = m.link
			}
			pm := &PageMsg{
				DSM:     d,
				Thread:  h,
				Node:    h.Node(),
				Page:    m.page,
				From:    m.from,
				Data:    m.data,
				Access:  m.access,
				Owner:   m.owner,
				Ownship: m.ownship,
				Copyset: m.copyset,
				Seq:     m.seq,
				Timing:  m.timing,
			}
			d.protoAt(h.Node(), m.page).ReceivePageServer(pm)
			return nil
		})

		node.Register(svcInvald, true, func(h *pm2.Thread, arg interface{}) interface{} {
			m := arg.(*invMsg)
			if d.recovery != nil && d.NodeDead(m.from) {
				// An invalidation from a node that has since crashed speaks
				// for a dead regime: the recovery sweep already rebuilt the
				// page's home/copyset around the crash, and applying the
				// stale order could drop the promoted home's reference
				// copy. Any copy it meant to kill is in the new home's
				// copyset and dies at the next release instead.
				return nil
			}
			// Any invalidation supersedes a page copy still in flight
			// to this node (see Entry.InvalSeq).
			d.Entry(h.Node(), m.page).InvalSeq++
			iv := &Invalidate{
				DSM:      d,
				Thread:   h,
				Node:     h.Node(),
				Page:     m.page,
				From:     m.from,
				NewOwner: m.newOwner,
			}
			d.protoAt(h.Node(), m.page).InvalidateServer(iv)
			if m.ack != nil {
				// The ack names the acknowledging node and page, so a
				// recovery retry loop can tick off exactly which holders
				// answered for exactly which invalidations.
				d.rt.Network().SendDirect(h.Node(), m.from, m.ack, ctrlBytes,
					invAck{node: h.Node(), page: m.page}, d.rt.Link(h.Node(), m.from).CtrlMsg)
			}
			return nil
		})

		node.Register(svcDiff, true, func(h *pm2.Thread, arg interface{}) interface{} {
			m := arg.(*diffMsgWire)
			if len(m.diffs) > 0 {
				ds, ok := d.protoAt(h.Node(), m.diffs[0].Page).(DiffServer)
				if !ok {
					panic("core: diffs sent to a protocol without a DiffServer")
				}
				ds.DiffServer(&DiffMsg{
					DSM:     d,
					Thread:  h,
					Node:    h.Node(),
					From:    m.from,
					Diffs:   m.diffs,
					Noticed: m.noticed,
					reply:   m.reply,
				})
			}
			if m.reply != nil {
				d.rt.Network().SendDirect(h.Node(), m.from, m.reply, ctrlBytes, nil, d.rt.Link(h.Node(), m.from).CtrlMsg)
			}
			return nil
		})
	}
	d.registerSyncServices()
}

// sendRequest delivers a page request to dest (a control message).
func (d *DSM) sendRequest(from, dest int, m *reqMsg) {
	m.sentAt = d.rt.EngineFor(from).Now()
	st := d.st(from)
	st.Requests++
	st.Sends++
	st.Envelopes++
	d.rt.AsyncFrom(from, dest, svcRequest, m, ctrlBytes)
}

// sendPage delivers a page copy to dest as a bulk transfer. The message
// header travels inside the transfer's fixed base cost, so the charged
// payload is exactly the page, as in the paper's Table 3 measurements. The
// carrying link's profile name is recorded for FaultTiming attribution, so
// reports can split fault costs by link class (intra- vs inter-cluster).
func (d *DSM) sendPage(from, dest int, m *pageMsg) {
	m.sentAt = d.rt.EngineFor(from).Now()
	m.link = d.rt.Link(from, dest).Name
	st := d.st(from)
	st.PageSends++
	st.PageBytes += int64(len(m.data))
	st.Sends++
	st.Envelopes++
	d.rt.AsyncFrom(from, dest, svcPage, m, len(m.data))
}

// sendInvalidate delivers an invalidation to dest as its own envelope (the
// unbatched path; batched flushes coalesce invalidations in outbox.go).
func (d *DSM) sendInvalidate(from, dest int, m *invMsg) {
	st := d.st(from)
	st.Invalidations++
	st.Sends++
	st.Envelopes++
	d.rt.AsyncFrom(from, dest, svcInvald, m, ctrlBytes)
}

// diffFlight is one in-flight diff envelope: the send half of sendDiffs,
// split from the wait half so flushes to distinct destinations overlap their
// round trips (every envelope departs before the first reply is awaited).
type diffFlight struct {
	dest int
	m    *diffMsgWire
	size int
}

// startDiffs ships a diff list to dest as its own envelope and returns the
// flight to pass to waitDiffs. With wait false the flight needs no waiting
// (fire-and-forget).
func (d *DSM) startDiffs(t *pm2.Thread, dest int, diffs []*memory.Diff, noticed, wait bool) *diffFlight {
	size := ctrlBytes
	for _, df := range diffs {
		size += df.Size()
	}
	m := &diffMsgWire{from: t.Node(), diffs: diffs, noticed: noticed}
	st := d.st(t.Node())
	st.DiffsSent += int64(len(diffs))
	st.DiffBytes += int64(size)
	st.Sends++
	st.Envelopes++
	if wait {
		m.reply = new(sim.Chan)
	}
	d.rt.AsyncFrom(t.Node(), dest, svcDiff, m, size)
	return &diffFlight{dest: dest, m: m, size: size}
}

// waitDiffs blocks until a flight's destination acknowledged applying it
// (release semantics demand it).
//
// With recovery enabled the wait is bounded: if the home dies before
// acknowledging, each diff is re-routed to its page's current home (the
// recovery sweep re-homed the dead node's pages), applied locally when this
// node became the home. Diffs are absolute byte ranges, so a diff the dead
// home did manage to apply before crashing re-applies idempotently.
func (d *DSM) waitDiffs(t *pm2.Thread, f *diffFlight) {
	if f.m.reply == nil {
		return
	}
	if d.recovery == nil {
		f.m.reply.Recv(t.Proc())
		return
	}
	attempt := 0
	for {
		if _, ok := f.m.reply.RecvTimeout(t.Proc(), d.recovery.retryDelay(attempt)); ok {
			return
		}
		attempt++
		d.recovery.stats.Retries++
		if !d.NodeDead(f.dest) {
			// The home is alive but silent: the diff or its ack may have
			// been lost on a lossy link, or is crawling through a
			// partition. Re-send — diffs apply idempotently, and a
			// duplicate ack just lingers unread in this call's private
			// reply channel. Counted like any other shipment, mirroring
			// the batched retry path's accounting.
			st := d.st(t.Node())
			st.DiffsSent += int64(len(f.m.diffs))
			st.Sends++
			st.Envelopes++
			d.rt.AsyncFrom(t.Node(), f.dest, svcDiff, f.m, f.size)
			continue
		}
		// The home died with our diffs unacknowledged: re-route each diff
		// to its page's current home.
		d.rerouteDiffs(t, f.m.diffs)
		return
	}
}

// rerouteDiffs delivers each diff to its page's current home after the
// original destination died. When this node *became* the home, the diff goes
// through the protocol's own DiffServer so its commit side effects
// (applying, then invalidating third-party copies) happen exactly as they
// would have at the old home.
func (d *DSM) rerouteDiffs(t *pm2.Thread, diffs []*memory.Diff) {
	for _, df := range diffs {
		pi, _ := d.dir.get(df.Page)
		home := pi.home
		if home == t.Node() {
			if ds, ok := d.protoFor(df.Page).(DiffServer); ok {
				ds.DiffServer(&DiffMsg{
					DSM: d, Thread: t, Node: t.Node(), From: t.Node(),
					Diffs: []*memory.Diff{df},
				})
				continue
			}
			e := d.Entry(t.Node(), df.Page)
			e.Lock(t)
			if frame := d.state[t.Node()].space.Frame(df.Page); frame != nil {
				memory.ApplyDiff(frame.Data, df)
			}
			e.Unlock(t)
			continue
		}
		d.sendDiffs(t, home, []*memory.Diff{df}, true)
	}
}

// sendDiffs delivers a batch of diffs to dest and, if wait is true, blocks
// the calling thread until the destination has applied them.
func (d *DSM) sendDiffs(t *pm2.Thread, dest int, diffs []*memory.Diff, wait bool) {
	d.waitDiffs(t, d.startDiffs(t, dest, diffs, false, wait))
}
