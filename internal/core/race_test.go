package core

import (
	"testing"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// This file regression-tests the stale-install race: a fast invalidation
// control message can overtake an in-flight page transfer, in which case the
// arriving page is stale and the sender no longer counts this node as a
// holder. InstallPage must discard such copies (and let the access refault)
// unless ownership travels with the page.

// fetcherProto is a minimal home-based protocol: fault fetches from home,
// the home serves copies, invalidations drop.
type fetcherProto struct{ d *DSM }

func (p *fetcherProto) Name() string                    { return "fetcher" }
func (p *fetcherProto) ReadFaultHandler(f *Fault)       { FetchPage(f, false) }
func (p *fetcherProto) WriteFaultHandler(f *Fault)      { FetchPage(f, true) }
func (p *fetcherProto) InvalidateServer(iv *Invalidate) { DropCopy(iv) }
func (p *fetcherProto) ReceivePageServer(pm *PageMsg)   { InstallPage(pm) }
func (p *fetcherProto) LockAcquire(*SyncEvent)          {}
func (p *fetcherProto) LockRelease(*SyncEvent)          {}
func (p *fetcherProto) ReadServer(r *Request) {
	e := p.d.Entry(r.Node, r.Page)
	e.Lock(r.Thread)
	e.AddCopyset(r.From)
	SendPage(r, e, r.From, memory.ReadOnly, false, NodeSet{})
	e.Unlock(r.Thread)
}
func (p *fetcherProto) WriteServer(r *Request) { p.ReadServer(r) }

func TestStaleInstallDiscarded(t *testing.T) {
	d := newDSM(2)
	id := d.registry.Register("fetcher", func(d *DSM) Protocol { return &fetcherProto{d: d} })
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	rt := d.Runtime()

	// Node 1 fetches the page; while the (slow, bulk) page transfer is in
	// flight, the home sends a (fast, control) invalidation that arrives
	// first. The page must NOT be installed when it lands.
	rt.CreateThread(1, "reader", func(th *pm2.Thread) {
		d.ReadUint64(th, base)
	})
	rt.CreateThread(0, "invalidator", func(th *pm2.Thread) {
		// Wait until the request has reached the home (11us fault +
		// 23us request + 13us serve = ~47us) and the page is on the
		// wire, then fire the invalidation: with BIP/Myrinet the
		// control message (23us) overtakes the transfer (138us).
		th.Advance(60 * sim.Microsecond)
		e := d.Entry(0, pg)
		e.Lock(th)
		cs := e.TakeCopyset()
		e.Unlock(th)
		InvalidateCopies(d, th, pg, cs, -1)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// The reader eventually succeeded (it refetched), and the page it
	// reads is the live one.
	if d.Stats().ReadFaults < 1 {
		t.Fatal("no fault recorded")
	}
	// The first copy was discarded, so at least two page sends happened.
	if d.Stats().PageSends < 2 {
		t.Fatalf("page sends = %d, want >= 2 (stale copy must be refetched)", d.Stats().PageSends)
	}
}

func TestOwnershipTransferImmuneToStaleGuard(t *testing.T) {
	// An ownership-carrying page must install even if an invalidation was
	// processed after the request went out: the previous owner serialized
	// the grant after any invalidation it sent.
	d := newDSM(2)
	id := d.registry.Register("fetcher", func(d *DSM) Protocol { return &fetcherProto{d: d} })
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	e := d.Entry(1, pg)

	rt := d.Runtime()
	rt.CreateThread(1, "installer", func(th *pm2.Thread) {
		// Simulate: request sent (pendingSeq snapshotted), then an
		// invalidation bumps the seq, then an ownership grant arrives.
		e.Lock(th)
		e.Pending = true
		e.pendingSeq = e.InvalSeq
		e.Unlock(th)
		e.InvalSeq++ // an invalidation was processed meanwhile
		InstallPage(&PageMsg{
			DSM:     d,
			Thread:  th,
			Node:    1,
			Page:    pg,
			From:    0,
			Data:    make([]byte, PageSize),
			Access:  memory.ReadWrite,
			Owner:   1,
			Ownship: true,
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Owner {
		t.Fatal("ownership grant was discarded by the stale guard")
	}
	if d.Space(1).AccessOf(pg) != memory.ReadWrite {
		t.Fatal("granted page not installed")
	}
}

func TestStaleGuardDropsNonOwnershipCopy(t *testing.T) {
	d := newDSM(2)
	id := d.registry.Register("fetcher", func(d *DSM) Protocol { return &fetcherProto{d: d} })
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	e := d.Entry(1, pg)
	rt := d.Runtime()
	rt.CreateThread(1, "installer", func(th *pm2.Thread) {
		e.Lock(th)
		e.Pending = true
		e.pendingSeq = e.InvalSeq
		e.Unlock(th)
		e.InvalSeq++
		InstallPage(&PageMsg{
			DSM:    d,
			Thread: th,
			Node:   1,
			Page:   pg,
			From:   0,
			Data:   make([]byte, PageSize),
			Access: memory.ReadOnly,
			Owner:  0,
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Space(1).AccessOf(pg) != memory.NoAccess {
		t.Fatal("stale copy was installed")
	}
	if e.Pending {
		t.Fatal("pending flag not cleared on discard")
	}
}
