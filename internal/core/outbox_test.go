package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
)

// traceEvent is one handler activation observed during an outbox flush: the
// virtual time it ran at, what ran, where. Two flushes are behaviourally
// identical iff their event sequences match exactly.
type traceEvent struct {
	at   int64
	kind string
	page Page
	node int
}

// outboxHarness builds a DSM whose only protocol records every invalidation
// and diff delivery, so a flush's full wire behaviour can be compared
// across runs.
func outboxHarness(nodes int, batched bool) (*DSM, *pm2.Runtime, *[]traceEvent) {
	rt := pm2.NewRuntime(pm2.Config{Nodes: nodes, Network: madeleine.BIPMyrinet, Seed: 1})
	reg := NewRegistry()
	trace := &[]traceEvent{}
	var d *DSM
	reg.Register("recorder", func(*DSM) Protocol {
		return &Hooks{
			ProtoName: "recorder",
			OnInvalidate: func(iv *Invalidate) {
				*trace = append(*trace, traceEvent{int64(iv.Thread.Now()), "inv", iv.Page, iv.Node})
				DropCopy(iv)
			},
			OnDiffServer: func(dm *DiffMsg) {
				for _, df := range dm.Diffs {
					*trace = append(*trace, traceEvent{int64(dm.Thread.Now()), "diff", df.Page, dm.Node})
				}
			},
		}
	})
	d = New(rt, reg, DefaultCosts())
	d.SetBatching(batched)
	id, _ := reg.Lookup("recorder")
	d.SetDefaultProtocol(id)
	return d, rt, trace
}

// TestBatchFlushOrderDeterministic is the determinism property test for the
// outbox: queueing the same operations in any order must produce the exact
// same wire behaviour — every handler fires at the same virtual time on the
// same node, and the run's clocks and counters match — because Flush
// canonicalizes to (destination ascending, page ascending). Checked on both
// communication paths.
func TestBatchFlushOrderDeterministic(t *testing.T) {
	const nodes, pages = 4, 6
	type op struct {
		inv     bool
		dest    int
		page    int // page index into the allocated run
		payload byte
	}
	var ops []op
	for pg := 0; pg < pages; pg++ {
		for dest := 1; dest < nodes; dest++ {
			ops = append(ops, op{inv: true, dest: dest, page: pg})
			if (pg+dest)%2 == 0 {
				ops = append(ops, op{dest: dest, page: pg, payload: byte(pg*16 + dest)})
			}
		}
	}
	for _, batched := range []bool{true, false} {
		name := "unbatched"
		if batched {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			run := func(perm []int) ([]traceEvent, int64, Stats) {
				d, rt, trace := outboxHarness(nodes, batched)
				base := d.MustMalloc(0, pages*PageSize, nil)
				first := d.Space(0).PageOf(base)
				rt.CreateThread(0, "flusher", func(th *pm2.Thread) {
					b := d.NewBatch(th)
					for _, i := range perm {
						o := ops[i]
						if o.inv {
							b.Invalidate(o.dest, first+Page(o.page), -1)
						} else {
							df := &memory.Diff{Page: first + Page(o.page)}
							df.MergeRecorded(0, []byte{o.payload})
							b.Diff(o.dest, df, false)
						}
					}
					b.Flush(true)
				})
				if err := rt.Run(); err != nil {
					t.Fatal(err)
				}
				return *trace, int64(rt.Now()), d.Stats()
			}
			identity := make([]int, len(ops))
			for i := range identity {
				identity[i] = i
			}
			wantTrace, wantNow, wantStats := run(identity)
			if len(wantTrace) == 0 {
				t.Fatal("flush produced no handler activations; the harness is broken")
			}
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 8; trial++ {
				perm := rng.Perm(len(ops))
				gotTrace, gotNow, gotStats := run(perm)
				if gotNow != wantNow {
					t.Fatalf("trial %d: final clock %d, want %d (insertion order leaked into timing)", trial, gotNow, wantNow)
				}
				if !reflect.DeepEqual(gotTrace, wantTrace) {
					t.Fatalf("trial %d: handler trace diverged under shuffled insertion\ngot  %v\nwant %v", trial, gotTrace, wantTrace)
				}
				if gotStats != wantStats {
					t.Fatalf("trial %d: stats diverged: %+v vs %+v", trial, gotStats, wantStats)
				}
			}
		})
	}
}

// TestBatchFlushCoalescesEnvelopes pins the aggregation arithmetic: on the
// batched path, N operations to K destinations depart as K envelopes; on
// the unbatched path every invalidation is its own envelope and each
// destination's diff list is one more.
func TestBatchFlushCoalescesEnvelopes(t *testing.T) {
	const nodes = 4
	for _, batched := range []bool{true, false} {
		d, rt, _ := outboxHarness(nodes, batched)
		base := d.MustMalloc(0, 2*PageSize, nil)
		first := d.Space(0).PageOf(base)
		before := d.Stats()
		rt.CreateThread(0, "flusher", func(th *pm2.Thread) {
			b := d.NewBatch(th)
			for dest := 1; dest < nodes; dest++ {
				b.Invalidate(dest, first, -1)
				b.Invalidate(dest, first+1, -1)
				df := &memory.Diff{Page: first}
				df.MergeRecorded(0, []byte{1})
				b.Diff(dest, df, false)
			}
			b.Flush(true)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		ops, envs := st.Sends-before.Sends, st.Envelopes-before.Envelopes
		if ops != 9 {
			t.Fatalf("batched=%v: %d ops sent, want 9", batched, ops)
		}
		wantEnvs := int64(3) // one per destination
		if !batched {
			wantEnvs = 9 // 6 invalidations + 3 diff lists
		}
		if envs != wantEnvs {
			t.Fatalf("batched=%v: %d envelopes, want %d", batched, envs, wantEnvs)
		}
		if st.InvAcks-before.InvAcks != 6 {
			t.Fatalf("batched=%v: %d invalidation acks, want 6", batched, st.InvAcks-before.InvAcks)
		}
	}
}

// TestBatchFlushDedupsInvalidations pins the duplicate-invalidation rule on
// BOTH communication paths: queueing the same page for the same destination
// several times ships (and acknowledges) it exactly once per flush. The
// unbatched path has always collapsed duplicates through its per-(node, page)
// ack bookkeeping; canonicalize dedups for the batched path too, so the
// Invalidations/InvAcks accounting is identical across paths.
func TestBatchFlushDedupsInvalidations(t *testing.T) {
	const nodes = 3
	for _, batched := range []bool{true, false} {
		d, rt, trace := outboxHarness(nodes, batched)
		base := d.MustMalloc(0, 2*PageSize, nil)
		first := d.Space(0).PageOf(base)
		rt.CreateThread(0, "flusher", func(th *pm2.Thread) {
			b := d.NewBatch(th)
			b.Invalidate(1, first, -1)
			b.Invalidate(1, first, -1) // exact duplicate
			b.Invalidate(1, first, 2)  // same page, different owner hint: last hint wins
			b.Invalidate(1, first+1, -1)
			b.Invalidate(2, first, -1) // other destination: independent
			b.Flush(true)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*trace) != 3 {
			t.Fatalf("batched=%v: %d invalidations ran, want 3 (deduped)", batched, len(*trace))
		}
		if st := d.Stats(); st.Invalidations != 3 || st.InvAcks != 3 {
			t.Fatalf("batched=%v: Invalidations=%d InvAcks=%d, want 3/3", batched, st.Invalidations, st.InvAcks)
		}
	}
}

// TestInvalidateCopiesBatched pins the single-page convenience wrapper's
// contract on both paths: every copyset holder except self and the new
// owner is invalidated (blocking until acknowledged), and the batched path
// ships one envelope per destination.
func TestInvalidateCopiesBatched(t *testing.T) {
	const nodes = 4
	for _, batched := range []bool{true, false} {
		d, rt, trace := outboxHarness(nodes, batched)
		base := d.MustMalloc(0, PageSize, nil)
		pg := d.Space(0).PageOf(base)
		rt.CreateThread(0, "writer", func(th *pm2.Thread) {
			// Copyset includes self (0) and the new owner (2): both skipped.
			var cs NodeSet
			cs.AddRange(0, 3)
			InvalidateCopiesBatched(d, th, pg, cs, 2)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if len(*trace) != 2 {
			t.Fatalf("batched=%v: %d invalidations ran, want 2 (nodes 1 and 3)", batched, len(*trace))
		}
		for i, want := range []int{1, 3} {
			if ev := (*trace)[i]; ev.kind != "inv" || ev.node != want || ev.page != pg {
				t.Fatalf("batched=%v: event %d = %+v, want inv of page %d on node %d", batched, i, ev, pg, want)
			}
		}
		if st := d.Stats(); st.Invalidations != 2 || st.InvAcks != 2 {
			t.Fatalf("batched=%v: Invalidations=%d InvAcks=%d, want 2/2", batched, st.Invalidations, st.InvAcks)
		}
	}
}

// TestWriteNoticeRoundTrip checks the piggyback plumbing end to end at the
// core level: notices queued before a barrier ride it, every participant
// applies the canonical union, and stale non-writer copies are gone after
// the barrier while the sole writer's copy and the home's reference copy
// survive.
func TestWriteNoticeRoundTrip(t *testing.T) {
	const nodes = 3
	d, rt, _ := outboxHarness(nodes, true)
	base := d.MustMalloc(0, PageSize, nil)
	pg := d.Space(0).PageOf(base)
	// Give nodes 1 and 2 read copies, registered in the home's copyset.
	for n := 1; n < nodes; n++ {
		d.Space(n).SetAccess(pg, memory.ReadOnly)
		d.Entry(0, pg).AddCopyset(n)
	}
	bar := d.NewBarrier(nodes)
	for n := 0; n < nodes; n++ {
		n := n
		rt.CreateThread(n, fmt.Sprintf("w%d", n), func(th *pm2.Thread) {
			if n == 1 {
				// Node 1 is the writer: its release queued a notice.
				d.QueueWriteNotice(th, bar, pg)
			}
			d.Barrier(th, bar)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// The home's copyset stays a superset of the holders (never pruned at
	// a barrier — see applyNotice); the writer must still be a member.
	if e := d.Entry(0, pg); !e.InCopyset(1) {
		t.Fatalf("home copyset after barrier = %v, writer 1 must remain a member", e.Copyset)
	}
	if d.Space(1).AccessOf(pg) == memory.NoAccess {
		t.Fatal("sole writer's copy was dropped; it is the freshest replica")
	}
	if d.Space(2).AccessOf(pg) != memory.NoAccess {
		t.Fatal("stale reader copy survived the barrier notice")
	}
	if d.Stats().Notices != 1 {
		t.Fatalf("Notices = %d, want 1", d.Stats().Notices)
	}
}
