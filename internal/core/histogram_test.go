package core

import (
	"math/rand"
	"testing"

	"dsmpm2/internal/sim"
)

// TestHistogramBucketBoundaries pins the grid itself: every bucket's upper
// bound maps back into that bucket, the next nanosecond maps into a later
// one, and small durations get exact unit buckets.
func TestHistogramBucketBoundaries(t *testing.T) {
	for v := int64(0); v < histSub; v++ {
		if got := histBucketOf(v); got != int(v) {
			t.Fatalf("histBucketOf(%d) = %d, want exact unit bucket", v, got)
		}
		if got := histBucketMax(int(v)); got != v {
			t.Fatalf("histBucketMax(%d) = %d, want %d", v, got, v)
		}
	}
	for i := 0; i < histBuckets; i++ {
		hi := histBucketMax(i)
		if got := histBucketOf(hi); got != i {
			t.Fatalf("bucket %d upper bound %d maps to bucket %d", i, hi, got)
		}
		if i > 0 {
			lo := histBucketMax(i-1) + 1
			if got := histBucketOf(lo); got != i {
				t.Fatalf("bucket %d lower bound %d maps to bucket %d", i, lo, got)
			}
		}
	}
	// The full int64 range is covered and monotone at the top.
	if got := histBucketOf(1<<63 - 1); got != histBuckets-1 {
		t.Fatalf("max int64 maps to bucket %d, want last bucket %d", got, histBuckets-1)
	}
	// Relative error bound: every bucket above the exact range spans less
	// than a 1/histSub fraction of its lower bound.
	for i := histSub + 1; i < histBuckets; i++ {
		lo, hi := histBucketMax(i-1)+1, histBucketMax(i)
		if (hi-lo+1)*histSub > lo+histSub {
			t.Fatalf("bucket %d [%d,%d] wider than the %v%% resolution bound", i, lo, hi, 100.0/histSub)
		}
	}
}

// TestHistogramQuantiles checks deterministic quantile extraction against a
// brute-force oracle: the reported quantile must be the grid upper bound of
// the bucket holding the ceil(q*n)-th smallest sample.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..100 microseconds: p50 must cover 50us, p99 must cover 99us.
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	checks := []struct {
		q      float64
		sample sim.Duration // the rank-selected raw sample the bucket must cover
	}{
		{0.50, 50 * sim.Microsecond},
		{0.95, 95 * sim.Microsecond},
		{0.99, 99 * sim.Microsecond},
		{1.00, 100 * sim.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		want := sim.Duration(histBucketMax(histBucketOf(int64(c.sample))))
		if got != want {
			t.Errorf("Quantile(%v) = %v, want grid value %v covering sample %v", c.q, got, want, c.sample)
		}
		if got < c.sample {
			t.Errorf("Quantile(%v) = %v below its rank sample %v", c.q, got, c.sample)
		}
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	wantMean := sim.Duration(50500) * sim.Microsecond / 1000 // mean of 1..100 us = 50.5us
	if h.Mean() != wantMean {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.Max() != 100*sim.Microsecond {
		t.Fatalf("Max = %v, want 100us", h.Max())
	}
}

// TestHistogramEmpty pins the empty-histogram edge: zero count, zero
// quantiles, zero mean — no panics, no NaNs.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d p50=%v p99=%v mean=%v max=%v",
			h.Count(), h.Quantile(0.5), h.Quantile(0.99), h.Mean(), h.Max())
	}
	var o Histogram
	h.Merge(&o)
	if h.Count() != 0 {
		t.Fatal("merging two empty histograms produced samples")
	}
}

// TestHistogramNegativeClamped: negative durations (clock skew in caller
// arithmetic) clamp to the zero bucket instead of corrupting the array.
func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Quantile(1) != 0 || h.Max() != 0 {
		t.Fatalf("negative sample mishandled: count=%d p100=%v max=%v", h.Count(), h.Quantile(1), h.Max())
	}
}

// TestHistogramMergeAcrossNodes: recording a sample set into N per-node
// histograms and merging them must be bit-identical to recording everything
// into one histogram, for any partition of the samples.
func TestHistogramMergeAcrossNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]sim.Duration, 5000)
	for i := range samples {
		samples[i] = sim.Duration(rng.Int63n(int64(50 * sim.Millisecond)))
	}
	var whole Histogram
	for _, s := range samples {
		whole.Record(s)
	}
	const nodes = 4
	var parts [nodes]Histogram
	for i, s := range samples {
		parts[rng.Intn(nodes)].Record(s)
		_ = i
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged per-node histograms differ from the whole-set histogram")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("Quantile(%v) differs after merge: %v vs %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestHistogramOrderIndependenceProperty is the replay-determinism property
// in the style of determinism_test.go: any shuffle of the same sample set
// produces a bit-identical histogram (struct equality — every bucket, count,
// sum and max), which is what lets two replayed runs of one seed compare
// histograms with ==.
func TestHistogramOrderIndependenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(2000)
		samples := make([]sim.Duration, n)
		for i := range samples {
			samples[i] = sim.Duration(rng.Int63n(int64(sim.Second)))
		}
		var want Histogram
		for _, s := range samples {
			want.Record(s)
		}
		shuffled := append([]sim.Duration(nil), samples...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var got Histogram
		for _, s := range shuffled {
			got.Record(s)
		}
		if got != want {
			t.Fatalf("trial %d: shuffled insertion order changed the histogram", trial)
		}
	}
}

// TestHistogramCaptureRestore round-trips a histogram through its serialized
// form and requires bit-identity, the property checkpoints rely on.
func TestHistogramCaptureRestore(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		h.Record(sim.Duration(rng.Int63n(int64(200 * sim.Millisecond))))
	}
	st := h.capture("get")
	if st.Kind != "get" || st.N != 1000 {
		t.Fatalf("capture header wrong: %+v", st)
	}
	var back Histogram
	if err := back.restore(st); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("capture/restore round trip not bit-identical")
	}
	if err := back.restore(HistogramState{Buckets: []HistBucket{{I: histBuckets, C: 1}}}); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}

// TestOpHistRegistry pins the DSM-level registry: lazily created, stable
// across lookups, kinds reported in sorted order.
func TestOpHistRegistry(t *testing.T) {
	d := &DSM{}
	g := d.OpHist("get")
	g.Record(5 * sim.Microsecond)
	if d.OpHist("get") != g {
		t.Fatal("OpHist created a second histogram for the same kind")
	}
	d.OpHist("put")
	d.OpHist("drop")
	kinds := d.OpKinds()
	want := []string{"drop", "get", "put"}
	if len(kinds) != len(want) {
		t.Fatalf("OpKinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("OpKinds = %v, want %v", kinds, want)
		}
	}
	if d.OpHist("get").Count() != 1 {
		t.Fatal("recorded sample lost")
	}
}
