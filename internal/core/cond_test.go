package core

import (
	"fmt"
	"testing"

	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// condDSM builds a DSM with a trivial local protocol for condvar tests.
func condDSM(t *testing.T, nodes int) *DSM {
	d := newDSM(nodes)
	h, _ := localProto("p")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	return d
}

func TestCondSignalWakesOldestWaiter(t *testing.T) {
	d := condDSM(t, 2)
	lock := d.NewLock(0)
	cond := d.NewCond(lock)
	rt := d.Runtime()
	var woken []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		start := sim.Time(i * 1000)
		node := i % 2
		rt.Engine().Schedule(start, func() {})
		i := i
		rt.CreateThread(node, name, func(th *pm2.Thread) {
			th.Advance(sim.Duration(i) * 100 * sim.Microsecond) // stagger arrival
			d.Acquire(th, lock)
			d.CondWait(th, cond)
			woken = append(woken, th.Name())
			d.Release(th, lock)
		})
	}
	rt.CreateThread(0, "signaler", func(th *pm2.Thread) {
		th.Advance(10 * sim.Millisecond)
		for i := 0; i < 3; i++ {
			d.Acquire(th, lock)
			d.CondSignal(th, cond)
			d.Release(th, lock)
			th.Advance(5 * sim.Millisecond)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woken) != 3 {
		t.Fatalf("woken = %v", woken)
	}
	for i, name := range []string{"w0", "w1", "w2"} {
		if woken[i] != name {
			t.Fatalf("wake order = %v, want FIFO", woken)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	d := condDSM(t, 2)
	lock := d.NewLock(1)
	cond := d.NewCond(lock)
	rt := d.Runtime()
	woken := 0
	for i := 0; i < 4; i++ {
		rt.CreateThread(i%2, fmt.Sprintf("w%d", i), func(th *pm2.Thread) {
			d.Acquire(th, lock)
			d.CondWait(th, cond)
			woken++
			d.Release(th, lock)
		})
	}
	rt.CreateThread(0, "b", func(th *pm2.Thread) {
		th.Advance(10 * sim.Millisecond)
		d.Acquire(th, lock)
		d.CondBroadcast(th, cond)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("broadcast woke %d of 4", woken)
	}
}

func TestCondNoLostWakeup(t *testing.T) {
	// Signal racing with the waiter's release: the ticket reservation
	// happens under the lock, so the signal must be buffered.
	d := condDSM(t, 2)
	lock := d.NewLock(0)
	cond := d.NewCond(lock)
	rt := d.Runtime()
	done := false
	rt.CreateThread(1, "waiter", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		d.CondWait(th, cond)
		done = true
		d.Release(th, lock)
	})
	rt.CreateThread(0, "signaler", func(th *pm2.Thread) {
		// Signal repeatedly so one lands in the race window no matter
		// how the virtual timings fall.
		for i := 0; i < 5; i++ {
			th.Advance(time100us())
			d.Acquire(th, lock)
			d.CondSignal(th, cond)
			d.Release(th, lock)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waiter never woke")
	}
}

func time100us() sim.Duration { return 100 * sim.Microsecond }

func TestCondValidation(t *testing.T) {
	d := condDSM(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewCond on unknown lock did not panic")
		}
	}()
	d.NewCond(7)
}
