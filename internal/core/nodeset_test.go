package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// refSet is the sorted-[]int reference model NodeSet replaced; the property
// tests below drive both through random op sequences and require identical
// observable behaviour at every step.
type refSet map[int]bool

func (r refSet) add(n int)           { r[n] = true }
func (r refSet) remove(n int)        { delete(r, n) }
func (r refSet) contains(n int) bool { return r[n] }
func (r refSet) sorted() []int {
	out := make([]int, 0, len(r))
	for n := range r {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// checkAgainst fails the test if s and ref disagree on any observable.
func checkAgainst(t *testing.T, s *NodeSet, ref refSet, ctx string) {
	t.Helper()
	want := ref.sorted()
	got := s.AppendTo(nil)
	if len(got) == 0 {
		got = nil
	}
	if len(want) == 0 {
		want = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: AppendTo = %v, want %v", ctx, got, want)
	}
	if s.Len() != len(want) {
		t.Fatalf("%s: Len = %d, want %d", ctx, s.Len(), len(want))
	}
	if s.Empty() != (len(want) == 0) {
		t.Fatalf("%s: Empty = %v with %d members", ctx, s.Empty(), len(want))
	}
}

// TestNodeSetPropertyVsReference drives NodeSet and the sorted-slice
// reference through identical random add/remove sequences — several RNG
// seeds, one with a node universe small enough to force dense runs and one
// fragmented enough (alternating parity) to cross the bitmap threshold —
// and spot-checks membership over the whole universe after every batch.
func TestNodeSetPropertyVsReference(t *testing.T) {
	for _, tc := range []struct {
		seed     int64
		universe int
		ops      int
	}{
		{seed: 1, universe: 16, ops: 400},    // dense, few runs
		{seed: 2, universe: 600, ops: 2000},  // sparse at 512-node scale
		{seed: 3, universe: 200, ops: 3000},  // heavy churn, forces bitmap
		{seed: 4, universe: 70, ops: 1500},   // mid-size, interior splits
		{seed: 5, universe: 4096, ops: 1200}, // wide universe, long runs via ranges
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed%d_u%d", tc.seed, tc.universe), func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			var s NodeSet
			ref := refSet{}
			for i := 0; i < tc.ops; i++ {
				n := rng.Intn(tc.universe)
				switch op := rng.Intn(10); {
				case op < 5:
					s.Add(n)
					ref.add(n)
				case op < 8:
					s.Remove(n)
					ref.remove(n)
				default: // range insert: the common copyset growth pattern
					hi := n + rng.Intn(8)
					s.AddRange(n, hi)
					for v := n; v <= hi; v++ {
						ref.add(v)
					}
				}
				if s.Contains(n) != ref.contains(n) {
					t.Fatalf("op %d: Contains(%d) = %v, ref %v", i, n, s.Contains(n), ref.contains(n))
				}
				if i%97 == 0 {
					checkAgainst(t, &s, ref, fmt.Sprintf("op %d", i))
				}
			}
			checkAgainst(t, &s, ref, "final")
			// Membership across the whole universe, including non-members.
			for n := 0; n < tc.universe; n++ {
				if s.Contains(n) != ref.contains(n) {
					t.Fatalf("final: Contains(%d) = %v, ref %v", n, s.Contains(n), ref.contains(n))
				}
			}
		})
	}
}

// TestNodeSetUnion checks Union against the reference on random pairs,
// mixing run-form and bitmap-form operands.
func TestNodeSetUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var a, b NodeSet
		ra, rb := refSet{}, refSet{}
		for i := 0; i < rng.Intn(120); i++ {
			n := rng.Intn(300)
			if rng.Intn(4) == 0 {
				n = rng.Intn(300) * 2 // even-only stretches fragment a
			}
			a.Add(n)
			ra.add(n)
		}
		for i := 0; i < rng.Intn(120); i++ {
			n := rng.Intn(300)
			b.Add(n)
			rb.add(n)
		}
		a.Union(b)
		for n := range rb {
			ra.add(n)
		}
		checkAgainst(t, &a, ra, fmt.Sprintf("trial %d union", trial))
		checkAgainst(t, &b, rb, fmt.Sprintf("trial %d operand b untouched", trial))
	}
}

// TestNodeSetSnapshotRoundTrip pins the wire form: AppendTo must emit the
// exact sorted slice snapshots have always carried, and FromSlice must
// rebuild an equivalent set from it (in any input order, with duplicates).
func TestNodeSetSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		var s NodeSet
		ref := refSet{}
		for i := 0; i < rng.Intn(200); i++ {
			n := rng.Intn(512)
			s.Add(n)
			ref.add(n)
		}
		wire := s.AppendTo(nil)
		if !sort.IntsAreSorted(wire) {
			t.Fatalf("trial %d: wire form not sorted: %v", trial, wire)
		}
		// Shuffle and duplicate some members before rebuilding: custom
		// protocols may assemble wire copysets by hand.
		scrambled := append([]int(nil), wire...)
		scrambled = append(scrambled, wire...)
		rng.Shuffle(len(scrambled), func(i, j int) {
			scrambled[i], scrambled[j] = scrambled[j], scrambled[i]
		})
		var back NodeSet
		back.FromSlice(scrambled)
		checkAgainst(t, &back, ref, fmt.Sprintf("trial %d round trip", trial))
	}
}

// TestNodeSetBitmapCrossing forces the run list past nodeSetMaxRuns with
// alternating membership and checks behaviour stays identical across the
// representation switch, including Take and Clone.
func TestNodeSetBitmapCrossing(t *testing.T) {
	var s NodeSet
	ref := refSet{}
	for n := 0; n < 4*nodeSetMaxRuns; n += 2 {
		s.Add(n)
		ref.add(n)
	}
	if s.Runs() != 0 {
		t.Fatalf("Runs = %d after %d alternating adds, want bitmap form (0)", s.Runs(), 2*nodeSetMaxRuns)
	}
	checkAgainst(t, &s, ref, "after crossing")

	cl := s.Clone()
	cl.Add(1)
	if s.Contains(1) {
		t.Fatal("Clone shares storage with the original")
	}

	taken := s.Take()
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("Take left members behind")
	}
	checkAgainst(t, &taken, ref, "taken set")

	// The emptied receiver returns to the compact run representation.
	s.Add(3)
	if s.Runs() != 1 || !s.Contains(3) {
		t.Fatalf("emptied set reuse: Runs=%d Contains(3)=%v", s.Runs(), s.Contains(3))
	}
}

// TestNodeSetRunCoalescing pins the O(runs) promise for the common shapes:
// a 512-node read-shared page is one run however its members arrive.
func TestNodeSetRunCoalescing(t *testing.T) {
	var s NodeSet
	// Insert 0..511 in a scrambled order; the runs must coalesce to one.
	rng := rand.New(rand.NewSource(13))
	perm := rng.Perm(512)
	for _, n := range perm {
		s.Add(n)
	}
	if s.Runs() != 1 || s.Len() != 512 {
		t.Fatalf("512 contiguous members: Runs=%d Len=%d, want 1 run", s.Runs(), s.Len())
	}
	// Punch one hole: exactly two runs.
	s.Remove(100)
	if s.Runs() != 2 || s.Contains(100) {
		t.Fatalf("after interior remove: Runs=%d, want 2", s.Runs())
	}
	// Refill the hole: back to one.
	s.Add(100)
	if s.Runs() != 1 {
		t.Fatalf("after refill: Runs=%d, want 1", s.Runs())
	}
}

// TestNodeSetStringForm pins the diagnostic rendering to the sorted-slice
// shape test-failure messages have always shown.
func TestNodeSetStringForm(t *testing.T) {
	var s NodeSet
	for _, n := range []int{9, 1, 4} {
		s.Add(n)
	}
	if got := fmt.Sprintf("%v", s); got != "[1 4 9]" {
		t.Fatalf("String = %q, want %q", got, "[1 4 9]")
	}
	var empty NodeSet
	if got := fmt.Sprintf("%v", empty); got != "[]" {
		t.Fatalf("empty String = %q, want %q", got, "[]")
	}
}

// TestNodeSetNegativePanics pins the contract that node ids are never
// negative (slice -1 metadata is directory-side, not copyset-side).
func TestNodeSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var s NodeSet
	s.Add(-1)
}
