package core

import (
	"fmt"
	"sort"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/sim"
)

// Stats aggregates DSM activity counters across all nodes.
type Stats struct {
	Allocs     int
	AllocBytes int64

	ReadFaults  int64
	WriteFaults int64

	Requests      int64
	PageSends     int64
	PageBytes     int64
	Invalidations int64
	DiffsSent     int64
	DiffBytes     int64

	// Comm-module accounting. Sends counts every DSM message shipped
	// (requests, pages, invalidations, diff lists — whether alone or inside
	// a batch); InvAcks counts invalidation acknowledgements received
	// (individually or coalesced in a batch reply); Envelopes counts the
	// wire envelopes the DSM shipped, where a batched flush to one
	// destination counts once however many operations it carries; Notices
	// counts write notices piggybacked on barrier messages. The spread
	// between Sends and Envelopes is what batching saved.
	Sends     int64
	InvAcks   int64
	Envelopes int64
	Notices   int64

	Acquires int64
	Releases int64
	Barriers int64

	GetOps     int64
	PutOps     int64
	ObjFetches int64

	Migrations int64

	// Placement accounting (see profiler.go / migrate.go). RemoteFetches
	// counts page requests sent to another node (always maintained);
	// MisplacedFetches counts the subset issued by a page's profiled
	// dominant writer while the page was homed elsewhere — the traffic home
	// migration removes; HomeMigrations counts completed re-homings.
	RemoteFetches    int64
	MisplacedFetches int64
	HomeMigrations   int64
}

// st returns the Stats block every increment issued from node's context
// lands in: the block of node's event-loop shard. With Shards=1 this is
// always &statsSh[0].
func (d *DSM) st(node int) *Stats { return &d.statsSh[d.rt.ShardOf(node)] }

// buf returns node's shard's buffer pool.
func (d *DSM) buf(node int) *memory.BufPool { return d.bufsSh[d.rt.ShardOf(node)] }

// tlog returns node's shard's fault-timing ring.
func (d *DSM) tlog(node int) *TimingLog { return &d.timingsSh[d.rt.ShardOf(node)] }

// add folds o into s field-wise: the deterministic merge of per-shard
// counter blocks (every field is a sum, so shard order cannot matter — but
// the fold still walks shards in index order).
func (s *Stats) add(o *Stats) {
	s.Allocs += o.Allocs
	s.AllocBytes += o.AllocBytes
	s.ReadFaults += o.ReadFaults
	s.WriteFaults += o.WriteFaults
	s.Requests += o.Requests
	s.PageSends += o.PageSends
	s.PageBytes += o.PageBytes
	s.Invalidations += o.Invalidations
	s.DiffsSent += o.DiffsSent
	s.DiffBytes += o.DiffBytes
	s.Sends += o.Sends
	s.InvAcks += o.InvAcks
	s.Envelopes += o.Envelopes
	s.Notices += o.Notices
	s.Acquires += o.Acquires
	s.Releases += o.Releases
	s.Barriers += o.Barriers
	s.GetOps += o.GetOps
	s.PutOps += o.PutOps
	s.ObjFetches += o.ObjFetches
	s.Migrations += o.Migrations
	s.RemoteFetches += o.RemoteFetches
	s.MisplacedFetches += o.MisplacedFetches
	s.HomeMigrations += o.HomeMigrations
}

// Stats returns a snapshot of the DSM's counters: the per-shard blocks
// folded in shard order. Call it when the machine is idle (between runs or
// at a covered barrier); a mid-run snapshot on a sharded machine reflects
// whatever each shard has reached.
func (d *DSM) Stats() Stats {
	out := d.statsSh[0]
	for i := 1; i < len(d.statsSh); i++ {
		out.add(&d.statsSh[i])
	}
	return out
}

// FaultsOn reports the number of faults (read and write) taken by threads
// while located on node. The per-node distribution exposes the load
// imbalance Figure 4 attributes to migrate_thread: after the threads pile
// onto the bound's owner, faults stop occurring anywhere else.
func (d *DSM) FaultsOn(node int) int64 {
	if node < 0 || node >= len(d.nodeFaults) {
		return 0
	}
	return d.nodeFaults[node]
}

// CountMigration is called by the toolbox when a protocol migrates a thread;
// node is the migrating thread's source node.
func (d *DSM) CountMigration(node int) { d.st(node).Migrations++ }

// CountObjFetch is called by object protocols when a get/put misses the
// local cache and fetches the page; node is the accessing thread's node.
func (d *DSM) CountObjFetch(node int) { d.st(node).ObjFetches++ }

// FaultTiming decomposes one fault's handling into the steps of the paper's
// Tables 3 and 4. Page-policy faults fill Request/Transfer/Server/Install;
// migration-policy faults fill Migration/Overhead. All durations are
// virtual time.
type FaultTiming struct {
	Start    sim.Time
	Protocol string
	Write    bool

	// Link names the profile of the link that carried the page transfer
	// (empty for faults resolved without a transfer, e.g. migration
	// policies or local upgrades). Under a heterogeneous topology it
	// attributes each fault to its link class, so reports can split
	// intra- from inter-cluster costs.
	Link string

	Detect    sim.Duration // signal catch + parameter extraction (11us)
	Request   sim.Duration // control message to the owner
	Server    sim.Duration // request processing on the owner node
	Transfer  sim.Duration // page transfer back
	Install   sim.Duration // page installation on the requester
	Migration sim.Duration // thread migration (migration policy)
	Overhead  sim.Duration // handler overhead (migration policy)

	Total sim.Duration
}

// ProtocolOverhead returns the part of the fault the paper's tables report
// as "Protocol overhead": server + install for page policies, the handler
// overhead for migration policies.
func (ft *FaultTiming) ProtocolOverhead() sim.Duration {
	if ft.Migration > 0 {
		return ft.Overhead
	}
	return ft.Server + ft.Install
}

// String renders the timing as a compact table row.
func (ft *FaultTiming) String() string {
	kind := "read"
	if ft.Write {
		kind = "write"
	}
	if ft.Migration > 0 {
		return fmt.Sprintf("%s fault [%s]: fault=%v migration=%v overhead=%v total=%v",
			kind, ft.Protocol, ft.Detect, ft.Migration, ft.Overhead, ft.Total)
	}
	return fmt.Sprintf("%s fault [%s]: fault=%v request=%v transfer=%v overhead=%v total=%v",
		kind, ft.Protocol, ft.Detect, ft.Request, ft.Transfer, ft.ProtocolOverhead(), ft.Total)
}

// timingLog is a bounded ring of recent fault timings.
const timingCap = 4096

// TimingLog holds the most recent fault timings for post-mortem inspection.
type TimingLog struct {
	recs []*FaultTiming
	next int
	full bool
}

// Add appends a record, evicting the oldest past capacity.
func (l *TimingLog) Add(ft *FaultTiming) {
	if len(l.recs) < timingCap {
		l.recs = append(l.recs, ft)
		return
	}
	l.recs[l.next] = ft
	l.next = (l.next + 1) % timingCap
	l.full = true
}

// All returns the stored records, oldest first.
func (l *TimingLog) All() []*FaultTiming {
	if !l.full {
		return append([]*FaultTiming(nil), l.recs...)
	}
	out := make([]*FaultTiming, 0, len(l.recs))
	out = append(out, l.recs[l.next:]...)
	out = append(out, l.recs[:l.next]...)
	return out
}

// Len reports the number of stored records.
func (l *TimingLog) Len() int { return len(l.recs) }

// Timings returns the DSM-wide fault-timing log. With one shard it is the
// live ring; with several it is a merged copy, ordered by fault start time
// with shard index as the tiebreak — deterministic, because each shard's
// ring is. As with Stats, call it when the machine is idle.
func (d *DSM) Timings() *TimingLog {
	if len(d.timingsSh) == 1 {
		return &d.timingsSh[0]
	}
	type rec struct {
		ft    *FaultTiming
		shard int
		seq   int
	}
	var all []rec
	for sh := range d.timingsSh {
		for i, ft := range d.timingsSh[sh].All() {
			all = append(all, rec{ft: ft, shard: sh, seq: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ft.Start != all[j].ft.Start {
			return all[i].ft.Start < all[j].ft.Start
		}
		if all[i].shard != all[j].shard {
			return all[i].shard < all[j].shard
		}
		return all[i].seq < all[j].seq
	})
	merged := &TimingLog{}
	for _, r := range all {
		merged.Add(r.ft)
	}
	return merged
}

// LinkSummary aggregates the fault timings whose page transfer crossed one
// link class.
type LinkSummary struct {
	Link      string
	Count     int
	MeanTotal sim.Duration
}

// ByLink groups the stored fault timings by the link that carried their page
// transfer and returns one summary per link name, sorted by name. Faults
// without a transfer link are grouped under "".
func (l *TimingLog) ByLink() []LinkSummary {
	totals := map[string]sim.Duration{}
	counts := map[string]int{}
	for _, ft := range l.All() {
		totals[ft.Link] += ft.Total
		counts[ft.Link]++
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]LinkSummary, 0, len(names))
	for _, name := range names {
		out = append(out, LinkSummary{
			Link:      name,
			Count:     counts[name],
			MeanTotal: totals[name] / sim.Duration(counts[name]),
		})
	}
	return out
}

// MeanTiming averages the stored fault timings matching the given protocol
// name ("" matches all). It returns the mean record and the match count.
func (l *TimingLog) MeanTiming(protocol string) (FaultTiming, int) {
	var sum FaultTiming
	n := 0
	for _, ft := range l.All() {
		if protocol != "" && ft.Protocol != protocol {
			continue
		}
		sum.Detect += ft.Detect
		sum.Request += ft.Request
		sum.Server += ft.Server
		sum.Transfer += ft.Transfer
		sum.Install += ft.Install
		sum.Migration += ft.Migration
		sum.Overhead += ft.Overhead
		sum.Total += ft.Total
		n++
	}
	if n == 0 {
		return FaultTiming{}, 0
	}
	div := sim.Duration(n)
	sum.Detect /= div
	sum.Request /= div
	sum.Server /= div
	sum.Transfer /= div
	sum.Install /= div
	sum.Migration /= div
	sum.Overhead /= div
	sum.Total /= div
	sum.Protocol = protocol
	return sum, n
}
