package core

import (
	"fmt"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// localProto is a minimal single-node protocol for exercising core plumbing:
// it never needs to fetch because tests allocate everything on the accessing
// node. Hook invocations are counted so dispatch can be asserted.
func localProto(name string) (*Hooks, *hookCounts) {
	c := &hookCounts{}
	h := &Hooks{
		ProtoName:     name,
		OnReadFault:   func(*Fault) { c.readFault++ },
		OnWriteFault:  func(*Fault) { c.writeFault++ },
		OnLockAcquire: func(*SyncEvent) { c.acquire++ },
		OnLockRelease: func(*SyncEvent) { c.release++ },
	}
	return h, c
}

type hookCounts struct {
	readFault, writeFault, acquire, release int
}

func newDSM(nodes int) *DSM {
	rt := pm2.NewRuntime(pm2.Config{Nodes: nodes, Network: madeleine.BIPMyrinet, Seed: 1})
	return New(rt, NewRegistry(), DefaultCosts())
}

func TestMallocRequiresProtocol(t *testing.T) {
	d := newDSM(1)
	if _, err := d.Malloc(0, 64, nil); err == nil {
		t.Fatal("Malloc with no default protocol succeeded")
	}
}

func TestMallocAndLocalAccess(t *testing.T) {
	d := newDSM(1)
	h, _ := localProto("local")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	base := d.MustMalloc(0, 128, nil)
	rt := d.Runtime()
	var got uint64
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		d.WriteUint64(th, base+16, 4242)
		got = d.ReadUint64(th, base+16)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 4242 {
		t.Fatalf("round trip = %d", got)
	}
	st := d.Stats()
	if st.Allocs != 1 || st.AllocBytes != PageSize {
		t.Fatalf("alloc stats = %+v", st)
	}
}

func TestMallocBadHome(t *testing.T) {
	d := newDSM(2)
	h, _ := localProto("p")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	if _, err := d.Malloc(0, 64, &Attr{Protocol: -1, Home: 7}); err == nil {
		t.Fatal("Malloc with out-of-range home succeeded")
	}
}

func TestPageInfoRecorded(t *testing.T) {
	d := newDSM(2)
	h, _ := localProto("p")
	id := d.CreateProtocol(h)
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(1, 3*PageSize, nil)
	pg := d.Space(0).PageOf(base)
	for i := Page(0); i < 3; i++ {
		home, proto, ok := d.PageInfo(pg + i)
		if !ok || home != 1 || proto != id {
			t.Fatalf("page %d info = (%d,%d,%v)", pg+i, home, proto, ok)
		}
	}
	if _, _, ok := d.PageInfo(pg + 99); ok {
		t.Fatal("PageInfo invented an allocation")
	}
}

func TestHomeStartsWritable(t *testing.T) {
	d := newDSM(2)
	h, _ := localProto("p")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	base := d.MustMalloc(1, 8, nil)
	pg := d.Space(1).PageOf(base)
	if got := d.Space(1).AccessOf(pg); got != memory.ReadWrite {
		t.Fatalf("home access = %v, want rw-", got)
	}
	if got := d.Space(0).AccessOf(pg); got != memory.NoAccess {
		t.Fatalf("non-home access = %v, want ---", got)
	}
	if !d.Entry(1, pg).Owner {
		t.Fatal("home not owner")
	}
}

func TestFaultDispatchAndCost(t *testing.T) {
	d := newDSM(1)
	// Protocol that grants access on fault, so we can observe the charge.
	var h *Hooks
	h = &Hooks{
		ProtoName: "granter",
		OnReadFault: func(f *Fault) {
			d.Space(f.Node).SetAccess(f.Page, memory.ReadOnly)
		},
		OnWriteFault: func(f *Fault) {
			d.Space(f.Node).SetAccess(f.Page, memory.ReadWrite)
		},
	}
	id := d.CreateProtocol(h)
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	d.Space(0).Drop(pg) // force faults
	rt := d.Runtime()
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		d.ReadUint64(th, base)                        // read fault: granter sets r--
		d.WriteUint64(th, base, 1)                    // write fault: granter sets rw-
		if th.Now() != sim.Time(22*sim.Microsecond) { // two faults at 11us each
			t.Errorf("fault charges = %v, want 22us", th.Now())
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.ReadFaults != 1 || st.WriteFaults != 1 {
		t.Fatalf("fault stats = %+v", st)
	}
	if d.Timings().Len() != 2 {
		t.Fatalf("timing log has %d records, want 2", d.Timings().Len())
	}
}

func TestUnallocatedAccessPanics(t *testing.T) {
	d := newDSM(1)
	h, _ := localProto("p")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	rt := d.Runtime()
	panicked := false
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.ReadUint64(th, 0x400)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("access to unallocated page did not panic")
	}
}

func TestBrokenProtocolDetected(t *testing.T) {
	d := newDSM(1)
	// A protocol whose fault handler does nothing can never satisfy the
	// access; the core must fail fast instead of spinning forever.
	h := &Hooks{ProtoName: "broken"}
	d.SetDefaultProtocol(d.CreateProtocol(h))
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	d.Space(0).Drop(pg)
	rt := d.Runtime()
	panicked := false
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.ReadUint64(th, base)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("endless fault loop not detected")
	}
}

func TestLockMutualExclusionAndHooks(t *testing.T) {
	d := newDSM(2)
	h, counts := localProto("p")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	base := d.MustMalloc(0, 8, nil)
	_ = base
	lock := d.NewLock(1)
	if d.LockHome(lock) != 1 {
		t.Fatal("lock home wrong")
	}
	rt := d.Runtime()
	inside, maxInside := 0, 0
	for n := 0; n < 2; n++ {
		node := n
		for i := 0; i < 3; i++ {
			rt.CreateThread(node, fmt.Sprintf("w%d_%d", node, i), func(th *pm2.Thread) {
				d.Acquire(th, lock)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Advance(1000)
				inside--
				d.Release(th, lock)
			})
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("lock admitted %d threads at once", maxInside)
	}
	if counts.acquire != 6 || counts.release != 6 {
		t.Fatalf("hook counts = %+v, want 6/6", counts)
	}
	st := d.Stats()
	if st.Acquires != 6 || st.Releases != 6 {
		t.Fatalf("lock stats = %+v", st)
	}
}

func TestReleaseOfUnheldLockPanics(t *testing.T) {
	d := newDSM(1)
	h, _ := localProto("p")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	lock := d.NewLock(0)
	rt := d.Runtime()
	panicked := false
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("release of unheld lock not reported to the releasing thread")
	}
}

func TestBarrierRunsHooksAroundWait(t *testing.T) {
	d := newDSM(2)
	h, counts := localProto("p")
	d.SetDefaultProtocol(d.CreateProtocol(h))
	d.MustMalloc(0, 8, nil)
	bar := d.NewBarrier(2)
	rt := d.Runtime()
	var times []int64
	for n := 0; n < 2; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("p%d", node), func(th *pm2.Thread) {
			th.Advance(sim.Duration(node) * 5 * sim.Microsecond)
			d.Barrier(th, bar)
			times = append(times, int64(th.Now()))
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if counts.release != 2 || counts.acquire != 2 {
		t.Fatalf("barrier hooks = %+v, want release=2 acquire=2", counts)
	}
	if d.Stats().Barriers != 2 {
		t.Fatalf("barrier stats = %d", d.Stats().Barriers)
	}
}

func TestObjectAllocationNeverStraddles(t *testing.T) {
	d := newDSM(2)
	h, _ := localProto("p")
	id := d.CreateProtocol(h)
	d.SetDefaultProtocol(id)
	// Allocate many odd-sized objects; none may straddle a page.
	for i := 0; i < 200; i++ {
		nf := 1 + i%63
		o := d.MustNewObject(i%2, nf, id)
		first := uint64(o.Base) / PageSize
		last := (uint64(o.Base) + uint64(nf*FieldBytes) - 1) / PageSize
		if first != last {
			t.Fatalf("object %d (%d fields) straddles pages %d..%d", i, nf, first, last)
		}
	}
}

func TestObjectTooBig(t *testing.T) {
	d := newDSM(1)
	h, _ := localProto("p")
	id := d.CreateProtocol(h)
	d.SetDefaultProtocol(id)
	if _, err := d.NewObject(0, PageSize/FieldBytes+1, id); err == nil {
		t.Fatal("page-sized+1 object allocation succeeded")
	}
	if _, err := d.NewObject(0, 0, id); err == nil {
		t.Fatal("zero-field object allocation succeeded")
	}
}

func TestObjRefFieldBounds(t *testing.T) {
	o := ObjRef{Base: 0x1000, Fields: 3}
	if o.Field(2) != 0x1000+16 {
		t.Fatalf("field addr = %#x", o.Field(2))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range field did not panic")
		}
	}()
	o.Field(3)
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	id := r.Register("alpha", func(*DSM) Protocol { h, _ := localProto("alpha"); return h })
	if got, ok := r.Lookup("alpha"); !ok || got != id {
		t.Fatal("lookup failed")
	}
	if r.Name(id) != "alpha" {
		t.Fatal("name failed")
	}
	if _, ok := r.Lookup("beta"); ok {
		t.Fatal("lookup invented a protocol")
	}
	if len(r.Names()) != 1 || r.Len() != 1 {
		t.Fatal("names/len wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register("alpha", func(*DSM) Protocol { return nil })
}

func TestHooksNilSafe(t *testing.T) {
	h := &Hooks{ProtoName: "empty"}
	h.ReadFaultHandler(nil)
	h.WriteFaultHandler(nil)
	h.ReadServer(nil)
	h.WriteServer(nil)
	h.InvalidateServer(nil)
	h.ReceivePageServer(nil)
	h.LockAcquire(nil)
	h.LockRelease(nil)
	if h.Name() != "empty" {
		t.Fatal("name")
	}
}

func TestEntryCopysetOps(t *testing.T) {
	e := &Entry{}
	e.AddCopyset(3)
	e.AddCopyset(1)
	e.AddCopyset(3) // dup ignored
	if e.Copyset.Len() != 2 || !e.InCopyset(1) || !e.InCopyset(3) || e.InCopyset(2) {
		t.Fatalf("copyset = %v", e.Copyset)
	}
	e.RemoveCopyset(3)
	if e.InCopyset(3) {
		t.Fatal("remove failed")
	}
	e.AddCopyset(9)
	e.AddCopyset(4)
	got := e.TakeCopyset().AppendTo(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 9 {
		t.Fatalf("TakeCopyset = %v, want sorted [1 4 9]", got)
	}
	if !e.Copyset.Empty() {
		t.Fatal("copyset not emptied")
	}
}

func TestTimingLogRing(t *testing.T) {
	var l TimingLog
	for i := 0; i < timingCap+10; i++ {
		l.Add(&FaultTiming{Detect: sim.Duration(i + 1)})
	}
	all := l.All()
	if len(all) != timingCap {
		t.Fatalf("ring holds %d, want %d", len(all), timingCap)
	}
	if all[0].Detect != sim.Duration(11) {
		t.Fatalf("oldest record = %v, want 11 (ring evicted wrong end)", all[0].Detect)
	}
	mean, n := l.MeanTiming("")
	if n != timingCap || mean.Detect == 0 {
		t.Fatalf("mean over %d records = %+v", n, mean)
	}
	if _, n := l.MeanTiming("nosuch"); n != 0 {
		t.Fatal("mean matched a nonexistent protocol")
	}
}
