package core

import (
	"fmt"

	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Cluster-wide condition variables, rounding out the generic core's
// synchronization objects ("locks, barriers, etc.", Section 2.2). A
// condition variable is associated with a DSM lock and lives on that lock's
// manager node; Wait/Signal follow Mesa semantics, and waiting releases and
// re-acquires the lock through the normal Release/Acquire paths, so the
// protocols' consistency actions run exactly as for any other release and
// acquire.

const (
	svcCondReserve = "dsm.cond.reserve"
	svcCondBlock   = "dsm.cond.block"
	svcCondSignal  = "dsm.cond.signal"
)

// condState is the manager-side state of one condition variable.
type condState struct {
	id      int
	lock    int
	home    int
	nextTkt int
	// tickets holds one queue per outstanding waiter. Reservation happens
	// while the lock is still held, so a signal sent between the waiter's
	// release and its block call is buffered in the ticket queue and the
	// block returns immediately — no lost wakeups.
	tickets map[int]*sim.Chan
	order   []int // FIFO of outstanding ticket ids
}

// condReq is the wire payload of condition-variable RPCs.
type condReq struct {
	id     int
	ticket int
	all    bool
}

// NewCond creates a condition variable associated with DSM lock lockID and
// returns its id. The condition lives on the lock's manager node.
func (d *DSM) NewCond(lockID int) int {
	if lockID < 0 || lockID >= len(d.locks) {
		panic(fmt.Sprintf("core: condition on unknown lock %d", lockID))
	}
	id := len(d.conds)
	d.conds = append(d.conds, &condState{
		id:      id,
		lock:    lockID,
		home:    d.locks[lockID].home,
		tickets: make(map[int]*sim.Chan),
	})
	return id
}

// registerCondServices installs the condition-variable manager services on
// node. Called from registerSyncServices.
func (d *DSM) registerCondServices(node *pm2.Node) {
	node.Register(svcCondReserve, true, func(h *pm2.Thread, arg interface{}) interface{} {
		req := arg.(*condReq)
		cs := d.conds[req.id]
		cs.nextTkt++
		tkt := cs.nextTkt
		cs.tickets[tkt] = new(sim.Chan)
		cs.order = append(cs.order, tkt)
		return tkt
	})
	node.Register(svcCondBlock, true, func(h *pm2.Thread, arg interface{}) interface{} {
		req := arg.(*condReq)
		cs := d.conds[req.id]
		ch := cs.tickets[req.ticket]
		if ch == nil {
			return nil // spurious; treated as immediate wakeup
		}
		ch.Recv(h.Proc())
		delete(cs.tickets, req.ticket)
		return nil
	})
	node.Register(svcCondSignal, true, func(h *pm2.Thread, arg interface{}) interface{} {
		req := arg.(*condReq)
		cs := d.conds[req.id]
		n := 1
		if req.all {
			n = len(cs.order)
		}
		for ; n > 0 && len(cs.order) > 0; n-- {
			tkt := cs.order[0]
			cs.order = cs.order[1:]
			if ch := cs.tickets[tkt]; ch != nil {
				ch.Push(nil)
			}
		}
		return nil
	})
}

// CondWait atomically releases the condition's lock and blocks until
// signalled, then re-acquires the lock. The caller must hold the lock; as
// with any Mesa-style condition, re-check the predicate in a loop.
func (d *DSM) CondWait(t *pm2.Thread, condID int) {
	if condID < 0 || condID >= len(d.conds) {
		panic(fmt.Sprintf("core: wait on unknown condition %d", condID))
	}
	cs := d.conds[condID]
	// Reserve a ticket while still holding the lock: signals from the
	// moment the lock is released will find the ticket.
	tkt := t.Call(cs.home, svcCondReserve, &condReq{id: condID}, ctrlBytes, ctrlBytes).(int)
	d.Release(t, cs.lock)
	t.Call(cs.home, svcCondBlock, &condReq{id: condID, ticket: tkt}, ctrlBytes, ctrlBytes)
	d.Acquire(t, cs.lock)
}

// CondSignal wakes the oldest waiter on the condition, if any.
func (d *DSM) CondSignal(t *pm2.Thread, condID int) {
	if condID < 0 || condID >= len(d.conds) {
		panic(fmt.Sprintf("core: signal on unknown condition %d", condID))
	}
	cs := d.conds[condID]
	t.Call(cs.home, svcCondSignal, &condReq{id: condID}, ctrlBytes, ctrlBytes)
}

// CondBroadcast wakes every waiter on the condition.
func (d *DSM) CondBroadcast(t *pm2.Thread, condID int) {
	if condID < 0 || condID >= len(d.conds) {
		panic(fmt.Sprintf("core: broadcast on unknown condition %d", condID))
	}
	cs := d.conds[condID]
	t.Call(cs.home, svcCondSignal, &condReq{id: condID, all: true}, ctrlBytes, ctrlBytes)
}
