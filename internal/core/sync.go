package core

import (
	"fmt"

	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Synchronization objects of the generic core (Section 2.2, "Synchronization
// and consistency"): cluster-wide locks and barriers whose acquire/release
// events trigger the consistency actions of weak models. Each lock lives on
// a manager (home) node; acquire and release are RPCs to it, and grants are
// FIFO.

// lockWaiter is one queued acquirer: its grant channel plus the node it
// asked from, so crash recovery can cancel a dead node's queued requests.
// Pushing true grants the lock; pushing false cancels the wait.
type lockWaiter struct {
	ch   *sim.Chan
	from int
}

// lockState is the manager-side state of one DSM lock.
type lockState struct {
	id      int
	home    int
	held    bool
	holder  int // node id of current holder
	waiters []*lockWaiter
	bound   []Page // pages associated via BindLock (entry consistency)
}

// barrierWaiter is one blocked barrier arrival. participant is -1 for
// anonymous arrivals; fault-tolerant participants identify themselves so a
// restarted participant's re-arrival replaces its dead predecessor's slot
// instead of over-counting.
type barrierWaiter struct {
	ch          *sim.Chan
	participant int
}

// barrierState is the manager-side state of one DSM barrier. gen counts
// completed generations, so re-arrivals for an already-released generation
// return immediately. notices accumulates the write notices the current
// generation's arrivals piggybacked; the release distributes their
// canonical union to every participant.
type barrierState struct {
	id      int
	home    int
	n       int
	gen     int
	arrived int
	waiters []*barrierWaiter
	notices []WriteNotice
	// arrivedNodes tracks which nodes this generation's arrivals came
	// from: a generation that distributes write notices must have heard
	// from every node, or uncovered nodes would keep stale copies.
	arrivedNodes map[int]bool
}

// barrierGrant is the value a completing barrier hands every participant:
// the aggregated write notices of the generation plus the home-migration
// notices the epoch's decisions produced, both in canonical order. Parked
// arrivals receive it through their waiter channel; the last arrival returns
// it directly as the RPC result.
type barrierGrant struct {
	notices    []WriteNotice
	migrations []MigrationNotice
}

// grantReply wraps a grant for the RPC reply, charging the wire for the
// notices it carries — piggybacking saves the round trips, not the bytes.
func grantReply(g *barrierGrant) interface{} {
	if g == nil {
		return nil
	}
	return &pm2.SizedReply{Value: g,
		Size: ctrlBytes + noticeBytes*(len(g.notices)+len(g.migrations))}
}

// NewLock creates a cluster-wide lock managed by node home and returns its
// id.
func (d *DSM) NewLock(home int) int {
	if home < 0 || home >= d.rt.Nodes() {
		panic(fmt.Sprintf("core: lock home %d out of range", home))
	}
	id := len(d.locks)
	d.locks = append(d.locks, &lockState{id: id, home: home, holder: -1})
	return id
}

// BindLock associates a shared area with a lock, for entry-consistency
// protocols: the pages of the area are guaranteed consistent only to holders
// of that lock, so acquire/release actions can restrict their consistency
// work to the bound pages (Midway-style entry consistency; the paper's core
// requirement list names entry consistency alongside release and scope).
func (d *DSM) BindLock(id int, base Addr, size int) {
	if id < 0 || id >= len(d.locks) {
		panic(fmt.Sprintf("core: bind to unknown lock %d", id))
	}
	space := d.state[0].space
	first := space.PageOf(base)
	last := space.PageOf(base + Addr(size-1))
	ls := d.locks[id]
	for pg := first; pg <= last; pg++ {
		if _, ok := d.dir.get(pg); !ok {
			panic(fmt.Sprintf("core: binding unallocated page %d to lock %d", pg, id))
		}
		ls.bound = append(ls.bound, pg)
	}
}

// BoundPages returns the pages bound to lock id (empty for unbound locks).
func (d *DSM) BoundPages(id int) []Page {
	if id < 0 || id >= len(d.locks) {
		return nil
	}
	return d.locks[id].bound
}

// NewBarrier creates a cluster-wide barrier for n participants, managed by
// node 0, and returns its id.
func (d *DSM) NewBarrier(n int) int {
	if n < 1 {
		panic("core: barrier participant count must be >= 1")
	}
	id := len(d.barriers)
	d.barriers = append(d.barriers, &barrierState{id: id, home: 0, n: n})
	return id
}

// lockReq/barrierReq are the wire payloads of synchronization RPCs.
type lockReq struct {
	id   int
	from int
}
type barrierReq struct {
	id          int
	from        int
	participant int // -1 for anonymous arrivals
	gen         int // arriving participant's generation; -1 when anonymous
	// notices are the arriving node's pending write notices, piggybacked on
	// the arrival message so barrier-synchronized invalidation costs no
	// extra round trip.
	notices []WriteNotice
}

// registerSyncServices installs the lock and barrier managers on each node.
// Handlers are threaded: a blocked acquire must not prevent the manager from
// processing other requests.
func (d *DSM) registerSyncServices() {
	for i := 0; i < d.rt.Nodes(); i++ {
		node := d.rt.Node(i)

		node.Register(svcLockAcq, true, func(h *pm2.Thread, arg interface{}) interface{} {
			req := arg.(*lockReq)
			if d.recovery != nil && d.NodeDead(req.from) {
				return nil // stale acquire from a crashed node
			}
			ls := d.locks[req.id]
			if ls.held {
				lw := &lockWaiter{ch: new(sim.Chan), from: req.from}
				ls.waiters = append(ls.waiters, lw)
				if granted, _ := lw.ch.Recv(h.Proc()).(bool); !granted {
					return nil // cancelled: the requester died while queued
				}
			} else {
				ls.held = true
			}
			ls.holder = req.from
			return nil
		})

		node.Register(svcLockRel, true, func(h *pm2.Thread, arg interface{}) interface{} {
			req := arg.(*lockReq)
			if d.recovery != nil && d.NodeDead(req.from) {
				return nil // stale release from a crashed node
			}
			ls := d.locks[req.id]
			if !ls.held {
				return fmt.Sprintf("core: release of unheld lock %d by node %d", req.id, req.from)
			}
			d.grantNext(ls)
			return nil
		})

		node.Register(svcBarrier, true, func(h *pm2.Thread, arg interface{}) interface{} {
			req := arg.(*barrierReq)
			if d.recovery != nil && d.NodeDead(req.from) {
				return nil // stale arrival from a crashed node
			}
			bs := d.barriers[req.id]
			if req.participant >= 0 && req.gen > bs.gen {
				panic(fmt.Sprintf("core: barrier %d arrival for future generation %d (current %d) from=%d participant=%d",
					req.id, req.gen, bs.gen, req.from, req.participant))
			}
			// Notices fold in before any early return: a stale-generation
			// re-arrival's notices were already drained from the node, so
			// discarding them here would lose invalidation information for
			// good — folding them into the current generation delivers them
			// late, which is always safe (dropping a stale copy later
			// still drops it).
			bs.notices = append(bs.notices, req.notices...)
			if bs.arrivedNodes == nil {
				bs.arrivedNodes = make(map[int]bool)
			}
			bs.arrivedNodes[req.from] = true
			if req.participant >= 0 && req.gen >= 0 && req.gen < bs.gen {
				return nil // that generation already completed
			}
			if req.participant >= 0 {
				for _, w := range bs.waiters {
					if w.participant != req.participant {
						continue
					}
					// Re-arrival of a participant that already arrived this
					// generation: its previous incarnation crashed while
					// parked here. Cancel the stranded handler and take
					// over its slot; the arrival count is unchanged.
					w.ch.Push(false)
					w.ch = new(sim.Chan)
					g, _ := w.ch.Recv(h.Proc()).(*barrierGrant)
					return grantReply(g)
				}
			}
			bs.arrived++
			if bs.arrived == bs.n {
				bs.arrived = 0
				bs.gen++
				grant := &barrierGrant{notices: canonicalNotices(bs.notices)}
				bs.notices = nil
				covered := d.noticeCoverage(bs)
				if len(grant.notices) > 0 && !covered {
					// Fail fast: distributing notices to a generation that
					// did not hear from every live node would leave the
					// uncovered nodes' copies stale forever. NoticesUsable
					// gates on participant count; this catches the app
					// that clustered its participants on fewer nodes.
					panic(fmt.Sprintf("core: barrier %d released write notices without hearing from every node (notices require one participant per node)", bs.id))
				}
				bs.arrivedNodes = nil
				// Snapshot THIS generation's waiters before anything below
				// can block: the migration handshakes yield the token, and
				// a restarted participant may race through the completed
				// generation and park for the NEXT one meanwhile — that
				// park must land in the fresh waiter list, not receive this
				// generation's grant.
				waiters := bs.waiters
				bs.waiters = nil
				if d.prof != nil && bs.n >= d.rt.Nodes() && covered && !d.prof.folding {
					// A cluster-wide generation completed with an arrival
					// from every live node (the same coverage write notices
					// demand — migration notices ride this grant, and an
					// uncovered node would keep routing to the demoted old
					// home): fold the profiler epoch and, with migration
					// enabled, re-home the nominated pages now. Every
					// participant of this generation is parked, so the
					// pages are quiescent.
					d.prof.folding = true
					ep, cands := d.foldEpoch()
					grant.migrations = d.runMigrations(h, &ep, cands)
					d.closeEpoch(ep)
					d.prof.folding = false
				}
				for _, w := range waiters {
					w.ch.Push(grant)
				}
				return grantReply(grant)
			}
			w := &barrierWaiter{ch: new(sim.Chan), participant: req.participant}
			bs.waiters = append(bs.waiters, w)
			g, _ := w.ch.Recv(h.Proc()).(*barrierGrant)
			return grantReply(g)
		})

		if d.tree != nil {
			d.registerTreeBarServices(node)
		}
		d.registerCondServices(node)
	}
}

// noticeCoverage reports whether the completing generation heard from every
// node that could hold a copy: all nodes, less those currently dead (a
// corpse's copies died with it).
func (d *DSM) noticeCoverage(bs *barrierState) bool {
	for n := 0; n < d.rt.Nodes(); n++ {
		if bs.arrivedNodes[n] {
			continue
		}
		if d.recovery != nil && d.NodeDead(n) {
			continue
		}
		return false
	}
	return true
}

// grantNext hands the lock to the oldest live waiter, or marks it free.
// Dead waiters (their node crashed while queued) are cancelled in passing.
func (d *DSM) grantNext(ls *lockState) {
	for len(ls.waiters) > 0 {
		next := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		if d.recovery != nil && d.NodeDead(next.from) {
			next.ch.Push(false)
			continue
		}
		next.ch.Push(true)
		return
	}
	ls.held = false
	ls.holder = -1
}

// Acquire takes the DSM lock id on behalf of t, blocking until granted, then
// runs every active protocol's lock_acquire action — "called after having
// acquired a lock".
func (d *DSM) Acquire(t *pm2.Thread, id int) {
	if id < 0 || id >= len(d.locks) {
		panic(fmt.Sprintf("core: acquire of unknown lock %d", id))
	}
	d.st(t.Node()).Acquires++
	t.Call(d.locks[id].home, svcLockAcq, &lockReq{id: id, from: t.Node()}, ctrlBytes, ctrlBytes)
	ev := &SyncEvent{DSM: d, Thread: t, Node: t.Node(), Lock: id}
	d.eachInstance(func(p Protocol) { p.LockAcquire(ev) })
}

// Release runs every active protocol's lock_release action — "called before
// releasing a lock" — then releases the DSM lock id.
func (d *DSM) Release(t *pm2.Thread, id int) {
	if id < 0 || id >= len(d.locks) {
		panic(fmt.Sprintf("core: release of unknown lock %d", id))
	}
	d.st(t.Node()).Releases++
	ev := &SyncEvent{DSM: d, Thread: t, Node: t.Node(), Lock: id}
	d.eachInstance(func(p Protocol) { p.LockRelease(ev) })
	res := t.Call(d.locks[id].home, svcLockRel, &lockReq{id: id, from: t.Node()}, ctrlBytes, ctrlBytes)
	if msg, bad := res.(string); bad {
		panic(msg) // misuse reported on the releasing thread, where it belongs
	}
}

// Barrier blocks t until all participants of barrier id arrive. A barrier
// is a release followed by an acquire for consistency purposes, so the
// protocols' release actions run before the wait and their acquire actions
// after it.
func (d *DSM) Barrier(t *pm2.Thread, id int) {
	d.BarrierAs(t, id, -1, -1)
}

// BarrierAs is Barrier with an explicit participant identity and generation,
// the fault-tolerant arrival form. A participant id >= 0 makes arrivals
// idempotent per generation: if this participant already arrived in gen (its
// previous incarnation crashed mid-barrier), the re-arrival takes over the
// old slot instead of over-counting, and an arrival for a generation that
// already completed returns immediately. Restart-aware applications track
// their own generation counter and re-arrive for the last generation they
// completed before resuming work.
func (d *DSM) BarrierAs(t *pm2.Thread, id, participant, gen int) {
	if id < 0 || id >= len(d.barriers) {
		panic(fmt.Sprintf("core: wait on unknown barrier %d", id))
	}
	d.st(t.Node()).Barriers++
	ev := &SyncEvent{DSM: d, Thread: t, Node: t.Node(), Lock: id, Barrier: true}
	d.eachInstance(func(p Protocol) { p.LockRelease(ev) })
	// The release hooks above may have queued write notices; they ride the
	// arrival message, and the barrier's completion hands back the
	// generation's aggregated notices to apply locally — invalidation with
	// zero extra round trips.
	var res interface{}
	if d.useTree(d.barriers[id]) {
		// Sharded machine, cluster-wide barrier, no crash recovery: combine
		// arrivals through the cluster tree instead of funneling every node
		// to the manager (see treebar.go). Participant identity and
		// generation are crash-recovery machinery and are ignored — with
		// recovery off, every participant arrives exactly once per
		// generation.
		res = d.treeBarrierArrive(t, id, d.takeNotices(t.Node(), id))
	} else {
		req := &barrierReq{id: id, from: t.Node(), participant: participant, gen: gen,
			notices: d.takeNotices(t.Node(), id)}
		res = t.Call(d.barriers[id].home, svcBarrier, req,
			ctrlBytes+noticeBytes*len(req.notices), ctrlBytes)
	}
	if g, ok := res.(*barrierGrant); ok {
		// Migrations first: the write notices (and the protocols' acquire
		// hooks below) must see the post-migration placement.
		if len(g.migrations) > 0 {
			d.applyMigrations(t, g.migrations)
		}
		if len(g.notices) > 0 {
			d.applyNotices(t, g.notices)
		}
	}
	d.eachInstance(func(p Protocol) { p.LockAcquire(ev) })
}

// BarrierGen reports the number of completed generations of barrier id
// (restart-aware applications use it to rejoin at the right generation).
func (d *DSM) BarrierGen(id int) int { return d.barriers[id].gen }

// FlushRelease runs every active protocol's release action (as a barrier
// would) without any synchronization RPC: an explicit commit point. Restart-
// aware applications call it before recording a local checkpoint, so the
// checkpoint never claims work whose unflushed diffs would die with the
// node; the following barrier's own release pass then finds nothing dirty.
func (d *DSM) FlushRelease(t *pm2.Thread) {
	ev := &SyncEvent{DSM: d, Thread: t, Node: t.Node(), Lock: -1, Barrier: true}
	d.eachInstance(func(p Protocol) { p.LockRelease(ev) })
}

// LockHome reports the manager node of lock id (tests and tools).
func (d *DSM) LockHome(id int) int { return d.locks[id].home }
