package core

import (
	"encoding/binary"
	"fmt"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// maxFaultRetries bounds the fault-retry loop; a protocol that cannot make
// an access succeed within this many handler invocations is broken, and the
// core fails fast instead of livelocking the simulation.
const maxFaultRetries = 1000

// Access performs an n-byte shared-memory access on behalf of thread t,
// running the page's consistency protocol on faults and retrying until the
// access succeeds, exactly like the SIGSEGV handler + instruction restart
// cycle of the real system. buf is the destination (read) or source (write).
func (d *DSM) Access(t *pm2.Thread, addr Addr, buf []byte, write bool) {
	for retry := 0; ; retry++ {
		node := t.Node() // the thread may migrate between retries
		space := d.state[node].space
		var err error
		if write {
			err = space.Write(addr, buf)
		} else {
			err = space.Read(addr, buf)
		}
		if err == nil {
			return
		}
		flt, ok := err.(*memory.Fault)
		if !ok {
			panic(fmt.Sprintf("core: invalid shared access by %s: %v", t.Name(), err))
		}
		if retry >= maxFaultRetries {
			panic(fmt.Sprintf("core: access at %#x by %s still faulting after %d protocol invocations",
				addr, t.Name(), retry))
		}
		if retry > 2 {
			// A fetched copy keeps being invalidated before the access
			// can retry: a writer elsewhere is reclaiming the page in
			// lockstep with our refetches. Real systems escape through
			// OS timing noise; the simulation injects the equivalent —
			// a deterministic-per-seed jittered backoff that shifts
			// our next fetch out of phase with the writer.
			maxUS := retry * 10
			if maxUS > 500 {
				maxUS = 500
			}
			jitter := sim.Duration(1+d.rt.EngineFor(t.Node()).Rand().Intn(maxUS)) * sim.Microsecond
			t.Advance(jitter)
		}
		d.handleFault(t, flt)
	}
}

// handleFault charges the detection cost and dispatches the page's protocol
// fault handler. If the handler returns with the entry lock held (the
// toolbox's anti-livelock handoff), the retried access in Access proceeds
// before any competing server can steal the page; the lock is dropped after
// one more memory operation via deferUnlock.
func (d *DSM) handleFault(t *pm2.Thread, flt *memory.Fault) {
	start := t.Now()
	t.Advance(d.costs.Fault) // catch signal, extract fault parameters
	node := t.Node()
	e := d.Entry(node, flt.Page)
	proto := d.instance(e.proto)
	ft := &FaultTiming{
		Start:    start,
		Protocol: proto.Name(),
		Write:    flt.Write,
		Detect:   d.costs.Fault,
	}
	f := &Fault{
		DSM:    d,
		Thread: t,
		Node:   node,
		Addr:   flt.Addr,
		Page:   flt.Page,
		Write:  flt.Write,
		Entry:  e,
		Timing: ft,
	}
	d.nodeFaults[node]++
	d.profFault(node, flt.Page, flt.Write)
	if flt.Write {
		d.st(node).WriteFaults++
		proto.WriteFaultHandler(f)
	} else {
		d.st(node).ReadFaults++
		proto.ReadFaultHandler(f)
	}
	ft.Total = t.Now().Sub(start)
	d.tlog(node).Add(ft)
	if f.entryLocked {
		// Safe to release before the retry: the current thread keeps
		// the simulation token until its next blocking operation, and
		// the retried memory access never blocks, so no competing
		// server can run in between.
		e.Unlock(t)
	}
}

// Read copies len(buf) shared bytes at addr into buf.
func (d *DSM) Read(t *pm2.Thread, addr Addr, buf []byte) { d.Access(t, addr, buf, false) }

// Write copies buf into shared memory at addr.
func (d *DSM) Write(t *pm2.Thread, addr Addr, buf []byte) { d.Access(t, addr, buf, true) }

// ReadUint32 loads a shared little-endian uint32.
func (d *DSM) ReadUint32(t *pm2.Thread, addr Addr) uint32 {
	var b [4]byte
	d.Access(t, addr, b[:], false)
	return binary.LittleEndian.Uint32(b[:])
}

// WriteUint32 stores a shared little-endian uint32.
func (d *DSM) WriteUint32(t *pm2.Thread, addr Addr, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	d.Access(t, addr, b[:], true)
}

// ReadUint64 loads a shared little-endian uint64.
func (d *DSM) ReadUint64(t *pm2.Thread, addr Addr) uint64 {
	var b [8]byte
	d.Access(t, addr, b[:], false)
	return binary.LittleEndian.Uint64(b[:])
}

// WriteUint64 stores a shared little-endian uint64.
func (d *DSM) WriteUint64(t *pm2.Thread, addr Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.Access(t, addr, b[:], true)
}

// Get performs an object read through the page protocol's get primitive if
// it provides one (java_ic/java_pf), falling back to the paged access path
// otherwise, so object-style programs run under any protocol.
func (d *DSM) Get(t *pm2.Thread, addr Addr, buf []byte) {
	d.st(t.Node()).GetOps++
	pg := d.state[0].space.PageOf(addr)
	if op, ok := d.protoAt(t.Node(), pg).(ObjectProtocol); ok {
		op.Get(&ObjAccess{DSM: d, Thread: t, Addr: addr, Buf: buf, Write: false})
		return
	}
	d.Access(t, addr, buf, false)
}

// Put performs an object write through the page protocol's put primitive if
// it provides one, falling back to the paged access path otherwise.
func (d *DSM) Put(t *pm2.Thread, addr Addr, buf []byte) {
	d.st(t.Node()).PutOps++
	pg := d.state[0].space.PageOf(addr)
	if op, ok := d.protoAt(t.Node(), pg).(ObjectProtocol); ok {
		op.Put(&ObjAccess{DSM: d, Thread: t, Addr: addr, Buf: buf, Write: true})
		return
	}
	d.Access(t, addr, buf, true)
}

// GetUint64 is Get for a little-endian uint64 field.
func (d *DSM) GetUint64(t *pm2.Thread, addr Addr) uint64 {
	var b [8]byte
	d.Get(t, addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// PutUint64 is Put for a little-endian uint64 field.
func (d *DSM) PutUint64(t *pm2.Thread, addr Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.Put(t, addr, b[:])
}
