// Package core implements the generic layer of DSM-PM2: the DSM page
// manager, the DSM communication module, the protocol library toolbox, and
// the protocol policy layer (Section 2.2 of the paper, Figure 1).
//
// The core answers the paper's central question — "what are the features
// that need to be present in any DSM system?" — by providing, once and
// thread-safe: access detection, a distributed page table, the small set of
// DSM communication routines, synchronization objects with consistency
// hooks, and the instrumentation to profile all of it. A consistency
// protocol is then just a set of 8 routines (Table 1) registered with the
// policy layer.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dsmpm2/internal/isomalloc"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Addr is a virtual address in the shared space.
type Addr = memory.Addr

// Page identifies a shared page.
type Page = memory.Page

// PageSize is the shared-page size. The paper's measurements use "a common
// 4 kB page".
const PageSize = 4096

// Costs gathers the protocol-independent CPU costs of the generic core,
// calibrated from Tables 3 and 4 of the paper.
type Costs struct {
	// Fault is the cost of catching an access fault and extracting its
	// parameters (the paper's "Page fault" row: 11us on all networks).
	Fault sim.Duration
	// Server is the request-processing cost on the owner/home node, and
	// Install the page-installation cost on the requesting node. Their
	// sum is the paper's page-policy "Protocol overhead" row (26us).
	Server  sim.Duration
	Install sim.Duration
	// MigOverhead is the protocol overhead of a migration-based fault
	// handler (Table 4: about 1us — "merely a call to the underlying
	// runtime").
	MigOverhead sim.Duration
	// Check is the cost of one inline locality check in the java_ic
	// protocol's get/put primitives.
	Check sim.Duration
	// DiffGap is the coalescing gap used when computing twin diffs.
	DiffGap int
}

// DefaultCosts returns the paper-calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		Fault:       11 * sim.Microsecond,
		Server:      13 * sim.Microsecond,
		Install:     13 * sim.Microsecond,
		MigOverhead: 1 * sim.Microsecond,
		Check:       300 * sim.Nanosecond,
		DiffGap:     8,
	}
}

// nodeState is the per-node half of the DSM: this node's view of the shared
// address space and its slice of the distributed page table. pages mirrors
// the table's keys in sorted order, maintained incrementally at entry
// creation so release-time sweeps never rebuild and re-sort it.
type nodeState struct {
	node  int
	space *memory.Space
	table map[Page]*Entry
	pages []Page

	// notices are the write notices this node queued during the current
	// synchronization epoch, keyed by the barrier they were queued for;
	// that barrier's arrival piggybacks them (see outbox.go). Keying by
	// barrier keeps a concurrent thread's arrival at a different barrier
	// from walking off with them.
	notices map[int][]WriteNotice

	// treebar holds this node's combining-tree barrier accumulators, keyed
	// by barrier id — populated only on cluster-leader nodes of a sharded
	// machine (see treebar.go).
	treebar map[int]*treeBarLocal
}

// DSM is a DSM-PM2 instance spanning all nodes of a PM2 machine.
type DSM struct {
	rt    *pm2.Runtime
	alloc *isomalloc.Allocator
	costs Costs

	// bufsSh recycles page-sized buffers — wire copies of page transfers
	// and the twins of multiple-writer protocols — one pool per event-loop
	// shard, accessed through buf(node) so concurrent shards never share a
	// free list. Buffers drift between pools (a page fetched on one shard
	// is recycled on the receiver's), which is harmless: pools are
	// interchangeable and each stays internally consistent.
	bufsSh []*memory.BufPool

	state []*nodeState

	registry *Registry
	// instances is a copy-on-write ProtoID → Protocol map: protoFor runs on
	// every fault and message service, from every shard's context, while
	// instantiation is rare (first use of a protocol). Readers load the
	// published map lock-free; instMu serializes the writers.
	instances atomic.Pointer[map[ProtoID]Protocol]
	instMu    sync.Mutex
	defProto  ProtoID

	// dir is the range-sharded page directory (see directory.go): the
	// allocation-time home/protocol metadata, partitioned by isomalloc
	// slice owner.
	dir *directory

	locks    []*lockState
	barriers []*barrierState
	conds    []*condState

	// tree is the combining-tree barrier topology, built when the runtime
	// is sharded (nil otherwise): cluster-wide barriers then aggregate
	// arrivals per cluster leader instead of funneling every arrival to
	// node 0. See treebar.go.
	tree *barTree

	objects *objectSpace

	// recovery is the fault-recovery manager: nil (and completely inert)
	// until EnableRecovery is called. See recovery.go.
	recovery *recoveryState

	// prof is the sharing-pattern profiler and home-migration decision
	// engine: nil (and completely inert) until EnableProfiler is called.
	// See profiler.go and migrate.go.
	prof *profilerState

	// batch selects the communication path: true (the default) coalesces
	// the operations accumulated in a Batch into one multi-part envelope
	// per destination and lets barriers piggyback write notices; false
	// keeps the historical one-envelope-per-operation wire pattern, for A/B
	// comparison (see outbox.go).
	batch bool

	// statsSh and timingsSh hold one counter block / timing ring per
	// event-loop shard: every increment happens from some node's context
	// and lands in that node's shard's block, so no two host cores ever
	// contend on (or race over) a counter. Stats() and Timings() fold them
	// in shard order — a deterministic merge, since each shard's content is
	// deterministic. With Shards=1 there is exactly one block and the fold
	// is the identity.
	statsSh    []Stats
	timingsSh  []TimingLog
	nodeFaults []int64

	// opHists holds the per-operation latency histograms (see histogram.go),
	// keyed by op kind, created lazily by OpHist; histMu guards the map
	// (threads on different shards may register kinds concurrently — the
	// histograms themselves are internally atomic).
	histMu  sync.Mutex
	opHists map[string]*Histogram

	// tunedPagePrior records that an offline what-if sweep concluded the
	// page policy (under the recommended placement) beats thread migration
	// for this workload. Set before Run; the adaptive protocol's
	// no-evidence fallback consults it (see protocols/adaptive.go).
	tunedPagePrior bool
}

// pageInfo is the allocation-time metadata for a shared page, known on every
// node (the real system distributes it when dsm_malloc updates the global
// table).
type pageInfo struct {
	home  int
	proto ProtoID
}

// New creates a DSM instance over the given PM2 machine, with the given
// protocol registry. Registered protocols are instantiated per DSM.
func New(rt *pm2.Runtime, reg *Registry, costs Costs) *DSM {
	d := &DSM{
		rt:       rt,
		alloc:    isomalloc.New(rt.Nodes(), PageSize),
		costs:    costs,
		registry: reg,
		defProto: -1,
		batch:    true,
	}
	d.dir = newDirectory(d.alloc, rt.Nodes())
	shards := rt.Shards()
	d.statsSh = make([]Stats, shards)
	d.timingsSh = make([]TimingLog, shards)
	d.bufsSh = make([]*memory.BufPool, shards)
	for i := range d.bufsSh {
		d.bufsSh[i] = memory.NewBufPool(PageSize)
	}
	d.nodeFaults = make([]int64, rt.Nodes())
	for i := 0; i < rt.Nodes(); i++ {
		d.state = append(d.state, &nodeState{
			node:  i,
			space: memory.NewSpace(PageSize),
			table: make(map[Page]*Entry),
		})
	}
	if rt.Shards() > 1 {
		d.tree = newBarTree(rt)
	}
	d.objects = newObjectSpace(d)
	d.registerServices()
	return d
}

// Runtime returns the underlying PM2 machine.
func (d *DSM) Runtime() *pm2.Runtime { return d.rt }

// SetBatching selects the communication path: on (the default) coalesces
// release-time operations into one multi-part envelope per destination and
// piggybacks write notices on barriers; off restores the historical
// one-envelope-per-operation pattern. Flip it before Run, not mid-workload:
// notices queued under batching would otherwise strand.
func (d *DSM) SetBatching(on bool) { d.batch = on }

// BatchingEnabled reports whether the batched communication path is active.
func (d *DSM) BatchingEnabled() bool { return d.batch }

// Costs returns the core cost configuration.
func (d *DSM) Costs() Costs { return d.costs }

// Space returns node's view of the shared address space. Protocol code uses
// it to install pages and set access rights.
func (d *DSM) Space(node int) *memory.Space { return d.state[node].space }

// SetDefaultProtocol makes id the protocol for subsequent allocations that
// carry no explicit attribute (pm2_dsm_set_default_protocol).
func (d *DSM) SetDefaultProtocol(id ProtoID) {
	d.instance(id) // force instantiation; panics on unknown id
	d.defProto = id
}

// DefaultProtocol returns the current default protocol id (-1 if unset).
func (d *DSM) DefaultProtocol() ProtoID { return d.defProto }

// instance returns (instantiating on first use) the protocol instance for id.
func (d *DSM) instance(id ProtoID) Protocol {
	if m := d.instances.Load(); m != nil {
		if p, ok := (*m)[id]; ok {
			return p
		}
	}
	d.instMu.Lock()
	defer d.instMu.Unlock()
	old := d.instances.Load()
	if old != nil {
		if p, ok := (*old)[id]; ok {
			return p
		}
	}
	p := d.registry.newInstance(id, d)
	next := make(map[ProtoID]Protocol, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[id] = p
	d.instances.Store(&next)
	return p
}

// instanceIfLive returns the already-instantiated protocol for id, if any.
func (d *DSM) instanceIfLive(id ProtoID) (Protocol, bool) {
	if m := d.instances.Load(); m != nil {
		p, ok := (*m)[id]
		return p, ok
	}
	return nil, false
}

// eachInstance invokes fn on every instantiated protocol, in id order.
func (d *DSM) eachInstance(fn func(Protocol)) {
	for id := ProtoID(0); int(id) < d.registry.Len(); id++ {
		if p, ok := d.instanceIfLive(id); ok {
			fn(p)
		}
	}
}

// Attr carries per-allocation attributes, mirroring dsm_attr_t.
type Attr struct {
	// Protocol manages the allocated area; -1 selects the default.
	Protocol ProtoID
	// Home fixes the area's home/initial-owner node; -1 means the
	// allocating node.
	Home int
}

// DefaultAttr returns an Attr selecting the default protocol and the
// allocating node as home.
func DefaultAttr() *Attr { return &Attr{Protocol: -1, Home: -1} }

// Malloc allocates size bytes of shared memory on node (dsm_malloc). The
// area is page aligned; its pages are owned by (and homed on) attr.Home, or
// the allocating node. Different areas may use different protocols within
// the same application.
func (d *DSM) Malloc(node, size int, attr *Attr) (Addr, error) {
	if attr == nil {
		attr = DefaultAttr()
	}
	proto := attr.Protocol
	if proto < 0 {
		proto = d.defProto
	}
	if proto < 0 {
		return 0, fmt.Errorf("core: no protocol specified and no default set")
	}
	d.instance(proto) // validate & instantiate
	home := attr.Home
	if home < 0 {
		home = node
	}
	if home >= d.rt.Nodes() {
		return 0, fmt.Errorf("core: home node %d out of range", home)
	}
	r, err := d.alloc.Alloc(node, size)
	if err != nil {
		return 0, err
	}
	first := d.state[0].space.PageOf(r.Base)
	npages := r.Size / PageSize
	for i := 0; i < npages; i++ {
		pg := first + Page(i)
		d.dir.set(pg, pageInfo{home: home, proto: proto})
		// The home node starts with the only, writable copy.
		d.state[home].space.SetAccess(pg, memory.ReadWrite)
		d.Entry(home, pg).Owner = true
		if init, ok := d.instance(proto).(PageInitializer); ok {
			init.InitPage(pg, home)
		}
		if d.prof != nil {
			d.prof.track(pg)
		}
	}
	st := d.st(node)
	st.Allocs++
	st.AllocBytes += int64(r.Size)
	return r.Base, nil
}

// MustMalloc is Malloc panicking on error, for setup code.
func (d *DSM) MustMalloc(node, size int, attr *Attr) Addr {
	a, err := d.Malloc(node, size, attr)
	if err != nil {
		panic(err)
	}
	return a
}

// Free releases a shared area. The caller must ensure no thread accesses it
// afterwards (as with any free).
func (d *DSM) Free(base Addr) error { return d.alloc.Free(base) }

// PageInfo reports the home node and protocol of a page, as recorded at
// allocation time.
func (d *DSM) PageInfo(pg Page) (home int, proto ProtoID, ok bool) {
	pi, ok := d.dir.get(pg)
	return pi.home, pi.proto, ok
}

// protoFor returns the protocol instance managing page pg, from the
// directory. Cold paths only — hot paths with a node in hand use protoAt.
func (d *DSM) protoFor(pg Page) Protocol {
	pi, ok := d.dir.get(pg)
	if !ok {
		panic(fmt.Sprintf("core: access to unallocated page %d", pg))
	}
	return d.instance(pi.proto)
}

// protoAt returns the protocol managing pg via node's page-table entry,
// which caches the protocol id at creation: the fault/serve/invalidate hot
// paths resolve their protocol from node-local state, never touching a
// directory partition (let alone one owned by another shard's range).
func (d *DSM) protoAt(node int, pg Page) Protocol {
	return d.instance(d.Entry(node, pg).proto)
}
