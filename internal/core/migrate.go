package core

import (
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Home migration: the decision half of the sharing-pattern profiler. At the
// completion of a cluster-wide barrier the manager folds the epoch counters
// (profiler.go) and re-homes each nominated page onto its dominant writer
// via the svcMigrateHome handshake below; the metadata update then rides the
// barrier grant as migration notices — the same piggyback the batched
// communication path uses for write notices, so re-homing a page costs one
// page transfer plus zero extra round trips.
//
// The handshake reuses the recovery manager's re-home discipline: the new
// home becomes the page's owner with the authoritative copy and a scrubbed
// copyset, the old owner is demoted and drops its frame, and every other
// node's entry is redirected when its barrier grant arrives. Wire page
// copies ride pooled buffers that are reclaimed exactly once on every path,
// including a crash mid-handshake (the faulty-migration tests pin this).

// Service names of the migration handshake.
const (
	svcMigrateHome    = "dsm.migrate"
	svcMigrateInstall = "dsm.migrate.install"
)

// MigrationNotice tells a barrier participant that a page moved home during
// the barrier: update the local entry's home and owner hint. Distributed in
// canonical (page-ascending) order inside the barrier grant.
type MigrationNotice struct {
	Page    Page
	NewHome int
}

// migMsg asks a page's current owner to hand the page over to newHome.
type migMsg struct {
	page    Page
	newHome int
	from    int       // manager node running the decision engine
	reply   *sim.Chan // bool: handshake completed (idempotently) or declined
}

// migInstallMsg carries the page to its new home. data is a pooled wire
// copy; the install handler reclaims it exactly once, applied or not.
// Stale and duplicate installs need no sequence numbers: a duplicate is
// detected by ownership already being at the destination, and an install
// from a since-crashed sender is discarded outright (the crash sweep has
// resolved that handshake).
type migInstallMsg struct {
	page    Page
	data    []byte
	access  memory.Access
	copyset []int
	from    int // old owner
	reply   *sim.Chan
}

// registerMigrateServices installs the handshake services on every node.
// Called lazily from EnableProfiler so profiler-off runs spawn no extra
// dispatcher threads and stay bit-identical with historical traces.
func (d *DSM) registerMigrateServices() {
	for i := 0; i < d.rt.Nodes(); i++ {
		node := d.rt.Node(i)

		// Old-owner side: package the frame and copyset, ship them to the
		// new home, demote ourselves only once the install is acknowledged.
		node.Register(svcMigrateHome, true, func(h *pm2.Thread, arg interface{}) interface{} {
			m := arg.(*migMsg)
			d.serveMigrate(h, m)
			return nil
		})

		// New-home side: install the authoritative copy and take ownership.
		node.Register(svcMigrateInstall, true, func(h *pm2.Thread, arg interface{}) interface{} {
			m := arg.(*migInstallMsg)
			d.serveMigrateInstall(h, m)
			return nil
		})
	}
}

// replyDirect sends a control-sized value back on a private reply channel.
func (d *DSM) replyDirect(from, dest int, ch *sim.Chan, v interface{}) {
	d.rt.Network().SendDirect(from, dest, ch, ctrlBytes, v, d.rt.Link(from, dest).CtrlMsg)
}

// serveMigrate runs on the page's current owner. The entry state is only
// demoted after the new home acknowledged the install, so an install lost to
// a crash leaves the owner intact (the handshake then resolves through the
// recovery sweep, exactly once).
func (d *DSM) serveMigrate(h *pm2.Thread, m *migMsg) {
	if d.recovery != nil && d.NodeDead(m.from) {
		return
	}
	node := h.Node()
	e := d.Entry(node, m.page)
	e.Lock(h)
	if !e.Owner {
		// Not (or no longer) the owner: a previous handshake for the same
		// destination already completed (report success idempotently — the
		// manager's first reply may have been lost), or ownership moved and
		// this epoch's decision is stale (decline).
		done := e.Home == m.newHome && e.ProbOwner == m.newHome
		e.Unlock(h)
		d.replyDirect(node, m.from, m.reply, done)
		return
	}
	frame := d.state[node].space.Frame(m.page)
	if frame == nil {
		e.Unlock(h)
		d.replyDirect(node, m.from, m.reply, false)
		return
	}
	h.Compute(d.costs.Server) // package the page, like any page serve
	data := d.buf(node).Get()
	copy(data, frame.Data)
	access := frame.Access
	copyset := make([]int, 0, e.Copyset.Len())
	e.Copyset.ForEach(func(n int) {
		if n != m.newHome {
			copyset = append(copyset, n)
		}
	})
	// The entry lock stays held across the whole install round trip: a
	// concurrent server action (a non-participant thread's write fetch
	// under an ownership-transferring protocol) must not move ownership
	// away between the snapshot above and the demotion below — it blocks
	// on the lock and, once the handshake finished, correctly finds the
	// demoted entry and forwards to the new home.

	ack := new(sim.Chan)
	st := d.st(node)
	st.PageSends++
	st.PageBytes += PageSize
	st.Sends++
	st.Envelopes++
	im := &migInstallMsg{
		page: m.page, data: data, access: access, copyset: copyset,
		from: node, reply: ack,
	}
	d.rt.AsyncFrom(node, m.newHome, svcMigrateInstall, im, PageSize)
	if d.recovery == nil {
		ack.Recv(h.Proc())
	} else {
		attempt := 0
		for {
			if _, ok := ack.RecvTimeout(h.Proc(), d.recovery.retryDelay(attempt)); ok {
				break
			}
			attempt++
			d.recovery.stats.Retries++
			if d.NodeDead(m.newHome) {
				// The new home died before installing: the page stays here,
				// untouched, and the manager is told so. The in-flight wire
				// copy died with the link (dropped, never double-freed).
				e.Unlock(h)
				d.replyDirect(node, m.from, m.reply, false)
				return
			}
			// Alive but silent (loss): re-send a fresh pooled copy — the
			// install applies idempotently and a duplicate is discarded
			// with its buffer reclaimed exactly once.
			dup := d.buf(node).Get()
			copy(dup, data)
			st.PageSends++
			st.PageBytes += PageSize
			st.Sends++
			st.Envelopes++
			d.rt.AsyncFrom(node, m.newHome, svcMigrateInstall, &migInstallMsg{
				page: m.page, data: dup, access: access, copyset: copyset,
				from: node, reply: ack,
			}, PageSize)
		}
	}
	// Install acknowledged: demote. The old owner drops its frame entirely —
	// the universally safe end state (any later access simply re-faults
	// toward the new home), and the one migrate_thread requires (a page must
	// be accessible on exactly one node there).
	e.Owner = false
	e.Home = m.newHome
	e.ProbOwner = m.newHome
	e.Copyset.Clear()
	d.state[node].space.Drop(m.page)
	e.Unlock(h)
	d.replyDirect(node, m.from, m.reply, true)
}

// serveMigrateInstall runs on the new home: install the authoritative copy,
// take ownership and the scrubbed copyset. Duplicate installs (handshake
// re-sends under loss) are detected by ownership already being here; either
// way the pooled wire buffer is reclaimed exactly once.
func (d *DSM) serveMigrateInstall(h *pm2.Thread, m *migInstallMsg) {
	if d.recovery != nil && d.NodeDead(m.from) {
		// The old owner died after shipping this install: the crash sweep
		// already resolved the handshake its way (promoting the freshest
		// survivor), and applying a dead regime's install here would mint a
		// second owner whose next release invalidates the real home's
		// reference copy. Discard it — the pooled wire copy is reclaimed
		// exactly once either way (nil guards the duplicated-delivery case,
		// where a lossy link hands the same message to the handler twice).
		d.buf(h.Node()).Put(m.data)
		m.data = nil
		return
	}
	node := h.Node()
	e := d.Entry(node, m.page)
	e.Lock(h)
	if e.Owner {
		// Duplicate of an already-applied install.
		d.buf(node).Put(m.data)
		m.data = nil
		e.Unlock(h)
		d.replyDirect(node, m.from, m.reply, true)
		return
	}
	h.Compute(d.costs.Install)
	frame := d.state[node].space.Ensure(m.page)
	copy(frame.Data, m.data)
	d.buf(node).Put(m.data)
	m.data = nil
	frame.Access = m.access
	e.Owner = true
	e.Home = node
	e.ProbOwner = node
	e.Copyset.FromSlice(m.copyset)
	e.Copyset.Remove(node)
	e.Unlock(h)
	// Restore the protocol's home invariants here, exactly as a fresh
	// allocation would (write-protection for the twin/diff protocols,
	// manager hints for the fixed managers). See reinitHome.
	d.reinitHome(m.page, node)
	d.replyDirect(node, m.from, m.reply, true)
}

// reinitHome re-runs the protocol's page initializer after pg's home moved
// to a new node (recovery re-home or migration install), restoring the
// invariants promotion broke: home-based multiple-writer protocols
// write-protect the reference copy so home writes fault and are tracked,
// and managed schemes re-aim their request hints. Protocols without a
// PageInitializer need no repair.
func (d *DSM) reinitHome(pg Page, home int) {
	if init, ok := d.protoFor(pg).(PageInitializer); ok {
		init.InitPage(pg, home)
	}
}

// migFlight is one in-flight home-migration handshake: the request is on the
// wire (or the move was metadata-only) and the reply not yet awaited, so the
// barrier manager overlaps every epoch's handshakes instead of paying one
// serialized round trip per page inside the barrier.
type migFlight struct {
	pg      Page
	newHome int
	owner   int
	m       *migMsg
	reply   *sim.Chan
	start   sim.Time
}

// startMigration begins re-homing pg onto newHome: locate the current owner
// and ship the handshake request. Returns nil when the migration is skipped
// (page busy, nodes dead, no owner) — the decision simply re-arises next
// epoch if the evidence persists.
func (d *DSM) startMigration(h *pm2.Thread, pg Page, newHome int) *migFlight {
	if d.NodeDead(newHome) {
		return nil
	}
	owner := -1
	for n := 0; n < d.rt.Nodes(); n++ {
		if d.NodeDead(n) {
			continue
		}
		e, ok := d.state[n].table[pg]
		if !ok {
			continue
		}
		if e.Pending {
			// A fetch in flight: the page is not quiescent at this barrier
			// (a non-participant thread is mid-fault). Skip this epoch.
			return nil
		}
		if e.Owner && owner < 0 {
			owner = n
		}
	}
	if owner < 0 {
		return nil
	}
	f := &migFlight{pg: pg, newHome: newHome, owner: owner, start: h.Now()}
	if owner == newHome {
		return f // already in place: commit is metadata-only
	}
	f.reply = new(sim.Chan)
	f.m = &migMsg{page: pg, newHome: newHome, from: h.Node(), reply: f.reply}
	st := d.st(h.Node())
	st.Sends++
	st.Envelopes++
	d.rt.AsyncFrom(h.Node(), owner, svcMigrateHome, f.m, ctrlBytes)
	return f
}

// finishMigration awaits one handshake's completion and commits the
// allocation metadata. With recovery enabled the wait is bounded; an owner
// dying mid-handshake resolves through the crash sweep (exactly once — the
// install either reached the new home, which then owns the page and the
// sweep keeps it, or it did not and the sweep re-homed onto the freshest
// survivor) and the decision is not retried.
func (d *DSM) finishMigration(h *pm2.Thread, f *migFlight) bool {
	if f.reply != nil {
		if d.recovery == nil {
			if ok, _ := f.reply.Recv(h.Proc()).(bool); !ok {
				return false
			}
		} else {
			attempt := 0
			for {
				v, got := f.reply.RecvTimeout(h.Proc(), d.recovery.retryDelay(attempt))
				if got {
					if ok, _ := v.(bool); !ok {
						return false
					}
					break
				}
				attempt++
				d.recovery.stats.Retries++
				if d.NodeDead(f.owner) {
					return false
				}
				st := d.st(h.Node())
				st.Sends++
				st.Envelopes++
				d.rt.AsyncFrom(h.Node(), f.owner, svcMigrateHome, f.m, ctrlBytes)
			}
		}
	}
	d.dir.setHome(f.pg, f.newHome)
	d.st(h.Node()).HomeMigrations++
	d.tlog(h.Node()).Add(&FaultTiming{
		Start:    f.start,
		Protocol: "migrate_home",
		Link:     d.rt.Link(f.owner, f.newHome).Name,
		Total:    h.Now().Sub(f.start),
	})
	return true
}

// runMigrations performs the epoch's nominated migrations — every handshake
// request departs before the first reply is awaited, so the page transfers
// overlap across owners — and returns the notices to piggyback on the
// barrier grant, in canonical (page-ascending) order.
func (d *DSM) runMigrations(h *pm2.Thread, ep *EpochProfile, cands []migCandidate) []MigrationNotice {
	flights := make([]*migFlight, 0, len(cands))
	for _, c := range cands {
		if f := d.startMigration(h, c.pg, c.writer); f != nil {
			flights = append(flights, f)
		}
	}
	var notices []MigrationNotice
	for _, f := range flights {
		if d.finishMigration(h, f) {
			notices = append(notices, MigrationNotice{Page: f.pg, NewHome: f.newHome})
			ep.Migrations++
		}
	}
	return notices
}

// applyMigrations updates this node's page-table entries from the barrier
// grant's migration notices. Idempotent; runs on every participant before
// the write notices are applied and before any protocol acquire hook, so
// both see the post-migration placement.
func (d *DSM) applyMigrations(t *pm2.Thread, ms []MigrationNotice) {
	node := t.Node()
	for _, m := range ms {
		e := d.Entry(node, m.Page)
		e.Lock(t)
		e.Home = m.NewHome
		if !e.Owner {
			e.ProbOwner = m.NewHome
		}
		e.Unlock(t)
	}
}
