package core

import (
	"fmt"
	"math/bits"
	"sort"
)

// NodeSet is a set of node ids shaped for the forms copysets actually take
// at scale. A 512-node read-shared page is one run of consecutive readers,
// so the primary representation is run-length intervals: membership,
// insertion and removal are O(log runs), and sweeping, serializing or
// piggybacking the set costs O(runs), not O(N). A set that fragments past
// nodeSetMaxRuns (alternating membership, adversarial churn) degrades into
// a bitmap, bounding the per-op cost at O(N/64) words instead of letting
// the run list grow without limit.
//
// Iteration order is always ascending node id — the same deterministic
// order the previous sorted-slice representation guaranteed — so wire
// traces and goldens are independent of how the set is represented
// internally. The zero value is an empty set, ready to use.
type NodeSet struct {
	runs []nodeRun // sorted, disjoint, non-adjacent; unused when bits != nil
	bits []uint64  // bitmap fallback once the run list fragments
	n    int       // cardinality, maintained by every mutation
}

// nodeRun is one inclusive interval [lo, hi] of member node ids.
type nodeRun struct {
	lo, hi int32
}

// nodeSetMaxRuns is the fragmentation threshold: past this many runs the
// set converts to its bitmap form. 32 runs cover every sane sharing
// pattern; only adversarial alternating membership crosses it.
const nodeSetMaxRuns = 32

// Len reports the number of members.
func (s NodeSet) Len() int { return s.n }

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool { return s.n == 0 }

// Runs reports the current number of runs (0 in bitmap form): the metadata
// cost of sweeping or serializing the set, surfaced for benchmarks.
func (s NodeSet) Runs() int { return len(s.runs) }

// Contains reports whether node is a member.
func (s NodeSet) Contains(node int) bool {
	if s.bits != nil {
		w := node >> 6
		return w < len(s.bits) && s.bits[w]&(1<<(uint(node)&63)) != 0
	}
	v := int32(node)
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].hi >= v })
	return i < len(s.runs) && s.runs[i].lo <= v
}

// Add inserts node (no-op if present).
func (s *NodeSet) Add(node int) {
	if node < 0 {
		panic(fmt.Sprintf("core: negative node %d in NodeSet", node))
	}
	if s.bits != nil {
		s.bitAdd(node)
		return
	}
	v := int32(node)
	// First run that could absorb v: its hi reaches at least v-1.
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].hi >= v-1 })
	if i < len(s.runs) && s.runs[i].lo-1 <= v {
		r := &s.runs[i]
		if r.lo <= v && v <= r.hi {
			return // already a member
		}
		s.n++
		if v == r.lo-1 {
			// Extending lo cannot touch the previous run: the search
			// guarantees runs[i-1].hi < v-1.
			r.lo = v
			return
		}
		r.hi = v
		if i+1 < len(s.runs) && s.runs[i].hi+1 >= s.runs[i+1].lo {
			s.runs[i].hi = s.runs[i+1].hi
			s.runs = append(s.runs[:i+1], s.runs[i+2:]...)
		}
		return
	}
	s.n++
	s.runs = append(s.runs, nodeRun{})
	copy(s.runs[i+1:], s.runs[i:])
	s.runs[i] = nodeRun{lo: v, hi: v}
	if len(s.runs) > nodeSetMaxRuns {
		s.toBits()
	}
}

// AddRange inserts every node in [lo, hi] (inclusive).
func (s *NodeSet) AddRange(lo, hi int) {
	for n := lo; n <= hi; n++ {
		s.Add(n)
	}
}

// Remove deletes node (no-op if absent).
func (s *NodeSet) Remove(node int) {
	if s.bits != nil {
		s.bitRemove(node)
		return
	}
	v := int32(node)
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].hi >= v })
	if i >= len(s.runs) || s.runs[i].lo > v {
		return
	}
	r := s.runs[i]
	s.n--
	switch {
	case r.lo == v && r.hi == v:
		s.runs = append(s.runs[:i], s.runs[i+1:]...)
	case r.lo == v:
		s.runs[i].lo = v + 1
	case r.hi == v:
		s.runs[i].hi = v - 1
	default: // interior removal splits the run
		s.runs = append(s.runs, nodeRun{})
		copy(s.runs[i+1:], s.runs[i:])
		s.runs[i] = nodeRun{lo: r.lo, hi: v - 1}
		s.runs[i+1] = nodeRun{lo: v + 1, hi: r.hi}
		if len(s.runs) > nodeSetMaxRuns {
			s.toBits()
		}
	}
}

// Clear empties the set (and returns it to the interval representation).
func (s *NodeSet) Clear() { *s = NodeSet{} }

// Take returns the set's contents and empties the receiver — the NodeSet
// analogue of the old TakeCopyset slice steal.
func (s *NodeSet) Take() NodeSet {
	out := *s
	*s = NodeSet{}
	return out
}

// Clone returns an independent copy.
func (s NodeSet) Clone() NodeSet {
	out := NodeSet{n: s.n}
	if s.bits != nil {
		out.bits = append([]uint64(nil), s.bits...)
	} else {
		out.runs = append([]nodeRun(nil), s.runs...)
	}
	return out
}

// Union adds every member of o.
func (s *NodeSet) Union(o NodeSet) {
	o.ForEach(func(n int) { s.Add(n) })
}

// ForEach calls fn for every member in ascending node order.
func (s NodeSet) ForEach(fn func(node int)) {
	if s.bits != nil {
		for w, word := range s.bits {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				fn(w<<6 + b)
				word &^= 1 << uint(b)
			}
		}
		return
	}
	for _, r := range s.runs {
		for v := r.lo; v <= r.hi; v++ {
			fn(int(v))
		}
	}
}

// AppendTo appends the members to dst in ascending order — the sorted-slice
// wire form snapshots and page messages have always carried.
func (s NodeSet) AppendTo(dst []int) []int {
	s.ForEach(func(n int) { dst = append(dst, n) })
	return dst
}

// FromSlice replaces the contents with the given nodes (any order,
// duplicates ignored).
func (s *NodeSet) FromSlice(nodes []int) {
	s.Clear()
	for _, n := range nodes {
		s.Add(n)
	}
}

// String renders the set exactly like the sorted []int it replaced, so
// diagnostics and test failure messages keep their historical shape.
func (s NodeSet) String() string { return fmt.Sprint(s.AppendTo(nil)) }

// toBits converts the run representation to the bitmap fallback.
func (s *NodeSet) toBits() {
	max := int32(0)
	for _, r := range s.runs {
		if r.hi > max {
			max = r.hi
		}
	}
	s.bits = make([]uint64, int(max)>>6+1)
	for _, r := range s.runs {
		for v := r.lo; v <= r.hi; v++ {
			s.bits[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	s.runs = nil
}

// bitAdd inserts node into the bitmap form, growing it as needed. An add
// that bridges two runs (both neighbours already present) is the moment
// fragmentation can heal, so it triggers a run count and — with hysteresis,
// to avoid thrashing at the threshold — a conversion back to the compact
// run form. A scrambled arrival order that ends read-shared-by-everyone
// therefore settles into one run, not a permanent bitmap.
func (s *NodeSet) bitAdd(node int) {
	w := node >> 6
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	m := uint64(1) << (uint(node) & 63)
	if s.bits[w]&m != 0 {
		return
	}
	s.bits[w] |= m
	s.n++
	if node > 0 && s.Contains(node-1) && s.Contains(node+1) &&
		s.bitRuns() <= nodeSetMaxRuns/2 {
		s.toRuns()
	}
}

// bitRuns counts the runs in the bitmap form: 0→1 transitions across the
// word array, carrying the previous word's top bit.
func (s *NodeSet) bitRuns() int {
	runs := 0
	prevTop := false
	for _, word := range s.bits {
		starts := word &^ (word << 1)
		if prevTop {
			starts &^= 1
		}
		runs += bits.OnesCount64(starts)
		prevTop = word>>63 != 0
	}
	return runs
}

// toRuns converts the bitmap form back to the run representation; the
// caller guarantees the run count fits.
func (s *NodeSet) toRuns() {
	b := s.bits
	s.bits = nil
	s.runs = s.runs[:0]
	bit := func(v int32) bool {
		return int(v)>>6 < len(b) && b[v>>6]&(1<<(uint(v)&63)) != 0
	}
	var lo int32 = -1
	for w, word := range b {
		for word != 0 {
			v := int32(w<<6 + bits.TrailingZeros64(word))
			word &^= 1 << (uint(v) & 63)
			if lo < 0 {
				lo = v
			}
			if !bit(v + 1) { // run ends here
				s.runs = append(s.runs, nodeRun{lo: lo, hi: v})
				lo = -1
			}
		}
	}
}

// bitRemove deletes node from the bitmap form.
func (s *NodeSet) bitRemove(node int) {
	w := node >> 6
	if w >= len(s.bits) {
		return
	}
	m := uint64(1) << (uint(node) & 63)
	if s.bits[w]&m != 0 {
		s.bits[w] &^= m
		s.n--
	}
}
