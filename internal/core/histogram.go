package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"dsmpm2/internal/sim"
)

// Per-operation latency histograms for serving workloads. The TimingLog keeps
// the last few thousand faults for post-mortem inspection; a request-driven
// workload needs the opposite trade — millions of samples, fixed memory, and
// quantiles that do not depend on which samples happened to survive a ring
// eviction. Histogram is that structure: a fixed array of log-spaced
// virtual-time buckets, so Record is allocation-free (array index + add) and
// two runs that produce the same samples produce bit-identical bucket counts
// regardless of arrival order.
//
// Bucketing scheme (HDR-style, pure integer math): durations below histSub ns
// get exact unit buckets; above that, each power of two is split into histSub
// log-spaced sub-buckets, giving a worst-case relative error of 1/histSub
// (~3%) at every magnitude. A quantile is reported as the UPPER bound of the
// bucket the requested rank falls in — a value from a fixed, seed-independent
// grid, which is what makes quantiles comparable across runs, nodes and
// snapshots.

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per power of two; also the exact-value span
	// histBuckets covers every non-negative int64 duration: exact buckets
	// [0, histSub), then (63 - histSubBits) octaves of histSub sub-buckets.
	histBuckets = (64 - histSubBits) * histSub
)

// Histogram is a fixed-size latency histogram over virtual-time durations.
// The zero value is ready to use. It is sized for embedding: no pointers, so
// snapshotting is a struct copy and checkpointing needs no fixups.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	max    int64
}

// histBucketOf maps a duration (clamped to >= 0) to its bucket index.
func histBucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - histSubBits
	return (exp+1)*histSub + int(v>>uint(exp)) - histSub
}

// histBucketMax returns the largest duration mapping to bucket i — the fixed
// grid value quantiles are reported on.
func histBucketMax(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := uint(i/histSub - 1)
	sub := int64(i % histSub)
	return ((histSub + sub + 1) << exp) - 1
}

// Record adds one sample. Negative durations are clamped to zero. Record is
// safe to call concurrently from different event-loop shards: every update is
// a commutative atomic add (max is a CAS loop), so the final counts — and
// therefore every quantile — are identical whatever the host interleaving.
// Readers (Count, Quantile, Snapshot, capture) assume a quiescent histogram;
// call them between runs, as with Stats.
func (h *Histogram) Record(d sim.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.counts[histBucketOf(v)], 1)
	atomic.AddInt64(&h.n, 1)
	atomic.AddInt64(&h.sum, v)
	for {
		m := atomic.LoadInt64(&h.max)
		if v <= m || atomic.CompareAndSwapInt64(&h.max, m, v) {
			return
		}
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the exact mean of the recorded samples (sums are kept at full
// resolution; only quantiles are grid-valued), or 0 if empty.
func (h *Histogram) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return sim.Duration(h.sum / h.n)
}

// Max returns the largest recorded sample (exact, not grid-rounded).
func (h *Histogram) Max() sim.Duration { return sim.Duration(h.max) }

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing the ceil(q*n)-th smallest sample — deterministic, and
// identical whether computed on a live histogram, a snapshot, or a merge of
// per-node parts. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			return sim.Duration(histBucketMax(i))
		}
	}
	return sim.Duration(h.max) // unreachable: counts sum to n
}

// Merge folds o into h bucket-by-bucket. Merging per-node histograms and
// then extracting quantiles gives the same result as recording every sample
// into one histogram — counts are additive and the grid is shared.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Snapshot returns a copy of the histogram (a plain struct copy: quantiles
// extracted from the copy are immune to further recording).
func (h *Histogram) Snapshot() Histogram { return *h }

// Equal reports whether two histograms hold bit-identical contents — the
// bucket counts and all exact aggregates. Replay and merge-vs-direct checks
// use it: histograms built from the same samples compare equal however the
// samples were partitioned.
func (h *Histogram) Equal(o *Histogram) bool { return *h == *o }

// HistSummary is the standard latency digest extracted from one histogram:
// grid-valued quantiles plus the exact-resolution mean and max.
type HistSummary struct {
	Count int64        `json:"count"`
	P50   sim.Duration `json:"p50_ns"`
	P95   sim.Duration `json:"p95_ns"`
	P99   sim.Duration `json:"p99_ns"`
	Mean  sim.Duration `json:"mean_ns"`
	Max   sim.Duration `json:"max_ns"`
}

// Summarize digests the histogram. Read it on a quiescent histogram or a
// Snapshot, like the other readers.
func (h *Histogram) Summarize() HistSummary {
	return HistSummary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Mean:  h.Mean(),
		Max:   h.Max(),
	}
}

// HistBucket is one non-empty bucket in a serialized histogram.
type HistBucket struct {
	I int   `json:"i"`
	C int64 `json:"c"`
}

// HistogramState is the serializable form of one named histogram: sparse
// buckets (most of the fixed grid is empty) plus the exact-resolution
// aggregates. Restoring it reproduces the histogram bit-identically.
type HistogramState struct {
	Kind    string       `json:"kind"`
	Buckets []HistBucket `json:"buckets,omitempty"`
	N       int64        `json:"n"`
	Sum     int64        `json:"sum,omitempty"`
	Max     int64        `json:"max,omitempty"`
}

// capture serializes h under the given kind name.
func (h *Histogram) capture(kind string) HistogramState {
	s := HistogramState{Kind: kind, N: h.n, Sum: h.sum, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{I: i, C: c})
		}
	}
	return s
}

// restore installs a captured state into h, replacing its contents.
func (h *Histogram) restore(s HistogramState) error {
	*h = Histogram{n: s.N, sum: s.Sum, max: s.Max}
	for _, b := range s.Buckets {
		if b.I < 0 || b.I >= histBuckets {
			return fmt.Errorf("core: histogram bucket index %d out of range", b.I)
		}
		h.counts[b.I] = b.C
	}
	return nil
}

// OpHist returns the latency histogram registered under kind, creating it on
// first use. Intended pattern: one kind per operation class ("get", "put",
// "timeout", ...), recorded by application or protocol code on the
// completion path. The histograms live outside Stats (they are too big to
// copy on every Stats() call) but share its lifetime.
func (d *DSM) OpHist(kind string) *Histogram {
	d.histMu.Lock()
	defer d.histMu.Unlock()
	if d.opHists == nil {
		d.opHists = make(map[string]*Histogram)
	}
	h := d.opHists[kind]
	if h == nil {
		h = &Histogram{}
		d.opHists[kind] = h
	}
	return h
}

// OpKinds returns the registered histogram kinds in sorted order, so reports
// iterate deterministically.
func (d *DSM) OpKinds() []string {
	d.histMu.Lock()
	defer d.histMu.Unlock()
	out := make([]string, 0, len(d.opHists))
	for k := range d.opHists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
