package core

import (
	"fmt"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
)

// SwitchProtocol re-associates an allocated area with a different protocol.
// Section 2.3: the platform has no transparent support for this, "however,
// this can be achieved if needed through a careful synchronization at the
// program level (e.g. through barriers). Essentially, one has to keep the
// corresponding memory area from being accessed by the application threads
// during the protocol switch, since this operation involves modifications in
// the distributed page table on all nodes."
//
// The caller provides exactly that guarantee: no thread touches the area
// while SwitchProtocol runs (typically between two barriers). The switch
// resets every node's page-table entry — copies are dropped, ownership and
// rights return to the home node, protocol-private state is discarded — and
// the new protocol's page initializer runs. One control-message round trip
// per node is charged for the distributed table update.
func (d *DSM) SwitchProtocol(t *pm2.Thread, base Addr, size int, proto ProtoID) error {
	newProto := d.instance(proto) // validates the id
	space := d.state[0].space
	first := space.PageOf(base)
	last := space.PageOf(base + Addr(size-1))
	// Validate quiescence and ownership of the whole range first.
	for pg := first; pg <= last; pg++ {
		if _, ok := d.dir.get(pg); !ok {
			return fmt.Errorf("core: SwitchProtocol on unallocated page %d", pg)
		}
		for n := 0; n < d.rt.Nodes(); n++ {
			e := d.Entry(n, pg)
			if e.Pending {
				return fmt.Errorf("core: SwitchProtocol while node %d has a fetch in flight for page %d (area not quiescent)", n, pg)
			}
		}
	}
	for pg := first; pg <= last; pg++ {
		pi, _ := d.dir.get(pg)
		pi.proto = proto
		d.dir.set(pg, pi)
		// If ownership moved away from the home under the old protocol,
		// the owner's copy is the authoritative one: bring it home first
		// (one page transfer on the wire).
		for n := 0; n < d.rt.Nodes(); n++ {
			if n == pi.home || !d.Entry(n, pg).Owner {
				continue
			}
			src := d.state[n].space.Frame(pg)
			if src == nil {
				continue
			}
			dst := d.state[pi.home].space.Ensure(pg)
			copy(dst.Data, src.Data)
			t.Advance(d.rt.Link(n, pi.home).Transfer(PageSize))
			break
		}
		for n := 0; n < d.rt.Nodes(); n++ {
			e := d.Entry(n, pg)
			e.Lock(t)
			e.ProbOwner = pi.home
			e.Owner = n == pi.home
			e.Copyset.Clear()
			e.ProtoData = nil
			e.proto = proto // keep the hot-path cache in step with the directory
			if n == pi.home {
				// The home's copy is authoritative and survives.
				d.state[n].space.SetAccess(pg, memory.ReadWrite)
			} else {
				d.state[n].space.Drop(pg)
			}
			e.Unlock(t)
		}
		if init, ok := newProto.(PageInitializer); ok {
			init.InitPage(pg, pi.home)
		}
	}
	// The distributed page table update: one round trip per remote node,
	// charged on the out and back links separately (they may differ under
	// an asymmetric topology).
	for n := 0; n < d.rt.Nodes(); n++ {
		if n != t.Node() {
			t.Advance(d.rt.Link(t.Node(), n).CtrlMsg + d.rt.Link(n, t.Node()).CtrlMsg)
		}
	}
	return nil
}
