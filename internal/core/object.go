package core

import (
	"fmt"
	"sync"

	"dsmpm2/internal/pm2"
)

// Object layer: the Hyperion-compatible object model of Section 3.3. Shared
// objects are fixed layouts of 8-byte fields placed inside shared pages;
// each object lives entirely within one page (the runtime allocates objects
// so they never straddle pages) and has the home of its page. Programs
// access fields through the get/put primitives, which protocols may
// implement with inline checks (java_ic) or page faults (java_pf).

// FieldBytes is the size of one object field.
const FieldBytes = 8

// ObjRef is a reference to a shared object.
type ObjRef struct {
	Base   Addr
	Fields int
}

// Nil reports whether the reference is null.
func (o ObjRef) Nil() bool { return o.Base == 0 }

// Field returns the address of field i.
func (o ObjRef) Field(i int) Addr {
	if i < 0 || i >= o.Fields {
		panic(fmt.Sprintf("core: field %d out of range [0,%d)", i, o.Fields))
	}
	return o.Base + Addr(i*FieldBytes)
}

// objectSpace bump-allocates objects inside per-home page areas. mu guards
// the area map and the bump pointers: on a sharded machine, setup threads on
// different event-loop shards may create objects concurrently. Each area's
// addresses come from Malloc (itself shard-safe), so the lock only orders the
// bump arithmetic.
type objectSpace struct {
	d     *DSM
	mu    sync.Mutex
	areas map[areaKey]*objArea
}

type areaKey struct {
	home  int
	proto ProtoID
}

type objArea struct {
	cur  Addr // next free byte, 0 when a fresh chunk is needed
	end  Addr
	attr *Attr
}

// objChunkPages is how many pages each object-area chunk spans.
const objChunkPages = 16

func newObjectSpace(d *DSM) *objectSpace {
	return &objectSpace{d: d, areas: make(map[areaKey]*objArea)}
}

// NewObject allocates a shared object of nFields 8-byte fields, homed on
// node home and managed by protocol proto (-1 for the default). Objects are
// packed into pages homed on their node, so "local objects are intensively
// used" workloads touch mostly local pages, as the paper's map-coloring
// program does.
func (d *DSM) NewObject(home, nFields int, proto ProtoID) (ObjRef, error) {
	if nFields < 1 {
		return ObjRef{}, fmt.Errorf("core: object needs at least one field")
	}
	size := nFields * FieldBytes
	if size > PageSize {
		return ObjRef{}, fmt.Errorf("core: object of %d fields exceeds a page", nFields)
	}
	if proto < 0 {
		proto = d.defProto
	}
	key := areaKey{home: home, proto: proto}
	d.objects.mu.Lock()
	defer d.objects.mu.Unlock()
	area := d.objects.areas[key]
	if area == nil {
		area = &objArea{attr: &Attr{Protocol: proto, Home: home}}
		d.objects.areas[key] = area
	}
	// Objects never straddle pages: skip the tail of the current page if
	// the object does not fit.
	if area.cur != 0 {
		pageEnd := (area.cur/PageSize + 1) * PageSize
		if area.cur+Addr(size) > pageEnd {
			area.cur = pageEnd
		}
	}
	if area.cur == 0 || area.cur+Addr(size) > area.end {
		base, err := d.Malloc(home, objChunkPages*PageSize, area.attr)
		if err != nil {
			return ObjRef{}, err
		}
		area.cur = base
		area.end = base + Addr(objChunkPages*PageSize)
	}
	ref := ObjRef{Base: area.cur, Fields: nFields}
	area.cur += Addr(size)
	return ref, nil
}

// MustNewObject is NewObject panicking on error, for setup code.
func (d *DSM) MustNewObject(home, nFields int, proto ProtoID) ObjRef {
	o, err := d.NewObject(home, nFields, proto)
	if err != nil {
		panic(err)
	}
	return o
}

// GetField reads field i of obj as a uint64 through the get primitive.
func (d *DSM) GetField(t *pm2.Thread, obj ObjRef, i int) uint64 {
	return d.GetUint64(t, obj.Field(i))
}

// PutField writes field i of obj as a uint64 through the put primitive.
func (d *DSM) PutField(t *pm2.Thread, obj ObjRef, i int, v uint64) {
	d.PutUint64(t, obj.Field(i), v)
}
