package core

import (
	"sort"
	"sync"

	"dsmpm2/internal/isomalloc"
)

// directory is the range-sharded page directory: the allocation-time
// metadata (home node, managing protocol) that the flat allocInfo map used
// to hold machine-globally. It applies the li_* distributed-manager idea to
// our own metadata: a page's directory entry lives in the partition of the
// node whose isomalloc slice contains it, so when the protocol layer runs
// across host shards (pm2.Config.Shards > 1) each shard touches only the
// partitions of the nodes it simulates on its hot paths — partitions are
// never rehashed globally and a partition's lock is only ever contended by
// genuine cross-range traffic. Partition 0 holds the static segment below
// the first slice (isomalloc.OwnerSlice = -1); partition i+1 holds node i's
// range.
//
// The mutexes are host-level concurrency protection only: they order
// nothing in virtual time (directory reads and writes stay attached to the
// simulation events that issue them), so Shards=1 behaviour is bit-for-bit
// what the flat map produced.
type directory struct {
	alloc *isomalloc.Allocator
	parts []dirPart
}

type dirPart struct {
	mu    sync.RWMutex
	pages map[Page]pageInfo
}

func newDirectory(alloc *isomalloc.Allocator, nodes int) *directory {
	return &directory{alloc: alloc, parts: make([]dirPart, nodes+1)}
}

// part returns pg's partition: the slice owner's, or 0 for the static
// segment. Pure address arithmetic — no shared state.
func (dir *directory) part(pg Page) *dirPart {
	return &dir.parts[dir.alloc.OwnerSlice(isomalloc.Addr(uint64(pg)*PageSize))+1]
}

// get returns pg's metadata.
func (dir *directory) get(pg Page) (pageInfo, bool) {
	p := dir.part(pg)
	p.mu.RLock()
	pi, ok := p.pages[pg]
	p.mu.RUnlock()
	return pi, ok
}

// set records pg's metadata (allocation, protocol switch, home migration,
// recovery re-home, snapshot restore).
func (dir *directory) set(pg Page, pi pageInfo) {
	p := dir.part(pg)
	p.mu.Lock()
	if p.pages == nil {
		p.pages = make(map[Page]pageInfo)
	}
	p.pages[pg] = pi
	p.mu.Unlock()
}

// setHome updates just the home field, preserving the protocol.
func (dir *directory) setHome(pg Page, home int) {
	p := dir.part(pg)
	p.mu.Lock()
	pi := p.pages[pg]
	pi.home = home
	p.pages[pg] = pi
	p.mu.Unlock()
}

// len reports the number of allocated pages across all partitions.
func (dir *directory) len() int {
	n := 0
	for i := range dir.parts {
		p := &dir.parts[i]
		p.mu.RLock()
		n += len(p.pages)
		p.mu.RUnlock()
	}
	return n
}

// sortedPages returns every allocated page in ascending order: the
// deterministic iteration order for recovery sweeps, snapshots, and
// profiler tracking. Partitions are walked in slice order and each is
// sorted locally; slices are disjoint address ranges, so the concatenation
// is globally sorted.
func (dir *directory) sortedPages() []Page {
	out := make([]Page, 0, dir.len())
	for i := range dir.parts {
		p := &dir.parts[i]
		p.mu.RLock()
		start := len(out)
		for pg := range p.pages {
			out = append(out, pg)
		}
		p.mu.RUnlock()
		part := out[start:]
		sort.Slice(part, func(a, b int) bool { return part[a] < part[b] })
	}
	return out
}

// reset clears every partition (snapshot restore).
func (dir *directory) reset() {
	for i := range dir.parts {
		p := &dir.parts[i]
		p.mu.Lock()
		p.pages = nil
		p.mu.Unlock()
	}
}
