package core

import (
	"fmt"
	"sort"

	"dsmpm2/internal/isomalloc"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/sim"
)

// DSM checkpoint/restore: the core's half of the full-state snapshot
// subsystem (see the dsmpm2 facade's checkpoint.go for the envelope that
// ties the layers together). CaptureState serializes everything the DSM
// owns — frames, page-table entries, allocation metadata, synchronization
// managers, protocol-private state, stats, recovery and profiler state —
// at a safe point, and RestoreState installs it into a freshly built DSM of
// the same shape so the continued run replays bit-identically.
//
// A safe point for the core means flush-quiesced: no fetch pending, no twin
// outstanding, no lock held, no barrier generation in progress. Queued write
// notices are NOT required to be empty — under batching a checkpoint can
// land between a flush and the barrier arrival that would carry its notices,
// so they serialize with the node that queued them.

// ProtoStater is the optional interface a protocol implements to make its
// private per-node state (dirty-page sets, write-fault counters) part of a
// checkpoint. Protocols without cross-synchronization private state need
// not implement it; a checkpoint fails if a stateful protocol is
// instantiated but not capturable.
type ProtoStater interface {
	// CaptureProtoState serializes the protocol's private state.
	CaptureProtoState() ([]byte, error)
	// RestoreProtoState installs previously captured state, replacing the
	// instance's current (freshly constructed) state.
	RestoreProtoState(data []byte) error
}

// FrameState is one node's copy of one page: contents and access rights.
type FrameState struct {
	Page   uint64 `json:"page"`
	Access uint8  `json:"access"`
	Data   []byte `json:"data"`
}

// EntryState is the serializable part of one page-table entry. Pending,
// pendingSeq and ProtoData are deliberately absent: a safe point has no
// fetch in flight and no twin outstanding (an empty twinData shell restores
// as nil, which is behaviorally identical).
type EntryState struct {
	Page      uint64 `json:"page"`
	ProbOwner int    `json:"prob_owner"`
	Home      int    `json:"home"`
	Owner     bool   `json:"owner,omitempty"`
	Copyset   []int  `json:"copyset,omitempty"`
	InvalSeq  uint64 `json:"inval_seq,omitempty"`
	ReqSeq    uint64 `json:"req_seq,omitempty"`
}

// NoticeGroup is one barrier's queued write notices on one node.
type NoticeGroup struct {
	Barrier int           `json:"barrier"`
	Notices []WriteNotice `json:"notices"`
}

// NodeCoreState is one node's slice of the DSM state.
type NodeCoreState struct {
	Frames  []FrameState  `json:"frames,omitempty"`
	Entries []EntryState  `json:"entries,omitempty"`
	Notices []NoticeGroup `json:"notices,omitempty"`
}

// PageAllocState is the allocation-time metadata of one shared page.
type PageAllocState struct {
	Page  uint64 `json:"page"`
	Home  int    `json:"home"`
	Proto string `json:"proto"`
}

// LockSnap is the manager-side state of one DSM lock. Held/waiters are
// absent: a checkpoint with a lock held is rejected.
type LockSnap struct {
	ID    int      `json:"id"`
	Home  int      `json:"home"`
	Bound []uint64 `json:"bound,omitempty"`
}

// BarrierSnap is the manager-side state of one DSM barrier. Notices that
// stale re-arrivals folded into a not-yet-started generation are carried.
type BarrierSnap struct {
	ID      int           `json:"id"`
	Home    int           `json:"home"`
	N       int           `json:"n"`
	Gen     int           `json:"gen"`
	Notices []WriteNotice `json:"notices,omitempty"`
	Arrived []int         `json:"arrived_nodes,omitempty"`
}

// CondSnap is the manager-side state of one condition variable (no
// outstanding tickets at a safe point).
type CondSnap struct {
	ID      int `json:"id"`
	Lock    int `json:"lock"`
	Home    int `json:"home"`
	NextTkt int `json:"next_tkt"`
}

// ObjAreaSnap is one object-space bump area.
type ObjAreaSnap struct {
	Home  int    `json:"home"`
	Proto string `json:"proto"`
	Cur   uint64 `json:"cur"`
	End   uint64 `json:"end"`
}

// ProtoStateSnap is one instantiated protocol: its name and (for stateful
// protocols) its captured private state.
type ProtoStateSnap struct {
	Name  string `json:"name"`
	State []byte `json:"state,omitempty"`
}

// RecoverySnap is the recovery manager's state.
type RecoverySnap struct {
	Timeout     sim.Duration  `json:"timeout"`
	Backoff     float64       `json:"backoff,omitempty"`
	RetryMax    sim.Duration  `json:"retry_max,omitempty"`
	Jitter      sim.Duration  `json:"jitter,omitempty"`
	JitterSeed  int64         `json:"jitter_seed,omitempty"`
	JitterDraws uint64        `json:"jitter_draws,omitempty"`
	Dead        []bool        `json:"dead"`
	Stats       RecoveryStats `json:"stats"`
	Ckpts       []int         `json:"ckpts"`
}

// ProfCounters mirrors pageCounters for serialization.
type ProfCounters struct {
	Reads   uint32 `json:"reads,omitempty"`
	Writes  uint32 `json:"writes,omitempty"`
	Fetches uint32 `json:"fetches,omitempty"`
	Diffs   uint32 `json:"diffs,omitempty"`
}

// ProfRingEntry mirrors ringEntry for serialization.
type ProfRingEntry struct {
	Class  uint8 `json:"class"`
	Writer int   `json:"writer"`
}

// ProfPageSnap is the profiler's per-page state.
type ProfPageSnap struct {
	Page   uint64          `json:"page"`
	Counts []ProfCounters  `json:"counts"`
	Ring   []ProfRingEntry `json:"ring"`
	Pref   int             `json:"pref"`
	Stable int             `json:"stable"`
}

// ProfilerSnap is the profiler and decision-engine state.
type ProfilerSnap struct {
	Migrate   bool           `json:"migrate"`
	Stability int            `json:"stability"`
	Window    int            `json:"window"`
	Epoch     int            `json:"epoch"`
	Epochs    []EpochProfile `json:"epochs,omitempty"`
	Pages     []ProfPageSnap `json:"pages,omitempty"`
}

// CoreState is the DSM's complete serializable state.
type CoreState struct {
	DefProto   string           `json:"def_proto,omitempty"`
	Protocols  []ProtoStateSnap `json:"protocols,omitempty"`
	Batch      bool             `json:"batch"`
	Alloc      isomalloc.State  `json:"alloc"`
	Pages      []PageAllocState `json:"pages,omitempty"`
	Nodes      []NodeCoreState  `json:"nodes"`
	Locks      []LockSnap       `json:"locks,omitempty"`
	Barriers   []BarrierSnap    `json:"barriers,omitempty"`
	Conds      []CondSnap       `json:"conds,omitempty"`
	ObjAreas   []ObjAreaSnap    `json:"obj_areas,omitempty"`
	Stats      Stats            `json:"stats"`
	NodeFaults []int64          `json:"node_faults"`
	Timings    []FaultTiming    `json:"timings,omitempty"`

	// Sharded machines snapshot their counter and timing state per shard
	// (the merged Stats/Timings fields above stay populated for readers of
	// the aggregate). A single-loop machine omits both, keeping its wire
	// form byte-identical to pre-sharding snapshots.
	ShardStats   []Stats          `json:"shard_stats,omitempty"`
	ShardTimings [][]FaultTiming  `json:"shard_timings,omitempty"`
	OpHists      []HistogramState `json:"op_hists,omitempty"`
	Recovery     *RecoverySnap    `json:"recovery,omitempty"`
	Profiler     *ProfilerSnap    `json:"profiler,omitempty"`
}

// CaptureState serializes the DSM at a safe point, or explains why the
// moment is not one. It never mutates the DSM.
func (d *DSM) CaptureState() (*CoreState, error) {
	if d.prof != nil && d.prof.folding {
		return nil, fmt.Errorf("core: capture during a profiler epoch fold")
	}
	s := &CoreState{
		Batch:      d.batch,
		Alloc:      d.alloc.Capture(),
		Stats:      d.Stats(),
		NodeFaults: append([]int64(nil), d.nodeFaults...),
	}
	if len(d.statsSh) > 1 {
		s.ShardStats = append([]Stats(nil), d.statsSh...)
		s.ShardTimings = make([][]FaultTiming, len(d.timingsSh))
		for sh := range d.timingsSh {
			for _, ft := range d.timingsSh[sh].All() {
				s.ShardTimings[sh] = append(s.ShardTimings[sh], *ft)
			}
		}
	}
	if d.defProto >= 0 {
		s.DefProto = d.registry.Name(d.defProto)
	}
	for id := ProtoID(0); int(id) < d.registry.Len(); id++ {
		p, ok := d.instanceIfLive(id)
		if !ok {
			continue
		}
		ps := ProtoStateSnap{Name: d.registry.Name(id)}
		if st, ok := p.(ProtoStater); ok {
			blob, err := st.CaptureProtoState()
			if err != nil {
				return nil, fmt.Errorf("core: capture protocol %s: %w", ps.Name, err)
			}
			ps.State = blob
		}
		s.Protocols = append(s.Protocols, ps)
	}
	for _, pg := range d.sortedPages() {
		pi, _ := d.dir.get(pg)
		s.Pages = append(s.Pages, PageAllocState{
			Page: uint64(pg), Home: pi.home, Proto: d.registry.Name(pi.proto),
		})
	}
	for n := 0; n < d.rt.Nodes(); n++ {
		ncs, err := d.captureNode(n)
		if err != nil {
			return nil, err
		}
		s.Nodes = append(s.Nodes, ncs)
	}
	for _, ls := range d.locks {
		if ls.held || len(ls.waiters) > 0 {
			return nil, fmt.Errorf("core: capture with lock %d held by node %d (%d waiter(s)) — checkpoint outside critical sections", ls.id, ls.holder, len(ls.waiters))
		}
		snap := LockSnap{ID: ls.id, Home: ls.home}
		for _, pg := range ls.bound {
			snap.Bound = append(snap.Bound, uint64(pg))
		}
		s.Locks = append(s.Locks, snap)
	}
	for _, bs := range d.barriers {
		if bs.arrived != 0 || len(bs.waiters) > 0 {
			return nil, fmt.Errorf("core: capture with barrier %d mid-generation (%d arrived, %d parked)", bs.id, bs.arrived, len(bs.waiters))
		}
		snap := BarrierSnap{ID: bs.id, Home: bs.home, N: bs.n, Gen: bs.gen,
			Notices: append([]WriteNotice(nil), bs.notices...)}
		for n := range bs.arrivedNodes {
			snap.Arrived = append(snap.Arrived, n)
		}
		sort.Ints(snap.Arrived)
		s.Barriers = append(s.Barriers, snap)
	}
	// On a sharded machine a barrier can look idle at its home while a leader
	// still holds an un-carried batch or an in-flight combine — reject those
	// mid-combine moments too.
	if err := d.TreeBarrierResidue(); err != nil {
		return nil, err
	}
	for _, cs := range d.conds {
		if len(cs.tickets) > 0 {
			return nil, fmt.Errorf("core: capture with %d outstanding wait ticket(s) on condition %d", len(cs.tickets), cs.id)
		}
		s.Conds = append(s.Conds, CondSnap{ID: cs.id, Lock: cs.lock, Home: cs.home, NextTkt: cs.nextTkt})
	}
	// Areas in deterministic (home, proto) order.
	areaKeys := make([]areaKey, 0, len(d.objects.areas))
	for k := range d.objects.areas {
		areaKeys = append(areaKeys, k)
	}
	sort.Slice(areaKeys, func(i, j int) bool {
		if areaKeys[i].home != areaKeys[j].home {
			return areaKeys[i].home < areaKeys[j].home
		}
		return areaKeys[i].proto < areaKeys[j].proto
	})
	for _, k := range areaKeys {
		a := d.objects.areas[k]
		s.ObjAreas = append(s.ObjAreas, ObjAreaSnap{
			Home: k.home, Proto: d.registry.Name(k.proto),
			Cur: uint64(a.cur), End: uint64(a.end),
		})
	}
	for _, ft := range d.Timings().All() {
		s.Timings = append(s.Timings, *ft)
	}
	for _, kind := range d.OpKinds() {
		s.OpHists = append(s.OpHists, d.opHists[kind].capture(kind))
	}
	if rec := d.recovery; rec != nil {
		rs := &RecoverySnap{
			Timeout: rec.cfg.Timeout, Backoff: rec.cfg.Backoff,
			RetryMax: rec.cfg.RetryMax, Jitter: rec.cfg.Jitter,
			JitterSeed: rec.cfg.JitterSeed,
			Dead:       append([]bool(nil), rec.dead...),
			Stats:      rec.stats,
			Ckpts:      append([]int(nil), rec.ckpts...),
		}
		if rec.jitter != nil {
			rs.JitterDraws = rec.jitter.Draws()
		}
		s.Recovery = rs
	}
	if p := d.prof; p != nil {
		ps := &ProfilerSnap{
			Migrate: p.cfg.Migrate, Stability: p.cfg.Stability, Window: p.cfg.Window,
			Epoch:  p.epoch,
			Epochs: append([]EpochProfile(nil), p.epochs...),
		}
		for _, pg := range p.order {
			pp := p.pages[pg]
			snap := ProfPageSnap{Page: uint64(pg), Pref: pp.pref, Stable: pp.stable}
			for _, c := range pp.counts {
				snap.Counts = append(snap.Counts, ProfCounters{Reads: c.reads, Writes: c.writes, Fetches: c.fetches, Diffs: c.diffs})
			}
			for _, r := range pp.ring {
				snap.Ring = append(snap.Ring, ProfRingEntry{Class: uint8(r.class), Writer: r.writer})
			}
			ps.Pages = append(ps.Pages, snap)
		}
		s.Profiler = ps
	}
	return s, nil
}

// captureNode serializes one node's frames, entries and queued notices.
func (d *DSM) captureNode(n int) (NodeCoreState, error) {
	ns := d.state[n]
	var out NodeCoreState
	if d.recovery != nil && d.recovery.dead[n] {
		// A fail-stopped node's retained state — including half-written
		// twins its dying threads left behind — is unreachable garbage:
		// RestartNode drops it wholesale and nothing reads it in between.
		// Capture it as the empty state restart would install.
		return out, nil
	}
	framePages := ns.space.Pages()
	sort.Slice(framePages, func(i, j int) bool { return framePages[i] < framePages[j] })
	for _, pg := range framePages {
		fr := ns.space.Frame(pg)
		out.Frames = append(out.Frames, FrameState{
			Page: uint64(pg), Access: uint8(fr.Access),
			Data: append([]byte(nil), fr.Data...),
		})
	}
	for _, pg := range ns.pages {
		e := ns.table[pg]
		if e.Pending {
			return NodeCoreState{}, fmt.Errorf("core: capture with a fetch in flight for page %d on node %d", pg, n)
		}
		if td, ok := e.ProtoData.(*twinData); ok && td != nil && (td.twin != nil || td.dirty != nil) {
			return NodeCoreState{}, fmt.Errorf("core: capture with an outstanding twin/recorded diff for page %d on node %d (flush before checkpointing)", pg, n)
		} else if e.ProtoData != nil && !ok {
			return NodeCoreState{}, fmt.Errorf("core: capture with unserializable protocol data on page %d node %d", pg, n)
		}
		out.Entries = append(out.Entries, EntryState{
			Page: uint64(pg), ProbOwner: e.ProbOwner, Home: e.Home, Owner: e.Owner,
			Copyset:  e.Copyset.AppendTo(nil),
			InvalSeq: e.InvalSeq, ReqSeq: e.reqSeq,
		})
	}
	barriers := make([]int, 0, len(ns.notices))
	for b := range ns.notices {
		barriers = append(barriers, b)
	}
	sort.Ints(barriers)
	for _, b := range barriers {
		if len(ns.notices[b]) == 0 {
			continue
		}
		out.Notices = append(out.Notices, NoticeGroup{
			Barrier: b, Notices: append([]WriteNotice(nil), ns.notices[b]...),
		})
	}
	return out, nil
}

// lookupProto resolves a captured protocol name against the registry.
func (d *DSM) lookupProto(name string) (ProtoID, error) {
	id, ok := d.registry.Lookup(name)
	if !ok {
		return -1, fmt.Errorf("core: restore references unregistered protocol %q", name)
	}
	return id, nil
}

// RestoreState installs a captured core state into this DSM, which must be
// freshly built over an identically shaped runtime (same node count, same
// protocol registry) and must not have served any application traffic yet.
// The recovery manager's OnRestart hook is taken from the DSM's current
// configuration (hooks do not serialize); everything else comes from the
// snapshot.
func (d *DSM) RestoreState(s *CoreState) error {
	if len(s.Nodes) != d.rt.Nodes() {
		return fmt.Errorf("core: restore of %d-node state into %d-node DSM", len(s.Nodes), d.rt.Nodes())
	}
	if err := d.alloc.Restore(s.Alloc); err != nil {
		return err
	}
	d.batch = s.Batch
	d.dir.reset()
	for _, pa := range s.Pages {
		id, err := d.lookupProto(pa.Proto)
		if err != nil {
			return err
		}
		d.dir.set(Page(pa.Page), pageInfo{home: pa.Home, proto: id})
	}
	if s.DefProto != "" {
		id, err := d.lookupProto(s.DefProto)
		if err != nil {
			return err
		}
		d.defProto = id
	}
	for _, ps := range s.Protocols {
		id, err := d.lookupProto(ps.Name)
		if err != nil {
			return err
		}
		inst := d.instance(id)
		if len(ps.State) == 0 {
			continue
		}
		st, ok := inst.(ProtoStater)
		if !ok {
			return fmt.Errorf("core: protocol %s has captured state but no restore support", ps.Name)
		}
		if err := st.RestoreProtoState(ps.State); err != nil {
			return fmt.Errorf("core: restore protocol %s: %w", ps.Name, err)
		}
	}
	for n, ncs := range s.Nodes {
		ns := &nodeState{
			node:  n,
			space: memory.NewSpace(PageSize),
			table: make(map[Page]*Entry),
		}
		d.state[n] = ns
		for _, fs := range ncs.Frames {
			fr := ns.space.Ensure(Page(fs.Page))
			copy(fr.Data, fs.Data)
			fr.Access = memory.Access(fs.Access)
		}
		for _, es := range ncs.Entries {
			e := d.Entry(n, Page(es.Page))
			e.ProbOwner = es.ProbOwner
			e.Home = es.Home
			e.Owner = es.Owner
			e.Copyset.FromSlice(es.Copyset)
			e.InvalSeq = es.InvalSeq
			e.reqSeq = es.ReqSeq
		}
		for _, ng := range ncs.Notices {
			if ns.notices == nil {
				ns.notices = make(map[int][]WriteNotice)
			}
			ns.notices[ng.Barrier] = append([]WriteNotice(nil), ng.Notices...)
		}
	}
	d.locks = nil
	for _, ls := range s.Locks {
		lock := &lockState{id: ls.ID, home: ls.Home, holder: -1}
		for _, pg := range ls.Bound {
			lock.bound = append(lock.bound, Page(pg))
		}
		d.locks = append(d.locks, lock)
	}
	d.barriers = nil
	for _, bs := range s.Barriers {
		b := &barrierState{id: bs.ID, home: bs.Home, n: bs.N, gen: bs.Gen,
			notices: append([]WriteNotice(nil), bs.Notices...)}
		for _, n := range bs.Arrived {
			if b.arrivedNodes == nil {
				b.arrivedNodes = make(map[int]bool)
			}
			b.arrivedNodes[n] = true
		}
		d.barriers = append(d.barriers, b)
	}
	d.conds = nil
	for _, cs := range s.Conds {
		d.conds = append(d.conds, &condState{
			id: cs.ID, lock: cs.Lock, home: cs.Home, nextTkt: cs.NextTkt,
			tickets: make(map[int]*sim.Chan),
		})
	}
	d.objects = newObjectSpace(d)
	for _, oa := range s.ObjAreas {
		id, err := d.lookupProto(oa.Proto)
		if err != nil {
			return err
		}
		d.objects.areas[areaKey{home: oa.Home, proto: id}] = &objArea{
			cur: Addr(oa.Cur), end: Addr(oa.End),
			attr: &Attr{Protocol: id, Home: oa.Home},
		}
	}
	// Counter/timing state: a snapshot carrying per-shard blocks restores
	// them exactly when the shard counts match; anything else (a legacy
	// single-loop snapshot, or a restore onto a machine with a different
	// shard count) folds the aggregate into shard 0 — the totals every
	// reader observes through Stats()/Timings() are identical either way.
	for i := range d.statsSh {
		d.statsSh[i] = Stats{}
		d.timingsSh[i] = TimingLog{}
	}
	if len(s.ShardStats) == len(d.statsSh) && len(s.ShardTimings) == len(d.timingsSh) && len(d.statsSh) > 1 {
		copy(d.statsSh, s.ShardStats)
		for sh := range s.ShardTimings {
			for i := range s.ShardTimings[sh] {
				ft := s.ShardTimings[sh][i]
				d.timingsSh[sh].Add(&ft)
			}
		}
	} else {
		d.statsSh[0] = s.Stats
		for i := range s.Timings {
			ft := s.Timings[i]
			d.timingsSh[0].Add(&ft)
		}
	}
	if len(s.NodeFaults) == len(d.nodeFaults) {
		copy(d.nodeFaults, s.NodeFaults)
	}
	d.opHists = nil
	for _, hs := range s.OpHists {
		if err := d.OpHist(hs.Kind).restore(hs); err != nil {
			return err
		}
	}
	if s.Recovery != nil {
		var onRestart func(int)
		if d.recovery != nil {
			onRestart = d.recovery.cfg.OnRestart
		}
		d.EnableRecovery(RecoveryConfig{
			Timeout: s.Recovery.Timeout, Backoff: s.Recovery.Backoff,
			RetryMax: s.Recovery.RetryMax, Jitter: s.Recovery.Jitter,
			JitterSeed: s.Recovery.JitterSeed, OnRestart: onRestart,
		})
		rec := d.recovery
		if len(s.Recovery.Dead) != len(rec.dead) {
			return fmt.Errorf("core: restore recovery state for %d nodes into %d-node DSM", len(s.Recovery.Dead), len(rec.dead))
		}
		copy(rec.dead, s.Recovery.Dead)
		rec.stats = s.Recovery.Stats
		copy(rec.ckpts, s.Recovery.Ckpts)
		if rec.jitter != nil {
			if err := rec.jitter.BurnTo(s.Recovery.JitterDraws); err != nil {
				return err
			}
		}
	}
	if s.Profiler != nil {
		// Re-enabling resets the evidence and re-tracks the (restored)
		// allocation set; the migrate services register only if they are not
		// already (no new dispatcher spawns on a system built with the same
		// profiler configuration).
		d.EnableProfiler(ProfilerConfig{
			Migrate: s.Profiler.Migrate, Stability: s.Profiler.Stability, Window: s.Profiler.Window,
		})
		p := d.prof
		p.epoch = s.Profiler.Epoch
		p.epochs = append([]EpochProfile(nil), s.Profiler.Epochs...)
		for _, snap := range s.Profiler.Pages {
			pp := p.pages[Page(snap.Page)]
			if pp == nil {
				return fmt.Errorf("core: profiler state for untracked page %d", snap.Page)
			}
			if len(snap.Counts) != len(pp.counts) || len(snap.Ring) != len(pp.ring) {
				return fmt.Errorf("core: profiler state shape mismatch for page %d", snap.Page)
			}
			for i, c := range snap.Counts {
				pp.counts[i] = pageCounters{reads: c.Reads, writes: c.Writes, fetches: c.Fetches, diffs: c.Diffs}
			}
			for i, r := range snap.Ring {
				pp.ring[i] = ringEntry{class: PageClass(r.Class), writer: r.Writer}
			}
			pp.pref = snap.Pref
			pp.stable = snap.Stable
		}
	}
	return nil
}
