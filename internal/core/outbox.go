package core

import (
	"bytes"
	"sort"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// This file is the batched half of the DSM communication module: a
// per-release outbox (Batch) that coalesces the invalidations and diffs a
// critical section accumulated into ONE multi-part envelope per destination,
// plus the write-notice machinery that lets barriers carry invalidation
// information for free.
//
// Determinism contract: a Batch flushes in canonical order — destinations
// ascending, and within each destination invalidations then diffs, each
// sorted by page — so the wire trace (and therefore the TimingLog) is
// independent of the order operations were queued in. Shuffling insertion
// order must not move a single virtual timestamp; a property test pins this.

// noticeBytes is the wire size charged per write notice piggybacked on a
// barrier message.
const noticeBytes = 16

// WriteNotice records that Writer committed modifications to Page during the
// synchronization epoch ending at a barrier. The barrier aggregates every
// participant's notices and hands the union back with the release, so
// holders of stale copies self-invalidate without any dedicated
// invalidation round trip.
type WriteNotice struct {
	Page   Page
	Writer int
}

// invOp is one queued invalidation: the page plus the new-owner hint.
type invOp struct {
	page     Page
	newOwner int
}

// destBatch accumulates the operations bound for one destination.
type destBatch struct {
	invs  []invOp
	diffs []*memory.Diff
	// noticed marks diffs whose invalidations are deferred to barrier write
	// notices (one flag per diffs element, parallel slice).
	noticed []bool
}

// Batch is a per-destination outbox: protocols queue the invalidations and
// diffs of one release into it, then Flush ships one envelope per
// destination and waits once for all of them. With batching disabled the
// same Flush reproduces the historical one-envelope-per-operation pattern
// (still overlapping the waits), keeping the unbatched path selectable for
// A/B comparison.
type Batch struct {
	d     *DSM
	t     *pm2.Thread
	node  int
	dests map[int]*destBatch
}

// NewBatch opens an outbox for operations sent on behalf of t's node.
func (d *DSM) NewBatch(t *pm2.Thread) *Batch {
	return &Batch{d: d, t: t, node: t.Node(), dests: make(map[int]*destBatch)}
}

func (b *Batch) dest(n int) *destBatch {
	db := b.dests[n]
	if db == nil {
		db = &destBatch{}
		b.dests[n] = db
	}
	return db
}

// Invalidate queues an invalidation of pg at dest. Self-invalidations are
// dropped (the caller owns its local state).
func (b *Batch) Invalidate(dest int, pg Page, newOwner int) {
	if dest == b.node {
		return
	}
	db := b.dest(dest)
	db.invs = append(db.invs, invOp{page: pg, newOwner: newOwner})
}

// Diff queues a diff for delivery to dest (the page's home). noticed defers
// the home's eager third-party invalidation to the sender's barrier write
// notices.
func (b *Batch) Diff(dest int, diff *memory.Diff, noticed bool) {
	b.d.profDiff(b.node, diff.Page)
	db := b.dest(dest)
	db.diffs = append(db.diffs, diff)
	db.noticed = append(db.noticed, noticed)
}

// Empty reports whether the outbox holds no operations.
func (b *Batch) Empty() bool { return len(b.dests) == 0 }

// canonicalize sorts one destination's operations into flush order:
// invalidations by (page, newOwner), diffs by page with a content tiebreak.
// Queued order is deliberately forgotten — determinism must not depend on
// it, even for the odd caller that queues two diffs of one page to one
// destination (SendDiffsBatched iterates a map).
//
// Invalidations are also deduplicated per page (the last entry in canonical
// order — the highest owner hint — wins). One destination needs one
// invalidation of a page per flush no matter how many times it was queued;
// the unbatched path has always collapsed duplicates through its
// per-(node, page) ack bookkeeping, and deduplicating here keeps the two
// paths' Invalidations/InvAcks accounting identical.
func (db *destBatch) canonicalize() {
	sort.SliceStable(db.invs, func(i, j int) bool {
		if db.invs[i].page != db.invs[j].page {
			return db.invs[i].page < db.invs[j].page
		}
		return db.invs[i].newOwner < db.invs[j].newOwner
	})
	dedup := db.invs[:0]
	for i, iv := range db.invs {
		if i+1 < len(db.invs) && db.invs[i+1].page == iv.page {
			continue
		}
		dedup = append(dedup, iv)
	}
	db.invs = dedup
	// Sort the diffs and their noticed flags together.
	idx := make([]int, len(db.diffs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return diffLess(db.diffs[idx[i]], db.diffs[idx[j]])
	})
	diffs := make([]*memory.Diff, len(idx))
	noticed := make([]bool, len(idx))
	for i, k := range idx {
		diffs[i] = db.diffs[k]
		noticed[i] = db.noticed[k]
	}
	db.diffs = diffs
	db.noticed = noticed
}

// diffLess is the canonical total order on diffs: page, then entry list
// (offset, then bytes, lexicographically). Identical diffs compare equal,
// which a stable sort keeps stable — so the order never depends on how the
// caller happened to queue them.
func diffLess(a, b *memory.Diff) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	for i := 0; i < len(a.Entries) && i < len(b.Entries); i++ {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Off != eb.Off {
			return ea.Off < eb.Off
		}
		if c := bytes.Compare(ea.Data, eb.Data); c != 0 {
			return c < 0
		}
	}
	return len(a.Entries) < len(b.Entries)
}

// batchFlight is one awaited destination envelope of a batched flush.
type batchFlight struct {
	dest  int
	elems []pm2.VecElem
	diffs []*memory.Diff
	acks  int // invalidations whose acknowledgement the reply coalesces
	reply *sim.Chan
}

// Flush ships the outbox: destinations ascending, one envelope each. With
// wait true it blocks until every destination completed all of its
// operations — all envelopes depart before the first reply is awaited, so
// flushes to distinct destinations overlap instead of serializing. The
// outbox is empty afterwards and may be reused.
func (b *Batch) Flush(wait bool) {
	if len(b.dests) == 0 {
		return
	}
	d := b.d
	order := make([]int, 0, len(b.dests))
	for n := range b.dests {
		order = append(order, n)
	}
	sort.Ints(order)
	if !d.batch {
		b.flushUnbatched(order, wait)
		b.dests = make(map[int]*destBatch)
		return
	}
	flights := make([]*batchFlight, 0, len(order))
	for _, dest := range order {
		db := b.dests[dest]
		db.canonicalize() // before any send OR reroute: order must never depend on insertion
		if d.recovery != nil && d.NodeDead(dest) {
			// Dead holders need no invalidation; their copies died with
			// them. Diffs still must reach the pages' current homes.
			d.rerouteDiffs(b.t, db.diffs)
			continue
		}
		f := &batchFlight{dest: dest, diffs: db.diffs}
		for _, iv := range db.invs {
			f.elems = append(f.elems, pm2.VecElem{
				Svc:  svcInvald,
				Arg:  &invMsg{page: iv.page, from: b.node, newOwner: iv.newOwner},
				Size: ctrlBytes,
			})
			f.acks++
		}
		for i, df := range db.diffs {
			f.elems = append(f.elems, pm2.VecElem{
				Svc:  svcDiff,
				Arg:  &diffMsgWire{from: b.node, diffs: []*memory.Diff{df}, noticed: db.noticed[i]},
				Size: ctrlBytes + df.Size(),
			})
			d.st(b.node).DiffBytes += int64(ctrlBytes + df.Size())
		}
		st := d.st(b.node)
		st.Invalidations += int64(len(db.invs))
		st.DiffsSent += int64(len(db.diffs))
		st.Sends += int64(len(f.elems))
		st.Envelopes++
		if wait {
			f.reply = d.rt.StartVecFrom(b.node, dest, f.elems, ctrlBytes)
			flights = append(flights, f)
		} else {
			d.rt.AsyncVecFrom(b.node, dest, f.elems)
		}
	}
	b.dests = make(map[int]*destBatch)
	for _, f := range flights {
		b.waitFlight(f)
	}
}

// waitFlight blocks until one destination's envelope is fully processed.
// With recovery enabled the wait is bounded: a silent-but-alive destination
// gets the (idempotent) envelope again; a dead one needs no invalidations
// and has its diffs re-routed to the pages' current homes.
func (b *Batch) waitFlight(f *batchFlight) {
	d, t := b.d, b.t
	if d.recovery == nil {
		f.reply.Recv(t.Proc())
		d.st(b.node).InvAcks += int64(f.acks)
		return
	}
	attempt := 0
	for {
		if _, ok := f.reply.RecvTimeout(t.Proc(), d.recovery.retryDelay(attempt)); ok {
			d.st(b.node).InvAcks += int64(f.acks)
			return
		}
		attempt++
		d.recovery.stats.Retries++
		if !d.NodeDead(f.dest) {
			// Alive but silent: the envelope or its coalesced reply was
			// lost or is crawling through a partition. Re-send the whole
			// envelope — invalidations and diffs apply idempotently, and a
			// late first reply just lingers unread. Counted like any other
			// shipment, mirroring the unbatched retry path's accounting.
			st := d.st(b.node)
			st.Invalidations += int64(f.acks)
			st.DiffsSent += int64(len(f.diffs))
			st.Sends += int64(len(f.elems))
			st.Envelopes++
			f.reply = d.rt.StartVecFrom(b.node, f.dest, f.elems, ctrlBytes)
			continue
		}
		d.rerouteDiffs(t, f.diffs)
		return
	}
}

// flushUnbatched reproduces the pre-batching wire pattern — one envelope per
// invalidation, one diff-list envelope per destination — while still
// overlapping the blocking waits across destinations.
func (b *Batch) flushUnbatched(order []int, wait bool) {
	d, t := b.d, b.t
	ack := new(sim.Chan)
	// outstanding tracks each unacknowledged (node, page) invalidation
	// individually (value: its new-owner hint, for resends): acks name both
	// node and page, so a duplicate ack for an applied page can never stand
	// in for a different, still-unapplied one.
	outstanding := make(map[invAck]int)
	acks := 0
	var diffFlights []*diffFlight
	for _, dest := range order {
		db := b.dests[dest]
		db.canonicalize()
		if d.recovery != nil && d.NodeDead(dest) {
			d.rerouteDiffs(t, db.diffs)
			continue
		}
		for _, iv := range db.invs {
			var ch *sim.Chan
			if wait {
				ch = ack
				key := invAck{node: dest, page: iv.page}
				if _, dup := outstanding[key]; !dup {
					acks++
				}
				outstanding[key] = iv.newOwner
			}
			d.sendInvalidate(b.node, dest, &invMsg{page: iv.page, from: b.node, newOwner: iv.newOwner, ack: ch})
		}
		if len(db.diffs) > 0 {
			diffFlights = append(diffFlights, d.startDiffs(t, dest, db.diffs, false, wait))
		}
	}
	if !wait {
		return
	}
	if d.recovery == nil {
		for i := 0; i < acks; i++ {
			ack.Recv(t.Proc())
			d.st(b.node).InvAcks++
		}
	} else {
		attempt := 0
		for len(outstanding) > 0 {
			v, ok := ack.RecvTimeout(t.Proc(), d.recovery.retryDelay(attempt))
			if ok {
				if a, isAck := v.(invAck); isAck {
					if _, pending := outstanding[a]; pending {
						delete(outstanding, a)
						d.st(b.node).InvAcks++
					}
				}
				continue
			}
			attempt++
			// Timed out: dead destinations need no acks; live ones get
			// their still-outstanding (idempotent) invalidations again.
			keys := make([]invAck, 0, len(outstanding))
			for k := range outstanding {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].node != keys[j].node {
					return keys[i].node < keys[j].node
				}
				return keys[i].page < keys[j].page
			})
			retried := false
			for _, k := range keys {
				if d.NodeDead(k.node) {
					delete(outstanding, k)
					continue
				}
				if !retried {
					d.recovery.stats.Retries++
					retried = true
				}
				d.sendInvalidate(b.node, k.node, &invMsg{page: k.page, from: b.node, newOwner: outstanding[k], ack: ack})
			}
		}
	}
	for _, f := range diffFlights {
		d.waitDiffs(t, f)
	}
}

// NoticesUsable reports whether a release at this synchronization point may
// defer invalidation to barrier write notices: batching must be on and the
// release must belong to an actual cluster-wide barrier arrival —
// participant count >= node count, under the SPMD convention every workload
// here follows (one barrier participant per node; a barrier whose
// participants cluster on fewer nodes must not rely on notices, since
// uncovered nodes would never apply them). A subset
// barrier's notices would never reach non-participant copy holders, and an
// explicit flush (FlushRelease, id < 0) has no arrival at all — its
// invalidations must complete inside the flush, or a crash between the
// flush-backed checkpoint and the node's next barrier arrival would strand
// the queued notices forever (restart wipes the node's state, the
// checkpoint skips the redo, and third-party copies stay stale for good).
func (d *DSM) NoticesUsable(barrier int) bool {
	if !d.batch || barrier < 0 || barrier >= len(d.barriers) {
		return false
	}
	return d.barriers[barrier].n >= d.rt.Nodes()
}

// QueueWriteNotice records that t's node committed writes to pg during the
// epoch ending at the given barrier; that barrier's arrival piggybacks the
// notice and its release distributes it to every participant. Queue only
// for barriers NoticesUsable approved.
func (d *DSM) QueueWriteNotice(t *pm2.Thread, barrier int, pg Page) {
	ns := d.state[t.Node()]
	if ns.notices == nil {
		ns.notices = make(map[int][]WriteNotice)
	}
	ns.notices[barrier] = append(ns.notices[barrier], WriteNotice{Page: pg, Writer: t.Node()})
	d.st(t.Node()).Notices++
}

// takeNotices drains the write notices a node queued for one barrier, in
// canonical order (page, then writer), deduplicated.
func (d *DSM) takeNotices(node, barrier int) []WriteNotice {
	ns := d.state[node]
	out := ns.notices[barrier]
	if len(out) == 0 {
		return nil
	}
	delete(ns.notices, barrier)
	return canonicalNotices(out)
}

// canonicalNotices sorts notices by (page, writer) and removes duplicates,
// so the aggregate a barrier distributes is independent of arrival order.
func canonicalNotices(ws []WriteNotice) []WriteNotice {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Page != ws[j].Page {
			return ws[i].Page < ws[j].Page
		}
		return ws[i].Writer < ws[j].Writer
	})
	out := ws[:0]
	for i, w := range ws {
		if i > 0 && w == ws[i-1] {
			continue
		}
		out = append(out, w)
	}
	return out
}

// applyNotices runs on every barrier participant after the barrier
// completed: notices arrive in canonical order, grouped by page here, and
// each group is applied locally (no messages — this is the whole point).
func (d *DSM) applyNotices(t *pm2.Thread, notices []WriteNotice) {
	for i := 0; i < len(notices); {
		j := i
		for j < len(notices) && notices[j].Page == notices[i].Page {
			j++
		}
		d.applyNotice(t, notices[i].Page, notices[i:j])
		i = j
	}
}

// applyNotice applies one page's write notices on t's node:
//
//   - at the page's home, nothing changes: the reference copy is already
//     current, and the copyset deliberately stays as-is. It only ever
//     needs to be a SUPERSET of the actual holders — members that drop
//     their copies at this barrier just become harmless stale entries a
//     later (idempotent) invalidation or notice covers. Pruning here would
//     race with readers that received their grant earlier, refetched, and
//     re-joined the copyset: removing such a reader would strand its live
//     copy outside every future invalidation.
//   - elsewhere, a sole local writer keeps its copy (it is the freshest
//     replica and the home has its diffs); any other node runs the
//     protocol's own InvalidateServer, exactly as an arriving eager
//     invalidation would — so a concurrently dirty twin (another local
//     thread writing inside a critical section) is flushed home, not
//     silently discarded — with InvalSeq bumped first so an install still
//     in flight is retired too.
func (d *DSM) applyNotice(t *pm2.Thread, pg Page, ws []WriteNotice) {
	node := t.Node()
	e := d.Entry(node, pg)
	e.Lock(t)
	if e.Home == node {
		e.Unlock(t)
		return
	}
	if len(ws) == 1 && ws[0].Writer == node {
		e.Unlock(t)
		return
	}
	e.InvalSeq++
	e.Unlock(t)
	d.instance(e.proto).InvalidateServer(&Invalidate{
		DSM: d, Thread: t, Node: node, Page: pg,
		From: ws[0].Writer, NewOwner: -1,
	})
}
