package core

import (
	"fmt"
	"sort"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// This file is the DSM protocol library layer (Figure 1): thread-safe
// routines to perform the elementary actions protocols are composed of —
// bringing a copy of a remote page to a thread, migrating a thread to remote
// data, invalidating the copies of a page, serving pages, and the twin/diff
// machinery. Protocols at the policy layer combine these; "most (if not
// all!) subtle synchronization problems are already addressed by the core
// routines".

// FetchPage brings a copy of f.Page to the faulting node with at least the
// requested access, blocking f.Thread until the page is installed. If
// several threads on the node fault on the same page concurrently, only one
// request is sent and the rest wait on the entry (thread-level coalescing).
//
// On return the entry lock is held and handed to the core's retry path via
// f.KeepEntryLocked, so the faulting access completes before competing
// servers can take the page away. FetchPage does not guarantee the retried
// access succeeds (an in-flight fetch may have granted a weaker right than
// this fault needs); the core then faults again.
func FetchPage(f *Fault, write bool) {
	d, t, e := f.DSM, f.Thread, f.Entry
	space := d.state[f.Node].space
	e.Lock(t)
	for {
		if space.AccessOf(f.Page).Allows(write) {
			f.KeepEntryLocked()
			return // another thread already brought the page
		}
		if e.Pending {
			e.Wait(t) // coalesce with the fetch in flight
			continue
		}
		break
	}
	e.Pending = true
	e.pendingSeq = e.InvalSeq
	e.reqSeq++
	seq := e.reqSeq
	dest := e.ProbOwner
	e.Unlock(t)

	d.profFetch(f.Node, f.Page, dest)
	d.sendRequest(f.Node, dest, &reqMsg{
		page:   f.Page,
		from:   f.Node,
		write:  write,
		seq:    seq,
		timing: f.Timing,
	})

	e.Lock(t)
	if d.recovery == nil {
		for e.Pending {
			e.Wait(t)
		}
		f.KeepEntryLocked()
		return
	}
	// Recovery mode: bound each wait, and when the fetch we own is still
	// outstanding after a timeout, retry toward the current probable owner —
	// if the server died, the recovery sweep has redirected the hint to the
	// page's new home, and the bumped sequence number retires any late
	// response to the original request.
	attempt := 0
	for e.Pending {
		if e.WaitTimeout(t, d.recovery.retryDelay(attempt)) {
			continue
		}
		if !e.Pending || e.reqSeq != seq {
			continue // another thread's fetch owns the entry now
		}
		attempt++
		e.reqSeq++
		seq = e.reqSeq
		e.pendingSeq = e.InvalSeq
		dest = e.ProbOwner
		e.Unlock(t)
		d.recovery.stats.Retries++
		d.profFetch(f.Node, f.Page, dest)
		d.sendRequest(f.Node, dest, &reqMsg{
			page:   f.Page,
			from:   f.Node,
			write:  write,
			seq:    seq,
			timing: f.Timing,
		})
		e.Lock(t)
	}
	f.KeepEntryLocked()
}

// ServeWhenOwner blocks a server thread until this node owns r.Page,
// following in-flight ownership transfers. It returns with the entry lock
// held and true if the node is the owner; if the node is not the owner and
// no transfer is pending, it returns false with the lock held and the caller
// should forward the request along the probable-owner chain.
func ServeWhenOwner(r *Request) (e *Entry, owner bool) {
	d, t := r.DSM, r.Thread
	e = d.Entry(r.Node, r.Page)
	e.Lock(t)
	for !e.Owner && e.Pending {
		e.Wait(t)
	}
	return e, e.Owner
}

// ForwardRequest re-sends the request along the probable-owner chain
// (dynamic distributed manager). Call with the entry lock held; it is
// released before sending.
func ForwardRequest(r *Request, e *Entry) {
	dest := e.ProbOwner
	e.Unlock(r.Thread)
	ForwardRequestTo(r, dest)
}

// ForwardRequestTo re-sends the request to an explicit destination (managed
// schemes: the manager relays to the recorded owner). The entry lock must
// already be released.
func ForwardRequestTo(r *Request, dest int) {
	r.DSM.sendRequest(r.Node, dest, &reqMsg{
		page:   r.Page,
		from:   r.From,
		write:  r.Write,
		timing: r.Timing,
	})
}

// SendPage ships this node's copy of pg to dest, granting the given access.
// If ownship is true, page ownership (and the copyset) transfer with the
// page. Charges the owner-side request-processing cost on this node's CPU.
// Call with the entry lock held.
func SendPage(r *Request, e *Entry, dest int, access memory.Access, ownship bool, copyset NodeSet) {
	d, t := r.DSM, r.Thread
	t.Compute(d.costs.Server)
	if r.Timing != nil {
		r.Timing.Server = d.costs.Server
	}
	frame := d.state[r.Node].space.Frame(e.Page)
	if frame == nil {
		panic(fmt.Sprintf("core: SendPage on node %d without a copy of page %d (request from %d)",
			r.Node, e.Page, r.From))
	}
	// The wire copy is pooled; InstallPage returns it once installed.
	data := d.buf(r.Node).Get()
	copy(data, frame.Data)
	owner := r.Node
	if ownship {
		owner = dest
	}
	d.sendPage(r.Node, dest, &pageMsg{
		page:    e.Page,
		from:    r.Node,
		data:    data,
		access:  access,
		owner:   owner,
		ownship: ownship,
		copyset: copyset.AppendTo(nil),
		seq:     r.Seq,
		timing:  r.Timing,
	})
}

// InstallPage copies an arriving page into the local frame, sets the granted
// access right, updates ownership hints, completes the pending fetch and
// wakes the waiting threads. Charges the requester-side installation cost.
// This is the standard body of a ReceivePageServer hook.
func InstallPage(pm *PageMsg) {
	d, t := pm.DSM, pm.Thread
	e := d.Entry(pm.Node, pm.Page)
	e.Lock(t)
	t.Compute(d.costs.Install)
	if pm.Timing != nil {
		pm.Timing.Install = d.costs.Install
	}
	if d.recovery != nil && (!e.Pending || (!pm.Ownship && pm.Seq != e.reqSeq)) {
		// A late response to a request that was since retried (or already
		// satisfied): its data may predate writes the current owner has
		// accepted. Discard it; the outstanding fetch, if any, stays
		// pending and its own response will complete it.
		d.buf(pm.Node).Put(pm.Data)
		pm.Data = nil
		e.Unlock(t)
		return
	}
	if !pm.Ownship && e.InvalSeq != e.pendingSeq {
		// An invalidation overtook this copy in flight: the data is
		// stale and the home/owner no longer counts us as a holder.
		// Drop it and let the faulting threads refault and refetch.
		// Ownership transfers are exempt: the previous owner serialized
		// the granting write after any invalidation it sent us.
		d.buf(pm.Node).Put(pm.Data)
		pm.Data = nil
		e.Pending = false
		e.Broadcast()
		e.Unlock(t)
		return
	}
	space := d.state[pm.Node].space
	frame := space.Ensure(pm.Page)
	copy(frame.Data, pm.Data)
	d.buf(pm.Node).Put(pm.Data) // wire copy was pooled by SendPage; recycle it
	pm.Data = nil
	frame.Access = pm.Access
	e.ProbOwner = pm.Owner
	if pm.Ownship {
		e.Owner = true
		// The wire form stays a plain []int (sorted when it comes from
		// TakeCopyset, arbitrary from custom protocols); FromSlice sorts
		// and deduplicates while rebuilding the interval set.
		e.Copyset.FromSlice(pm.Copyset)
	}
	e.Pending = false
	e.Broadcast()
	e.Unlock(t)
}

// InvalidateCopies sends invalidations for pg to every node in copyset
// except self and newOwner, and blocks until all of them acknowledge.
// The entry lock must NOT be held: invalidated nodes may need it.
//
// With recovery enabled, dead holders are skipped, outstanding acks are
// tracked per node, and a timeout re-checks for crashes and re-sends to the
// remaining holders (invalidations are idempotent), so a holder dying
// mid-invalidation cannot wedge the writer forever.
func InvalidateCopies(d *DSM, t *pm2.Thread, pg Page, copyset NodeSet, newOwner int) {
	if d.recovery == nil {
		acks := 0
		ack := new(sim.Chan)
		copyset.ForEach(func(n int) {
			if n == t.Node() || n == newOwner {
				return
			}
			d.sendInvalidate(t.Node(), n, &invMsg{page: pg, from: t.Node(), newOwner: newOwner, ack: ack})
			acks++
		})
		for i := 0; i < acks; i++ {
			ack.Recv(t.Proc())
			d.st(t.Node()).InvAcks++
		}
		return
	}
	ack := new(sim.Chan)
	outstanding := make(map[int]bool)
	copyset.ForEach(func(n int) {
		if n == t.Node() || n == newOwner || d.NodeDead(n) {
			return
		}
		d.sendInvalidate(t.Node(), n, &invMsg{page: pg, from: t.Node(), newOwner: newOwner, ack: ack})
		outstanding[n] = true
	})
	attempt := 0
	for len(outstanding) > 0 {
		v, ok := ack.RecvTimeout(t.Proc(), d.recovery.retryDelay(attempt))
		if ok {
			if a, isAck := v.(invAck); isAck && outstanding[a.node] {
				delete(outstanding, a.node)
				d.st(t.Node()).InvAcks++
			}
			continue
		}
		attempt++
		remaining := make([]int, 0, len(outstanding))
		for n := range outstanding {
			remaining = append(remaining, n)
		}
		sort.Ints(remaining)
		for _, n := range remaining {
			if d.NodeDead(n) {
				delete(outstanding, n)
				continue
			}
			d.recovery.stats.Retries++
			d.sendInvalidate(t.Node(), n, &invMsg{page: pg, from: t.Node(), newOwner: newOwner, ack: ack})
		}
	}
}

// InvalidateCopiesBatched is InvalidateCopies through the outbox: the
// per-holder invalidations queue into one Batch and flush as one envelope
// per destination (with batching disabled it reproduces InvalidateCopies'
// wire pattern). Blocks until every holder acknowledged. Protocols that
// invalidate several pages in one release get more out of queueing into a
// shared Batch directly — this is the single-page convenience.
func InvalidateCopiesBatched(d *DSM, t *pm2.Thread, pg Page, copyset NodeSet, newOwner int) {
	b := d.NewBatch(t)
	copyset.ForEach(func(n int) {
		if n != newOwner { // Batch.Invalidate already skips self
			b.Invalidate(n, pg, newOwner)
		}
	})
	b.Flush(true)
}

// SendDiffsBatched ships every destination's diff list through the outbox
// and, when wait is true, blocks until all destinations applied them — every
// envelope departs before the first reply is awaited, so flushes to distinct
// homes overlap instead of serializing. noticed defers the homes' eager
// invalidations to the senders' barrier write notices (home-based protocols
// only).
func SendDiffsBatched(d *DSM, t *pm2.Thread, byDest map[int][]*memory.Diff, noticed, wait bool) {
	b := d.NewBatch(t)
	for dest, diffs := range byDest {
		for _, df := range diffs {
			b.Diff(dest, df, noticed)
		}
	}
	b.Flush(wait)
}

// DropCopy invalidates the local copy of pg: the frame is discarded, rights
// revert to no-access, and the probable owner is redirected at hint (if
// >= 0). This is the standard body of an InvalidateServer hook.
func DropCopy(iv *Invalidate) {
	d, t := iv.DSM, iv.Thread
	e := d.Entry(iv.Node, iv.Page)
	e.Lock(t)
	d.state[iv.Node].space.Drop(iv.Page)
	e.Owner = false
	if iv.NewOwner >= 0 {
		e.ProbOwner = iv.NewOwner
	}
	e.Unlock(t)
}

// MigrateToOwner implements the fault action of migration-based protocols:
// charge the (tiny) handler overhead, then migrate the faulting thread to
// the page's probable owner; the access is retried there. This is the whole
// fault handler of the migrate_thread protocol — "essentially a single
// function: the thread migration primitive provided by PM2".
func MigrateToOwner(f *Fault) {
	d, t := f.DSM, f.Thread
	t.Advance(d.costs.MigOverhead)
	if f.Timing != nil {
		f.Timing.Overhead = d.costs.MigOverhead
	}
	e := f.Entry
	e.Lock(t)
	dest := e.ProbOwner
	e.Unlock(t)
	src := t.Node()
	start := t.Now()
	t.MigrateTo(dest)
	if f.Timing != nil {
		f.Timing.Migration = t.Now().Sub(start)
	}
	d.CountMigration(src)
}

// twinData is the ProtoData payload used by multiple-writer protocols.
type twinData struct {
	twin  []byte
	dirty *memory.Diff // on-the-fly recorded diff (java protocols)
}

// EnsureTwin creates a twin (pristine copy) of the local page if none
// exists. Call with the entry lock held and a frame present.
func EnsureTwin(d *DSM, node int, e *Entry) {
	td, _ := e.ProtoData.(*twinData)
	if td == nil {
		td = &twinData{}
		e.ProtoData = td
	}
	if td.twin == nil {
		frame := d.state[node].space.Frame(e.Page)
		if frame == nil {
			panic("core: EnsureTwin without a local copy")
		}
		td.twin = d.buf(node).MakeTwin(frame.Data)
	}
}

// HasTwin reports whether the entry currently holds a twin.
func HasTwin(e *Entry) bool {
	td, _ := e.ProtoData.(*twinData)
	return td != nil && td.twin != nil
}

// TwinDiff computes the diff of the local page against its twin and discards
// the twin. Returns nil if there is no twin or no modification. Call with
// the entry lock held.
func TwinDiff(d *DSM, node int, e *Entry) *memory.Diff {
	td, _ := e.ProtoData.(*twinData)
	if td == nil || td.twin == nil {
		return nil
	}
	frame := d.state[node].space.Frame(e.Page)
	if frame == nil {
		d.buf(node).Put(td.twin)
		td.twin = nil
		return nil
	}
	diff := memory.ComputeDiff(e.Page, td.twin, frame.Data, d.costs.DiffGap)
	d.buf(node).Put(td.twin) // twin came from the pool; recycle it
	td.twin = nil
	if diff.Empty() {
		return nil
	}
	return diff
}

// RecordPut appends an on-the-fly diff entry for a write of buf at addr
// (field-granularity recording through the put primitive). Call with the
// entry lock held.
func RecordPut(d *DSM, e *Entry, addr Addr, buf []byte) {
	td, _ := e.ProtoData.(*twinData)
	if td == nil {
		td = &twinData{}
		e.ProtoData = td
	}
	if td.dirty == nil {
		td.dirty = &memory.Diff{Page: e.Page}
	}
	off := int(uint64(addr) % uint64(PageSize))
	td.dirty.MergeRecorded(off, buf)
}

// TakeRecorded removes and returns the on-the-fly recorded diff, or nil.
// Call with the entry lock held.
func TakeRecorded(e *Entry) *memory.Diff {
	td, _ := e.ProtoData.(*twinData)
	if td == nil || td.dirty == nil {
		return nil
	}
	diff := td.dirty
	td.dirty = nil
	if diff.Empty() {
		return nil
	}
	return diff
}

// SendDiffsHome ships diffs to dest and blocks until applied when wait is
// true (lock-release semantics require the home to have the modifications
// before the release completes).
func SendDiffsHome(d *DSM, t *pm2.Thread, dest int, diffs []*memory.Diff, wait bool) {
	if len(diffs) == 0 {
		return
	}
	for _, df := range diffs {
		d.profDiff(t.Node(), df.Page)
	}
	d.sendDiffs(t, dest, diffs, wait)
}

// Classification returns pg's sharing class and dominant writer from the
// profiler's last completed epoch (ClassIdle, -1 when the profiler is off or
// no epoch has closed). This is the toolbox hook protocols consume to pick a
// mechanism per page — the adaptive protocol switches between page fetching
// and thread migration on it, and every toolbox-composed protocol inherits
// the classifier-driven home placement for free, because FetchPage, the diff
// paths and the outbox feed the counters the classifier folds.
func Classification(d *DSM, pg Page) (PageClass, int) {
	return d.PageClassOf(pg)
}

// ApplyDiffs patches the local copies with arriving diffs; the standard body
// of a home node's DiffServer.
func ApplyDiffs(dm *DiffMsg) {
	d, t := dm.DSM, dm.Thread
	for _, df := range dm.Diffs {
		e := d.Entry(dm.Node, df.Page)
		e.Lock(t)
		frame := d.state[dm.Node].space.Frame(df.Page)
		if frame != nil {
			memory.ApplyDiff(frame.Data, df)
		}
		e.Unlock(t)
	}
}
