package core

import (
	"fmt"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

func newShardedDSM(nodes, shards int) *DSM {
	rt := pm2.NewRuntime(pm2.Config{
		Nodes: nodes, Network: madeleine.BIPMyrinet, Seed: 1, Shards: shards,
	})
	return New(rt, NewRegistry(), DefaultCosts())
}

func TestBarTreeShape(t *testing.T) {
	d := newShardedDSM(16, 4)
	if d.tree == nil {
		t.Fatal("sharded DSM built no combining tree")
	}
	wantLeaders := []int{0, 4, 8, 12}
	for s, want := range wantLeaders {
		if got := d.tree.leaders[s]; got != want {
			t.Errorf("leader[%d] = %d, want %d", s, got, want)
		}
	}
	if d.tree.parent[0] != -1 {
		t.Errorf("root parent = %d, want -1", d.tree.parent[0])
	}
	for s := 1; s < 4; s++ {
		if d.tree.parent[s] != 0 {
			t.Errorf("parent[%d] = %d, want 0", s, d.tree.parent[s])
		}
	}
	if got, want := fmt.Sprint(d.tree.children[0]), "[1 2 3]"; got != want {
		t.Errorf("children[0] = %s, want %s", got, want)
	}
	for n := 0; n < 16; n++ {
		if got, want := d.tree.leaderOf[n], (n/4)*4; got != want {
			t.Errorf("leaderOf[%d] = %d, want %d", n, got, want)
		}
	}
	// Deeper tree: with 8 shards, shards 1-4 hang off the root and 5-7 off
	// shard 1 (fan-in 4 over shard indices).
	d8 := newShardedDSM(16, 8)
	if got, want := fmt.Sprint(d8.tree.children[0]), "[1 2 3 4]"; got != want {
		t.Errorf("8-shard children[0] = %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(d8.tree.children[1]), "[5 6 7]"; got != want {
		t.Errorf("8-shard children[1] = %s, want %s", got, want)
	}
	// Single-loop machines build no tree and stay on the flat barrier.
	if newDSM(4).tree != nil {
		t.Error("single-loop DSM built a combining tree")
	}
}

// TestTreeBarrierShuffledArrivals drives a cluster-wide barrier through
// several generations under different arrival orders: each permutation skews
// every node's pre-arrival delay differently, so arrivals hit leaders — and
// leader batches hit the root — in a different sequence each time. Whatever
// the order, every generation must complete exactly once, every node must
// observe every other node's pre-barrier write afterwards (the memory
// semantics the barrier exists for), and no combining residue may remain.
func TestTreeBarrierShuffledArrivals(t *testing.T) {
	const nodes, gens = 8, 5
	for perm := 0; perm < 4; perm++ {
		d := newShardedDSM(nodes, 4)
		rt := d.Runtime()
		id := d.NewBarrier(nodes)
		if !d.useTree(d.barriers[id]) {
			t.Fatal("cluster-wide barrier on a sharded machine did not route through the tree")
		}
		counts := make([]int, nodes)
		errs := make([]error, nodes)
		for n := 0; n < nodes; n++ {
			n := n
			// Skew arrival order: node n waits ((n*7+perm*3) mod nodes)
			// microseconds longer each generation, a different total order
			// per permutation.
			skew := sim.Duration((n*7+perm*3)%nodes) * sim.Microsecond
			rt.CreateThread(n, fmt.Sprintf("w%d", n), func(th *pm2.Thread) {
				for g := 0; g < gens; g++ {
					th.Advance(skew)
					counts[n]++
					d.Barrier(th, id)
					for j := 0; j < nodes; j++ {
						if counts[j] != g+1 {
							errs[n] = fmt.Errorf("gen %d: node %d saw counts[%d]=%d, want %d",
								g, n, j, counts[j], g+1)
							return
						}
					}
					// Second barrier: nobody starts generation g+1's writes
					// until everyone finished reading generation g's.
					d.Barrier(th, id)
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Fatalf("perm %d: %v", perm, err)
		}
		for n, err := range errs {
			if err != nil {
				t.Errorf("perm %d node %d: %v", perm, n, err)
			}
		}
		if got := d.BarrierGen(id); got != 2*gens {
			t.Errorf("perm %d: barrier generation %d, want %d", perm, got, 2*gens)
		}
		if got := d.Stats().Barriers; got != int64(2*nodes*gens) {
			t.Errorf("perm %d: Barriers stat %d, want %d", perm, got, 2*nodes*gens)
		}
		if err := d.TreeBarrierResidue(); err != nil {
			t.Errorf("perm %d: residue after quiesce: %v", perm, err)
		}
	}
}

// TestSubsetBarrierStaysFlatUnderSharding: a barrier with fewer participants
// than nodes cannot combine per cluster (completion depends on the arrival
// count alone), so it must keep the flat path — and still work across shards.
func TestSubsetBarrierStaysFlatUnderSharding(t *testing.T) {
	d := newShardedDSM(8, 4)
	rt := d.Runtime()
	id := d.NewBarrier(3)
	if d.useTree(d.barriers[id]) {
		t.Fatal("subset barrier routed through the tree")
	}
	done := make([]bool, 8)
	for _, n := range []int{0, 3, 7} { // one per distant shard
		n := n
		rt.CreateThread(n, fmt.Sprintf("s%d", n), func(th *pm2.Thread) {
			d.Barrier(th, id)
			done[n] = true
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 7} {
		if !done[n] {
			t.Fatalf("participant on node %d did not finish", n)
		}
	}
	if d.BarrierGen(id) != 1 {
		t.Fatalf("generation %d, want 1", d.BarrierGen(id))
	}
}
