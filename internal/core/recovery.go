package core

import (
	"fmt"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/sim"
)

// Recovery: the DSM-level half of the fault-injection subsystem. The
// network drops a dead node's traffic and the PM2 runtime kills its threads
// (see their fault.go files); this file repairs the distributed page-manager
// state those fail-stops tear holes in:
//
//   - pages homed or owned on the dead node are re-homed onto the freshest
//     surviving replica (owner copy first, then writable, then read-only),
//     or re-initialized to zero on a deterministic survivor when every copy
//     died (counted in RecoveryStats.Lost);
//   - every surviving page-table entry is scrubbed: the dead node leaves
//     all copysets, probable-owner hints through it are redirected to the
//     new home;
//   - lock and barrier manager state is cleansed: queued acquires from the
//     dead node are cancelled, a lock held by it is granted onward, and
//     barrier slots are left to the idempotent re-arrival protocol;
//   - in-flight protocol actions do not wait on the dead forever — the
//     fetch/invalidate/diff paths in protolib.go and comm.go bound their
//     waits with cfg.Timeout and retry against the repaired state.
//
// Everything is swept in deterministic order (sorted pages, node ids
// ascending), so a crash at a fixed virtual time replays bit-identically.

// RecoveryConfig parameterizes the recovery manager.
type RecoveryConfig struct {
	// Timeout bounds every blocking protocol wait (page fetch,
	// invalidation acks, diff replies); on expiry the action re-checks the
	// fault state and retries. Zero selects DefaultRecoveryTimeout.
	Timeout sim.Duration
	// Backoff scales the timeout exponentially across consecutive retries
	// of one protocol action: attempt k waits Timeout·Backoff^k. Values
	// <= 1 (including the zero value) keep the historical flat timeout.
	// Under loss-heavy plans backoff stops a storm of synchronized resends
	// from re-colliding with the very congestion that delayed them.
	Backoff float64
	// RetryMax caps the backed-off timeout. Zero means no cap.
	RetryMax sim.Duration
	// Jitter adds a deterministic pseudo-random delay in [0, Jitter) to
	// every bounded wait, drawn from a private PRNG seeded with JitterSeed,
	// de-synchronizing retries that would otherwise expire in lockstep.
	// Zero (the default) draws nothing, keeping existing traces
	// bit-identical.
	Jitter sim.Duration
	// JitterSeed seeds the jitter PRNG. Zero means 1.
	JitterSeed int64
	// OnRestart, if set, runs in engine context after a node's DSM state
	// has been rebuilt for its cold restart — the hook applications use to
	// respawn the node's workers. It must not block.
	OnRestart func(node int)
}

// DefaultRecoveryTimeout is the protocol-action retry timeout: comfortably
// above the slowest calibrated round trip (TCP/Fast Ethernet page fault,
// ~1ms), so fault-free traffic never retries spuriously.
const DefaultRecoveryTimeout = 5 * sim.Millisecond

// RecoveryStats counts the recovery manager's work.
type RecoveryStats struct {
	// Crashes and Restarts count node fault events applied to the DSM.
	Crashes  int
	Restarts int
	// ReHomed counts pages moved to a new home after their home or owner
	// died with a surviving replica.
	ReHomed int
	// Lost counts pages whose every copy died: their contents reset to
	// zero on the new home. Applications must either tolerate this or keep
	// recoverable data under a home-based protocol on protected nodes.
	Lost int
	// Retries counts protocol actions re-sent after a timeout or a crash.
	Retries int64
	// RedoneUnits counts application work units re-executed after restarts
	// because they were committed before the crash but after the restarted
	// node's resume point (applications report them via AddRedoneUnits).
	// Warm restarts resuming from a checkpoint redo strictly fewer units
	// than cold redo-from-scratch restarts.
	RedoneUnits int64
	// WarmRestarts counts restarts that resumed from a recorded checkpoint
	// (LastCheckpoint >= 0) instead of redoing from scratch.
	WarmRestarts int
}

// recoveryState is the DSM's recovery manager (nil when disabled).
type recoveryState struct {
	cfg   RecoveryConfig
	dead  []bool
	stats RecoveryStats
	// jitter is the retry-jitter PRNG: counted so checkpoints can record
	// and re-establish its position. nil when cfg.Jitter is zero.
	jitter *sim.CountedRand
	// ckpts records, per node, the last work unit the application committed
	// a local checkpoint for (-1 when none). OnRestart hooks read it back
	// through LastCheckpoint to warm-start instead of redoing the run.
	ckpts []int
}

// EnableRecovery switches the recovery manager on. Call it before Run; the
// fault plan's node events are then applied through CrashNode/RestartNode.
// The PM2 runtime's network fault layer must be enabled as well (the facade
// does both).
func (d *DSM) EnableRecovery(cfg RecoveryConfig) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRecoveryTimeout
	}
	rec := &recoveryState{
		cfg:   cfg,
		dead:  make([]bool, d.rt.Nodes()),
		ckpts: make([]int, d.rt.Nodes()),
	}
	for i := range rec.ckpts {
		rec.ckpts[i] = -1
	}
	if cfg.Jitter > 0 {
		seed := cfg.JitterSeed
		if seed == 0 {
			seed = 1
		}
		rec.jitter = sim.NewCountedRand(seed)
	}
	d.recovery = rec
}

// retryDelay returns the bounded wait for one protocol action's attempt-th
// expiry (attempt 0 is the first wait): the configured timeout scaled by
// Backoff^attempt, capped at RetryMax, plus one jitter draw. With the
// zero-value config extensions this is exactly cfg.Timeout, so existing
// traces replay bit-identically.
func (rec *recoveryState) retryDelay(attempt int) sim.Duration {
	d := rec.cfg.Timeout
	if rec.cfg.Backoff > 1 {
		f := float64(d)
		for i := 0; i < attempt; i++ {
			f *= rec.cfg.Backoff
			if rec.cfg.RetryMax > 0 && f >= float64(rec.cfg.RetryMax) {
				f = float64(rec.cfg.RetryMax)
				break
			}
		}
		d = sim.Duration(f)
	}
	if rec.cfg.RetryMax > 0 && d > rec.cfg.RetryMax {
		d = rec.cfg.RetryMax
	}
	if rec.jitter != nil {
		d += sim.Duration(rec.jitter.Int63n(int64(rec.cfg.Jitter)))
	}
	return d
}

// RecordCheckpoint notes that node committed a local checkpoint covering
// work units up to and including unit. Applications call it right after
// their flush-then-commit point; a later restart's OnRestart hook reads it
// back through LastCheckpoint. No-op when recovery is off.
func (d *DSM) RecordCheckpoint(node, unit int) {
	if d.recovery == nil || node < 0 || node >= len(d.recovery.ckpts) {
		return
	}
	if unit > d.recovery.ckpts[node] {
		d.recovery.ckpts[node] = unit
	}
}

// LastCheckpoint reports the last work unit node committed a checkpoint
// for, or -1 when none was recorded (or recovery is off).
func (d *DSM) LastCheckpoint(node int) int {
	if d.recovery == nil || node < 0 || node >= len(d.recovery.ckpts) {
		return -1
	}
	return d.recovery.ckpts[node]
}

// AddRedoneUnits accumulates application-reported redone work units into
// the recovery stats (see RecoveryStats.RedoneUnits).
func (d *DSM) AddRedoneUnits(n int) {
	if d.recovery != nil {
		d.recovery.stats.RedoneUnits += int64(n)
	}
}

// NoteWarmRestart counts a restart that resumed from a recorded checkpoint.
func (d *DSM) NoteWarmRestart() {
	if d.recovery != nil {
		d.recovery.stats.WarmRestarts++
	}
}

// RecoveryEnabled reports whether the recovery manager is on.
func (d *DSM) RecoveryEnabled() bool { return d.recovery != nil }

// RecoveryStats returns the recovery counters (zero value when disabled).
func (d *DSM) RecoveryStats() RecoveryStats {
	if d.recovery == nil {
		return RecoveryStats{}
	}
	return d.recovery.stats
}

// NodeDead reports whether node n is currently crashed.
func (d *DSM) NodeDead(n int) bool {
	return d.recovery != nil && n >= 0 && n < len(d.recovery.dead) && d.recovery.dead[n]
}

// mustRecovery panics when recovery is off.
func (d *DSM) mustRecovery(op string) *recoveryState {
	if d.recovery == nil {
		panic("core: " + op + " before EnableRecovery")
	}
	return d.recovery
}

// CrashNode fail-stops node n and repairs the distributed state around the
// hole. It must run in engine context (a scheduled fault event).
func (d *DSM) CrashNode(n int) {
	rec := d.mustRecovery("CrashNode")
	if n < 0 || n >= len(rec.dead) {
		panic(fmt.Sprintf("core: crash of node %d out of range", n))
	}
	if rec.dead[n] {
		return
	}
	rec.dead[n] = true
	rec.stats.Crashes++
	d.rt.KillNode(n)
	d.rehomePages(n)
	d.scrubLocks(n)
	d.eachInstance(func(p Protocol) {
		if r, ok := p.(Recoverable); ok {
			r.OnNodeCrash(n)
		}
	})
}

// RestartNode brings node n back cold: fresh DSM node state (no frames, no
// entries — everything refetched on demand), fresh RPC dispatchers, then the
// application's OnRestart hook. Must run in engine context.
func (d *DSM) RestartNode(n int) {
	rec := d.mustRecovery("RestartNode")
	if n < 0 || n >= len(rec.dead) {
		panic(fmt.Sprintf("core: restart of node %d out of range", n))
	}
	if !rec.dead[n] {
		return
	}
	rec.dead[n] = false
	rec.stats.Restarts++
	// Cold memory: the node starts with no frames and no page-table
	// entries; both rebuild on demand from the (repaired) allocation
	// metadata. The old state — including entry mutexes whose waiters all
	// died — is simply dropped.
	d.state[n] = &nodeState{
		node:  n,
		space: memory.NewSpace(PageSize),
		table: make(map[Page]*Entry),
	}
	d.rt.RestartNode(n)
	d.eachInstance(func(p Protocol) {
		if r, ok := p.(Recoverable); ok {
			r.OnNodeRestart(n)
		}
	})
	if rec.cfg.OnRestart != nil {
		rec.cfg.OnRestart(n)
	}
}

// sortedPages returns every allocated page in ascending order: the
// deterministic sweep order of the recovery passes.
func (d *DSM) sortedPages() []Page { return d.dir.sortedPages() }

// rehomePages repairs the page manager after node n died: pages homed or
// owned there move to the freshest surviving replica, and every surviving
// entry drops n from its copyset and stops routing requests through it.
func (d *DSM) rehomePages(n int) {
	rec := d.recovery
	deadState := d.state[n]
	for _, pg := range d.sortedPages() {
		pi, _ := d.dir.get(pg)
		deadEntry := deadState.table[pg]
		ownerDied := deadEntry != nil && deadEntry.Owner
		homeDied := pi.home == n
		if !ownerDied && !homeDied {
			// The dead node was at most a reader: scrub it out.
			d.scrubEntries(pg, n, pi.home)
			continue
		}
		// Pick the freshest surviving replica: the owner's copy if one
		// survives, else a writable copy, else a read-only one; ties go to
		// the lowest node id. No survivor means the page contents are lost.
		best, bestRank := -1, -1
		for i := 0; i < d.rt.Nodes(); i++ {
			if rec.dead[i] {
				continue
			}
			frame := d.state[i].space.Frame(pg)
			if frame == nil || frame.Access < memory.ReadOnly {
				continue
			}
			rank := int(frame.Access)
			if e, ok := d.state[i].table[pg]; ok && e.Owner {
				rank = 10
			}
			if rank > bestRank {
				best, bestRank = i, rank
			}
		}
		lost := best < 0
		if lost {
			for i := 0; i < d.rt.Nodes(); i++ {
				if !rec.dead[i] {
					best = i
					break
				}
			}
			if best < 0 {
				panic("core: recovery with every node dead")
			}
		}
		pi.home = best
		d.dir.set(pg, pi)
		e := d.Entry(best, pg)
		if lost {
			frame := d.state[best].space.Ensure(pg)
			for i := range frame.Data {
				frame.Data[i] = 0
			}
			frame.Access = memory.ReadOnly
			rec.stats.Lost++
		} else {
			rec.stats.ReHomed++
		}
		// The new home owns the page; its access right is whatever its
		// copy already had — a weaker right simply re-faults locally (the
		// owner serves itself over loopback), which keeps the repair
		// protocol-agnostic.
		e.Owner = true
		e.Home = best
		e.ProbOwner = best
		// Restore the protocol's home invariants on the promoted copy: a
		// promoted writable CACHED copy must not stay silently writable at
		// its new home — hbrc_mw/entry_mw detect home writes only through
		// the write-protection their InitPage installs, and without it a
		// re-homed page's later writes would never generate diffs, notices
		// or invalidations, leaving third-party copies stale forever.
		d.reinitHome(pg, best)
		e.Copyset.Clear()
		for i := 0; i < d.rt.Nodes(); i++ {
			if i == best || rec.dead[i] {
				continue
			}
			if frame := d.state[i].space.Frame(pg); frame != nil && frame.Access >= memory.ReadOnly {
				e.Copyset.Add(i) // ascending by construction
			}
		}
		d.scrubEntries(pg, n, best)
	}
}

// scrubEntries removes the dead node n from pg's surviving entries: out of
// copysets, hints through it redirected to target, home metadata updated.
func (d *DSM) scrubEntries(pg Page, n, target int) {
	pi, _ := d.dir.get(pg)
	home := pi.home
	for i := 0; i < d.rt.Nodes(); i++ {
		if i == n || d.recovery.dead[i] {
			continue
		}
		e, ok := d.state[i].table[pg]
		if !ok {
			continue
		}
		e.RemoveCopyset(n)
		if e.ProbOwner == n {
			e.ProbOwner = target
		}
		e.Home = home
		if e.Pending {
			// A fetch is in flight across the crash. Its response may have
			// left the dead node before the fail-stop and land after this
			// sweep — installing a copy the rebuilt copyset knows nothing
			// about, stale forever. Retire it: the bumped InvalSeq makes
			// InstallPage discard the late response, and the fetch retries
			// toward the repaired owner hint on its recovery timeout.
			e.InvalSeq++
		}
	}
}

// scrubLocks cleanses the lock managers of the dead node n: queued acquires
// from n are cancelled, and a lock held by n is granted onward so survivors
// do not block behind a corpse. Barriers need no scrub — their idempotent
// re-arrival protocol (BarrierAs) absorbs crashed participants.
func (d *DSM) scrubLocks(n int) {
	for _, ls := range d.locks {
		kept := ls.waiters[:0]
		for _, lw := range ls.waiters {
			if lw.from == n {
				lw.ch.Push(false) // cancel the stranded handler
				continue
			}
			kept = append(kept, lw)
		}
		ls.waiters = kept
		if ls.held && ls.holder == n {
			d.grantNext(ls)
		}
	}
}
