package core

import (
	"fmt"

	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// ProtoID identifies a registered protocol, as returned by
// dsm_create_protocol in the original API.
type ProtoID int

// Fault is the context handed to read/write fault handlers: the faulting
// thread, where it faulted, and the page-table entry on the faulting node.
type Fault struct {
	DSM    *DSM
	Thread *pm2.Thread
	Node   int // node the thread was on when it faulted
	Addr   Addr
	Page   Page
	Write  bool
	Entry  *Entry
	Timing *FaultTiming

	// entryLocked records that the fault handler returned while still
	// holding the entry lock, so the retried access completes before any
	// competing server can steal the page (anti-livelock handoff). Set by
	// KeepEntryLocked; consumed by the core's fault loop.
	entryLocked bool
}

// KeepEntryLocked tells the core that the handler returns with f.Entry's
// lock held; the core releases it immediately before retrying the faulting
// access. Because the faulting thread keeps the simulation token from
// handler return through the retried memory operation (nothing in between
// blocks), the retry is guaranteed to happen before any competing protocol
// server runs.
func (f *Fault) KeepEntryLocked() { f.entryLocked = true }

// Request is the context handed to read/write servers: a remote node asked
// this node for page access. Thread is the server thread processing the
// request on the receiving node.
type Request struct {
	DSM    *DSM
	Thread *pm2.Thread
	Node   int // node processing the request
	Page   Page
	From   int // requesting node
	Write  bool
	// Seq is the requester's fetch sequence number; SendPage echoes it so
	// retried fetches (recovery mode) can discard superseded responses.
	Seq    uint64
	Timing *FaultTiming
}

// Invalidate is the context handed to invalidation servers. Ack, if
// non-nil, must be signalled (via Done) once the invalidation has been
// applied; the toolbox wrapper does this automatically after the hook
// returns.
type Invalidate struct {
	DSM      *DSM
	Thread   *pm2.Thread
	Node     int
	Page     Page
	From     int // node that sent the invalidation
	NewOwner int // forwarding hint for dynamic managers
}

// PageMsg is the context handed to receive-page servers: a page copy has
// arrived. Access is the right granted with the copy, Owner the new
// probable owner, Copyset the transferred copyset (ownership moves).
type PageMsg struct {
	DSM     *DSM
	Thread  *pm2.Thread
	Node    int
	Page    Page
	From    int
	Data    []byte
	Access  memory.Access
	Owner   int
	Ownship bool // ownership transferred with the page
	Copyset []int
	Seq     uint64 // fetch sequence this page answers (see Request.Seq)
	Timing  *FaultTiming
}

// SyncEvent is the context handed to lock acquire/release hooks. For
// barrier events, Barrier is true and Lock is the barrier's id.
type SyncEvent struct {
	DSM     *DSM
	Thread  *pm2.Thread
	Node    int
	Lock    int
	Barrier bool
}

// Protocol is the policy layer's contract: the 8 actions of the paper's
// Table 1. The generic core invokes these automatically; a protocol
// implementation composes them from the toolbox routines in this package.
type Protocol interface {
	// Name returns the protocol's identifier, e.g. "li_hudak".
	Name() string

	// ReadFaultHandler is called on a read page fault.
	ReadFaultHandler(f *Fault)
	// WriteFaultHandler is called on a write page fault.
	WriteFaultHandler(f *Fault)
	// ReadServer is called on receiving a request for read access.
	ReadServer(r *Request)
	// WriteServer is called on receiving a request for write access.
	WriteServer(r *Request)
	// InvalidateServer is called on receiving a request for invalidation.
	InvalidateServer(iv *Invalidate)
	// ReceivePageServer is called on receiving a page.
	ReceivePageServer(pm *PageMsg)
	// LockAcquire is called after having acquired a lock.
	LockAcquire(s *SyncEvent)
	// LockRelease is called before releasing a lock.
	LockRelease(s *SyncEvent)
}

// PageInitializer is an optional extension interface: protocols that need
// non-default initial page state implement it and the core invokes it for
// every page at allocation time. hbrc_mw, for instance, write-protects pages
// on their home node so that home-side writes are detected and propagated at
// release like everyone else's.
type PageInitializer interface {
	InitPage(pg Page, home int)
}

// DiffServer is an optional extension interface for home-based protocols
// that receive diff messages (hbrc_mw, java_ic, java_pf). The core routes
// arriving diffs to it.
type DiffServer interface {
	DiffServer(dm *DiffMsg)
}

// Recoverable is an optional extension interface: protocols holding private
// per-node state (dirty-page maps, fault counters) implement it so the
// recovery manager can discard a crashed node's state. OnNodeCrash runs when
// the node fail-stops, OnNodeRestart after the core has rebuilt the node's
// page table for its cold restart.
type Recoverable interface {
	OnNodeCrash(node int)
	OnNodeRestart(node int)
}

// ObjectProtocol is an optional extension interface for protocols that
// implement the Hyperion-style get/put access primitives, bypassing page
// faults (Section 2.3: "DSM-PM2 thus provides a way to bypass the page fault
// detection and to directly activate the protocol actions").
type ObjectProtocol interface {
	Get(a *ObjAccess)
	Put(a *ObjAccess)
}

// DiffMsg is the context handed to DiffServer: a batch of page diffs
// arrived from a writer node. Reply, if non-nil, is signalled after the
// diffs are applied (the sender blocks on it for release semantics).
type DiffMsg struct {
	DSM    *DSM
	Thread *pm2.Thread
	Node   int
	From   int
	Diffs  []*memory.Diff
	// Noticed marks diffs whose invalidations are deferred to the writer's
	// barrier write notices: the home applies them but must not eagerly
	// invalidate third-party copies — those drop themselves when the
	// barrier distributes the notices (see outbox.go).
	Noticed bool
	reply   *sim.Chan
}

// ObjAccess is the context for object get/put primitives.
type ObjAccess struct {
	DSM    *DSM
	Thread *pm2.Thread
	Addr   Addr
	Buf    []byte // read destination or write source
	Write  bool
}

// Factory builds a protocol instance bound to a DSM. Each DSM gets fresh
// instances so protocol-private state never leaks across machines.
type Factory func(d *DSM) Protocol

// Registry maps protocol ids to factories: the policy layer's catalogue.
// Built-in protocols are pre-registered; users add theirs with Register,
// exactly like dsm_create_protocol.
type Registry struct {
	names     []string
	factories []Factory
	index     map[string]ProtoID // name -> id, kept in sync with names
}

// NewRegistry returns an empty protocol registry.
func NewRegistry() *Registry { return &Registry{index: make(map[string]ProtoID)} }

// Register adds a protocol under name and returns its id. Registering a
// duplicate name panics: protocol identifiers are global constants in the
// original API.
func (r *Registry) Register(name string, f Factory) ProtoID {
	if r.index == nil {
		r.index = make(map[string]ProtoID)
	}
	if _, dup := r.index[name]; dup {
		panic(fmt.Sprintf("core: protocol %q registered twice", name))
	}
	id := ProtoID(len(r.names))
	r.names = append(r.names, name)
	r.factories = append(r.factories, f)
	r.index[name] = id
	return id
}

// Lookup returns the id registered under name.
func (r *Registry) Lookup(name string) (ProtoID, bool) {
	id, ok := r.index[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// Name returns the name registered for id.
func (r *Registry) Name(id ProtoID) string {
	if int(id) < 0 || int(id) >= len(r.names) {
		return fmt.Sprintf("proto#%d", id)
	}
	return r.names[id]
}

// Names lists all registered protocol names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// RegistryName resolves a protocol id to its registered name.
func (d *DSM) RegistryName(id ProtoID) string { return d.registry.Name(id) }

// Registry exposes the DSM's protocol registry.
func (d *DSM) Registry() *Registry { return d.registry }

// Len reports the number of registered protocols.
func (r *Registry) Len() int { return len(r.names) }

func (r *Registry) newInstance(id ProtoID, d *DSM) Protocol {
	if int(id) < 0 || int(id) >= len(r.factories) {
		panic(fmt.Sprintf("core: unknown protocol id %d", id))
	}
	return r.factories[id](d)
}

// Hooks assembles a protocol from 8 free functions, for users who build new
// protocols ad hoc rather than defining a type (the dsm_create_protocol
// style shown in Section 2.3). Nil hooks are no-ops.
type Hooks struct {
	ProtoName     string
	OnReadFault   func(*Fault)
	OnWriteFault  func(*Fault)
	OnReadServer  func(*Request)
	OnWriteServer func(*Request)
	OnInvalidate  func(*Invalidate)
	OnReceivePage func(*PageMsg)
	OnLockAcquire func(*SyncEvent)
	OnLockRelease func(*SyncEvent)

	// OnDiffServer extends the 8 actions for hook-built home-based
	// protocols that receive diffs. Leaving it nil while sending diffs to
	// pages of this protocol is a protocol bug and panics.
	OnDiffServer func(*DiffMsg)
}

// Name implements Protocol.
func (h *Hooks) Name() string { return h.ProtoName }

// ReadFaultHandler implements Protocol.
func (h *Hooks) ReadFaultHandler(f *Fault) {
	if h.OnReadFault != nil {
		h.OnReadFault(f)
	}
}

// WriteFaultHandler implements Protocol.
func (h *Hooks) WriteFaultHandler(f *Fault) {
	if h.OnWriteFault != nil {
		h.OnWriteFault(f)
	}
}

// ReadServer implements Protocol.
func (h *Hooks) ReadServer(r *Request) {
	if h.OnReadServer != nil {
		h.OnReadServer(r)
	}
}

// WriteServer implements Protocol.
func (h *Hooks) WriteServer(r *Request) {
	if h.OnWriteServer != nil {
		h.OnWriteServer(r)
	}
}

// InvalidateServer implements Protocol.
func (h *Hooks) InvalidateServer(iv *Invalidate) {
	if h.OnInvalidate != nil {
		h.OnInvalidate(iv)
	}
}

// ReceivePageServer implements Protocol.
func (h *Hooks) ReceivePageServer(pm *PageMsg) {
	if h.OnReceivePage != nil {
		h.OnReceivePage(pm)
	}
}

// LockAcquire implements Protocol.
func (h *Hooks) LockAcquire(s *SyncEvent) {
	if h.OnLockAcquire != nil {
		h.OnLockAcquire(s)
	}
}

// LockRelease implements Protocol.
func (h *Hooks) LockRelease(s *SyncEvent) {
	if h.OnLockRelease != nil {
		h.OnLockRelease(s)
	}
}

// DiffServer implements the optional DiffServer extension.
func (h *Hooks) DiffServer(dm *DiffMsg) {
	if h.OnDiffServer == nil {
		panic(fmt.Sprintf("core: protocol %q received diffs but defines no OnDiffServer", h.ProtoName))
	}
	h.OnDiffServer(dm)
}

// CreateProtocol registers a hook-built protocol on the DSM's registry and
// returns its id, mirroring dsm_create_protocol. The protocol can then be
// set as default or attached to allocations like any built-in.
func (d *DSM) CreateProtocol(h *Hooks) ProtoID {
	return d.registry.Register(h.ProtoName, func(*DSM) Protocol { return h })
}
