package core

import (
	"fmt"

	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// Combining-tree barriers for sharded machines. The flat barrier of sync.go
// funnels every arrival to one manager node: N blocking RPCs converge on node
// 0, and on a hierarchical network most of them cross the backbone. When the
// event loop is sharded (one loop per topology cluster, see pm2.Runtime),
// arrivals instead combine hierarchically: every node reports to its
// cluster's leader, leaders fold batches of arrivals upward through a
// fan-in-barFanIn tree of clusters, and the root — node 0, the same node that
// manages the flat barrier — releases the generation by relaying the grant
// back down the tree. The backbone then carries O(log S) envelopes per
// generation (S = shard count) instead of O(N), while intra-cluster arrivals
// stay on intra-cluster links.
//
// Determinism. All state of a leader lives on that leader's node, so the
// shard's event loop host-serializes every update; the fold at each level is
// order-insensitive (a count, a NodeSet union, and a notice multiset that the
// root canonicalizes exactly as the flat barrier does); and the root replays
// the flat barrier's completion logic verbatim. Whatever order the host
// interleaves shards in, the generation completes with the same canonical
// grant, so the tree barrier is bit-compatible with the flat one at the level
// of observable DSM state.
//
// The tree is used only when crash recovery is off: participant takeover and
// stale-generation re-arrival are crash-recovery machinery, and recovery's
// death bookkeeping is itself centralized. BarrierAs routes per barrier — see
// useTree.

// barFanIn is the combining-tree fan-in: each interior leader folds arrivals
// from up to barFanIn child clusters plus its own.
const barFanIn = 4

const (
	svcBarArrive  = "dsm.barrier.arrive"
	svcBarCombine = "dsm.barrier.combine"
	svcBarGrant   = "dsm.barrier.grant"
)

// barTree is the static shape of the combining tree, built once at New when
// the runtime is sharded: one leader per event-loop shard (its lowest node
// id), linked parent(i) = (i-1)/barFanIn over shard indices. The root leader
// is shard 0's, which is node 0 — the flat barrier's manager — so barrier
// state (generation counters, profiler epochs) lives on the same node either
// way.
type barTree struct {
	leaders  []int   // shard index -> leader node id
	leaderOf []int   // node id -> its cluster's leader node id
	parent   []int   // shard index -> parent shard index, -1 at the root
	children [][]int // shard index -> child shard indices, ascending
}

// newBarTree derives the tree from the runtime's node->shard map.
func newBarTree(rt *pm2.Runtime) *barTree {
	shards := rt.Shards()
	t := &barTree{
		leaders:  make([]int, shards),
		leaderOf: make([]int, rt.Nodes()),
		parent:   make([]int, shards),
		children: make([][]int, shards),
	}
	for s := range t.leaders {
		t.leaders[s] = -1
	}
	for n := 0; n < rt.Nodes(); n++ {
		s := rt.ShardOf(n)
		if t.leaders[s] < 0 || n < t.leaders[s] {
			t.leaders[s] = n
		}
	}
	for n := 0; n < rt.Nodes(); n++ {
		t.leaderOf[n] = t.leaders[rt.ShardOf(n)]
	}
	for s := 0; s < shards; s++ {
		if s == 0 {
			t.parent[s] = -1
			continue
		}
		p := (s - 1) / barFanIn
		t.parent[s] = p
		t.children[p] = append(t.children[p], s)
	}
	return t
}

// treeBarLocal is one leader's accumulator for one barrier. pending counts
// the arrivals folded locally (own cluster members plus whole child batches)
// but not yet reported upward; nodes and notices ride the next upward batch.
// inFlight marks that some handler thread is currently acting as the carrier,
// draining pending to the parent; waiters are the grant channels of every
// member arrival parked at this leader for the current generation.
type treeBarLocal struct {
	pending  int
	nodes    NodeSet
	notices  []WriteNotice
	inFlight bool
	waiters  []*sim.Chan
}

// treeArriveMsg is a member's arrival at its cluster leader.
type treeArriveMsg struct {
	id      int
	from    int
	notices []WriteNotice
}

// treeCombineMsg is a child leader's batch reported to its parent. The
// NodeSet is passed by value: the sender Take()s its accumulator, so the
// receiver owns the runs outright.
type treeCombineMsg struct {
	id      int
	count   int
	nodes   NodeSet
	notices []WriteNotice
}

// treeGrantMsg relays a completed generation's grant down the tree.
type treeGrantMsg struct {
	id    int
	grant *barrierGrant
}

// useTree reports whether barrier bs routes through the combining tree. The
// gate is per barrier but constant over a run, so every arrival of a given
// barrier takes the same path: the machine must be sharded, crash recovery
// must be off (takeover and death bookkeeping are flat-barrier machinery),
// and the barrier must be cluster-wide — subset barriers stay flat, where the
// arrival count alone decides completion.
func (d *DSM) useTree(bs *barrierState) bool {
	return d.tree != nil && d.recovery == nil && bs.n >= d.rt.Nodes()
}

// treebar returns (creating on first use) leader's accumulator for barrier
// id. Only ever called from handlers running on leader's node, so the shard's
// event loop serializes access.
func (d *DSM) treebar(leader, id int) *treeBarLocal {
	ns := d.state[leader]
	if ns.treebar == nil {
		ns.treebar = make(map[int]*treeBarLocal)
	}
	tb := ns.treebar[id]
	if tb == nil {
		tb = &treeBarLocal{}
		ns.treebar[id] = tb
	}
	return tb
}

// registerTreeBarServices installs the tree-barrier services on node (a
// no-op role-wise on non-leader nodes; registration is uniform so the service
// table does not depend on the shard map).
func (d *DSM) registerTreeBarServices(node *pm2.Node) {
	node.Register(svcBarArrive, true, func(h *pm2.Thread, arg interface{}) interface{} {
		m := arg.(*treeArriveMsg)
		leader := h.Node()
		if d.tree.leaders[d.rt.ShardOf(leader)] != leader {
			panic(fmt.Sprintf("core: tree-barrier arrival at non-leader node %d", leader))
		}
		if leader == d.tree.leaders[0] {
			return d.treeRootFold(h, m.id, 1, oneNode(m.from), m.notices, true)
		}
		tb := d.treebar(leader, m.id)
		tb.pending++
		tb.nodes.Add(m.from)
		tb.notices = append(tb.notices, m.notices...)
		// Park BEFORE carrying: the grant can arrive during the carrier
		// loop's last upward Call (the root completes as soon as the batch
		// folds, before the ack travels back), and it must find this
		// arrival's channel already registered.
		ch := new(sim.Chan)
		tb.waiters = append(tb.waiters, ch)
		d.treeCarry(h, m.id, tb)
		g, _ := ch.Recv(h.Proc()).(*barrierGrant)
		return grantReply(g)
	})

	node.Register(svcBarCombine, true, func(h *pm2.Thread, arg interface{}) interface{} {
		m := arg.(*treeCombineMsg)
		leader := h.Node()
		if leader == d.tree.leaders[0] {
			return d.treeRootFold(h, m.id, m.count, m.nodes, m.notices, false)
		}
		tb := d.treebar(leader, m.id)
		tb.pending += m.count
		tb.nodes.Union(m.nodes)
		tb.notices = append(tb.notices, m.notices...)
		// Fold first, then carry if no carrier is active: the ack back to
		// the child doubles as flow control — the child's next batch waits
		// until this one has moved on.
		d.treeCarry(h, m.id, tb)
		return nil
	})

	node.Register(svcBarGrant, false, func(h *pm2.Thread, arg interface{}) interface{} {
		m := arg.(*treeGrantMsg)
		d.treeGrantDown(h, m.id, m.grant)
		return nil
	})
}

// treeCarry drains tb.pending upward. The calling handler thread becomes the
// carrier unless one is already active (inFlight): it snapshots the
// accumulator, reports the batch to the parent leader with a blocking Call
// (so batches from one leader arrive in order and self-throttle), and loops
// until nothing new accumulated during the round trip. Batching is the point:
// arrivals that land while a batch is in flight ride the next one, so a
// leader sends at most O(cluster size) and typically O(1) backbone messages
// per generation.
func (d *DSM) treeCarry(h *pm2.Thread, id int, tb *treeBarLocal) {
	if tb.inFlight {
		return
	}
	tb.inFlight = true
	shard := d.rt.ShardOf(h.Node())
	parent := d.tree.leaders[d.tree.parent[shard]]
	for tb.pending > 0 {
		m := &treeCombineMsg{
			id:      id,
			count:   tb.pending,
			nodes:   tb.nodes.Take(),
			notices: tb.notices,
		}
		tb.pending = 0
		tb.notices = nil
		h.Call(parent, svcBarCombine, m,
			ctrlBytes+noticeBytes*len(m.notices), ctrlBytes)
	}
	tb.inFlight = false
}

// treeRootFold folds a batch (a local arrival or a child leader's combine)
// into the root barrier state and, when the generation completes, replays the
// flat barrier's completion: bump the generation, canonicalize the notices,
// check coverage, fold the profiler epoch and run migrations while every
// participant is parked, then relay the grant down the tree and to the root's
// own parked waiters. Returns the RPC reply: the grant for a completing local
// arrival, a park-then-grant for an early one, nil (the ack) for combines.
func (d *DSM) treeRootFold(h *pm2.Thread, id, count int, nodes NodeSet, notices []WriteNotice, localArrival bool) interface{} {
	bs := d.barriers[id]
	bs.notices = append(bs.notices, notices...)
	if bs.arrivedNodes == nil {
		bs.arrivedNodes = make(map[int]bool)
	}
	nodes.ForEach(func(n int) { bs.arrivedNodes[n] = true })
	bs.arrived += count
	if bs.arrived < bs.n {
		if localArrival {
			// A root-cluster arrival parks at the root like any member at
			// its leader.
			tb := d.treebar(d.tree.leaders[0], id)
			ch := new(sim.Chan)
			tb.waiters = append(tb.waiters, ch)
			g, _ := ch.Recv(h.Proc()).(*barrierGrant)
			return grantReply(g)
		}
		return nil // combine ack; the child's members stay parked at the child
	}
	// Generation complete: this block mirrors svcBarrier's completion in
	// sync.go — keep the two in step.
	bs.arrived = 0
	bs.gen++
	grant := &barrierGrant{notices: canonicalNotices(bs.notices)}
	bs.notices = nil
	covered := d.noticeCoverage(bs)
	if len(grant.notices) > 0 && !covered {
		panic(fmt.Sprintf("core: barrier %d released write notices without hearing from every node (notices require one participant per node)", bs.id))
	}
	bs.arrivedNodes = nil
	tb := d.treebar(d.tree.leaders[0], id)
	waiters := tb.waiters
	tb.waiters = nil
	if d.prof != nil && covered && !d.prof.folding {
		// Every participant of the generation is parked somewhere in the
		// tree, so the pages are quiescent — same argument as the flat
		// barrier, with "parked at the manager" generalized to "parked at
		// its cluster leader".
		d.prof.folding = true
		ep, cands := d.foldEpoch()
		grant.migrations = d.runMigrations(h, &ep, cands)
		d.closeEpoch(ep)
		d.prof.folding = false
	}
	for _, s := range d.tree.children[0] {
		h.Async(d.tree.leaders[s], svcBarGrant, &treeGrantMsg{id: id, grant: grant},
			ctrlBytes+noticeBytes*(len(grant.notices)+len(grant.migrations)))
	}
	for _, ch := range waiters {
		ch.Push(grant)
	}
	if localArrival {
		return grantReply(grant)
	}
	return nil // combine ack: the completing child's grant rides svcBarGrant
}

// treeGrantDown delivers a generation's grant at a leader: relay it to the
// leader's tree children, then wake every member parked here. Both steps are
// non-blocking, so the whole relay is one atomic event on this shard — a
// member's next-generation arrival cannot interleave with it.
func (d *DSM) treeGrantDown(h *pm2.Thread, id int, grant *barrierGrant) {
	leader := h.Node()
	shard := d.rt.ShardOf(leader)
	for _, s := range d.tree.children[shard] {
		h.Async(d.tree.leaders[s], svcBarGrant, &treeGrantMsg{id: id, grant: grant},
			ctrlBytes+noticeBytes*(len(grant.notices)+len(grant.migrations)))
	}
	tb := d.treebar(leader, id)
	waiters := tb.waiters
	tb.waiters = nil
	for _, ch := range waiters {
		ch.Push(grant)
	}
}

// treeBarrierArrive is the member side: report the arrival (with piggybacked
// notices) to the cluster leader and block for the grant. The reply protocol
// matches the flat barrier's, so BarrierAs applies the grant identically.
func (d *DSM) treeBarrierArrive(t *pm2.Thread, id int, notices []WriteNotice) interface{} {
	leader := d.tree.leaderOf[t.Node()]
	m := &treeArriveMsg{id: id, from: t.Node(), notices: notices}
	return t.Call(leader, svcBarArrive, m,
		ctrlBytes+noticeBytes*len(notices), ctrlBytes)
}

// oneNode returns a NodeSet holding exactly n.
func oneNode(n int) NodeSet {
	var s NodeSet
	s.Add(n)
	return s
}

// TreeBarrierResidue reports whether any combining-tree accumulator holds
// in-flight barrier state — pending arrivals not yet reported upward, an
// active carrier, or parked members awaiting a grant. Checkpoint capture
// calls it to reject unsafe moments: a snapshot taken mid-combine would
// strand the parked members' channels and the un-reported counts, neither of
// which has a serializable form. The error names the residue so the caller
// can see which barrier and leader were mid-flight.
func (d *DSM) TreeBarrierResidue() error {
	if d.tree == nil {
		return nil
	}
	for _, leader := range d.tree.leaders {
		ns := d.state[leader]
		for id, tb := range ns.treebar {
			if tb.pending > 0 || tb.inFlight || len(tb.waiters) > 0 {
				return fmt.Errorf("core: barrier %d mid-combine at leader node %d (pending=%d inFlight=%v parked=%d)",
					id, leader, tb.pending, tb.inFlight, len(tb.waiters))
			}
		}
	}
	return nil
}
