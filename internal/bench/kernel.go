package bench

// Wall-clock benchmarks of the simulator itself (the "kernel" experiment).
// Unlike the rest of this package, which reproduces the paper's *virtual*
// latencies, these scenarios measure how fast and how allocation-lean the
// simulation kernel runs on the host: events per wall-clock second, heap
// churn per event, and peak heap footprint. They feed the BENCH_kernel.json
// perf trajectory and the root BenchmarkKernel* entries.

import (
	"fmt"
	"runtime"
	"time"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/matmul"
	"dsmpm2/internal/apps/tsp"
	"dsmpm2/internal/sim"
)

// KernelResult is one wall-clock measurement of the simulation kernel.
type KernelResult struct {
	Name string `json:"name"`
	// Events is the number of simulation events the engine fired.
	Events uint64 `json:"events"`
	// WallMS is the host time the scenario took, in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// EventsPerSec is the kernel's throughput: Events / wall seconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// Allocs and AllocBytes are the heap allocations (count and bytes)
	// performed during the scenario; AllocsPerEvent normalizes.
	Allocs         uint64  `json:"allocs"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// PeakHeapBytes is the largest HeapInuse observed during the scenario
	// (sampled every few milliseconds, after a scenario-entry GC), i.e. a
	// per-scenario peak rather than a process-cumulative footprint.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// VirtualMS is the simulated time covered, for scale context.
	VirtualMS float64 `json:"virtual_ms"`
	// Threads is the number of simulated threads the scenario created.
	Threads int `json:"threads"`
}

// measure runs one scenario under MemStats bracketing and a wall clock. A
// sampler goroutine tracks the scenario's peak HeapInuse; the 5 ms interval
// keeps the stop-the-world cost of ReadMemStats negligible next to the
// scenarios' 10-500 ms runtimes.
func measure(name string, run func() (events uint64, virtualMS float64, threads int)) KernelResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var peak uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
			}
		}
	}()
	start := time.Now()
	events, virtualMS, threads := run()
	wall := time.Since(start)
	close(stop)
	<-done
	runtime.ReadMemStats(&after)
	if after.HeapInuse > peak {
		peak = after.HeapInuse
	}
	r := KernelResult{
		Name:          name,
		Events:        events,
		WallMS:        float64(wall.Nanoseconds()) / 1e6,
		Allocs:        after.Mallocs - before.Mallocs,
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
		PeakHeapBytes: peak,
		VirtualMS:     virtualMS,
		Threads:       threads,
	}
	if secs := wall.Seconds(); secs > 0 {
		r.EventsPerSec = float64(events) / secs
	}
	if events > 0 {
		r.AllocsPerEvent = float64(r.Allocs) / float64(events)
	}
	return r
}

// EventStorm hammers the kernel's dominant scheduling path with no DSM or
// network on top: procs simulated threads in a ring, each alternating a
// virtual-time step (Advance) with a token pass to its neighbour (Chan.Push /
// Chan.Recv). Because the ring is pre-seeded with tokens, receivers rarely
// park, so the event count is ~procs*hops timer wakes (plus spawn wakes and
// the occasional unpark when a receiver does outrun its sender) — the
// scenario isolates exactly the Schedule/wake path the kernel overhaul
// targets.
func EventStorm(procs, hops int) KernelResult {
	name := fmt.Sprintf("event-storm/procs=%d,hops=%d", procs, hops)
	return measure(name, func() (uint64, float64, int) {
		eng := sim.NewEngine(1)
		chans := make([]*sim.Chan, procs)
		for i := range chans {
			chans[i] = new(sim.Chan)
			chans[i].Push(-1) // seed token so the ring flows
		}
		for i := 0; i < procs; i++ {
			i := i
			eng.Go(fmt.Sprintf("storm%d", i), func(p *sim.Proc) {
				next := chans[(i+1)%procs]
				for h := 0; h < hops; h++ {
					chans[i].Recv(p)
					p.Advance(sim.Microsecond)
					next.Push(i)
				}
			})
		}
		if err := eng.Run(); err != nil {
			panic(err)
		}
		return eng.Events(), float64(eng.Now()) / 1e6, procs
	})
}

// EventStormSharded is the event storm on the parallel kernel: procs ring
// threads partitioned into contiguous blocks, one block per shard, each block
// driven by its own event loop on its own goroutine (sim.ShardedEngine). Only
// the ring edges between blocks cross shards; every hand-off — local or
// remote — is scheduled at now+1µs, so the virtual schedule is identical for
// every shard count and runs differ only in how the work is spread over host
// cores. shards=1 degenerates to a single plain event loop, making the
// shards=1 row the apples-to-apples serial baseline for the scaling matrix.
func EventStormSharded(procs, hops, shards int) KernelResult {
	if shards < 1 {
		shards = 1
	}
	if shards > procs {
		shards = procs
	}
	name := fmt.Sprintf("event-storm-sharded/procs=%d,hops=%d,shards=%d", procs, hops, shards)
	return measure(name, func() (uint64, float64, int) {
		lat := sim.Microsecond // ring hop latency = inter-shard lookahead
		se := sim.NewShardedEngine(1, shards, lat)
		shardOf := func(i int) int { return i * shards / procs }
		chans := make([]*sim.Chan, procs)
		for i := range chans {
			chans[i] = new(sim.Chan)
			chans[i].Push(-1) // seed token so the ring flows
		}
		for i := 0; i < procs; i++ {
			i := i
			e := se.Shard(shardOf(i))
			e.Go(fmt.Sprintf("storm%d", i), func(p *sim.Proc) {
				next := (i + 1) % procs
				dst := shardOf(next)
				for h := 0; h < hops; h++ {
					chans[i].Recv(p)
					p.Advance(sim.Microsecond)
					e.SchedulePushShard(dst, p.Now().Add(lat), chans[next], i)
				}
			})
		}
		if err := se.Run(); err != nil {
			panic(err)
		}
		return se.Events(), float64(se.Now()) / 1e6, procs
	})
}

// ScalingShards picks the shard counts for the host-scaling matrix: powers of
// two from 1 up to maxShards, plus maxShards itself. maxShards <= 0 selects
// the host's CPU count, floored at 2 so the matrix always contains a genuinely
// sharded row even on a single-core host.
func ScalingShards(maxShards int) []int {
	if maxShards <= 0 {
		maxShards = runtime.NumCPU()
		if maxShards < 2 {
			maxShards = 2
		}
	}
	var out []int
	for s := 1; s < maxShards; s *= 2 {
		out = append(out, s)
	}
	return append(out, maxShards)
}

// KernelScalingSuite measures the 1,000-proc event storm across the given
// shard counts — the host-scaling matrix of the kernel experiment. The first
// row (shards=1) is the serial baseline every speedup is computed against.
func KernelScalingSuite(shardCounts []int) []KernelResult {
	var out []KernelResult
	for _, s := range shardCounts {
		out = append(out, EventStormSharded(1000, 500, s))
	}
	return out
}

// JacobiStorm runs the barrier-phased stencil at cluster scale and measures
// the simulator's wall-clock cost: nodes application threads plus the RPC
// dispatcher/handler threads the DSM spawns under them.
func JacobiStorm(nodes, n, iterations int) KernelResult {
	name := fmt.Sprintf("jacobi/nodes=%d,n=%d,iters=%d", nodes, n, iterations)
	return measure(name, func() (uint64, float64, int) {
		res, err := jacobi.Run(jacobi.Config{
			N: n, Iterations: iterations, Nodes: nodes,
			Network: dsmpm2.BIPMyrinet, Protocol: "hbrc_mw", Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		rt := res.System.Runtime()
		return rt.Engine().Events(), float64(res.Elapsed) / 1e6, rt.ThreadCount()
	})
}

// MatmulStorm runs the read-replication matrix multiply at cluster scale.
func MatmulStorm(nodes, n int) KernelResult {
	name := fmt.Sprintf("matmul/nodes=%d,n=%d", nodes, n)
	return measure(name, func() (uint64, float64, int) {
		res, err := matmul.Run(matmul.Config{
			N: n, Nodes: nodes,
			Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak", Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		rt := res.System.Runtime()
		return rt.Engine().Events(), float64(res.Elapsed) / 1e6, rt.ThreadCount()
	})
}

// TSPStorm runs the branch-and-bound search at cluster scale.
func TSPStorm(nodes, cities int) KernelResult {
	name := fmt.Sprintf("tsp/nodes=%d,cities=%d", nodes, cities)
	return measure(name, func() (uint64, float64, int) {
		res, err := tsp.Run(tsp.Config{
			Cities: cities, Seed: 42, Nodes: nodes,
			Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak",
		})
		if err != nil {
			panic(err)
		}
		rt := res.System.Runtime()
		return rt.Engine().Events(), float64(res.Elapsed) / 1e6, rt.ThreadCount()
	})
}

// KernelSuite runs the standard kernel scenarios for BENCH_kernel.json: the
// event-storm microbench plus the three applications at 16-64 nodes.
func KernelSuite() []KernelResult {
	return []KernelResult{
		EventStorm(256, 2000),
		JacobiStorm(32, 64, 3),
		JacobiStorm(64, 64, 2),
		MatmulStorm(16, 24),
		TSPStorm(16, 10),
	}
}

// KernelBaseline returns the kernel suite measured on the pre-overhaul
// kernel (container/heap of *event with interface{} boxing, double
// goroutine switch per wake, unpooled pages/messages), captured with this
// same harness (including the peak-heap sampler) by running the final
// measurement code against the pre-overhaul tree on the same machine the
// current numbers were taken on. It is the "before" half of
// BENCH_kernel.json; regenerate it only when the measurement scenarios
// themselves change.
func KernelBaseline() []KernelResult {
	return []KernelResult{
		{Name: "event-storm/procs=256,hops=2000", Events: 514255, WallMS: 488.53, EventsPerSec: 1052667,
			Allocs: 1544851, AllocBytes: 33138176, AllocsPerEvent: 3.0041, PeakHeapBytes: 4218880,
			VirtualMS: 2, Threads: 256},
		{Name: "jacobi/nodes=32,n=64,iters=3", Events: 3023, WallMS: 11.20, EventsPerSec: 269907,
			Allocs: 22910, AllocBytes: 4262648, AllocsPerEvent: 7.5786, PeakHeapBytes: 4177920,
			VirtualMS: 1.2092, Threads: 671},
		{Name: "jacobi/nodes=64,n=64,iters=2", Events: 4587, WallMS: 19.99, EventsPerSec: 229491,
			Allocs: 37163, AllocBytes: 5986776, AllocsPerEvent: 8.1018, PeakHeapBytes: 7061504,
			VirtualMS: 0.9348, Threads: 1215},
		{Name: "matmul/nodes=16,n=24", Events: 3838, WallMS: 10.53, EventsPerSec: 364620,
			Allocs: 24607, AllocBytes: 4729088, AllocsPerEvent: 6.4114, PeakHeapBytes: 10821632,
			VirtualMS: 5.32852, Threads: 582},
		{Name: "tsp/nodes=16,cities=10", Events: 61333, WallMS: 59.74, EventsPerSec: 1026613,
			Allocs: 158321, AllocBytes: 5858648, AllocsPerEvent: 2.5813, PeakHeapBytes: 14770176,
			VirtualMS: 46.448, Threads: 1755},
	}
}

// TraceFingerprint hashes every recorded fault timing of a finished system,
// plus the final virtual clock, into a hex digest. Two runs of the same
// workload under the same seed must produce identical fingerprints; the
// golden-trace test pins a digest captured before the kernel rewrite to prove
// the rewrite preserved virtual-time behaviour bit for bit.
func TraceFingerprint(sys *dsmpm2.System) string { return sys.Fingerprint() }
