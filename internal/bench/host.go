package bench

import "runtime"

// HostMeta records the machine a wall-clock measurement was taken on, so the
// BENCH_*.json trajectories stay interpretable when runs come from different
// hosts: an events/sec or scaling row means nothing without the core count
// and toolchain behind it.
type HostMeta struct {
	// CPUs is the number of logical CPUs usable by this process
	// (runtime.NumCPU at measurement time).
	CPUs int `json:"cpus"`
	// GOMAXPROCS is the scheduler's parallelism limit during the run.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion is the toolchain that built the measuring binary.
	GoVersion string `json:"go_version"`
	// OS and Arch are the runtime GOOS/GOARCH.
	OS   string `json:"os"`
	Arch string `json:"arch"`
}

// Host captures the current machine's metadata.
func Host() HostMeta {
	return HostMeta{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}
