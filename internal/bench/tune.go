package bench

import "dsmpm2/internal/tune"

// TuneSeed is the pinned recording seed of the tune experiment. Fixing it
// here (rather than taking a flag) keeps the committed BENCH_tune.json
// snapshot byte-comparable across machines and runs: the grid's numbers are
// virtual-time exact, so only the host stanza may differ.
const TuneSeed = 9

// TuneSuite is the tune experiment's driver: record the workload once under
// its as-recorded baseline cell, then re-simulate the requested grid subset
// as parallel host-level runs. The recording carries the baseline the
// recommendation must beat; the report carries the ranked grid and the
// feed-back prior.
func TuneSuite(workload string, opts tune.Options) (*tune.Recording, *tune.Report, error) {
	rec, err := tune.Record(workload, TuneSeed)
	if err != nil {
		return nil, nil, err
	}
	rep, err := tune.Sweep(rec, opts)
	if err != nil {
		return nil, nil, err
	}
	return rec, rep, nil
}
