package bench

// The "serve" experiment: a serving-scale workload instead of a
// barrier-phased kernel. The kvstore app pushes an open-loop Zipf trace
// (seeded Poisson arrivals, hot-key churn phases) through per-bucket
// entry-consistency locks, and the number that matters is the tail of the
// per-operation latency distribution, read from the core's fixed-grid
// histograms — virtual-time exact and bit-identical across replays of one
// seed, like every other BENCH_*.json artifact.
//
// Both rows serve the identical trace from the same deliberately bad static
// placement (every bucket homed on node 0). The static row keeps it; the
// adaptive row lets the profiler re-home hot buckets onto their serving
// nodes at the epoch barriers. The acceptance headline is the p99: static
// placement pays a remote fetch per acquire and saturates, adaptive turns
// the hot buckets local mid-run and the tail collapses.

import (
	"fmt"

	"dsmpm2"
	"dsmpm2/internal/apps/kvstore"
)

// ServeNodes is the pinned workload's cluster size; dsmbench validates its
// -shards flag against it (a shard owns at least one node).
const ServeNodes = 4

// ServeResult is one placement's run of the serve experiment.
type ServeResult struct {
	Placement string `json:"placement"` // "static" or "adaptive"
	Protocol  string `json:"protocol"`
	Nodes     int    `json:"nodes"`
	// Shards is the kernel shard count the run used (0/absent = single-loop).
	Shards   int `json:"shards,omitempty"`
	Buckets  int `json:"buckets"`
	Keys     int `json:"keys"`
	Requests int `json:"requests"`
	// VirtualMS is the trace's simulated duration.
	VirtualMS float64 `json:"virtual_ms"`

	// Ops carries the per-kind latency digests (grid-valued deterministic
	// quantiles, exact mean/max), in sorted kind order.
	Ops []kvstore.OpSummary `json:"ops"`
	// HotKeys are the trace's busiest keys by request count.
	HotKeys []kvstore.HotKey `json:"hot_keys"`
	// PerKey carries each hot key's served-latency digest, in HotKeys
	// order, merged from the servers' per-node histograms.
	PerKey []kvstore.KeyLatency `json:"per_key"`

	Served         int64 `json:"served"`
	Dropped        int64 `json:"dropped"`
	IdleTicks      int64 `json:"idle_ticks"`
	RemoteFetches  int64 `json:"remote_fetches"`
	HomeMigrations int64 `json:"home_migrations"`

	// Checksum is the final-table fold (must equal the serial oracle), and
	// Fingerprint digests the run's TimingLog + stats.
	Checksum    uint64 `json:"checksum"`
	Fingerprint string `json:"fingerprint"`
}

// serveConfig is the experiment's pinned workload: a 4-node cluster serving
// a 2-phase Zipf trace from node-0-misplaced homes, loaded to the static
// placement's queueing knee.
func serveConfig() kvstore.Config {
	return kvstore.Config{
		Nodes:         ServeNodes,
		Buckets:       16,
		Keys:          512,
		Requests:      1600,
		Epochs:        8,
		Phases:        2,
		Seed:          11,
		MisplaceHomes: true,
	}
}

// serveMeasure runs one placement of the pinned workload, on shards event
// loops (<= 1 = the legacy single-loop engine).
func serveMeasure(adaptive bool, shards int) (ServeResult, error) {
	cfg := serveConfig()
	cfg.AdaptiveHomes = adaptive
	cfg.Shards = shards
	res, err := kvstore.Run(cfg)
	if err != nil {
		return ServeResult{}, err
	}
	placement := "static"
	if adaptive {
		placement = "adaptive"
	}
	return ServeResult{
		Placement:      placement,
		Protocol:       "entry_mw",
		Nodes:          cfg.Nodes,
		Shards:         shards,
		Buckets:        cfg.Buckets,
		Keys:           cfg.Keys,
		Requests:       cfg.Requests,
		VirtualMS:      float64(res.Elapsed) / 1e6,
		Ops:            res.Ops,
		HotKeys:        res.HotKeys,
		PerKey:         res.PerKey,
		Served:         res.Served,
		Dropped:        res.Dropped,
		IdleTicks:      res.IdleTicks,
		RemoteFetches:  res.Stats.RemoteFetches,
		HomeMigrations: res.Stats.HomeMigrations,
		Checksum:       res.Checksum,
		Fingerprint:    TraceFingerprint(res.System),
	}, nil
}

// ServeSuite runs the serve experiment: the same trace under static and
// adaptive placement, a serial-oracle checksum check, and a full replay of
// the adaptive run asserting the latency histograms are bit-identical.
// The returned replayIdentical is that replay check's verdict. shards <= 1
// keeps the legacy single-loop kernel; shards > 1 serves the same trace on
// that many parallel event loops (latency digests then describe the sharded
// schedule — compare sharded runs against sharded runs).
func ServeSuite(shards int) (static, adaptive ServeResult, replayIdentical bool, err error) {
	static, err = serveMeasure(false, shards)
	if err != nil {
		return
	}
	adaptive, err = serveMeasure(true, shards)
	if err != nil {
		return
	}
	oracle, _, err := kvstore.ServeSerial(serveConfig())
	if err != nil {
		return
	}
	for _, r := range []ServeResult{static, adaptive} {
		if r.Checksum != oracle {
			err = fmt.Errorf("serve: %s checksum %#x does not match the serial oracle %#x",
				r.Placement, r.Checksum, oracle)
			return
		}
	}
	replay, err := serveMeasure(true, shards)
	if err != nil {
		return
	}
	replayIdentical = len(replay.Ops) == len(adaptive.Ops) &&
		len(replay.PerKey) == len(adaptive.PerKey)
	for i := range adaptive.Ops {
		if !replayIdentical || replay.Ops[i] != adaptive.Ops[i] {
			replayIdentical = false
			break
		}
	}
	for i := range adaptive.PerKey {
		if !replayIdentical || replay.PerKey[i] != adaptive.PerKey[i] {
			replayIdentical = false
			break
		}
	}
	if replay.Fingerprint != adaptive.Fingerprint {
		replayIdentical = false
	}
	return
}

// ServeP99 extracts the get-latency p99 from a result (0 if absent), the
// experiment's headline number.
func ServeP99(r ServeResult) dsmpm2.Duration {
	for _, o := range r.Ops {
		if o.Kind == "get" {
			return o.P99
		}
	}
	return 0
}
