package bench

// The "ckpt" experiment: the checkpoint/restore subsystem's three consumers,
// measured on the chunked jacobi session.
//
//   - Round-trip: snapshot at every safe point of a 16-node run, restore,
//     run to the end — the final fingerprint must match the unbroken run's
//     at every sweep point (the subsystem's core property, also enforced by
//     the test suite; the bench re-checks it on the exact workload whose
//     numbers it reports).
//   - Crash-restart: the faulty plan's restarted node resumes from its
//     latest recorded checkpoint (warm) versus redoing every unit from
//     scratch (cold, PR 3's behavior). The headline number is RedoneUnits:
//     warm must redo strictly fewer.
//   - Fast-forward: a run resumed from a mid-run snapshot skips the already
//     committed work units; the bench reports the units skipped and the
//     host wall time of resume-and-finish versus run-from-scratch.
//
// All virtual-time numbers and fingerprints are deterministic per seed; the
// host wall-clock fields vary by machine like BENCH_kernel.json's.

import (
	"fmt"
	"time"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
)

// ckptSessionConfig is the pinned workload of the ckpt experiment: the
// 16-node jacobi session the round-trip property test sweeps.
func ckptSessionConfig() jacobi.Config {
	return jacobi.Config{
		N: 16, Iterations: 3, Nodes: 16,
		Network:  dsmpm2.BIPMyrinet,
		Protocol: "hbrc_mw",
		Seed:     7,
	}
}

// ckptFaultyConfig adds the crash/restart plan: node 2 fail-stops three
// times, once per work unit. The engine drains each step's queue to a safe
// point, so a fault event armed mid-drain parks and fires at the start of
// the next step: each cycle's crash lands at the start of a phase-A step
// (units 0, 1 and 2 in turn) and its restart at the start of the following
// step. By the later cycles node 2 has committed earlier units, so a cold
// restart redoes them from scratch while a warm restart resumes from the
// checkpoint registry — the comparison CkptRestartCompare measures.
func ckptFaultyConfig() jacobi.Config {
	cfg := ckptSessionConfig()
	cfg.FaultPlan = dsmpm2.NewFaultPlan(11).
		Crash(dsmpm2.Time(400*dsmpm2.Microsecond), 2).
		Restart(dsmpm2.Time(20*dsmpm2.Millisecond), 2).
		Crash(dsmpm2.Time(21*dsmpm2.Millisecond), 2).
		Restart(dsmpm2.Time(40*dsmpm2.Millisecond), 2).
		Crash(dsmpm2.Time(41*dsmpm2.Millisecond), 2).
		Restart(dsmpm2.Time(60*dsmpm2.Millisecond), 2)
	return cfg
}

// CkptRoundtrip is the sweep half of BENCH_ckpt.json.
type CkptRoundtrip struct {
	Steps         int     `json:"steps"`
	Swept         int     `json:"swept"`
	Mismatches    int     `json:"mismatches"`
	Fingerprint   string  `json:"fingerprint"`
	Checksum      float64 `json:"checksum"`
	VirtualMS     float64 `json:"virtual_ms"`
	SnapshotBytes int     `json:"snapshot_bytes"`
}

// CkptRestart is one restart-policy row: how much work the faulty run redid
// and whether the final grid matched the fault-free reference. Warm always
// matches; cold loses both ways — it redoes committed units AND, because
// the Jacobi buffers rotate, the inputs of those old units no longer exist
// anywhere, so the redo recomputes them from moved-on neighbour data and
// corrupts the answer. Per-unit checkpoints are what make node-local
// recovery consistent, not just cheap.
type CkptRestart struct {
	Mode         string  `json:"mode"` // "warm" (from checkpoint) or "cold" (from scratch)
	RedoneUnits  int64   `json:"redone_units"`
	WarmRestarts int     `json:"warm_restarts"`
	VirtualMS    float64 `json:"virtual_ms"`
	Checksum     float64 `json:"checksum"`
	ChecksumOK   bool    `json:"checksum_ok"` // equals the fault-free reference checksum
	Fingerprint  string  `json:"fingerprint"`
}

// CkptFastForward reports the warm-start consumer: resuming a snapshot
// instead of re-running the ramp-up.
type CkptFastForward struct {
	ResumeStep    int     `json:"resume_step"`
	UnitsSkipped  int     `json:"units_skipped"`
	FullWallMS    float64 `json:"full_wall_ms"`
	ResumeWallMS  float64 `json:"resume_wall_ms"`
	Fingerprint   string  `json:"fingerprint"`
	SnapshotBytes int     `json:"snapshot_bytes"`
}

// runSteps builds a session from cfg and executes the first `steps` steps.
func runSteps(cfg jacobi.Config, steps int, cold bool) (*jacobi.Session, error) {
	s, err := jacobi.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	s.ColdRestart = cold
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
	}
	return s, nil
}

// finish drives a session to completion and returns its result.
func finish(s *jacobi.Session) (jacobi.Result, error) {
	if err := s.RunToEnd(); err != nil {
		return jacobi.Result{}, err
	}
	return s.Result()
}

// CkptRoundtripSweep checkpoints the pinned session at every safe point,
// restores each snapshot through the wire form, runs to the end and counts
// fingerprint mismatches against the unbroken run (zero, or the subsystem is
// broken).
func CkptRoundtripSweep() (CkptRoundtrip, error) {
	ref, err := runSteps(ckptSessionConfig(), 0, false)
	if err != nil {
		return CkptRoundtrip{}, err
	}
	refRes, err := finish(ref)
	if err != nil {
		return CkptRoundtrip{}, err
	}
	out := CkptRoundtrip{
		Steps:       ref.Steps(),
		Fingerprint: ref.System().Fingerprint(),
		Checksum:    refRes.Checksum,
		VirtualMS:   float64(refRes.Elapsed) / 1e6,
	}
	for k := 0; k <= out.Steps; k++ {
		s, err := runSteps(ckptSessionConfig(), k, false)
		if err != nil {
			return out, err
		}
		ck, err := s.Checkpoint()
		if err != nil {
			return out, fmt.Errorf("checkpoint at step %d: %w", k, err)
		}
		data, err := ck.Encode()
		if err != nil {
			return out, err
		}
		if len(data) > out.SnapshotBytes {
			out.SnapshotBytes = len(data)
		}
		ck2, err := dsmpm2.DecodeCheckpoint(data)
		if err != nil {
			return out, err
		}
		resumed, err := jacobi.ResumeSession(ck2)
		if err != nil {
			return out, fmt.Errorf("resume at step %d: %w", k, err)
		}
		if _, err := finish(resumed); err != nil {
			return out, err
		}
		out.Swept++
		if resumed.System().Fingerprint() != out.Fingerprint {
			out.Mismatches++
		}
	}
	return out, nil
}

// CkptRestartCompare runs the faulty session once with warm restarts (the
// revived node resumes from its last recorded checkpoint) and once cold
// (redo from scratch), returning both rows. Warm must redo strictly fewer
// units — the acceptance headline — and must reproduce the fault-free
// checksum bit-exactly; cold is expected to drift (see CkptRestart).
func CkptRestartCompare() (warm, cold CkptRestart, err error) {
	measure := func(coldRestart bool) (CkptRestart, error) {
		s, err := runSteps(ckptFaultyConfig(), 0, coldRestart)
		if err != nil {
			return CkptRestart{}, err
		}
		res, err := finish(s)
		if err != nil {
			return CkptRestart{}, err
		}
		mode := "warm"
		if coldRestart {
			mode = "cold"
		}
		return CkptRestart{
			Mode:         mode,
			RedoneUnits:  res.Recovery.RedoneUnits,
			WarmRestarts: res.Recovery.WarmRestarts,
			VirtualMS:    float64(res.Elapsed) / 1e6,
			Checksum:     res.Checksum,
			Fingerprint:  s.System().Fingerprint(),
		}, nil
	}
	if warm, err = measure(false); err != nil {
		return
	}
	cold, err = measure(true)
	return
}

// CkptFastForwardRun snapshots the pinned session halfway, then compares the
// host wall time of resume-and-finish against run-from-scratch. The resumed
// run's fingerprint is the round-trip property's witness.
func CkptFastForwardRun() (CkptFastForward, error) {
	mid := ckptSessionConfig()
	s, err := runSteps(mid, 0, false)
	if err != nil {
		return CkptFastForward{}, err
	}
	half := s.Steps() / 2
	for i := 0; i < half; i++ {
		if err := s.Step(); err != nil {
			return CkptFastForward{}, err
		}
	}
	ck, err := s.Checkpoint()
	if err != nil {
		return CkptFastForward{}, err
	}
	data, err := ck.Encode()
	if err != nil {
		return CkptFastForward{}, err
	}

	start := time.Now()
	full, err := runSteps(ckptSessionConfig(), 0, false)
	if err != nil {
		return CkptFastForward{}, err
	}
	if _, err := finish(full); err != nil {
		return CkptFastForward{}, err
	}
	fullWall := time.Since(start)

	start = time.Now()
	ck2, err := dsmpm2.DecodeCheckpoint(data)
	if err != nil {
		return CkptFastForward{}, err
	}
	resumed, err := jacobi.ResumeSession(ck2)
	if err != nil {
		return CkptFastForward{}, err
	}
	if _, err := finish(resumed); err != nil {
		return CkptFastForward{}, err
	}
	resumeWall := time.Since(start)

	return CkptFastForward{
		ResumeStep:    half,
		UnitsSkipped:  half / 2,
		FullWallMS:    float64(fullWall.Microseconds()) / 1e3,
		ResumeWallMS:  float64(resumeWall.Microseconds()) / 1e3,
		Fingerprint:   resumed.System().Fingerprint(),
		SnapshotBytes: len(data),
	}, nil
}

// CkptBisect is the divergence-bisection demo: a deliberate perturbation is
// injected at a known step, and the binary search recovers that step from
// fingerprint comparisons alone.
type CkptBisect struct {
	Steps        int  `json:"steps"`
	InjectedStep int  `json:"injected_step"`
	FoundStep    int  `json:"found_step"`
	Probes       int  `json:"probes"`
	Recovered    bool `json:"recovered"`
}

// BisectDivergence binary-searches the first safe point at which a run's
// fingerprint diverges from the reference ledger. reference[k] is the
// fingerprint after k steps of the good run; probe(k) returns the candidate
// run's fingerprint after k steps. Returns the smallest k whose fingerprints
// differ (so the divergence was introduced by step k, 1-based prefix), or -1
// if the runs never diverge, plus the probe count.
func BisectDivergence(reference []string, probe func(steps int) (string, error)) (int, int, error) {
	probes := 0
	lastEq := func(k int) (bool, error) {
		probes++
		fp, err := probe(k)
		if err != nil {
			return false, err
		}
		return fp == reference[k], nil
	}
	// Invariant: fingerprints match after lo steps, diverge after hi steps.
	lo, hi := 0, len(reference)-1
	if same, err := lastEq(hi); err != nil {
		return -1, probes, err
	} else if same {
		return -1, probes, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		same, err := lastEq(mid)
		if err != nil {
			return -1, probes, err
		}
		if same {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, probes, nil
}

// CkptBisectRun demonstrates the bisect consumer on the pinned session: a
// perturbation at step `inject` (an extra same-value write + flush, data
// intact but traffic changed) and a binary search that recovers it.
func CkptBisectRun(inject int) (CkptBisect, error) {
	// Reference ledger: fingerprint after every step of the good run.
	ref, err := runSteps(ckptSessionConfig(), 0, false)
	if err != nil {
		return CkptBisect{}, err
	}
	ledger := []string{ref.System().Fingerprint()}
	for i := 0; i < ref.Steps(); i++ {
		if err := ref.Step(); err != nil {
			return CkptBisect{}, err
		}
		ledger = append(ledger, ref.System().Fingerprint())
	}
	out := CkptBisect{Steps: ref.Steps(), InjectedStep: inject}
	if inject < 0 || inject >= ref.Steps() {
		return out, fmt.Errorf("ckpt bisect: inject step %d outside [0,%d)", inject, ref.Steps())
	}
	found, probes, err := BisectDivergence(ledger, func(steps int) (string, error) {
		s, err := runSteps(ckptSessionConfig(), 0, false)
		if err != nil {
			return "", err
		}
		s.PerturbStep = inject
		for i := 0; i < steps; i++ {
			if err := s.Step(); err != nil {
				return "", err
			}
		}
		return s.System().Fingerprint(), nil
	})
	if err != nil {
		return out, err
	}
	out.FoundStep = found
	out.Probes = probes
	// The perturbation lands at the start of step `inject`, so the first
	// divergent ledger index is inject+1 (the fingerprint after that step).
	out.Recovered = found == inject+1
	return out, nil
}
