// Package bench provides the measurement scenarios shared by the root
// benchmark suite (bench_test.go) and the dsmbench command: the micro
// experiments of Section 2.1 and the fault breakdowns of Tables 3 and 4.
package bench

import (
	"fmt"

	"dsmpm2"
	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
)

// NullRPC measures the minimal round-trip latency of an empty RPC between
// two nodes, in microseconds (Section 2.1: 6us over SISCI/SCI, 8us over
// BIP/Myrinet).
func NullRPC(prof *madeleine.Profile) float64 {
	rt := pm2.NewRuntime(pm2.Config{Nodes: 2, Network: prof, Seed: 1})
	rt.Node(1).Register("null", false, func(h *pm2.Thread, arg interface{}) interface{} {
		return nil
	})
	var took float64
	rt.CreateThread(0, "caller", func(th *pm2.Thread) {
		start := th.Now()
		th.Call(1, "null", nil, 0, 0)
		took = th.Now().Sub(start).Microseconds()
	})
	mustRun(rt.Run())
	return took
}

// Migration measures the latency of migrating a minimal-stack thread
// between two nodes, in microseconds (Section 2.1: 62us over SISCI/SCI,
// 75us over BIP/Myrinet).
func Migration(prof *madeleine.Profile) float64 {
	rt := pm2.NewRuntime(pm2.Config{Nodes: 2, Network: prof, Seed: 1})
	var took float64
	rt.CreateThreadStack(0, "wanderer", 1024, func(th *pm2.Thread) {
		start := th.Now()
		th.MigrateTo(1)
		took = th.Now().Sub(start).Microseconds()
	})
	mustRun(rt.Run())
	return took
}

// ReadFaultPage performs one remote read fault under li_hudak (the
// page-migration policy) and returns its step breakdown (Table 3).
func ReadFaultPage(prof *madeleine.Profile) *core.FaultTiming {
	return readFault(prof, "li_hudak")
}

// ReadFaultMigrate performs one remote read fault under migrate_thread and
// returns its step breakdown (Table 4).
func ReadFaultMigrate(prof *madeleine.Profile) *core.FaultTiming {
	return readFault(prof, "migrate_thread")
}

func readFault(prof *madeleine.Profile, protocol string) *core.FaultTiming {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Network: prof, Protocol: protocol})
	base := sys.MustMalloc(1, core.PageSize, nil)
	sys.Spawn(0, "reader", func(t *dsmpm2.Thread) { t.ReadUint64(base) })
	mustRun(sys.Run())
	recs := sys.Timings().All()
	if len(recs) != 1 {
		panic(fmt.Sprintf("bench: expected 1 fault record, have %d", len(recs)))
	}
	return recs[0]
}

// LinkFault summarizes the read faults whose page transfer crossed one link
// class of a heterogeneous topology.
type LinkFault struct {
	Link        string
	Count       int
	MeanTotalUS float64
}

// HierReadFaults measures remote read faults across a hierarchical
// multi-cluster machine: every node other than 0 reads one page homed on
// node 0, so readers inside node 0's cluster fault over the intra profile
// and readers in other clusters over the inter profile. It returns one
// summary per link class, sorted by link name.
func HierReadFaults(nodes, clusters int, intra, inter *madeleine.Profile, protocol string) []LinkFault {
	topo := madeleine.NewHierarchical(madeleine.EvenClusters(nodes, clusters), intra, inter)
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: nodes, Topology: topo, Protocol: protocol})
	for r := 1; r < nodes; r++ {
		base := sys.MustMalloc(0, core.PageSize, nil) // homed on node 0
		sys.Spawn(r, fmt.Sprintf("reader%d", r), func(t *dsmpm2.Thread) {
			t.ReadUint64(base)
		})
	}
	mustRun(sys.Run())
	var out []LinkFault
	for _, s := range sys.Timings().ByLink() {
		if s.Link == "" {
			continue // faults without a page transfer
		}
		out = append(out, LinkFault{
			Link:        s.Link,
			Count:       s.Count,
			MeanTotalUS: s.MeanTotal.Microseconds(),
		})
	}
	return out
}

// ContentionResult compares concurrent page transfers over one saturated
// link with and without the link occupancy model.
type ContentionResult struct {
	Readers int
	// Mean remote read-fault total, link contention off/on (us).
	MeanFaultOffUS float64
	MeanFaultOnUS  float64
	// Queueing observed with the model on.
	Waits      int
	WaitTimeUS float64
}

// Contention runs `readers` threads on node 1, each reading its own page
// homed on node 0, so every page transfer crosses the single 0->1 link
// concurrently. With the link model off the transfers overlap for free;
// with it on they serialize FIFO and the mean fault inflates by the
// queueing delay.
func Contention(prof *madeleine.Profile, readers int) ContentionResult {
	run := func(contended bool) (meanUS float64, waits int, waitUS float64) {
		sys := dsmpm2.MustNew(dsmpm2.Config{
			Nodes: 2, Network: prof, Protocol: "li_hudak",
			LinkContention: contended,
		})
		for r := 0; r < readers; r++ {
			base := sys.MustMalloc(0, core.PageSize, nil)
			sys.Spawn(1, fmt.Sprintf("reader%d", r), func(t *dsmpm2.Thread) {
				t.ReadUint64(base)
			})
		}
		mustRun(sys.Run())
		mean, n := sys.Timings().MeanTiming("")
		if n != readers {
			panic(fmt.Sprintf("bench: expected %d fault records, have %d", readers, n))
		}
		ls := sys.Runtime().Network().LinkStats()
		return mean.Total.Microseconds(), ls.Waits, ls.WaitTime.Microseconds()
	}
	res := ContentionResult{Readers: readers}
	res.MeanFaultOffUS, _, _ = run(false)
	res.MeanFaultOnUS, res.Waits, res.WaitTimeUS = run(true)
	return res
}

func mustRun(err error) {
	if err != nil {
		panic(err)
	}
}
