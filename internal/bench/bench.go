// Package bench provides the measurement scenarios shared by the root
// benchmark suite (bench_test.go) and the dsmbench command: the micro
// experiments of Section 2.1 and the fault breakdowns of Tables 3 and 4.
package bench

import (
	"fmt"

	"dsmpm2"
	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
)

// NullRPC measures the minimal round-trip latency of an empty RPC between
// two nodes, in microseconds (Section 2.1: 6us over SISCI/SCI, 8us over
// BIP/Myrinet).
func NullRPC(prof *madeleine.Profile) float64 {
	rt := pm2.NewRuntime(pm2.Config{Nodes: 2, Network: prof, Seed: 1})
	rt.Node(1).Register("null", false, func(h *pm2.Thread, arg interface{}) interface{} {
		return nil
	})
	var took float64
	rt.CreateThread(0, "caller", func(th *pm2.Thread) {
		start := th.Now()
		th.Call(1, "null", nil, 0, 0)
		took = th.Now().Sub(start).Microseconds()
	})
	mustRun(rt.Run())
	return took
}

// Migration measures the latency of migrating a minimal-stack thread
// between two nodes, in microseconds (Section 2.1: 62us over SISCI/SCI,
// 75us over BIP/Myrinet).
func Migration(prof *madeleine.Profile) float64 {
	rt := pm2.NewRuntime(pm2.Config{Nodes: 2, Network: prof, Seed: 1})
	var took float64
	rt.CreateThreadStack(0, "wanderer", 1024, func(th *pm2.Thread) {
		start := th.Now()
		th.MigrateTo(1)
		took = th.Now().Sub(start).Microseconds()
	})
	mustRun(rt.Run())
	return took
}

// ReadFaultPage performs one remote read fault under li_hudak (the
// page-migration policy) and returns its step breakdown (Table 3).
func ReadFaultPage(prof *madeleine.Profile) *core.FaultTiming {
	return readFault(prof, "li_hudak")
}

// ReadFaultMigrate performs one remote read fault under migrate_thread and
// returns its step breakdown (Table 4).
func ReadFaultMigrate(prof *madeleine.Profile) *core.FaultTiming {
	return readFault(prof, "migrate_thread")
}

func readFault(prof *madeleine.Profile, protocol string) *core.FaultTiming {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Network: prof, Protocol: protocol})
	base := sys.MustMalloc(1, core.PageSize, nil)
	sys.Spawn(0, "reader", func(t *dsmpm2.Thread) { t.ReadUint64(base) })
	mustRun(sys.Run())
	recs := sys.Timings().All()
	if len(recs) != 1 {
		panic(fmt.Sprintf("bench: expected 1 fault record, have %d", len(recs)))
	}
	return recs[0]
}

func mustRun(err error) {
	if err != nil {
		panic(err)
	}
}
