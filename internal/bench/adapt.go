package bench

// The "adapt" experiment: the online sharing-pattern profiler and dynamic
// home migration against static (deliberately misplaced) page placement.
// Every workload homes its pages on node 0 — the bad layout an application
// port inherits when it allocates everything from one master thread — and
// runs once with that placement frozen and once with the profiler's decision
// engine re-homing pages onto their dominant writers at barrier epochs.
// Like the comm experiment, every number here is virtual-time exact and
// deterministic per seed: BENCH_adapt.json is a pinned artifact.
//
// The headline rows run under entry consistency (entry_mw): an acquire
// drops every non-home-local copy, so placement directly scales the fetch
// count and a misplaced home is paid for at every barrier. The hbrc_mw row
// shows the diff-traffic side of the same story (a well-placed home receives
// its writer's modifications for free), and matmul — barrier-free, so the
// profiler never folds an epoch — is the no-op control.

import (
	"fmt"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/lu"
	"dsmpm2/internal/apps/matmul"
)

// AdaptResult is one (app, nodes, placement) run of the adapt experiment.
type AdaptResult struct {
	App      string `json:"app"`
	Protocol string `json:"protocol"`
	Nodes    int    `json:"nodes"`
	Adaptive bool   `json:"adaptive"`
	// VirtualMS is the workload's simulated run time.
	VirtualMS float64 `json:"virtual_ms"`

	// Placement accounting (core.Stats). RemoteFetches counts page
	// requests sent off-node; MisplacedFetches the subset issued by a
	// page's profiled dominant writer while homed elsewhere;
	// HomeMigrations the completed re-homings.
	Requests         int64 `json:"requests"`
	RemoteFetches    int64 `json:"remote_fetches"`
	MisplacedFetches int64 `json:"misplaced_fetches"`
	HomeMigrations   int64 `json:"home_migrations"`
	PageSends        int64 `json:"page_sends"`
	DiffsSent        int64 `json:"diffs_sent"`
	DiffBytes        int64 `json:"diff_bytes"`

	// Epochs is the profiler's per-epoch classification histogram (empty
	// on the static runs, where the profiler is off).
	Epochs []dsmpm2.EpochProfile `json:"epochs,omitempty"`

	// Fingerprint digests the run's TimingLog + stats: identical across
	// replays of the same seed (the migration-enabled golden property).
	Fingerprint string `json:"fingerprint"`
}

// adaptRun is one application scenario, runnable with and without the
// decision engine.
type adaptRun struct {
	app      string
	protocol string
	nodes    int
	run      func(adaptive bool) (*dsmpm2.System, dsmpm2.Time)
}

func (a adaptRun) measure(adaptive bool) AdaptResult {
	sys, elapsed := a.run(adaptive)
	st := sys.Stats()
	return AdaptResult{
		App:              a.app,
		Protocol:         a.protocol,
		Nodes:            a.nodes,
		Adaptive:         adaptive,
		VirtualMS:        float64(elapsed) / 1e6,
		Requests:         st.Requests,
		RemoteFetches:    st.RemoteFetches,
		MisplacedFetches: st.MisplacedFetches,
		HomeMigrations:   st.HomeMigrations,
		PageSends:        st.PageSends,
		DiffsSent:        st.DiffsSent,
		DiffBytes:        st.DiffBytes,
		Epochs:           sys.ProfileEpochs(),
		Fingerprint:      TraceFingerprint(sys),
	}
}

// adaptRuns lists the suite's scenarios, all starting from node-0-misplaced
// homes. Iteration counts give the decision engine (stability 2) a dozen-plus
// epochs to profit from the move.
func adaptRuns() []adaptRun {
	jac := func(proto string, nodes, n, iters int) adaptRun {
		return adaptRun{app: "jacobi", protocol: proto, nodes: nodes,
			run: func(adaptive bool) (*dsmpm2.System, dsmpm2.Time) {
				res, err := jacobi.Run(jacobi.Config{
					N: n, Iterations: iters, Nodes: nodes,
					Network: dsmpm2.BIPMyrinet, Protocol: proto, Seed: 7,
					MisplaceHomes: true, AdaptiveHomes: adaptive,
				})
				if err != nil {
					panic(fmt.Sprintf("adapt jacobi/%d: %v", nodes, err))
				}
				return res.System, res.Elapsed
			}}
	}
	luf := func(nodes, n int) adaptRun {
		return adaptRun{app: "lu", protocol: "entry_mw", nodes: nodes,
			run: func(adaptive bool) (*dsmpm2.System, dsmpm2.Time) {
				res, err := lu.Run(lu.Config{
					N: n, Nodes: nodes,
					Network: dsmpm2.BIPMyrinet, Protocol: "entry_mw", Seed: 5,
					MisplaceHomes: true, AdaptiveHomes: adaptive,
				})
				if err != nil {
					panic(fmt.Sprintf("adapt lu/%d: %v", nodes, err))
				}
				return res.System, res.Elapsed
			}}
	}
	mat := func(nodes, n int) adaptRun {
		return adaptRun{app: "matmul", protocol: "li_hudak", nodes: nodes,
			run: func(adaptive bool) (*dsmpm2.System, dsmpm2.Time) {
				res, err := matmul.Run(matmul.Config{
					N: n, Nodes: nodes,
					Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak", Seed: 3,
					MisplaceHomes: true, AdaptiveHomes: adaptive,
				})
				if err != nil {
					panic(fmt.Sprintf("adapt matmul/%d: %v", nodes, err))
				}
				return res.System, res.Elapsed
			}}
	}
	return []adaptRun{
		// The headline: the producer-consumer stencil at cluster scale.
		jac("entry_mw", 16, 32, 16),
		jac("entry_mw", 64, 64, 16),
		// The diff-traffic view of the same move: under hbrc_mw the fetch
		// count barely moves (write notices already keep the sole writer's
		// copy alive), but every epoch's diffs stop crossing the wire once
		// the writer IS the home.
		jac("hbrc_mw", 16, 32, 16),
		// lu's shrinking-reader broadcast: own-row updates dominate, so a
		// misplaced home is refetched at every elimination step.
		luf(16, 24),
		// matmul has no barriers: the profiler counts but never folds an
		// epoch, so migration never triggers — the no-op control proving
		// the machinery costs nothing without evidence.
		mat(16, 24),
	}
}

// AdaptSuite runs every scenario with static and adaptive placement and
// returns the results, static and adaptive rows interleaved per scenario.
func AdaptSuite() []AdaptResult {
	var out []AdaptResult
	for _, a := range adaptRuns() {
		out = append(out, a.measure(false), a.measure(true))
	}
	return out
}

// AdaptJacobi64 runs just the 64-node jacobi pair — the acceptance headline —
// returning (static, adaptive). The bench smoke asserts its fetch reduction.
func AdaptJacobi64() (static, adaptive AdaptResult) {
	for _, a := range adaptRuns() {
		if a.app == "jacobi" && a.nodes == 64 {
			return a.measure(false), a.measure(true)
		}
	}
	panic("adapt: the 64-node jacobi scenario is missing from the suite")
}
