package bench

// The "comm" experiment: message/byte/envelope accounting of the batched
// communication path against the historical one-envelope-per-operation
// path, across the barrier- and diff-heavy applications at cluster scale.
// Unlike the kernel experiment (wall-clock), everything here is exact and
// deterministic: the same seed produces the same counts on every machine,
// so BENCH_comm.json is a pinned artifact, not a measurement subject to
// host noise.

import (
	"fmt"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/lu"
	"dsmpm2/internal/apps/matmul"
)

// CommLink is one link class's fault-timing summary, surfaced next to the
// counters so the JSON output carries the TimingLog.ByLink view too.
type CommLink struct {
	Link        string  `json:"link"`
	Count       int     `json:"count"`
	MeanTotalUS float64 `json:"mean_total_us"`
}

// CommResult is one (app, nodes, path) run of the comm experiment.
type CommResult struct {
	App     string `json:"app"`
	Nodes   int    `json:"nodes"`
	Batched bool   `json:"batched"`
	// Clusters/Shards identify the scale rows (hierarchical topology, kernel
	// shard count); zero for the classic uniform-topology rows.
	Clusters int `json:"clusters,omitempty"`
	Shards   int `json:"shards,omitempty"`
	// VirtualMS is the workload's simulated run time.
	VirtualMS float64 `json:"virtual_ms"`

	// Wire accounting from the network layer. Envelopes counts departures:
	// a multi-part batch counts once, so Messages/Envelopes is the
	// aggregation factor batching achieved. SyncEnvelopes isolates the
	// barrier-phase traffic — every envelope except the page-fetch pairs
	// (requests and page transfers, which no batching can remove): the
	// invalidations, acknowledgements, diffs and synchronization messages
	// that release/barrier processing puts on the wire.
	Messages      int   `json:"messages"`
	Bytes         int64 `json:"bytes"`
	Envelopes     int   `json:"envelopes"`
	SyncEnvelopes int64 `json:"sync_envelopes"`

	// DSM communication-module counters (core.Stats).
	Sends         int64 `json:"sends"`
	Requests      int64 `json:"requests"`
	PageSends     int64 `json:"page_sends"`
	Invalidations int64 `json:"invalidations"`
	InvAcks       int64 `json:"inv_acks"`
	DiffsSent     int64 `json:"diffs_sent"`
	DiffBytes     int64 `json:"diff_bytes"`
	Notices       int64 `json:"notices"`
	DSMEnvelopes  int64 `json:"dsm_envelopes"`

	// Backbone accounting for the scale rows: envelopes that crossed the
	// inter-cluster link class, and the per-barrier-generation share of them
	// after subtracting the page-fetch pairs (request + page send per remote
	// fault on the backbone) that no barrier scheme can remove. Flat barriers
	// grow this O(N); the combining tree holds it at O(fan-in · log clusters).
	BackboneEnvelopes  int     `json:"backbone_envelopes,omitempty"`
	BarrierGens        int64   `json:"barrier_gens,omitempty"`
	BackbonePerBarrier float64 `json:"backbone_per_barrier,omitempty"`

	// ByLink summarizes the recorded fault timings per link class.
	ByLink []CommLink `json:"by_link"`
}

// commRun is one application scenario of the suite, runnable on both paths.
type commRun struct {
	app   string
	nodes int
	run   func(unbatched bool) (*dsmpm2.System, dsmpm2.Time)
}

// measure samples the counters after the app's final checksum read-back
// pass, which is identical (read-only page fetches) on both paths: it
// dilutes the *total* envelope ratio slightly and conservatively, and
// cancels out of SyncEnvelopes entirely (read-back traffic is exactly
// request/page-send pairs, which SyncEnvelopes subtracts). VirtualMS is the
// workload's own elapsed time, without the read-back.
func (c commRun) measure(unbatched bool) CommResult {
	sys, elapsed := c.run(unbatched)
	st := sys.Stats()
	msgs, bytes := sys.Runtime().Network().Stats()
	res := CommResult{
		App:           c.app,
		Nodes:         c.nodes,
		Batched:       !unbatched,
		VirtualMS:     float64(elapsed) / 1e6,
		Messages:      msgs,
		Bytes:         bytes,
		Envelopes:     sys.Runtime().Network().Envelopes(),
		SyncEnvelopes: int64(sys.Runtime().Network().Envelopes()) - st.Requests - st.PageSends,

		Sends:         st.Sends,
		Requests:      st.Requests,
		PageSends:     st.PageSends,
		Invalidations: st.Invalidations,
		InvAcks:       st.InvAcks,
		DiffsSent:     st.DiffsSent,
		DiffBytes:     st.DiffBytes,
		Notices:       st.Notices,
		DSMEnvelopes:  st.Envelopes,
	}
	for _, s := range sys.Timings().ByLink() {
		if s.Link == "" {
			continue
		}
		res.ByLink = append(res.ByLink, CommLink{
			Link: s.Link, Count: s.Count, MeanTotalUS: s.MeanTotal.Microseconds(),
		})
	}
	return res
}

// commRuns lists the suite's scenarios: the three barrier-phased
// applications at 16 and 64 nodes. Jacobi under hbrc_mw is the headline
// (barrier phases dominated by invalidation traffic the notices absorb);
// lu's broadcast pivots stress diff coalescing; matmul's read replication
// is the near-neutral control.
func commRuns() []commRun {
	mk := func(app string, nodes int, run func(unbatched bool) (*dsmpm2.System, dsmpm2.Time)) commRun {
		return commRun{app: app, nodes: nodes, run: run}
	}
	jac := func(app string, proto string, nodes, n, iters int) commRun {
		return mk(app, nodes, func(unbatched bool) (*dsmpm2.System, dsmpm2.Time) {
			res, err := jacobi.Run(jacobi.Config{
				N: n, Iterations: iters, Nodes: nodes,
				Network: dsmpm2.BIPMyrinet, Protocol: proto, Seed: 7,
				Unbatched: unbatched,
			})
			if err != nil {
				panic(fmt.Sprintf("comm %s/%d: %v", app, nodes, err))
			}
			return res.System, res.Elapsed
		})
	}
	mat := func(nodes, n int) commRun {
		return mk("matmul", nodes, func(unbatched bool) (*dsmpm2.System, dsmpm2.Time) {
			res, err := matmul.Run(matmul.Config{
				N: n, Nodes: nodes,
				Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak", Seed: 3,
				Unbatched: unbatched,
			})
			if err != nil {
				panic(fmt.Sprintf("comm matmul/%d: %v", nodes, err))
			}
			return res.System, res.Elapsed
		})
	}
	luf := func(nodes, n int) commRun {
		return mk("lu", nodes, func(unbatched bool) (*dsmpm2.System, dsmpm2.Time) {
			res, err := lu.Run(lu.Config{
				N: n, Nodes: nodes,
				Network: dsmpm2.BIPMyrinet, Protocol: "hbrc_mw", Seed: 5,
				Unbatched: unbatched,
			})
			if err != nil {
				panic(fmt.Sprintf("comm lu/%d: %v", nodes, err))
			}
			return res.System, res.Elapsed
		})
	}
	return []commRun{
		// Iteration counts run well past the grid diagonal so the heat
		// front has crossed every block boundary and each barrier phase
		// carries real invalidation traffic, not just warm-up fetches.
		jac("jacobi", "hbrc_mw", 16, 32, 48),
		jac("jacobi", "hbrc_mw", 64, 64, 96),
		// erc_sw cannot use write notices (ownership migrates), so its
		// barrier releases ship eager invalidations through the outbox's
		// vector-RPC path — the row that keeps the batched invalidation
		// machinery itself on the wire (jacobi's stencil gives each page
		// one holder per neighbour, so these envelopes carry one op each;
		// the multi-op coalescing arithmetic is pinned directly by
		// core.TestBatchFlushCoalescesEnvelopes).
		jac("jacobi-erc", "erc_sw", 16, 32, 48),
		mat(16, 24),
		mat(64, 32),
		luf(16, 24),
		luf(64, 32),
	}
}

// CommSuite runs every scenario on both communication paths and returns the
// results, batched and unbatched rows interleaved per scenario.
func CommSuite() []CommResult {
	var out []CommResult
	for _, c := range commRuns() {
		out = append(out, c.measure(false), c.measure(true))
	}
	return out
}

// CommScaleClusters is the cluster count of the scale rows' hierarchical
// topology (and the shard count that aligns the kernel's shards — and
// therefore the combining tree's leaves — with those clusters). dsmbench
// validates its -shards flag against it.
const CommScaleClusters = 8

// commScale runs one scale row: jacobi on a hierarchical topology (fast
// intra-cluster links, slow backbone) at the given node count, flat
// (shards=1, every barrier arrival Calls the home node) or sharded (one
// shard per cluster, barrier traffic combines per cluster and only the
// leaders touch the backbone).
func commScale(nodes, iters, shards int) CommResult {
	clusters := CommScaleClusters
	inter := dsmpm2.TCPFastEthernet
	res, err := jacobi.Run(jacobi.Config{
		N: nodes, Iterations: iters, Nodes: nodes,
		Topology: dsmpm2.HierarchicalTopology(
			dsmpm2.EvenClusters(nodes, clusters), dsmpm2.BIPMyrinet, inter),
		Protocol: "hbrc_mw", Seed: 7, Shards: shards,
	})
	if err != nil {
		panic(fmt.Sprintf("comm scale %d/%d: %v", nodes, shards, err))
	}
	if want := jacobi.SolveSerial(nodes, iters); res.Checksum != want {
		panic(fmt.Sprintf("comm scale %d/%d: checksum %v, serial %v", nodes, shards, res.Checksum, want))
	}
	sys := res.System
	st := sys.Stats()
	msgs, bytes := sys.Runtime().Network().Stats()
	out := CommResult{
		App:       "jacobi-hier",
		Nodes:     nodes,
		Batched:   true,
		Clusters:  clusters,
		Shards:    shards,
		VirtualMS: float64(res.Elapsed) / 1e6,
		Messages:  msgs,
		Bytes:     bytes,
		Envelopes: sys.Runtime().Network().Envelopes(),
		SyncEnvelopes: int64(sys.Runtime().Network().Envelopes()) -
			st.Requests - st.PageSends,

		Sends:         st.Sends,
		Requests:      st.Requests,
		PageSends:     st.PageSends,
		Invalidations: st.Invalidations,
		InvAcks:       st.InvAcks,
		DiffsSent:     st.DiffsSent,
		DiffBytes:     st.DiffBytes,
		Notices:       st.Notices,
		DSMEnvelopes:  st.Envelopes,

		BackboneEnvelopes: sys.Runtime().Network().EnvelopesByLink()[inter.Name],
		BarrierGens:       st.Barriers / int64(nodes),
	}
	var interFaults int
	for _, s := range sys.Timings().ByLink() {
		if s.Link == inter.Name {
			interFaults = s.Count
		}
		if s.Link == "" {
			continue
		}
		out.ByLink = append(out.ByLink, CommLink{
			Link: s.Link, Count: s.Count, MeanTotalUS: s.MeanTotal.Microseconds(),
		})
	}
	if out.BarrierGens > 0 {
		out.BackbonePerBarrier = float64(out.BackboneEnvelopes-2*interFaults) /
			float64(out.BarrierGens)
	}
	return out
}

// CommScaleSuite is the sync-envelope growth matrix: 64- and 512-node jacobi
// on the 8-cluster hierarchical topology, each measured with flat barriers
// (shards=1) and with the combining tree (treeShards > 1, one shard per
// cluster when treeShards == CommScaleClusters). treeShards <= 1 selects the
// cluster count. Iteration counts are small — per-barrier backbone cost is
// steady-state after the first generation, and these rows exist for the wire
// accounting, not the heat flow.
func CommScaleSuite(treeShards int) []CommResult {
	if treeShards <= 1 {
		treeShards = CommScaleClusters
	}
	var out []CommResult
	for _, nodes := range []int{64, 512} {
		iters := 4
		out = append(out, commScale(nodes, iters, 1), commScale(nodes, iters, treeShards))
	}
	return out
}

// CommJacobi64 runs just the 64-node jacobi pair — the acceptance headline —
// returning (batched, unbatched). The bench smoke uses it.
func CommJacobi64() (batched, unbatched CommResult) {
	for _, c := range commRuns() {
		if c.app == "jacobi" && c.nodes == 64 {
			return c.measure(false), c.measure(true)
		}
	}
	panic("comm: the 64-node jacobi scenario is missing from the suite")
}
