package bench

import (
	"testing"

	"dsmpm2/internal/tune"
)

// TestTuneSuite: the experiment driver must hand back a recording whose
// baseline the ranked winner beats, under the pinned seed.
func TestTuneSuite(t *testing.T) {
	rec, rep, err := TuneSuite("jacobi", tune.Options{
		Protocols: []string{"li_hudak", "adaptive"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seed != TuneSeed {
		t.Errorf("recording seed %d, want the pinned %d", rec.Seed, TuneSeed)
	}
	if rep.GridSize != 2*2*3*2 {
		t.Errorf("grid size %d, want 24", rep.GridSize)
	}
	if !rep.Winner.Correct || rep.Winner.VirtualMS > rep.Baseline.VirtualMS {
		t.Errorf("winner %+v does not beat baseline %.3f ms", rep.Winner, rep.Baseline.VirtualMS)
	}
	if _, _, err := TuneSuite("bogus", tune.Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
}
