package bench

import (
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/matmul"
	"dsmpm2/internal/apps/tsp"
)

// appRuns are the three paper applications at small scale, parameterized by
// the facade's Shards knob.
var appRuns = []struct {
	name string
	run  func(shards int) (*dsmpm2.System, error)
}{
	{"jacobi", func(shards int) (*dsmpm2.System, error) {
		res, err := jacobi.Run(jacobi.Config{
			N: 16, Iterations: 3, Nodes: 4,
			Network: dsmpm2.BIPMyrinet, Protocol: "hbrc_mw", Seed: 1, Shards: shards,
		})
		return res.System, err
	}},
	{"matmul", func(shards int) (*dsmpm2.System, error) {
		res, err := matmul.Run(matmul.Config{
			N: 12, Nodes: 4,
			Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak", Seed: 3, Shards: shards,
		})
		return res.System, err
	}},
	{"tsp", func(shards int) (*dsmpm2.System, error) {
		res, err := tsp.Run(tsp.Config{
			Cities: 8, Seed: 42, Nodes: 4,
			Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak", Shards: shards,
		})
		return res.System, err
	}},
}

// TestShardsOneMatchesLegacyFingerprint: requesting Shards=1 through the
// facade must replay the legacy single-loop engine bit for bit — same final
// clock, same timing log, same stats — on all three paper applications.
func TestShardsOneMatchesLegacyFingerprint(t *testing.T) {
	for _, app := range appRuns {
		legacy, err := app.run(0)
		if err != nil {
			t.Fatalf("%s shards=0: %v", app.name, err)
		}
		one, err := app.run(1)
		if err != nil {
			t.Fatalf("%s shards=1: %v", app.name, err)
		}
		if a, b := TraceFingerprint(legacy), TraceFingerprint(one); a != b {
			t.Errorf("%s: shards=1 fingerprint %s != legacy %s", app.name, b, a)
		}
	}
}

// TestShardsRejectedAboveOne: the DSM protocol layer is single-loop; the
// facade must refuse Shards>1 with an error, not mis-run.
func TestShardsRejectedAboveOne(t *testing.T) {
	for _, app := range appRuns {
		if _, err := app.run(2); err == nil {
			t.Errorf("%s: shards=2 did not error", app.name)
		}
	}
}

// TestShardedStormVirtualClockInvariant: the sharded event storm schedules
// every hand-off at now+1µs regardless of placement, so the virtual schedule
// — and in particular the final clock — must be identical at every shard
// count. Only the host-core spread may differ.
func TestShardedStormVirtualClockInvariant(t *testing.T) {
	base := EventStormSharded(32, 40, 1)
	for _, shards := range []int{2, 4} {
		r := EventStormSharded(32, 40, shards)
		if r.VirtualMS != base.VirtualMS {
			t.Errorf("shards=%d: virtual clock %.6f ms != shards=1 %.6f ms",
				shards, r.VirtualMS, base.VirtualMS)
		}
	}
}
