package bench

import (
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/kvstore"
	"dsmpm2/internal/apps/matmul"
	"dsmpm2/internal/apps/tsp"
)

// appRuns are the three paper applications at small scale, parameterized by
// the facade's Shards knob. value is the application-level answer (grid
// checksum, product checksum, best tour cost) — the cross-shard conformance
// invariant: whatever the kernel parallelism, the computed answer must match.
var appRuns = []struct {
	name string
	run  func(shards int) (*dsmpm2.System, float64, error)
}{
	{"jacobi", func(shards int) (*dsmpm2.System, float64, error) {
		res, err := jacobi.Run(jacobi.Config{
			N: 16, Iterations: 3, Nodes: 4,
			Network: dsmpm2.BIPMyrinet, Protocol: "hbrc_mw", Seed: 1, Shards: shards,
		})
		return res.System, res.Checksum, err
	}},
	{"matmul", func(shards int) (*dsmpm2.System, float64, error) {
		res, err := matmul.Run(matmul.Config{
			N: 12, Nodes: 4,
			Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak", Seed: 3, Shards: shards,
		})
		return res.System, res.Checksum, err
	}},
	{"tsp", func(shards int) (*dsmpm2.System, float64, error) {
		res, err := tsp.Run(tsp.Config{
			Cities: 8, Seed: 42, Nodes: 4,
			Network: dsmpm2.BIPMyrinet, Protocol: "li_hudak", Shards: shards,
		})
		return res.System, float64(res.BestCost), err
	}},
}

// TestShardsOneMatchesLegacyFingerprint: requesting Shards=1 through the
// facade must replay the legacy single-loop engine bit for bit — same final
// clock, same timing log, same stats — on all three paper applications.
func TestShardsOneMatchesLegacyFingerprint(t *testing.T) {
	for _, app := range appRuns {
		legacy, _, err := app.run(0)
		if err != nil {
			t.Fatalf("%s shards=0: %v", app.name, err)
		}
		one, _, err := app.run(1)
		if err != nil {
			t.Fatalf("%s shards=1: %v", app.name, err)
		}
		if a, b := TraceFingerprint(legacy), TraceFingerprint(one); a != b {
			t.Errorf("%s: shards=1 fingerprint %s != legacy %s", app.name, b, a)
		}
	}
}

// TestShardedRunsDeterministicAndConformant: with the Shards<=1 restriction
// lifted, a sharded DSM run must (a) be deterministic — two runs of the same
// config and seed produce identical fingerprints (final clock, timing log,
// stats), whatever the host interleaves — and (b) conform — the application-
// level answer matches the single-loop run. The virtual schedule itself may
// differ from single-loop (the combining-tree barrier takes different message
// paths than the flat one), so fingerprints are compared within a shard
// count, never across.
func TestShardedRunsDeterministicAndConformant(t *testing.T) {
	for _, app := range appRuns {
		_, want, err := app.run(1)
		if err != nil {
			t.Fatalf("%s shards=1: %v", app.name, err)
		}
		for _, shards := range []int{2, 4} {
			s1, v1, err := app.run(shards)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", app.name, shards, err)
			}
			s2, v2, err := app.run(shards)
			if err != nil {
				t.Fatalf("%s shards=%d rerun: %v", app.name, shards, err)
			}
			if a, b := TraceFingerprint(s1), TraceFingerprint(s2); a != b {
				t.Errorf("%s shards=%d: rerun fingerprint %s != %s (nondeterministic)",
					app.name, shards, b, a)
			}
			if v1 != want {
				t.Errorf("%s shards=%d: answer %v != single-loop %v", app.name, shards, v1, want)
			}
			if v2 != want {
				t.Errorf("%s shards=%d rerun: answer %v != single-loop %v", app.name, shards, v2, want)
			}
		}
	}
}

// TestShardedServeDeterministicAndConformant: the serving workload — open-
// loop Zipf trace over entry-consistency locks with the adaptive profiler's
// epoch barriers — runs end-to-end on 2 and 4 shards, deterministically
// (replayed fingerprints and latency digests bit-identical) and conformant
// (final-table checksum equals the serial oracle).
func TestShardedServeDeterministicAndConformant(t *testing.T) {
	oracle, _, err := kvstore.ServeSerial(serveConfig())
	if err != nil {
		t.Fatalf("serial oracle: %v", err)
	}
	for _, shards := range []int{2, 4} {
		for _, adaptive := range []bool{false, true} {
			r1, err := serveMeasure(adaptive, shards)
			if err != nil {
				t.Fatalf("shards=%d adaptive=%v: %v", shards, adaptive, err)
			}
			r2, err := serveMeasure(adaptive, shards)
			if err != nil {
				t.Fatalf("shards=%d adaptive=%v rerun: %v", shards, adaptive, err)
			}
			if r1.Fingerprint != r2.Fingerprint {
				t.Errorf("shards=%d adaptive=%v: rerun fingerprint %s != %s (nondeterministic)",
					shards, adaptive, r2.Fingerprint, r1.Fingerprint)
			}
			if len(r1.Ops) != len(r2.Ops) {
				t.Fatalf("shards=%d adaptive=%v: rerun op kinds differ", shards, adaptive)
			}
			for i := range r1.Ops {
				if r1.Ops[i] != r2.Ops[i] {
					t.Errorf("shards=%d adaptive=%v: rerun %s digest differs",
						shards, adaptive, r1.Ops[i].Kind)
				}
			}
			if r1.Checksum != oracle {
				t.Errorf("shards=%d adaptive=%v: checksum %#x != serial oracle %#x",
					shards, adaptive, r1.Checksum, oracle)
			}
		}
	}
}

// TestShardedStormVirtualClockInvariant: the sharded event storm schedules
// every hand-off at now+1µs regardless of placement, so the virtual schedule
// — and in particular the final clock — must be identical at every shard
// count. Only the host-core spread may differ.
func TestShardedStormVirtualClockInvariant(t *testing.T) {
	base := EventStormSharded(32, 40, 1)
	for _, shards := range []int{2, 4} {
		r := EventStormSharded(32, 40, shards)
		if r.VirtualMS != base.VirtualMS {
			t.Errorf("shards=%d: virtual clock %.6f ms != shards=1 %.6f ms",
				shards, r.VirtualMS, base.VirtualMS)
		}
	}
}
