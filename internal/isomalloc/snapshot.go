package isomalloc

import "fmt"

// State is the allocator's serializable state: the per-node bump cursors,
// the live allocations, and the per-node free lists. Free lists keep their
// insertion order — Alloc reuses them first-fit in that order, so restoring
// them out of order would change which range a post-restore allocation gets.
type State struct {
	Next   []Addr    `json:"next"`
	Allocs []Range   `json:"allocs"`
	Freed  [][]Range `json:"freed"`
}

// Capture snapshots the allocator.
func (a *Allocator) Capture() State {
	s := State{
		Next:   append([]Addr(nil), a.next...),
		Allocs: a.Live(),
		Freed:  make([][]Range, a.nodes),
	}
	for n := 0; n < a.nodes; n++ {
		for _, r := range a.freed[n] {
			s.Freed[n] = append(s.Freed[n], *r)
		}
	}
	return s
}

// Restore installs a captured state into an allocator of the same geometry,
// replacing whatever it held.
func (a *Allocator) Restore(s State) error {
	if len(s.Next) != a.nodes || len(s.Freed) != a.nodes {
		return fmt.Errorf("isomalloc: restore of %d-node state into %d-node allocator", len(s.Next), a.nodes)
	}
	a.next = append([]Addr(nil), s.Next...)
	a.allocs = make(map[Addr]*Range, len(s.Allocs))
	for _, r := range s.Allocs {
		r := r
		a.allocs[r.Base] = &r
	}
	a.freed = make(map[int][]*Range)
	for n, fl := range s.Freed {
		for _, r := range fl {
			r := r
			a.freed[n] = append(a.freed[n], &r)
		}
	}
	return nil
}
