// Package isomalloc implements PM2's iso-address dynamic allocation scheme.
//
// The isomalloc routine guarantees that a range of virtual addresses
// allocated by a thread on one node is left free on every other node, so a
// migrating thread finds its stack and dynamically allocated data at the same
// virtual address on the destination node, and all its pointers stay valid
// (Antoniu, Bougé, Namyst, RTSPP '99; Section 2.1 of the paper).
//
// Here the shared virtual address space is simulated: Addr is an offset into
// a global space that every node backs with its own page frames. The
// allocator partitions the space into per-node slices so allocations made on
// different nodes can never collide, and hands out page-aligned ranges.
package isomalloc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Addr is a simulated virtual address in the global iso-address space.
type Addr uint64

// ErrOutOfSlice reports that a node exhausted its slice of the iso-address
// space.
var ErrOutOfSlice = errors.New("isomalloc: node address slice exhausted")

// ErrBadFree reports a Free of an address that was never allocated.
var ErrBadFree = errors.New("isomalloc: free of unallocated address")

// Range is an allocated region of the iso-address space.
type Range struct {
	Base Addr
	Size int // bytes, always a multiple of the page size
	Node int // node the allocation was made on
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Allocator carves a global address space into per-node slices and serves
// page-aligned allocations from them. mu guards the allocation tables: on a
// sharded machine, threads on different event-loop shards may allocate
// concurrently, and each node's slice keeps the results disjoint whatever
// order the host grants the lock in. OwnerSlice and sliceBase are pure
// arithmetic and take no lock.
type Allocator struct {
	pageSize  int
	sliceSize Addr
	nodes     int

	mu     sync.Mutex
	next   []Addr           // per node: next free address in its slice
	allocs map[Addr]*Range  // live allocations by base address
	freed  map[int][]*Range // per node free lists for reuse
}

// SliceBytes is the size of each node's slice of the iso-address space.
// 1 GiB per node comfortably exceeds anything the experiments allocate.
const SliceBytes = 1 << 30

// StaticBase is where the static DSM data segment (the paper's
// BEGIN_DSM_DATA/END_DSM_DATA block) is mapped. It lives below every node
// slice so it can never collide with dynamic allocations.
const StaticBase Addr = 0x1000

// New creates an allocator for nodes nodes with the given page size.
func New(nodes, pageSize int) *Allocator {
	if nodes < 1 || pageSize < 1 {
		panic("isomalloc: invalid allocator geometry")
	}
	a := &Allocator{
		pageSize:  pageSize,
		sliceSize: SliceBytes,
		nodes:     nodes,
		next:      make([]Addr, nodes),
		allocs:    make(map[Addr]*Range),
		freed:     make(map[int][]*Range),
	}
	for n := 0; n < nodes; n++ {
		a.next[n] = a.sliceBase(n)
	}
	return a
}

// sliceBase returns the first address of node n's slice. Slice 0 starts at
// 1 GiB, leaving the low gigabyte for the static segment.
func (a *Allocator) sliceBase(n int) Addr {
	return Addr(n+1) * a.sliceSize
}

// PageSize returns the allocator's page size.
func (a *Allocator) PageSize() int { return a.pageSize }

// roundUp rounds size up to a whole number of pages.
func (a *Allocator) roundUp(size int) int {
	pages := (size + a.pageSize - 1) / a.pageSize
	if pages == 0 {
		pages = 1
	}
	return pages * a.pageSize
}

// Alloc reserves size bytes (rounded up to whole pages) in node's slice of
// the iso-address space and returns the range. The same range is implicitly
// reserved on every other node: no other node's allocations can ever fall in
// this node's slice.
func (a *Allocator) Alloc(node, size int) (Range, error) {
	if node < 0 || node >= a.nodes {
		return Range{}, fmt.Errorf("isomalloc: node %d out of range [0,%d)", node, a.nodes)
	}
	if size <= 0 {
		return Range{}, fmt.Errorf("isomalloc: invalid allocation size %d", size)
	}
	size = a.roundUp(size)
	a.mu.Lock()
	defer a.mu.Unlock()

	// First-fit from the free list, to exercise reuse.
	fl := a.freed[node]
	for i, r := range fl {
		if r.Size >= size {
			a.freed[node] = append(fl[:i], fl[i+1:]...)
			got := Range{Base: r.Base, Size: size, Node: node}
			if r.Size > size {
				rest := &Range{Base: r.Base + Addr(size), Size: r.Size - size, Node: node}
				a.freed[node] = append(a.freed[node], rest)
			}
			a.allocs[got.Base] = &got
			return got, nil
		}
	}

	base := a.next[node]
	end := base + Addr(size)
	if end > a.sliceBase(node)+a.sliceSize {
		return Range{}, ErrOutOfSlice
	}
	a.next[node] = end
	r := Range{Base: base, Size: size, Node: node}
	a.allocs[base] = &r
	return r, nil
}

// Free releases a previously allocated range for reuse on its node.
func (a *Allocator) Free(base Addr) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.allocs[base]
	if !ok {
		return ErrBadFree
	}
	delete(a.allocs, base)
	a.freed[r.Node] = append(a.freed[r.Node], r)
	return nil
}

// Lookup returns the live allocation containing a, if any.
func (a *Allocator) Lookup(addr Addr) (Range, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Allocation count is small in practice; a linear scan keeps the
	// structure simple. (The page table, not this map, is the hot path.)
	for _, r := range a.allocs {
		if r.Contains(addr) {
			return *r, true
		}
	}
	return Range{}, false
}

// OwnerSlice returns which node's slice addr falls in, or -1 for the static
// segment below the first slice.
func (a *Allocator) OwnerSlice(addr Addr) int {
	if addr < a.sliceBase(0) {
		return -1
	}
	n := int(addr/a.sliceSize) - 1
	if n >= a.nodes {
		return -1
	}
	return n
}

// Live returns all live allocations sorted by base address.
func (a *Allocator) Live() []Range {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Range, 0, len(a.allocs))
	for _, r := range a.allocs {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}
