package isomalloc

import "testing"

// Table-driven alignment tests: every allocation must be page-rounded and
// page-aligned for any page size, including the degenerate 1-byte page.
func TestAllocAlignmentTable(t *testing.T) {
	cases := []struct {
		name     string
		pageSize int
		request  int
		wantSize int
	}{
		{"one-byte", 4096, 1, 4096},
		{"page-minus-one", 4096, 4095, 4096},
		{"exact-page", 4096, 4096, 4096},
		{"page-plus-one", 4096, 4097, 8192},
		{"two-pages", 4096, 8192, 8192},
		{"large-odd", 4096, 3*4096 + 17, 4 * 4096},
		{"small-pages", 256, 300, 512},
		{"tiny-page-size", 1, 7, 7},
		{"big-page-size", 1 << 16, 1, 1 << 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := New(2, tc.pageSize)
			r, err := a.Alloc(1, tc.request)
			if err != nil {
				t.Fatal(err)
			}
			if r.Size != tc.wantSize {
				t.Fatalf("Alloc(%d) size = %d, want %d", tc.request, r.Size, tc.wantSize)
			}
			if int(r.Base)%tc.pageSize != 0 {
				t.Fatalf("base %#x not aligned to page size %d", r.Base, tc.pageSize)
			}
			if r.Node != 1 {
				t.Fatalf("range node = %d, want 1", r.Node)
			}
		})
	}
}

// Table-driven OwnerSlice edges: the static segment below slice 0, the first
// and last byte of each slice, and addresses past the last slice.
func TestOwnerSliceEdgesTable(t *testing.T) {
	const nodes = 3
	a := New(nodes, 4096)
	slice := func(n int) Addr { return Addr(n+1) * SliceBytes }
	cases := []struct {
		name string
		addr Addr
		want int
	}{
		{"zero", 0, -1},
		{"static-base", StaticBase, -1},
		{"below-first-slice", slice(0) - 1, -1},
		{"first-slice-first-byte", slice(0), 0},
		{"first-slice-last-byte", slice(1) - 1, 0},
		{"second-slice-first-byte", slice(1), 1},
		{"last-slice-last-byte", slice(nodes) - 1, nodes - 1},
		{"past-last-slice", slice(nodes), -1},
		{"far-past", slice(nodes) + 12345678, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.OwnerSlice(tc.addr); got != tc.want {
				t.Fatalf("OwnerSlice(%#x) = %d, want %d", tc.addr, got, tc.want)
			}
		})
	}
}

// TestSliceExhaustion: a node's slice is finite, exhausting it reports
// ErrOutOfSlice, and other nodes' slices are unaffected.
func TestSliceExhaustion(t *testing.T) {
	a := New(2, 4096)
	if _, err := a.Alloc(0, SliceBytes); err != nil {
		t.Fatalf("whole-slice allocation failed: %v", err)
	}
	if _, err := a.Alloc(0, 4096); err != ErrOutOfSlice {
		t.Fatalf("allocation past slice end returned %v, want ErrOutOfSlice", err)
	}
	if _, err := a.Alloc(1, 4096); err != nil {
		t.Fatalf("node 1 affected by node 0's exhaustion: %v", err)
	}
	// An oversized single request fails up front without burning the slice.
	b := New(1, 4096)
	if _, err := b.Alloc(0, SliceBytes+4096); err != ErrOutOfSlice {
		t.Fatalf("oversized allocation returned %v, want ErrOutOfSlice", err)
	}
	if _, err := b.Alloc(0, 4096); err != nil {
		t.Fatalf("slice unusable after oversized attempt: %v", err)
	}
}

// Table-driven Range boundary semantics: Contains is [Base, End).
func TestRangeContainsTable(t *testing.T) {
	r := Range{Base: 0x40000000, Size: 8192, Node: 0}
	cases := []struct {
		name string
		addr Addr
		want bool
	}{
		{"below", r.Base - 1, false},
		{"first-byte", r.Base, true},
		{"interior", r.Base + 4096, true},
		{"last-byte", r.End() - 1, true},
		{"end", r.End(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.Contains(tc.addr); got != tc.want {
				t.Fatalf("Contains(%#x) = %v, want %v", tc.addr, got, tc.want)
			}
		})
	}
}

// TestLookupBoundaries: Lookup resolves first/last bytes of a live range,
// misses freed ranges, and Live stays sorted by base.
func TestLookupBoundaries(t *testing.T) {
	a := New(2, 4096)
	r1, _ := a.Alloc(0, 4096)
	r2, _ := a.Alloc(1, 8192)
	if got, ok := a.Lookup(r2.Base); !ok || got.Base != r2.Base {
		t.Fatalf("Lookup(first byte) = %+v %v", got, ok)
	}
	if got, ok := a.Lookup(r2.End() - 1); !ok || got.Base != r2.Base {
		t.Fatalf("Lookup(last byte) = %+v %v", got, ok)
	}
	if _, ok := a.Lookup(r1.Base - 1); ok {
		t.Fatal("Lookup below range succeeded")
	}
	live := a.Live()
	if len(live) != 2 || live[0].Base != r1.Base || live[1].Base != r2.Base {
		t.Fatalf("Live() = %+v", live)
	}
	if err := a.Free(r1.Base); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup(r1.Base); ok {
		t.Fatal("Lookup found freed range")
	}
	if live := a.Live(); len(live) != 1 || live[0].Base != r2.Base {
		t.Fatalf("Live() after free = %+v", live)
	}
}

// TestFreeListFirstFit: the free list serves the first block that fits, in
// free order, splitting larger blocks and keeping remainders reusable.
func TestFreeListFirstFit(t *testing.T) {
	a := New(1, 4096)
	small, _ := a.Alloc(0, 4096)
	big, _ := a.Alloc(0, 3*4096)
	tail, _ := a.Alloc(0, 4096)
	a.Free(small.Base)
	a.Free(big.Base)
	// A 2-page request skips the 1-page hole and splits the 3-page block.
	r, err := a.Alloc(0, 2*4096)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base != big.Base {
		t.Fatalf("first-fit picked %#x, want the split of %#x", r.Base, big.Base)
	}
	// The remainder of the split and the original small hole both serve
	// subsequent 1-page requests before any fresh address is carved.
	r2, _ := a.Alloc(0, 4096)
	r3, _ := a.Alloc(0, 4096)
	bases := map[Addr]bool{r2.Base: true, r3.Base: true}
	if !bases[small.Base] || !bases[big.Base+2*4096] {
		t.Fatalf("holes not reused: got %#x and %#x, want %#x and %#x",
			r2.Base, r3.Base, small.Base, big.Base+2*4096)
	}
	if next, _ := a.Alloc(0, 4096); next.Base != tail.End() {
		t.Fatalf("fresh carve at %#x, want %#x (past the last allocation)", next.Base, tail.End())
	}
}
