package isomalloc

import (
	"testing"
	"testing/quick"
)

func TestAllocPageAligned(t *testing.T) {
	a := New(4, 4096)
	r, err := a.Alloc(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 4096 {
		t.Fatalf("100-byte alloc rounded to %d, want 4096", r.Size)
	}
	if r.Base%4096 != 0 {
		t.Fatalf("base %#x not page aligned", r.Base)
	}
}

func TestAllocDistinctRanges(t *testing.T) {
	a := New(2, 4096)
	r1, _ := a.Alloc(0, 4096)
	r2, _ := a.Alloc(0, 8192)
	if r1.End() > r2.Base && r2.End() > r1.Base {
		t.Fatalf("overlapping allocations %+v %+v", r1, r2)
	}
}

func TestCrossNodeSlicesDisjoint(t *testing.T) {
	a := New(4, 4096)
	var ranges []Range
	for n := 0; n < 4; n++ {
		for i := 0; i < 8; i++ {
			r, err := a.Alloc(n, 4096*(i+1))
			if err != nil {
				t.Fatal(err)
			}
			ranges = append(ranges, r)
		}
	}
	for i := range ranges {
		for j := i + 1; j < len(ranges); j++ {
			if ranges[i].End() > ranges[j].Base && ranges[j].End() > ranges[i].Base {
				t.Fatalf("iso-address violation: %+v overlaps %+v", ranges[i], ranges[j])
			}
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := New(1, 4096)
	r1, _ := a.Alloc(0, 4096)
	if err := a.Free(r1.Base); err != nil {
		t.Fatal(err)
	}
	r2, _ := a.Alloc(0, 4096)
	if r2.Base != r1.Base {
		t.Fatalf("freed range not reused: got %#x, want %#x", r2.Base, r1.Base)
	}
}

func TestFreeSplitsLargeBlock(t *testing.T) {
	a := New(1, 4096)
	r1, _ := a.Alloc(0, 4*4096)
	a.Free(r1.Base)
	r2, _ := a.Alloc(0, 4096)
	r3, _ := a.Alloc(0, 4096)
	if r2.Base != r1.Base {
		t.Fatalf("first-fit did not reuse freed block")
	}
	if r3.Base != r1.Base+4096 {
		t.Fatalf("split remainder not reused: got %#x", r3.Base)
	}
}

func TestDoubleFree(t *testing.T) {
	a := New(1, 4096)
	r, _ := a.Alloc(0, 4096)
	if err := a.Free(r.Base); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(r.Base); err != ErrBadFree {
		t.Fatalf("double free returned %v, want ErrBadFree", err)
	}
}

func TestBadArgs(t *testing.T) {
	a := New(2, 4096)
	if _, err := a.Alloc(5, 4096); err == nil {
		t.Error("alloc on bad node succeeded")
	}
	if _, err := a.Alloc(0, 0); err == nil {
		t.Error("zero-size alloc succeeded")
	}
	if _, err := a.Alloc(0, -4); err == nil {
		t.Error("negative-size alloc succeeded")
	}
}

func TestLookup(t *testing.T) {
	a := New(2, 4096)
	r, _ := a.Alloc(1, 8192)
	got, ok := a.Lookup(r.Base + 5000)
	if !ok || got.Base != r.Base {
		t.Fatalf("lookup inside range failed: %+v %v", got, ok)
	}
	if _, ok := a.Lookup(r.End()); ok {
		t.Fatal("lookup past end succeeded")
	}
}

func TestOwnerSlice(t *testing.T) {
	a := New(3, 4096)
	for n := 0; n < 3; n++ {
		r, _ := a.Alloc(n, 4096)
		if got := a.OwnerSlice(r.Base); got != n {
			t.Fatalf("OwnerSlice(%#x) = %d, want %d", r.Base, got, n)
		}
	}
	if a.OwnerSlice(StaticBase) != -1 {
		t.Fatal("static base attributed to a node slice")
	}
}

func TestLiveSorted(t *testing.T) {
	a := New(2, 4096)
	a.Alloc(1, 4096)
	a.Alloc(0, 4096)
	a.Alloc(0, 4096)
	live := a.Live()
	if len(live) != 3 {
		t.Fatalf("live count = %d, want 3", len(live))
	}
	for i := 1; i < len(live); i++ {
		if live[i].Base < live[i-1].Base {
			t.Fatal("Live() not sorted")
		}
	}
}

// Property: any sequence of allocations across nodes yields pairwise-disjoint
// page-aligned ranges.
func TestDisjointnessProperty(t *testing.T) {
	f := func(sizes []uint16, nodes []uint8) bool {
		a := New(4, 4096)
		var got []Range
		for i, s := range sizes {
			if i >= len(nodes) || i > 32 {
				break
			}
			size := int(s)%65536 + 1
			r, err := a.Alloc(int(nodes[i])%4, size)
			if err != nil {
				return false
			}
			if r.Base%4096 != 0 || r.Size%4096 != 0 {
				return false
			}
			got = append(got, r)
		}
		for i := range got {
			for j := i + 1; j < len(got); j++ {
				if got[i].End() > got[j].Base && got[j].End() > got[i].Base {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
