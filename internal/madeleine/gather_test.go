package madeleine

import (
	"testing"

	"dsmpm2/internal/sim"
)

// TestSendGatherScatters checks the basic contract: one envelope, parts
// delivered to their per-channel queues in part order, counters split
// between messages (per part) and envelopes (per batch).
func TestSendGatherScatters(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	a, b := nw.ChannelID("a"), nw.ChannelID("b")
	var got []string
	eng.Go("recv", func(p *sim.Proc) {
		m1 := nw.RecvID(p, 1, a)
		got = append(got, m1.Payload.(string))
		nw.FreeMessage(m1)
		m2 := nw.RecvID(p, 1, a)
		got = append(got, m2.Payload.(string))
		nw.FreeMessage(m2)
		m3 := nw.RecvID(p, 1, b)
		got = append(got, m3.Payload.(string))
		nw.FreeMessage(m3)
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendGather(0, 1, []GatherPart{
			{Chan: a, Size: 64, Payload: "a1"},
			{Chan: a, Size: 64, Payload: "a2"},
			{Chan: b, Size: 4096, Payload: "b1"},
		}, 10*sim.Microsecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a1" || got[1] != "a2" || got[2] != "b1" {
		t.Fatalf("received %v, want [a1 a2 b1] in order", got)
	}
	if msgs, _ := nw.Stats(); msgs != 3 {
		t.Fatalf("message count = %d, want 3 (one per part)", msgs)
	}
	if nw.Envelopes() != 1 {
		t.Fatalf("envelope count = %d, want 1 (one per batch)", nw.Envelopes())
	}
}

// TestGatherSingleDeparture checks the scatter/gather contention contract:
// a multi-part envelope crosses the link occupancy model once (its summed
// size — zero queueing among its own parts), while the same parts sent
// individually queue FIFO behind each other on the busy link.
func TestGatherSingleDeparture(t *testing.T) {
	run := func(gather bool) LinkStats {
		eng := sim.NewEngine(1)
		nw := NewNetwork(eng, BIPMyrinet, 2)
		nw.SetLinkContention(true)
		ch := nw.ChannelID("ch")
		eng.Go("recv", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				nw.FreeMessage(nw.RecvID(p, 1, ch))
			}
		})
		eng.Go("send", func(p *sim.Proc) {
			if gather {
				nw.SendGather(0, 1, []GatherPart{
					{Chan: ch, Size: 4096, Payload: 1},
					{Chan: ch, Size: 4096, Payload: 2},
					{Chan: ch, Size: 4096, Payload: 3},
				}, BIPMyrinet.Transfer(3*4096))
			} else {
				for i := 0; i < 3; i++ {
					nw.SendBulkID(0, 1, ch, 4096, i)
				}
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return nw.LinkStats()
	}
	if ls := run(true); ls.Waits != 0 {
		t.Fatalf("gather queued %d times on its own link; a batch is one departure", ls.Waits)
	}
	if ls := run(false); ls.Waits != 2 {
		t.Fatalf("loose sends queued %d times, want 2 (each part behind its predecessor)", ls.Waits)
	}
}

// TestGatherDeadNodeReclaimsOnce is the mid-batch kill regression test: a
// multi-part envelope whose destination is dead must reclaim every pooled
// part exactly once — each inner payload reaches the drop handler once, and
// the freed Message envelopes come back out of the pool as distinct values.
func TestGatherDeadNodeReclaimsOnce(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 3)
	nw.EnableFaults(1, PartitionQueue)
	seen := map[interface{}]int{}
	nw.SetDropHandler(func(p interface{}) { seen[p]++ })
	nw.CrashNode(1)

	ch := nw.ChannelID("ch")
	p1, p2, p3 := &struct{ int }{1}, &struct{ int }{2}, &struct{ int }{3}
	eng.Go("send", func(p *sim.Proc) {
		nw.SendGather(0, 1, []GatherPart{
			{Chan: ch, Size: 64, Payload: p1},
			{Chan: ch, Size: 64, Payload: p2},
			{Chan: ch, Size: 4096, Payload: p3},
		}, 10*sim.Microsecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[p1] != 1 || seen[p2] != 1 || seen[p3] != 1 {
		t.Fatalf("drop handler counts = %v, want each of the 3 parts exactly once", seen)
	}
	if nw.FaultStats().DeadDrops != 1 {
		t.Fatalf("DeadDrops = %d, want 1 (the envelope is one wire unit)", nw.FaultStats().DeadDrops)
	}

	// Freelist integrity: the three reclaimed envelopes must come back out
	// as three distinct Messages. A double Put would hand one pointer out
	// twice.
	var got []*Message
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, nw.RecvID(p, 2, ch))
		}
	})
	eng.Go("send2", func(p *sim.Proc) {
		nw.SendGather(0, 2, []GatherPart{
			{Chan: ch, Size: 64, Payload: "x"},
			{Chan: ch, Size: 64, Payload: "y"},
			{Chan: ch, Size: 64, Payload: "z"},
		}, 10*sim.Microsecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] == got[1] || got[1] == got[2] || got[0] == got[2] {
		t.Fatal("freelist handed out one envelope twice: a gather part was double-freed")
	}
}

// TestGatherPartitionHoldsWholeEnvelope: a queueing partition parks the
// envelope as a unit; healing re-injects every part (in order), and a crash
// while held reclaims every part exactly once.
func TestGatherPartitionHoldsWholeEnvelope(t *testing.T) {
	t.Run("heal", func(t *testing.T) {
		eng := sim.NewEngine(1)
		nw := NewNetwork(eng, BIPMyrinet, 2)
		nw.EnableFaults(1, PartitionQueue)
		nw.PartitionLink(0, 1)
		ch := nw.ChannelID("ch")
		var got []interface{}
		eng.Go("recv", func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				m := nw.RecvID(p, 1, ch)
				got = append(got, m.Payload)
				nw.FreeMessage(m)
			}
		})
		eng.Go("drive", func(p *sim.Proc) {
			nw.SendGather(0, 1, []GatherPart{
				{Chan: ch, Size: 64, Payload: "one"},
				{Chan: ch, Size: 64, Payload: "two"},
			}, 5*sim.Microsecond)
			p.Advance(100 * sim.Microsecond)
			if nw.FaultStats().Held != 1 {
				t.Errorf("Held = %d, want 1 (the envelope held as a unit)", nw.FaultStats().Held)
			}
			nw.HealLink(0, 1)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != "one" || got[1] != "two" {
			t.Fatalf("after heal received %v, want [one two]", got)
		}
	})
	t.Run("crash-while-held", func(t *testing.T) {
		eng := sim.NewEngine(1)
		nw := NewNetwork(eng, BIPMyrinet, 2)
		nw.EnableFaults(1, PartitionQueue)
		nw.PartitionLink(0, 1)
		ch := nw.ChannelID("ch")
		seen := map[interface{}]int{}
		nw.SetDropHandler(func(p interface{}) { seen[p]++ })
		pa, pb := &struct{ int }{1}, &struct{ int }{2}
		eng.Go("drive", func(p *sim.Proc) {
			nw.SendGather(0, 1, []GatherPart{
				{Chan: ch, Size: 64, Payload: pa},
				{Chan: ch, Size: 64, Payload: pb},
			}, 5*sim.Microsecond)
			p.Advance(100 * sim.Microsecond)
			nw.CrashNode(1) // envelope still parked on the partitioned link
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if len(seen) != 2 || seen[pa] != 1 || seen[pb] != 1 {
			t.Fatalf("drop handler counts = %v, want both parts exactly once", seen)
		}
	})
}
