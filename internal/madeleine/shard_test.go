package madeleine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"dsmpm2/internal/sim"
)

// shardedNet builds a 2-cluster hierarchical network over a 2-shard engine:
// nodes 0,1 on shard 0 (BIP/Myrinet intra), nodes 2,3 on shard 1, clusters
// joined by the slow TCP backbone whose CtrlMsg latency is the lookahead.
func shardedNet(t *testing.T, seed int64) (*sim.ShardedEngine, *Network, []int) {
	t.Helper()
	cluster := EvenClusters(4, 2)
	topo := NewHierarchical(cluster, BIPMyrinet, TCPFastEthernet)
	se := sim.NewShardedEngine(seed, 2, TCPFastEthernet.CtrlMsg)
	nw := NewNetworkTopology(se.Shard(0), topo, 4)
	nw.BindSharded(se, cluster)
	return se, nw, cluster
}

// crossPeer maps each node to its partner in the other cluster.
func crossPeer(n int) int { return (n + 2) % 4 }

// runPingPong spawns one proc per node that ping-pongs rounds control
// messages with its cross-cluster peer and returns a per-node trace
// fingerprint. Nodes 0,1 serve; nodes 2,3 initiate.
func runPingPong(t *testing.T, seed int64, rounds int) (string, int) {
	t.Helper()
	se, nw, cluster := shardedNet(t, seed)
	traces := make([]string, 4)
	chID := nw.ChannelID("pp")
	for n := 0; n < 4; n++ {
		n := n
		eng := se.Shard(cluster[n])
		eng.Go(fmt.Sprintf("node%d", n), func(p *sim.Proc) {
			var sb strings.Builder
			if n >= 2 { // initiator: send first
				nw.SendCtrl(n, crossPeer(n), "pp", n*1000)
			}
			for i := 0; i < rounds; i++ {
				m := nw.RecvID(p, n, chID)
				fmt.Fprintf(&sb, "%v:%v;", p.Now(), m.Payload)
				reply := m.Payload.(int) + 1
				from := m.From
				nw.FreeMessage(m)
				if n < 2 || i < rounds-1 {
					nw.SendCtrl(n, from, "pp", reply)
				}
			}
			traces[n] = sb.String()
		})
	}
	if err := se.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := sha256.New()
	for _, tr := range traces {
		h.Write([]byte(tr))
		h.Write([]byte{0})
	}
	msgs, _ := nw.Stats()
	return hex.EncodeToString(h.Sum(nil)), msgs
}

// TestShardedNetworkPingPong: cross-shard control traffic completes, counts
// are exact, and repeated runs produce identical traces.
func TestShardedNetworkPingPong(t *testing.T) {
	const rounds = 8
	fp0, msgs := runPingPong(t, 42, rounds)
	// Per pair: the initiator sends its opener plus rounds-1 replies, the
	// server replies to every one of its rounds receipts — 2*rounds
	// messages each for two pairs.
	want := 4 * rounds
	if msgs != want {
		t.Fatalf("messages = %d, want %d", msgs, want)
	}
	for trial := 0; trial < 5; trial++ {
		fp, _ := runPingPong(t, 42, rounds)
		if fp != fp0 {
			t.Fatalf("trial %d fingerprint %s != %s", trial, fp, fp0)
		}
	}
}

// TestShardedNetworkGather: a multi-part envelope crossing the backbone
// scatters to per-channel queues on the destination shard.
func TestShardedNetworkGather(t *testing.T) {
	se, nw, _ := shardedNet(t, 7)
	a, b := nw.ChannelID("a"), nw.ChannelID("b")
	got := make(map[string]int)
	se.Shard(1).Go("recv", func(p *sim.Proc) {
		ma := nw.RecvID(p, 2, a)
		mb := nw.RecvID(p, 2, b)
		got["a"] = ma.Payload.(int)
		got["b"] = mb.Payload.(int)
		if p.Now() <= 0 {
			t.Errorf("gather delivered at t=0")
		}
	})
	se.Shard(0).Go("send", func(p *sim.Proc) {
		d := nw.Link(0, 2).Transfer(4096 + 64)
		nw.SendGather(0, 2, []GatherPart{
			{Chan: a, Size: 4096, Payload: 11},
			{Chan: b, Size: 64, Payload: 22},
		}, d)
	})
	if err := se.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got["a"] != 11 || got["b"] != 22 {
		t.Fatalf("gather parts = %v, want a:11 b:22", got)
	}
	if nw.Envelopes() != 1 {
		t.Fatalf("Envelopes = %d, want 1", nw.Envelopes())
	}
}

// TestShardedNetworkFaultPlan: a crash/restart plan fanned out through
// ShardedEngine.InjectFaults flips every shard's dead view at the right
// virtual time — sends from the remote shard drop while the node is down
// and flow again after restart.
func TestShardedNetworkFaultPlan(t *testing.T) {
	se, nw, _ := shardedNet(t, 9)
	nw.EnableFaults(1, PartitionQueue)
	crashAt := sim.Time(0).Add(sim.Micros(2000))
	restartAt := sim.Time(0).Add(sim.Micros(4000))
	plan := (&sim.FaultPlan{Seed: 1}).Crash(crashAt, 2).Restart(restartAt, 2)
	se.InjectFaults(plan, func(shard int, ev sim.FaultEvent) { nw.ApplyFault(shard, ev) })

	// Node 0 (shard 0) sends one ctrl message to node 2 (shard 1) every
	// 500us for 12 ticks: t=0.5ms..6ms.
	se.Shard(0).Go("sender", func(p *sim.Proc) {
		for i := 1; i <= 12; i++ {
			p.Advance(sim.Micros(500))
			nw.SendCtrl(0, 2, "data", i)
		}
	})
	// Node 2 polls its queue (a blocked Recv would park forever across the
	// crash, since the crash orphans the queue it waits on).
	var got []int
	se.Shard(1).Go("receiver", func(p *sim.Proc) {
		end := sim.Time(0).Add(sim.Micros(8000))
		for p.Now() < end {
			p.Advance(sim.Micros(100))
			for {
				m, ok := nw.TryRecv(2, "data")
				if !ok {
					break
				}
				got = append(got, m.Payload.(int))
				nw.FreeMessage(m)
			}
		}
	})
	if err := se.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Ticks 1-3 land before the crash (send at 1.5ms arrives ~1.72ms);
	// ticks sent in [2ms,4ms) are dead-dropped at node 0's interface;
	// ticks from 4ms on flow again.
	if len(got) == 0 {
		t.Fatal("receiver saw no messages")
	}
	st := nw.FaultStats()
	if st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("Crashes/Restarts = %d/%d, want 1/1", st.Crashes, st.Restarts)
	}
	if st.DeadDrops == 0 {
		t.Fatalf("no dead drops recorded across the crash window: %+v", st)
	}
	for _, v := range got {
		sentAt := sim.Time(0).Add(sim.Micros(500 * float64(v)))
		if sentAt >= crashAt && sentAt < restartAt {
			t.Fatalf("message %d sent at %v inside the crash window was delivered", v, sentAt)
		}
	}
	if got[len(got)-1] != 12 {
		t.Fatalf("last delivered tick = %d, want 12 (post-restart traffic must flow)", got[len(got)-1])
	}
}

// TestShardedNetworkDirectMutatorsPanic: the single-loop fault mutators are
// rejected on a sharded network (they would touch one shard's state from an
// arbitrary goroutine).
func TestShardedNetworkDirectMutatorsPanic(t *testing.T) {
	se, nw, _ := shardedNet(t, 3)
	_ = se
	nw.EnableFaults(1, PartitionQueue)
	defer func() {
		if recover() == nil {
			t.Fatal("CrashNode on a sharded network did not panic")
		}
	}()
	nw.CrashNode(1)
}
