package madeleine

import (
	"testing"

	"dsmpm2/internal/sim"
)

// TestDeadNodeDropFreesOnce is the regression test for the pooled-envelope
// discipline on the death paths: a message dropped because its destination
// is dead must return its *Message envelope to the freelist exactly once and
// hand its payload to the drop handler exactly once. A double Put would
// surface as two later sends sharing one envelope.
func TestDeadNodeDropFreesOnce(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 3)
	nw.EnableFaults(1, PartitionQueue)
	var dropped []interface{}
	nw.SetDropHandler(func(p interface{}) { dropped = append(dropped, p) })
	nw.CrashNode(1)

	payloadA, payloadB := &struct{ int }{1}, &struct{ int }{2}
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "ch", payloadA) // dropped: dest dead
		nw.SendCtrl(0, 1, "ch", payloadB) // dropped: dest dead
		// SendDirect to a dead node exercises the direct-path drop too;
		// its payload is not a pooled Message, only the handler runs.
		nw.SendDirect(0, 1, new(sim.Chan), 64, "direct", 0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 3 || dropped[0] != payloadA || dropped[1] != payloadB || dropped[2] != "direct" {
		t.Fatalf("drop handler saw %v, want exactly [payloadA payloadB direct]", dropped)
	}

	// Freelist integrity: two live sends must come out as two distinct
	// envelopes. If the two drops above had double-freed one envelope, the
	// freelist would now hand the same *Message out twice.
	var got []*Message
	eng2 := eng // same engine; network state persists
	eng2.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			got = append(got, nw.Recv(p, 2, "live"))
		}
	})
	eng2.Go("send2", func(p *sim.Proc) {
		nw.SendCtrl(0, 2, "live", nil)
		nw.SendCtrl(0, 2, "live", nil)
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("freelist corrupted: two in-flight sends share one envelope (%p, %p)", got[0], got[1])
	}
	if st := nw.FaultStats(); st.DeadDrops != 3 {
		t.Fatalf("DeadDrops = %d, want 3", st.DeadDrops)
	}
}

// TestCrashPurgesQueuedMessages: messages already delivered to a node's
// queues when it crashes are reclaimed (envelope freed, payload dropped),
// and messages in flight at crash time land in the orphaned queues of the
// dead incarnation, never in the restarted node's fresh queues.
func TestCrashPurgesQueuedMessages(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	nw.EnableFaults(1, PartitionQueue)
	var dropped []interface{}
	nw.SetDropHandler(func(p interface{}) { dropped = append(dropped, p) })

	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "ch", "queued") // delivered, then crash purges it
		p.Advance(sim.Millisecond)
		nw.SendCtrl(0, 1, "ch", "inflight") // departs; node dies before arrival
		p.Advance(10 * sim.Microsecond)     // after departure, before delivery
		nw.CrashNode(1)
		p.Advance(sim.Millisecond)
		nw.RestartNode(1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != "queued" {
		t.Fatalf("crash purge dropped %v, want [queued]", dropped)
	}
	// The in-flight message must not be receivable by the new incarnation.
	if _, ok := nw.TryRecv(1, "ch"); ok {
		t.Fatal("restarted node received a message sent to its dead incarnation")
	}
}

// TestPartitionQueueHoldsAndHeals: with the queue policy, messages sent over
// a partitioned link arrive after the heal, in order, and the held time is
// accounted.
func TestPartitionQueueHoldsAndHeals(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	nw.EnableFaults(1, PartitionQueue)
	nw.PartitionLink(0, 1)

	var arrivals []sim.Time
	var order []interface{}
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			m := nw.Recv(p, 1, "ch")
			arrivals = append(arrivals, p.Now())
			order = append(order, m.Payload)
		}
	})
	healAt := sim.Time(0).Add(5 * sim.Millisecond)
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "ch", "first")
		nw.SendCtrl(0, 1, "ch", "second")
		p.Advance(5 * sim.Millisecond)
		nw.HealLink(0, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("FIFO violated across heal: %v", order)
	}
	for _, at := range arrivals {
		if at < healAt {
			t.Fatalf("message arrived at %v, before the heal at %v", at, healAt)
		}
	}
	st := nw.FaultStats()
	if st.Held != 2 || st.HeldTime <= 0 {
		t.Fatalf("hold accounting: %+v", st)
	}
}

// TestCrashDropsHeldMessagesFromCorpse: a message held on a partitioned
// link whose SENDER then crashes must never be delivered after the heal —
// fail-stop means nothing sent by the dead incarnation surfaces later, even
// if the sender has since restarted.
func TestCrashDropsHeldMessagesFromCorpse(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	nw.EnableFaults(1, PartitionQueue)
	var dropped int
	nw.SetDropHandler(func(interface{}) { dropped++ })
	eng.Go("driver", func(p *sim.Proc) {
		nw.PartitionLink(0, 1)
		nw.SendCtrl(0, 1, "ch", "ghost") // held on the partitioned link
		p.Advance(sim.Millisecond)
		nw.CrashNode(0) // sender dies with its message still held
		p.Advance(sim.Millisecond)
		nw.RestartNode(0)
		nw.HealLink(0, 1)
		p.Advance(10 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.TryRecv(1, "ch"); ok {
		t.Fatal("a dead incarnation's held message was delivered after the heal")
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

// TestPartitionDropPolicy: with the drop policy, partitioned traffic is
// discarded and reclaimed.
func TestPartitionDropPolicy(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	nw.EnableFaults(1, PartitionDrop)
	var dropped int
	nw.SetDropHandler(func(interface{}) { dropped++ })
	nw.PartitionLink(0, 1)
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "ch", "lost")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if _, ok := nw.TryRecv(1, "ch"); ok {
		t.Fatal("message crossed a partitioned link under the drop policy")
	}
}

// TestLinkLossDeterministic: loss draws come from the fault layer's private
// PRNG, so the same seed drops the same messages.
func TestLinkLossDeterministic(t *testing.T) {
	run := func() (delivered int) {
		eng := sim.NewEngine(1)
		nw := NewNetwork(eng, BIPMyrinet, 2)
		nw.EnableFaults(99, PartitionQueue)
		nw.SetLinkLoss(0, 1, 0.5, 0)
		eng.Go("send", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				nw.SendCtrl(0, 1, "ch", i)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := nw.TryRecv(1, "ch"); !ok {
				return delivered
			}
			delivered++
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed delivered %d then %d messages", a, b)
	}
	if a == 0 || a == 40 {
		t.Fatalf("loss rate 0.5 delivered %d of 40 — draws not happening", a)
	}
}
