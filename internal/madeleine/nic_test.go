package madeleine

import (
	"testing"

	"dsmpm2/internal/sim"
)

func TestNICModelSerializesOutboundBulk(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	nw.SetNICModel(true)
	var arrivals []sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Recv(p, 1, "ch")
			arrivals = append(arrivals, p.Now())
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 1, "ch", 4096, nil)
		nw.SendBulk(0, 1, "ch", 4096, nil) // queues behind the first
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	gap := arrivals[1].Sub(arrivals[0])
	tx := sim.Duration(4096 * BIPMyrinet.PerByte)
	// The second transfer departs one byte-time after the first.
	if gap < tx-sim.Microsecond || gap > tx+sim.Microsecond {
		t.Fatalf("arrival gap = %v, want one 4KiB byte time (~%v)", gap, tx)
	}
}

func TestNICModelOffNoSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	var arrivals []sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Recv(p, 1, "ch")
			arrivals = append(arrivals, p.Now())
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 1, "ch", 4096, nil)
		nw.SendBulk(0, 1, "ch", 4096, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != arrivals[1] {
		t.Fatalf("without NIC model the transfers should overlap: %v", arrivals)
	}
}

func TestNICModelIndependentSenders(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 3)
	nw.SetNICModel(true)
	var arrivals []sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Recv(p, 2, "ch")
			arrivals = append(arrivals, p.Now())
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 2, "ch", 4096, nil)
		nw.SendBulk(1, 2, "ch", 4096, nil) // different NIC: no queueing
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != arrivals[1] {
		t.Fatalf("different senders must not serialize: %v", arrivals)
	}
}

func TestNICModelControlMessagesCheap(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, SISCISCI, 2)
	nw.SetNICModel(true)
	var arrivals []sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			nw.Recv(p, 1, "ch")
			arrivals = append(arrivals, p.Now())
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			nw.SendCtrl(0, 1, "ch", nil)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 control messages occupy the link for 64 bytes each; total added
	// delay must stay tiny compared to the base latency.
	spread := arrivals[9].Sub(arrivals[0])
	if spread > sim.Duration(10*64*SISCISCI.PerByte)+sim.Microsecond {
		t.Fatalf("control messages over-serialized: spread %v", spread)
	}
}
