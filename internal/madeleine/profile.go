// Package madeleine models the Madeleine portable communication library that
// PM2 (and therefore DSM-PM2) is built on.
//
// The real Madeleine is a thin veneer over BIP, SISCI, VIA, TCP or MPI; here
// each supported interconnect is a Profile: a small set of cost constants
// calibrated so that the latencies the paper measures on real hardware
// (Tables 3 and 4, and the RPC/migration micro-costs of Section 2.1) fall out
// of the model. Message delivery happens in virtual time on the sim kernel.
package madeleine

import "dsmpm2/internal/sim"

// Profile describes the timing behaviour of one communication interface over
// one interconnect, e.g. BIP over Myrinet. All costs are virtual durations.
type Profile struct {
	// Name identifies the interface/network pair, e.g. "BIP/Myrinet".
	Name string

	// RPCBase is the minimal latency of a null RPC (Section 2.1 of the
	// paper: 8us over BIP/Myrinet, 6us over SISCI/SCI).
	RPCBase sim.Duration

	// CtrlMsg is the cost of delivering a small control message carrying a
	// protocol request (page request, invalidation, ack). Table 3's
	// "Request page" row measures exactly this plus the (sub-microsecond)
	// owner lookup.
	CtrlMsg sim.Duration

	// XferBase and PerByte model bulk transfers: sending n payload bytes
	// costs XferBase + n*PerByte. They are calibrated so that a 4 KiB page
	// transfer matches Table 3's "Page transfer" row.
	XferBase sim.Duration
	PerByte  float64 // virtual nanoseconds per payload byte

	// MigBase is the fixed software cost of a thread migration on this
	// network; the stack and descriptor bytes are charged at PerByte on
	// top. Calibrated so that migrating the paper's minimal thread (about
	// 1 KiB of stack plus the descriptor) matches Table 4's "Thread
	// migration" row and the Section 2.1 micro-costs.
	MigBase sim.Duration
}

// Transfer returns the virtual time needed to move n payload bytes
// point-to-point on this network.
func (p *Profile) Transfer(n int) sim.Duration {
	if n < 0 {
		n = 0
	}
	return p.XferBase + sim.Duration(float64(n)*p.PerByte)
}

// Migration returns the virtual time needed to migrate a thread whose stack
// and descriptor together occupy n bytes.
func (p *Profile) Migration(n int) sim.Duration {
	if n < 0 {
		n = 0
	}
	return p.MigBase + sim.Duration(float64(n)*p.PerByte)
}

// MigrationPayload is the number of bytes the calibration assumes for the
// paper's "minimal stack" thread: about 1 KiB of stack plus a 256-byte
// descriptor.
const MigrationPayload = 1024 + 256

// PageSize4K is the payload size the paper's Table 3 uses for its page
// transfer measurements ("a common 4 kB page").
const PageSize4K = 4096

// calibrate builds a profile from the paper's measured numbers: the null RPC
// latency, the page-request cost, the 4 KiB page-transfer cost, and the
// minimal-thread migration cost (all in microseconds). PerByte and MigBase
// are solved so Transfer(4096) and Migration(MigrationPayload) reproduce the
// measurements exactly.
func calibrate(name string, rpcUS, ctrlUS, xfer4kUS, migUS float64) *Profile {
	base := ctrlUS // transfers start with the same handshake as a request
	perByte := (xfer4kUS - base) * 1000 / PageSize4K
	migBase := sim.Micros(migUS) - sim.Duration(MigrationPayload*perByte)
	return &Profile{
		Name:     name,
		RPCBase:  sim.Micros(rpcUS),
		CtrlMsg:  sim.Micros(ctrlUS),
		XferBase: sim.Micros(base),
		PerByte:  perByte,
		MigBase:  migBase,
	}
}

// The four cluster configurations evaluated in the paper, calibrated from
// Tables 3 and 4 and the Section 2.1 micro-costs. (The null RPC latencies
// for the two TCP networks are not reported in the paper; the values used
// here are consistent with the paper's request-processing costs.)
var (
	// BIPMyrinet is BIP over Myrinet: 8us null RPC, 23us page request,
	// 138us 4 KiB page transfer, 75us minimal-thread migration.
	BIPMyrinet = calibrate("BIP/Myrinet", 8, 23, 138, 75)

	// TCPMyrinet is TCP over Myrinet: 220us page request, 343us 4 KiB page
	// transfer, 280us minimal-thread migration.
	TCPMyrinet = calibrate("TCP/Myrinet", 110, 220, 343, 280)

	// TCPFastEthernet is TCP over 100 Mb/s Ethernet: 220us page request,
	// 736us 4 KiB page transfer, 373us minimal-thread migration.
	TCPFastEthernet = calibrate("TCP/Fast Ethernet", 150, 220, 736, 373)

	// SISCISCI is the SISCI API over an SCI network: 6us null RPC, 38us
	// page request, 119us 4 KiB page transfer, 62us migration.
	SISCISCI = calibrate("SISCI/SCI", 6, 38, 119, 62)
)

// Profiles lists the four paper networks in the order the paper's tables use.
var Profiles = []*Profile{BIPMyrinet, TCPMyrinet, TCPFastEthernet, SISCISCI}

// ByName returns the profile with the given name, or nil if unknown.
func ByName(name string) *Profile {
	for _, p := range Profiles {
		if p.Name == name {
			return p
		}
	}
	return nil
}
