package madeleine

import (
	"fmt"
	"sort"

	"dsmpm2/internal/sim"
)

// Network checkpoint/restore. A safe point for the network means no traffic
// in flight — the engine's queue is drained — so the serializable state is
// the occupancy clocks, the traffic counters and the fault layer's view.
// Messages held on partitioned links are the one exception: they ARE
// in-flight traffic parked inside the network, and their payloads are live
// Go values (closures over channels) that cannot be serialized, so a
// checkpoint while a queueing partition holds traffic is rejected.

// LinkClock is one directed link's occupancy clock.
type LinkClock struct {
	From int      `json:"from"`
	To   int      `json:"to"`
	Free sim.Time `json:"free"`
}

// LinkFaultState is one directed link's fault configuration.
type LinkFaultState struct {
	From        int     `json:"from"`
	To          int     `json:"to"`
	Partitioned bool    `json:"partitioned,omitempty"`
	DropRate    float64 `json:"drop_rate,omitempty"`
	DupRate     float64 `json:"dup_rate,omitempty"`
}

// FaultLayerState is one shard's fault layer.
type FaultLayerState struct {
	Policy   int              `json:"policy"`
	Dead     []bool           `json:"dead"`
	Links    []LinkFaultState `json:"links,omitempty"`
	Stats    FaultStats       `json:"stats"`
	RNGDraws uint64           `json:"rng_draws"`
}

// ShardNetState is one shard's slice of the network state.
type ShardNetState struct {
	NICFree   []sim.Time       `json:"nic_free"`
	LinkFree  []LinkClock      `json:"link_free,omitempty"`
	LinkStats LinkStats        `json:"link_stats"`
	Msgs      int              `json:"msgs"`
	Bytes     int64            `json:"bytes"`
	Envelopes int              `json:"envelopes"`
	Faults    *FaultLayerState `json:"faults,omitempty"`
}

// NetState is the network's complete serializable state.
type NetState struct {
	Shards []ShardNetState `json:"shards"`
}

// CaptureState serializes the network at a safe point, or explains why the
// moment is not one. It never mutates the network.
func (nw *Network) CaptureState() (*NetState, error) {
	s := &NetState{}
	for _, st := range nw.shs {
		ss := ShardNetState{
			NICFree:   append([]sim.Time(nil), st.nicFree...),
			LinkStats: st.linkStats,
			Msgs:      st.msgs,
			Bytes:     st.bytes,
			Envelopes: st.envelopes,
		}
		keys := make([]linkKey, 0, len(st.linkFree))
		for k := range st.linkFree {
			keys = append(keys, k)
		}
		sortLinkKeys(keys)
		for _, k := range keys {
			ss.LinkFree = append(ss.LinkFree, LinkClock{From: k.from, To: k.to, Free: st.linkFree[k]})
		}
		if fs := st.faults; fs != nil {
			fl := &FaultLayerState{
				Policy:   int(fs.policy),
				Dead:     append([]bool(nil), fs.dead...),
				Stats:    fs.stats,
				RNGDraws: fs.rng.Draws(),
			}
			lkeys := make([]linkKey, 0, len(fs.links))
			for k := range fs.links {
				lkeys = append(lkeys, k)
			}
			sortLinkKeys(lkeys)
			for _, k := range lkeys {
				lf := fs.links[k]
				if len(lf.held) > 0 {
					return nil, fmt.Errorf("madeleine: capture with %d message(s) held on partitioned link %d->%d (heal before checkpointing)", len(lf.held), k.from, k.to)
				}
				if !lf.partitioned && lf.dropRate == 0 && lf.dupRate == 0 {
					continue // healed, reliable link: nothing to carry
				}
				fl.Links = append(fl.Links, LinkFaultState{
					From: k.from, To: k.to, Partitioned: lf.partitioned,
					DropRate: lf.dropRate, DupRate: lf.dupRate,
				})
			}
			ss.Faults = fl
		}
		s.Shards = append(s.Shards, ss)
	}
	return s, nil
}

func sortLinkKeys(keys []linkKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
}

// RestoreState installs a captured network state into this network, which
// must have the same shape (node count, shard count) and — when the capture
// had faults enabled — must already have EnableFaults called with the
// original seed and policy, so the loss PRNG streams can be fast-forwarded
// rather than recreated (the seed does not serialize here; the layer above
// records it).
func (nw *Network) RestoreState(s *NetState) error {
	if len(s.Shards) != len(nw.shs) {
		return fmt.Errorf("madeleine: restore of %d-shard state into %d-shard network", len(s.Shards), len(nw.shs))
	}
	for i, ss := range s.Shards {
		st := nw.shs[i]
		if len(ss.NICFree) != len(st.nicFree) {
			return fmt.Errorf("madeleine: restore of %d-node state into %d-node network", len(ss.NICFree), len(st.nicFree))
		}
		copy(st.nicFree, ss.NICFree)
		st.linkFree = make(map[linkKey]sim.Time, len(ss.LinkFree))
		for _, lc := range ss.LinkFree {
			st.linkFree[linkKey{lc.From, lc.To}] = lc.Free
		}
		st.linkStats = ss.LinkStats
		st.msgs = ss.Msgs
		st.bytes = ss.Bytes
		st.envelopes = ss.Envelopes
		if ss.Faults == nil {
			continue
		}
		fs := st.faults
		if fs == nil {
			return fmt.Errorf("madeleine: restore of fault state into a network without faults enabled (shard %d)", i)
		}
		fs.policy = PartitionPolicy(ss.Faults.Policy)
		if len(ss.Faults.Dead) != len(fs.dead) {
			return fmt.Errorf("madeleine: restore fault state for %d nodes into %d-node network", len(ss.Faults.Dead), len(fs.dead))
		}
		copy(fs.dead, ss.Faults.Dead)
		fs.stats = ss.Faults.Stats
		fs.links = make(map[linkKey]*linkFault, len(ss.Faults.Links))
		for _, lf := range ss.Faults.Links {
			fs.links[linkKey{lf.From, lf.To}] = &linkFault{
				partitioned: lf.Partitioned, dropRate: lf.DropRate, dupRate: lf.DupRate,
			}
		}
		if err := fs.rng.BurnTo(ss.Faults.RNGDraws); err != nil {
			return fmt.Errorf("madeleine: shard %d loss PRNG: %w", i, err)
		}
	}
	return nil
}
