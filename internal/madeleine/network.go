package madeleine

import (
	"fmt"
	"sync"

	"dsmpm2/internal/freelist"
	"dsmpm2/internal/sim"
)

// ChanID is the dense index of an interned logical channel name. Interning
// happens once per distinct name (ChannelID); after that every queue access
// is a slice index instead of a per-message map-of-strings lookup. ID 0 is
// reserved as "unset" so a zero Message resolves its Channel string lazily.
type ChanID int

// Message is a unit of communication between nodes. Payload is an arbitrary
// Go value (the simulation does not serialize); Size is the number of bytes
// the value would occupy on the wire and drives the timing model.
//
// Messages sent through the send helpers come from (and return to) the
// network's freelist: receivers that are done with a message may hand it
// back with FreeMessage, and at steady state the message flow allocates
// nothing.
type Message struct {
	From    int
	To      int
	Channel string // logical channel (service) name (diagnostics)
	Chan    ChanID // interned channel; 0 = resolve Channel on send
	Size    int
	Payload interface{}
	SentAt  sim.Time
}

// linkKey identifies one directed link of the topology.
type linkKey struct {
	from, to int
}

// LinkStats aggregates the contention observed on the network's links.
type LinkStats struct {
	// Waits counts messages that found their link busy and queued.
	Waits int
	// WaitTime is the total virtual time messages spent queued on busy
	// links.
	WaitTime sim.Duration
}

// netShard holds the sender-side mutable network state of one shard: the
// occupancy clocks, the traffic counters and the fault layer's view. In the
// single-loop configuration there is exactly one (index 0) and every access
// is lock-free, bit-for-bit the historical behaviour. In sharded mode each
// shard owns the state of its own nodes' outbound interfaces — departure
// clocks, link fault state and counters are written only from the owning
// shard's goroutine, which is what keeps link-contention accounting correct
// without a lock on every send.
type netShard struct {
	// NIC occupancy: per node, when the outbound port frees up (only the
	// slots of this shard's nodes are used).
	nicFree []sim.Time
	// Link occupancy: when each directed link (keyed by sender-side node)
	// frees up, plus the contention counters.
	linkFree  map[linkKey]sim.Time
	linkStats LinkStats
	// faults is this shard's fault layer view: nil (and completely inert)
	// until EnableFaults. See fault.go.
	faults *faultState
	// Traffic counters.
	msgs      int
	bytes     int64
	envelopes int
	// envByLink classes departed envelopes by the profile name of the link
	// they crossed ("BIP/Myrinet", the backbone profile of a hierarchical
	// topology, ...). A bench-only diagnostic: it is deliberately NOT part
	// of network snapshots, so enabling it never churns checkpoint wire
	// forms. Allocated lazily on first send.
	envByLink map[string]int
}

func newNetShard(n int) *netShard {
	return &netShard{
		nicFree:  make([]sim.Time, n),
		linkFree: make(map[linkKey]sim.Time),
	}
}

// Network connects n nodes with per-link timing resolved by a Topology. Each
// node owns one inbound queue per logical channel; Send schedules delivery
// events on the sim engine, Recv blocks a simulated thread until a message
// arrives.
//
// The model charges the sender-to-receiver latency per message and offers two
// optional occupancy models (both off by default; the paper's latencies are
// single-message costs):
//
//   - the NIC model serializes each node's outbound port, so one sender
//     blasting many destinations queues at its own interface;
//   - the link model serializes each directed (src,dst) link, so concurrent
//     page transfers crossing the same link queue FIFO instead of
//     overlapping for free, while transfers on disjoint links still overlap.
//
// A network bound to a sharded engine (BindSharded) routes each send from
// the sending node's shard to the receiving node's shard and keeps all
// sender-side state per shard; see netShard.
type Network struct {
	eng  *sim.Engine
	topo Topology
	n    int

	// Sharded-mode routing: nil/unused in the single-loop configuration.
	se      *sim.ShardedEngine
	shardOf []int // node -> owning shard
	// nameMu guards the interning tables and the queue matrix in sharded
	// mode only (any shard may intern a late channel name or grow a
	// node's queue slice while resolving a destination).
	nameMu sync.RWMutex

	// Channel interning: names map to dense ChanIDs once, and the per-node
	// queues are indexed [node][id] — the per-message map lookup the
	// string-keyed design paid is gone from the send/receive hot path.
	chanIDs   map[string]ChanID
	chanNames []string
	queues    [][]*sim.Chan

	// msgFree recycles Message structs (see Message). Pooling is only used
	// in the single-loop configuration; a sharded network allocates
	// messages instead, because a shared pool would put a lock (and
	// cross-shard cache traffic) on every send.
	msgFree freelist.List[*Message]

	// Occupancy model switches (read-only once traffic flows).
	nicModel  bool
	linkModel bool

	// shs holds the per-shard mutable state; exactly one entry in the
	// single-loop configuration.
	shs []*netShard
}

// NewNetwork creates a uniform network of n nodes using the given cost
// profile — the historical constructor, equivalent to NewNetworkTopology
// with a Uniform topology.
func NewNetwork(eng *sim.Engine, profile *Profile, n int) *Network {
	return NewNetworkTopology(eng, NewUniform(profile), n)
}

// NewNetworkTopology creates a network of n nodes whose per-link costs are
// resolved by topo. Topologies bound to a node count (Sizer) must match n.
func NewNetworkTopology(eng *sim.Engine, topo Topology, n int) *Network {
	if n < 1 {
		panic("madeleine: network needs at least 1 node")
	}
	if topo == nil {
		panic("madeleine: network needs a topology")
	}
	if s, ok := topo.(Sizer); ok && s.Nodes() != n {
		panic(fmt.Sprintf("madeleine: topology %s is built for %d nodes, network has %d",
			topo.Name(), s.Nodes(), n))
	}
	return &Network{
		eng:       eng,
		topo:      topo,
		n:         n,
		chanIDs:   make(map[string]ChanID),
		chanNames: []string{""}, // ChanID 0 reserved as "unset"
		queues:    make([][]*sim.Chan, n),
		shs:       []*netShard{newNetShard(n)},
	}
}

// BindSharded routes the network over a sharded engine: node i's traffic
// departs from (and its occupancy/fault state lives on) shard shardOf[i],
// and deliveries to nodes of other shards become cross-shard events. eng
// passed at construction must be se.Shard(0). Call once, before any
// traffic and before EnableFaults.
func (nw *Network) BindSharded(se *sim.ShardedEngine, shardOf []int) {
	if se.Shards() < 2 {
		return // one shard is the legacy configuration
	}
	if len(shardOf) != nw.n {
		panic(fmt.Sprintf("madeleine: shard map covers %d nodes, network has %d", len(shardOf), nw.n))
	}
	if nw.se != nil {
		panic("madeleine: BindSharded called twice")
	}
	if nw.shs[0].faults != nil {
		panic("madeleine: BindSharded after EnableFaults")
	}
	for i, s := range shardOf {
		if s < 0 || s >= se.Shards() {
			panic(fmt.Sprintf("madeleine: node %d mapped to shard %d outside [0,%d)", i, s, se.Shards()))
		}
	}
	nw.se = se
	nw.shardOf = append([]int(nil), shardOf...)
	nw.shs = make([]*netShard, se.Shards())
	for i := range nw.shs {
		nw.shs[i] = newNetShard(nw.n)
	}
}

// Sharded reports whether the network is bound to a multi-shard engine.
func (nw *Network) Sharded() bool { return nw.se != nil }

// ShardOf reports which shard owns node i (0 when unsharded).
func (nw *Network) ShardOf(i int) int {
	if nw.shardOf == nil {
		return 0
	}
	return nw.shardOf[i]
}

// sendCtx resolves the execution context of a send from `from` to `to`: the
// engine whose goroutine the send runs on and the shard state it charges.
// Senders outside the cluster (the driver, from < 0) are treated as local
// to the destination — in sharded mode such sends must only happen before
// the run starts (they schedule directly on the destination shard).
func (nw *Network) sendCtx(from, to int) (*sim.Engine, *netShard) {
	if nw.se == nil {
		return nw.eng, nw.shs[0]
	}
	ctx := from
	if ctx < 0 || ctx >= nw.n {
		ctx = to
	}
	s := nw.shardOf[ctx]
	return nw.se.Shard(s), nw.shs[s]
}

// pushAt schedules a delivery into q at time at, routing to the shard that
// owns the destination node when the network is sharded. eng is the sending
// context's engine (from sendCtx).
func (nw *Network) pushAt(eng *sim.Engine, to int, at sim.Time, q *sim.Chan, payload interface{}) {
	if nw.se == nil {
		eng.SchedulePush(at, q, payload)
		return
	}
	eng.SchedulePushShard(nw.shardOf[to], at, q, payload)
}

// ChannelID interns a logical channel name and returns its dense id. The
// same name always yields the same id; senders and receivers that cache the
// id skip the name lookup entirely.
func (nw *Network) ChannelID(name string) ChanID {
	if nw.se == nil {
		return nw.channelIDLocked(name)
	}
	nw.nameMu.RLock()
	id, ok := nw.chanIDs[name]
	nw.nameMu.RUnlock()
	if ok {
		return id
	}
	nw.nameMu.Lock()
	defer nw.nameMu.Unlock()
	return nw.channelIDLocked(name)
}

func (nw *Network) channelIDLocked(name string) ChanID {
	if id, ok := nw.chanIDs[name]; ok {
		return id
	}
	id := ChanID(len(nw.chanNames))
	nw.chanNames = append(nw.chanNames, name)
	nw.chanIDs[name] = id
	return id
}

// ChannelName returns the name interned for id ("" for the unset id).
func (nw *Network) ChannelName(id ChanID) string {
	if nw.se != nil {
		nw.nameMu.RLock()
		defer nw.nameMu.RUnlock()
	}
	if id <= 0 || int(id) >= len(nw.chanNames) {
		return ""
	}
	return nw.chanNames[id]
}

// getMsg takes a Message from the freelist (or allocates one). Sharded
// networks always allocate: the pool is not shared across shards.
func (nw *Network) getMsg() *Message {
	if nw.se == nil {
		if m, ok := nw.msgFree.Get(); ok {
			return m
		}
	}
	return new(Message)
}

// FreeMessage returns a received message to the freelist. Callers must not
// touch the message afterwards; keeping the payload is fine. On a sharded
// network this is a no-op (messages are garbage collected; see getMsg).
func (nw *Network) FreeMessage(m *Message) {
	if m == nil || nw.se != nil {
		return
	}
	*m = Message{}
	nw.msgFree.Put(m)
}

// SetNICModel enables or disables per-node outbound port serialization.
func (nw *Network) SetNICModel(on bool) { nw.nicModel = on }

// NICModel reports whether send-side port contention is being modelled.
func (nw *Network) NICModel() bool { return nw.nicModel }

// SetLinkContention enables or disables per-link bandwidth occupancy.
func (nw *Network) SetLinkContention(on bool) { nw.linkModel = on }

// LinkContention reports whether link occupancy is being modelled.
func (nw *Network) LinkContention() bool { return nw.linkModel }

// LinkStats reports the contention counters of the link model, summed over
// shards.
func (nw *Network) LinkStats() LinkStats {
	var out LinkStats
	for _, st := range nw.shs {
		out.Waits += st.linkStats.Waits
		out.WaitTime += st.linkStats.WaitTime
	}
	return out
}

// Nodes reports the number of nodes in the network.
func (nw *Network) Nodes() int { return nw.n }

// Topology returns the topology resolving per-link costs.
func (nw *Network) Topology() Topology { return nw.topo }

// Profile returns the cost profile of a uniform network, or nil when the
// topology is heterogeneous (callers needing per-pair costs use Link).
func (nw *Network) Profile() *Profile { return UniformProfile(nw.topo) }

// Link returns the profile governing messages from src to dst. A sender
// outside the cluster (the driver, src < 0) is charged as dst-local;
// anything else out of range is a caller bug and panics like dst does.
func (nw *Network) Link(src, dst int) *Profile {
	if dst < 0 || dst >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", dst, nw.n))
	}
	if src >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", src, nw.n))
	}
	if src < 0 {
		src = dst
	}
	return nw.topo.Link(src, dst)
}

// Engine returns the sim engine the network schedules on (shard 0's engine
// when sharded).
func (nw *Network) Engine() *sim.Engine { return nw.eng }

func (nw *Network) queue(node int, ch ChanID) *sim.Chan {
	if node < 0 || node >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", node, nw.n))
	}
	if nw.se == nil {
		if ch <= 0 || int(ch) >= len(nw.chanNames) {
			panic(fmt.Sprintf("madeleine: channel id %d not interned", ch))
		}
		qs := nw.queues[node]
		if int(ch) >= len(qs) {
			grown := make([]*sim.Chan, len(nw.chanNames))
			copy(grown, qs)
			qs = grown
			nw.queues[node] = qs
		}
		q := qs[ch]
		if q == nil {
			q = new(sim.Chan)
			qs[ch] = q
		}
		return q
	}
	nw.nameMu.RLock()
	if ch <= 0 || int(ch) >= len(nw.chanNames) {
		nw.nameMu.RUnlock()
		panic(fmt.Sprintf("madeleine: channel id %d not interned", ch))
	}
	if qs := nw.queues[node]; int(ch) < len(qs) {
		if q := qs[ch]; q != nil {
			nw.nameMu.RUnlock()
			return q
		}
	}
	nw.nameMu.RUnlock()
	nw.nameMu.Lock()
	defer nw.nameMu.Unlock()
	qs := nw.queues[node]
	if int(ch) >= len(qs) {
		grown := make([]*sim.Chan, len(nw.chanNames))
		copy(grown, qs)
		qs = grown
		nw.queues[node] = qs
	}
	q := qs[ch]
	if q == nil {
		q = new(sim.Chan)
		qs[ch] = q
	}
	return q
}

// SendAfter delivers msg to its destination after latency d. Sends to the
// local node are delivered with the same latency: loopback communication in
// PM2 still crosses the RPC machinery. With an occupancy model enabled, the
// message first waits for the sender's port and/or its link to free and
// occupies them for its byte time; the sender itself never blocks (PM2 sends
// are asynchronous, the queueing happens in the interface).
func (nw *Network) SendAfter(msg *Message, d sim.Duration) {
	eng, st := nw.sendCtx(msg.From, msg.To)
	msg.SentAt = eng.Now()
	st.msgs++
	st.bytes += int64(msg.Size)
	nw.countEnvelope(st, msg.From, msg.To)
	if msg.Chan == 0 {
		msg.Chan = nw.ChannelID(msg.Channel)
	}
	q := nw.queue(msg.To, msg.Chan)
	if st.faults != nil && nw.intercept(eng, st, msg.From, msg.To, q, msg, msg.Size, d, true) {
		return
	}
	depart := nw.departure(eng, st, msg.From, msg.To, msg.Size)
	nw.pushAt(eng, msg.To, depart.Add(d), q, msg)
}

// GatherPart is one component of a multi-part envelope: a payload bound for
// one logical channel of the destination, with its own wire size.
type GatherPart struct {
	Chan    ChanID
	Size    int
	Payload interface{}
}

// SendGather ships parts from->to as ONE wire envelope: the summed byte size
// crosses the NIC/link occupancy model exactly once (a single departure), the
// whole batch is charged latency d once, and on arrival the parts scatter to
// their per-channel inbound queues in part order. This is the scatter/gather
// primitive the batched DSM communication path rides on — N page operations
// leave the interface as one message instead of N.
//
// The fault model treats the envelope as a unit: a dead endpoint or a
// drop-policy partition discards every part (each pooled Message reclaimed
// exactly once), a queueing partition holds and later re-injects the whole
// envelope, and a lossy link draws its drop once per envelope. Multi-part
// envelopes are never duplicated: their parts carry coalesced-reply state
// that must complete exactly once.
func (nw *Network) SendGather(from, to int, parts []GatherPart, d sim.Duration) {
	if len(parts) == 0 {
		return
	}
	eng, st := nw.sendCtx(from, to)
	now := eng.Now()
	total := 0
	msgs := make([]*Message, len(parts))
	for i, p := range parts {
		total += p.Size
		m := nw.getMsg()
		*m = Message{From: from, To: to, Channel: nw.ChannelName(p.Chan), Chan: p.Chan,
			Size: p.Size, Payload: p.Payload, SentAt: now}
		msgs[i] = m
	}
	st.msgs += len(parts)
	st.bytes += int64(total)
	nw.countEnvelope(st, from, to)
	if st.faults != nil && nw.interceptGather(eng, st, from, to, msgs, total, d) {
		return
	}
	nw.deliverGather(eng, st, from, to, msgs, total, d)
}

// deliverGather performs the fault-free half of a gather send: one departure
// for the whole envelope, then one queue push per part at the arrival time.
func (nw *Network) deliverGather(eng *sim.Engine, st *netShard, from, to int, parts []*Message, total int, d sim.Duration) {
	depart := nw.departure(eng, st, from, to, total)
	at := depart.Add(d)
	for _, m := range parts {
		nw.pushAt(eng, to, at, nw.queue(to, m.Chan), m)
	}
}

// departure resolves when a message of size bytes from from to to leaves the
// sending interface, advancing the NIC/link occupancy clocks when those
// models are enabled. The message departs once every enabled resource is
// free, and occupies all of them for its transmit time — stamping either
// resource before the other has pushed depart would mark it free while the
// message is still on the wire. The sender itself never blocks (PM2 sends
// are asynchronous, the queueing happens in the interface).
func (nw *Network) departure(eng *sim.Engine, st *netShard, from, to, size int) sim.Time {
	depart := eng.Now()
	if (nw.nicModel || nw.linkModel) && from >= 0 && from < nw.n {
		tx := sim.Duration(float64(size) * nw.topo.Link(from, to).PerByte)
		key := linkKey{from, to}
		if nw.nicModel && st.nicFree[from] > depart {
			depart = st.nicFree[from]
		}
		if nw.linkModel {
			if free := st.linkFree[key]; free > depart {
				st.linkStats.Waits++
				st.linkStats.WaitTime += free.Sub(depart)
				depart = free
			}
		}
		if nw.nicModel {
			st.nicFree[from] = depart.Add(tx)
		}
		if nw.linkModel {
			st.linkFree[key] = depart.Add(tx)
		}
	}
	return depart
}

// SendCtrl sends a small control message (request, invalidation, ack),
// charged at the link's CtrlMsg latency.
func (nw *Network) SendCtrl(from, to int, channel string, payload interface{}) {
	nw.SendCtrlID(from, to, nw.ChannelID(channel), payload)
}

// SendCtrlID is SendCtrl for a pre-interned channel.
func (nw *Network) SendCtrlID(from, to int, ch ChanID, payload interface{}) {
	m := nw.getMsg()
	*m = Message{From: from, To: to, Channel: nw.ChannelName(ch), Chan: ch, Size: 64, Payload: payload}
	nw.SendAfter(m, nw.Link(from, to).CtrlMsg)
}

// SendID sends a pooled message on a pre-interned channel with an explicit
// latency (the RPC layer computes half-round-trip costs itself).
func (nw *Network) SendID(from, to int, ch ChanID, size int, payload interface{}, d sim.Duration) {
	m := nw.getMsg()
	*m = Message{From: from, To: to, Channel: nw.ChannelName(ch), Chan: ch, Size: size, Payload: payload}
	nw.SendAfter(m, d)
}

// SendBulk sends size payload bytes (for example a page or a diff list),
// charged at the link's Transfer(size) latency.
func (nw *Network) SendBulk(from, to int, channel string, size int, payload interface{}) {
	nw.SendBulkID(from, to, nw.ChannelID(channel), size, payload)
}

// SendBulkID is SendBulk for a pre-interned channel.
func (nw *Network) SendBulkID(from, to int, ch ChanID, size int, payload interface{}) {
	m := nw.getMsg()
	*m = Message{From: from, To: to, Channel: nw.ChannelName(ch), Chan: ch, Size: size, Payload: payload}
	nw.SendAfter(m, nw.Link(from, to).Transfer(size))
}

// SendDirect delivers payload into a caller-provided queue after latency d,
// bypassing the per-node channel tables. RPC replies use this: the caller
// owns a private reply queue, so no channel naming is needed; the caller
// computes d from the link it is answering over. Replies are subject to the
// same NIC/link occupancy models as named-channel traffic — a reply crossing
// a saturated link queues exactly like the request did.
func (nw *Network) SendDirect(from, to int, q *sim.Chan, size int, payload interface{}, d sim.Duration) {
	eng, st := nw.sendCtx(from, to)
	st.msgs++
	st.bytes += int64(size)
	nw.countEnvelope(st, from, to)
	if st.faults != nil && nw.intercept(eng, st, from, to, q, payload, size, d, false) {
		return
	}
	depart := nw.departure(eng, st, from, to, size)
	nw.pushAt(eng, to, depart.Add(d), q, payload)
}

// Recv blocks the calling proc until a message arrives for node on channel.
func (nw *Network) Recv(p *sim.Proc, node int, channel string) *Message {
	return nw.RecvID(p, node, nw.ChannelID(channel))
}

// RecvID is Recv for a pre-interned channel.
func (nw *Network) RecvID(p *sim.Proc, node int, ch ChanID) *Message {
	return nw.queue(node, ch).Recv(p).(*Message)
}

// TryRecv returns a pending message for node on channel without blocking.
func (nw *Network) TryRecv(node int, channel string) (*Message, bool) {
	v, ok := nw.queue(node, nw.ChannelID(channel)).TryRecv()
	if !ok {
		return nil, false
	}
	return v.(*Message), true
}

// Stats reports cumulative message and byte counts, summed over shards.
func (nw *Network) Stats() (messages int, bytes int64) {
	for _, st := range nw.shs {
		messages += st.msgs
		bytes += st.bytes
	}
	return messages, bytes
}

// Envelopes reports the cumulative number of wire envelopes that departed:
// every plain send (named-channel or direct) counts one, and a multi-part
// gather counts one regardless of how many parts it carries. The spread
// between Stats' message count and this counter is exactly what batching
// saved.
func (nw *Network) Envelopes() int {
	out := 0
	for _, st := range nw.shs {
		out += st.envelopes
	}
	return out
}

// countEnvelope bumps the total and the per-link-class envelope counters for
// one departure on the from->to link.
func (nw *Network) countEnvelope(st *netShard, from, to int) {
	st.envelopes++
	if st.envByLink == nil {
		st.envByLink = make(map[string]int)
	}
	st.envByLink[nw.Link(from, to).Name]++
}

// EnvelopesByLink classes the departed envelopes by the profile name of the
// link they crossed, summed over shards. On a hierarchical topology this
// splits intra-cluster traffic from backbone traffic — the number a
// combining-tree barrier is supposed to shrink. Purely diagnostic: the
// per-class counters are not serialized into snapshots.
func (nw *Network) EnvelopesByLink() map[string]int {
	out := make(map[string]int)
	for _, st := range nw.shs {
		for k, v := range st.envByLink {
			out[k] += v
		}
	}
	return out
}
