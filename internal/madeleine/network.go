package madeleine

import (
	"fmt"

	"dsmpm2/internal/sim"
)

// Message is a unit of communication between nodes. Payload is an arbitrary
// Go value (the simulation does not serialize); Size is the number of bytes
// the value would occupy on the wire and drives the timing model.
type Message struct {
	From    int
	To      int
	Channel string // logical channel (service) name
	Size    int
	Payload interface{}
	SentAt  sim.Time
}

// linkKey identifies one directed link of the topology.
type linkKey struct {
	from, to int
}

// LinkStats aggregates the contention observed on the network's links.
type LinkStats struct {
	// Waits counts messages that found their link busy and queued.
	Waits int
	// WaitTime is the total virtual time messages spent queued on busy
	// links.
	WaitTime sim.Duration
}

// Network connects n nodes with per-link timing resolved by a Topology. Each
// node owns one inbound queue per logical channel; Send schedules delivery
// events on the sim engine, Recv blocks a simulated thread until a message
// arrives.
//
// The model charges the sender-to-receiver latency per message and offers two
// optional occupancy models (both off by default; the paper's latencies are
// single-message costs):
//
//   - the NIC model serializes each node's outbound port, so one sender
//     blasting many destinations queues at its own interface;
//   - the link model serializes each directed (src,dst) link, so concurrent
//     page transfers crossing the same link queue FIFO instead of
//     overlapping for free, while transfers on disjoint links still overlap.
type Network struct {
	eng    *sim.Engine
	topo   Topology
	n      int
	queues []map[string]*sim.Chan

	// NIC occupancy model: when enabled, each node's outbound port
	// transmits one message at a time; a message occupies the port for its
	// payload's byte time, and later sends queue behind it.
	nicModel bool
	nicFree  []sim.Time // per node: when the outbound port frees up

	// Link occupancy model: when enabled, each directed link carries one
	// message at a time; a message occupies the link for its payload's
	// byte time at that link's rate, and later sends on the same link
	// queue FIFO behind it. The sender itself never blocks (PM2 sends are
	// asynchronous, the queueing happens in the interface).
	linkModel bool
	linkFree  map[linkKey]sim.Time
	linkStats LinkStats

	// stats
	msgs  int
	bytes int64
}

// NewNetwork creates a uniform network of n nodes using the given cost
// profile — the historical constructor, equivalent to NewNetworkTopology
// with a Uniform topology.
func NewNetwork(eng *sim.Engine, profile *Profile, n int) *Network {
	return NewNetworkTopology(eng, NewUniform(profile), n)
}

// NewNetworkTopology creates a network of n nodes whose per-link costs are
// resolved by topo. Topologies bound to a node count (Sizer) must match n.
func NewNetworkTopology(eng *sim.Engine, topo Topology, n int) *Network {
	if n < 1 {
		panic("madeleine: network needs at least 1 node")
	}
	if topo == nil {
		panic("madeleine: network needs a topology")
	}
	if s, ok := topo.(Sizer); ok && s.Nodes() != n {
		panic(fmt.Sprintf("madeleine: topology %s is built for %d nodes, network has %d",
			topo.Name(), s.Nodes(), n))
	}
	queues := make([]map[string]*sim.Chan, n)
	for i := range queues {
		queues[i] = make(map[string]*sim.Chan)
	}
	return &Network{
		eng:      eng,
		topo:     topo,
		n:        n,
		queues:   queues,
		nicFree:  make([]sim.Time, n),
		linkFree: make(map[linkKey]sim.Time),
	}
}

// SetNICModel enables or disables per-node outbound port serialization.
func (nw *Network) SetNICModel(on bool) { nw.nicModel = on }

// NICModel reports whether send-side port contention is being modelled.
func (nw *Network) NICModel() bool { return nw.nicModel }

// SetLinkContention enables or disables per-link bandwidth occupancy.
func (nw *Network) SetLinkContention(on bool) { nw.linkModel = on }

// LinkContention reports whether link occupancy is being modelled.
func (nw *Network) LinkContention() bool { return nw.linkModel }

// LinkStats reports the contention counters of the link model.
func (nw *Network) LinkStats() LinkStats { return nw.linkStats }

// Nodes reports the number of nodes in the network.
func (nw *Network) Nodes() int { return nw.n }

// Topology returns the topology resolving per-link costs.
func (nw *Network) Topology() Topology { return nw.topo }

// Profile returns the cost profile of a uniform network, or nil when the
// topology is heterogeneous (callers needing per-pair costs use Link).
func (nw *Network) Profile() *Profile { return UniformProfile(nw.topo) }

// Link returns the profile governing messages from src to dst. A sender
// outside the cluster (the driver, src < 0) is charged as dst-local;
// anything else out of range is a caller bug and panics like dst does.
func (nw *Network) Link(src, dst int) *Profile {
	if dst < 0 || dst >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", dst, nw.n))
	}
	if src >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", src, nw.n))
	}
	if src < 0 {
		src = dst
	}
	return nw.topo.Link(src, dst)
}

// Engine returns the sim engine the network schedules on.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

func (nw *Network) queue(node int, channel string) *sim.Chan {
	if node < 0 || node >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", node, nw.n))
	}
	q := nw.queues[node][channel]
	if q == nil {
		q = new(sim.Chan)
		nw.queues[node][channel] = q
	}
	return q
}

// SendAfter delivers msg to its destination after latency d. Sends to the
// local node are delivered with the same latency: loopback communication in
// PM2 still crosses the RPC machinery. With an occupancy model enabled, the
// message first waits for the sender's port and/or its link to free and
// occupies them for its byte time; the sender itself never blocks (PM2 sends
// are asynchronous, the queueing happens in the interface).
func (nw *Network) SendAfter(msg *Message, d sim.Duration) {
	msg.SentAt = nw.eng.Now()
	nw.msgs++
	nw.bytes += int64(msg.Size)
	q := nw.queue(msg.To, msg.Channel)
	depart := nw.eng.Now()
	if (nw.nicModel || nw.linkModel) && msg.From >= 0 && msg.From < nw.n {
		// The message departs once every enabled resource is free, and
		// occupies all of them for its transmit time — stamping either
		// resource before the other has pushed depart would mark it free
		// while the message is still on the wire.
		tx := sim.Duration(float64(msg.Size) * nw.topo.Link(msg.From, msg.To).PerByte)
		key := linkKey{msg.From, msg.To}
		if nw.nicModel && nw.nicFree[msg.From] > depart {
			depart = nw.nicFree[msg.From]
		}
		if nw.linkModel {
			if free := nw.linkFree[key]; free > depart {
				nw.linkStats.Waits++
				nw.linkStats.WaitTime += free.Sub(depart)
				depart = free
			}
		}
		if nw.nicModel {
			nw.nicFree[msg.From] = depart.Add(tx)
		}
		if nw.linkModel {
			nw.linkFree[key] = depart.Add(tx)
		}
	}
	arrive := depart.Add(d)
	nw.eng.Schedule(arrive, func() { q.Push(msg) })
}

// SendCtrl sends a small control message (request, invalidation, ack),
// charged at the link's CtrlMsg latency.
func (nw *Network) SendCtrl(from, to int, channel string, payload interface{}) {
	nw.SendAfter(&Message{From: from, To: to, Channel: channel, Size: 64, Payload: payload},
		nw.Link(from, to).CtrlMsg)
}

// SendBulk sends size payload bytes (for example a page or a diff list),
// charged at the link's Transfer(size) latency.
func (nw *Network) SendBulk(from, to int, channel string, size int, payload interface{}) {
	nw.SendAfter(&Message{From: from, To: to, Channel: channel, Size: size, Payload: payload},
		nw.Link(from, to).Transfer(size))
}

// SendDirect delivers payload into a caller-provided queue after latency d,
// bypassing the per-node channel map. RPC replies use this: the caller owns
// a private reply queue, so no channel naming is needed; the caller computes
// d from the link it is answering over.
func (nw *Network) SendDirect(q *sim.Chan, size int, payload interface{}, d sim.Duration) {
	nw.msgs++
	nw.bytes += int64(size)
	nw.eng.After(d, func() { q.Push(payload) })
}

// Recv blocks the calling proc until a message arrives for node on channel.
func (nw *Network) Recv(p *sim.Proc, node int, channel string) *Message {
	return nw.queue(node, channel).Recv(p).(*Message)
}

// TryRecv returns a pending message for node on channel without blocking.
func (nw *Network) TryRecv(node int, channel string) (*Message, bool) {
	v, ok := nw.queue(node, channel).TryRecv()
	if !ok {
		return nil, false
	}
	return v.(*Message), true
}

// Stats reports cumulative message and byte counts.
func (nw *Network) Stats() (messages int, bytes int64) { return nw.msgs, nw.bytes }
