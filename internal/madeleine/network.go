package madeleine

import (
	"fmt"

	"dsmpm2/internal/sim"
)

// Message is a unit of communication between nodes. Payload is an arbitrary
// Go value (the simulation does not serialize); Size is the number of bytes
// the value would occupy on the wire and drives the timing model.
type Message struct {
	From    int
	To      int
	Channel string // logical channel (service) name
	Size    int
	Payload interface{}
	SentAt  sim.Time
}

// Network connects n nodes with the timing behaviour of a Profile. Each node
// owns one inbound queue per logical channel; Send schedules delivery events
// on the sim engine, Recv blocks a simulated thread until a message arrives.
//
// The model charges the sender-to-receiver latency per message and,
// optionally, serializes outbound messages through a per-node NIC resource to
// model link occupancy (off by default; the paper's latencies are
// single-message costs).
type Network struct {
	eng     *sim.Engine
	profile *Profile
	n       int
	queues  []map[string]*sim.Chan

	// NIC occupancy model (off by default): when enabled, each node's
	// outbound link transmits one message at a time; a message occupies
	// the link for its payload's byte time, and later sends queue behind
	// it. The paper's latencies are single-message costs, so the tables
	// reproduce with the model off; applications that blast concurrent
	// transfers can enable it to observe send-side contention.
	nicModel bool
	nicFree  []sim.Time // per node: when the outbound link frees up

	// stats
	msgs  int
	bytes int64
}

// NewNetwork creates a network of n nodes using the given cost profile.
func NewNetwork(eng *sim.Engine, profile *Profile, n int) *Network {
	if n < 1 {
		panic("madeleine: network needs at least 1 node")
	}
	queues := make([]map[string]*sim.Chan, n)
	for i := range queues {
		queues[i] = make(map[string]*sim.Chan)
	}
	return &Network{
		eng:     eng,
		profile: profile,
		n:       n,
		queues:  queues,
		nicFree: make([]sim.Time, n),
	}
}

// SetNICModel enables or disables per-node outbound link serialization.
func (nw *Network) SetNICModel(on bool) { nw.nicModel = on }

// NICModel reports whether send-side contention is being modelled.
func (nw *Network) NICModel() bool { return nw.nicModel }

// Nodes reports the number of nodes in the network.
func (nw *Network) Nodes() int { return nw.n }

// Profile returns the cost profile in use.
func (nw *Network) Profile() *Profile { return nw.profile }

// Engine returns the sim engine the network schedules on.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

func (nw *Network) queue(node int, channel string) *sim.Chan {
	if node < 0 || node >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", node, nw.n))
	}
	q := nw.queues[node][channel]
	if q == nil {
		q = new(sim.Chan)
		nw.queues[node][channel] = q
	}
	return q
}

// SendAfter delivers msg to its destination after latency d. Sends to the
// local node are delivered with the same latency: loopback communication in
// PM2 still crosses the RPC machinery. With the NIC model enabled, the
// message first waits for the sender's outbound link and occupies it for its
// byte time; the sender itself never blocks (PM2 sends are asynchronous, the
// queueing happens in the interface).
func (nw *Network) SendAfter(msg *Message, d sim.Duration) {
	msg.SentAt = nw.eng.Now()
	nw.msgs++
	nw.bytes += int64(msg.Size)
	q := nw.queue(msg.To, msg.Channel)
	depart := nw.eng.Now()
	if nw.nicModel && msg.From >= 0 && msg.From < nw.n {
		if nw.nicFree[msg.From] > depart {
			depart = nw.nicFree[msg.From]
		}
		tx := sim.Duration(float64(msg.Size) * nw.profile.PerByte)
		nw.nicFree[msg.From] = depart.Add(tx)
	}
	arrive := depart.Add(d)
	nw.eng.Schedule(arrive, func() { q.Push(msg) })
}

// SendCtrl sends a small control message (request, invalidation, ack),
// charged at the profile's CtrlMsg latency.
func (nw *Network) SendCtrl(from, to int, channel string, payload interface{}) {
	nw.SendAfter(&Message{From: from, To: to, Channel: channel, Size: 64, Payload: payload},
		nw.profile.CtrlMsg)
}

// SendBulk sends size payload bytes (for example a page or a diff list),
// charged at the profile's Transfer(size) latency.
func (nw *Network) SendBulk(from, to int, channel string, size int, payload interface{}) {
	nw.SendAfter(&Message{From: from, To: to, Channel: channel, Size: size, Payload: payload},
		nw.profile.Transfer(size))
}

// SendDirect delivers payload into a caller-provided queue after latency d,
// bypassing the per-node channel map. RPC replies use this: the caller owns
// a private reply queue, so no channel naming is needed.
func (nw *Network) SendDirect(q *sim.Chan, size int, payload interface{}, d sim.Duration) {
	nw.msgs++
	nw.bytes += int64(size)
	nw.eng.After(d, func() { q.Push(payload) })
}

// Recv blocks the calling proc until a message arrives for node on channel.
func (nw *Network) Recv(p *sim.Proc, node int, channel string) *Message {
	return nw.queue(node, channel).Recv(p).(*Message)
}

// TryRecv returns a pending message for node on channel without blocking.
func (nw *Network) TryRecv(node int, channel string) (*Message, bool) {
	v, ok := nw.queue(node, channel).TryRecv()
	if !ok {
		return nil, false
	}
	return v.(*Message), true
}

// Stats reports cumulative message and byte counts.
func (nw *Network) Stats() (messages int, bytes int64) { return nw.msgs, nw.bytes }
