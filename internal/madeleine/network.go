package madeleine

import (
	"fmt"

	"dsmpm2/internal/freelist"
	"dsmpm2/internal/sim"
)

// ChanID is the dense index of an interned logical channel name. Interning
// happens once per distinct name (ChannelID); after that every queue access
// is a slice index instead of a per-message map-of-strings lookup. ID 0 is
// reserved as "unset" so a zero Message resolves its Channel string lazily.
type ChanID int

// Message is a unit of communication between nodes. Payload is an arbitrary
// Go value (the simulation does not serialize); Size is the number of bytes
// the value would occupy on the wire and drives the timing model.
//
// Messages sent through the send helpers come from (and return to) the
// network's freelist: receivers that are done with a message may hand it
// back with FreeMessage, and at steady state the message flow allocates
// nothing.
type Message struct {
	From    int
	To      int
	Channel string // logical channel (service) name (diagnostics)
	Chan    ChanID // interned channel; 0 = resolve Channel on send
	Size    int
	Payload interface{}
	SentAt  sim.Time
}

// linkKey identifies one directed link of the topology.
type linkKey struct {
	from, to int
}

// LinkStats aggregates the contention observed on the network's links.
type LinkStats struct {
	// Waits counts messages that found their link busy and queued.
	Waits int
	// WaitTime is the total virtual time messages spent queued on busy
	// links.
	WaitTime sim.Duration
}

// Network connects n nodes with per-link timing resolved by a Topology. Each
// node owns one inbound queue per logical channel; Send schedules delivery
// events on the sim engine, Recv blocks a simulated thread until a message
// arrives.
//
// The model charges the sender-to-receiver latency per message and offers two
// optional occupancy models (both off by default; the paper's latencies are
// single-message costs):
//
//   - the NIC model serializes each node's outbound port, so one sender
//     blasting many destinations queues at its own interface;
//   - the link model serializes each directed (src,dst) link, so concurrent
//     page transfers crossing the same link queue FIFO instead of
//     overlapping for free, while transfers on disjoint links still overlap.
type Network struct {
	eng  *sim.Engine
	topo Topology
	n    int

	// Channel interning: names map to dense ChanIDs once, and the per-node
	// queues are indexed [node][id] — the per-message map lookup the
	// string-keyed design paid is gone from the send/receive hot path.
	chanIDs   map[string]ChanID
	chanNames []string
	queues    [][]*sim.Chan

	// msgFree recycles Message structs (see Message).
	msgFree freelist.List[*Message]

	// NIC occupancy model: when enabled, each node's outbound port
	// transmits one message at a time; a message occupies the port for its
	// payload's byte time, and later sends queue behind it.
	nicModel bool
	nicFree  []sim.Time // per node: when the outbound port frees up

	// Link occupancy model: when enabled, each directed link carries one
	// message at a time; a message occupies the link for its payload's
	// byte time at that link's rate, and later sends on the same link
	// queue FIFO behind it. The sender itself never blocks (PM2 sends are
	// asynchronous, the queueing happens in the interface).
	linkModel bool
	linkFree  map[linkKey]sim.Time
	linkStats LinkStats

	// faults is the network's fault layer: nil (and completely inert)
	// until EnableFaults is called. See fault.go.
	faults *faultState

	// stats
	msgs      int
	bytes     int64
	envelopes int
}

// NewNetwork creates a uniform network of n nodes using the given cost
// profile — the historical constructor, equivalent to NewNetworkTopology
// with a Uniform topology.
func NewNetwork(eng *sim.Engine, profile *Profile, n int) *Network {
	return NewNetworkTopology(eng, NewUniform(profile), n)
}

// NewNetworkTopology creates a network of n nodes whose per-link costs are
// resolved by topo. Topologies bound to a node count (Sizer) must match n.
func NewNetworkTopology(eng *sim.Engine, topo Topology, n int) *Network {
	if n < 1 {
		panic("madeleine: network needs at least 1 node")
	}
	if topo == nil {
		panic("madeleine: network needs a topology")
	}
	if s, ok := topo.(Sizer); ok && s.Nodes() != n {
		panic(fmt.Sprintf("madeleine: topology %s is built for %d nodes, network has %d",
			topo.Name(), s.Nodes(), n))
	}
	return &Network{
		eng:       eng,
		topo:      topo,
		n:         n,
		chanIDs:   make(map[string]ChanID),
		chanNames: []string{""}, // ChanID 0 reserved as "unset"
		queues:    make([][]*sim.Chan, n),
		nicFree:   make([]sim.Time, n),
		linkFree:  make(map[linkKey]sim.Time),
	}
}

// ChannelID interns a logical channel name and returns its dense id. The
// same name always yields the same id; senders and receivers that cache the
// id skip the name lookup entirely.
func (nw *Network) ChannelID(name string) ChanID {
	if id, ok := nw.chanIDs[name]; ok {
		return id
	}
	id := ChanID(len(nw.chanNames))
	nw.chanNames = append(nw.chanNames, name)
	nw.chanIDs[name] = id
	return id
}

// ChannelName returns the name interned for id ("" for the unset id).
func (nw *Network) ChannelName(id ChanID) string {
	if id <= 0 || int(id) >= len(nw.chanNames) {
		return ""
	}
	return nw.chanNames[id]
}

// getMsg takes a Message from the freelist (or allocates one).
func (nw *Network) getMsg() *Message {
	if m, ok := nw.msgFree.Get(); ok {
		return m
	}
	return new(Message)
}

// FreeMessage returns a received message to the freelist. Callers must not
// touch the message afterwards; keeping the payload is fine.
func (nw *Network) FreeMessage(m *Message) {
	if m == nil {
		return
	}
	*m = Message{}
	nw.msgFree.Put(m)
}

// SetNICModel enables or disables per-node outbound port serialization.
func (nw *Network) SetNICModel(on bool) { nw.nicModel = on }

// NICModel reports whether send-side port contention is being modelled.
func (nw *Network) NICModel() bool { return nw.nicModel }

// SetLinkContention enables or disables per-link bandwidth occupancy.
func (nw *Network) SetLinkContention(on bool) { nw.linkModel = on }

// LinkContention reports whether link occupancy is being modelled.
func (nw *Network) LinkContention() bool { return nw.linkModel }

// LinkStats reports the contention counters of the link model.
func (nw *Network) LinkStats() LinkStats { return nw.linkStats }

// Nodes reports the number of nodes in the network.
func (nw *Network) Nodes() int { return nw.n }

// Topology returns the topology resolving per-link costs.
func (nw *Network) Topology() Topology { return nw.topo }

// Profile returns the cost profile of a uniform network, or nil when the
// topology is heterogeneous (callers needing per-pair costs use Link).
func (nw *Network) Profile() *Profile { return UniformProfile(nw.topo) }

// Link returns the profile governing messages from src to dst. A sender
// outside the cluster (the driver, src < 0) is charged as dst-local;
// anything else out of range is a caller bug and panics like dst does.
func (nw *Network) Link(src, dst int) *Profile {
	if dst < 0 || dst >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", dst, nw.n))
	}
	if src >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", src, nw.n))
	}
	if src < 0 {
		src = dst
	}
	return nw.topo.Link(src, dst)
}

// Engine returns the sim engine the network schedules on.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

func (nw *Network) queue(node int, ch ChanID) *sim.Chan {
	if node < 0 || node >= nw.n {
		panic(fmt.Sprintf("madeleine: node %d out of range [0,%d)", node, nw.n))
	}
	if ch <= 0 || int(ch) >= len(nw.chanNames) {
		panic(fmt.Sprintf("madeleine: channel id %d not interned", ch))
	}
	qs := nw.queues[node]
	if int(ch) >= len(qs) {
		grown := make([]*sim.Chan, len(nw.chanNames))
		copy(grown, qs)
		qs = grown
		nw.queues[node] = qs
	}
	q := qs[ch]
	if q == nil {
		q = new(sim.Chan)
		qs[ch] = q
	}
	return q
}

// SendAfter delivers msg to its destination after latency d. Sends to the
// local node are delivered with the same latency: loopback communication in
// PM2 still crosses the RPC machinery. With an occupancy model enabled, the
// message first waits for the sender's port and/or its link to free and
// occupies them for its byte time; the sender itself never blocks (PM2 sends
// are asynchronous, the queueing happens in the interface).
func (nw *Network) SendAfter(msg *Message, d sim.Duration) {
	msg.SentAt = nw.eng.Now()
	nw.msgs++
	nw.bytes += int64(msg.Size)
	nw.envelopes++
	if msg.Chan == 0 {
		msg.Chan = nw.ChannelID(msg.Channel)
	}
	q := nw.queue(msg.To, msg.Chan)
	if nw.faults != nil && nw.intercept(msg.From, msg.To, q, msg, msg.Size, d, true) {
		return
	}
	depart := nw.departure(msg.From, msg.To, msg.Size)
	nw.eng.SchedulePush(depart.Add(d), q, msg)
}

// GatherPart is one component of a multi-part envelope: a payload bound for
// one logical channel of the destination, with its own wire size.
type GatherPart struct {
	Chan    ChanID
	Size    int
	Payload interface{}
}

// SendGather ships parts from->to as ONE wire envelope: the summed byte size
// crosses the NIC/link occupancy model exactly once (a single departure), the
// whole batch is charged latency d once, and on arrival the parts scatter to
// their per-channel inbound queues in part order. This is the scatter/gather
// primitive the batched DSM communication path rides on — N page operations
// leave the interface as one message instead of N.
//
// The fault model treats the envelope as a unit: a dead endpoint or a
// drop-policy partition discards every part (each pooled Message reclaimed
// exactly once), a queueing partition holds and later re-injects the whole
// envelope, and a lossy link draws its drop once per envelope. Multi-part
// envelopes are never duplicated: their parts carry coalesced-reply state
// that must complete exactly once.
func (nw *Network) SendGather(from, to int, parts []GatherPart, d sim.Duration) {
	if len(parts) == 0 {
		return
	}
	now := nw.eng.Now()
	total := 0
	msgs := make([]*Message, len(parts))
	for i, p := range parts {
		total += p.Size
		m := nw.getMsg()
		*m = Message{From: from, To: to, Channel: nw.ChannelName(p.Chan), Chan: p.Chan,
			Size: p.Size, Payload: p.Payload, SentAt: now}
		msgs[i] = m
	}
	nw.msgs += len(parts)
	nw.bytes += int64(total)
	nw.envelopes++
	if nw.faults != nil && nw.interceptGather(from, to, msgs, total, d) {
		return
	}
	nw.deliverGather(from, to, msgs, total, d)
}

// deliverGather performs the fault-free half of a gather send: one departure
// for the whole envelope, then one queue push per part at the arrival time.
func (nw *Network) deliverGather(from, to int, parts []*Message, total int, d sim.Duration) {
	depart := nw.departure(from, to, total)
	at := depart.Add(d)
	for _, m := range parts {
		nw.eng.SchedulePush(at, nw.queue(to, m.Chan), m)
	}
}

// departure resolves when a message of size bytes from from to to leaves the
// sending interface, advancing the NIC/link occupancy clocks when those
// models are enabled. The message departs once every enabled resource is
// free, and occupies all of them for its transmit time — stamping either
// resource before the other has pushed depart would mark it free while the
// message is still on the wire. The sender itself never blocks (PM2 sends
// are asynchronous, the queueing happens in the interface).
func (nw *Network) departure(from, to, size int) sim.Time {
	depart := nw.eng.Now()
	if (nw.nicModel || nw.linkModel) && from >= 0 && from < nw.n {
		tx := sim.Duration(float64(size) * nw.topo.Link(from, to).PerByte)
		key := linkKey{from, to}
		if nw.nicModel && nw.nicFree[from] > depart {
			depart = nw.nicFree[from]
		}
		if nw.linkModel {
			if free := nw.linkFree[key]; free > depart {
				nw.linkStats.Waits++
				nw.linkStats.WaitTime += free.Sub(depart)
				depart = free
			}
		}
		if nw.nicModel {
			nw.nicFree[from] = depart.Add(tx)
		}
		if nw.linkModel {
			nw.linkFree[key] = depart.Add(tx)
		}
	}
	return depart
}

// SendCtrl sends a small control message (request, invalidation, ack),
// charged at the link's CtrlMsg latency.
func (nw *Network) SendCtrl(from, to int, channel string, payload interface{}) {
	nw.SendCtrlID(from, to, nw.ChannelID(channel), payload)
}

// SendCtrlID is SendCtrl for a pre-interned channel.
func (nw *Network) SendCtrlID(from, to int, ch ChanID, payload interface{}) {
	m := nw.getMsg()
	*m = Message{From: from, To: to, Channel: nw.ChannelName(ch), Chan: ch, Size: 64, Payload: payload}
	nw.SendAfter(m, nw.Link(from, to).CtrlMsg)
}

// SendID sends a pooled message on a pre-interned channel with an explicit
// latency (the RPC layer computes half-round-trip costs itself).
func (nw *Network) SendID(from, to int, ch ChanID, size int, payload interface{}, d sim.Duration) {
	m := nw.getMsg()
	*m = Message{From: from, To: to, Channel: nw.ChannelName(ch), Chan: ch, Size: size, Payload: payload}
	nw.SendAfter(m, d)
}

// SendBulk sends size payload bytes (for example a page or a diff list),
// charged at the link's Transfer(size) latency.
func (nw *Network) SendBulk(from, to int, channel string, size int, payload interface{}) {
	nw.SendBulkID(from, to, nw.ChannelID(channel), size, payload)
}

// SendBulkID is SendBulk for a pre-interned channel.
func (nw *Network) SendBulkID(from, to int, ch ChanID, size int, payload interface{}) {
	m := nw.getMsg()
	*m = Message{From: from, To: to, Channel: nw.ChannelName(ch), Chan: ch, Size: size, Payload: payload}
	nw.SendAfter(m, nw.Link(from, to).Transfer(size))
}

// SendDirect delivers payload into a caller-provided queue after latency d,
// bypassing the per-node channel tables. RPC replies use this: the caller
// owns a private reply queue, so no channel naming is needed; the caller
// computes d from the link it is answering over. Replies are subject to the
// same NIC/link occupancy models as named-channel traffic — a reply crossing
// a saturated link queues exactly like the request did.
func (nw *Network) SendDirect(from, to int, q *sim.Chan, size int, payload interface{}, d sim.Duration) {
	nw.msgs++
	nw.bytes += int64(size)
	nw.envelopes++
	if nw.faults != nil && nw.intercept(from, to, q, payload, size, d, false) {
		return
	}
	depart := nw.departure(from, to, size)
	nw.eng.SchedulePush(depart.Add(d), q, payload)
}

// Recv blocks the calling proc until a message arrives for node on channel.
func (nw *Network) Recv(p *sim.Proc, node int, channel string) *Message {
	return nw.RecvID(p, node, nw.ChannelID(channel))
}

// RecvID is Recv for a pre-interned channel.
func (nw *Network) RecvID(p *sim.Proc, node int, ch ChanID) *Message {
	return nw.queue(node, ch).Recv(p).(*Message)
}

// TryRecv returns a pending message for node on channel without blocking.
func (nw *Network) TryRecv(node int, channel string) (*Message, bool) {
	v, ok := nw.queue(node, nw.ChannelID(channel)).TryRecv()
	if !ok {
		return nil, false
	}
	return v.(*Message), true
}

// Stats reports cumulative message and byte counts.
func (nw *Network) Stats() (messages int, bytes int64) { return nw.msgs, nw.bytes }

// Envelopes reports the cumulative number of wire envelopes that departed:
// every plain send (named-channel or direct) counts one, and a multi-part
// gather counts one regardless of how many parts it carries. The spread
// between Stats' message count and this counter is exactly what batching
// saved.
func (nw *Network) Envelopes() int { return nw.envelopes }
