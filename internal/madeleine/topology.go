package madeleine

import (
	"fmt"
	"sort"
	"strings"
)

// Topology resolves the cost profile governing every directed node pair of a
// cluster. It is the seam that lets the same protocol stack run over
// heterogeneous interconnects — the paper's portability claim — without the
// protocols knowing: a uniform cluster, hierarchical clusters with a fast
// internal network and a slow backbone, or an arbitrary per-link matrix all
// present the same interface to the layers above.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string

	// Link returns the profile for messages travelling from src to dst.
	// src == dst is loopback, which is still charged (PM2 loopback crosses
	// the full RPC machinery). Implementations must return a non-nil
	// profile for every pair of valid nodes.
	Link(src, dst int) *Profile
}

// Sizer is an optional Topology extension: topologies bound to a fixed node
// count implement it so the network can reject a mismatched cluster size at
// construction instead of panicking mid-run.
type Sizer interface {
	// Nodes returns the node count the topology was built for.
	Nodes() int
}

// Uniform is the homogeneous special case: one profile for every pair,
// exactly the model the paper's Tables 3 and 4 are calibrated against.
// Wrapping a profile in a Uniform topology is bit-for-bit equivalent to the
// historical single-profile network.
type Uniform struct {
	P *Profile
}

// NewUniform wraps a single profile as a topology.
func NewUniform(p *Profile) *Uniform {
	if p == nil {
		panic("madeleine: uniform topology needs a profile")
	}
	return &Uniform{P: p}
}

// Name implements Topology.
func (u *Uniform) Name() string { return u.P.Name }

// Link implements Topology: every pair uses the same profile.
func (u *Uniform) Link(src, dst int) *Profile { return u.P }

// Hierarchical models a multi-cluster machine: nodes within one cluster talk
// over a fast Intra profile (e.g. SISCI/SCI), nodes in different clusters
// over a slow Inter profile (e.g. TCP over the campus Ethernet). This is the
// configuration the paper's portability story points at but never measures:
// the same protocols run unchanged, only the link costs diverge.
type Hierarchical struct {
	cluster      []int // node -> cluster id
	Intra, Inter *Profile
}

// NewHierarchical builds a hierarchical topology from an explicit node ->
// cluster assignment. Use EvenClusters for the common equal-block layout.
func NewHierarchical(cluster []int, intra, inter *Profile) *Hierarchical {
	if intra == nil || inter == nil {
		panic("madeleine: hierarchical topology needs intra and inter profiles")
	}
	if len(cluster) == 0 {
		panic("madeleine: hierarchical topology needs a cluster assignment")
	}
	return &Hierarchical{
		cluster: append([]int(nil), cluster...),
		Intra:   intra,
		Inter:   inter,
	}
}

// EvenClusters assigns nodes to clusters in contiguous blocks as equal as
// possible: EvenClusters(5, 2) = [0 0 0 1 1].
func EvenClusters(nodes, clusters int) []int {
	if nodes < 1 || clusters < 1 {
		panic(fmt.Sprintf("madeleine: invalid cluster layout %d nodes / %d clusters", nodes, clusters))
	}
	if clusters > nodes {
		clusters = nodes
	}
	out := make([]int, nodes)
	base := nodes / clusters
	extra := nodes % clusters
	node := 0
	for c := 0; c < clusters; c++ {
		size := base
		if c < extra {
			size++
		}
		for i := 0; i < size; i++ {
			out[node] = c
			node++
		}
	}
	return out
}

// Name implements Topology.
func (h *Hierarchical) Name() string {
	return fmt.Sprintf("hier[%s|%s]", h.Intra.Name, h.Inter.Name)
}

// Nodes implements Sizer.
func (h *Hierarchical) Nodes() int { return len(h.cluster) }

// ClusterOf returns the cluster node belongs to.
func (h *Hierarchical) ClusterOf(node int) int {
	if node < 0 || node >= len(h.cluster) {
		panic(fmt.Sprintf("madeleine: node %d outside hierarchical topology of %d nodes", node, len(h.cluster)))
	}
	return h.cluster[node]
}

// Clusters returns the number of distinct clusters.
func (h *Hierarchical) Clusters() int {
	seen := map[int]bool{}
	for _, c := range h.cluster {
		seen[c] = true
	}
	return len(seen)
}

// Link implements Topology: intra-cluster pairs use the fast profile,
// inter-cluster pairs the slow one. Loopback is intra by definition.
func (h *Hierarchical) Link(src, dst int) *Profile {
	if h.ClusterOf(src) == h.ClusterOf(dst) {
		return h.Intra
	}
	return h.Inter
}

// LinkMatrix is the fully general topology: an arbitrary profile per
// directed pair, with a default for pairs not explicitly set. It expresses
// asymmetric scenarios (an upload-constrained node, a single degraded cable)
// that neither Uniform nor Hierarchical can.
type LinkMatrix struct {
	def   *Profile
	links map[[2]int]*Profile
}

// NewLinkMatrix builds a matrix topology whose unset pairs use def.
func NewLinkMatrix(def *Profile) *LinkMatrix {
	if def == nil {
		panic("madeleine: link matrix needs a default profile")
	}
	return &LinkMatrix{def: def, links: make(map[[2]int]*Profile)}
}

// SetLink assigns the profile for the directed link src -> dst.
func (m *LinkMatrix) SetLink(src, dst int, p *Profile) *LinkMatrix {
	if p == nil {
		panic("madeleine: nil profile on link")
	}
	m.links[[2]int{src, dst}] = p
	return m
}

// SetDuplex assigns the profile for both directions between a and b.
func (m *LinkMatrix) SetDuplex(a, b int, p *Profile) *LinkMatrix {
	return m.SetLink(a, b, p).SetLink(b, a, p)
}

// Name implements Topology.
func (m *LinkMatrix) Name() string {
	return fmt.Sprintf("matrix[%s+%d]", m.def.Name, len(m.links))
}

// Link implements Topology.
func (m *LinkMatrix) Link(src, dst int) *Profile {
	if p, ok := m.links[[2]int{src, dst}]; ok {
		return p
	}
	return m.def
}

// UniformProfile returns the single profile of a uniform topology, or nil
// for heterogeneous topologies. Callers that need one representative cost
// model (the paper-reproduction benchmarks) use it to reject topologies they
// cannot summarize.
func UniformProfile(t Topology) *Profile {
	if u, ok := t.(*Uniform); ok {
		return u.P
	}
	return nil
}

// profileAliases maps user-facing shorthand to canonical profile names, so
// command-line flags accept "TCP/Ethernet" for the paper's "TCP/Fast
// Ethernet" row and similar sloppy spellings.
var profileAliases = map[string]*Profile{
	"tcp/ethernet":     TCPFastEthernet,
	"tcp/fastethernet": TCPFastEthernet,
	"ethernet":         TCPFastEthernet,
	"bip":              BIPMyrinet,
	"myrinet":          BIPMyrinet,
	"sci":              SISCISCI,
	"sisci":            SISCISCI,
}

// ResolveProfile finds a profile by exact name, case-insensitive name, or
// one of a few common aliases ("TCP/Ethernet", "SCI", ...). It returns nil
// if nothing matches; ProfileNames lists what would.
func ResolveProfile(name string) *Profile {
	if p := ByName(name); p != nil {
		return p
	}
	lower := strings.ToLower(strings.TrimSpace(name))
	for _, p := range Profiles {
		if strings.ToLower(p.Name) == lower {
			return p
		}
	}
	return profileAliases[lower]
}

// ProfileNames lists the canonical profile names, sorted.
func ProfileNames() []string {
	out := make([]string, 0, len(Profiles))
	for _, p := range Profiles {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}
