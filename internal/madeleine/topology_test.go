package madeleine

import (
	"strings"
	"testing"

	"dsmpm2/internal/sim"
)

func TestUniformLinkEverywhere(t *testing.T) {
	u := NewUniform(BIPMyrinet)
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if u.Link(src, dst) != BIPMyrinet {
				t.Fatalf("uniform link (%d,%d) != profile", src, dst)
			}
		}
	}
	if u.Name() != BIPMyrinet.Name {
		t.Errorf("uniform name = %q", u.Name())
	}
	if UniformProfile(u) != BIPMyrinet {
		t.Error("UniformProfile failed to unwrap a uniform topology")
	}
}

func TestEvenClusters(t *testing.T) {
	cases := []struct {
		nodes, clusters int
		want            []int
	}{
		{4, 2, []int{0, 0, 1, 1}},
		{5, 2, []int{0, 0, 0, 1, 1}},
		{6, 3, []int{0, 0, 1, 1, 2, 2}},
		{3, 1, []int{0, 0, 0}},
		{2, 5, []int{0, 1}}, // clusters clamp to nodes
	}
	for _, c := range cases {
		got := EvenClusters(c.nodes, c.clusters)
		if len(got) != len(c.want) {
			t.Fatalf("EvenClusters(%d,%d) = %v", c.nodes, c.clusters, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("EvenClusters(%d,%d) = %v, want %v", c.nodes, c.clusters, got, c.want)
				break
			}
		}
	}
}

func TestHierarchicalLinks(t *testing.T) {
	h := NewHierarchical(EvenClusters(4, 2), SISCISCI, TCPFastEthernet)
	if h.Nodes() != 4 || h.Clusters() != 2 {
		t.Fatalf("layout: %d nodes, %d clusters", h.Nodes(), h.Clusters())
	}
	if h.Link(0, 1) != SISCISCI || h.Link(2, 3) != SISCISCI {
		t.Error("intra-cluster pair did not resolve to the intra profile")
	}
	if h.Link(0, 0) != SISCISCI {
		t.Error("loopback must be intra")
	}
	if h.Link(1, 2) != TCPFastEthernet || h.Link(3, 0) != TCPFastEthernet {
		t.Error("inter-cluster pair did not resolve to the inter profile")
	}
	if !strings.Contains(h.Name(), SISCISCI.Name) || !strings.Contains(h.Name(), TCPFastEthernet.Name) {
		t.Errorf("name %q does not identify the profiles", h.Name())
	}
	if UniformProfile(h) != nil {
		t.Error("hierarchical topology must not unwrap to a uniform profile")
	}
}

func TestHierarchicalOutOfRangePanics(t *testing.T) {
	h := NewHierarchical(EvenClusters(2, 2), SISCISCI, TCPFastEthernet)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node did not panic")
		}
	}()
	h.Link(0, 2)
}

func TestLinkMatrixDefaultAndOverrides(t *testing.T) {
	m := NewLinkMatrix(BIPMyrinet).
		SetLink(0, 1, TCPFastEthernet).
		SetDuplex(1, 2, SISCISCI)
	if m.Link(0, 1) != TCPFastEthernet {
		t.Error("directed override ignored")
	}
	if m.Link(1, 0) != BIPMyrinet {
		t.Error("reverse of a directed override must use the default (asymmetry)")
	}
	if m.Link(1, 2) != SISCISCI || m.Link(2, 1) != SISCISCI {
		t.Error("duplex override ignored")
	}
	if m.Link(2, 0) != BIPMyrinet {
		t.Error("unset pair must use the default")
	}
}

func TestNetworkTopologySizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched topology size did not panic")
		}
	}()
	NewNetworkTopology(sim.NewEngine(1), NewHierarchical(EvenClusters(4, 2), SISCISCI, TCPFastEthernet), 3)
}

func TestResolveProfile(t *testing.T) {
	cases := map[string]*Profile{
		"BIP/Myrinet":       BIPMyrinet,
		"bip/myrinet":       BIPMyrinet,
		"TCP/Ethernet":      TCPFastEthernet,
		"tcp/fast ethernet": TCPFastEthernet,
		"SCI":               SISCISCI,
		"sisci":             SISCISCI,
		"carrier pigeon":    nil,
	}
	for name, want := range cases {
		if got := ResolveProfile(name); got != want {
			t.Errorf("ResolveProfile(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestHierarchicalNetworkLatencies checks that messages are charged the cost
// of the link they actually cross: an intra-cluster control message arrives
// at the intra profile's latency, an inter-cluster one at the inter's.
func TestHierarchicalNetworkLatencies(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := NewHierarchical(EvenClusters(4, 2), SISCISCI, TCPFastEthernet)
	nw := NewNetworkTopology(eng, topo, 4)
	var intraAt, interAt sim.Time
	eng.Go("recvIntra", func(p *sim.Proc) {
		nw.Recv(p, 1, "ch")
		intraAt = p.Now()
	})
	eng.Go("recvInter", func(p *sim.Proc) {
		nw.Recv(p, 2, "ch")
		interAt = p.Now()
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "ch", nil) // same cluster
		nw.SendCtrl(0, 2, "ch", nil) // crosses the backbone
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if intraAt != sim.Time(SISCISCI.CtrlMsg) {
		t.Errorf("intra-cluster ctrl arrived at %v, want %v", intraAt, SISCISCI.CtrlMsg)
	}
	if interAt != sim.Time(TCPFastEthernet.CtrlMsg) {
		t.Errorf("inter-cluster ctrl arrived at %v, want %v", interAt, TCPFastEthernet.CtrlMsg)
	}
}

// TestLinkContentionSerializesSharedLink is the contention acceptance case:
// two concurrent 4 KiB transfers on the same directed link queue FIFO, so
// the second arrives one byte-time later and the wait shows up in LinkStats.
func TestLinkContentionSerializesSharedLink(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	nw.SetLinkContention(true)
	var arrivals []sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Recv(p, 1, "ch")
			arrivals = append(arrivals, p.Now())
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 1, "ch", 4096, nil)
		nw.SendBulk(0, 1, "ch", 4096, nil) // same link: queues behind the first
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	gap := arrivals[1].Sub(arrivals[0])
	tx := sim.Duration(4096 * BIPMyrinet.PerByte)
	if gap < tx-sim.Microsecond || gap > tx+sim.Microsecond {
		t.Fatalf("arrival gap = %v, want one 4KiB byte time (~%v)", gap, tx)
	}
	ls := nw.LinkStats()
	if ls.Waits != 1 || ls.WaitTime <= 0 {
		t.Fatalf("link stats = %+v, want 1 wait with positive queueing delay", ls)
	}
}

// TestLinkContentionDisjointLinksOverlap: transfers on different links do not
// serialize, even from the same sender.
func TestLinkContentionDisjointLinksOverlap(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 3)
	nw.SetLinkContention(true)
	var arrivals []sim.Time
	recv := func(node int) {
		eng.Go("recv", func(p *sim.Proc) {
			nw.Recv(p, node, "ch")
			arrivals = append(arrivals, p.Now())
		})
	}
	recv(1)
	recv(2)
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 1, "ch", 4096, nil)
		nw.SendBulk(0, 2, "ch", 4096, nil) // different link: no queueing
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != arrivals[1] {
		t.Fatalf("disjoint links must not serialize: %v", arrivals)
	}
	if ls := nw.LinkStats(); ls.Waits != 0 {
		t.Fatalf("no queueing expected, stats = %+v", ls)
	}
}

// TestLinkContentionOppositeDirectionsOverlap: the model is per directed
// link, so full-duplex traffic does not self-interfere.
func TestLinkContentionOppositeDirectionsOverlap(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	nw.SetLinkContention(true)
	var arrivals []sim.Time
	eng.Go("recv0", func(p *sim.Proc) {
		nw.Recv(p, 0, "ch")
		arrivals = append(arrivals, p.Now())
	})
	eng.Go("recv1", func(p *sim.Proc) {
		nw.Recv(p, 1, "ch")
		arrivals = append(arrivals, p.Now())
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 1, "ch", 4096, nil)
		nw.SendBulk(1, 0, "ch", 4096, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != arrivals[1] {
		t.Fatalf("opposite directions must not serialize: %v", arrivals)
	}
}

// TestLinkContentionOffUnchanged: with the model off, same-link transfers
// overlap exactly as the calibrated single-message model prescribes.
func TestLinkContentionOffUnchanged(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	if nw.LinkContention() {
		t.Fatal("link contention must default off")
	}
	var arrivals []sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Recv(p, 1, "ch")
			arrivals = append(arrivals, p.Now())
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 1, "ch", 4096, nil)
		nw.SendBulk(0, 1, "ch", 4096, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != arrivals[1] {
		t.Fatalf("without the link model the transfers should overlap: %v", arrivals)
	}
}

// TestNICAndLinkModelsCompose: with both occupancy models on, a message
// holds its NIC until it has actually transmitted — a send to a different
// destination queues behind the full transmit, not behind a stale NIC stamp.
func TestNICAndLinkModelsCompose(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 3)
	nw.SetNICModel(true)
	nw.SetLinkContention(true)
	arrivals := map[int]sim.Time{}
	recv := func(node int) {
		eng.Go("recv", func(p *sim.Proc) {
			nw.Recv(p, node, "ch")
			arrivals[node] = p.Now()
		})
	}
	recv(1)
	recv(2)
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 1, "ch", 4096, nil)
		nw.SendBulk(0, 2, "ch", 4096, nil) // same NIC, different link
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	gap := arrivals[2].Sub(arrivals[1])
	tx := sim.Duration(4096 * BIPMyrinet.PerByte)
	if gap < tx-sim.Microsecond || gap > tx+sim.Microsecond {
		t.Fatalf("NIC gap with both models = %v, want one 4KiB byte time (~%v)", gap, tx)
	}
}

// TestHierContendedLinkUsesLinkRate: queueing time on a contended link is
// charged at that link's byte rate, not some global profile's.
func TestHierContendedLinkUsesLinkRate(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := NewHierarchical(EvenClusters(4, 2), SISCISCI, TCPFastEthernet)
	nw := NewNetworkTopology(eng, topo, 4)
	nw.SetLinkContention(true)
	var arrivals []sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Recv(p, 2, "ch")
			arrivals = append(arrivals, p.Now())
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendBulk(0, 2, "ch", 4096, nil) // inter-cluster link
		nw.SendBulk(0, 2, "ch", 4096, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	gap := arrivals[1].Sub(arrivals[0])
	tx := sim.Duration(4096 * TCPFastEthernet.PerByte)
	if gap < tx-sim.Microsecond || gap > tx+sim.Microsecond {
		t.Fatalf("gap = %v, want the inter profile's 4KiB byte time (~%v)", gap, tx)
	}
}
