package madeleine

import (
	"math"
	"testing"
	"testing/quick"

	"dsmpm2/internal/sim"
)

// roundUS rounds a duration to whole microseconds, the paper's precision.
func roundUS(d sim.Duration) int {
	return int(math.Round(d.Microseconds()))
}

// TestCalibrationTable3 checks that the profile constants reproduce the
// paper's Table 3 rows exactly (at microsecond rounding).
func TestCalibrationTable3(t *testing.T) {
	cases := []struct {
		p                 *Profile
		request, transfer int
	}{
		{BIPMyrinet, 23, 138},
		{TCPMyrinet, 220, 343},
		{TCPFastEthernet, 220, 736},
		{SISCISCI, 38, 119},
	}
	for _, c := range cases {
		if got := roundUS(c.p.CtrlMsg); got != c.request {
			t.Errorf("%s: request cost = %dus, want %dus", c.p.Name, got, c.request)
		}
		if got := roundUS(c.p.Transfer(PageSize4K)); got != c.transfer {
			t.Errorf("%s: 4KiB transfer = %dus, want %dus", c.p.Name, got, c.transfer)
		}
	}
}

// TestCalibrationTable4 checks the thread migration row of Table 4.
func TestCalibrationTable4(t *testing.T) {
	cases := []struct {
		p   *Profile
		mig int
	}{
		{BIPMyrinet, 75},
		{TCPMyrinet, 280},
		{TCPFastEthernet, 373},
		{SISCISCI, 62},
	}
	for _, c := range cases {
		if got := roundUS(c.p.Migration(MigrationPayload)); got != c.mig {
			t.Errorf("%s: migration = %dus, want %dus", c.p.Name, got, c.mig)
		}
	}
}

// TestCalibrationRPC checks the Section 2.1 null RPC latencies.
func TestCalibrationRPC(t *testing.T) {
	if roundUS(BIPMyrinet.RPCBase) != 8 {
		t.Errorf("BIP/Myrinet null RPC = %v, want 8us", BIPMyrinet.RPCBase)
	}
	if roundUS(SISCISCI.RPCBase) != 6 {
		t.Errorf("SISCI/SCI null RPC = %v, want 6us", SISCISCI.RPCBase)
	}
}

func TestTransferMonotonic(t *testing.T) {
	for _, p := range Profiles {
		if p.Transfer(0) != p.XferBase {
			t.Errorf("%s: Transfer(0) = %v, want base %v", p.Name, p.Transfer(0), p.XferBase)
		}
		if p.Transfer(8192) <= p.Transfer(4096) {
			t.Errorf("%s: transfer cost not monotonic in size", p.Name)
		}
		if p.Transfer(-1) != p.XferBase {
			t.Errorf("%s: negative size not clamped", p.Name)
		}
		if p.Migration(-1) != p.MigBase {
			t.Errorf("%s: negative migration size not clamped", p.Name)
		}
	}
}

func TestMigrationGrowsWithStack(t *testing.T) {
	// Section 4: "this migration time is closely related to the stack size
	// of the thread".
	for _, p := range Profiles {
		small := p.Migration(MigrationPayload)
		big := p.Migration(64 * 1024)
		if big <= small {
			t.Errorf("%s: 64KiB-stack migration (%v) not slower than minimal (%v)",
				p.Name, big, small)
		}
	}
}

func TestMigBasePositive(t *testing.T) {
	for _, p := range Profiles {
		if p.MigBase <= 0 {
			t.Errorf("%s: calibration produced non-positive MigBase %v", p.Name, p.MigBase)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("BIP/Myrinet") != BIPMyrinet {
		t.Error("ByName failed to find BIP/Myrinet")
	}
	if ByName("carrier pigeon") != nil {
		t.Error("ByName invented a profile")
	}
}

func TestSendRecvLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	var arrived sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		m := nw.Recv(p, 1, "test")
		arrived = p.Now()
		if m.From != 0 || m.Payload.(string) != "hello" {
			t.Errorf("bad message %+v", m)
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "test", "hello")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != sim.Time(BIPMyrinet.CtrlMsg) {
		t.Fatalf("control message arrived at %v, want %v", arrived, BIPMyrinet.CtrlMsg)
	}
}

func TestBulkSlowerThanCtrl(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, SISCISCI, 2)
	var ctrlAt, bulkAt sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			m := nw.Recv(p, 1, "ch")
			if m.Size == 64 {
				ctrlAt = p.Now()
			} else {
				bulkAt = p.Now()
			}
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "ch", nil)
		nw.SendBulk(0, 1, "ch", 4096, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if bulkAt <= ctrlAt {
		t.Fatalf("4KiB bulk (%v) not slower than control (%v)", bulkAt, ctrlAt)
	}
}

func TestPerChannelQueuesIndependent(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	got := []string{}
	eng.Go("recvB", func(p *sim.Proc) {
		nw.Recv(p, 1, "b")
		got = append(got, "b")
	})
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "a", nil) // nobody listens on "a"; must not block "b"
		nw.SendCtrl(0, 1, "b", nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("channel b receiver never ran")
	}
	if m, ok := nw.TryRecv(1, "a"); !ok || m.Channel != "a" {
		t.Fatalf("message on channel a lost")
	}
}

func TestLoopbackStillCharged(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, SISCISCI, 1)
	var at sim.Time
	eng.Go("self", func(p *sim.Proc) {
		nw.SendCtrl(0, 0, "loop", nil)
		nw.Recv(p, 0, "loop")
		at = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at == 0 {
		t.Fatal("loopback message delivered instantaneously")
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	eng.Go("send", func(p *sim.Proc) {
		nw.SendCtrl(0, 1, "x", nil)
		nw.SendBulk(0, 1, "x", 4096, nil)
	})
	eng.Go("recv", func(p *sim.Proc) {
		nw.Recv(p, 1, "x")
		nw.Recv(p, 1, "x")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := nw.Stats()
	if msgs != 2 || bytes != 64+4096 {
		t.Fatalf("stats = %d msgs, %d bytes; want 2, 4160", msgs, bytes)
	}
}

func TestBadNodePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := NewNetwork(eng, BIPMyrinet, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node did not panic")
		}
	}()
	nw.SendCtrl(0, 5, "x", nil)
}

// Property: transfer cost is affine in size, i.e. Transfer(a+b) - Transfer(a)
// depends only on b (within 1ns rounding).
func TestTransferAffineProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		for _, p := range Profiles {
			d1 := p.Transfer(int(a)+int(b)) - p.Transfer(int(a))
			d2 := p.Transfer(int(b)) - p.Transfer(0)
			diff := d1 - d2
			if diff < -1 || diff > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
