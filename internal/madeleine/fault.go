package madeleine

import (
	"fmt"
	"math/rand"

	"dsmpm2/internal/sim"
)

// Network-level fault state. Everything in this file is gated on
// Network.faults being non-nil: a network without EnableFaults pays a single
// nil check per send and behaves bit-for-bit like the fault-free code.
//
// The model is fail-stop nodes plus per-directed-link faults:
//
//   - a dead node neither sends nor receives; messages addressed to (or
//     from) it are dropped at the sending interface, and its inbound queues
//     are replaced wholesale so that in-flight deliveries land in orphaned
//     channels instead of leaking into a later incarnation of the node;
//   - a partitioned link either queues its traffic until the link heals
//     (PartitionQueue, the default — models a transient partition with
//     reliable transport underneath) or drops it (PartitionDrop);
//   - a lossy link drops or duplicates each message independently with the
//     configured probabilities, drawn from the fault layer's private PRNG so
//     the engine's own random stream — and therefore the fault-free portion
//     of the replay — is untouched.

// PartitionPolicy selects what happens to messages sent over a partitioned
// link.
type PartitionPolicy int

const (
	// PartitionQueue holds messages and re-injects them, FIFO per link,
	// when the link heals.
	PartitionQueue PartitionPolicy = iota
	// PartitionDrop discards messages sent over a partitioned link.
	PartitionDrop
)

// FaultStats aggregates the fault layer's counters.
type FaultStats struct {
	// DeadDrops counts messages dropped because an endpoint was dead.
	DeadDrops int
	// Dropped counts messages discarded by partitions or lossy links.
	Dropped int
	// Duplicated counts extra copies injected by lossy links.
	Duplicated int
	// Held counts messages queued on partitioned links.
	Held int
	// HeldTime is the total virtual time held messages spent waiting for
	// their link to heal — the fault-induced latency the timing reports
	// attribute to the link (it surfaces in FaultTiming.Transfer and
	// TimingLog.ByLink automatically, since transfer time is measured
	// send-to-receive).
	HeldTime sim.Duration
	// Crashes and Restarts count node fault events applied.
	Crashes  int
	Restarts int
}

// heldMsg is one message parked on a partitioned link. A multi-part
// envelope (SendGather) is held as a unit: parts is non-nil, q/payload are
// unused, and heal re-injects the whole envelope through one departure.
type heldMsg struct {
	from    int
	to      int
	q       *sim.Chan
	payload interface{}
	size    int
	d       sim.Duration // arrival latency to charge from heal time
	isMsg   bool         // payload is a pooled *Message owned by this network
	parts   []*Message   // multi-part envelope held as a unit
	heldAt  sim.Time
}

// dropParts reclaims every part of a discarded multi-part envelope: each
// pooled Message (and its inner payload, via the drop handler) exactly once.
func (nw *Network) dropParts(parts []*Message) {
	for _, m := range parts {
		nw.dropPayload(m, true)
	}
}

// linkFault is the fault state of one directed link.
type linkFault struct {
	partitioned bool
	dropRate    float64
	dupRate     float64
	held        []heldMsg
}

// faultState is the network's fault layer (nil when faults are disabled).
type faultState struct {
	rng    *rand.Rand
	policy PartitionPolicy
	dead   []bool
	links  map[linkKey]*linkFault
	onDrop func(payload interface{})
	dup    func(payload interface{}) interface{}
	stats  FaultStats
}

// EnableFaults switches the fault layer on. seed drives the private PRNG
// behind probabilistic loss (zero means 1); policy selects the partition
// behaviour. Enabling faults on a quiet network is free until a fault is
// actually injected.
func (nw *Network) EnableFaults(seed int64, policy PartitionPolicy) {
	if seed == 0 {
		seed = 1
	}
	nw.faults = &faultState{
		rng:    rand.New(rand.NewSource(seed)),
		policy: policy,
		dead:   make([]bool, nw.n),
		links:  make(map[linkKey]*linkFault),
	}
}

// FaultsEnabled reports whether the fault layer is on.
func (nw *Network) FaultsEnabled() bool { return nw.faults != nil }

// FaultStats returns the fault layer's counters (zero value when disabled).
func (nw *Network) FaultStats() FaultStats {
	if nw.faults == nil {
		return FaultStats{}
	}
	return nw.faults.stats
}

// SetDropHandler installs fn, called exactly once with the payload of every
// message the fault layer discards, after the network has reclaimed its own
// *Message envelope. The PM2 runtime uses it to return pooled rpcReq
// envelopes to their freelist; without a handler dropped payloads are simply
// left to the garbage collector.
func (nw *Network) SetDropHandler(fn func(payload interface{})) {
	nw.mustFaults("SetDropHandler").onDrop = fn
}

// SetDupHandler installs fn, called to produce an independent copy of a
// payload when a lossy link duplicates a message. Returning nil vetoes the
// duplication (the message is delivered once). Only named-channel messages
// are ever duplicated; direct sends (RPC replies, acks) are not, because
// their receivers own the reply queue and cannot distinguish copies.
func (nw *Network) SetDupHandler(fn func(payload interface{}) interface{}) {
	nw.mustFaults("SetDupHandler").dup = fn
}

func (nw *Network) mustFaults(op string) *faultState {
	if nw.faults == nil {
		panic("madeleine: " + op + " before EnableFaults")
	}
	return nw.faults
}

// NodeDead reports whether node n is currently crashed.
func (nw *Network) NodeDead(n int) bool {
	return nw.faults != nil && n >= 0 && n < nw.n && nw.faults.dead[n]
}

// CrashNode fail-stops node n: subsequent messages to or from it are
// dropped, its inbound queues are replaced (in-flight deliveries land in the
// orphaned queues of the dead incarnation), and messages already held for it
// on partitioned links are discarded.
func (nw *Network) CrashNode(n int) {
	fs := nw.mustFaults("CrashNode")
	if n < 0 || n >= nw.n {
		panic(fmt.Sprintf("madeleine: crash of node %d out of range [0,%d)", n, nw.n))
	}
	if fs.dead[n] {
		return
	}
	fs.dead[n] = true
	fs.stats.Crashes++
	// Old queues are orphaned, not drained: deliveries already scheduled on
	// the engine hold pointers to them and must not reach the node's next
	// incarnation. Pending messages they contain are reclaimed now.
	old := nw.queues[n]
	nw.queues[n] = make([]*sim.Chan, 0)
	for _, q := range old {
		if q == nil {
			continue
		}
		for {
			v, ok := q.TryRecv()
			if !ok {
				break
			}
			nw.dropPayload(v, true)
		}
	}
	// Messages parked on partitioned links to or from n will never be
	// wanted: deliveries to a corpse are drops, and the fail-stop model
	// says nothing sent by the dead incarnation may surface later (a held
	// lock-acquire delivered after the node restarts would hand a ghost
	// request resources its sender can never use).
	for _, lf := range fs.links {
		kept := lf.held[:0]
		for _, hm := range lf.held {
			if hm.to == n || hm.from == n {
				if hm.parts != nil {
					nw.dropParts(hm.parts)
				} else {
					nw.dropPayload(hm.payload, hm.isMsg)
				}
				fs.stats.Dropped++
				continue
			}
			kept = append(kept, hm)
		}
		lf.held = kept
	}
}

// RestartNode brings a crashed node back. Its queues start empty (they were
// replaced at crash time); state above the network (pages, threads) is the
// upper layers' recovery problem.
func (nw *Network) RestartNode(n int) {
	fs := nw.mustFaults("RestartNode")
	if n < 0 || n >= nw.n {
		panic(fmt.Sprintf("madeleine: restart of node %d out of range [0,%d)", n, nw.n))
	}
	if !fs.dead[n] {
		return
	}
	fs.dead[n] = false
	fs.stats.Restarts++
}

// link returns (creating on demand) the fault state of the directed link.
func (fs *faultState) link(from, to int) *linkFault {
	key := linkKey{from, to}
	lf := fs.links[key]
	if lf == nil {
		lf = &linkFault{}
		fs.links[key] = lf
	}
	return lf
}

// PartitionLink cuts the directed link from->to.
func (nw *Network) PartitionLink(from, to int) {
	nw.mustFaults("PartitionLink").link(from, to).partitioned = true
}

// HealLink restores the directed link from->to, re-injecting any held
// messages in FIFO order with their original latency charged from now.
func (nw *Network) HealLink(from, to int) {
	fs := nw.mustFaults("HealLink")
	lf := fs.links[linkKey{from, to}]
	if lf == nil || !lf.partitioned {
		return
	}
	lf.partitioned = false
	held := lf.held
	lf.held = nil
	now := nw.eng.Now()
	for _, hm := range held {
		dead := func(n int) bool { return n >= 0 && n < nw.n && fs.dead[n] }
		if dead(hm.to) || dead(hm.from) {
			if hm.parts != nil {
				nw.dropParts(hm.parts)
			} else {
				nw.dropPayload(hm.payload, hm.isMsg)
			}
			fs.stats.Dropped++
			continue
		}
		fs.stats.HeldTime += now.Sub(hm.heldAt)
		// Re-inject through the occupancy clocks: a healed burst pays the
		// same NIC/link serialization a normally-sent burst would.
		if hm.parts != nil {
			nw.deliverGather(hm.from, hm.to, hm.parts, hm.size, hm.d)
			continue
		}
		depart := nw.departure(hm.from, hm.to, hm.size)
		nw.eng.SchedulePush(depart.Add(hm.d), hm.q, hm.payload)
	}
}

// SetLinkLoss makes the directed link lossy: each message is independently
// dropped with probability dropRate and duplicated with probability dupRate.
// Zero rates restore reliability.
func (nw *Network) SetLinkLoss(from, to int, dropRate, dupRate float64) {
	lf := nw.mustFaults("SetLinkLoss").link(from, to)
	lf.dropRate = dropRate
	lf.dupRate = dupRate
}

// dropPayload reclaims a discarded message: the network's own pooled
// envelope is freed exactly once, and the inner payload is handed to the
// drop handler exactly once so upper layers can reclaim their envelopes.
// The payload-extraction order matters: FreeMessage zeroes the Message, so
// the inner payload is captured first.
func (nw *Network) dropPayload(payload interface{}, isMsg bool) {
	fs := nw.faults
	if isMsg {
		if m, ok := payload.(*Message); ok {
			inner := m.Payload
			nw.FreeMessage(m)
			payload = inner
		}
	}
	if fs.onDrop != nil && payload != nil {
		fs.onDrop(payload)
	}
}

// interceptGather applies the fault model to one multi-part envelope and
// reports whether it was consumed (dropped or held). The envelope is
// all-or-nothing: a dead endpoint or a drop discards every part, reclaiming
// each pooled Message (and handing each inner payload to the drop handler)
// exactly once; a queueing partition parks the whole envelope so heal
// re-injects it through a single departure. Loss is drawn once per envelope
// — it is one unit on the wire — and duplication never applies (the parts
// share coalesced-reply state that must complete exactly once).
func (nw *Network) interceptGather(from, to int, parts []*Message, total int, d sim.Duration) bool {
	fs := nw.faults
	if to >= 0 && to < nw.n && fs.dead[to] || from >= 0 && from < nw.n && fs.dead[from] {
		fs.stats.DeadDrops++
		nw.dropParts(parts)
		return true
	}
	lf := fs.links[linkKey{from, to}]
	if lf == nil {
		return false
	}
	if lf.partitioned {
		if fs.policy == PartitionDrop {
			fs.stats.Dropped++
			nw.dropParts(parts)
			return true
		}
		fs.stats.Held++
		lf.held = append(lf.held, heldMsg{
			from: from, to: to, parts: parts, size: total,
			d: d, heldAt: nw.eng.Now(),
		})
		return true
	}
	if lf.dropRate > 0 && fs.rng.Float64() < lf.dropRate {
		fs.stats.Dropped++
		nw.dropParts(parts)
		return true
	}
	return false
}

// intercept applies the fault model to one send and reports whether the
// message was consumed (dropped or held). It runs before the occupancy
// models: a message that never departs must not advance the NIC/link
// clocks. isMsg marks payloads that are pooled *Message envelopes.
func (nw *Network) intercept(from, to int, q *sim.Chan, payload interface{}, size int, d sim.Duration, isMsg bool) bool {
	fs := nw.faults
	if to >= 0 && to < nw.n && fs.dead[to] || from >= 0 && from < nw.n && fs.dead[from] {
		fs.stats.DeadDrops++
		nw.dropPayload(payload, isMsg)
		return true
	}
	lf := fs.links[linkKey{from, to}]
	if lf == nil {
		return false
	}
	if lf.partitioned {
		if fs.policy == PartitionDrop {
			fs.stats.Dropped++
			nw.dropPayload(payload, isMsg)
			return true
		}
		fs.stats.Held++
		lf.held = append(lf.held, heldMsg{
			from: from, to: to, q: q, payload: payload, size: size,
			d: d, isMsg: isMsg, heldAt: nw.eng.Now(),
		})
		return true
	}
	if lf.dropRate > 0 && fs.rng.Float64() < lf.dropRate {
		fs.stats.Dropped++
		nw.dropPayload(payload, isMsg)
		return true
	}
	if lf.dupRate > 0 && isMsg && fs.rng.Float64() < lf.dupRate {
		if m, ok := payload.(*Message); ok && fs.dup != nil {
			if inner := fs.dup(m.Payload); inner != nil {
				m2 := nw.getMsg()
				*m2 = *m
				m2.Payload = inner
				fs.stats.Duplicated++
				depart := nw.departure(from, to, m2.Size)
				nw.eng.SchedulePush(depart.Add(d), q, m2)
			}
		}
	}
	return false
}
