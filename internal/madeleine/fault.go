package madeleine

import (
	"fmt"

	"dsmpm2/internal/sim"
)

// Network-level fault state. Everything in this file is gated on the fault
// layer being enabled: a network without EnableFaults pays a single nil
// check per send and behaves bit-for-bit like the fault-free code.
//
// The model is fail-stop nodes plus per-directed-link faults:
//
//   - a dead node neither sends nor receives; messages addressed to (or
//     from) it are dropped at the sending interface, and its inbound queues
//     are replaced wholesale so that in-flight deliveries land in orphaned
//     channels instead of leaking into a later incarnation of the node;
//   - a partitioned link either queues its traffic until the link heals
//     (PartitionQueue, the default — models a transient partition with
//     reliable transport underneath) or drops it (PartitionDrop);
//   - a lossy link drops or duplicates each message independently with the
//     configured probabilities, drawn from the fault layer's private PRNG so
//     the engine's own random stream — and therefore the fault-free portion
//     of the replay — is untouched.
//
// On a sharded network the fault state is per shard: each shard holds its
// own dead-node view (consulted at its own senders' interfaces), and link
// fault state lives on the shard that owns the sending node. Fault events
// must then be applied through ApplyFault from a ShardedEngine.InjectFaults
// fanout, which delivers every event to every shard at the same virtual
// time; the direct mutators (CrashNode, PartitionLink, ...) are a
// single-loop API and panic when sharded.

// PartitionPolicy selects what happens to messages sent over a partitioned
// link.
type PartitionPolicy int

const (
	// PartitionQueue holds messages and re-injects them, FIFO per link,
	// when the link heals.
	PartitionQueue PartitionPolicy = iota
	// PartitionDrop discards messages sent over a partitioned link.
	PartitionDrop
)

// FaultStats aggregates the fault layer's counters.
type FaultStats struct {
	// DeadDrops counts messages dropped because an endpoint was dead.
	DeadDrops int
	// Dropped counts messages discarded by partitions or lossy links.
	Dropped int
	// Duplicated counts extra copies injected by lossy links.
	Duplicated int
	// Held counts messages queued on partitioned links.
	Held int
	// HeldTime is the total virtual time held messages spent waiting for
	// their link to heal — the fault-induced latency the timing reports
	// attribute to the link (it surfaces in FaultTiming.Transfer and
	// TimingLog.ByLink automatically, since transfer time is measured
	// send-to-receive).
	HeldTime sim.Duration
	// Crashes and Restarts count node fault events applied.
	Crashes  int
	Restarts int
}

// heldMsg is one message parked on a partitioned link. A multi-part
// envelope (SendGather) is held as a unit: parts is non-nil, q/payload are
// unused, and heal re-injects the whole envelope through one departure.
type heldMsg struct {
	from    int
	to      int
	q       *sim.Chan
	payload interface{}
	size    int
	d       sim.Duration // arrival latency to charge from heal time
	isMsg   bool         // payload is a pooled *Message owned by this network
	parts   []*Message   // multi-part envelope held as a unit
	heldAt  sim.Time
}

// dropParts reclaims every part of a discarded multi-part envelope: each
// pooled Message (and its inner payload, via the drop handler) exactly once.
func (nw *Network) dropParts(fs *faultState, parts []*Message) {
	for _, m := range parts {
		nw.dropPayload(fs, m, true)
	}
}

// linkFault is the fault state of one directed link.
type linkFault struct {
	partitioned bool
	dropRate    float64
	dupRate     float64
	held        []heldMsg
}

// faultState is one shard's fault layer (nil when faults are disabled).
// The loss PRNG is a counted stream so a checkpoint can record how many
// draws the run consumed and a restore can fast-forward a fresh stream to
// the same point (see snapshot.go); the values drawn are bit-identical to
// the plain rand.Rand this replaced.
type faultState struct {
	rng    *sim.CountedRand
	policy PartitionPolicy
	dead   []bool
	links  map[linkKey]*linkFault
	onDrop func(payload interface{})
	dup    func(payload interface{}) interface{}
	stats  FaultStats
}

// EnableFaults switches the fault layer on. seed drives the private PRNG
// behind probabilistic loss (zero means 1); policy selects the partition
// behaviour. Enabling faults on a quiet network is free until a fault is
// actually injected. On a sharded network every shard gets its own fault
// state (and its own PRNG, derived from seed), so call this before Run.
func (nw *Network) EnableFaults(seed int64, policy PartitionPolicy) {
	if seed == 0 {
		seed = 1
	}
	for i, st := range nw.shs {
		st.faults = &faultState{
			rng:    sim.NewCountedRand(seed + int64(i)),
			policy: policy,
			dead:   make([]bool, nw.n),
			links:  make(map[linkKey]*linkFault),
		}
	}
}

// FaultsEnabled reports whether the fault layer is on.
func (nw *Network) FaultsEnabled() bool { return nw.shs[0].faults != nil }

// FaultStats returns the fault layer's counters (zero value when disabled),
// summed over shards.
func (nw *Network) FaultStats() FaultStats {
	var out FaultStats
	for _, st := range nw.shs {
		fs := st.faults
		if fs == nil {
			continue
		}
		out.DeadDrops += fs.stats.DeadDrops
		out.Dropped += fs.stats.Dropped
		out.Duplicated += fs.stats.Duplicated
		out.Held += fs.stats.Held
		out.HeldTime += fs.stats.HeldTime
		out.Crashes += fs.stats.Crashes
		out.Restarts += fs.stats.Restarts
	}
	return out
}

// SetDropHandler installs fn, called exactly once with the payload of every
// message the fault layer discards, after the network has reclaimed its own
// *Message envelope. The PM2 runtime uses it to return pooled rpcReq
// envelopes to their freelist; without a handler dropped payloads are simply
// left to the garbage collector. On a sharded network fn may be called from
// any shard's goroutine (only ever one at a time per discarded message).
func (nw *Network) SetDropHandler(fn func(payload interface{})) {
	nw.mustFaults("SetDropHandler")
	for _, st := range nw.shs {
		st.faults.onDrop = fn
	}
}

// SetDupHandler installs fn, called to produce an independent copy of a
// payload when a lossy link duplicates a message. Returning nil vetoes the
// duplication (the message is delivered once). Only named-channel messages
// are ever duplicated; direct sends (RPC replies, acks) are not, because
// their receivers own the reply queue and cannot distinguish copies.
func (nw *Network) SetDupHandler(fn func(payload interface{}) interface{}) {
	nw.mustFaults("SetDupHandler")
	for _, st := range nw.shs {
		st.faults.dup = fn
	}
}

func (nw *Network) mustFaults(op string) *faultState {
	fs := nw.shs[0].faults
	if fs == nil {
		panic("madeleine: " + op + " before EnableFaults")
	}
	return fs
}

// mustFaultsLocal is mustFaults for the direct single-loop mutators, which
// touch exactly one shard's state and therefore cannot be used on a sharded
// network (use ApplyFault from a ShardedEngine.InjectFaults fanout instead).
func (nw *Network) mustFaultsLocal(op string) *faultState {
	if nw.se != nil {
		panic("madeleine: " + op + " on a sharded network; inject a fault plan (ApplyFault) instead")
	}
	return nw.mustFaults(op)
}

// NodeDead reports whether node n is currently crashed. On a sharded
// network this reads shard 0's view; call it from shard 0's simulation
// context (or after Run), or use NodeDeadOn from other shards.
func (nw *Network) NodeDead(n int) bool {
	return nw.NodeDeadOn(0, n)
}

// NodeDeadOn reports whether node n is currently crashed as seen by shard
// (every shard converges on the same view at the fault's virtual time).
func (nw *Network) NodeDeadOn(shard, n int) bool {
	fs := nw.shs[shard].faults
	return fs != nil && n >= 0 && n < nw.n && fs.dead[n]
}

// faultShard reports which shard owns the fault state of the directed link
// from->to: the sending node's shard, or the destination's when the sender
// is outside the cluster (the driver). Always 0 unsharded.
func (nw *Network) faultShard(from, to int) int {
	if nw.shardOf == nil {
		return 0
	}
	if from >= 0 && from < nw.n {
		return nw.shardOf[from]
	}
	return nw.shardOf[to]
}

// ApplyFault applies one fault-plan event on behalf of shard. It must run in
// that shard's simulation context and only touches that shard's state; a
// ShardedEngine.InjectFaults fanout delivers every event to every shard at
// the event's virtual time, which is exactly the contract this needs (a
// crash must flip every shard's dead-node view, since each shard checks
// liveness at its own senders' interfaces). It also works unsharded (shard
// 0), where it is equivalent to the direct mutators.
func (nw *Network) ApplyFault(shard int, ev sim.FaultEvent) {
	fs := nw.shs[shard].faults
	if fs == nil {
		panic("madeleine: ApplyFault before EnableFaults")
	}
	switch ev.Kind {
	case sim.FaultNodeCrash:
		nw.crashNodeOn(shard, fs, ev.Node)
	case sim.FaultNodeRestart:
		nw.restartNodeOn(shard, fs, ev.Node)
	case sim.FaultLinkPartition:
		if nw.faultShard(ev.From, ev.To) == shard {
			fs.link(ev.From, ev.To).partitioned = true
		}
	case sim.FaultLinkHeal:
		if nw.faultShard(ev.From, ev.To) == shard {
			nw.healLinkOn(shard, fs, ev.From, ev.To)
		}
	case sim.FaultLinkLoss:
		if nw.faultShard(ev.From, ev.To) == shard {
			lf := fs.link(ev.From, ev.To)
			lf.dropRate = ev.DropRate
			lf.dupRate = ev.DupRate
		}
	default:
		panic(fmt.Sprintf("madeleine: unknown fault kind %d", ev.Kind))
	}
}

// engOf returns the engine of shard (the network's engine unsharded).
func (nw *Network) engOf(shard int) *sim.Engine {
	if nw.se == nil {
		return nw.eng
	}
	return nw.se.Shard(shard)
}

// CrashNode fail-stops node n: subsequent messages to or from it are
// dropped, its inbound queues are replaced (in-flight deliveries land in the
// orphaned queues of the dead incarnation), and messages already held for it
// on partitioned links are discarded. Single-loop API; sharded networks
// apply fault plans instead.
func (nw *Network) CrashNode(n int) {
	nw.crashNodeOn(0, nw.mustFaultsLocal("CrashNode"), n)
}

func (nw *Network) crashNodeOn(shard int, fs *faultState, n int) {
	if n < 0 || n >= nw.n {
		panic(fmt.Sprintf("madeleine: crash of node %d out of range [0,%d)", n, nw.n))
	}
	if fs.dead[n] {
		return
	}
	fs.dead[n] = true
	// The node's shard owns the crash bookkeeping: the counter, and the
	// queue replacement (only deliveries scheduled on the owning shard can
	// still be in flight to the node's queues — cross-shard sends check
	// the sender-side dead view first).
	if nw.faultShard(n, n) != shard {
		// Still sweep this shard's own held links below: messages parked
		// on a partitioned link whose sender lives here may target n.
		nw.sweepHeld(fs, n)
		return
	}
	fs.stats.Crashes++
	// Old queues are orphaned, not drained: deliveries already scheduled on
	// the engine hold pointers to them and must not reach the node's next
	// incarnation. Pending messages they contain are reclaimed now.
	if nw.se != nil {
		nw.nameMu.Lock()
	}
	old := nw.queues[n]
	nw.queues[n] = make([]*sim.Chan, 0)
	if nw.se != nil {
		nw.nameMu.Unlock()
	}
	for _, q := range old {
		if q == nil {
			continue
		}
		for {
			v, ok := q.TryRecv()
			if !ok {
				break
			}
			nw.dropPayload(fs, v, true)
		}
	}
	nw.sweepHeld(fs, n)
}

// sweepHeld discards messages parked on this shard's partitioned links to or
// from node n. They will never be wanted: deliveries to a corpse are drops,
// and the fail-stop model says nothing sent by the dead incarnation may
// surface later (a held lock-acquire delivered after the node restarts would
// hand a ghost request resources its sender can never use).
func (nw *Network) sweepHeld(fs *faultState, n int) {
	for _, lf := range fs.links {
		kept := lf.held[:0]
		for _, hm := range lf.held {
			if hm.to == n || hm.from == n {
				if hm.parts != nil {
					nw.dropParts(fs, hm.parts)
				} else {
					nw.dropPayload(fs, hm.payload, hm.isMsg)
				}
				fs.stats.Dropped++
				continue
			}
			kept = append(kept, hm)
		}
		lf.held = kept
	}
}

// RestartNode brings a crashed node back. Its queues start empty (they were
// replaced at crash time); state above the network (pages, threads) is the
// upper layers' recovery problem. Single-loop API; sharded networks apply
// fault plans instead.
func (nw *Network) RestartNode(n int) {
	nw.restartNodeOn(0, nw.mustFaultsLocal("RestartNode"), n)
}

func (nw *Network) restartNodeOn(shard int, fs *faultState, n int) {
	if n < 0 || n >= nw.n {
		panic(fmt.Sprintf("madeleine: restart of node %d out of range [0,%d)", n, nw.n))
	}
	if !fs.dead[n] {
		return
	}
	fs.dead[n] = false
	if nw.faultShard(n, n) == shard {
		fs.stats.Restarts++
	}
}

// link returns (creating on demand) the fault state of the directed link.
func (fs *faultState) link(from, to int) *linkFault {
	key := linkKey{from, to}
	lf := fs.links[key]
	if lf == nil {
		lf = &linkFault{}
		fs.links[key] = lf
	}
	return lf
}

// PartitionLink cuts the directed link from->to. Single-loop API; sharded
// networks apply fault plans instead.
func (nw *Network) PartitionLink(from, to int) {
	nw.mustFaultsLocal("PartitionLink").link(from, to).partitioned = true
}

// HealLink restores the directed link from->to, re-injecting any held
// messages in FIFO order with their original latency charged from now.
// Single-loop API; sharded networks apply fault plans instead.
func (nw *Network) HealLink(from, to int) {
	nw.healLinkOn(0, nw.mustFaultsLocal("HealLink"), from, to)
}

func (nw *Network) healLinkOn(shard int, fs *faultState, from, to int) {
	lf := fs.links[linkKey{from, to}]
	if lf == nil || !lf.partitioned {
		return
	}
	lf.partitioned = false
	held := lf.held
	lf.held = nil
	eng := nw.engOf(shard)
	st := nw.shs[shard]
	now := eng.Now()
	for _, hm := range held {
		dead := func(n int) bool { return n >= 0 && n < nw.n && fs.dead[n] }
		if dead(hm.to) || dead(hm.from) {
			if hm.parts != nil {
				nw.dropParts(fs, hm.parts)
			} else {
				nw.dropPayload(fs, hm.payload, hm.isMsg)
			}
			fs.stats.Dropped++
			continue
		}
		fs.stats.HeldTime += now.Sub(hm.heldAt)
		// Re-inject through the occupancy clocks: a healed burst pays the
		// same NIC/link serialization a normally-sent burst would.
		if hm.parts != nil {
			nw.deliverGather(eng, st, hm.from, hm.to, hm.parts, hm.size, hm.d)
			continue
		}
		depart := nw.departure(eng, st, hm.from, hm.to, hm.size)
		nw.pushAt(eng, hm.to, depart.Add(hm.d), hm.q, hm.payload)
	}
}

// SetLinkLoss makes the directed link lossy: each message is independently
// dropped with probability dropRate and duplicated with probability dupRate.
// Zero rates restore reliability. Single-loop API; sharded networks apply
// fault plans instead.
func (nw *Network) SetLinkLoss(from, to int, dropRate, dupRate float64) {
	lf := nw.mustFaultsLocal("SetLinkLoss").link(from, to)
	lf.dropRate = dropRate
	lf.dupRate = dupRate
}

// dropPayload reclaims a discarded message: the network's own pooled
// envelope is freed exactly once, and the inner payload is handed to the
// drop handler exactly once so upper layers can reclaim their envelopes.
// The payload-extraction order matters: FreeMessage zeroes the Message, so
// the inner payload is captured first.
func (nw *Network) dropPayload(fs *faultState, payload interface{}, isMsg bool) {
	if isMsg {
		if m, ok := payload.(*Message); ok {
			inner := m.Payload
			nw.FreeMessage(m)
			payload = inner
		}
	}
	if fs.onDrop != nil && payload != nil {
		fs.onDrop(payload)
	}
}

// interceptGather applies the fault model to one multi-part envelope and
// reports whether it was consumed (dropped or held). The envelope is
// all-or-nothing: a dead endpoint or a drop discards every part, reclaiming
// each pooled Message (and handing each inner payload to the drop handler)
// exactly once; a queueing partition parks the whole envelope so heal
// re-injects it through a single departure. Loss is drawn once per envelope
// — it is one unit on the wire — and duplication never applies (the parts
// share coalesced-reply state that must complete exactly once).
func (nw *Network) interceptGather(eng *sim.Engine, st *netShard, from, to int, parts []*Message, total int, d sim.Duration) bool {
	fs := st.faults
	if to >= 0 && to < nw.n && fs.dead[to] || from >= 0 && from < nw.n && fs.dead[from] {
		fs.stats.DeadDrops++
		nw.dropParts(fs, parts)
		return true
	}
	lf := fs.links[linkKey{from, to}]
	if lf == nil {
		return false
	}
	if lf.partitioned {
		if fs.policy == PartitionDrop {
			fs.stats.Dropped++
			nw.dropParts(fs, parts)
			return true
		}
		fs.stats.Held++
		lf.held = append(lf.held, heldMsg{
			from: from, to: to, parts: parts, size: total,
			d: d, heldAt: eng.Now(),
		})
		return true
	}
	if lf.dropRate > 0 && fs.rng.Float64() < lf.dropRate {
		fs.stats.Dropped++
		nw.dropParts(fs, parts)
		return true
	}
	return false
}

// intercept applies the fault model to one send and reports whether the
// message was consumed (dropped or held). It runs before the occupancy
// models: a message that never departs must not advance the NIC/link
// clocks. isMsg marks payloads that are pooled *Message envelopes.
func (nw *Network) intercept(eng *sim.Engine, st *netShard, from, to int, q *sim.Chan, payload interface{}, size int, d sim.Duration, isMsg bool) bool {
	fs := st.faults
	if to >= 0 && to < nw.n && fs.dead[to] || from >= 0 && from < nw.n && fs.dead[from] {
		fs.stats.DeadDrops++
		nw.dropPayload(fs, payload, isMsg)
		return true
	}
	lf := fs.links[linkKey{from, to}]
	if lf == nil {
		return false
	}
	if lf.partitioned {
		if fs.policy == PartitionDrop {
			fs.stats.Dropped++
			nw.dropPayload(fs, payload, isMsg)
			return true
		}
		fs.stats.Held++
		lf.held = append(lf.held, heldMsg{
			from: from, to: to, q: q, payload: payload, size: size,
			d: d, isMsg: isMsg, heldAt: eng.Now(),
		})
		return true
	}
	if lf.dropRate > 0 && fs.rng.Float64() < lf.dropRate {
		fs.stats.Dropped++
		nw.dropPayload(fs, payload, isMsg)
		return true
	}
	if lf.dupRate > 0 && isMsg && fs.rng.Float64() < lf.dupRate {
		if m, ok := payload.(*Message); ok && fs.dup != nil {
			if inner := fs.dup(m.Payload); inner != nil {
				m2 := nw.getMsg()
				*m2 = *m
				m2.Payload = inner
				fs.stats.Duplicated++
				depart := nw.departure(eng, st, from, to, m2.Size)
				nw.pushAt(eng, to, depart.Add(d), q, m2)
			}
		}
	}
	return false
}
