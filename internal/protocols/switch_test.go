package protocols

import (
	"fmt"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
)

// TestSwitchProtocolMidRun exercises Section 2.3's protocol switch: an area
// used under li_hudak is, at a quiescent point, re-associated with hbrc_mw
// and keeps working — and its contents survive the switch.
func TestSwitchProtocolMidRun(t *testing.T) {
	rt, d, ids := harness(3, madeleine.BIPMyrinet, 5)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	lock := d.NewLock(0)
	bar := d.NewBarrier(3)

	results := make([]uint64, 3)
	for n := 0; n < 3; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("p%d", node), func(th *pm2.Thread) {
			// Phase 1 under li_hudak.
			d.Acquire(th, lock)
			d.WriteUint64(th, base, d.ReadUint64(th, base)+1)
			d.Release(th, lock)
			d.Barrier(th, bar)
			// Quiescent point: node 0 switches the protocol.
			if node == 0 {
				if err := d.SwitchProtocol(th, base, 8, ids.HbrcMW); err != nil {
					t.Errorf("switch failed: %v", err)
				}
			}
			d.Barrier(th, bar)
			// Phase 2 under hbrc_mw.
			d.Acquire(th, lock)
			d.WriteUint64(th, base, d.ReadUint64(th, base)+1)
			d.Release(th, lock)
			d.Barrier(th, bar)
			d.Acquire(th, lock)
			results[node] = d.ReadUint64(th, base)
			d.Release(th, lock)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for n, v := range results {
		if v != 6 {
			t.Errorf("node %d read %d after both phases, want 6", n, v)
		}
	}
	if _, proto, _ := d.PageInfo(pg); proto != ids.HbrcMW {
		t.Errorf("page still recorded under protocol %d", proto)
	}
}

func TestSwitchProtocolValidation(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(0, 8, nil)
	rt.CreateThread(0, "switcher", func(th *pm2.Thread) {
		if err := d.SwitchProtocol(th, 0x100, 8, ids.HbrcMW); err == nil {
			t.Error("switch of unallocated area succeeded")
		}
		if err := d.SwitchProtocol(th, base, 8, ids.HbrcMW); err != nil {
			t.Errorf("valid switch failed: %v", err)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchResetsCopiesAndState(t *testing.T) {
	rt, d, ids := harness(3, madeleine.BIPMyrinet, 2)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	// Scatter copies and move ownership away from home.
	rt.CreateThread(1, "w", func(th *pm2.Thread) { d.WriteUint64(th, base, 42) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	rt.CreateThread(2, "r", func(th *pm2.Thread) { d.ReadUint64(th, base) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	rt.CreateThread(0, "switcher", func(th *pm2.Thread) {
		if err := d.SwitchProtocol(th, base, 8, ids.HbrcMW); err != nil {
			t.Errorf("switch failed: %v", err)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Copies dropped everywhere but the home; home owns again.
	for n := 1; n < 3; n++ {
		if d.Space(n).AccessOf(pg) != memory.NoAccess {
			t.Errorf("node %d still holds a copy after the switch", n)
		}
		if d.Entry(n, pg).Owner {
			t.Errorf("node %d still claims ownership", n)
		}
	}
	if !d.Entry(0, pg).Owner {
		t.Error("home did not regain ownership")
	}
	// Contents survived: node 1 owned the page when the switch ran, so
	// its copy was repatriated to the home before the reset.
	var got uint64
	rt.CreateThread(2, "verify", func(th *pm2.Thread) { got = d.ReadUint64(th, base) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("page contents lost across the switch: got %d, want 42", got)
	}
}

// TestSwitchRequiresQuiescence: a pending fetch must abort the switch.
func TestSwitchRequiresQuiescence(t *testing.T) {
	rt, d, ids := harness(2, madeleine.TCPFastEthernet, 3) // slow net: wide race window
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(0, 8, nil)
	var switchErr error
	rt.CreateThread(1, "reader", func(th *pm2.Thread) {
		d.ReadUint64(th, base) // fetch takes ~1ms on Fast Ethernet
	})
	rt.CreateThread(0, "switcher", func(th *pm2.Thread) {
		th.Advance(500 * 1000) // 500us: mid-fetch
		switchErr = d.SwitchProtocol(th, base, 8, ids.HbrcMW)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if switchErr == nil {
		t.Fatal("switch during an in-flight fetch succeeded")
	}
}
