package protocols

import (
	"dsmpm2/internal/core"
)

// adaptive demonstrates the dynamic mechanism selection Section 2.3
// mentions: "one may even embed a dynamic mechanism selection within the
// protocol, switching for instance from page migration to thread migration
// depending on ad-hoc criteria."
//
// The criterion here: a node that keeps write-faulting on the same page (a
// ping-pong page bouncing between writers) stops pulling the page over and
// sends the thread to the data instead, once the per-node write-fault count
// on the page crosses a threshold within the recent-fault window. All other
// behaviour is inherited from li_hudak.
type adaptive struct {
	liHudak
	// writeFaults[node][page] counts this node's write faults per page
	// since the counter was last reset by a successful migration.
	writeFaults []map[core.Page]int
}

// adaptiveThreshold is the write-fault count after which the protocol
// switches from page migration to thread migration for a page.
const adaptiveThreshold = 4

func newAdaptive(d *core.DSM) *adaptive {
	p := &adaptive{liHudak: liHudak{d: d}}
	for i := 0; i < d.Runtime().Nodes(); i++ {
		p.writeFaults = append(p.writeFaults, make(map[core.Page]int))
	}
	return p
}

// Name implements core.Protocol.
func (p *adaptive) Name() string { return "adaptive" }

// WriteFaultHandler counts write faults per (node, page) and, past the
// threshold, migrates the thread to the owner instead of migrating the page
// here. Page ownership stays wherever li_hudak's mechanics put it, so the
// probable-owner chain remains intact for both mechanisms.
func (p *adaptive) WriteFaultHandler(f *core.Fault) {
	cnt := p.writeFaults[f.Node]
	cnt[f.Page]++
	if cnt[f.Page] > adaptiveThreshold {
		delete(cnt, f.Page)
		core.MigrateToOwner(f)
		return
	}
	p.liHudak.WriteFaultHandler(f)
}

// FaultCount reports the current write-fault count for a page on a node
// (exposed for tests and monitoring).
func (p *adaptive) FaultCount(node int, pg core.Page) int {
	return p.writeFaults[node][pg]
}
