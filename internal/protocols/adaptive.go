package protocols

import (
	"dsmpm2/internal/core"
)

// adaptive demonstrates the dynamic mechanism selection Section 2.3
// mentions: "one may even embed a dynamic mechanism selection within the
// protocol, switching for instance from page migration to thread migration
// depending on ad-hoc criteria."
//
// With the access-pattern profiler enabled (core.EnableProfiler), the
// criterion is the classifier itself: a page the last epoch classed as
// migratory — several nodes writing in turn, no stable dominant writer —
// sends the faulting thread to the data instead of pulling the page over,
// while producer-consumer and private pages stay on the page policy (and
// get re-homed onto their writers by the decision engine, making the page
// policy the cheap one). Without the profiler the protocol falls back to
// its original ad-hoc criterion: a node that keeps write-faulting on the
// same page stops pulling it once the per-node write-fault count crosses a
// threshold. All other behaviour is inherited from li_hudak.
type adaptive struct {
	liHudak
	// writeFaults[node][page] counts this node's write faults per page
	// since the counter was last reset by a successful migration (the
	// profiler-off fallback criterion).
	writeFaults []map[core.Page]int
}

// adaptiveThreshold is the write-fault count after which the protocol
// switches from page migration to thread migration for a page.
const adaptiveThreshold = 4

func newAdaptive(d *core.DSM) *adaptive {
	p := &adaptive{liHudak: liHudak{d: d}}
	for i := 0; i < d.Runtime().Nodes(); i++ {
		p.writeFaults = append(p.writeFaults, make(map[core.Page]int))
	}
	return p
}

// Name implements core.Protocol.
func (p *adaptive) Name() string { return "adaptive" }

// WriteFaultHandler picks the mechanism per page. Profiler on and the page
// classified: the epoch verdict decides — migratory pages send the thread
// to the data, everything else uses the page policy. Profiler off, or no
// verdict yet (a workload whose barriers never fold an epoch leaves every
// page ClassIdle forever): the original ad-hoc write-fault-count criterion,
// so enabling the profiler can never silently disable thread migration for
// ping-pong pages the classifier has no evidence about — unless an offline
// what-if sweep installed a tuned prior (DSM.SetTunedPagePrior): the sweep
// already re-simulated this workload under both mechanisms and the page
// policy won, so with no live evidence to the contrary the protocol trusts
// the sweep and skips speculative thread migration. Live epoch evidence
// (ClassMigratory above) still overrides the prior. Page ownership stays
// wherever li_hudak's mechanics put it, so the probable-owner chain remains
// intact for both mechanisms.
func (p *adaptive) WriteFaultHandler(f *core.Fault) {
	if p.d.ProfilerEnabled() {
		switch class, _ := core.Classification(p.d, f.Page); class {
		case core.ClassMigratory:
			core.MigrateToOwner(f)
			return
		case core.ClassIdle:
			// No epoch evidence — fall through to the fault-count heuristic.
		default:
			p.liHudak.WriteFaultHandler(f)
			return
		}
	}
	if p.d.TunedPagePrior() {
		p.liHudak.WriteFaultHandler(f)
		return
	}
	cnt := p.writeFaults[f.Node]
	cnt[f.Page]++
	if cnt[f.Page] > adaptiveThreshold {
		delete(cnt, f.Page)
		core.MigrateToOwner(f)
		return
	}
	p.liHudak.WriteFaultHandler(f)
}

// FaultCount reports the current write-fault count for a page on a node
// (exposed for tests and monitoring).
func (p *adaptive) FaultCount(node int, pg core.Page) int {
	return p.writeFaults[node][pg]
}
