package protocols

import (
	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// hybrid is the library-composed protocol Section 2.3 proposes as an
// example of mixing mechanisms: page replication on read faults (as in
// li_hudak) and thread migration on write faults (as in migrate_thread).
//
// To stay sequentially consistent the two mechanisms must be combined
// carefully (the paper: "the user is responsible for using these features in
// a consistent way"): page ownership is fixed, read copies replicate from
// the owner, and a write fault first migrates the writer to the owning node;
// there, if read copies exist the owner's own copy is write-protected, so
// the write faults once more, locally, and that local fault invalidates the
// copyset before restoring write access.
type hybrid struct {
	d *core.DSM
}

// Name implements core.Protocol.
func (p *hybrid) Name() string { return "hybrid" }

// ReadFaultHandler replicates the page, like li_hudak.
func (p *hybrid) ReadFaultHandler(f *core.Fault) { core.FetchPage(f, false) }

// WriteFaultHandler migrates the writer to the owner node; once there, it
// reclaims exclusive access by invalidating outstanding read copies.
func (p *hybrid) WriteFaultHandler(f *core.Fault) {
	e, t := f.Entry, f.Thread
	e.Lock(t)
	if e.Owner {
		// Already at the owning node: revoke the read copies and
		// restore write access, holding the entry lock throughout.
		cs := e.TakeCopyset()
		core.InvalidateCopies(p.d, t, f.Page, cs, -1)
		p.d.Space(f.Node).SetAccess(f.Page, memory.ReadWrite)
		f.KeepEntryLocked()
		return
	}
	e.Unlock(t)
	core.MigrateToOwner(f)
}

// ReadServer grants read copies and write-protects the owner's copy, so
// subsequent owner-side writes fault and trigger the invalidation above.
func (p *hybrid) ReadServer(r *core.Request) {
	e, owner := core.ServeWhenOwner(r)
	if !owner {
		core.ForwardRequest(r, e)
		return
	}
	e.AddCopyset(r.From)
	p.d.Space(r.Node).SetAccess(r.Page, memory.ReadOnly)
	core.SendPage(r, e, r.From, memory.ReadOnly, false, core.NodeSet{})
	e.Unlock(r.Thread)
}

// WriteServer is never invoked: writers migrate instead of requesting pages.
func (p *hybrid) WriteServer(*core.Request) {
	panic("hybrid: unexpected write request")
}

// InvalidateServer drops the local read copy.
func (p *hybrid) InvalidateServer(iv *core.Invalidate) { core.DropCopy(iv) }

// ReceivePageServer installs arriving read copies.
func (p *hybrid) ReceivePageServer(pm *core.PageMsg) { core.InstallPage(pm) }

// LockAcquire is a no-op.
func (p *hybrid) LockAcquire(*core.SyncEvent) {}

// LockRelease is a no-op.
func (p *hybrid) LockRelease(*core.SyncEvent) {}
