package protocols

import (
	"fmt"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
)

// TestCondProducerConsumer runs a bounded buffer across nodes: producer on
// node 0, consumer on node 1, buffer state in shared DSM memory,
// coordination via a DSM lock and two condition variables — under every
// consistency protocol that supports plain paged access.
func TestCondProducerConsumer(t *testing.T) {
	for _, pick := range []struct {
		name string
		id   func(IDs) core.ProtoID
	}{
		{"li_hudak", func(i IDs) core.ProtoID { return i.LiHudak }},
		{"hbrc_mw", func(i IDs) core.ProtoID { return i.HbrcMW }},
		{"erc_sw", func(i IDs) core.ProtoID { return i.ErcSW }},
		{"migrate_thread", func(i IDs) core.ProtoID { return i.MigrateThread }},
	} {
		t.Run(pick.name, func(t *testing.T) {
			rt, d, ids := harness(2, madeleine.SISCISCI, 13)
			d.SetDefaultProtocol(pick.id(ids))
			buf := d.MustMalloc(0, 16, nil) // [occupied, value]
			lock := d.NewLock(0)
			notEmpty := d.NewCond(lock)
			notFull := d.NewCond(lock)
			const items = 8
			var consumed []uint64
			rt.CreateThread(0, "producer", func(th *pm2.Thread) {
				for i := 1; i <= items; i++ {
					d.Acquire(th, lock)
					for d.ReadUint64(th, buf) == 1 {
						d.CondWait(th, notFull)
					}
					d.WriteUint64(th, buf, 1)
					d.WriteUint64(th, buf+8, uint64(i*11))
					d.CondSignal(th, notEmpty)
					d.Release(th, lock)
				}
			})
			rt.CreateThread(1, "consumer", func(th *pm2.Thread) {
				for i := 0; i < items; i++ {
					d.Acquire(th, lock)
					for d.ReadUint64(th, buf) == 0 {
						d.CondWait(th, notEmpty)
					}
					consumed = append(consumed, d.ReadUint64(th, buf+8))
					d.WriteUint64(th, buf, 0)
					d.CondSignal(th, notFull)
					d.Release(th, lock)
				}
			})
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			if len(consumed) != items {
				t.Fatalf("consumed %d of %d items", len(consumed), items)
			}
			for i, v := range consumed {
				if v != uint64((i+1)*11) {
					t.Fatalf("consumed[%d] = %d, want %d (stale read?)", i, v, (i+1)*11)
				}
			}
		})
	}
}

// TestCondManyConsumers fans one producer out to several consumers.
func TestCondManyConsumers(t *testing.T) {
	rt, d, ids := harness(4, madeleine.BIPMyrinet, 21)
	d.SetDefaultProtocol(ids.LiHudak)
	buf := d.MustMalloc(0, 16, nil)
	lock := d.NewLock(0)
	notEmpty := d.NewCond(lock)
	notFull := d.NewCond(lock)
	const items = 12
	total := uint64(0)
	for c := 1; c < 4; c++ {
		rt.CreateThread(c, fmt.Sprintf("consumer%d", c), func(th *pm2.Thread) {
			for i := 0; i < items/3; i++ {
				d.Acquire(th, lock)
				for d.ReadUint64(th, buf) == 0 {
					d.CondWait(th, notEmpty)
				}
				total += d.ReadUint64(th, buf+8)
				d.WriteUint64(th, buf, 0)
				d.CondSignal(th, notFull)
				d.Release(th, lock)
			}
		})
	}
	rt.CreateThread(0, "producer", func(th *pm2.Thread) {
		for i := 1; i <= items; i++ {
			d.Acquire(th, lock)
			for d.ReadUint64(th, buf) == 1 {
				d.CondWait(th, notFull)
			}
			d.WriteUint64(th, buf, 1)
			d.WriteUint64(th, buf+8, uint64(i))
			d.CondBroadcast(th, notEmpty)
			d.Release(th, lock)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(items * (items + 1) / 2)
	if total != want {
		t.Fatalf("consumed sum = %d, want %d", total, want)
	}
}
