package protocols

import (
	"fmt"
	"math/rand"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
)

// checkMRSWInvariants sweeps the page table at quiescence for a
// single-writer protocol:
//   - exactly one node believes it owns each page;
//   - if any node holds write access, no other node holds any access;
//   - every node's copy of a read-shared page has identical contents.
func checkMRSWInvariants(t *testing.T, d *core.DSM, nodes int, pages []core.Page) {
	t.Helper()
	for _, pg := range pages {
		owners := 0
		writers := 0
		holders := 0
		var ref []byte
		for n := 0; n < nodes; n++ {
			if d.Entry(n, pg).Owner {
				owners++
			}
			switch d.Space(n).AccessOf(pg) {
			case memory.ReadWrite:
				writers++
				holders++
			case memory.ReadOnly:
				holders++
			}
			if f := d.Space(n).Frame(pg); f != nil && f.Access != memory.NoAccess {
				if ref == nil {
					ref = f.Data
				} else {
					for i := range ref {
						if ref[i] != f.Data[i] {
							t.Errorf("page %d: replica contents diverge at byte %d", pg, i)
							break
						}
					}
				}
			}
		}
		if owners != 1 {
			t.Errorf("page %d: %d owners, want exactly 1", pg, owners)
		}
		if writers > 0 && holders > writers {
			t.Errorf("page %d: %d writer(s) coexist with %d other holder(s) (MRSW violated)",
				pg, writers, holders-writers)
		}
		if writers > 1 {
			t.Errorf("page %d: %d writer nodes (MRSW violated)", pg, writers)
		}
	}
}

// TestMRSWInvariantsAfterRandomWorkload drives li_hudak (and the managed
// variants) with a random lock-protected workload, then audits the whole
// distributed page table.
func TestMRSWInvariantsAfterRandomWorkload(t *testing.T) {
	for _, pname := range []string{"li_hudak", "li_fixed", "li_central"} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pname, seed), func(t *testing.T) {
				const nodes, npages = 4, 6
				rt, d, _ := harness(nodes, madeleine.SISCISCI, seed)
				id, _ := d.Registry().Lookup(pname)
				d.SetDefaultProtocol(id)
				addrs := make([]core.Addr, npages)
				pages := make([]core.Page, npages)
				for i := range addrs {
					addrs[i] = d.MustMalloc(i%nodes, 8, nil)
					pages[i] = d.Space(0).PageOf(addrs[i])
				}
				lock := d.NewLock(0)
				rng := rand.New(rand.NewSource(seed))
				type op struct {
					slot  int
					write bool
				}
				plans := make([][]op, nodes)
				for n := range plans {
					for k := 0; k < 15; k++ {
						plans[n] = append(plans[n], op{slot: rng.Intn(npages), write: rng.Intn(2) == 0})
					}
				}
				for n := 0; n < nodes; n++ {
					node := n
					rt.CreateThread(node, fmt.Sprintf("p%d", node), func(th *pm2.Thread) {
						for _, o := range plans[node] {
							d.Acquire(th, lock)
							if o.write {
								d.WriteUint64(th, addrs[o.slot], d.ReadUint64(th, addrs[o.slot])+1)
							} else {
								d.ReadUint64(th, addrs[o.slot])
							}
							d.Release(th, lock)
						}
					})
				}
				if err := rt.Run(); err != nil {
					t.Fatal(err)
				}
				checkMRSWInvariants(t, d, nodes, pages)
			})
		}
	}
}

// TestHomeBasedInvariantsAfterRandomWorkload audits the home-based MRMW
// protocols: the home always holds the reference copy, and after all
// releases no node has stale pending twins or recorded diffs (protocol
// state drained).
func TestHomeBasedInvariantsAfterRandomWorkload(t *testing.T) {
	for _, pname := range []string{"hbrc_mw", "entry_mw"} {
		t.Run(pname, func(t *testing.T) {
			const nodes, npages = 3, 4
			rt, d, _ := harness(nodes, madeleine.BIPMyrinet, 4)
			id, _ := d.Registry().Lookup(pname)
			d.SetDefaultProtocol(id)
			addrs := make([]core.Addr, npages)
			pages := make([]core.Page, npages)
			for i := range addrs {
				addrs[i] = d.MustMalloc(i%nodes, 8, nil)
				pages[i] = d.Space(0).PageOf(addrs[i])
			}
			lock := d.NewLock(0)
			for n := 0; n < nodes; n++ {
				node := n
				rt.CreateThread(node, fmt.Sprintf("p%d", node), func(th *pm2.Thread) {
					for k := 0; k < 10; k++ {
						slot := (node + k) % npages
						d.Acquire(th, lock)
						d.WriteUint64(th, addrs[slot], d.ReadUint64(th, addrs[slot])+1)
						d.Release(th, lock)
					}
				})
			}
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			for i, pg := range pages {
				home, _, _ := d.PageInfo(pg)
				if d.Space(home).Frame(pg) == nil {
					t.Errorf("page %d: home lost the reference copy", pg)
				}
				// Every write was lock-protected, so the home copy is
				// exact: total increments = 10 writes per thread spread
				// round-robin over the pages.
				var got uint64
				rt.CreateThread(home, "verify", func(th *pm2.Thread) {
					d.Acquire(th, lock)
					got = d.ReadUint64(th, addrs[i])
					d.Release(th, lock)
				})
				if err := rt.Run(); err != nil {
					t.Fatal(err)
				}
				want := uint64(0)
				for n := 0; n < nodes; n++ {
					for k := 0; k < 10; k++ {
						if (n+k)%npages == i {
							want++
						}
					}
				}
				if got != want {
					t.Errorf("page %d: home value %d, want %d", pg, got, want)
				}
			}
			// No node retains undrained twins after its last release.
			for n := 0; n < nodes; n++ {
				for _, pg := range pages {
					if core.HasTwin(d.Entry(n, pg)) {
						t.Errorf("node %d page %d: twin left behind after release", n, pg)
					}
				}
			}
		})
	}
}
