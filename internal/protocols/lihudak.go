package protocols

import (
	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// liHudak implements sequential consistency with the dynamic distributed
// manager MRSW algorithm of Li and Hudak, adapted to a multithreaded context
// following Mueller (Section 3.1): page replication on read faults, page
// migration (with ownership) on write faults, probable-owner chains to find
// the owner, copyset invalidation on writes. "Single writer" refers to a
// node, not a thread: all threads on the owning node share the same copy and
// may write it concurrently.
type liHudak struct {
	d *core.DSM
}

// Name implements core.Protocol.
func (p *liHudak) Name() string { return "li_hudak" }

// ReadFaultHandler brings a read copy of the page from its owner.
func (p *liHudak) ReadFaultHandler(f *core.Fault) { core.FetchPage(f, false) }

// WriteFaultHandler brings the page with ownership and write rights.
func (p *liHudak) WriteFaultHandler(f *core.Fault) { core.FetchPage(f, true) }

// ReadServer serves a read-copy request: the owner adds the requester to the
// copyset, downgrades its own right to read (MRSW: readers exclude writers)
// and ships a read-only copy. Non-owners forward along the probable-owner
// chain.
func (p *liHudak) ReadServer(r *core.Request) {
	e, owner := core.ServeWhenOwner(r)
	if !owner {
		core.ForwardRequest(r, e)
		return
	}
	e.AddCopyset(r.From)
	p.d.Space(r.Node).SetAccess(r.Page, memory.ReadOnly)
	core.SendPage(r, e, r.From, memory.ReadOnly, false, core.NodeSet{})
	e.Unlock(r.Thread)
}

// WriteServer serves an ownership request: the owner invalidates every copy
// except the requester's, transfers the page with ownership and write
// rights, and redirects its own probable-owner hint at the new owner.
func (p *liHudak) WriteServer(r *core.Request) {
	e, owner := core.ServeWhenOwner(r)
	if !owner {
		core.ForwardRequest(r, e)
		return
	}
	// Invalidate before the new owner can write: sequential consistency
	// leaves no window where a reader holds a stale copy of a written
	// page. The entry lock stays held so no competing request interleaves.
	cs := e.TakeCopyset()
	core.InvalidateCopies(p.d, r.Thread, r.Page, cs, r.From)
	core.SendPage(r, e, r.From, memory.ReadWrite, true, core.NodeSet{})
	e.Owner = false
	e.ProbOwner = r.From
	p.d.Space(r.Node).Drop(r.Page)
	e.Unlock(r.Thread)
}

// InvalidateServer drops the local copy and learns the new owner.
func (p *liHudak) InvalidateServer(iv *core.Invalidate) { core.DropCopy(iv) }

// ReceivePageServer installs the arriving copy.
func (p *liHudak) ReceivePageServer(pm *core.PageMsg) { core.InstallPage(pm) }

// LockAcquire is a no-op: sequential consistency acts at access time.
func (p *liHudak) LockAcquire(*core.SyncEvent) {}

// LockRelease is a no-op: sequential consistency acts at access time.
func (p *liHudak) LockRelease(*core.SyncEvent) {}
