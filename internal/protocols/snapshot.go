package protocols

import (
	"encoding/json"
	"fmt"
	"sort"

	"dsmpm2/internal/core"
)

// Checkpoint support: the protocols whose per-node private state survives
// across synchronization points implement core.ProtoStater here. The
// stateless protocols (li_hudak, li_fixed, li_central, hybrid,
// migrate_thread) keep everything in the shared page table and need no
// capture of their own.

// dirtySet serializes one []map[core.Page]bool as per-node sorted page
// lists, the shape shared by every release-consistent protocol's write set.
type dirtySet struct {
	Dirty [][]uint64 `json:"dirty"`
}

func captureDirty(dirty []map[core.Page]bool) ([]byte, error) {
	s := dirtySet{Dirty: make([][]uint64, len(dirty))}
	for n, m := range dirty {
		pages := make([]uint64, 0, len(m))
		for pg := range m {
			pages = append(pages, uint64(pg))
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		s.Dirty[n] = pages
	}
	return json.Marshal(s)
}

func restoreDirty(dirty []map[core.Page]bool, data []byte) error {
	var s dirtySet
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s.Dirty) != len(dirty) {
		return fmt.Errorf("protocols: dirty-set state for %d nodes, have %d", len(s.Dirty), len(dirty))
	}
	for n := range dirty {
		dirty[n] = make(map[core.Page]bool, len(s.Dirty[n]))
		for _, pg := range s.Dirty[n] {
			dirty[n][core.Page(pg)] = true
		}
	}
	return nil
}

// CaptureProtoState implements core.ProtoStater.
func (p *hbrcMW) CaptureProtoState() ([]byte, error) { return captureDirty(p.dirty) }

// RestoreProtoState implements core.ProtoStater.
func (p *hbrcMW) RestoreProtoState(data []byte) error { return restoreDirty(p.dirty, data) }

// CaptureProtoState implements core.ProtoStater.
func (p *ercSW) CaptureProtoState() ([]byte, error) { return captureDirty(p.dirty) }

// RestoreProtoState implements core.ProtoStater.
func (p *ercSW) RestoreProtoState(data []byte) error { return restoreDirty(p.dirty, data) }

// CaptureProtoState implements core.ProtoStater.
func (p *entryMW) CaptureProtoState() ([]byte, error) { return captureDirty(p.dirty) }

// RestoreProtoState implements core.ProtoStater.
func (p *entryMW) RestoreProtoState(data []byte) error { return restoreDirty(p.dirty, data) }

// CaptureProtoState implements core.ProtoStater.
func (p *java) CaptureProtoState() ([]byte, error) { return captureDirty(p.dirty) }

// RestoreProtoState implements core.ProtoStater.
func (p *java) RestoreProtoState(data []byte) error { return restoreDirty(p.dirty, data) }

// faultCounts serializes adaptive's per-node write-fault counters as sorted
// (page, count) pairs.
type faultCounts struct {
	Counts [][][2]uint64 `json:"counts"`
}

// CaptureProtoState implements core.ProtoStater.
func (p *adaptive) CaptureProtoState() ([]byte, error) {
	s := faultCounts{Counts: make([][][2]uint64, len(p.writeFaults))}
	for n, m := range p.writeFaults {
		pairs := make([][2]uint64, 0, len(m))
		for pg, c := range m {
			pairs = append(pairs, [2]uint64{uint64(pg), uint64(c)})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
		s.Counts[n] = pairs
	}
	return json.Marshal(s)
}

// RestoreProtoState implements core.ProtoStater.
func (p *adaptive) RestoreProtoState(data []byte) error {
	var s faultCounts
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s.Counts) != len(p.writeFaults) {
		return fmt.Errorf("protocols: write-fault state for %d nodes, have %d", len(s.Counts), len(p.writeFaults))
	}
	for n := range p.writeFaults {
		p.writeFaults[n] = make(map[core.Page]int, len(s.Counts[n]))
		for _, pair := range s.Counts[n] {
			p.writeFaults[n][core.Page(pair[0])] = int(pair[1])
		}
	}
	return nil
}
