package protocols

import (
	"fmt"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
)

// harness builds a PM2 machine + DSM with all built-ins registered.
func harness(nodes int, prof *madeleine.Profile, seed int64) (*pm2.Runtime, *core.DSM, IDs) {
	rt := pm2.NewRuntime(pm2.Config{Nodes: nodes, Network: prof, Seed: seed})
	reg, ids := NewRegistry()
	d := core.New(rt, reg, core.DefaultCosts())
	return rt, d, ids
}

// runCounter increments a lock-protected shared counter from every node and
// checks the final value — the canonical consistency smoke test.
func runCounter(t *testing.T, proto func(IDs) core.ProtoID, nodes, incrPerThread int) {
	t.Helper()
	rt, d, ids := harness(nodes, madeleine.BIPMyrinet, 42)
	id := proto(ids)
	d.SetDefaultProtocol(id)
	base := d.MustMalloc(0, 8, nil)
	lock := d.NewLock(0)
	for n := 0; n < nodes; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("worker%d", node), func(th *pm2.Thread) {
			for i := 0; i < incrPerThread; i++ {
				d.Acquire(th, lock)
				v := d.ReadUint64(th, base)
				d.WriteUint64(th, base, v+1)
				d.Release(th, lock)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("[%s] %v", d.RegistryName(id), err)
	}
	// Read back through node 0's protocol path.
	var got uint64
	rt.CreateThread(0, "reader", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		got = d.ReadUint64(th, base)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(nodes * incrPerThread)
	if got != want {
		t.Fatalf("[%s] counter = %d, want %d", d.RegistryName(id), got, want)
	}
}

func TestSmokeCounterLiHudak(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.LiHudak }, 4, 10)
}

func TestSmokeCounterMigrateThread(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.MigrateThread }, 4, 10)
}

func TestSmokeCounterErcSW(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.ErcSW }, 4, 10)
}

func TestSmokeCounterHbrcMW(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.HbrcMW }, 4, 10)
}

func TestSmokeCounterHybrid(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.Hybrid }, 4, 10)
}

func TestSmokeCounterAdaptive(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.Adaptive }, 4, 10)
}

// Java protocols use the object API with a monitor lock.
func runJavaCounter(t *testing.T, ic bool) {
	t.Helper()
	rt, d, ids := harness(4, madeleine.SISCISCI, 7)
	id := ids.JavaPF
	if ic {
		id = ids.JavaIC
	}
	d.SetDefaultProtocol(id)
	obj := d.MustNewObject(0, 4, id)
	monitor := d.NewLock(0)
	for n := 0; n < 4; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("jworker%d", node), func(th *pm2.Thread) {
			for i := 0; i < 10; i++ {
				d.Acquire(th, monitor)
				v := d.GetField(th, obj, 0)
				d.PutField(th, obj, 0, v+1)
				d.Release(th, monitor)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	rt.CreateThread(1, "jreader", func(th *pm2.Thread) {
		d.Acquire(th, monitor)
		got = d.GetField(th, obj, 0)
		d.Release(th, monitor)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("[%s] counter = %d, want 40", d.RegistryName(id), got)
	}
}

func TestSmokeCounterJavaIC(t *testing.T) { runJavaCounter(t, true) }
func TestSmokeCounterJavaPF(t *testing.T) { runJavaCounter(t, false) }
