package protocols

import (
	"math"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

func roundUS(d sim.Duration) int { return int(math.Round(d.Microseconds())) }

// remoteReadFault allocates a page on node 1 and performs a single read from
// node 0, returning the recorded fault timing.
func remoteReadFault(t *testing.T, proto func(IDs) core.ProtoID, prof *madeleine.Profile) *core.FaultTiming {
	t.Helper()
	rt, d, ids := harness(2, prof, 1)
	d.SetDefaultProtocol(proto(ids))
	base := d.MustMalloc(1, core.PageSize, nil)
	rt.CreateThread(0, "reader", func(th *pm2.Thread) {
		d.ReadUint64(th, base)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	recs := d.Timings().All()
	if len(recs) != 1 {
		t.Fatalf("recorded %d fault timings, want 1", len(recs))
	}
	return recs[0]
}

// TestTable3ReadFaultBreakdown reproduces the paper's Table 3: processing a
// read fault under the page-migration policy, step by step, on all four
// networks.
func TestTable3ReadFaultBreakdown(t *testing.T) {
	rows := []struct {
		prof                               *madeleine.Profile
		fault, request, transfer, ovh, tot int
	}{
		{madeleine.BIPMyrinet, 11, 23, 138, 26, 198},
		{madeleine.TCPMyrinet, 11, 220, 343, 26, 600},
		{madeleine.TCPFastEthernet, 11, 220, 736, 26, 993},
		{madeleine.SISCISCI, 11, 38, 119, 26, 194},
	}
	for _, row := range rows {
		ft := remoteReadFault(t, func(i IDs) core.ProtoID { return i.LiHudak }, row.prof)
		if got := roundUS(ft.Detect); got != row.fault {
			t.Errorf("%s: page fault = %dus, want %d", row.prof.Name, got, row.fault)
		}
		if got := roundUS(ft.Request); got != row.request {
			t.Errorf("%s: request page = %dus, want %d", row.prof.Name, got, row.request)
		}
		if got := roundUS(ft.Transfer); got != row.transfer {
			t.Errorf("%s: page transfer = %dus, want %d", row.prof.Name, got, row.transfer)
		}
		if got := roundUS(ft.ProtocolOverhead()); got != row.ovh {
			t.Errorf("%s: protocol overhead = %dus, want %d", row.prof.Name, got, row.ovh)
		}
		if got := roundUS(ft.Total); got != row.tot {
			t.Errorf("%s: total = %dus, want %d", row.prof.Name, got, row.tot)
		}
	}
}

// TestTable4ReadFaultBreakdown reproduces the paper's Table 4: processing a
// read fault under the thread-migration policy.
func TestTable4ReadFaultBreakdown(t *testing.T) {
	rows := []struct {
		prof                   *madeleine.Profile
		fault, mig, ovh, total int
	}{
		{madeleine.BIPMyrinet, 11, 75, 1, 87},
		{madeleine.TCPMyrinet, 11, 280, 1, 292},
		{madeleine.TCPFastEthernet, 11, 373, 1, 385},
		{madeleine.SISCISCI, 11, 62, 1, 74},
	}
	for _, row := range rows {
		ft := remoteReadFault(t, func(i IDs) core.ProtoID { return i.MigrateThread }, row.prof)
		if got := roundUS(ft.Detect); got != row.fault {
			t.Errorf("%s: page fault = %dus, want %d", row.prof.Name, got, row.fault)
		}
		if got := roundUS(ft.Migration); got != row.mig {
			t.Errorf("%s: thread migration = %dus, want %d", row.prof.Name, got, row.mig)
		}
		if got := roundUS(ft.ProtocolOverhead()); got != row.ovh {
			t.Errorf("%s: protocol overhead = %dus, want %d", row.prof.Name, got, row.ovh)
		}
		if got := roundUS(ft.Total); got != row.total {
			t.Errorf("%s: total = %dus, want %d", row.prof.Name, got, row.total)
		}
	}
}

// TestProtocolOverheadShare checks the paper's observation that the DSM-PM2
// protocol overhead is at most ~15% of the total page-based access time.
func TestProtocolOverheadShare(t *testing.T) {
	for _, prof := range madeleine.Profiles {
		ft := remoteReadFault(t, func(i IDs) core.ProtoID { return i.LiHudak }, prof)
		share := float64(ft.ProtocolOverhead()) / float64(ft.Total)
		if share > 0.15 {
			t.Errorf("%s: protocol overhead is %.0f%% of total, paper says <= 15%%",
				prof.Name, share*100)
		}
	}
}

// TestMigrationBeatsPageTransferOnSingleFault checks the Section 4
// comparison: for a single fault with a small-stack thread, the
// thread-migration implementation outperforms the page-transfer one.
func TestMigrationBeatsPageTransferOnSingleFault(t *testing.T) {
	for _, prof := range madeleine.Profiles {
		page := remoteReadFault(t, func(i IDs) core.ProtoID { return i.LiHudak }, prof)
		mig := remoteReadFault(t, func(i IDs) core.ProtoID { return i.MigrateThread }, prof)
		if mig.Total >= page.Total {
			t.Errorf("%s: migration fault (%v) not faster than page fault (%v)",
				prof.Name, mig.Total, page.Total)
		}
	}
}
