package protocols

import (
	"fmt"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

func TestErcReleaseAfterOwnershipMoved(t *testing.T) {
	// Node 1 writes (becomes owner, marks dirty), node 2 steals ownership
	// before node 1 releases: node 1's release must skip the page (the new
	// owner inherited the copyset and the invalidation duty) and not
	// corrupt anything.
	rt, d, ids := harness(3, madeleine.BIPMyrinet, 17)
	d.SetDefaultProtocol(ids.ErcSW)
	base := d.MustMalloc(0, 8, nil)
	lock := d.NewLock(0)
	rt.CreateThread(1, "w1", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		d.WriteUint64(th, base, 1)
		// Dally inside the critical section while node 2 writes
		// (erc_sw allows this: node 2 uses a different lock).
		th.Advance(20 * sim.Millisecond)
		d.Release(th, lock)
	})
	lock2 := d.NewLock(0)
	rt.CreateThread(2, "w2", func(th *pm2.Thread) {
		th.Advance(5 * sim.Millisecond)
		d.Acquire(th, lock2)
		d.WriteUint64(th, base+8, 2)
		d.Release(th, lock2)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var a, b uint64
	rt.CreateThread(0, "verify", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		a = d.ReadUint64(th, base)
		b = d.ReadUint64(th, base+8)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// MRSW: node 2's page grab carried node 1's write with it.
	if a != 1 || b != 2 {
		t.Fatalf("values = %d,%d; want 1,2", a, b)
	}
}

func TestAdaptiveFaultCountResets(t *testing.T) {
	reg, _ := NewRegistry()
	_ = reg
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.Adaptive)
	base := d.MustMalloc(1, 8, nil)
	inst := d.Registry()
	_ = inst
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		d.WriteUint64(th, base, 1)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// One write fault recorded on node 0 for the page (below threshold,
	// so the page migrated rather than the thread).
	if d.Stats().Migrations != 0 {
		t.Fatal("adaptive migrated below threshold")
	}
}

func TestHybridUnexpectedWriteRequestPanics(t *testing.T) {
	p := &hybrid{}
	defer func() {
		if recover() == nil {
			t.Fatal("hybrid WriteServer did not panic")
		}
	}()
	p.WriteServer(&core.Request{})
}

func TestMigrateThreadUnexpectedServersPanic(t *testing.T) {
	p := &migrateThread{}
	for name, fn := range map[string]func(){
		"read":  func() { p.ReadServer(&core.Request{}) },
		"write": func() { p.WriteServer(&core.Request{}) },
		"inv":   func() { p.InvalidateServer(&core.Invalidate{}) },
		"page":  func() { p.ReceivePageServer(&core.PageMsg{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("migrate_thread %s server did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestJavaAcquireFlushesMultipleCachedPages(t *testing.T) {
	rt, d, ids := harness(2, madeleine.SISCISCI, 7)
	d.SetDefaultProtocol(ids.JavaPF)
	// Several objects on node 0's pages, cached by node 1.
	objs := make([]core.ObjRef, 4)
	for i := range objs {
		objs[i] = d.MustNewObject(0, core.PageSize/core.FieldBytes, ids.JavaPF) // one page each
	}
	mon := d.NewLock(0)
	rt.CreateThread(1, "w", func(th *pm2.Thread) {
		for _, o := range objs {
			d.GetField(th, o, 0) // cache all four pages
		}
		cached := 0
		for _, o := range objs {
			pg := d.Space(1).PageOf(o.Base)
			if d.Space(1).AccessOf(pg) != memory.NoAccess {
				cached++
			}
		}
		if cached != 4 {
			t.Errorf("cached %d of 4 pages before acquire", cached)
		}
		d.Acquire(th, mon) // JMM flush: every cached page drops
		for _, o := range objs {
			pg := d.Space(1).PageOf(o.Base)
			if d.Space(1).AccessOf(pg) != memory.NoAccess {
				t.Errorf("page %d survived the monitor-entry flush", pg)
			}
		}
		d.Release(th, mon)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestJavaPutAtHomeNotRecorded(t *testing.T) {
	rt, d, ids := harness(2, madeleine.SISCISCI, 7)
	d.SetDefaultProtocol(ids.JavaIC)
	obj := d.MustNewObject(0, 2, ids.JavaIC)
	mon := d.NewLock(0)
	rt.CreateThread(0, "home-writer", func(th *pm2.Thread) {
		d.Acquire(th, mon)
		d.PutField(th, obj, 0, 5)
		d.Release(th, mon)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().DiffsSent != 0 {
		t.Fatalf("home-side put shipped %d diffs; the reference copy is updated in place",
			d.Stats().DiffsSent)
	}
}

func TestCoalescedReadThenWriteUpgrade(t *testing.T) {
	// Thread A read-faults, thread B write-faults on the same page at the
	// same time on the same node: B coalesces with A's read fetch, finds
	// the granted right insufficient, refaults, and upgrades — no lost
	// writes, no deadlock.
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 23)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(1, 8, nil)
	var readVal uint64
	rt.CreateThread(0, "reader", func(th *pm2.Thread) {
		readVal = d.ReadUint64(th, base)
	})
	rt.CreateThread(0, "writer", func(th *pm2.Thread) {
		d.WriteUint64(th, base, 42)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	rt.CreateThread(1, "verify", func(th *pm2.Thread) { got = d.ReadUint64(th, base) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("write lost in read/write coalescing: got %d", got)
	}
	_ = readVal
}

func TestManyPagesManyThreadsStress(t *testing.T) {
	// 4 nodes x 3 threads hammer 8 pages with lock-protected increments
	// under every paged protocol; totals must be exact.
	for _, pname := range []string{"li_hudak", "erc_sw", "hbrc_mw", "li_fixed", "entry_mw"} {
		t.Run(pname, func(t *testing.T) {
			rt, d, _ := harness(4, madeleine.SISCISCI, 29)
			id, _ := d.Registry().Lookup(pname)
			d.SetDefaultProtocol(id)
			const pages, perThread = 8, 6
			addrs := make([]core.Addr, pages)
			locks := make([]int, pages)
			for i := range addrs {
				addrs[i] = d.MustMalloc(i%4, 8, nil)
				locks[i] = d.NewLock(i % 4)
			}
			nthreads := 0
			for n := 0; n < 4; n++ {
				for k := 0; k < 3; k++ {
					node := n
					tid := nthreads
					nthreads++
					rt.CreateThread(node, fmt.Sprintf("w%d", tid), func(th *pm2.Thread) {
						for i := 0; i < perThread; i++ {
							slot := (tid + i) % pages
							d.Acquire(th, locks[slot])
							d.WriteUint64(th, addrs[slot], d.ReadUint64(th, addrs[slot])+1)
							d.Release(th, locks[slot])
						}
					})
				}
			}
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			total := uint64(0)
			rt.CreateThread(0, "verify", func(th *pm2.Thread) {
				for i := range addrs {
					d.Acquire(th, locks[i])
					total += d.ReadUint64(th, addrs[i])
					d.Release(th, locks[i])
				}
			})
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			if want := uint64(nthreads * perThread); total != want {
				t.Fatalf("total increments = %d, want %d", total, want)
			}
		})
	}
}
