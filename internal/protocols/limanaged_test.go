package protocols

import (
	"fmt"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

func TestLiFixedCounter(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.LiFixed }, 4, 10)
}

func TestLiCentralCounter(t *testing.T) {
	runCounter(t, func(i IDs) core.ProtoID { return i.LiCentral }, 4, 10)
}

func TestManagedReadReplicatesAndWriteInvalidates(t *testing.T) {
	for _, pick := range []struct {
		name string
		id   func(IDs) core.ProtoID
	}{
		{"li_fixed", func(i IDs) core.ProtoID { return i.LiFixed }},
		{"li_central", func(i IDs) core.ProtoID { return i.LiCentral }},
	} {
		t.Run(pick.name, func(t *testing.T) {
			rt, d, ids := harness(4, madeleine.BIPMyrinet, 1)
			d.SetDefaultProtocol(pick.id(ids))
			base := d.MustMalloc(1, 8, nil)
			pg := d.Space(0).PageOf(base)
			for n := 2; n < 4; n++ {
				node := n
				rt.CreateThread(node, fmt.Sprintf("r%d", node), func(th *pm2.Thread) {
					d.ReadUint64(th, base)
				})
			}
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{2, 3} {
				if d.Space(n).AccessOf(pg) != memory.ReadOnly {
					t.Errorf("node %d has no read copy", n)
				}
			}
			rt.CreateThread(3, "writer", func(th *pm2.Thread) {
				d.WriteUint64(th, base, 7)
			})
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			if !d.Entry(3, pg).Owner {
				t.Error("ownership did not reach the writer")
			}
			if d.Space(2).AccessOf(pg) != memory.NoAccess {
				t.Error("reader copy survived the write")
			}
			var got uint64
			rt.CreateThread(0, "verify", func(th *pm2.Thread) {
				got = d.ReadUint64(th, base)
			})
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			if got != 7 {
				t.Fatalf("read %d after ownership transfer, want 7", got)
			}
		})
	}
}

func TestManagedOwnershipMovesSerially(t *testing.T) {
	// Ownership hops across every node through the manager; the final
	// value must be the last writer's.
	for _, pick := range []func(IDs) core.ProtoID{
		func(i IDs) core.ProtoID { return i.LiFixed },
		func(i IDs) core.ProtoID { return i.LiCentral },
	} {
		rt, d, ids := harness(4, madeleine.SISCISCI, 3)
		d.SetDefaultProtocol(pick(ids))
		base := d.MustMalloc(0, 8, nil)
		for n := 1; n < 4; n++ {
			node := n
			rt.CreateThread(node, fmt.Sprintf("w%d", node), func(th *pm2.Thread) {
				th.Advance(sim.Duration(node) * 10 * sim.Millisecond)
				d.WriteUint64(th, base, uint64(node))
			})
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		var got uint64
		rt.CreateThread(0, "verify", func(th *pm2.Thread) { got = d.ReadUint64(th, base) })
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 3 {
			t.Fatalf("final value = %d, want 3", got)
		}
	}
}

// TestManagerStrategyHopCounts verifies the structural difference the
// ablation bench measures: with the page owned by a third node, a
// centralized/fixed manager costs one forwarding hop (two control messages),
// whereas li_hudak's hint points straight at the owner after first contact.
func TestManagerStrategyHopCounts(t *testing.T) {
	faultRequests := func(id func(IDs) core.ProtoID) int64 {
		rt, d, ids := harness(3, madeleine.BIPMyrinet, 1)
		d.SetDefaultProtocol(id(ids))
		// Page homed on node 0 (the manager for li_fixed; node 0 is
		// also li_central's manager); move ownership to node 2 first.
		base := d.MustMalloc(0, 8, nil)
		rt.CreateThread(2, "takeover", func(th *pm2.Thread) { d.WriteUint64(th, base, 1) })
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		before := d.Stats().Requests
		// Now node 1 faults; its request must find the owner (node 2).
		rt.CreateThread(1, "reader", func(th *pm2.Thread) { d.ReadUint64(th, base) })
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Stats().Requests - before
	}
	fixed := faultRequests(func(i IDs) core.ProtoID { return i.LiFixed })
	if fixed != 2 {
		t.Errorf("li_fixed request messages = %d, want 2 (requester->manager->owner)", fixed)
	}
	dynamic := faultRequests(func(i IDs) core.ProtoID { return i.LiHudak })
	if dynamic != 2 {
		// li_hudak also needs 2 here (hint still points at the old
		// owner, which forwards) — the win appears on repeat faults.
		t.Logf("li_hudak request messages = %d", dynamic)
	}
}

func TestManagedRegistryNames(t *testing.T) {
	reg, ids := NewRegistry()
	if reg.Name(ids.LiFixed) != "li_fixed" || reg.Name(ids.LiCentral) != "li_central" {
		t.Fatal("managed protocols misregistered")
	}
}
