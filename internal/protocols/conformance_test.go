package protocols

// Cross-protocol conformance suite: a shared table of application-shaped
// scenarios (jacobi stencil, mapcolor-style branch & bound, hotspot counter,
// producer/consumer) runs over EVERY registered protocol × every topology
// class, and the final shared-memory contents must match a single-node
// sequential oracle. The protocol list comes from the registry, so a newly
// registered protocol is covered automatically — if it cannot keep these
// four sharing patterns coherent, this suite is where it fails first.
//
// Scenarios access shared data through the object primitives (Get/Put),
// which route through a protocol's inline-check machinery when it has one
// (java_ic, java_pf) and fall back to the paged access path everywhere
// else — the one access style every protocol supports.

import (
	"fmt"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
)

// conformanceNodes is the cluster size every scenario runs on.
const conformanceNodes = 4

// topoCase is one interconnect class the suite sweeps.
type topoCase struct {
	name string
	make func() madeleine.Topology
}

func conformanceTopologies(short bool) []topoCase {
	topos := []topoCase{
		{"Uniform", func() madeleine.Topology { return madeleine.NewUniform(madeleine.BIPMyrinet) }},
	}
	if short {
		return topos
	}
	return append(topos,
		topoCase{"Hierarchical", func() madeleine.Topology {
			return madeleine.NewHierarchical(
				madeleine.EvenClusters(conformanceNodes, 2),
				madeleine.SISCISCI, madeleine.TCPFastEthernet)
		}},
		topoCase{"LinkMatrix", func() madeleine.Topology {
			return madeleine.NewLinkMatrix(madeleine.BIPMyrinet).
				SetDuplex(0, conformanceNodes-1, madeleine.TCPFastEthernet).
				SetDuplex(1, 2, madeleine.SISCISCI)
		}},
	)
}

// scenario is one shared workload: run drives the cluster, oracle computes
// the expected final state sequentially; both return the values the suite
// compares (read back through the DSM itself, so what is checked is the
// final page contents as any node would observe them).
type scenario struct {
	name   string
	oracle func() []uint64
	run    func(t *testing.T, rt *pm2.Runtime, d *core.DSM) []uint64
}

// conformanceHarness builds a machine over topo with all built-ins
// registered, proto as default, and the requested communication path.
func conformanceHarness(t *testing.T, topo madeleine.Topology, proto string, batched bool) (*pm2.Runtime, *core.DSM) {
	t.Helper()
	rt := pm2.NewRuntime(pm2.Config{Nodes: conformanceNodes, Topology: topo, Seed: 42})
	reg, _ := NewRegistry()
	d := core.New(rt, reg, core.DefaultCosts())
	d.SetBatching(batched)
	id, ok := reg.Lookup(proto)
	if !ok {
		t.Fatalf("protocol %q not registered", proto)
	}
	d.SetDefaultProtocol(id)
	return rt, d
}

// --- scenario: jacobi -------------------------------------------------------

const (
	jacN     = 8 // interior grid dimension
	jacIters = 3
)

func jacobiOracle() []uint64 {
	cur := make([][]float64, jacN+2)
	next := make([][]float64, jacN+2)
	for i := range cur {
		cur[i] = make([]float64, jacN+2)
		next[i] = make([]float64, jacN+2)
		for j := range cur[i] {
			if i == 0 {
				cur[i][j] = 100
				next[i][j] = 100
			}
		}
	}
	for it := 0; it < jacIters; it++ {
		for i := 1; i <= jacN; i++ {
			for j := 1; j <= jacN; j++ {
				next[i][j] = 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])
			}
		}
		cur, next = next, cur
	}
	out := make([]uint64, 0, jacN*jacN)
	for i := 1; i <= jacN; i++ {
		for j := 1; j <= jacN; j++ {
			out = append(out, uint64(cur[i][j]*1e6)) // fixed-point to stay integral
		}
	}
	return out
}

func jacobiRun(t *testing.T, rt *pm2.Runtime, d *core.DSM) []uint64 {
	return jacobiRunPlaced(t, rt, d, false)
}

// jacobiRunMisplaced homes every grid row on node 0 — the placement the
// profiler's home migration exists to repair, so the adaptive sweep
// exercises real mid-run re-homings under every protocol.
func jacobiRunMisplaced(t *testing.T, rt *pm2.Runtime, d *core.DSM) []uint64 {
	return jacobiRunPlaced(t, rt, d, true)
}

func jacobiRunPlaced(t *testing.T, rt *pm2.Runtime, d *core.DSM, misplaced bool) []uint64 {
	rowBytes := (jacN + 2) * 8
	ownerOf := func(row int) int {
		if row == 0 {
			return 0
		}
		if row == jacN+1 {
			return conformanceNodes - 1
		}
		return (row - 1) * conformanceNodes / jacN
	}
	var attr *core.Attr
	if misplaced {
		attr = &core.Attr{Protocol: -1, Home: 0}
	}
	grids := [2][]core.Addr{make([]core.Addr, jacN+2), make([]core.Addr, jacN+2)}
	for g := 0; g < 2; g++ {
		for row := 0; row <= jacN+1; row++ {
			grids[g][row] = d.MustMalloc(ownerOf(row), rowBytes, attr)
		}
	}
	// Fixed-point arithmetic (1e-6 units) keeps every cell integral, so
	// page contents compare exactly.
	bar := d.NewBarrier(conformanceNodes)
	for node := 0; node < conformanceNodes; node++ {
		node := node
		rt.CreateThread(node, fmt.Sprintf("jac%d", node), func(th *pm2.Thread) {
			// Init own rows of both grids.
			for g := 0; g < 2; g++ {
				for row := 0; row <= jacN+1; row++ {
					if ownerOf(row) != node {
						continue
					}
					v := uint64(0)
					if row == 0 {
						v = 100 * 1e6
					}
					for j := 0; j <= jacN+1; j++ {
						d.PutUint64(th, grids[g][row]+core.Addr(8*j), v)
					}
				}
			}
			d.Barrier(th, bar)
			cur, next := 0, 1
			for it := 0; it < jacIters; it++ {
				for row := 1; row <= jacN; row++ {
					if ownerOf(row) != node {
						continue
					}
					for j := 1; j <= jacN; j++ {
						a := d.GetUint64(th, grids[cur][row-1]+core.Addr(8*j))
						b := d.GetUint64(th, grids[cur][row+1]+core.Addr(8*j))
						c := d.GetUint64(th, grids[cur][row]+core.Addr(8*(j-1)))
						e := d.GetUint64(th, grids[cur][row]+core.Addr(8*(j+1)))
						d.PutUint64(th, grids[next][row]+core.Addr(8*j), (a+b+c+e)/4)
					}
				}
				d.Barrier(th, bar)
				cur, next = next, cur
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	final := jacIters % 2
	return readBack(t, rt, d, func(th *pm2.Thread) []uint64 {
		out := make([]uint64, 0, jacN*jacN)
		for i := 1; i <= jacN; i++ {
			for j := 1; j <= jacN; j++ {
				out = append(out, d.GetUint64(th, grids[final][i]+core.Addr(8*j)))
			}
		}
		return out
	})
}

// --- scenario: mapcolor -----------------------------------------------------

// A branch-and-bound reduction in the shape of the map-coloring search:
// every node evaluates a deterministic slice of candidate assignments and
// races to improve the shared best cost under a lock.

const mcCandidates = 64

func mcCost(i int) uint64 {
	x := uint64(i)*2654435761 + 97
	return x % 1000
}

func mapcolorOracle() []uint64 {
	best, arg := ^uint64(0), uint64(0)
	for i := 0; i < mcCandidates; i++ {
		if c := mcCost(i); c < best {
			best, arg = c, uint64(i)
		}
	}
	return []uint64{best, arg}
}

func mapcolorRun(t *testing.T, rt *pm2.Runtime, d *core.DSM) []uint64 {
	base := d.MustMalloc(0, 16, nil) // [best, argbest]
	lock := d.NewLock(0)
	rt.CreateThread(0, "mcinit", func(th *pm2.Thread) {
		d.PutUint64(th, base, ^uint64(0))
		d.PutUint64(th, base+8, 0)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < conformanceNodes; node++ {
		node := node
		rt.CreateThread(node, fmt.Sprintf("mc%d", node), func(th *pm2.Thread) {
			for i := node; i < mcCandidates; i += conformanceNodes {
				c := mcCost(i)
				d.Acquire(th, lock)
				if c < d.GetUint64(th, base) {
					d.PutUint64(th, base, c)
					d.PutUint64(th, base+8, uint64(i))
				}
				d.Release(th, lock)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return readBack(t, rt, d, func(th *pm2.Thread) []uint64 {
		d.Acquire(th, lock)
		defer d.Release(th, lock)
		return []uint64{d.GetUint64(th, base), d.GetUint64(th, base+8)}
	})
}

// --- scenario: hotspot ------------------------------------------------------

// Every node hammers one shared counter page under a lock — the classic
// hotspot — and also signs a private slot on the same page, so both the
// contended word and the surrounding page contents are checked.

const hotIncr = 12

func hotspotOracle() []uint64 {
	out := []uint64{conformanceNodes * hotIncr}
	for n := 0; n < conformanceNodes; n++ {
		out = append(out, uint64(1000+n*n))
	}
	return out
}

func hotspotRun(t *testing.T, rt *pm2.Runtime, d *core.DSM) []uint64 {
	base := d.MustMalloc(0, 8*(conformanceNodes+1), nil)
	lock := d.NewLock(conformanceNodes - 1) // manager away from the home
	for node := 0; node < conformanceNodes; node++ {
		node := node
		rt.CreateThread(node, fmt.Sprintf("hot%d", node), func(th *pm2.Thread) {
			for i := 0; i < hotIncr; i++ {
				d.Acquire(th, lock)
				d.PutUint64(th, base, d.GetUint64(th, base)+1)
				d.Release(th, lock)
			}
			d.Acquire(th, lock)
			d.PutUint64(th, base+core.Addr(8*(node+1)), uint64(1000+node*node))
			d.Release(th, lock)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return readBack(t, rt, d, func(th *pm2.Thread) []uint64 {
		d.Acquire(th, lock)
		defer d.Release(th, lock)
		out := []uint64{d.GetUint64(th, base)}
		for n := 0; n < conformanceNodes; n++ {
			out = append(out, d.GetUint64(th, base+core.Addr(8*(n+1))))
		}
		return out
	})
}

// --- scenario: producer/consumer --------------------------------------------

// A producer on node 0 streams items through a one-slot shared mailbox to a
// consumer on the last node, synchronized with a DSM lock and condition
// variables; the consumer publishes its running sum back through shared
// memory.

const pcItems = 16

func pcValue(i int) uint64 { return uint64(i)*31 + 7 }

func prodconsOracle() []uint64 {
	sum := uint64(0)
	for i := 0; i < pcItems; i++ {
		sum += pcValue(i)
	}
	return []uint64{sum, pcItems}
}

func prodconsRun(t *testing.T, rt *pm2.Runtime, d *core.DSM) []uint64 {
	// Layout: [full flag, item, sum, count]
	base := d.MustMalloc(0, 32, nil)
	lock := d.NewLock(0)
	notFull := d.NewCond(lock)
	notEmpty := d.NewCond(lock)
	rt.CreateThread(0, "producer", func(th *pm2.Thread) {
		for i := 0; i < pcItems; i++ {
			d.Acquire(th, lock)
			for d.GetUint64(th, base) != 0 {
				d.CondWait(th, notFull)
			}
			d.PutUint64(th, base+8, pcValue(i))
			d.PutUint64(th, base, 1)
			d.CondSignal(th, notEmpty)
			d.Release(th, lock)
		}
	})
	rt.CreateThread(conformanceNodes-1, "consumer", func(th *pm2.Thread) {
		for i := 0; i < pcItems; i++ {
			d.Acquire(th, lock)
			for d.GetUint64(th, base) == 0 {
				d.CondWait(th, notEmpty)
			}
			v := d.GetUint64(th, base+8)
			d.PutUint64(th, base, 0)
			d.PutUint64(th, base+16, d.GetUint64(th, base+16)+v)
			d.PutUint64(th, base+24, d.GetUint64(th, base+24)+1)
			d.CondSignal(th, notFull)
			d.Release(th, lock)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return readBack(t, rt, d, func(th *pm2.Thread) []uint64 {
		d.Acquire(th, lock)
		defer d.Release(th, lock)
		return []uint64{d.GetUint64(th, base+16), d.GetUint64(th, base+24)}
	})
}

// readBack collects the scenario's final shared values from a fresh thread
// on node 1 (never the home of anything above), so the comparison crosses
// the protocol's read path one more time.
func readBack(t *testing.T, rt *pm2.Runtime, d *core.DSM, read func(*pm2.Thread) []uint64) []uint64 {
	t.Helper()
	var out []uint64
	rt.CreateThread(1, "readback", func(th *pm2.Thread) { out = read(th) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestConformanceAdaptive sweeps the conformance scenarios × every
// registered protocol × both communication paths with the sharing-pattern
// profiler's home migration enabled vs disabled, on the uniform topology.
// Both placements must match the sequential oracles AND (therefore) each
// other — migration may move pages, never values. A misplaced-homes jacobi
// variant joins the scenario set so the sweep exercises real mid-run
// re-homings (the standard scenarios allocate well-placed pages, which
// mostly stay put). In -short mode (the CI race job) the protocol set
// shrinks to hbrc_mw, erc_sw and adaptive — the home-based headline, the
// ownership-migrating MRSW, and the classifier's own consumer — with both
// comm paths kept, matching TestConformance's convention.
func TestConformanceAdaptive(t *testing.T) {
	scenarios := []scenario{
		{"jacobi", jacobiOracle, jacobiRun},
		{"jacobi-misplaced", jacobiOracle, jacobiRunMisplaced},
		{"mapcolor", mapcolorOracle, mapcolorRun},
		{"hotspot", hotspotOracle, hotspotRun},
		{"prodcons", prodconsOracle, prodconsRun},
	}
	commPaths := []struct {
		name    string
		batched bool
	}{
		{"batched", true},
		{"unbatched", false},
	}
	reg, _ := NewRegistry()
	protocols := reg.Names()
	if testing.Short() {
		protocols = []string{"hbrc_mw", "erc_sw", "adaptive"}
	}
	topo := func() madeleine.Topology { return madeleine.NewUniform(madeleine.BIPMyrinet) }
	for _, comm := range commPaths {
		for _, proto := range protocols {
			for _, sc := range scenarios {
				comm, proto, sc := comm, proto, sc
				t.Run(fmt.Sprintf("%s/%s/%s", comm.name, proto, sc.name), func(t *testing.T) {
					// Both placements are held to the same sequential
					// oracle, which is also the "match each other"
					// guarantee: two runs equal to one oracle cannot
					// diverge from one another.
					want := sc.oracle()
					for _, migrate := range []bool{false, true} {
						rt, d := conformanceHarness(t, topo(), proto, comm.batched)
						if migrate {
							d.EnableProfiler(core.ProfilerConfig{Migrate: true})
						}
						got := sc.run(t, rt, d)
						if len(got) != len(want) {
							t.Fatalf("migrate=%v: read %d values, oracle has %d", migrate, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("migrate=%v: value %d = %d, oracle says %d (migrations=%d)",
									migrate, i, got[i], want[i], d.Stats().HomeMigrations)
							}
						}
					}
				})
			}
		}
	}
}

// TestConformanceCounterParity pins Stats parity between the batched and
// unbatched communication paths: the same scenario under the same protocol
// must report identical fetch-side counters (RemoteFetches,
// MisplacedFetches — they count faults, which batching must not add or
// hide), and consistent invalidation-side accounting. Write notices exist
// only on the batched path (a notice replaces eager invalidations that the
// unbatched run must still perform), so for protocols that use them the
// invariant is a transfer, not an equality: unbatched InvAcks is bounded
// below by batched InvAcks and above by batched InvAcks + Notices. Every
// path must also keep InvAcks == Invalidations in a fault-free run — each
// invalidation shipped is acknowledged exactly once.
func TestConformanceCounterParity(t *testing.T) {
	scenarios := []scenario{
		{"jacobi", jacobiOracle, jacobiRun},
		{"jacobi-misplaced", jacobiOracle, jacobiRunMisplaced},
		{"mapcolor", mapcolorOracle, mapcolorRun},
		{"hotspot", hotspotOracle, hotspotRun},
		{"prodcons", prodconsOracle, prodconsRun},
	}
	reg, _ := NewRegistry()
	protocols := reg.Names()
	if testing.Short() {
		protocols = []string{"hbrc_mw", "erc_sw", "adaptive"}
	}
	topo := func() madeleine.Topology { return madeleine.NewUniform(madeleine.BIPMyrinet) }
	for _, proto := range protocols {
		for _, sc := range scenarios {
			proto, sc := proto, sc
			t.Run(fmt.Sprintf("%s/%s", proto, sc.name), func(t *testing.T) {
				var st [2]core.Stats
				for i, batched := range []bool{true, false} {
					rt, d := conformanceHarness(t, topo(), proto, batched)
					d.EnableProfiler(core.ProfilerConfig{}) // arm MisplacedFetches tracking
					sc.run(t, rt, d)
					st[i] = d.Stats()
				}
				b, u := st[0], st[1]
				if b.RemoteFetches != u.RemoteFetches {
					t.Errorf("RemoteFetches: batched %d, unbatched %d", b.RemoteFetches, u.RemoteFetches)
				}
				if b.MisplacedFetches != u.MisplacedFetches {
					t.Errorf("MisplacedFetches: batched %d, unbatched %d", b.MisplacedFetches, u.MisplacedFetches)
				}
				if u.Notices != 0 {
					t.Errorf("unbatched run queued %d write notices; notices require batching", u.Notices)
				}
				if b.InvAcks != b.Invalidations {
					t.Errorf("batched InvAcks %d != Invalidations %d", b.InvAcks, b.Invalidations)
				}
				if u.InvAcks != u.Invalidations {
					t.Errorf("unbatched InvAcks %d != Invalidations %d", u.InvAcks, u.Invalidations)
				}
				if b.Notices == 0 {
					if b.InvAcks != u.InvAcks {
						t.Errorf("InvAcks: batched %d, unbatched %d (no notices in play)", b.InvAcks, u.InvAcks)
					}
				} else if u.InvAcks < b.InvAcks || u.InvAcks > b.InvAcks+b.Notices {
					t.Errorf("InvAcks transfer violated: unbatched %d outside [batched %d, batched+notices %d]",
						u.InvAcks, b.InvAcks, b.InvAcks+b.Notices)
				}
			})
		}
	}
}

// TestConformance sweeps scenarios × protocols × topologies × communication
// paths (batched and unbatched). In -short mode only the uniform topology
// runs (the CI race job uses this subset); both comm paths stay covered
// there — the batched path is the default and the unbatched path must not
// rot.
func TestConformance(t *testing.T) {
	scenarios := []scenario{
		{"jacobi", jacobiOracle, jacobiRun},
		{"mapcolor", mapcolorOracle, mapcolorRun},
		{"hotspot", hotspotOracle, hotspotRun},
		{"prodcons", prodconsOracle, prodconsRun},
	}
	commPaths := []struct {
		name    string
		batched bool
	}{
		{"batched", true},
		{"unbatched", false},
	}
	reg, _ := NewRegistry()
	protocols := reg.Names()
	for _, topo := range conformanceTopologies(testing.Short()) {
		for _, comm := range commPaths {
			for _, proto := range protocols {
				for _, sc := range scenarios {
					name := fmt.Sprintf("%s/%s/%s/%s", topo.name, comm.name, proto, sc.name)
					t.Run(name, func(t *testing.T) {
						rt, d := conformanceHarness(t, topo.make(), proto, comm.batched)
						got := sc.run(t, rt, d)
						want := sc.oracle()
						if len(got) != len(want) {
							t.Fatalf("read %d values, oracle has %d", len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("value %d = %d, oracle says %d (full: got %v want %v)",
									i, got[i], want[i], got, want)
							}
						}
					})
				}
			}
		}
	}
}
