package protocols

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// --- li_hudak ---------------------------------------------------------

func TestLiHudakReadReplicates(t *testing.T) {
	rt, d, ids := harness(4, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	for n := 1; n < 4; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("r%d", node), func(th *pm2.Thread) {
			d.ReadUint64(th, base)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// All nodes now hold a read copy; the owner was downgraded to read.
	for n := 0; n < 4; n++ {
		if got := d.Space(n).AccessOf(pg); got != memory.ReadOnly {
			t.Errorf("node %d access = %v, want r--", n, got)
		}
	}
	e := d.Entry(0, pg)
	if !e.Owner {
		t.Error("node 0 lost ownership on read serving")
	}
	for n := 1; n < 4; n++ {
		if !e.InCopyset(n) {
			t.Errorf("node %d missing from copyset", n)
		}
	}
}

func TestLiHudakWriteInvalidatesAndTransfersOwnership(t *testing.T) {
	rt, d, ids := harness(4, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	// Phase 1: everyone reads.
	for n := 1; n < 4; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("r%d", node), func(th *pm2.Thread) {
			d.ReadUint64(th, base)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Phase 2: node 2 writes.
	rt.CreateThread(2, "writer", func(th *pm2.Thread) {
		d.WriteUint64(th, base, 99)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := d.Space(2).AccessOf(pg); got != memory.ReadWrite {
		t.Errorf("writer access = %v, want rw-", got)
	}
	if !d.Entry(2, pg).Owner {
		t.Error("ownership did not transfer to the writer")
	}
	for _, n := range []int{0, 1, 3} {
		if got := d.Space(n).AccessOf(pg); got != memory.NoAccess {
			t.Errorf("node %d still has access %v after invalidation", n, got)
		}
		if d.Entry(n, pg).Owner {
			t.Errorf("node %d still believes it owns the page", n)
		}
	}
	// Phase 3: node 0 reads back the new value through the prob-owner chain.
	var got uint64
	rt.CreateThread(0, "verify", func(th *pm2.Thread) {
		got = d.ReadUint64(th, base)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("read %d after remote write, want 99", got)
	}
}

func TestLiHudakProbOwnerChain(t *testing.T) {
	// Ownership hops 0 -> 1 -> 2 -> 3; then node 0, whose hint still says
	// 1, must reach the true owner by forwarding.
	rt, d, ids := harness(4, madeleine.SISCISCI, 3)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(0, 8, nil)
	for n := 1; n < 4; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("w%d", node), func(th *pm2.Thread) {
			th.Advance(sim.Duration(node) * 10 * sim.Millisecond) // serialize the hops
			d.WriteUint64(th, base, uint64(node))
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	rt.CreateThread(0, "verify", func(th *pm2.Thread) {
		got = d.ReadUint64(th, base)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("chain read = %d, want 3 (last writer)", got)
	}
}

func TestLiHudakConcurrentFaultsCoalesce(t *testing.T) {
	// 8 threads on one node fault on the same remote page; exactly one
	// page transfer must happen.
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.LiHudak)
	base := d.MustMalloc(1, 8, nil)
	for i := 0; i < 8; i++ {
		rt.CreateThread(0, fmt.Sprintf("r%d", i), func(th *pm2.Thread) {
			d.ReadUint64(th, base)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().PageSends; got != 1 {
		t.Fatalf("page sends = %d, want 1 (coalesced)", got)
	}
	if got := d.Stats().ReadFaults; got != 8 {
		t.Fatalf("read faults = %d, want 8", got)
	}
}

// --- migrate_thread ---------------------------------------------------

func TestMigrateThreadMovesThreadNotPage(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.MigrateThread)
	base := d.MustMalloc(1, 8, nil)
	var endNode int
	th := rt.CreateThread(0, "worker", func(th *pm2.Thread) {
		d.WriteUint64(th, base, 5)
		endNode = th.Node()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if endNode != 1 {
		t.Fatalf("thread ended on node %d, want 1 (the data's owner)", endNode)
	}
	if th.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", th.Migrations())
	}
	if d.Stats().PageSends != 0 {
		t.Fatal("migrate_thread transferred a page")
	}
	pg := d.Space(0).PageOf(base)
	if d.Space(0).AccessOf(pg) != memory.NoAccess {
		t.Fatal("page replicated under migrate_thread")
	}
}

func TestMigrateThreadPilesThreadsOnOwner(t *testing.T) {
	// All threads accessing node 0's data end up on node 0 — the load
	// imbalance Figure 4 blames for migrate_thread's TSP performance.
	rt, d, ids := harness(4, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.MigrateThread)
	base := d.MustMalloc(0, 8, nil)
	locations := make([]int, 4)
	for n := 1; n < 4; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("w%d", node), func(th *pm2.Thread) {
			d.WriteUint64(th, base, uint64(node))
			locations[node] = th.Node()
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for n := 1; n < 4; n++ {
		if locations[n] != 0 {
			t.Errorf("thread from node %d ended on %d, want 0", n, locations[n])
		}
	}
	if rt.Node(0).MigrationsIn != 3 {
		t.Errorf("node 0 received %d migrations, want 3", rt.Node(0).MigrationsIn)
	}
}

// --- erc_sw -----------------------------------------------------------

func TestErcSWDefersInvalidationToRelease(t *testing.T) {
	rt, d, ids := harness(3, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.ErcSW)
	base := d.MustMalloc(0, 8, nil)
	pg := d.Space(0).PageOf(base)
	lock := d.NewLock(0)

	// Node 2 reads the initial value and keeps a copy.
	rt.CreateThread(2, "reader", func(th *pm2.Thread) { d.ReadUint64(th, base) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	// Node 1 writes inside a critical section. Before the release, the
	// reader's copy must still be present (RC permits staleness); after
	// the release it must be gone.
	var beforeRelease memory.Access
	rt.CreateThread(1, "writer", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		d.WriteUint64(th, base, 42)
		beforeRelease = d.Space(2).AccessOf(pg)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if beforeRelease == memory.NoAccess {
		t.Error("erc_sw invalidated the reader before the release (that's eager-at-write, not RC)")
	}
	if got := d.Space(2).AccessOf(pg); got != memory.NoAccess {
		t.Errorf("reader access after release = %v, want invalidated", got)
	}
	// And the reader refetches the new value.
	var got uint64
	rt.CreateThread(2, "reader2", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		got = d.ReadUint64(th, base)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("reader saw %d after acquire, want 42", got)
	}
}

// --- hbrc_mw ----------------------------------------------------------

func TestHbrcMWMultipleWritersMerge(t *testing.T) {
	// Two nodes write disjoint words of the same page under different
	// locks (MRMW: no ownership ping-pong); after both release, the home
	// holds both modifications.
	rt, d, ids := harness(3, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.HbrcMW)
	base := d.MustMalloc(0, core.PageSize, nil)
	lockA := d.NewLock(0)
	lockB := d.NewLock(0)
	rt.CreateThread(1, "w1", func(th *pm2.Thread) {
		d.Acquire(th, lockA)
		d.WriteUint64(th, base, 111)
		d.Release(th, lockA)
	})
	rt.CreateThread(2, "w2", func(th *pm2.Thread) {
		d.Acquire(th, lockB)
		d.WriteUint64(th, base+512, 222)
		d.Release(th, lockB)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var a, b uint64
	rt.CreateThread(0, "verify", func(th *pm2.Thread) {
		a = d.ReadUint64(th, base)
		b = d.ReadUint64(th, base+512)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if a != 111 || b != 222 {
		t.Fatalf("home merged (%d,%d), want (111,222)", a, b)
	}
	if d.Stats().DiffsSent == 0 {
		t.Fatal("hbrc_mw sent no diffs")
	}
}

func TestHbrcMWDiffBytesSmall(t *testing.T) {
	// A single-word write must ship a diff, not the whole 4 KiB page.
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.HbrcMW)
	base := d.MustMalloc(0, core.PageSize, nil)
	lock := d.NewLock(0)
	rt.CreateThread(1, "w", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		d.WriteUint64(th, base, 7)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.DiffsSent != 1 {
		t.Fatalf("diffs sent = %d, want 1", st.DiffsSent)
	}
	if st.DiffBytes > 256 {
		t.Fatalf("diff bytes = %d for an 8-byte write; twin diffing broken", st.DiffBytes)
	}
}

func TestHbrcMWHomeWritesPropagate(t *testing.T) {
	// Writes made on the home node itself must reach other nodes after a
	// release (this is why hbrc write-protects home pages).
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.HbrcMW)
	base := d.MustMalloc(0, 8, nil)
	lock := d.NewLock(0)
	// Node 1 caches the page first.
	rt.CreateThread(1, "prime", func(th *pm2.Thread) { d.ReadUint64(th, base) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	rt.CreateThread(0, "homewriter", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		d.WriteUint64(th, base, 77)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	rt.CreateThread(1, "verify", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		got = d.ReadUint64(th, base)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("remote node saw %d after home write + release, want 77", got)
	}
}

func TestHbrcMWThirdPartyFlushOnInvalidate(t *testing.T) {
	// Writer A releases; home invalidates writer B, who must flush its own
	// pending diff before dropping — the exact dance Section 3.2 describes.
	rt, d, ids := harness(3, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.HbrcMW)
	base := d.MustMalloc(0, core.PageSize, nil)
	lockA := d.NewLock(0)
	rt.CreateThread(2, "writerB", func(th *pm2.Thread) {
		// B writes without releasing yet.
		d.WriteUint64(th, base+1024, 222)
		// Wait long enough for A's release to invalidate us.
		th.Advance(50 * sim.Millisecond)
	})
	rt.CreateThread(1, "writerA", func(th *pm2.Thread) {
		th.Advance(5 * sim.Millisecond) // let B write first
		d.Acquire(th, lockA)
		d.WriteUint64(th, base, 111)
		d.Release(th, lockA)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var a, b uint64
	rt.CreateThread(0, "verify", func(th *pm2.Thread) {
		a = d.ReadUint64(th, base)
		b = d.ReadUint64(th, base+1024)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if a != 111 {
		t.Errorf("A's released write lost: %d", a)
	}
	if b != 222 {
		t.Errorf("B's flushed-on-invalidation write lost: %d", b)
	}
}

// --- hybrid and adaptive ---------------------------------------------

func TestHybridReadReplicatesWriteMigrates(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.Hybrid)
	base := d.MustMalloc(1, 8, nil)
	pg := d.Space(0).PageOf(base)
	var nodeAfterRead, nodeAfterWrite int
	rt.CreateThread(0, "worker", func(th *pm2.Thread) {
		d.ReadUint64(th, base) // replicates: thread stays
		nodeAfterRead = th.Node()
		d.WriteUint64(th, base, 9) // migrates to the owner
		nodeAfterWrite = th.Node()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if nodeAfterRead != 0 {
		t.Errorf("thread moved on read (node %d), hybrid should replicate", nodeAfterRead)
	}
	if nodeAfterWrite != 1 {
		t.Errorf("thread on node %d after write, hybrid should migrate to owner", nodeAfterWrite)
	}
	// The read copy on node 0 must have been invalidated by the write.
	if got := d.Space(0).AccessOf(pg); got != memory.NoAccess {
		t.Errorf("stale read copy survived the write: %v", got)
	}
	var got uint64
	rt.CreateThread(0, "verify", func(th *pm2.Thread) { got = d.ReadUint64(th, base) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("read %d, want 9", got)
	}
}

func TestAdaptiveSwitchesToMigrationOnHotPage(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.Adaptive)
	base := d.MustMalloc(1, 8, nil)
	var migrated bool
	th := rt.CreateThread(0, "worker", func(th *pm2.Thread) {
		// Ping-pong: each write pulls the page here, and a remote
		// reader pulls it back, so every write faults again.
		for i := 0; i < 10; i++ {
			d.WriteUint64(th, base, uint64(i))
			home := th.Node()
			rt.CreateThread(1, fmt.Sprintf("puller%d", i), func(p *pm2.Thread) {
				d.WriteUint64(p, base, 1000+uint64(i))
			})
			th.Advance(10 * sim.Millisecond) // let the puller take the page
			_ = home
			if th.Node() != 0 {
				migrated = true
				return
			}
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !migrated && th.Migrations() == 0 {
		t.Fatal("adaptive never switched to thread migration under ping-pong writes")
	}
}

// TestAdaptiveTunedPriorStaysOnPagePolicy: the same ping-pong workload, but
// with a tuned page-policy prior installed (an offline what-if sweep decided
// the page policy wins this workload) — the no-evidence fallback must stay
// on page migration instead of speculatively sending the thread away.
func TestAdaptiveTunedPriorStaysOnPagePolicy(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.Adaptive)
	d.SetTunedPagePrior(true)
	base := d.MustMalloc(1, 8, nil)
	th := rt.CreateThread(0, "worker", func(th *pm2.Thread) {
		for i := 0; i < 10; i++ {
			d.WriteUint64(th, base, uint64(i))
			rt.CreateThread(1, fmt.Sprintf("puller%d", i), func(p *pm2.Thread) {
				d.WriteUint64(p, base, 1000+uint64(i))
			})
			th.Advance(10 * sim.Millisecond)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Migrations() != 0 {
		t.Fatalf("thread migrated %d times despite the tuned page-policy prior", th.Migrations())
	}
}

// --- java_ic / java_pf ------------------------------------------------

func TestJavaICPaysCheckOnEveryAccess(t *testing.T) {
	rt, d, ids := harness(1, madeleine.SISCISCI, 1)
	d.SetDefaultProtocol(ids.JavaIC)
	obj := d.MustNewObject(0, 2, ids.JavaIC)
	var took sim.Duration
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		start := th.Now()
		for i := 0; i < 100; i++ {
			d.GetField(th, obj, 0)
		}
		took = th.Now().Sub(start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := 100 * d.Costs().Check
	if took != want {
		t.Fatalf("100 local gets under java_ic took %v, want %v (check cost each)", took, want)
	}
}

func TestJavaPFLocalAccessesFree(t *testing.T) {
	rt, d, ids := harness(1, madeleine.SISCISCI, 1)
	d.SetDefaultProtocol(ids.JavaPF)
	obj := d.MustNewObject(0, 2, ids.JavaPF)
	var took sim.Duration
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		start := th.Now()
		for i := 0; i < 100; i++ {
			d.GetField(th, obj, 0)
		}
		took = th.Now().Sub(start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 0 {
		t.Fatalf("100 local gets under java_pf took %v, want 0 (no checks, no faults)", took)
	}
}

func TestJavaPFRemoteAccessFaults(t *testing.T) {
	rt, d, ids := harness(2, madeleine.SISCISCI, 1)
	d.SetDefaultProtocol(ids.JavaPF)
	obj := d.MustNewObject(1, 2, ids.JavaPF)
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		d.GetField(th, obj, 0)
		d.GetField(th, obj, 1) // second access: cached, no new fault
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.ReadFaults+st.WriteFaults != 1 {
		t.Fatalf("faults = %d, want exactly 1", st.ReadFaults+st.WriteFaults)
	}
}

func TestJavaICNoPageFaults(t *testing.T) {
	rt, d, ids := harness(2, madeleine.SISCISCI, 1)
	d.SetDefaultProtocol(ids.JavaIC)
	obj := d.MustNewObject(1, 2, ids.JavaIC)
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		d.GetField(th, obj, 0)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.ReadFaults+st.WriteFaults != 0 {
		t.Fatalf("java_ic raised %d page faults; inline checks must bypass them",
			st.ReadFaults+st.WriteFaults)
	}
	if st.ObjFetches != 1 {
		t.Fatalf("object fetches = %d, want 1", st.ObjFetches)
	}
}

func TestJavaMonitorVisibility(t *testing.T) {
	// JMM: writes inside a monitor are visible to the next thread entering
	// the monitor (flush on entry, transmit on exit).
	for _, ic := range []bool{true, false} {
		rt, d, ids := harness(2, madeleine.SISCISCI, 1)
		id := ids.JavaPF
		if ic {
			id = ids.JavaIC
		}
		d.SetDefaultProtocol(id)
		obj := d.MustNewObject(0, 1, id)
		mon := d.NewLock(0)
		rt.CreateThread(1, "w", func(th *pm2.Thread) {
			d.Acquire(th, mon)
			d.PutField(th, obj, 0, 1234)
			d.Release(th, mon)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		var got uint64
		rt.CreateThread(0, "r", func(th *pm2.Thread) {
			d.Acquire(th, mon)
			got = d.GetField(th, obj, 0)
			d.Release(th, mon)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 1234 {
			t.Fatalf("[ic=%v] monitor visibility broken: got %d", ic, got)
		}
	}
}

// --- cross-protocol properties ----------------------------------------

// protoList enumerates every built-in protocol for sweep tests. The object
// protocols are exercised through the same paged API (they fall back
// gracefully) plus their own object tests above.
func protoList(ids IDs) map[string]core.ProtoID {
	return map[string]core.ProtoID{
		"li_hudak":       ids.LiHudak,
		"migrate_thread": ids.MigrateThread,
		"erc_sw":         ids.ErcSW,
		"hbrc_mw":        ids.HbrcMW,
		"hybrid":         ids.Hybrid,
		"adaptive":       ids.Adaptive,
	}
}

// TestBarrierPhasedExchangeAllProtocols runs a two-phase neighbour exchange:
// each node writes its slot, everyone barriers, each node reads its
// neighbour's slot. Every protocol must deliver the freshly written values.
func TestBarrierPhasedExchangeAllProtocols(t *testing.T) {
	const nodes = 4
	reg, ids := NewRegistry()
	_ = reg
	for name, pid := range protoList(ids) {
		t.Run(name, func(t *testing.T) {
			rt, d, ids2 := harness(nodes, madeleine.BIPMyrinet, 9)
			var id core.ProtoID
			switch name {
			case "li_hudak":
				id = ids2.LiHudak
			case "migrate_thread":
				id = ids2.MigrateThread
			case "erc_sw":
				id = ids2.ErcSW
			case "hbrc_mw":
				id = ids2.HbrcMW
			case "hybrid":
				id = ids2.Hybrid
			case "adaptive":
				id = ids2.Adaptive
			}
			_ = pid
			d.SetDefaultProtocol(id)
			// One page per node so writers do not fight: slot n lives on node n.
			addrs := make([]core.Addr, nodes)
			for n := 0; n < nodes; n++ {
				addrs[n] = d.MustMalloc(n, 8, nil)
			}
			bar := d.NewBarrier(nodes)
			got := make([]uint64, nodes)
			for n := 0; n < nodes; n++ {
				node := n
				rt.CreateThread(node, fmt.Sprintf("p%d", node), func(th *pm2.Thread) {
					d.WriteUint64(th, addrs[node], uint64(100+node))
					d.Barrier(th, bar)
					got[node] = d.ReadUint64(th, addrs[(node+1)%nodes])
				})
			}
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			for n := 0; n < nodes; n++ {
				want := uint64(100 + (n+1)%nodes)
				if got[n] != want {
					t.Errorf("node %d read %d from neighbour, want %d", n, got[n], want)
				}
			}
		})
	}
}

// TestRandomProgramMatchesReference runs a random lock-protected read-
// modify-write program on every protocol and compares the final shared state
// with a sequential reference execution.
func TestRandomProgramMatchesReference(t *testing.T) {
	type op struct {
		node int
		slot int
		add  uint64
	}
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes, slots, opsPerNode = 3, 8, 12
		var program [nodes][]op
		for n := 0; n < nodes; n++ {
			for i := 0; i < opsPerNode; i++ {
				program[n] = append(program[n], op{
					node: n,
					slot: rng.Intn(slots),
					add:  uint64(1 + rng.Intn(100)),
				})
			}
		}
		// Sequential reference.
		var ref [slots]uint64
		for n := 0; n < nodes; n++ {
			for _, o := range program[n] {
				ref[o.slot] += o.add
			}
		}
		_, ids := NewRegistry()
		for _, pid := range []core.ProtoID{ids.LiHudak, ids.MigrateThread, ids.ErcSW, ids.HbrcMW, ids.Hybrid} {
			rt, d, _ := harness(nodes, madeleine.SISCISCI, seed)
			d.SetDefaultProtocol(pid)
			base := d.MustMalloc(0, slots*8, nil)
			lock := d.NewLock(0)
			for n := 0; n < nodes; n++ {
				node := n
				rt.CreateThread(node, fmt.Sprintf("p%d", node), func(th *pm2.Thread) {
					for _, o := range program[node] {
						d.Acquire(th, lock)
						a := base + core.Addr(o.slot*8)
						d.WriteUint64(th, a, d.ReadUint64(th, a)+o.add)
						d.Release(th, lock)
					}
				})
			}
			if err := rt.Run(); err != nil {
				return false
			}
			ok := true
			rt.CreateThread(0, "verify", func(th *pm2.Thread) {
				d.Acquire(th, lock)
				for s := 0; s < slots; s++ {
					if d.ReadUint64(th, base+core.Addr(s*8)) != ref[s] {
						ok = false
					}
				}
				d.Release(th, lock)
			})
			if err := rt.Run(); err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(seed int64) bool { return run(seed) }, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicReplay: the same seed and program give bit-identical
// virtual end times and stats.
func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Time, core.Stats) {
		rt, d, ids := harness(4, madeleine.BIPMyrinet, 77)
		d.SetDefaultProtocol(ids.LiHudak)
		base := d.MustMalloc(0, 64, nil)
		lock := d.NewLock(0)
		for n := 0; n < 4; n++ {
			node := n
			rt.CreateThread(node, fmt.Sprintf("p%d", node), func(th *pm2.Thread) {
				for i := 0; i < 20; i++ {
					d.Acquire(th, lock)
					a := base + core.Addr(8*(i%8))
					d.WriteUint64(th, a, d.ReadUint64(th, a)+1)
					d.Release(th, lock)
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Now(), d.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("replay end times differ: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("replay stats differ: %+v vs %+v", s1, s2)
	}
}

// TestProtocolsPerAreaCoexist attaches different protocols to different
// allocations in one application (Section 2.3: "different DSM protocols may
// be associated to different DSM memory areas within the same application").
func TestProtocolsPerAreaCoexist(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 1)
	d.SetDefaultProtocol(ids.LiHudak)
	a := d.MustMalloc(0, 8, &core.Attr{Protocol: ids.LiHudak, Home: 0})
	b := d.MustMalloc(0, 8, &core.Attr{Protocol: ids.HbrcMW, Home: 0})
	c := d.MustMalloc(1, 8, &core.Attr{Protocol: ids.MigrateThread, Home: 1})
	lock := d.NewLock(0)
	var endNode int
	rt.CreateThread(1, "worker", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		d.WriteUint64(th, a, 1) // li_hudak: page migrates here
		d.WriteUint64(th, b, 2) // hbrc: twin + diff at release
		d.Release(th, lock)
		d.WriteUint64(th, c, 3) // migrate_thread... already on owner node 1
		endNode = th.Node()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if endNode != 1 {
		t.Fatalf("worker ended on node %d, want 1", endNode)
	}
	var va, vb, vc uint64
	rt.CreateThread(0, "verify", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		va = d.ReadUint64(th, a)
		vb = d.ReadUint64(th, b)
		d.Release(th, lock)
		vc = d.ReadUint64(th, c) // migrate_thread: this thread hops to node 1
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if va != 1 || vb != 2 || vc != 3 {
		t.Fatalf("per-area protocols broke: got (%d,%d,%d)", va, vb, vc)
	}
}
