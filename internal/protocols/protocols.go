// Package protocols provides the consistency protocols shipped with DSM-PM2
// (the paper's Table 2), plus the hybrid and adaptive protocols Section 2.3
// sketches as library-composed extensions:
//
//	li_hudak        sequential consistency, MRSW, dynamic distributed manager
//	migrate_thread  sequential consistency via thread migration, fixed manager
//	erc_sw          eager release consistency, MRSW, dynamic manager
//	hbrc_mw         home-based release consistency, MRMW, twins and diffs
//	java_ic         Java consistency, inline locality checks
//	java_pf         Java consistency, page-fault access detection
//	hybrid          page replication on read faults, thread migration on writes
//	adaptive        li_hudak that switches to thread migration on hot pages
//
// Every protocol is just the 8 actions of Table 1, composed from the
// protocol library toolbox in internal/core.
package protocols

import "dsmpm2/internal/core"

// IDs collects the protocol identifiers assigned at registration.
type IDs struct {
	LiHudak       core.ProtoID
	MigrateThread core.ProtoID
	ErcSW         core.ProtoID
	HbrcMW        core.ProtoID
	JavaIC        core.ProtoID
	JavaPF        core.ProtoID
	Hybrid        core.ProtoID
	Adaptive      core.ProtoID
	LiFixed       core.ProtoID
	LiCentral     core.ProtoID
	EntryMW       core.ProtoID
}

// Register installs all built-in protocols on a registry and returns their
// ids. Call once per registry, before creating DSM instances from it.
func Register(reg *core.Registry) IDs {
	return IDs{
		LiHudak:       reg.Register("li_hudak", func(d *core.DSM) core.Protocol { return &liHudak{d: d} }),
		MigrateThread: reg.Register("migrate_thread", func(d *core.DSM) core.Protocol { return &migrateThread{d: d} }),
		ErcSW:         reg.Register("erc_sw", func(d *core.DSM) core.Protocol { return newErcSW(d) }),
		HbrcMW:        reg.Register("hbrc_mw", func(d *core.DSM) core.Protocol { return newHbrcMW(d) }),
		JavaIC:        reg.Register("java_ic", func(d *core.DSM) core.Protocol { return newJava(d, true) }),
		JavaPF:        reg.Register("java_pf", func(d *core.DSM) core.Protocol { return newJava(d, false) }),
		Hybrid:        reg.Register("hybrid", func(d *core.DSM) core.Protocol { return &hybrid{d: d} }),
		Adaptive:      reg.Register("adaptive", func(d *core.DSM) core.Protocol { return newAdaptive(d) }),
		LiFixed:       reg.Register("li_fixed", func(d *core.DSM) core.Protocol { return newLiFixed(d) }),
		LiCentral:     reg.Register("li_central", func(d *core.DSM) core.Protocol { return newLiCentral(d) }),
		EntryMW:       reg.Register("entry_mw", func(d *core.DSM) core.Protocol { return newEntryMW(d) }),
	}
}

// NewRegistry returns a registry pre-loaded with the built-in protocols and
// their ids.
func NewRegistry() (*core.Registry, IDs) {
	reg := core.NewRegistry()
	ids := Register(reg)
	return reg, ids
}
