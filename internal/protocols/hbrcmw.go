package protocols

import (
	"sort"

	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// hbrcMW implements home-based release consistency with multiple writers
// (Section 3.2), using the classical twinning technique of Keleher et al.:
// each page has a home node holding the reference copy; writers fetch a copy,
// twin it before the first write, and at release send the diff between the
// current copy and the twin to the home. The home applies the diffs and
// then invalidates third-party copies; an invalidated node that has pending
// modifications of its own flushes its diff back to the home before dropping
// the page (exactly the paper's description).
//
// Home-node writes are detected the same way as everyone else's: pages are
// write-protected at their home between critical sections (see InitPage), so
// the first home-side write faults, twins locally and marks the page dirty.
type hbrcMW struct {
	d     *core.DSM
	dirty []map[core.Page]bool
}

func newHbrcMW(d *core.DSM) *hbrcMW {
	p := &hbrcMW{d: d}
	for i := 0; i < d.Runtime().Nodes(); i++ {
		p.dirty = append(p.dirty, make(map[core.Page]bool))
	}
	return p
}

// Name implements core.Protocol.
func (p *hbrcMW) Name() string { return "hbrc_mw" }

// InitPage write-protects the page on its home so home writes are tracked.
func (p *hbrcMW) InitPage(pg core.Page, home int) {
	p.d.Space(home).SetAccess(pg, memory.ReadOnly)
}

// ReadFaultHandler fetches a read-only copy from the home node. At the home
// itself a read never faults (the home always holds the reference copy).
func (p *hbrcMW) ReadFaultHandler(f *core.Fault) { core.FetchPage(f, false) }

// WriteFaultHandler enables local writing: if the node already holds a copy
// (including the home's reference copy) it is twinned in place and upgraded
// to read-write; otherwise a copy is fetched from the home first. Either
// way the page is marked dirty for the next release.
func (p *hbrcMW) WriteFaultHandler(f *core.Fault) {
	e, t := f.Entry, f.Thread
	space := p.d.Space(f.Node)
	e.Lock(t)
	if space.AccessOf(f.Page) >= memory.ReadOnly {
		core.EnsureTwin(p.d, f.Node, e)
		space.SetAccess(f.Page, memory.ReadWrite)
		p.dirty[f.Node][f.Page] = true
		f.KeepEntryLocked()
		return
	}
	e.Unlock(t)
	core.FetchPage(f, true) // returns with the entry lock held
	if space.AccessOf(f.Page) == memory.ReadWrite {
		core.EnsureTwin(p.d, f.Node, e)
		p.dirty[f.Node][f.Page] = true
	}
}

// ReadServer runs at the home: add the requester to the copyset and ship a
// read-only copy. The home never forwards — the manager is fixed.
func (p *hbrcMW) ReadServer(r *core.Request) {
	p.serveCopy(r, memory.ReadOnly)
}

// WriteServer runs at the home: multiple writers are allowed, so the home
// ships a read-write copy without transferring ownership and remembers the
// writer in the copyset.
func (p *hbrcMW) WriteServer(r *core.Request) {
	p.serveCopy(r, memory.ReadWrite)
}

func (p *hbrcMW) serveCopy(r *core.Request, access memory.Access) {
	e := p.d.Entry(r.Node, r.Page)
	e.Lock(r.Thread)
	if r.Node != e.Home {
		panic("hbrc_mw: page request did not reach the home node")
	}
	e.AddCopyset(r.From)
	core.SendPage(r, e, r.From, access, false, core.NodeSet{})
	e.Unlock(r.Thread)
}

// twinBeforeInstall is not needed: the writer twins after installation,
// before its first write, under the entry lock held through the fault path.

// InvalidateServer handles the home's third-party invalidation: if this node
// has pending modifications (a twin with changes), their diff is flushed to
// the home before the copy is dropped.
func (p *hbrcMW) InvalidateServer(iv *core.Invalidate) {
	e := p.d.Entry(iv.Node, iv.Page)
	e.Lock(iv.Thread)
	diff := core.TwinDiff(p.d, iv.Node, e)
	p.d.Space(iv.Node).Drop(iv.Page)
	delete(p.dirty[iv.Node], iv.Page)
	e.Unlock(iv.Thread)
	if diff != nil {
		// Fire-and-forget: the home is currently blocked waiting for
		// this very acknowledgement, so waiting here would deadlock;
		// the diff message is ordered before the ack on the same
		// channel pair anyway.
		core.SendDiffsHome(p.d, iv.Thread, e.Home, []*memory.Diff{diff}, false)
	}
}

// ReceivePageServer installs the arriving copy.
func (p *hbrcMW) ReceivePageServer(pm *core.PageMsg) { core.InstallPage(pm) }

// LockAcquire is a no-op: the home eagerly invalidated stale copies when the
// previous releaser's diffs arrived, so an acquirer re-faults and refetches
// fresh copies on demand.
func (p *hbrcMW) LockAcquire(*core.SyncEvent) {}

// LockRelease computes the diffs of every page written since the last
// release, sends them to the home nodes (blocking until applied), and
// write-protects the local copies again so later writes re-twin.
//
// Everything leaves through one outbox: the diffs bound for one home and the
// invalidations of home-side writes coalesce into a single envelope per
// destination, flushed in canonical order with one wait at the end. At a
// barrier with batching enabled no invalidation travels at all — the dirty
// pages become write notices piggybacked on the barrier, and every
// participant drops its stale copies when the barrier releases (the
// TreadMarks-style aggregation the batched path exists for).
func (p *hbrcMW) LockRelease(s *core.SyncEvent) {
	node := s.Node
	pages := make([]core.Page, 0, len(p.dirty[node]))
	for pg := range p.dirty[node] {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	b := p.d.NewBatch(s.Thread)
	useNotices := s.Barrier && p.d.NoticesUsable(s.Lock)
	for _, pg := range pages {
		delete(p.dirty[node], pg)
		e := p.d.Entry(node, pg)
		e.Lock(s.Thread)
		diff := core.TwinDiff(p.d, node, e)
		p.d.Space(node).SetAccess(pg, memory.ReadOnly)
		if diff == nil {
			e.Unlock(s.Thread)
			continue
		}
		if e.Home == node {
			// Writes at the home are already in the reference copy; the
			// remote copies must go — eagerly, or via a barrier notice.
			// No copies, no notice: the copyset stays in place (a late
			// fetch may still join it) and the barrier prunes it.
			if useNotices {
				empty := e.Copyset.Empty()
				e.Unlock(s.Thread)
				if !empty {
					p.d.QueueWriteNotice(s.Thread, s.Lock, pg)
				}
				continue
			}
			cs := e.TakeCopyset()
			e.Unlock(s.Thread)
			cs.ForEach(func(n int) { b.Invalidate(n, pg, -1) })
			continue
		}
		e.Unlock(s.Thread)
		b.Diff(e.Home, diff, useNotices)
		if useNotices {
			p.d.QueueWriteNotice(s.Thread, s.Lock, pg)
		}
	}
	b.Flush(true)
}

// DiffServer runs at the home: apply the writer's diffs to the reference
// copy, then invalidate every other copy — all pages' invalidations through
// one outbox, one envelope per holder; invalidated writers flush their own
// diffs back (handled by InvalidateServer above). Noticed diffs skip the
// eager invalidation entirely: the writer queued barrier write notices and
// the stale copies drop themselves at the barrier.
func (p *hbrcMW) DiffServer(dm *core.DiffMsg) {
	core.ApplyDiffs(dm)
	if dm.Noticed {
		return
	}
	b := p.d.NewBatch(dm.Thread)
	for _, df := range dm.Diffs {
		e := p.d.Entry(dm.Node, df.Page)
		e.Lock(dm.Thread)
		cs := e.TakeCopyset()
		cs.ForEach(func(n int) {
			if n == dm.From {
				e.AddCopyset(n) // the sender keeps its copy
			} else {
				b.Invalidate(n, df.Page, -1)
			}
		})
		e.Unlock(dm.Thread)
	}
	b.Flush(true)
}
