package protocols

import (
	"sort"

	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// ercSW implements eager release consistency with an MRSW protocol
// (Section 3.2): page replication on read faults and page-plus-ownership
// migration on write faults, using the same dynamic distributed manager
// scheme as li_hudak — but copies are not invalidated when the write
// happens. Readers may keep (stale) copies for the duration of the writer's
// critical section; "pages in the copyset get invalidated on lock release",
// eagerly and with acknowledgements, which is what makes the release a
// release.
type ercSW struct {
	d *core.DSM
	// dirty tracks, per node, the pages written since the last release
	// (the write fault marks them). Only the owner invalidates.
	dirty []map[core.Page]bool
}

func newErcSW(d *core.DSM) *ercSW {
	p := &ercSW{d: d}
	for i := 0; i < d.Runtime().Nodes(); i++ {
		p.dirty = append(p.dirty, make(map[core.Page]bool))
	}
	return p
}

// Name implements core.Protocol.
func (p *ercSW) Name() string { return "erc_sw" }

// ReadFaultHandler brings a read copy from the owner.
func (p *ercSW) ReadFaultHandler(f *core.Fault) { core.FetchPage(f, false) }

// WriteFaultHandler brings the page with ownership and marks it dirty; the
// copyset it arrives with is invalidated at the next release.
func (p *ercSW) WriteFaultHandler(f *core.Fault) {
	core.FetchPage(f, true)
	// FetchPage returns with the entry lock held.
	p.dirty[f.Node][f.Page] = true
}

// ReadServer grants a read copy, exactly like li_hudak.
func (p *ercSW) ReadServer(r *core.Request) {
	e, owner := core.ServeWhenOwner(r)
	if !owner {
		core.ForwardRequest(r, e)
		return
	}
	e.AddCopyset(r.From)
	p.d.Space(r.Node).SetAccess(r.Page, memory.ReadOnly)
	core.SendPage(r, e, r.From, memory.ReadOnly, false, core.NodeSet{})
	e.Unlock(r.Thread)
}

// WriteServer transfers the page, write rights and ownership — and, unlike
// li_hudak, the copyset travels with the ownership instead of being
// invalidated: release consistency defers the invalidations to the release.
// The old owner keeps a read copy and joins the copyset.
func (p *ercSW) WriteServer(r *core.Request) {
	e, owner := core.ServeWhenOwner(r)
	if !owner {
		core.ForwardRequest(r, e)
		return
	}
	cs := e.TakeCopyset()
	cs.Add(r.Node)    // we stay behind as a reader
	cs.Remove(r.From) // the requester must not appear in its own copyset
	core.SendPage(r, e, r.From, memory.ReadWrite, true, cs)
	e.Owner = false
	e.ProbOwner = r.From
	p.d.Space(r.Node).SetAccess(r.Page, memory.ReadOnly)
	e.Unlock(r.Thread)
}

// InvalidateServer drops the local copy.
func (p *ercSW) InvalidateServer(iv *core.Invalidate) { core.DropCopy(iv) }

// ReceivePageServer installs the arriving copy (with its copyset, when
// ownership travels).
func (p *ercSW) ReceivePageServer(pm *core.PageMsg) { core.InstallPage(pm) }

// LockAcquire is a no-op: erc_sw propagates eagerly at release.
func (p *ercSW) LockAcquire(*core.SyncEvent) {}

// LockRelease eagerly invalidates the copysets of every page this node wrote
// since the previous release, blocking until all copies are acknowledged
// gone. The invalidations of all written pages queue into one outbox, so a
// holder of several stale copies receives a single envelope covering them
// all and the acknowledgement waits overlap across holders.
func (p *ercSW) LockRelease(s *core.SyncEvent) {
	node := s.Node
	pages := make([]core.Page, 0, len(p.dirty[node]))
	for pg := range p.dirty[node] {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	b := p.d.NewBatch(s.Thread)
	for _, pg := range pages {
		delete(p.dirty[node], pg)
		e := p.d.Entry(node, pg)
		e.Lock(s.Thread)
		if !e.Owner {
			// Ownership moved on before our release: the new owner
			// inherited the copyset and the invalidation duty.
			e.Unlock(s.Thread)
			continue
		}
		cs := e.TakeCopyset()
		e.Unlock(s.Thread)
		cs.ForEach(func(n int) { b.Invalidate(n, pg, -1) })
	}
	b.Flush(true)
}
