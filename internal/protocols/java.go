package protocols

import (
	"sort"

	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// java implements the Java Memory Model consistency of Section 3.3, as
// co-designed with the Hyperion compiling system: a home-based MRMW protocol
// where main memory is the set of home nodes, objects are replicated on
// access, at most one copy of an object exists per node (caches belong to
// nodes, not threads), modifications are recorded on the fly at object-field
// granularity through the put primitive, a thread's cache is flushed on
// monitor entry, and recorded modifications are transmitted to main memory
// on monitor exit.
//
// The two built-in variants differ only in access detection:
//
//   - java_ic (inline checks): every get/put pays an explicit locality
//     check; a miss triggers a direct protocol fetch, bypassing the page
//     fault machinery entirely.
//   - java_pf (page faults): get/put go straight at memory; non-local
//     accesses raise the usual fault and pay the fault-handling cost, but
//     local accesses pay nothing.
//
// Figure 5's result — java_pf outperforming java_ic under intensive use of
// mostly-local objects — falls out of exactly this difference.
type java struct {
	d           *core.DSM
	inlineCheck bool
	dirty       []map[core.Page]bool
}

func newJava(d *core.DSM, inlineCheck bool) *java {
	p := &java{d: d, inlineCheck: inlineCheck}
	for i := 0; i < d.Runtime().Nodes(); i++ {
		p.dirty = append(p.dirty, make(map[core.Page]bool))
	}
	return p
}

// Name implements core.Protocol.
func (p *java) Name() string {
	if p.inlineCheck {
		return "java_ic"
	}
	return "java_pf"
}

// ReadFaultHandler fetches a writable copy from the home (MRMW: every cached
// copy is writable, so a later put does not fault again). Only java_pf ever
// faults; java_ic detects misses before touching memory.
func (p *java) ReadFaultHandler(f *core.Fault) { core.FetchPage(f, true) }

// WriteFaultHandler fetches a writable copy from the home.
func (p *java) WriteFaultHandler(f *core.Fault) { core.FetchPage(f, true) }

// ReadServer runs at the home node and ships a writable copy.
func (p *java) ReadServer(r *core.Request) { p.serveCopy(r) }

// WriteServer runs at the home node and ships a writable copy.
func (p *java) WriteServer(r *core.Request) { p.serveCopy(r) }

func (p *java) serveCopy(r *core.Request) {
	e := p.d.Entry(r.Node, r.Page)
	e.Lock(r.Thread)
	if r.Node != e.Home {
		panic(p.Name() + ": page request did not reach the home node")
	}
	e.AddCopyset(r.From)
	core.SendPage(r, e, r.From, memory.ReadWrite, false, core.NodeSet{})
	e.Unlock(r.Thread)
}

// InvalidateServer drops the local cached copy (flushing any recorded
// modifications home first, so nothing is lost).
func (p *java) InvalidateServer(iv *core.Invalidate) {
	e := p.d.Entry(iv.Node, iv.Page)
	e.Lock(iv.Thread)
	diff := core.TakeRecorded(e)
	p.d.Space(iv.Node).Drop(iv.Page)
	delete(p.dirty[iv.Node], iv.Page)
	e.Unlock(iv.Thread)
	if diff != nil {
		core.SendDiffsHome(p.d, iv.Thread, e.Home, []*memory.Diff{diff}, false)
	}
}

// ReceivePageServer installs the arriving copy.
func (p *java) ReceivePageServer(pm *core.PageMsg) { core.InstallPage(pm) }

// LockAcquire implements the JMM cache flush on monitor entry: every cached
// (non-home) page on the node is dropped, after flushing any not-yet-
// transmitted recorded modifications.
func (p *java) LockAcquire(s *core.SyncEvent) {
	node := s.Node
	byHome := make(map[int][]*memory.Diff)
	for _, pg := range p.d.PagesOn(node) {
		e := p.d.Entry(node, pg)
		if e.Home == node {
			continue
		}
		_, proto, _ := p.d.PageInfo(pg)
		if p.d.RegistryName(proto) != p.Name() {
			continue // cache flush applies to this protocol's pages only
		}
		e.Lock(s.Thread)
		if p.d.Space(node).Frame(pg) != nil {
			if diff := core.TakeRecorded(e); diff != nil {
				byHome[e.Home] = append(byHome[e.Home], diff)
			}
			p.d.Space(node).Drop(pg)
		}
		delete(p.dirty[node], pg)
		e.Unlock(s.Thread)
	}
	// One envelope per home, waits overlapped across homes.
	core.SendDiffsBatched(p.d, s.Thread, byHome, false, true)
}

// LockRelease transmits the modifications recorded since the last release to
// the home nodes (the Hyperion run-time's main-memory update on monitor
// exit), blocking until they are applied.
func (p *java) LockRelease(s *core.SyncEvent) {
	node := s.Node
	pages := make([]core.Page, 0, len(p.dirty[node]))
	for pg := range p.dirty[node] {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	byHome := make(map[int][]*memory.Diff)
	for _, pg := range pages {
		delete(p.dirty[node], pg)
		e := p.d.Entry(node, pg)
		e.Lock(s.Thread)
		diff := core.TakeRecorded(e)
		e.Unlock(s.Thread)
		if diff == nil {
			continue
		}
		byHome[e.Home] = append(byHome[e.Home], diff)
	}
	core.SendDiffsBatched(p.d, s.Thread, byHome, false, true)
}

// DiffServer applies arriving modifications to the reference copy at the
// home. No invalidations follow: acquirers flush their own caches.
func (p *java) DiffServer(dm *core.DiffMsg) { core.ApplyDiffs(dm) }

// Get implements the get access primitive.
func (p *java) Get(a *core.ObjAccess) {
	t, node := a.Thread, a.Thread.Node()
	space := p.d.Space(node)
	pg := space.PageOf(a.Addr)
	if p.inlineCheck {
		// Explicit locality check on every access.
		t.Advance(p.d.Costs().Check)
		p.ensureLocal(a, pg)
		if err := space.Read(a.Addr, a.Buf); err != nil {
			panic("java_ic: read failed after fetch: " + err.Error())
		}
		return
	}
	// Page-fault detection: local hits cost nothing extra.
	p.d.Access(t, a.Addr, a.Buf, false)
}

// Put implements the put access primitive, recording the modification at
// field granularity.
func (p *java) Put(a *core.ObjAccess) {
	t, node := a.Thread, a.Thread.Node()
	space := p.d.Space(node)
	pg := space.PageOf(a.Addr)
	if p.inlineCheck {
		t.Advance(p.d.Costs().Check)
		p.ensureLocal(a, pg)
		if err := space.Write(a.Addr, a.Buf); err != nil {
			panic("java_ic: write failed after fetch: " + err.Error())
		}
	} else {
		p.d.Access(t, a.Addr, a.Buf, true)
	}
	e := p.d.Entry(node, pg)
	if e.Home == node {
		return // the reference copy is updated in place
	}
	e.Lock(t)
	core.RecordPut(p.d, e, a.Addr, a.Buf)
	p.dirty[node][pg] = true
	e.Unlock(t)
}

// ensureLocal brings the page into the local cache if absent (java_ic's miss
// path: a direct protocol fetch that bypasses the fault machinery and its
// 11us detection cost).
func (p *java) ensureLocal(a *core.ObjAccess, pg core.Page) {
	node := a.Thread.Node()
	if p.d.Space(node).AccessOf(pg).Allows(true) {
		return
	}
	p.d.CountObjFetch(node)
	f := &core.Fault{
		DSM:    p.d,
		Thread: a.Thread,
		Node:   node,
		Addr:   a.Addr,
		Page:   pg,
		Write:  a.Write,
		Entry:  p.d.Entry(node, pg),
	}
	core.FetchPage(f, true)
	// FetchPage hands the entry lock back flagged for the core's fault
	// path; the object path releases it directly.
	f.Entry.Unlock(a.Thread)
}
