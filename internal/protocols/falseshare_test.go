package protocols

import (
	"fmt"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/pm2"
	"dsmpm2/internal/sim"
)

// falseShareRun has every node increment its own counter — all counters on
// the SAME page — under per-node locks. Single-writer protocols ping-pong
// the page between the writers; multiple-writer protocols let each node keep
// a writable copy and merge diffs at the home. This is the workload that
// motivates MRMW protocols like hbrc_mw (Section 3.2).
func falseShareRun(t *testing.T, proto core.ProtoID, d *core.DSM, rt *pm2.Runtime, nodes, incr int) sim.Time {
	t.Helper()
	d.SetDefaultProtocol(proto)
	base := d.MustMalloc(0, core.PageSize, nil)
	locks := make([]int, nodes)
	for n := range locks {
		locks[n] = d.NewLock(0)
	}
	for n := 0; n < nodes; n++ {
		node := n
		addr := base + core.Addr(64*node) // own slot, same page
		rt.CreateThread(node, fmt.Sprintf("w%d", node), func(th *pm2.Thread) {
			for i := 0; i < incr; i++ {
				d.Acquire(th, locks[node])
				d.WriteUint64(th, addr, d.ReadUint64(th, addr)+1)
				d.Release(th, locks[node])
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Verify all counters via a reader that synchronizes with every lock.
	ok := true
	rt.CreateThread(0, "verify", func(th *pm2.Thread) {
		for n := 0; n < nodes; n++ {
			d.Acquire(th, locks[n])
			if got := d.ReadUint64(th, base+core.Addr(64*n)); got != uint64(incr) {
				t.Errorf("slot %d = %d, want %d", n, got, incr)
				ok = false
			}
			d.Release(th, locks[n])
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.FailNow()
	}
	return rt.Now()
}

func TestFalseSharingMRMWBeatsMRSW(t *testing.T) {
	const nodes, incr = 4, 12
	rtH, dH, idsH := harness(nodes, madeleine.BIPMyrinet, 31)
	hbrc := falseShareRun(t, idsH.HbrcMW, dH, rtH, nodes, incr)
	rtL, dL, idsL := harness(nodes, madeleine.BIPMyrinet, 31)
	li := falseShareRun(t, idsL.LiHudak, dL, rtL, nodes, incr)
	if hbrc >= li {
		t.Fatalf("false sharing: hbrc_mw (%v) not faster than li_hudak (%v)", hbrc, li)
	}
	t.Logf("false sharing x%d increments: hbrc_mw=%v li_hudak=%v (%.1fx)",
		incr, hbrc, li, float64(li)/float64(hbrc))
}

func TestFalseSharingPageTrafficComparison(t *testing.T) {
	const nodes, incr = 3, 10
	traffic := func(pick func(IDs) core.ProtoID) int64 {
		rt, d, ids := harness(nodes, madeleine.BIPMyrinet, 5)
		falseShareRun(t, pick(ids), d, rt, nodes, incr)
		return d.Stats().PageBytes
	}
	hbrc := traffic(func(i IDs) core.ProtoID { return i.HbrcMW })
	li := traffic(func(i IDs) core.ProtoID { return i.LiHudak })
	if hbrc >= li {
		t.Fatalf("hbrc_mw page bytes (%d) not below li_hudak's (%d): diffs should replace page ping-pong",
			hbrc, li)
	}
}
