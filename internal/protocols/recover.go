package protocols

import "dsmpm2/internal/core"

// core.Recoverable implementations for the built-in protocols that keep
// protocol-private per-node state: when a node fail-stops, its dirty-page
// sets and fault counters die with it, and a restarted incarnation must
// start clean — a stale dirty mark would make the first release sweep pages
// the new incarnation never wrote.

// OnNodeCrash discards the crashed node's dirty set.
func (p *hbrcMW) OnNodeCrash(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeRestart starts the restarted node with a clean dirty set.
func (p *hbrcMW) OnNodeRestart(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeCrash discards the crashed node's dirty set.
func (p *java) OnNodeCrash(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeRestart starts the restarted node with a clean dirty set.
func (p *java) OnNodeRestart(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeCrash discards the crashed node's dirty set.
func (p *entryMW) OnNodeCrash(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeRestart starts the restarted node with a clean dirty set.
func (p *entryMW) OnNodeRestart(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeCrash discards the crashed node's dirty set.
func (p *ercSW) OnNodeCrash(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeRestart starts the restarted node with a clean dirty set.
func (p *ercSW) OnNodeRestart(node int) { p.dirty[node] = make(map[core.Page]bool) }

// OnNodeCrash discards the crashed node's write-fault counters.
func (p *adaptive) OnNodeCrash(node int) { p.writeFaults[node] = make(map[core.Page]int) }

// OnNodeRestart starts the restarted node with fresh write-fault counters.
func (p *adaptive) OnNodeRestart(node int) { p.writeFaults[node] = make(map[core.Page]int) }
