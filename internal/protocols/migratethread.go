package protocols

import "dsmpm2/internal/core"

// migrateThread implements sequential consistency with thread migration
// (Section 3.1, Figure 3): pages never move or replicate — each page is
// accessible, for read and write, on exactly one node (its fixed owner) —
// and a faulting thread simply migrates to that node and repeats the access.
// The protocol "essentially relies on a single function: the thread
// migration primitive provided by PM2"; its cost profile is Table 4. Its
// efficiency depends entirely on how the shared data is distributed, since
// threads pile up on the nodes owning the data they access (Figure 4).
type migrateThread struct {
	d *core.DSM
}

// Name implements core.Protocol.
func (p *migrateThread) Name() string { return "migrate_thread" }

// ReadFaultHandler migrates the faulting thread to the page's owner.
func (p *migrateThread) ReadFaultHandler(f *core.Fault) { core.MigrateToOwner(f) }

// WriteFaultHandler migrates the faulting thread to the page's owner.
func (p *migrateThread) WriteFaultHandler(f *core.Fault) { core.MigrateToOwner(f) }

// ReadServer is never invoked: no page requests are ever sent.
func (p *migrateThread) ReadServer(*core.Request) {
	panic("migrate_thread: unexpected page request")
}

// WriteServer is never invoked: no page requests are ever sent.
func (p *migrateThread) WriteServer(*core.Request) {
	panic("migrate_thread: unexpected page request")
}

// InvalidateServer is never invoked: there are no copies to invalidate.
func (p *migrateThread) InvalidateServer(*core.Invalidate) {
	panic("migrate_thread: unexpected invalidation")
}

// ReceivePageServer is never invoked: pages are never transferred.
func (p *migrateThread) ReceivePageServer(*core.PageMsg) {
	panic("migrate_thread: unexpected page message")
}

// LockAcquire is a no-op.
func (p *migrateThread) LockAcquire(*core.SyncEvent) {}

// LockRelease is a no-op.
func (p *migrateThread) LockRelease(*core.SyncEvent) {}
