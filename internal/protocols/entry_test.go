package protocols

import (
	"fmt"
	"testing"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/memory"
	"dsmpm2/internal/pm2"
)

func TestEntryCounterWithBoundLock(t *testing.T) {
	rt, d, ids := harness(4, madeleine.BIPMyrinet, 11)
	d.SetDefaultProtocol(ids.EntryMW)
	base := d.MustMalloc(0, 8, nil)
	lock := d.NewLock(0)
	d.BindLock(lock, base, 8)
	for n := 0; n < 4; n++ {
		node := n
		rt.CreateThread(node, fmt.Sprintf("w%d", node), func(th *pm2.Thread) {
			for i := 0; i < 10; i++ {
				d.Acquire(th, lock)
				d.WriteUint64(th, base, d.ReadUint64(th, base)+1)
				d.Release(th, lock)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	rt.CreateThread(1, "r", func(th *pm2.Thread) {
		d.Acquire(th, lock)
		got = d.ReadUint64(th, base)
		d.Release(th, lock)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("entry-consistent counter = %d, want 40", got)
	}
}

func TestEntryUnboundLockFallsBackToRC(t *testing.T) {
	// Without BindLock annotations, entry_mw must still be correct for
	// lock-protected programs (it degrades to release consistency).
	runCounter(t, func(i IDs) core.ProtoID { return i.EntryMW }, 3, 8)
}

func TestEntryAcquireOnlyTouchesBoundPages(t *testing.T) {
	// Two areas guarded by two locks: acquiring lock A must not disturb
	// the cached copy of B's area — that is the whole point of entry
	// consistency.
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 3)
	d.SetDefaultProtocol(ids.EntryMW)
	areaA := d.MustMalloc(0, 8, nil)
	areaB := d.MustMalloc(0, core.PageSize, nil) // separate page
	lockA := d.NewLock(0)
	lockB := d.NewLock(0)
	d.BindLock(lockA, areaA, 8)
	d.BindLock(lockB, areaB, core.PageSize)
	pgB := d.Space(0).PageOf(areaB)

	rt.CreateThread(1, "worker", func(th *pm2.Thread) {
		// Cache B's page under its lock.
		d.Acquire(th, lockB)
		d.ReadUint64(th, areaB)
		d.Release(th, lockB)
		if d.Space(1).AccessOf(pgB) == memory.NoAccess {
			t.Error("B's page not cached after its own release")
		}
		// Acquiring A must leave B's cached copy alone.
		d.Acquire(th, lockA)
		if d.Space(1).AccessOf(pgB) == memory.NoAccess {
			t.Error("acquiring lock A dropped pages bound to lock B")
		}
		d.Release(th, lockA)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEntryReleaseFlushesOnlyBoundPages(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 3)
	d.SetDefaultProtocol(ids.EntryMW)
	areaA := d.MustMalloc(0, 8, nil)
	areaB := d.MustMalloc(0, core.PageSize, nil)
	lockA := d.NewLock(0)
	d.BindLock(lockA, areaA, 8)

	rt.CreateThread(1, "worker", func(th *pm2.Thread) {
		// Write both areas, release only A's lock: only A's diff ships.
		d.Acquire(th, lockA)
		d.WriteUint64(th, areaA, 1)
		d.WriteUint64(th, areaB, 2) // unguarded write (program's business)
		before := d.Stats().DiffsSent
		d.Release(th, lockA)
		after := d.Stats().DiffsSent
		if after-before != 1 {
			t.Errorf("release of bound lock shipped %d diffs, want 1 (area A only)", after-before)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEntryLessTrafficThanHbrc(t *testing.T) {
	// A program with two independently-locked areas: entry consistency
	// synchronizes each lock's data only, so it ships no more (and here
	// strictly fewer or equal) diffs+pages than hbrc_mw, which must make
	// all writes visible at every release.
	run := func(pid func(IDs) core.ProtoID, bind bool) (int64, uint64) {
		rt, d, ids := harness(3, madeleine.BIPMyrinet, 9)
		d.SetDefaultProtocol(pid(ids))
		areaA := d.MustMalloc(0, 8, nil)
		areaB := d.MustMalloc(0, core.PageSize, nil)
		lockA := d.NewLock(0)
		lockB := d.NewLock(0)
		if bind {
			d.BindLock(lockA, areaA, 8)
			d.BindLock(lockB, areaB, core.PageSize)
		}
		for n := 1; n < 3; n++ {
			node := n
			rt.CreateThread(node, fmt.Sprintf("w%d", node), func(th *pm2.Thread) {
				for i := 0; i < 6; i++ {
					d.Acquire(th, lockA)
					d.WriteUint64(th, areaA, d.ReadUint64(th, areaA)+1)
					d.Release(th, lockA)
					d.Acquire(th, lockB)
					d.WriteUint64(th, areaB, d.ReadUint64(th, areaB)+1)
					d.Release(th, lockB)
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		var a, b uint64
		rt.CreateThread(0, "r", func(th *pm2.Thread) {
			d.Acquire(th, lockA)
			a = d.ReadUint64(th, areaA)
			d.Release(th, lockA)
			d.Acquire(th, lockB)
			b = d.ReadUint64(th, areaB)
			d.Release(th, lockB)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if a != 12 || b != 12 {
			t.Fatalf("counters = %d,%d; want 12,12", a, b)
		}
		st := d.Stats()
		return st.PageSends + st.DiffsSent, a + b
	}
	entryTraffic, _ := run(func(i IDs) core.ProtoID { return i.EntryMW }, true)
	hbrcTraffic, _ := run(func(i IDs) core.ProtoID { return i.HbrcMW }, false)
	if entryTraffic > hbrcTraffic {
		t.Fatalf("entry consistency traffic (%d) exceeds hbrc_mw (%d)", entryTraffic, hbrcTraffic)
	}
	t.Logf("traffic: entry_mw=%d hbrc_mw=%d (pages+diffs)", entryTraffic, hbrcTraffic)
}

func TestEntryBarrierIsGlobalSync(t *testing.T) {
	rt, d, ids := harness(2, madeleine.BIPMyrinet, 4)
	d.SetDefaultProtocol(ids.EntryMW)
	area := d.MustMalloc(0, 8, nil)
	bar := d.NewBarrier(2)
	var got uint64
	rt.CreateThread(0, "w", func(th *pm2.Thread) {
		d.WriteUint64(th, area, 77)
		d.Barrier(th, bar)
		d.Barrier(th, bar)
	})
	rt.CreateThread(1, "r", func(th *pm2.Thread) {
		d.Barrier(th, bar)
		got = d.ReadUint64(th, area)
		d.Barrier(th, bar)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("barrier did not synchronize unbound data: got %d", got)
	}
}
