package protocols

import (
	"sort"

	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// entryMW implements Midway-style entry consistency, the third weak model
// the paper's generic core was specified to support ("weaker consistency
// models, like release, entry, or scope consistency require that consistency
// actions be taken at synchronization points", Section 2.2).
//
// Shared data is associated with locks through core.BindLock. A page is
// guaranteed consistent only to a thread holding the page's lock:
//
//   - write faults twin the page and mark it dirty (home-based MRMW, as in
//     hbrc_mw);
//   - releasing a lock flushes the diffs of the dirty pages *bound to that
//     lock* to their homes — and nothing else;
//   - acquiring a lock drops the local copies of the pages bound to it, so
//     the holder refetches fresh data on demand — other cached pages are
//     left alone.
//
// Compared with release consistency, which must make *all* of a releaser's
// writes visible to the next acquirer, entry consistency touches only the
// data actually guarded by the lock, trading annotation effort (the
// BindLock calls) for less synchronization traffic. Barriers are global
// synchronization: they flush and drop everything, bound or not.
type entryMW struct {
	d     *core.DSM
	dirty []map[core.Page]bool
}

func newEntryMW(d *core.DSM) *entryMW {
	p := &entryMW{d: d}
	for i := 0; i < d.Runtime().Nodes(); i++ {
		p.dirty = append(p.dirty, make(map[core.Page]bool))
	}
	return p
}

// Name implements core.Protocol.
func (p *entryMW) Name() string { return "entry_mw" }

// InitPage write-protects the page at its home so home writes are tracked,
// exactly as hbrc_mw does.
func (p *entryMW) InitPage(pg core.Page, home int) {
	p.d.Space(home).SetAccess(pg, memory.ReadOnly)
}

// ReadFaultHandler fetches a read-only copy from the home.
func (p *entryMW) ReadFaultHandler(f *core.Fault) { core.FetchPage(f, false) }

// WriteFaultHandler enables local writing with a twin, marking the page
// dirty for the next release of its lock.
func (p *entryMW) WriteFaultHandler(f *core.Fault) {
	e, t := f.Entry, f.Thread
	space := p.d.Space(f.Node)
	e.Lock(t)
	if space.AccessOf(f.Page) >= memory.ReadOnly {
		core.EnsureTwin(p.d, f.Node, e)
		space.SetAccess(f.Page, memory.ReadWrite)
		p.dirty[f.Node][f.Page] = true
		f.KeepEntryLocked()
		return
	}
	e.Unlock(t)
	core.FetchPage(f, true)
	if space.AccessOf(f.Page) == memory.ReadWrite {
		core.EnsureTwin(p.d, f.Node, e)
		p.dirty[f.Node][f.Page] = true
	}
}

// ReadServer runs at the home and grants a read-only copy.
func (p *entryMW) ReadServer(r *core.Request) { p.serveCopy(r, memory.ReadOnly) }

// WriteServer runs at the home and grants a writable copy (MRMW).
func (p *entryMW) WriteServer(r *core.Request) { p.serveCopy(r, memory.ReadWrite) }

func (p *entryMW) serveCopy(r *core.Request, access memory.Access) {
	e := p.d.Entry(r.Node, r.Page)
	e.Lock(r.Thread)
	if r.Node != e.Home {
		panic("entry_mw: page request did not reach the home node")
	}
	e.AddCopyset(r.From)
	core.SendPage(r, e, r.From, access, false, core.NodeSet{})
	e.Unlock(r.Thread)
}

// InvalidateServer flushes pending modifications and drops the copy (used
// only via the barrier's global synchronization).
func (p *entryMW) InvalidateServer(iv *core.Invalidate) {
	e := p.d.Entry(iv.Node, iv.Page)
	e.Lock(iv.Thread)
	diff := core.TwinDiff(p.d, iv.Node, e)
	p.d.Space(iv.Node).Drop(iv.Page)
	delete(p.dirty[iv.Node], iv.Page)
	e.Unlock(iv.Thread)
	if diff != nil {
		core.SendDiffsHome(p.d, iv.Thread, e.Home, []*memory.Diff{diff}, false)
	}
}

// ReceivePageServer installs the arriving copy.
func (p *entryMW) ReceivePageServer(pm *core.PageMsg) { core.InstallPage(pm) }

// LockAcquire drops the local copies of the pages bound to the acquired
// lock (after flushing any of our own pending modifications to them), so
// the holder sees the previous holder's writes. Barrier acquires apply to
// every page of this protocol.
func (p *entryMW) LockAcquire(s *core.SyncEvent) {
	p.dropCopies(s, p.scope(s))
}

// LockRelease flushes the diffs of the dirty pages bound to the released
// lock to their home nodes. Barrier releases flush everything.
func (p *entryMW) LockRelease(s *core.SyncEvent) {
	p.flushDirty(s, p.scope(s))
}

// scope returns the set of pages an acquire/release acts on: the lock's
// bound pages, or nil meaning "all of this protocol's pages" for barriers
// and unbound locks (which then behave like release consistency, a safe
// fallback for unannotated programs).
func (p *entryMW) scope(s *core.SyncEvent) map[core.Page]bool {
	if s.Barrier {
		return nil
	}
	bound := p.d.BoundPages(s.Lock)
	if len(bound) == 0 {
		return nil
	}
	set := make(map[core.Page]bool, len(bound))
	for _, pg := range bound {
		set[pg] = true
	}
	return set
}

// inScope reports whether pg participates in the current synchronization.
func inScope(scope map[core.Page]bool, pg core.Page) bool {
	return scope == nil || scope[pg]
}

func (p *entryMW) flushDirty(s *core.SyncEvent, scope map[core.Page]bool) {
	node := s.Node
	pages := make([]core.Page, 0, len(p.dirty[node]))
	for pg := range p.dirty[node] {
		if inScope(scope, pg) {
			pages = append(pages, pg)
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	b := p.d.NewBatch(s.Thread)
	for _, pg := range pages {
		delete(p.dirty[node], pg)
		e := p.d.Entry(node, pg)
		e.Lock(s.Thread)
		diff := core.TwinDiff(p.d, node, e)
		p.d.Space(node).SetAccess(pg, memory.ReadOnly)
		e.Unlock(s.Thread)
		if diff == nil {
			continue
		}
		if e.Home == node {
			continue // home writes are already in the reference copy
		}
		b.Diff(e.Home, diff, false)
	}
	// One envelope per home, every envelope in flight before the first
	// wait: flushes to distinct homes overlap.
	b.Flush(true)
}

func (p *entryMW) dropCopies(s *core.SyncEvent, scope map[core.Page]bool) {
	node := s.Node
	b := p.d.NewBatch(s.Thread)
	for _, pg := range p.d.PagesOn(node) {
		if !inScope(scope, pg) {
			continue
		}
		_, proto, ok := p.d.PageInfo(pg)
		if !ok || p.d.RegistryName(proto) != p.Name() {
			continue
		}
		e := p.d.Entry(node, pg)
		if e.Home == node {
			continue // the reference copy is always fresh
		}
		e.Lock(s.Thread)
		var flush *memory.Diff
		if p.d.Space(node).Frame(pg) != nil {
			flush = core.TwinDiff(p.d, node, e)
			p.d.Space(node).Drop(pg)
		}
		delete(p.dirty[node], pg)
		e.Unlock(s.Thread)
		if flush != nil {
			b.Diff(e.Home, flush, false)
		}
	}
	b.Flush(true)
}

// DiffServer applies arriving diffs to the reference copy.
func (p *entryMW) DiffServer(dm *core.DiffMsg) { core.ApplyDiffs(dm) }
