package protocols

import (
	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// liManaged implements the two non-dynamic page manager strategies of Li and
// Hudak's classification, which the paper's page manager was explicitly
// designed to accommodate ("protocols which need a fixed page manager, as
// well as protocols based on a dynamic page manager", Section 2.2):
//
//   - li_fixed:   fixed distributed manager — every page is managed by its
//     home node; requests go to the manager, which serves or forwards them
//     to the current owner.
//   - li_central: centralized manager — one node (node 0) manages every
//     page. Simple, but the manager is a bottleneck and remote faults pay
//     an extra forwarding hop, which the manager-strategy ablation bench
//     measures against li_hudak's probable-owner chains.
//
// The manager tracks the authoritative owner in its own page-table entry's
// ProbOwner field and, as in Li and Hudak's algorithm, optimistically
// repoints it at the requester when forwarding a write request. Non-manager,
// non-owner nodes always aim their requests at the manager.
type liManaged struct {
	d       *core.DSM
	name    string
	manager func(e *core.Entry) int
}

func newLiFixed(d *core.DSM) *liManaged {
	return &liManaged{d: d, name: "li_fixed", manager: func(e *core.Entry) int { return e.Home }}
}

func newLiCentral(d *core.DSM) *liManaged {
	return &liManaged{d: d, name: "li_central", manager: func(e *core.Entry) int { return 0 }}
}

// Name implements core.Protocol.
func (p *liManaged) Name() string { return p.name }

// InitPage aims every node's request hint at the manager. The manager's own
// entry doubles as the authoritative owner record; the page starts owned by
// its home.
func (p *liManaged) InitPage(pg core.Page, home int) {
	for n := 0; n < p.d.Runtime().Nodes(); n++ {
		e := p.d.Entry(n, pg)
		mgr := p.manager(e)
		if n == mgr {
			e.ProbOwner = home // authoritative owner record
		} else {
			e.ProbOwner = mgr // all requests go to the manager
		}
	}
}

// ReadFaultHandler requests a read copy via the manager.
func (p *liManaged) ReadFaultHandler(f *core.Fault) { core.FetchPage(f, false) }

// WriteFaultHandler requests the page and ownership via the manager.
func (p *liManaged) WriteFaultHandler(f *core.Fault) { core.FetchPage(f, true) }

// ReadServer either serves (if this node owns the page) or, at the manager,
// forwards the request to the recorded owner.
func (p *liManaged) ReadServer(r *core.Request) {
	e, owner := core.ServeWhenOwner(r)
	if !owner {
		p.forward(r, e)
		return
	}
	e.AddCopyset(r.From)
	p.d.Space(r.Node).SetAccess(r.Page, memory.ReadOnly)
	core.SendPage(r, e, r.From, memory.ReadOnly, false, core.NodeSet{})
	e.Unlock(r.Thread)
}

// WriteServer transfers page and ownership like li_hudak; at the manager it
// forwards and optimistically records the requester as the new owner.
func (p *liManaged) WriteServer(r *core.Request) {
	e, owner := core.ServeWhenOwner(r)
	if !owner {
		if r.Node == p.manager(e) {
			// Li & Hudak: the manager repoints the owner record at
			// the write requester as it forwards.
			dest := e.ProbOwner
			e.ProbOwner = r.From
			e.Unlock(r.Thread)
			core.ForwardRequestTo(r, dest)
			return
		}
		p.forward(r, e)
		return
	}
	cs := e.TakeCopyset()
	core.InvalidateCopies(p.d, r.Thread, r.Page, cs, r.From)
	core.SendPage(r, e, r.From, memory.ReadWrite, true, core.NodeSet{})
	e.Owner = false
	e.ProbOwner = r.From
	p.d.Space(r.Node).Drop(r.Page)
	e.Unlock(r.Thread)
}

// forward relays a request along this node's hint (at the manager: the
// authoritative owner; at a stale ex-owner: the node it last transferred to).
func (p *liManaged) forward(r *core.Request, e *core.Entry) {
	core.ForwardRequest(r, e)
}

// InvalidateServer drops the local copy. The owner hint is NOT redirected at
// the new owner: non-manager nodes must keep asking the manager.
func (p *liManaged) InvalidateServer(iv *core.Invalidate) {
	e := p.d.Entry(iv.Node, iv.Page)
	e.Lock(iv.Thread)
	p.d.Space(iv.Node).Drop(iv.Page)
	e.Owner = false
	if iv.Node != p.manager(e) {
		e.ProbOwner = p.manager(e)
	}
	e.Unlock(iv.Thread)
}

// ReceivePageServer installs the copy and re-aims the hint at the manager
// (InstallPage points it at the sender, which is right for dynamic chains
// but wrong for managed schemes).
func (p *liManaged) ReceivePageServer(pm *core.PageMsg) {
	core.InstallPage(pm)
	e := pm.DSM.Entry(pm.Node, pm.Page)
	e.Lock(pm.Thread)
	if !e.Owner && pm.Node != p.manager(e) {
		e.ProbOwner = p.manager(e)
	}
	e.Unlock(pm.Thread)
}

// LockAcquire is a no-op: sequential consistency acts at access time.
func (p *liManaged) LockAcquire(*core.SyncEvent) {}

// LockRelease is a no-op.
func (p *liManaged) LockRelease(*core.SyncEvent) {}
