package memory

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccessOrdering(t *testing.T) {
	if NoAccess.Allows(false) || NoAccess.Allows(true) {
		t.Error("NoAccess allows something")
	}
	if !ReadOnly.Allows(false) || ReadOnly.Allows(true) {
		t.Error("ReadOnly rights wrong")
	}
	if !ReadWrite.Allows(false) || !ReadWrite.Allows(true) {
		t.Error("ReadWrite rights wrong")
	}
}

func TestAccessString(t *testing.T) {
	for a, want := range map[Access]string{NoAccess: "---", ReadOnly: "r--", ReadWrite: "rw-"} {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestReadFaultOnMissingPage(t *testing.T) {
	s := NewSpace(4096)
	var buf [4]byte
	err := s.Read(100, buf[:])
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("read of unmapped page returned %v, want *Fault", err)
	}
	if f.Write || f.Page != 0 || f.Addr != 100 {
		t.Fatalf("fault = %+v", f)
	}
}

func TestWriteFaultOnReadOnly(t *testing.T) {
	s := NewSpace(4096)
	s.SetAccess(0, ReadOnly)
	var buf [4]byte
	if err := s.Read(0, buf[:]); err != nil {
		t.Fatalf("read on r-- page faulted: %v", err)
	}
	err := s.Write(0, buf[:])
	var f *Fault
	if !errors.As(err, &f) || !f.Write {
		t.Fatalf("write on r-- page returned %v, want write *Fault", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSpace(4096)
	s.SetAccess(1, ReadWrite)
	base := s.Base(1)
	if err := s.WriteUint32(base+12, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadUint32(base + 12)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("round trip = %#x, %v", v, err)
	}
	if err := s.WriteUint64(base+40, 1<<60); err != nil {
		t.Fatal(err)
	}
	v64, err := s.ReadUint64(base + 40)
	if err != nil || v64 != 1<<60 {
		t.Fatalf("u64 round trip = %#x, %v", v64, err)
	}
}

func TestStraddleRejected(t *testing.T) {
	s := NewSpace(4096)
	s.SetAccess(0, ReadWrite)
	s.SetAccess(1, ReadWrite)
	var buf [8]byte
	if err := s.Write(4092, buf[:]); err == nil {
		t.Fatal("page-straddling access succeeded")
	}
}

func TestZeroLengthRejected(t *testing.T) {
	s := NewSpace(4096)
	s.SetAccess(0, ReadWrite)
	if err := s.Read(0, nil); err == nil {
		t.Fatal("zero-length read succeeded")
	}
}

func TestDropRevokesAccess(t *testing.T) {
	s := NewSpace(4096)
	s.SetAccess(0, ReadWrite)
	s.Drop(0)
	if s.AccessOf(0) != NoAccess {
		t.Fatal("dropped page still accessible")
	}
	if s.Frame(0) != nil {
		t.Fatal("dropped page still has a frame")
	}
}

func TestEnsureZeroed(t *testing.T) {
	s := NewSpace(4096)
	f := s.Ensure(7)
	for _, b := range f.Data {
		if b != 0 {
			t.Fatal("fresh frame not zeroed")
		}
	}
	if f.Access != NoAccess {
		t.Fatal("fresh frame not NoAccess")
	}
	if s.Ensure(7) != f {
		t.Fatal("Ensure created a duplicate frame")
	}
}

func TestPageOfBase(t *testing.T) {
	s := NewSpace(4096)
	if s.PageOf(4095) != 0 || s.PageOf(4096) != 1 {
		t.Fatal("PageOf boundary wrong")
	}
	if s.Base(3) != 3*4096 {
		t.Fatal("Base wrong")
	}
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two page size accepted")
		}
	}()
	NewSpace(1000)
}

func TestFaultErrorMessage(t *testing.T) {
	f := &Fault{Addr: 0x2000, Page: 2, Write: true}
	if f.Error() == "" || (&Fault{}).Error() == "" {
		t.Fatal("empty fault message")
	}
}

func TestDiffRoundTripExact(t *testing.T) {
	orig := make([]byte, 256)
	cur := make([]byte, 256)
	for i := range orig {
		orig[i] = byte(i)
		cur[i] = byte(i)
	}
	twin := MakeTwin(orig)
	cur[10] = 99
	cur[11] = 98
	cur[200] = 1
	d := ComputeDiff(3, twin, cur, 0)
	if d.Page != 3 || len(d.Entries) != 2 {
		t.Fatalf("diff = %+v", d)
	}
	ApplyDiff(orig, d)
	if !bytes.Equal(orig, cur) {
		t.Fatal("apply(diff) did not reproduce the page")
	}
}

func TestDiffGapCoalescing(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[0] = 1
	cur[4] = 1 // 3 clean bytes between
	exact := ComputeDiff(0, twin, cur, 0)
	coarse := ComputeDiff(0, twin, cur, 8)
	if len(exact.Entries) != 2 {
		t.Fatalf("exact diff entries = %d, want 2", len(exact.Entries))
	}
	if len(coarse.Entries) != 1 {
		t.Fatalf("gap-8 diff entries = %d, want 1", len(coarse.Entries))
	}
	// Both must still reproduce the page.
	for _, d := range []*Diff{exact, coarse} {
		page := make([]byte, 64)
		ApplyDiff(page, d)
		if !bytes.Equal(page, cur) {
			t.Fatal("diff does not reproduce page")
		}
	}
}

func TestDiffEmpty(t *testing.T) {
	twin := make([]byte, 32)
	cur := make([]byte, 32)
	d := ComputeDiff(0, twin, cur, 4)
	if !d.Empty() {
		t.Fatal("diff of identical pages not empty")
	}
	if d.Size() != 8 {
		t.Fatalf("empty diff size = %d, want header only", d.Size())
	}
}

func TestDiffSize(t *testing.T) {
	d := &Diff{Entries: []DiffEntry{{Off: 0, Data: make([]byte, 10)}}}
	if d.Size() != 8+8+10 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestMergeRecordedCoalesces(t *testing.T) {
	var d Diff
	d.MergeRecorded(0, []byte{1, 2})
	d.MergeRecorded(2, []byte{3, 4}) // contiguous: extends
	if len(d.Entries) != 1 || len(d.Entries[0].Data) != 4 {
		t.Fatalf("contiguous merge produced %+v", d.Entries)
	}
	d.MergeRecorded(1, []byte{9}) // overlapping rewrite: patches
	if len(d.Entries) != 1 || d.Entries[0].Data[1] != 9 {
		t.Fatalf("overlap patch produced %+v", d.Entries)
	}
	d.MergeRecorded(100, []byte{5}) // disjoint: new entry
	if len(d.Entries) != 2 {
		t.Fatalf("disjoint write produced %+v", d.Entries)
	}
}

// Property: for random modifications and any gap, applying the diff to the
// twin reproduces the current page exactly.
func TestDiffIdentityProperty(t *testing.T) {
	f := func(seed int64, gap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, 512)
		rng.Read(twin)
		cur := MakeTwin(twin)
		nmods := rng.Intn(50)
		for i := 0; i < nmods; i++ {
			cur[rng.Intn(len(cur))] = byte(rng.Int())
		}
		d := ComputeDiff(0, twin, cur, int(gap%16))
		patched := MakeTwin(twin)
		ApplyDiff(patched, d)
		return bytes.Equal(patched, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: diffs never report more payload than the page size and entries
// are sorted, disjoint and in range.
func TestDiffWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, 256)
		cur := make([]byte, 256)
		rng.Read(twin)
		copy(cur, twin)
		for i := 0; i < rng.Intn(100); i++ {
			cur[rng.Intn(256)] ^= byte(1 + rng.Intn(255))
		}
		d := ComputeDiff(0, twin, cur, 0)
		prevEnd := -1
		total := 0
		for _, e := range d.Entries {
			if e.Off <= prevEnd || e.Off+len(e.Data) > 256 || len(e.Data) == 0 {
				return false
			}
			prevEnd = e.Off + len(e.Data) - 1
			total += len(e.Data)
		}
		return total <= 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
