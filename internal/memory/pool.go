package memory

import "dsmpm2/internal/freelist"

// BufPool is a freelist of equal-size byte buffers: page frames in flight,
// twins, and wire copies all churn through page-sized allocations on every
// fault, and at simulation scale that churn — not the virtual protocol cost
// — bounds how many faults per wall-clock second the simulator sustains.
// The simulation kernel is single-threaded (one goroutine holds the token
// at a time), so the pool needs no locking.
//
// Get returns a dirty buffer: callers must overwrite it fully before
// exposing the contents (wire copies and twins do — zero-filled frames have
// their own freelist inside Space). Put accepts only buffers of the pool's
// size and silently drops the rest, so a caller handing back a foreign or
// nil slice is harmless.
type BufPool struct {
	size int
	free freelist.List[[]byte]
}

// NewBufPool returns a pool of size-byte buffers.
func NewBufPool(size int) *BufPool {
	if size <= 0 {
		panic("memory: buffer pool size must be positive")
	}
	return &BufPool{size: size}
}

// Size returns the pooled buffer size in bytes.
func (p *BufPool) Size() int { return p.size }

// Get returns a buffer of the pool's size with unspecified contents.
func (p *BufPool) Get() []byte {
	if buf, ok := p.free.Get(); ok {
		return buf
	}
	return make([]byte, p.size)
}

// Put returns buf to the pool. Buffers of the wrong size are dropped.
func (p *BufPool) Put(buf []byte) {
	if len(buf) != p.size {
		return
	}
	p.free.Put(buf)
}

// MakeTwin returns a pooled private copy of the page contents, the pooled
// counterpart of the package-level MakeTwin. data must be pool-sized.
func (p *BufPool) MakeTwin(data []byte) []byte {
	if len(data) != p.size {
		panic("memory: twin source is not pool-sized")
	}
	twin := p.Get()
	copy(twin, data)
	return twin
}
