package memory

// Twin/diff machinery for multiple-writer protocols.
//
// hbrc_mw uses the classical twinning technique (Keleher et al.): before the
// first write to a non-home copy the page is duplicated (the twin); at
// release time the current contents are compared against the twin and only
// the modified words — the diff — travel to the home node. The Java
// protocols record diffs on the fly at object-field granularity through the
// put primitive, producing the same DiffEntry representation.

// DiffEntry is one modified byte range within a page.
type DiffEntry struct {
	Off  int
	Data []byte
}

// Diff is the set of modifications made to one page.
type Diff struct {
	Page    Page
	Entries []DiffEntry
}

// Size returns the number of payload bytes the diff occupies on the wire
// (entry headers are counted at 8 bytes apiece, matching the real encoding).
func (d *Diff) Size() int {
	n := 8 // page header
	for _, e := range d.Entries {
		n += 8 + len(e.Data)
	}
	return n
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.Entries) == 0 }

// MakeTwin returns a private copy of the page contents.
func MakeTwin(data []byte) []byte {
	twin := make([]byte, len(data))
	copy(twin, data)
	return twin
}

// nextDirtyRange scans for the next modified range starting at or after i:
// adjacent modified bytes coalesce, with runs of up to gap unmodified bytes
// absorbed to reduce entry overhead. It returns the range [start, last] and
// ok=false when the rest of the page is clean. Both ComputeDiff passes use
// this one scanner, so they segment the page identically by construction.
func nextDirtyRange(twin, cur []byte, i, gap int) (start, last int, ok bool) {
	for i < len(cur) && twin[i] == cur[i] {
		i++
	}
	if i == len(cur) {
		return 0, 0, false
	}
	start = i
	last = i
	i++
	for i < len(cur) {
		if twin[i] != cur[i] {
			last = i
			i++
			continue
		}
		// Look ahead: absorb short clean runs.
		if i-last <= gap {
			i++
			continue
		}
		break
	}
	return start, last, true
}

// ComputeDiff compares cur against twin and returns the modified ranges
// (gap 0 yields exact diffs; the DSM layer uses a small gap like 8 to mimic
// word-granularity diffing). It scans twice: the first pass sizes the diff,
// the second fills exactly one entries slice and one shared backing buffer,
// so a diff costs three allocations regardless of how fragmented the page's
// modifications are.
func ComputeDiff(pg Page, twin, cur []byte, gap int) *Diff {
	if len(twin) != len(cur) {
		panic("memory: twin/page length mismatch")
	}
	nEntries, nBytes := 0, 0
	for i := 0; ; {
		start, last, ok := nextDirtyRange(twin, cur, i, gap)
		if !ok {
			break
		}
		nEntries++
		nBytes += last - start + 1
		i = last + 1
	}
	d := &Diff{Page: pg}
	if nEntries == 0 {
		return d
	}
	d.Entries = make([]DiffEntry, 0, nEntries)
	backing := make([]byte, 0, nBytes)
	for i := 0; ; {
		start, last, ok := nextDirtyRange(twin, cur, i, gap)
		if !ok {
			break
		}
		from := len(backing)
		backing = append(backing, cur[start:last+1]...)
		d.Entries = append(d.Entries, DiffEntry{Off: start, Data: backing[from:len(backing):len(backing)]})
		i = last + 1
	}
	return d
}

// ApplyDiff patches data with the diff's modifications.
func ApplyDiff(data []byte, d *Diff) {
	for _, e := range d.Entries {
		copy(data[e.Off:], e.Data)
	}
}

// MergeRecorded appends a write of buf at offset off to d, coalescing with
// the previous entry when contiguous. This is the on-the-fly diff recording
// path used by the Java protocols' put primitive.
func (d *Diff) MergeRecorded(off int, buf []byte) {
	if n := len(d.Entries); n > 0 {
		last := &d.Entries[n-1]
		if last.Off+len(last.Data) == off {
			last.Data = append(last.Data, buf...)
			return
		}
		// Overlapping rewrite of the same range: patch in place.
		if off >= last.Off && off+len(buf) <= last.Off+len(last.Data) {
			copy(last.Data[off-last.Off:], buf)
			return
		}
	}
	d.Entries = append(d.Entries, DiffEntry{Off: off, Data: append([]byte(nil), buf...)})
}
