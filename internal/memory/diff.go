package memory

// Twin/diff machinery for multiple-writer protocols.
//
// hbrc_mw uses the classical twinning technique (Keleher et al.): before the
// first write to a non-home copy the page is duplicated (the twin); at
// release time the current contents are compared against the twin and only
// the modified words — the diff — travel to the home node. The Java
// protocols record diffs on the fly at object-field granularity through the
// put primitive, producing the same DiffEntry representation.

// DiffEntry is one modified byte range within a page.
type DiffEntry struct {
	Off  int
	Data []byte
}

// Diff is the set of modifications made to one page.
type Diff struct {
	Page    Page
	Entries []DiffEntry
}

// Size returns the number of payload bytes the diff occupies on the wire
// (entry headers are counted at 8 bytes apiece, matching the real encoding).
func (d *Diff) Size() int {
	n := 8 // page header
	for _, e := range d.Entries {
		n += 8 + len(e.Data)
	}
	return n
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.Entries) == 0 }

// MakeTwin returns a private copy of the page contents.
func MakeTwin(data []byte) []byte {
	twin := make([]byte, len(data))
	copy(twin, data)
	return twin
}

// ComputeDiff compares cur against twin and returns the modified ranges.
// Adjacent modified bytes coalesce into a single entry, with runs of up to
// gap unmodified bytes absorbed to reduce entry overhead (gap 0 yields exact
// diffs; the DSM layer uses a small gap like 8 to mimic word-granularity
// diffing).
func ComputeDiff(pg Page, twin, cur []byte, gap int) *Diff {
	if len(twin) != len(cur) {
		panic("memory: twin/page length mismatch")
	}
	d := &Diff{Page: pg}
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		start := i
		last := i // last differing byte seen
		i++
		for i < len(cur) {
			if twin[i] != cur[i] {
				last = i
				i++
				continue
			}
			// Look ahead: absorb short clean runs.
			if i-last <= gap {
				i++
				continue
			}
			break
		}
		entry := DiffEntry{Off: start, Data: append([]byte(nil), cur[start:last+1]...)}
		d.Entries = append(d.Entries, entry)
		i = last + 1
	}
	return d
}

// ApplyDiff patches data with the diff's modifications.
func ApplyDiff(data []byte, d *Diff) {
	for _, e := range d.Entries {
		copy(data[e.Off:], e.Data)
	}
}

// MergeRecorded appends a write of buf at offset off to d, coalescing with
// the previous entry when contiguous. This is the on-the-fly diff recording
// path used by the Java protocols' put primitive.
func (d *Diff) MergeRecorded(off int, buf []byte) {
	if n := len(d.Entries); n > 0 {
		last := &d.Entries[n-1]
		if last.Off+len(last.Data) == off {
			last.Data = append(last.Data, buf...)
			return
		}
		// Overlapping rewrite of the same range: patch in place.
		if off >= last.Off && off+len(buf) <= last.Off+len(last.Data) {
			copy(last.Data[off-last.Off:], buf)
			return
		}
	}
	d.Entries = append(d.Entries, DiffEntry{Off: off, Data: append([]byte(nil), buf...)})
}
