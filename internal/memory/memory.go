// Package memory implements the paged software memory that stands in for the
// hardware MMU of the paper's clusters.
//
// The real DSM-PM2 detects shared accesses with mprotect and SIGSEGV. That
// mechanism is unavailable under the Go runtime (the GC and the scheduler
// cannot tolerate protected heap pages), so accesses instead go through
// explicit load/store primitives that check per-page access rights and
// return a *Fault when the rights are insufficient — the same
// detect → handle → retry cycle, with the detection cost charged by the DSM
// layer at the paper's measured 11 us.
package memory

import (
	"encoding/binary"
	"fmt"

	"dsmpm2/internal/freelist"
	"dsmpm2/internal/isomalloc"
)

// Addr aliases the iso-address space address type.
type Addr = isomalloc.Addr

// Page identifies a virtual page: Addr / PageSize.
type Page uint64

// Access is the local access right a node holds on a page, mirroring the
// rights the real system sets with mprotect.
type Access uint8

// Access rights, in increasing order of privilege.
const (
	NoAccess Access = iota
	ReadOnly
	ReadWrite
)

// String returns the conventional protection-bit spelling of an access right.
func (a Access) String() string {
	switch a {
	case NoAccess:
		return "---"
	case ReadOnly:
		return "r--"
	case ReadWrite:
		return "rw-"
	default:
		return fmt.Sprintf("Access(%d)", uint8(a))
	}
}

// Allows reports whether right a permits the given kind of access.
func (a Access) Allows(write bool) bool {
	if write {
		return a == ReadWrite
	}
	return a >= ReadOnly
}

// Fault describes an access that the current rights do not permit. It plays
// the role of the SIGSEGV the real system catches: the DSM layer inspects the
// faulting address and kind and invokes the protocol's fault handler.
type Fault struct {
	Addr  Addr
	Page  Page
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("memory: %s fault at %#x (page %d)", kind, f.Addr, f.Page)
}

// Frame is one node's local copy of a page, together with the access right
// currently set on it.
type Frame struct {
	Data   []byte
	Access Access
}

// Space is one node's view of the shared address space: the set of page
// frames it currently holds. A page with no frame behaves as NoAccess.
//
// Dropped frames are recycled through a freelist: invalidation-heavy
// protocols drop and refetch pages constantly, and reusing the frame (and
// its page buffer) keeps that cycle allocation-free. Callers must not
// retain a *Frame or its Data across Drop — the sequential simulation makes
// this natural, since protocol code only touches frames inside one critical
// section.
type Space struct {
	pageSize int
	frames   map[Page]*Frame
	free     freelist.List[*Frame]
}

// NewSpace creates an empty address space view with the given page size.
func NewSpace(pageSize int) *Space {
	if pageSize < 8 || pageSize&(pageSize-1) != 0 {
		panic("memory: page size must be a power of two >= 8")
	}
	return &Space{pageSize: pageSize, frames: make(map[Page]*Frame)}
}

// PageSize returns the page size in bytes.
func (s *Space) PageSize() int { return s.pageSize }

// PageOf returns the page containing addr.
func (s *Space) PageOf(addr Addr) Page { return Page(uint64(addr) / uint64(s.pageSize)) }

// Base returns the first address of page pg.
func (s *Space) Base(pg Page) Addr { return Addr(uint64(pg) * uint64(s.pageSize)) }

// Frame returns the local frame for pg, or nil if the node holds no copy.
func (s *Space) Frame(pg Page) *Frame { return s.frames[pg] }

// Ensure returns the frame for pg, creating a zeroed NoAccess frame if the
// node holds none.
func (s *Space) Ensure(pg Page) *Frame {
	f := s.frames[pg]
	if f == nil {
		if recycled, ok := s.free.Get(); ok {
			f = recycled
			for i := range f.Data {
				f.Data[i] = 0
			}
			f.Access = NoAccess
		} else {
			f = &Frame{Data: make([]byte, s.pageSize)}
		}
		s.frames[pg] = f
	}
	return f
}

// Drop discards the local frame for pg (used when a protocol invalidates and
// reclaims a copy). The frame is recycled; see the Space doc comment.
func (s *Space) Drop(pg Page) {
	if f := s.frames[pg]; f != nil {
		delete(s.frames, pg)
		s.free.Put(f)
	}
}

// SetAccess sets the access right on pg, creating the frame if needed.
func (s *Space) SetAccess(pg Page, a Access) { s.Ensure(pg).Access = a }

// AccessOf returns the access right the node holds on pg.
func (s *Space) AccessOf(pg Page) Access {
	if f := s.frames[pg]; f != nil {
		return f.Access
	}
	return NoAccess
}

// check validates an n-byte access at addr and returns the containing page.
// Accesses must not straddle a page boundary: DSM-PM2 shares data at page
// granularity and the runtime allocates objects so they never cross pages.
func (s *Space) check(addr Addr, n int, write bool) (Page, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memory: invalid access length %d", n)
	}
	pg := s.PageOf(addr)
	if s.PageOf(addr+Addr(n-1)) != pg {
		return 0, fmt.Errorf("memory: access [%#x,%#x) straddles a page boundary", addr, addr+Addr(n))
	}
	f := s.frames[pg]
	if f == nil || !f.Access.Allows(write) {
		return 0, &Fault{Addr: addr, Page: pg, Write: write}
	}
	return pg, nil
}

// Read copies len(buf) bytes starting at addr into buf. It returns a *Fault
// if the node lacks read access to the page.
func (s *Space) Read(addr Addr, buf []byte) error {
	pg, err := s.check(addr, len(buf), false)
	if err != nil {
		return err
	}
	off := int(uint64(addr) % uint64(s.pageSize))
	copy(buf, s.frames[pg].Data[off:])
	return nil
}

// Write copies buf into memory starting at addr. It returns a *Fault if the
// node lacks write access to the page.
func (s *Space) Write(addr Addr, buf []byte) error {
	pg, err := s.check(addr, len(buf), true)
	if err != nil {
		return err
	}
	off := int(uint64(addr) % uint64(s.pageSize))
	copy(s.frames[pg].Data[off:], buf)
	return nil
}

// ReadUint32 loads a little-endian uint32 at addr.
func (s *Space) ReadUint32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteUint32 stores a little-endian uint32 at addr.
func (s *Space) WriteUint32(addr Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return s.Write(addr, b[:])
}

// ReadUint64 loads a little-endian uint64 at addr.
func (s *Space) ReadUint64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteUint64 stores a little-endian uint64 at addr.
func (s *Space) WriteUint64(addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.Write(addr, b[:])
}

// Pages returns the pages for which this node currently holds a frame.
func (s *Space) Pages() []Page {
	out := make([]Page, 0, len(s.frames))
	for pg := range s.frames {
		out = append(out, pg)
	}
	return out
}
