package memory

// Native Go fuzz target for the twin/diff machinery. Recovery leans on
// diffs being exact: a re-sent diff is applied idempotently at a re-homed
// page, so any encoding corruption — an off-by-one range, a gap-coalescing
// bug, an aliased backing buffer — silently corrupts recovered memory. The
// round-trip property pins it: for any twin, any set of modifications and
// any coalescing gap, ApplyDiff(twin, ComputeDiff(twin, cur)) == cur.

import (
	"bytes"
	"testing"
)

// mutate applies the fuzzer-chosen modifications to cur: mods is consumed
// as (offset, value) byte pairs.
func mutate(cur []byte, mods []byte) {
	for i := 0; i+1 < len(mods); i += 2 {
		cur[int(mods[i])%len(cur)] = mods[i+1]
	}
}

func FuzzDiffRoundTrip(f *testing.F) {
	// Seed corpus: clean page, single-byte change, two distant ranges that
	// must not coalesce at gap 0 but do at gap 8, dense scatter, and
	// boundary-of-page writes.
	f.Add([]byte{}, []byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4}, []byte{0, 9}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xAA}, 64), []byte{0, 1, 20, 2}, uint8(8))
	f.Add(bytes.Repeat([]byte{0x00}, 64), []byte{0, 1, 2, 2, 4, 3, 63, 9}, uint8(2))
	f.Add(bytes.Repeat([]byte{0xFF}, 32), []byte{31, 0, 0, 0}, uint8(16))
	f.Fuzz(func(t *testing.T, twinSeed, mods []byte, gap uint8) {
		const size = 96
		twin := make([]byte, size)
		copy(twin, twinSeed)
		cur := append([]byte(nil), twin...)
		mutate(cur, mods)

		diff := ComputeDiff(7, twin, cur, int(gap%32))

		// Round trip: the diff applied to a pristine twin restores cur.
		restored := append([]byte(nil), twin...)
		ApplyDiff(restored, diff)
		if !bytes.Equal(restored, cur) {
			t.Fatalf("round trip lost data:\n twin %x\n cur  %x\n got  %x\n diff %+v",
				twin, cur, restored, diff)
		}

		// Emptiness is exact: a diff is empty iff nothing changed.
		if diff.Empty() != bytes.Equal(twin, cur) {
			t.Fatalf("Empty()=%v but twin==cur is %v", diff.Empty(), bytes.Equal(twin, cur))
		}

		// Entries are in-bounds, ordered, non-overlapping, and the wire
		// size accounts for every byte.
		wantSize := 8
		last := -1
		for _, e := range diff.Entries {
			if e.Off <= last {
				t.Fatalf("entries out of order or overlapping at off %d (prev end %d)", e.Off, last)
			}
			if e.Off < 0 || e.Off+len(e.Data) > size || len(e.Data) == 0 {
				t.Fatalf("entry out of bounds: off=%d len=%d", e.Off, len(e.Data))
			}
			last = e.Off + len(e.Data) - 1
			wantSize += 8 + len(e.Data)
		}
		if diff.Size() != wantSize {
			t.Fatalf("Size() = %d, want %d", diff.Size(), wantSize)
		}

		// Idempotence — what recovery actually relies on when a diff is
		// re-sent to a re-homed page: applying twice changes nothing more.
		ApplyDiff(restored, diff)
		if !bytes.Equal(restored, cur) {
			t.Fatalf("second ApplyDiff changed data")
		}
	})
}

// FuzzMergeRecorded drives the on-the-fly recording path (the Java
// protocols' put primitive) against a reference byte map.
func FuzzMergeRecorded(f *testing.F) {
	f.Add([]byte{0, 3, 1, 2}, uint8(4))
	f.Add([]byte{10, 1, 11, 1, 12, 1}, uint8(2))
	f.Add([]byte{5, 9, 5, 9}, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, width uint8) {
		const size = 64
		w := int(width%8) + 1
		ref := make([]byte, size)
		written := make([]bool, size)
		d := &Diff{Page: 3}
		for i := 0; i+1 < len(ops); i += 2 {
			off := int(ops[i]) % (size - w + 1)
			buf := bytes.Repeat([]byte{ops[i+1]}, w)
			d.MergeRecorded(off, buf)
			copy(ref[off:], buf)
			for j := off; j < off+w; j++ {
				written[j] = true
			}
		}
		got := make([]byte, size)
		ApplyDiff(got, d)
		for i := range ref {
			if written[i] && got[i] != ref[i] {
				t.Fatalf("byte %d = %#x, want %#x", i, got[i], ref[i])
			}
			if !written[i] && got[i] != 0 {
				t.Fatalf("byte %d written spuriously", i)
			}
		}
	})
}
