// Package pm2 models the PM2 (Parallel Multithreaded Machine) runtime system
// that DSM-PM2 is layered on: a distributed set of nodes, a POSIX-like
// user-level thread package (Marcel), an RPC mechanism built on the
// Madeleine communication library, and preemptive iso-address thread
// migration (Section 2.1 of the paper).
package pm2

import (
	"fmt"

	"dsmpm2/internal/freelist"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// DescriptorBytes is the size of a thread descriptor moved along with the
// stack on migration.
const DescriptorBytes = 256

// Runtime is a simulated PM2 machine: a cluster of nodes sharing one sim
// engine and one network.
type Runtime struct {
	eng   *sim.Engine
	net   *madeleine.Network
	nodes []*Node
	cpus  int // CPUs per node, kept for rebuilding a restarted node's CPU

	nextThread int
	threads    []*Thread

	// svcIDs caches service name -> interned request-channel id, so
	// per-message sends skip both the "rpc:" concatenation and the
	// network's name table.
	svcIDs map[string]madeleine.ChanID
	// reqFree recycles rpcReq envelopes (see rpcReq).
	reqFree freelist.List[*rpcReq]
}

// Config describes a PM2 machine.
type Config struct {
	Nodes       int
	CPUsPerNode int // defaults to 1, as in the paper's PII nodes

	// Network is the uniform-interconnect shorthand: every node pair uses
	// this one profile (default BIPMyrinet). Topology, when set, takes
	// precedence and resolves costs per (src,dst) link.
	Network  *madeleine.Profile
	Topology madeleine.Topology

	// LinkContention enables FIFO bandwidth occupancy on each directed
	// link: concurrent transfers crossing one link queue instead of
	// overlapping for free. Off by default — the paper's calibrated
	// latencies are single-message costs.
	LinkContention bool

	Seed int64
}

// NewRuntime builds a PM2 machine from cfg.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Nodes < 1 {
		panic("pm2: need at least one node")
	}
	if cfg.CPUsPerNode == 0 {
		cfg.CPUsPerNode = 1
	}
	topo := cfg.Topology
	if topo == nil {
		prof := cfg.Network
		if prof == nil {
			prof = madeleine.BIPMyrinet
		}
		topo = madeleine.NewUniform(prof)
	}
	eng := sim.NewEngine(cfg.Seed)
	rt := &Runtime{
		eng:    eng,
		net:    madeleine.NewNetworkTopology(eng, topo, cfg.Nodes),
		cpus:   cfg.CPUsPerNode,
		svcIDs: make(map[string]madeleine.ChanID),
	}
	rt.net.SetLinkContention(cfg.LinkContention)
	for i := 0; i < cfg.Nodes; i++ {
		rt.nodes = append(rt.nodes, &Node{
			rt:       rt,
			ID:       i,
			CPU:      sim.NewResource(cfg.CPUsPerNode),
			services: make(map[string]*service),
		})
	}
	return rt
}

// Engine returns the sim engine driving this machine.
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// Network returns the machine's interconnect.
func (rt *Runtime) Network() *madeleine.Network { return rt.net }

// Profile returns the uniform interconnect profile, or nil when the machine
// runs over a heterogeneous topology (use Link for per-pair costs).
func (rt *Runtime) Profile() *madeleine.Profile { return rt.net.Profile() }

// Topology returns the interconnect topology.
func (rt *Runtime) Topology() madeleine.Topology { return rt.net.Topology() }

// Link returns the cost profile governing messages from src to dst.
func (rt *Runtime) Link(src, dst int) *madeleine.Profile { return rt.net.Link(src, dst) }

// Nodes reports the number of nodes.
func (rt *Runtime) Nodes() int { return len(rt.nodes) }

// ThreadCount reports the total number of threads created on this machine,
// including RPC dispatcher and handler threads.
func (rt *Runtime) ThreadCount() int { return len(rt.threads) }

// Node returns node i.
func (rt *Runtime) Node(i int) *Node {
	if i < 0 || i >= len(rt.nodes) {
		panic(fmt.Sprintf("pm2: node %d out of range [0,%d)", i, len(rt.nodes)))
	}
	return rt.nodes[i]
}

// Run drives the machine until all non-daemon threads finish.
func (rt *Runtime) Run() error { return rt.eng.Run() }

// Now returns the current virtual time.
func (rt *Runtime) Now() sim.Time { return rt.eng.Now() }

// Node is one computing node of the PM2 machine. Threads located on the
// node share its CPUs; RPC services registered on it serve remote requests.
type Node struct {
	rt  *Runtime
	ID  int
	CPU *sim.Resource

	services map[string]*service
	// svcOrder lists service names in registration order, so a restarted
	// node respawns its dispatchers deterministically.
	svcOrder []string

	// dead marks a crashed node (see fault.go).
	dead bool

	// Stats
	ThreadsSpawned  int
	MigrationsIn    int
	MigrationsOut   int
	HandlersSpawned int
	Restarts        int
}

// Runtime returns the machine this node belongs to.
func (n *Node) Runtime() *Runtime { return n.rt }
