// Package pm2 models the PM2 (Parallel Multithreaded Machine) runtime system
// that DSM-PM2 is layered on: a distributed set of nodes, a POSIX-like
// user-level thread package (Marcel), an RPC mechanism built on the
// Madeleine communication library, and preemptive iso-address thread
// migration (Section 2.1 of the paper).
package pm2

import (
	"fmt"
	"sync"

	"dsmpm2/internal/freelist"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// DescriptorBytes is the size of a thread descriptor moved along with the
// stack on migration.
const DescriptorBytes = 256

// Runtime is a simulated PM2 machine: a cluster of nodes sharing one sim
// engine and one network. With Config.Shards > 1 the machine runs sharded:
// one event loop per node cluster (see sim.ShardedEngine), every node pinned
// to its cluster's shard, and cross-cluster RPC traffic crossing shards as
// conservatively synchronized remote events. The single-loop configuration
// (Shards <= 1) takes the historical code paths bit-for-bit.
type Runtime struct {
	eng   *sim.Engine
	net   *madeleine.Network
	nodes []*Node
	cpus  int // CPUs per node, kept for rebuilding a restarted node's CPU

	// Sharded execution (nil/unused when single-loop).
	se        *sim.ShardedEngine
	nodeShard []int // node -> owning shard
	// thMu guards the global thread list in sharded mode only (any shard
	// may create handler threads while another walks the list).
	thMu sync.Mutex
	// svcMu guards svcIDs in sharded mode only.
	svcMu sync.RWMutex
	// shardNext is the per-shard thread-id counter: shard s hands out ids
	// s+1, s+1+Shards, s+1+2*Shards, ... so ids are unique machine-wide and
	// deterministic per shard regardless of cross-shard interleaving. With
	// one shard this degenerates to the historical 1,2,3,... sequence.
	shardNext []int

	threads []*Thread

	// svcIDs caches service name -> interned request-channel id, so
	// per-message sends skip both the "rpc:" concatenation and the
	// network's name table.
	svcIDs map[string]madeleine.ChanID
	// reqFree recycles rpcReq envelopes (see rpcReq). Sharded machines
	// bypass the pool: it would put a lock on every RPC.
	reqFree freelist.List[*rpcReq]
}

// Config describes a PM2 machine.
type Config struct {
	Nodes       int
	CPUsPerNode int // defaults to 1, as in the paper's PII nodes

	// Network is the uniform-interconnect shorthand: every node pair uses
	// this one profile (default BIPMyrinet). Topology, when set, takes
	// precedence and resolves costs per (src,dst) link.
	Network  *madeleine.Profile
	Topology madeleine.Topology

	// LinkContention enables FIFO bandwidth occupancy on each directed
	// link: concurrent transfers crossing one link queue instead of
	// overlapping for free. Off by default — the paper's calibrated
	// latencies are single-message costs.
	LinkContention bool

	// Shards > 1 runs the machine on that many parallel event loops, nodes
	// partitioned by the topology's clusters (Hierarchical topologies with
	// a matching cluster count shard along their cluster boundaries;
	// anything else falls back to contiguous equal blocks). The inter-shard
	// lookahead is derived from the cheapest cross-shard message cost, so
	// the slow backbone of a hierarchical machine is exactly the slack the
	// conservative synchronization needs. 0 or 1 is the single-loop mode.
	Shards int

	Seed int64
}

// NewRuntime builds a PM2 machine from cfg.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Nodes < 1 {
		panic("pm2: need at least one node")
	}
	if cfg.CPUsPerNode == 0 {
		cfg.CPUsPerNode = 1
	}
	topo := cfg.Topology
	if topo == nil {
		prof := cfg.Network
		if prof == nil {
			prof = madeleine.BIPMyrinet
		}
		topo = madeleine.NewUniform(prof)
	}
	if cfg.Shards > cfg.Nodes {
		cfg.Shards = cfg.Nodes
	}
	var eng *sim.Engine
	var se *sim.ShardedEngine
	var nodeShard []int
	if cfg.Shards > 1 {
		nodeShard = shardMap(topo, cfg.Nodes, cfg.Shards)
		look := lookaheads(topo, nodeShard, cfg.Shards)
		min := sim.Duration(0)
		for i := range look {
			for j, d := range look[i] {
				if i != j && d > 0 && (min == 0 || d < min) {
					min = d
				}
			}
		}
		se = sim.NewShardedEngine(cfg.Seed, cfg.Shards, min)
		for i := range look {
			for j, d := range look[i] {
				if i != j && d > 0 {
					se.SetLookahead(i, j, d)
				}
			}
		}
		eng = se.Shard(0)
	} else {
		eng = sim.NewEngine(cfg.Seed)
	}
	rt := &Runtime{
		eng:       eng,
		net:       madeleine.NewNetworkTopology(eng, topo, cfg.Nodes),
		cpus:      cfg.CPUsPerNode,
		se:        se,
		nodeShard: nodeShard,
		shardNext: make([]int, max(cfg.Shards, 1)),
		svcIDs:    make(map[string]madeleine.ChanID),
	}
	if se != nil {
		rt.net.BindSharded(se, nodeShard)
	}
	rt.net.SetLinkContention(cfg.LinkContention)
	for i := 0; i < cfg.Nodes; i++ {
		rt.nodes = append(rt.nodes, &Node{
			rt:       rt,
			ID:       i,
			CPU:      sim.NewResource(cfg.CPUsPerNode),
			services: make(map[string]*service),
		})
	}
	return rt
}

// shardMap assigns each node to a shard. A Hierarchical topology whose
// cluster count matches the shard count shards along its cluster boundaries
// (that is the configuration the sharded mode is designed for: the
// inter-cluster backbone is the lookahead); everything else falls back to
// contiguous equal blocks.
func shardMap(topo madeleine.Topology, nodes, shards int) []int {
	if h, ok := topo.(*madeleine.Hierarchical); ok && h.Clusters() == shards {
		out := make([]int, nodes)
		for i := range out {
			out[i] = h.ClusterOf(i)
		}
		return out
	}
	return madeleine.EvenClusters(nodes, shards)
}

// lookaheads derives the inter-shard lookahead matrix from the topology:
// for each ordered shard pair, the cheapest message the runtime can ever put
// on a link from a node of one to a node of the other. Every RPC-layer send
// charges at least min(CtrlMsg, RPCBase/2, XferBase) of its link's profile,
// so that bound is a safe conservative lookahead.
func lookaheads(topo madeleine.Topology, nodeShard []int, shards int) [][]sim.Duration {
	look := make([][]sim.Duration, shards)
	for i := range look {
		look[i] = make([]sim.Duration, shards)
	}
	n := len(nodeShard)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			si, sj := nodeShard[i], nodeShard[j]
			if si == sj {
				continue
			}
			p := topo.Link(i, j)
			d := p.CtrlMsg
			if half := p.RPCBase / 2; half < d {
				d = half
			}
			if p.XferBase < d {
				d = p.XferBase
			}
			if cur := look[si][sj]; cur == 0 || d < cur {
				look[si][sj] = d
			}
		}
	}
	return look
}

// Engine returns the sim engine driving this machine (shard 0's engine when
// sharded; use engFor for node-local scheduling).
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// Sharded reports whether the machine runs on parallel event loops.
func (rt *Runtime) Sharded() bool { return rt.se != nil }

// ShardedEngine returns the sharded engine, or nil when single-loop.
func (rt *Runtime) ShardedEngine() *sim.ShardedEngine { return rt.se }

// ShardOf reports which shard owns node n (0 when single-loop).
func (rt *Runtime) ShardOf(n int) int {
	if rt.nodeShard == nil {
		return 0
	}
	return rt.nodeShard[n]
}

// engFor returns the engine that owns node n's events.
func (rt *Runtime) engFor(n int) *sim.Engine {
	if rt.se == nil {
		return rt.eng
	}
	return rt.se.Shard(rt.nodeShard[n])
}

// EngineFor returns the engine that owns node n's events: the engine whose
// clock and RNG a layer above must use for anything observed from node n's
// context. On a single-loop machine it is Engine(); on a sharded machine it
// is n's shard, whose clock (unlike Now()) is deterministic mid-run.
func (rt *Runtime) EngineFor(n int) *sim.Engine { return rt.engFor(n) }

// Shards reports the number of event-loop shards (1 when single-loop).
func (rt *Runtime) Shards() int {
	if rt.se == nil {
		return 1
	}
	return rt.se.Shards()
}

// Network returns the machine's interconnect.
func (rt *Runtime) Network() *madeleine.Network { return rt.net }

// Profile returns the uniform interconnect profile, or nil when the machine
// runs over a heterogeneous topology (use Link for per-pair costs).
func (rt *Runtime) Profile() *madeleine.Profile { return rt.net.Profile() }

// Topology returns the interconnect topology.
func (rt *Runtime) Topology() madeleine.Topology { return rt.net.Topology() }

// Link returns the cost profile governing messages from src to dst.
func (rt *Runtime) Link(src, dst int) *madeleine.Profile { return rt.net.Link(src, dst) }

// Nodes reports the number of nodes.
func (rt *Runtime) Nodes() int { return len(rt.nodes) }

// ThreadCount reports the total number of threads created on this machine,
// including RPC dispatcher and handler threads. On a sharded machine call it
// only when the machine is not running (the list is written concurrently).
func (rt *Runtime) ThreadCount() int {
	if rt.se != nil {
		rt.thMu.Lock()
		defer rt.thMu.Unlock()
	}
	return len(rt.threads)
}

// Node returns node i.
func (rt *Runtime) Node(i int) *Node {
	if i < 0 || i >= len(rt.nodes) {
		panic(fmt.Sprintf("pm2: node %d out of range [0,%d)", i, len(rt.nodes)))
	}
	return rt.nodes[i]
}

// Run drives the machine until all non-daemon threads finish.
func (rt *Runtime) Run() error {
	if rt.se != nil {
		return rt.se.Run()
	}
	return rt.eng.Run()
}

// Now returns the current virtual time (the maximum over shard clocks when
// sharded).
func (rt *Runtime) Now() sim.Time {
	if rt.se != nil {
		return rt.se.Now()
	}
	return rt.eng.Now()
}

// Node is one computing node of the PM2 machine. Threads located on the
// node share its CPUs; RPC services registered on it serve remote requests.
type Node struct {
	rt  *Runtime
	ID  int
	CPU *sim.Resource

	services map[string]*service
	// svcOrder lists service names in registration order, so a restarted
	// node respawns its dispatchers deterministically.
	svcOrder []string

	// threads lists the threads currently located on this node, maintained
	// only on sharded machines (where it is touched exclusively from the
	// owning shard's context): sharded node faults must find the node's
	// threads without walking — and racing on — the global list.
	threads []*Thread

	// dead marks a crashed node (see fault.go).
	dead bool

	// Stats
	ThreadsSpawned  int
	MigrationsIn    int
	MigrationsOut   int
	HandlersSpawned int
	Restarts        int
}

// Runtime returns the machine this node belongs to.
func (n *Node) Runtime() *Runtime { return n.rt }

// dropThread removes t from the node-local thread list (sharded mode only).
func (n *Node) dropThread(t *Thread) {
	for i, x := range n.threads {
		if x == t {
			n.threads = append(n.threads[:i], n.threads[i+1:]...)
			return
		}
	}
}
