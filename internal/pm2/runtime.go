// Package pm2 models the PM2 (Parallel Multithreaded Machine) runtime system
// that DSM-PM2 is layered on: a distributed set of nodes, a POSIX-like
// user-level thread package (Marcel), an RPC mechanism built on the
// Madeleine communication library, and preemptive iso-address thread
// migration (Section 2.1 of the paper).
package pm2

import (
	"fmt"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// DescriptorBytes is the size of a thread descriptor moved along with the
// stack on migration.
const DescriptorBytes = 256

// Runtime is a simulated PM2 machine: a cluster of nodes sharing one sim
// engine and one network.
type Runtime struct {
	eng   *sim.Engine
	net   *madeleine.Network
	nodes []*Node

	nextThread int
	threads    []*Thread
}

// Config describes a PM2 machine.
type Config struct {
	Nodes       int
	CPUsPerNode int // defaults to 1, as in the paper's PII nodes
	Network     *madeleine.Profile
	Seed        int64
}

// NewRuntime builds a PM2 machine from cfg.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Nodes < 1 {
		panic("pm2: need at least one node")
	}
	if cfg.CPUsPerNode == 0 {
		cfg.CPUsPerNode = 1
	}
	if cfg.Network == nil {
		cfg.Network = madeleine.BIPMyrinet
	}
	eng := sim.NewEngine(cfg.Seed)
	rt := &Runtime{
		eng: eng,
		net: madeleine.NewNetwork(eng, cfg.Network, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		rt.nodes = append(rt.nodes, &Node{
			rt:       rt,
			ID:       i,
			CPU:      sim.NewResource(cfg.CPUsPerNode),
			services: make(map[string]*service),
		})
	}
	return rt
}

// Engine returns the sim engine driving this machine.
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// Network returns the machine's interconnect.
func (rt *Runtime) Network() *madeleine.Network { return rt.net }

// Profile returns the interconnect cost profile.
func (rt *Runtime) Profile() *madeleine.Profile { return rt.net.Profile() }

// Nodes reports the number of nodes.
func (rt *Runtime) Nodes() int { return len(rt.nodes) }

// Node returns node i.
func (rt *Runtime) Node(i int) *Node {
	if i < 0 || i >= len(rt.nodes) {
		panic(fmt.Sprintf("pm2: node %d out of range [0,%d)", i, len(rt.nodes)))
	}
	return rt.nodes[i]
}

// Run drives the machine until all non-daemon threads finish.
func (rt *Runtime) Run() error { return rt.eng.Run() }

// Now returns the current virtual time.
func (rt *Runtime) Now() sim.Time { return rt.eng.Now() }

// Node is one computing node of the PM2 machine. Threads located on the
// node share its CPUs; RPC services registered on it serve remote requests.
type Node struct {
	rt  *Runtime
	ID  int
	CPU *sim.Resource

	services map[string]*service

	// Stats
	ThreadsSpawned  int
	MigrationsIn    int
	MigrationsOut   int
	HandlersSpawned int
}

// Runtime returns the machine this node belongs to.
func (n *Node) Runtime() *Runtime { return n.rt }
