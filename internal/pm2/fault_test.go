package pm2

import (
	"fmt"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// TestKillNodeStopsThreadsAndRestartServes: a killed node's threads never
// resume, its dispatchers die, and after a restart the node serves RPCs
// again with a fresh CPU.
func TestKillNodeStopsThreadsAndRestartServes(t *testing.T) {
	rt := NewRuntime(Config{Nodes: 2, Seed: 1})
	rt.EnableFaults(1, madeleine.PartitionQueue)
	served := 0
	rt.Node(1).Register("ping", true, func(h *Thread, arg interface{}) interface{} {
		served++
		return served
	})
	resumed := false
	rt.CreateThread(1, "doomed", func(th *Thread) {
		th.Advance(100 * sim.Microsecond) // killed (at ~8us) long before this expires
		resumed = true
	})
	rt.CreateThread(0, "driver", func(th *Thread) {
		if v := th.Call(1, "ping", nil, 0, 0); v != 1 {
			t.Errorf("first call returned %v", v)
		}
		rt.Engine().After(0, func() { rt.KillNode(1) })
		th.Yield()
		if !rt.Node(1).Dead() {
			t.Error("node 1 not dead after KillNode")
		}
		th.Advance(1000)
		rt.Engine().After(0, func() { rt.RestartNode(1) })
		th.Yield()
		if v := th.Call(1, "ping", nil, 0, 0); v != 2 {
			t.Errorf("post-restart call returned %v", v)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("thread on the killed node resumed")
	}
	if rt.Node(1).Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rt.Node(1).Restarts)
	}
}

// TestDroppedRPCReclaimsEnvelopeOnce is the pm2 half of the double-free
// regression: an Async invocation dropped at a dead node must return its
// rpcReq envelope to the freelist exactly once. A double Put would hand one
// envelope to two later invocations, crossing their arguments.
func TestDroppedRPCReclaimsEnvelopeOnce(t *testing.T) {
	rt := NewRuntime(Config{Nodes: 3, Seed: 1})
	rt.EnableFaults(1, madeleine.PartitionQueue)
	var seen []interface{}
	rt.Node(2).Register("sink", false, func(h *Thread, arg interface{}) interface{} {
		seen = append(seen, arg)
		return nil
	})
	rt.CreateThread(0, "driver", func(th *Thread) {
		rt.Engine().After(0, func() { rt.KillNode(1) })
		th.Yield()
		// Two invocations at the corpse: both envelopes reclaimed.
		th.Async(1, "sink", "dead-a", 0)
		th.Async(1, "sink", "dead-b", 0)
		// Two live invocations: if an envelope had been double-freed, these
		// two would share one and the second send's argument would clobber
		// the first before its dispatch.
		th.Async(2, "sink", "live-a", 0)
		th.Async(2, "sink", "live-b", 0)
		th.Advance(1000 * sim.Microsecond)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seen) != "[live-a live-b]" {
		t.Fatalf("sink saw %v, want [live-a live-b]", seen)
	}
}
