package pm2

import "fmt"

// Runtime checkpoint/restore. At a safe point every application thread has
// finished (the engine queue is drained), so the runtime's serializable
// state reduces to the thread-id counters — which must resume where they
// left off, or every post-restore spawn would reuse ids and perturb any
// id-keyed ordering — and the per-node liveness flag and counters. Threads
// themselves are rebuilt by the application layer.

// NodeRuntimeState is one node's slice of the runtime state.
type NodeRuntimeState struct {
	Dead            bool `json:"dead,omitempty"`
	ThreadsSpawned  int  `json:"threads_spawned"`
	MigrationsIn    int  `json:"migrations_in,omitempty"`
	MigrationsOut   int  `json:"migrations_out,omitempty"`
	HandlersSpawned int  `json:"handlers_spawned"`
	Restarts        int  `json:"restarts,omitempty"`
}

// RuntimeState is the runtime's serializable state.
type RuntimeState struct {
	ShardNext []int              `json:"shard_next"`
	Nodes     []NodeRuntimeState `json:"nodes"`
}

// CaptureState serializes the runtime's counters and liveness flags.
func (rt *Runtime) CaptureState() *RuntimeState {
	s := &RuntimeState{ShardNext: append([]int(nil), rt.shardNext...)}
	for _, n := range rt.nodes {
		s.Nodes = append(s.Nodes, NodeRuntimeState{
			Dead:            n.dead,
			ThreadsSpawned:  n.ThreadsSpawned,
			MigrationsIn:    n.MigrationsIn,
			MigrationsOut:   n.MigrationsOut,
			HandlersSpawned: n.HandlersSpawned,
			Restarts:        n.Restarts,
		})
	}
	return s
}

// RestoreState installs captured counters into this runtime, which must
// have the same shape. Dead nodes must already have been killed through
// KillNode (which tears down dispatchers and network queues); this only
// stomps the counters those calls perturbed back to their captured values.
func (rt *Runtime) RestoreState(s *RuntimeState) error {
	if len(s.Nodes) != len(rt.nodes) {
		return fmt.Errorf("pm2: restore of %d-node state into %d-node runtime", len(s.Nodes), len(rt.nodes))
	}
	if len(s.ShardNext) != len(rt.shardNext) {
		return fmt.Errorf("pm2: restore of %d-shard state into %d-shard runtime", len(s.ShardNext), len(rt.shardNext))
	}
	copy(rt.shardNext, s.ShardNext)
	for i, ns := range s.Nodes {
		n := rt.nodes[i]
		if ns.Dead != n.dead {
			return fmt.Errorf("pm2: node %d liveness mismatch at restore (snapshot dead=%v, runtime dead=%v)", i, ns.Dead, n.dead)
		}
		n.ThreadsSpawned = ns.ThreadsSpawned
		n.MigrationsIn = ns.MigrationsIn
		n.MigrationsOut = ns.MigrationsOut
		n.HandlersSpawned = ns.HandlersSpawned
		n.Restarts = ns.Restarts
	}
	return nil
}
